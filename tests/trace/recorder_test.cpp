// Tests for the pipeline trace recorder and its Chrome-tracing export.
#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::trace {
namespace {

TEST(RecorderTest, CollectsEventsAndBusyTimes) {
  Recorder recorder;
  recorder.record({StageEvent::Stage::kAddrGen, 0, 0, 100, 200});
  recorder.record({StageEvent::Stage::kAddrGen, 0, 1, 300, 500});
  recorder.record({StageEvent::Stage::kCompute, 1, 0, 0, 1000});
  EXPECT_EQ(recorder.events().size(), 3u);
  EXPECT_EQ(recorder.stage_busy(StageEvent::Stage::kAddrGen), 300u);
  EXPECT_EQ(recorder.stage_busy(StageEvent::Stage::kCompute), 1000u);
  EXPECT_EQ(recorder.stage_busy(StageEvent::Stage::kTransfer), 0u);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(RecorderTest, ChromeJsonIsWellFormed) {
  Recorder recorder;
  recorder.record({StageEvent::Stage::kAssembly, 2, 7, 1'000'000, 3'000'000});
  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"2 data assembly\""), std::string::npos);
  // Blocks appear as named processes via "ph":"M" metadata, not bare pids.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("block 2"), std::string::npos);
  EXPECT_NE(json.find("\"chunk\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(RecorderTest, EmptyRecorderWritesEmptyArray) {
  Recorder recorder;
  std::ostringstream out;
  recorder.write_chrome_json(out);
  EXPECT_EQ(out.str(), "[\n]\n");
}

struct SumKernel {
  core::StreamRef<std::uint64_t> s;
  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t b, std::uint64_t e,
                  std::uint64_t stride) const {
    for (std::uint64_t r = b; r < e; r += stride) {
      const auto a = ctx.read(s, r * 4);
      const auto c = ctx.read(s, r * 4 + 1);
      ctx.write(s, r * 4 + 3, a + c);
    }
  }
};

// A real engine run must produce one event per (stage, block, chunk), with
// monotone non-degenerate intervals.
TEST(RecorderIntegration, EngineEmitsAllStages) {
  sim::Simulation sim;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 8 << 20;
  cusim::Runtime runtime(sim, config);

  constexpr std::uint64_t kRecords = 10'000;
  std::vector<std::uint64_t> host(kRecords * 4);
  for (std::uint64_t i = 0; i < host.size(); ++i) host[i] = i;

  core::Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 32 << 10;
  core::Engine engine(runtime, options);
  Recorder recorder;
  engine.set_recorder(&recorder);

  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(host), core::AccessMode::kReadWrite, 4, 2, 1);
  SumKernel kernel{stream};
  core::TableSet tables;

  sim.run_until_complete([](cusim::Runtime& rt, core::Engine& eng,
                            core::TableSet& tbl, SumKernel k) -> sim::Task<> {
    core::DeviceTables device = co_await core::DeviceTables::upload(rt, tbl);
    co_await eng.launch(k, kRecords, device);
  }(runtime, engine, tables, kernel));

  const std::uint64_t chunks = engine.metrics().chunks;
  ASSERT_GT(chunks, 0u);
  std::uint64_t per_stage[5] = {};
  for (const StageEvent& event : recorder.events()) {
    EXPECT_GE(event.end, event.begin);
    ++per_stage[static_cast<int>(event.stage)];
  }
  // One event per chunk for each of the five stages (writes present).
  for (int stage = 0; stage < 5; ++stage) {
    EXPECT_EQ(per_stage[stage], chunks) << "stage " << stage;
  }
  // The stage pipeline must actually overlap: total span < sum of stages.
  sim::DurationPs stage_sum = 0;
  for (int stage = 0; stage < 5; ++stage) {
    stage_sum += recorder.stage_busy(static_cast<StageEvent::Stage>(stage));
  }
  EXPECT_LT(sim.now(), stage_sum);
}

}  // namespace
}  // namespace bigk::trace
