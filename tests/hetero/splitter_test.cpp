// Unit tests for the bigkhetero chunk splitter and dynamic balancer: the
// chunk/record geometry, the window split edge cases (empty windows, full
// windows, single-chunk windows that must never be subdivided), and the
// balancer's EWMA trajectory — in particular the zero-throughput rules that
// route every chunk to the only side that has shown progress.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "hetero/splitter.hpp"

namespace bigk::hetero {
namespace {

TEST(ChunkSplitter, GeometryCoversEveryRecordExactlyOnce) {
  const ChunkSplitter splitter(1000, 64);
  EXPECT_EQ(splitter.num_chunks(), 16u);  // 15 full + 1 tail of 40
  std::uint64_t covered = 0;
  for (std::uint64_t c = 0; c < splitter.num_chunks(); ++c) {
    EXPECT_EQ(splitter.rec_begin(c), covered);
    EXPECT_GT(splitter.rec_end(c), splitter.rec_begin(c));
    covered = splitter.rec_end(c);
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(splitter.rec_end(splitter.num_chunks() - 1), 1000u);
}

TEST(ChunkSplitter, ZeroRecordsPerChunkIsClampedToOne) {
  const ChunkSplitter splitter(5, 0);
  EXPECT_EQ(splitter.records_per_chunk(), 1u);
  EXPECT_EQ(splitter.num_chunks(), 5u);
}

TEST(ChunkSplitter, SplitWindowEndpoints) {
  const auto gpu_all = ChunkSplitter::split_window(3, 11, 0.0);
  EXPECT_EQ(gpu_all.gpu_chunks(), 8u);
  EXPECT_EQ(gpu_all.cpu_chunks(), 0u);
  const auto cpu_all = ChunkSplitter::split_window(3, 11, 1.0);
  EXPECT_EQ(cpu_all.gpu_chunks(), 0u);
  EXPECT_EQ(cpu_all.cpu_chunks(), 8u);
  // Out-of-range ratios clamp (the bench flag layer rejects them before
  // they ever get here; internal callers may hold extrapolated EWMAs).
  EXPECT_EQ(ChunkSplitter::split_window(0, 4, -0.5).cpu_chunks(), 0u);
  EXPECT_EQ(ChunkSplitter::split_window(0, 4, 7.0).cpu_chunks(), 4u);
}

TEST(ChunkSplitter, SplitWindowIsContiguousAndExhaustive) {
  for (double ratio : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const auto split = ChunkSplitter::split_window(10, 25, ratio);
    EXPECT_EQ(split.gpu_begin, 10u);
    EXPECT_EQ(split.gpu_end, split.cpu_begin);
    EXPECT_EQ(split.cpu_end, 25u);
    EXPECT_EQ(split.gpu_chunks() + split.cpu_chunks(), 15u) << ratio;
  }
}

TEST(ChunkSplitter, SingleChunkWindowIsNeverSubdivided) {
  for (double ratio : {0.0, 0.25, 0.49, 0.51, 0.75, 1.0}) {
    const auto split = ChunkSplitter::split_window(7, 8, ratio);
    EXPECT_EQ(split.gpu_chunks() + split.cpu_chunks(), 1u) << ratio;
    // round(ratio) picks the side: < 0.5 stays on the GPU.
    EXPECT_EQ(split.cpu_chunks(), ratio < 0.5 ? 0u : 1u) << ratio;
  }
}

TEST(ChunkSplitter, EmptyWindowAndInvertedWindow) {
  const auto empty = ChunkSplitter::split_window(4, 4, 0.5);
  EXPECT_EQ(empty.gpu_chunks(), 0u);
  EXPECT_EQ(empty.cpu_chunks(), 0u);
  EXPECT_THROW(ChunkSplitter::split_window(5, 4, 0.5),
               std::invalid_argument);
}

TEST(DynamicBalancer, ZeroCpuThroughputRoutesEverythingToGpu) {
  DynamicBalancer balancer(0.5, 0.5);
  // Only the GPU has produced chunks: the CPU EWMA never gets a sample.
  balancer.observe(/*cpu_chunks=*/0, /*cpu_elapsed=*/0,
                   /*gpu_chunks=*/8, /*gpu_elapsed=*/sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 0.0);
  EXPECT_GT(balancer.gpu_chunks_per_s(), 0.0);
  EXPECT_LE(balancer.cpu_chunks_per_s(), 0.0);
}

TEST(DynamicBalancer, ZeroGpuThroughputRoutesEverythingToCpu) {
  DynamicBalancer balancer(0.5, 0.5);
  balancer.observe(/*cpu_chunks=*/8, /*cpu_elapsed=*/sim::kMicrosecond,
                   /*gpu_chunks=*/0, /*gpu_elapsed=*/0);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 1.0);
}

TEST(DynamicBalancer, NoSamplesKeepsInitialRatio) {
  DynamicBalancer balancer(0.33, 0.5);
  balancer.observe(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 0.33);
  EXPECT_EQ(balancer.rebalances(), 1u);
}

TEST(DynamicBalancer, RatioTracksRelativeThroughput) {
  DynamicBalancer balancer(0.5, 1.0);  // alpha 1: latest sample wins
  // CPU does 1 chunk while the GPU does 3 in the same window.
  balancer.observe_rates(/*cpu_rate=*/1000.0, /*gpu_rate=*/3000.0);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 0.25);
  balancer.observe_rates(3000.0, 1000.0);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 0.75);
}

TEST(DynamicBalancer, EwmaSmoothsAndConverges) {
  DynamicBalancer balancer(0.5, 0.5);
  balancer.observe_rates(1000.0, 1000.0);
  EXPECT_DOUBLE_EQ(balancer.ratio(), 0.5);
  // The GPU side collapses to a tenth of its speed; the ratio moves toward
  // the CPU monotonically and converges to 10/11.
  double previous = balancer.ratio();
  for (int round = 0; round < 32; ++round) {
    balancer.observe_rates(1000.0, 100.0);
    EXPECT_GE(balancer.ratio(), previous);
    previous = balancer.ratio();
  }
  EXPECT_NEAR(balancer.ratio(), 1000.0 / 1100.0, 1e-6);
}

TEST(DynamicBalancer, CoastingSideKeepsItsEwma) {
  DynamicBalancer balancer(0.5, 0.5);
  balancer.observe_rates(2000.0, 2000.0);
  // A round where the CPU side got no chunks must not zero its rate: the
  // split can legitimately starve one side for a window.
  balancer.observe(0, 0, 4, sim::kMicrosecond);
  EXPECT_GT(balancer.cpu_chunks_per_s(), 0.0);
  EXPECT_GT(balancer.ratio(), 0.0);
  EXPECT_LT(balancer.ratio(), 1.0);
}

}  // namespace
}  // namespace bigk::hetero
