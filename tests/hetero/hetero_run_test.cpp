// End-to-end properties of the bigkhetero co-execution runner: the output
// must be byte-identical to the serial reference across every split ratio
// (the determinism lock from the issue), the dynamic balancer must shift
// work toward the CPU when a seeded stall fault degrades the GPU side, and
// a well-balanced dynamic run must beat the better of its own single-side
// endpoints — the number that justifies co-execution at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "apps/mastercard.hpp"
#include "apps/wordcount.hpp"
#include "fault/fault.hpp"
#include "schemes/runners.hpp"

namespace bigk::hetero {
namespace {

gpusim::SystemConfig tiny_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

schemes::SchemeConfig tiny_scheme_config() {
  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 4;
  sc.bigkernel.compute_threads_per_block = 64;
  return sc;
}

TEST(HeteroRun, DigestByteIdenticalAcrossStaticRatios) {
  apps::WordCountApp app({.data_bytes = 1 << 19, .seed = 1001});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  ASSERT_NE(reference, apps::kFnvBasis);

  for (double ratio : {0.0, 0.25, 0.5, 1.0}) {
    sc.hetero.cpu_ratio = ratio;
    sc.hetero.dynamic = false;
    const auto metrics = run_hetero(tiny_config(), app, sc);
    EXPECT_EQ(app.result_digest(), reference) << "ratio " << ratio;
    EXPECT_EQ(metrics.hetero.cpu_records + metrics.hetero.gpu_records,
              app.num_records())
        << "ratio " << ratio;
  }
}

// The variable-length (delimiter-scanned) log is the partition-sensitive
// app: the static split boundary lands mid-stream and must not double- or
// zero-count any record.
TEST(HeteroRun, MastercardDigestMatchesAcrossRatios) {
  apps::MastercardApp app({.data_bytes = 1 << 19, .seed = 1002});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  for (double ratio : {0.25, 0.5, 1.0}) {
    sc.hetero.cpu_ratio = ratio;
    const auto metrics = run_hetero(tiny_config(), app, sc);
    (void)metrics;
    EXPECT_EQ(app.result_digest(), reference) << "ratio " << ratio;
  }
}

TEST(HeteroRun, DynamicMatchesReferenceAndCoversAllRecords) {
  apps::WordCountApp app({.data_bytes = 1 << 19, .seed = 1003});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  sc.hetero.dynamic = true;
  const auto metrics =
      schemes::run_scheme(schemes::Scheme::kHetero, tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
  EXPECT_EQ(metrics.scheme, schemes::Scheme::kHetero);
  EXPECT_GT(metrics.hetero.rounds, 1u);
  EXPECT_EQ(metrics.hetero.cpu_records + metrics.hetero.gpu_records,
            app.num_records());
}

// A job that fits in one chunk is never re-split: exactly one round, the
// whole job on the side the initial ratio rounds to.
TEST(HeteroRun, SingleChunkJobRunsInOneRound) {
  apps::WordCountApp app({.data_bytes = 1 << 15, .seed = 1004});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  sc.hetero.dynamic = true;
  sc.hetero.records_per_chunk = app.num_records();  // one chunk total
  sc.hetero.cpu_ratio = 0.25;                       // rounds to the GPU
  const auto metrics = run_hetero(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
  EXPECT_EQ(metrics.hetero.rounds, 1u);
  EXPECT_EQ(metrics.hetero.cpu_records, 0u);
  EXPECT_EQ(metrics.hetero.gpu_records, app.num_records());
}

// A stall fault only has injection sites on the engine pipeline, so it
// degrades the GPU side alone; the balancer must observe the slowdown and
// finish with a higher CPU share than the fault-free run — with the same
// bytes in the tables.
TEST(HeteroRun, GpuStallFaultShiftsRatioTowardCpu) {
  schemes::SchemeConfig sc = tiny_scheme_config();
  sc.hetero.dynamic = true;

  apps::WordCountApp app({.data_bytes = 1 << 19, .seed = 1005});
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();

  const auto clean = run_hetero(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);

  fault::FaultPlane plane(1);
  plane.add_all(fault::FaultSpec::parse("stage_stall,nth=1,every=2,stall_us=100"));
  sc.fault_plane = &plane;
  const auto faulted = run_hetero(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
  EXPECT_GT(faulted.hetero.final_cpu_ratio, clean.hetero.final_cpu_ratio);
  EXPECT_GT(faulted.total_time, clean.total_time);
}

// The reason to co-execute: with both sides contributing, the dynamic split
// finishes sooner than handing the whole job to either side alone. This
// only holds when the two sides have comparable standalone throughput AND
// the host cores are genuinely partitioned — the engine pins one assembly
// thread per block, so the engine is sized to half the cores and the CPU
// side defaults to the remainder. Word Count is the app where the host
// cores are closest to the engine's throughput, so the CPU side's
// contribution is material.
TEST(HeteroRun, DynamicBeatsBestSingleSide) {
  schemes::SchemeConfig sc = tiny_scheme_config();
  sc.bigkernel.num_blocks = 2;  // leave cores for the CPU side
  apps::WordCountApp app({.data_bytes = 1 << 19, .seed = 1006});

  sc.hetero.dynamic = false;
  sc.hetero.cpu_ratio = 1.0;
  const auto cpu_only = run_hetero(tiny_config(), app, sc);
  sc.hetero.cpu_ratio = 0.0;
  const auto gpu_only = run_hetero(tiny_config(), app, sc);

  sc.hetero.dynamic = true;
  sc.hetero.cpu_ratio = 0.25;
  const auto dynamic = run_hetero(tiny_config(), app, sc);

  const auto best_single =
      std::min(cpu_only.total_time, gpu_only.total_time);
  EXPECT_LT(dynamic.total_time, best_single)
      << "cpu-only " << cpu_only.total_time << " gpu-only "
      << gpu_only.total_time << " dynamic " << dynamic.total_time
      << " final ratio " << dynamic.hetero.final_cpu_ratio;
}

// Two identical dynamic runs are byte-identical in time and ratio, faulted
// or not: the balancer sees only simulated durations.
TEST(HeteroRun, DynamicRunsAreDeterministic) {
  schemes::SchemeConfig sc = tiny_scheme_config();
  sc.hetero.dynamic = true;
  apps::WordCountApp app({.data_bytes = 1 << 18, .seed = 1007});
  const auto first = run_hetero(tiny_config(), app, sc);
  const std::uint64_t first_digest = app.result_digest();
  const auto second = run_hetero(tiny_config(), app, sc);
  EXPECT_EQ(first.total_time, second.total_time);
  EXPECT_EQ(first.hetero.final_cpu_ratio, second.hetero.final_cpu_ratio);
  EXPECT_EQ(app.result_digest(), first_digest);
}

}  // namespace
}  // namespace bigk::hetero
