// Shared toy apps for the serving-layer tests: the schemes-test record shape
// (4 uint64 [a, b, pad, out]; out = a * 2 + b + lut[r]; atomic checksum
// table) with a tunable ALU weight, wrapped in apps::JobRunner so tests can
// build small deterministic suites without generating the paper-scale
// datasets. The lut stream is read-only, so it is the toy suite's cacheable
// stream when a server wires in a bigkcache chunk cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "dur/checksum.hpp"
#include "schemes/runners.hpp"
#include "verify/verifier.hpp"

namespace bigk::serve::test {

struct ToyServeApp {
  static constexpr std::uint32_t kElemsPerRecord = 4;
  std::uint64_t records;
  double alu_ops;
  std::vector<std::uint64_t> data;
  std::vector<std::uint64_t> lut;  // read-only per-record stream (cacheable)
  core::TableSet table_set;
  core::TableRef<std::uint64_t> checksum;

  ToyServeApp(std::uint64_t n, double alu) : records(n), alu_ops(alu) {
    data.resize(records * kElemsPerRecord);
    lut.resize(records);
    checksum = table_set.add<std::uint64_t>(1);
    reset();
  }

  void reset() {
    for (std::uint64_t r = 0; r < records; ++r) {
      data[r * 4] = r * 7 + 1;
      data[r * 4 + 1] = r ^ 0x55;
      data[r * 4 + 2] = 99;
      data[r * 4 + 3] = 0;
      lut[r] = r % 13;
    }
    table_set.host_span(checksum)[0] = 0;
  }

  std::uint64_t num_records() const { return records; }
  core::TableSet& tables() { return table_set; }
  bool interleaved_records() const { return true; }

  std::vector<schemes::StreamDecl> stream_decls() {
    schemes::StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(data.data());
    decl.binding.num_elements = data.size();
    decl.binding.elem_size = 8;
    decl.binding.mode = core::AccessMode::kReadWrite;
    decl.binding.elems_per_record = kElemsPerRecord;
    decl.binding.reads_per_record = 2;
    decl.binding.writes_per_record = 1;
    schemes::StreamDecl lut_decl;
    lut_decl.binding.host_data = reinterpret_cast<std::byte*>(lut.data());
    lut_decl.binding.num_elements = lut.size();
    lut_decl.binding.elem_size = 8;
    lut_decl.binding.mode = core::AccessMode::kReadOnly;
    lut_decl.binding.elems_per_record = 1;
    lut_decl.binding.reads_per_record = 1;
    lut_decl.binding.writes_per_record = 0;
    return {decl, lut_decl};
  }

  struct Kernel {
    core::StreamRef<std::uint64_t> stream{0};
    core::StreamRef<std::uint64_t> lut{1};
    core::TableRef<std::uint64_t> checksum;
    double alu_ops = 8;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const auto a = ctx.read(stream, r * 4);
        const auto b = ctx.read(stream, r * 4 + 1);
        const auto c = ctx.read(lut, r);
        ctx.alu(alu_ops);
        ctx.write(stream, r * 4 + 3, a * 2 + b + c);
        ctx.atomic_add_table(checksum, 0, a + b);
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, {1}, checksum, alu_ops}; }

  void expect_results() const {
    for (std::uint64_t r = 0; r < records; ++r) {
      const std::uint64_t a = r * 7 + 1;
      const std::uint64_t b = r ^ 0x55;
      if (data[r * 4 + 3] != a * 2 + b + r % 13) {
        throw std::logic_error("toy app result mismatch at record " +
                               std::to_string(r));
      }
    }
  }
};

/// JobRunner over the toy app, mirroring the registry's per-app runner.
class ToyRunner final : public apps::JobRunner {
 public:
  ToyRunner(std::string name, std::uint64_t records, double alu_ops)
      : name_(std::move(name)), app_(records, alu_ops) {}

  const std::string& app_name() const noexcept override { return name_; }
  std::uint64_t num_records() const override { return app_.num_records(); }

  std::uint64_t input_bytes() const override {
    std::uint64_t total = 0;
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      total += decl.binding.size_bytes();
    }
    return total;
  }

  sim::Task<> run(cusim::Runtime& runtime,
                  const apps::JobRunConfig& cfg) override {
    // bigkdur: only a run starting at record zero may wipe the output —
    // later checkpoint windows append to what earlier windows produced.
    if (cfg.rec_begin == 0) app_.reset();
    core::Engine engine(runtime, cfg.engine);
    engine.set_tracer(cfg.tracer);
    engine.set_trace_scope(cfg.trace_scope);
    engine.set_sanitizer(cfg.sanitizer);
    engine.set_chunk_cache(cfg.chunk_cache, cfg.dataset_id);
    engine.set_pinned_pool(cfg.pinned_pool);
    engine.set_profiler(cfg.profiler);
    engine.set_integrity(cfg.integrity);
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      engine.map_stream(decl.binding, decl.overfetch_elems);
    }
    const auto kernel = app_.kernel();
    core::DeviceTables tables =
        co_await core::DeviceTables::upload(runtime, app_.tables());
    const std::uint64_t end =
        cfg.rec_end > 0 ? std::min(cfg.rec_end, app_.num_records())
                        : app_.num_records();
    const std::uint64_t offset = std::min(cfg.rec_begin, end);
    auto shifted = [kernel, offset](auto& ctx, std::uint64_t b,
                                    std::uint64_t e, std::uint64_t stride) {
      kernel(ctx, b + offset, e + offset, stride);
    };
    co_await engine.launch(shifted, end - offset, tables);
    if (cfg.exec_done != nullptr) *cfg.exec_done = runtime.sim().now();
    co_await tables.download();
    tables.release();
    // The full result only exists once the final window has run.
    if (end == app_.num_records()) app_.expect_results();
  }

  sim::Task<> run_cpu(hostsim::HostCpu& cpu,
                      const apps::CpuJobConfig& cfg) override {
    app_.reset();
    auto decls = app_.stream_decls();
    auto bindings = schemes::detail::make_bindings(decls);
    const std::uint64_t num_records = app_.num_records();
    const std::uint32_t threads =
        cfg.threads > 0 ? cfg.threads : cpu.config().hw_threads;
    const std::uint64_t per =
        threads == 0 ? num_records : (num_records + threads - 1) / threads;
    std::vector<sim::Process> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
      const std::uint64_t begin =
          std::min(std::uint64_t{t} * per, num_records);
      const std::uint64_t end = std::min(begin + per, num_records);
      if (begin >= end) break;
      workers.push_back(cpu.sim().spawn(schemes::detail::cpu_partition(
          cpu, bindings, app_.tables(), app_.kernel(), begin, end, threads,
          cfg.batch_records)));
    }
    for (sim::Process& worker : workers) co_await worker.join();
    if (cfg.exec_done != nullptr) *cfg.exec_done = cpu.sim().now();
    app_.expect_results();
  }

  std::uint64_t output_digest(std::uint64_t records_done) override {
    dur::Checksum sum;
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      const core::StreamBinding& b = decl.binding;
      if (b.mode != core::AccessMode::kReadWrite) continue;
      const std::uint64_t bytes = std::min(
          records_done * b.elems_per_record * b.elem_size, b.size_bytes());
      sum.mix_bytes({b.host_data, bytes});
    }
    return sum.value();
  }

  /// Direct access for crash-restart tests (records, data bytes).
  ToyServeApp& app() { return app_; }

 private:
  std::string name_;
  mutable ToyServeApp app_;
};

/// bigkdur: forwards to an externally owned runner, so the app's output
/// storage survives run_server teardown — the test-side model of durable
/// output across a simulated server crash. Jobs of a non-durable app get a
/// fresh runner per incarnation instead, and the journal's digest check
/// makes them restart from record zero.
class SharedRunner final : public apps::JobRunner {
 public:
  explicit SharedRunner(std::shared_ptr<apps::JobRunner> inner)
      : inner_(std::move(inner)) {}

  const std::string& app_name() const noexcept override {
    return inner_->app_name();
  }
  std::uint64_t num_records() const override { return inner_->num_records(); }
  std::uint64_t input_bytes() const override { return inner_->input_bytes(); }
  sim::Task<> run(cusim::Runtime& runtime,
                  const apps::JobRunConfig& cfg) override {
    return inner_->run(runtime, cfg);
  }
  sim::Task<> run_cpu(hostsim::HostCpu& cpu,
                      const apps::CpuJobConfig& cfg) override {
    return inner_->run_cpu(cpu, cfg);
  }
  std::uint64_t output_digest(std::uint64_t records_done) override {
    return inner_->output_digest(records_done);
  }

 private:
  std::shared_ptr<apps::JobRunner> inner_;
};

/// A suite of `num_apps` toy apps named "toy0".."toyN-1" (only the fields
/// the serving layer uses are populated).
inline std::vector<apps::BenchApp> make_toy_suite(std::uint32_t num_apps,
                                                  std::uint64_t records,
                                                  double alu_ops = 8.0) {
  std::vector<apps::BenchApp> suite;
  for (std::uint32_t i = 0; i < num_apps; ++i) {
    apps::BenchApp entry;
    entry.name = "toy" + std::to_string(i);
    entry.info.name = entry.name;
    entry.make_runner = [name = entry.name, records, alu_ops] {
      return std::unique_ptr<apps::JobRunner>(
          std::make_unique<ToyRunner>(name, records, alu_ops));
    };
    entry.verify = [name = entry.name, records, alu_ops] {
      ToyServeApp app(records, alu_ops);
      verify::KernelReport report = verify::verify_app(app);
      report.app = name;
      return report;
    };
    suite.push_back(std::move(entry));
  }
  return suite;
}

/// bigkdur: a toy suite whose runners are shared with the caller —
/// make_runner hands out SharedRunner views over `runners` (one persistent
/// ToyRunner per app, so use one job per app name), letting two run_server
/// incarnations over the same journal see the same output storage.
inline std::vector<apps::BenchApp> make_durable_toy_suite(
    const std::vector<std::shared_ptr<ToyRunner>>& runners) {
  std::vector<apps::BenchApp> suite;
  for (const std::shared_ptr<ToyRunner>& runner : runners) {
    apps::BenchApp entry;
    entry.name = runner->app_name();
    entry.info.name = entry.name;
    entry.make_runner = [runner] {
      return std::unique_ptr<apps::JobRunner>(
          std::make_unique<SharedRunner>(runner));
    };
    entry.verify = [name = entry.name, records = runner->num_records()] {
      ToyServeApp app(records, 8.0);
      verify::KernelReport report = verify::verify_app(app);
      report.app = name;
      return report;
    };
    suite.push_back(std::move(entry));
  }
  return suite;
}

/// Small per-device system (2 MB GPU arenas, default host CPU).
inline gpusim::SystemConfig toy_system() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

/// Engine options sized for the toy workload (few assembly threads so pools
/// of engines don't oversubscribe the 4 host cores).
inline core::Options toy_engine_options() {
  core::Options options;
  options.num_blocks = 2;
  options.compute_threads_per_block = 64;
  return options;
}

}  // namespace bigk::serve::test
