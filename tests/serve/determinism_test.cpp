// Scheduler determinism guard: the same seed and job mix must produce a
// byte-identical schedule — completion order, per-job records, report JSON,
// and exported metrics JSON — across independent runs.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

struct RunOutput {
  ServeReport report;
  std::string report_json;
  std::string metrics_json;
};

RunOutput run_once(Policy policy, std::uint64_t seed,
                   bool cache_enabled = false) {
  const auto suite = make_toy_suite(3, 5'000);
  std::vector<std::string> names{"toy0", "toy1", "toy2"};
  WorkloadConfig workload;
  workload.num_jobs = 10;
  workload.seed = seed;
  workload.mean_gap = sim::DurationPs{50'000'000};  // 50 us

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.system = toy_system();
  config.devices = 3;
  config.policy = policy;
  config.queue_depth = 4;
  config.max_retries = 100;
  config.engine = toy_engine_options();
  config.metrics = &registry;
  config.cache_enabled = cache_enabled;
  config.cache_bytes = 256 << 10;  // toy arena is 2 MiB; keep the ring's share

  RunOutput output;
  output.report = run_server(config, make_workload(names, workload), suite);
  std::ostringstream report_out;
  output.report.write_json(report_out);
  output.report_json = report_out.str();
  std::ostringstream metrics_out;
  registry.write_json_array(metrics_out);
  output.metrics_json = metrics_out.str();
  return output;
}

class ServeDeterminismTest : public ::testing::TestWithParam<Policy> {};

TEST_P(ServeDeterminismTest, TwoRunsAreByteIdentical) {
  const RunOutput first = run_once(GetParam(), 21);
  const RunOutput second = run_once(GetParam(), 21);

  EXPECT_EQ(first.report.completion_order, second.report.completion_order);
  EXPECT_EQ(first.report.makespan, second.report.makespan);
  EXPECT_EQ(first.report.rejections, second.report.rejections);
  ASSERT_EQ(first.report.jobs.size(), second.report.jobs.size());
  for (std::size_t i = 0; i < first.report.jobs.size(); ++i) {
    EXPECT_EQ(first.report.jobs[i].device, second.report.jobs[i].device);
    EXPECT_EQ(first.report.jobs[i].start_time,
              second.report.jobs[i].start_time);
    EXPECT_EQ(first.report.jobs[i].finish_time,
              second.report.jobs[i].finish_time);
    EXPECT_EQ(first.report.jobs[i].warm, second.report.jobs[i].warm);
  }
  EXPECT_EQ(first.report_json, second.report_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

INSTANTIATE_TEST_SUITE_P(Policies, ServeDeterminismTest,
                         ::testing::Values(Policy::kRoundRobin,
                                           Policy::kLeastOutstandingBytes,
                                           Policy::kAppAffinity),
                         [](const auto& info) {
                           switch (info.param) {
                             case Policy::kRoundRobin: return "RoundRobin";
                             case Policy::kLeastOutstandingBytes:
                               return "LeastBytes";
                             case Policy::kAppAffinity: return "AppAffinity";
                             default: return "Unknown";
                           }
                         });

TEST(ServeDeterminismTest2, CachedRunsAreByteIdentical) {
  // The chunk cache must not perturb determinism: two cached runs produce the
  // same schedule, report JSON, and metrics JSON — and the cache actually
  // engages (repeat jobs under app affinity hit the read-only lut images).
  const RunOutput first = run_once(Policy::kAppAffinity, 21, true);
  const RunOutput second = run_once(Policy::kAppAffinity, 21, true);

  EXPECT_GT(first.report.cache_hits, 0u);
  EXPECT_GT(first.report.cache_bytes_saved, 0u);
  EXPECT_EQ(first.report.completion_order, second.report.completion_order);
  EXPECT_EQ(first.report.cache_hits, second.report.cache_hits);
  EXPECT_EQ(first.report.cache_bytes_saved, second.report.cache_bytes_saved);
  EXPECT_EQ(first.report_json, second.report_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(ServeDeterminismTest2, CacheOnAndOffAgreeOnResults) {
  // Byte-identical app output with the cache on vs off: every job's
  // expect_results() runs inside ToyRunner (a mismatch throws and fails the
  // job), so equal completion sets prove the cached reads returned the same
  // bytes the assembly path would have produced.
  const RunOutput cached = run_once(Policy::kAppAffinity, 21, true);
  const RunOutput uncached = run_once(Policy::kAppAffinity, 21, false);

  ASSERT_EQ(cached.report.jobs.size(), uncached.report.jobs.size());
  EXPECT_EQ(cached.report.rejections, uncached.report.rejections);
  for (std::size_t i = 0; i < cached.report.jobs.size(); ++i) {
    EXPECT_EQ(cached.report.jobs[i].completed, uncached.report.jobs[i].completed);
  }
  EXPECT_GT(cached.report.cache_hits, 0u);
  EXPECT_EQ(uncached.report.cache_hits, 0u);
  EXPECT_EQ(uncached.report.cache_bytes_saved, 0u);
}

TEST(ServeDeterminismTest2, DifferentSeedsChangeTheWorkload) {
  std::vector<std::string> names{"toy0", "toy1", "toy2"};
  WorkloadConfig workload;
  workload.num_jobs = 16;
  workload.mean_gap = sim::DurationPs{1'000'000};
  workload.seed = 1;
  const auto first = make_workload(names, workload);
  workload.seed = 2;
  const auto second = make_workload(names, workload);
  bool differs = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].app != second[i].app ||
        first[i].submit_time != second[i].submit_time) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ServeDeterminismTest2, WorkloadGenerationIsStable) {
  // Lock the generator's output shape: same config twice => identical specs.
  std::vector<std::string> names{"toy0", "toy1"};
  WorkloadConfig workload;
  workload.num_jobs = 8;
  workload.seed = 1234;
  workload.mean_gap = sim::DurationPs{777};
  workload.deadline = sim::DurationPs{5'000};
  const auto first = make_workload(names, workload);
  const auto second = make_workload(names, workload);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].app, second[i].app);
    EXPECT_EQ(first[i].submit_time, second[i].submit_time);
    EXPECT_EQ(first[i].deadline, second[i].deadline);
  }
}

}  // namespace
}  // namespace bigk::serve
