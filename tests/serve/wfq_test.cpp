// QosQueue unit tests: weighted sharing, FIFO baseline, the weight-0
// epsilon (background tenants fall behind but are never starved forever),
// and the deterministic tie-break.
#include "serve/wfq.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

namespace bigk::serve {
namespace {

TEST(DisciplineTest, NamesRoundTrip) {
  EXPECT_EQ(discipline_from_name("fifo"), Discipline::kFifo);
  EXPECT_EQ(discipline_from_name("wfq"), Discipline::kWfq);
  EXPECT_STREQ(discipline_name(Discipline::kFifo), "fifo");
  EXPECT_STREQ(discipline_name(Discipline::kWfq), "wfq");
  EXPECT_THROW(discipline_from_name("priority"), std::invalid_argument);
}

TEST(QosQueueTest, RejectsEmptyTenantSet) {
  EXPECT_THROW(QosQueue<int>(Discipline::kWfq, {}), std::invalid_argument);
}

TEST(QosQueueTest, FifoServesArrivalOrderAcrossTenants) {
  QosQueue<int> queue(Discipline::kFifo, {1, 8});
  queue.push(1, 10, 4);
  queue.push(0, 20, 1);
  queue.push(1, 30, 4);
  EXPECT_EQ(queue.pop(), std::optional<int>(10));
  EXPECT_EQ(queue.pop(), std::optional<int>(20));
  EXPECT_EQ(queue.pop(), std::optional<int>(30));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(QosQueueTest, WfqSharesServiceByWeight) {
  // Two backlogged tenants with weights 3:1 and equal-cost items: over a
  // long drain the service ratio must match the weight ratio.
  QosQueue<int> queue(Discipline::kWfq, {3, 1});
  for (int i = 0; i < 40; ++i) {
    queue.push(0, i, 8);
    queue.push(1, 100 + i, 8);
  }
  // Serve 32 items; tenant 0 should get ~3/4 of them.
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.served(0) + queue.served(1), 32u);
  EXPECT_GE(queue.served(0), 22u);
  EXPECT_LE(queue.served(0), 26u);
}

TEST(QosQueueTest, CostWeighsAgainstATenant) {
  // Equal weights but tenant 0 submits items 4x as expensive: tenant 1
  // should be served ~4x as often.
  QosQueue<int> queue(Discipline::kWfq, {1, 1});
  for (int i = 0; i < 40; ++i) {
    queue.push(0, i, 16);
    queue.push(1, 100 + i, 4);
  }
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(queue.pop().has_value());
  EXPECT_GT(queue.served(1), 2 * queue.served(0));
}

TEST(QosQueueTest, WeightZeroFallsBehindButIsNeverStarvedForever) {
  // A weight-0 background tenant against a weight-8 foreground: the
  // background item must not come first while the foreground has fresh
  // backlog, but a bounded amount of foreground service must eventually
  // let it through (epsilon weight, finite finish tag).
  QosQueue<int> queue(Discipline::kWfq, {8, 0});
  queue.push(1, 999, 1);  // background item, arrives first
  int foreground_served = 0;
  bool background_served = false;
  for (int round = 0; round < 10'000 && !background_served; ++round) {
    if (queue.backlog(0) == 0) queue.push(0, round, 1);
    const std::optional<int> item = queue.pop();
    ASSERT_TRUE(item.has_value());
    if (*item == 999) {
      background_served = true;
    } else {
      ++foreground_served;
    }
  }
  EXPECT_TRUE(background_served);
  // It really was background: a healthy chunk of foreground went first.
  EXPECT_GT(foreground_served, 50);
}

TEST(QosQueueTest, TieBreakIsDeterministic) {
  // Identical weights, costs, and arrival pattern: equal finish tags break
  // by tenant index, then sequence — replay twice and compare.
  const auto drain = [] {
    QosQueue<int> queue(Discipline::kWfq, {2, 2, 2});
    int token = 0;
    for (int round = 0; round < 5; ++round) {
      for (std::uint32_t t = 0; t < 3; ++t) queue.push(t, token++, 8);
    }
    std::vector<int> order;
    while (auto item = queue.pop()) order.push_back(*item);
    return order;
  };
  const std::vector<int> first = drain();
  const std::vector<int> second = drain();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 15u);
}

TEST(QosQueueTest, AccountingAccessors) {
  QosQueue<int> queue(Discipline::kWfq, {1, 1});
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.num_tenants(), 2u);
  queue.push(0, 1, 1);
  queue.push(0, 2, 1);
  queue.push(1, 3, 1);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.backlog(0), 2u);
  EXPECT_EQ(queue.backlog(1), 1u);
  EXPECT_EQ(queue.peak_backlog(), 3u);
  while (queue.pop().has_value()) {
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.peak_backlog(), 3u);  // peak survives the drain
  EXPECT_EQ(queue.served(0), 2u);
  EXPECT_EQ(queue.served(1), 1u);
}

TEST(QosQueueTest, VirtualTimeAdvancesMonotonically) {
  QosQueue<int> queue(Discipline::kWfq, {1});
  std::uint64_t last = queue.virtual_time();
  for (int i = 0; i < 8; ++i) queue.push(0, i, 64);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_GE(queue.virtual_time(), last);
    last = queue.virtual_time();
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace bigk::serve
