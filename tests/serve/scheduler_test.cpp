#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace bigk::serve {
namespace {

TEST(PolicyTest, NamesRoundTrip) {
  EXPECT_EQ(policy_from_name("round-robin"), Policy::kRoundRobin);
  EXPECT_EQ(policy_from_name("least-bytes"), Policy::kLeastOutstandingBytes);
  EXPECT_EQ(policy_from_name("app-affinity"), Policy::kAppAffinity);
  EXPECT_STREQ(policy_name(Policy::kRoundRobin), "round-robin");
  EXPECT_STREQ(policy_name(Policy::kLeastOutstandingBytes), "least-bytes");
  EXPECT_STREQ(policy_name(Policy::kAppAffinity), "app-affinity");
}

TEST(PolicyTest, UnknownNameListsValidPolicies) {
  try {
    policy_from_name("fifo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("fifo"), std::string::npos);
    EXPECT_NE(message.find("round-robin"), std::string::npos);
    EXPECT_NE(message.find("least-bytes"), std::string::npos);
    EXPECT_NE(message.find("app-affinity"), std::string::npos);
  }
}

TEST(SchedulerTest, RoundRobinRotates) {
  Scheduler scheduler(Policy::kRoundRobin, 3);
  EXPECT_EQ(scheduler.pick_device("a", 10), 0u);
  EXPECT_EQ(scheduler.pick_device("b", 10), 1u);
  EXPECT_EQ(scheduler.pick_device("c", 10), 2u);
  EXPECT_EQ(scheduler.pick_device("d", 10), 0u);
}

TEST(SchedulerTest, LeastBytesPicksShortestBacklog) {
  Scheduler scheduler(Policy::kLeastOutstandingBytes, 3);
  scheduler.on_dispatch(0, "a", 100);
  scheduler.on_dispatch(1, "b", 10);
  scheduler.on_dispatch(2, "c", 50);
  EXPECT_EQ(scheduler.pick_device("d", 5), 1u);
  scheduler.on_dispatch(1, "d", 200);
  EXPECT_EQ(scheduler.pick_device("e", 5), 2u);
  // Completion shrinks the backlog and changes the pick.
  scheduler.on_complete(0, 100);
  EXPECT_EQ(scheduler.pick_device("f", 5), 0u);
  // Ties break toward the lowest device index.
  Scheduler fresh(Policy::kLeastOutstandingBytes, 2);
  EXPECT_EQ(fresh.pick_device("a", 5), 0u);
}

TEST(SchedulerTest, AppAffinityPrefersResidentDataset) {
  Scheduler scheduler(Policy::kAppAffinity, 3);
  // Cold start: no resident datasets, falls back to least bytes (device 0).
  EXPECT_EQ(scheduler.pick_device("a", 10), 0u);
  scheduler.on_dispatch(0, "a", 10);
  EXPECT_EQ(scheduler.pick_device("b", 10), 1u);
  scheduler.on_dispatch(1, "b", 10);
  // "a" is resident on device 0: affinity wins even though device 2 is idle.
  EXPECT_EQ(scheduler.pick_device("a", 10), 0u);
  scheduler.on_dispatch(0, "a", 10);
  EXPECT_EQ(scheduler.resident_app(0), "a");
  // An unseen app lands on the emptiest device.
  EXPECT_EQ(scheduler.pick_device("c", 10), 2u);
}

TEST(SchedulerTest, AffinityTiesBreakByBacklogAmongWarmDevices) {
  Scheduler scheduler(Policy::kAppAffinity, 3);
  scheduler.on_dispatch(0, "a", 100);
  scheduler.on_dispatch(1, "a", 10);
  scheduler.on_dispatch(2, "b", 8);
  // Both 0 and 1 hold "a"; the lighter backlog wins. Device 1's lead over
  // the emptiest device (10 vs 8) is within the job's own 5 bytes, so the
  // warm detour is worth it.
  EXPECT_EQ(scheduler.pick_device("a", 5), 1u);
}

TEST(SchedulerTest, AffinitySpillsWhenWarmBacklogOutweighsStagingSaving) {
  Scheduler scheduler(Policy::kAppAffinity, 3);
  scheduler.on_dispatch(0, "a", 100);
  scheduler.on_dispatch(1, "a", 110);
  scheduler.on_dispatch(2, "b", 8);
  // The best warm device (0, backlog 100) leads the emptiest device (2,
  // backlog 8) by far more than the 5 input bytes a warm hit could save:
  // head-of-line blocking behind the warm device would cost more than cold
  // staging, so the job spills to the emptiest device.
  EXPECT_EQ(scheduler.pick_device("a", 5), 2u);
}

TEST(SchedulerTest, RejectsZeroDevices) {
  EXPECT_THROW(Scheduler(Policy::kRoundRobin, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bigk::serve
