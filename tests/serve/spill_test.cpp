// bigkhetero serve spill-over: when the device pool saturates past the spill
// depth — or loses a device to quarantine — whole jobs run on the host cores
// instead of queueing for a device. Every spilled job must complete with the
// correct results (ToyRunner::run_cpu verifies them), nothing may drop or
// fail, and the spill accounting must stay out of the per-device buckets.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

ServerConfig spill_server(std::uint32_t devices, std::uint32_t queue_depth,
                          std::uint32_t spill_depth) {
  ServerConfig config;
  config.system = toy_system();
  config.devices = devices;
  config.policy = Policy::kRoundRobin;
  config.queue_depth = queue_depth;
  config.retry_after = sim::DurationPs{100'000'000};  // 0.1 ms
  config.max_retries = 100'000;
  config.engine = toy_engine_options();
  config.hetero.spill_enabled = true;
  config.hetero.spill_depth = spill_depth;
  return config;
}

std::vector<JobSpec> batch_workload(std::uint32_t num_jobs,
                                    std::uint32_t num_apps,
                                    std::uint64_t seed = 7) {
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < num_apps; ++i) {
    names.push_back("toy" + std::to_string(i));
  }
  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.seed = seed;
  workload.mean_gap = 0;  // batch arrival saturates the pool at t=0
  return make_workload(names, workload);
}

TEST(ServeSpillTest, SaturatedPoolSpillsAndEveryJobCompletes) {
  const auto suite = make_toy_suite(3, 4'000);
  const auto specs = batch_workload(12, 3);
  const ServeReport report =
      run_server(spill_server(1, 16, /*spill_depth=*/2), specs, suite);

  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_GT(report.spills, 0u);
  EXPECT_EQ(report.cpu_completed, report.spills);
  std::uint64_t cpu_marked = 0;
  std::uint64_t device_jobs = 0;
  for (const JobRecord& record : report.jobs) {
    EXPECT_TRUE(record.completed);
    if (record.cpu_executed) {
      ++cpu_marked;
      EXPECT_GE(record.finish_time, record.start_time);
    }
  }
  for (const DeviceReport& device : report.devices) device_jobs += device.jobs;
  EXPECT_EQ(cpu_marked, report.spills);
  // Spilled jobs never land in a device bucket.
  EXPECT_EQ(device_jobs + report.spills, 12u);
}

TEST(ServeSpillTest, SpillDisabledKeepsLegacyBehavior) {
  const auto suite = make_toy_suite(3, 4'000);
  const auto specs = batch_workload(12, 3);
  ServerConfig config = spill_server(1, 16, 2);
  config.hetero.spill_enabled = false;
  const ServeReport report = run_server(config, specs, suite);
  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.spills, 0u);
  EXPECT_EQ(report.cpu_completed, 0u);
  for (const JobRecord& record : report.jobs) {
    EXPECT_FALSE(record.cpu_executed);
  }
}

// Quarantine spill: the only device dies on its first DMA and stays down
// longer than the workload; with spill enabled the redispatch path routes
// every stranded job to the host cores instead of failing it.
TEST(ServeSpillTest, QuarantinedDeviceSpillsInsteadOfFailing) {
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = batch_workload(8, 2);
  ServerConfig config = spill_server(1, 8, 64);
  config.fault_spec = "device_lost,nth=1,device=0,down_us=100000";
  const ServeReport report = run_server(config, specs, suite);

  EXPECT_GT(report.quarantines, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_EQ(report.completed, 8u);
  EXPECT_GT(report.spills, 0u);
  std::uint64_t redispatched_to_cpu = 0;
  for (const JobRecord& record : report.jobs) {
    EXPECT_TRUE(record.completed);
    if (record.cpu_executed && record.redispatches > 0) {
      ++redispatched_to_cpu;
    }
  }
  EXPECT_GT(redispatched_to_cpu, 0u);
}

TEST(ServeSpillTest, ReportAndMetricsCarrySpillCounters) {
  obs::MetricsRegistry metrics;
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = batch_workload(10, 2);
  ServerConfig config = spill_server(1, 16, 2);
  config.metrics = &metrics;
  config.metrics_prefix = "serve.test";
  const ServeReport report = run_server(config, specs, suite);
  ASSERT_GT(report.spills, 0u);

  std::ostringstream json;
  report.write_json(json);
  const std::string document = json.str();
  EXPECT_NE(document.find("\"hetero\":{\"spills\":"), std::string::npos);
  EXPECT_NE(document.find("\"cpu_executed\":true"), std::string::npos);

  const obs::Gauge* spills_gauge =
      metrics.find_gauge("serve.test.hetero.spills");
  ASSERT_NE(spills_gauge, nullptr);
  EXPECT_EQ(spills_gauge->value(), static_cast<double>(report.spills));
  const obs::Counter* spill_counter = metrics.find_counter("serve.spills");
  ASSERT_NE(spill_counter, nullptr);
  EXPECT_EQ(spill_counter->value(), report.spills);
}

// Same config + workload => byte-identical spill decisions.
TEST(ServeSpillTest, SpillPathIsDeterministic) {
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = batch_workload(10, 2);
  const ServeReport first =
      run_server(spill_server(1, 16, 2), specs, suite);
  const ServeReport second =
      run_server(spill_server(1, 16, 2), specs, suite);
  EXPECT_EQ(first.spills, second.spills);
  EXPECT_EQ(first.makespan, second.makespan);
  ASSERT_EQ(first.jobs.size(), second.jobs.size());
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(first.jobs[i].cpu_executed, second.jobs[i].cpu_executed);
    EXPECT_EQ(first.jobs[i].finish_time, second.jobs[i].finish_time);
  }
}

}  // namespace
}  // namespace bigk::serve
