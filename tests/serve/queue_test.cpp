#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bigk::serve {
namespace {

TEST(JobQueueTest, AdmitsUpToDepthThenRejectsWithRetryAfter) {
  JobQueue queue(3, sim::DurationPs{500});
  for (int i = 0; i < 3; ++i) {
    const JobQueue::Admission admission = queue.try_admit();
    EXPECT_TRUE(admission.accepted);
    EXPECT_EQ(admission.retry_after, 0u);
  }
  EXPECT_EQ(queue.outstanding(), 3u);

  const JobQueue::Admission rejected = queue.try_admit();
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.retry_after, sim::DurationPs{500});
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.admitted(), 3u);
  EXPECT_EQ(queue.outstanding(), 3u);
}

TEST(JobQueueTest, ReleaseFreesASlot) {
  JobQueue queue(1, sim::DurationPs{10});
  EXPECT_TRUE(queue.try_admit().accepted);
  EXPECT_FALSE(queue.try_admit().accepted);
  queue.release();
  EXPECT_EQ(queue.outstanding(), 0u);
  EXPECT_TRUE(queue.try_admit().accepted);
  EXPECT_EQ(queue.admitted(), 2u);
  EXPECT_EQ(queue.rejected(), 1u);
}

TEST(JobQueueTest, TracksPeakDepth) {
  JobQueue queue(4, sim::DurationPs{10});
  queue.try_admit();
  queue.try_admit();
  queue.try_admit();
  queue.release();
  queue.release();
  queue.try_admit();
  EXPECT_EQ(queue.peak_depth(), 3u);
  EXPECT_EQ(queue.outstanding(), 2u);
}

TEST(JobQueueTest, RejectsInvalidUse) {
  EXPECT_THROW(JobQueue(0, sim::DurationPs{1}), std::invalid_argument);
  JobQueue queue(1, sim::DurationPs{1});
  EXPECT_THROW(queue.release(), std::logic_error);
}

}  // namespace
}  // namespace bigk::serve
