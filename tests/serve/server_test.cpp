// Functional tests of the bigkserve serving layer over a toy app suite:
// completion, multi-device scaling, admission-control shedding, app-affinity
// reuse, deadlines, and clean execution under the bigkcheck sanitizers with
// concurrent devices.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

ServerConfig toy_server(std::uint32_t devices, Policy policy,
                        std::uint32_t queue_depth) {
  ServerConfig config;
  config.system = toy_system();
  config.devices = devices;
  config.policy = policy;
  config.queue_depth = queue_depth;
  config.retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
  config.engine = toy_engine_options();
  return config;
}

std::vector<JobSpec> toy_workload(std::uint32_t num_jobs,
                                  std::uint32_t num_apps,
                                  std::uint64_t seed = 7) {
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < num_apps; ++i) {
    names.push_back("toy" + std::to_string(i));
  }
  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.seed = seed;
  return make_workload(names, workload);
}

TEST(ServeServerTest, CompletesAllJobsAcrossDevices) {
  const auto suite = make_toy_suite(3, 6'000);
  const auto specs = toy_workload(8, 3);
  const ServeReport report =
      run_server(toy_server(2, Policy::kRoundRobin, 8), specs, suite);

  EXPECT_EQ(report.jobs.size(), 8u);
  EXPECT_EQ(report.completed, 8u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.completion_order.size(), 8u);
  ASSERT_EQ(report.devices.size(), 2u);
  EXPECT_EQ(report.devices[0].jobs + report.devices[1].jobs, 8u);
  // Round-robin across 2 devices splits 8 jobs evenly.
  EXPECT_EQ(report.devices[0].jobs, 4u);
  EXPECT_GT(report.latency_p50, 0u);
  EXPECT_GE(report.latency_p95, report.latency_p50);
  EXPECT_GE(report.latency_p99, report.latency_p95);
  EXPECT_GT(report.throughput_jobs_per_s, 0.0);
  for (const JobRecord& record : report.jobs) {
    EXPECT_TRUE(record.completed);
    EXPECT_GE(record.finish_time, record.start_time);
    EXPECT_GE(record.start_time, record.spec.submit_time);
  }
  for (const DeviceReport& device : report.devices) {
    EXPECT_GT(device.utilization, 0.0);
    EXPECT_LE(device.utilization, 1.0);
    EXPECT_GT(device.kernel_launches, 0u);
  }
}

TEST(ServeServerTest, MoreDevicesShrinkMakespan) {
  // Compute-heavy jobs (GPU-bound) so the device pool, not the shared host,
  // is the bottleneck.
  const auto suite = make_toy_suite(4, 4'000, /*alu_ops=*/512.0);
  const auto specs = toy_workload(16, 4);
  const ServeReport one =
      run_server(toy_server(1, Policy::kRoundRobin, 16), specs, suite);
  const ServeReport four =
      run_server(toy_server(4, Policy::kRoundRobin, 16), specs, suite);

  EXPECT_EQ(one.completed, 16u);
  EXPECT_EQ(four.completed, 16u);
  EXPECT_LT(four.makespan, one.makespan);
  EXPECT_GT(four.throughput_jobs_per_s, 2.0 * one.throughput_jobs_per_s)
      << "4 devices should deliver well over 2x one device's throughput";
}

TEST(ServeServerTest, SaturatedQueueShedsLoad) {
  const auto suite = make_toy_suite(2, 6'000);
  const auto specs = toy_workload(12, 2);
  ServerConfig config = toy_server(1, Policy::kRoundRobin, 2);
  config.max_retries = 1;
  config.retry_after = sim::DurationPs{1'000'000};  // 1 us: retries too early
  const ServeReport report = run_server(config, specs, suite);

  EXPECT_GT(report.rejections, 0u);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.completed + report.dropped, 12u);
  EXPECT_LE(report.peak_queue_depth, 2u);
  for (const JobRecord& record : report.jobs) {
    if (!record.admitted) {
      EXPECT_GT(record.rejections, 0u);
    }
  }
}

TEST(ServeServerTest, RetryAfterEventuallyAdmits) {
  const auto suite = make_toy_suite(2, 6'000);
  const auto specs = toy_workload(12, 2);
  // Generous retry budget: everything completes despite the tiny queue.
  ServerConfig config = toy_server(2, Policy::kRoundRobin, 2);
  config.max_retries = 200;
  const ServeReport report = run_server(config, specs, suite);
  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GT(report.rejections, 0u);
}

TEST(ServeServerTest, AppAffinityBeatsRoundRobinOnReuseHeavyMix) {
  // Staging-heavy jobs (large input, light compute) on a reuse-heavy mix of
  // two apps: affinity keeps datasets resident and skips the staging pass.
  const auto suite = make_toy_suite(2, 24'000, /*alu_ops=*/1.0);
  const auto specs = toy_workload(12, 2, /*seed=*/99);
  const ServeReport rr =
      run_server(toy_server(2, Policy::kRoundRobin, 12), specs, suite);
  const ServeReport affinity =
      run_server(toy_server(2, Policy::kAppAffinity, 12), specs, suite);

  EXPECT_EQ(rr.completed, 12u);
  EXPECT_EQ(affinity.completed, 12u);
  EXPECT_GT(affinity.warm_hits, rr.warm_hits);
  EXPECT_LT(affinity.makespan, rr.makespan);
}

TEST(ServeServerTest, DeadlinesAreAccounted) {
  const auto suite = make_toy_suite(2, 6'000);
  std::vector<JobSpec> specs = toy_workload(6, 2);
  for (JobSpec& spec : specs) spec.deadline = sim::DurationPs{1};  // 1 ps SLO
  const ServeReport tight =
      run_server(toy_server(1, Policy::kRoundRobin, 6), specs, suite);
  EXPECT_EQ(tight.deadline_misses, tight.completed);

  for (JobSpec& spec : specs) spec.deadline = 0;  // no SLO
  const ServeReport relaxed =
      run_server(toy_server(1, Policy::kRoundRobin, 6), specs, suite);
  EXPECT_EQ(relaxed.deadline_misses, 0u);
}

TEST(ServeServerTest, RunsCleanUnderCheckersWithTwoDevices) {
  // The multi-device analogue of the schemes clean-under-check guard:
  // concurrent engines on distinct devices, each job under a fresh
  // sanitizer, must produce zero violations (a violation throws).
  const auto suite = make_toy_suite(2, 8'000);
  const auto specs = toy_workload(6, 2);
  ServerConfig config = toy_server(2, Policy::kLeastOutstandingBytes, 6);
  config.check = check::CheckOptions::all_enabled();
  const ServeReport report = run_server(config, specs, suite);
  EXPECT_EQ(report.completed, 6u);
}

TEST(ServeServerTest, UnknownAppNameThrowsWithValidNames) {
  const auto suite = make_toy_suite(2, 1'000);
  std::vector<JobSpec> specs(1);
  specs[0].app = "nope";
  try {
    run_server(toy_server(1, Policy::kRoundRobin, 4), specs, suite);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("toy0"), std::string::npos);
    EXPECT_NE(message.find("toy1"), std::string::npos);
  }
}

TEST(ServeServerTest, ReportJsonIsWellFormed) {
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = toy_workload(4, 2);
  const ServeReport report =
      run_server(toy_server(2, Policy::kAppAffinity, 4), specs, suite);
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"completion_order\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\""), std::string::npos);
  EXPECT_NE(json.find("\"job_records\""), std::string::npos);
}

TEST(ServeServerTest, ExportsMetricsGauges) {
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = toy_workload(4, 2);
  obs::MetricsRegistry registry;
  ServerConfig config = toy_server(2, Policy::kRoundRobin, 4);
  config.metrics = &registry;
  run_server(config, specs, suite);

  const std::string prefix = "serve.round-robin.devices2";
  ASSERT_NE(registry.find_gauge(prefix + ".latency_p50_ms"), nullptr);
  ASSERT_NE(registry.find_gauge(prefix + ".latency_p95_ms"), nullptr);
  ASSERT_NE(registry.find_gauge(prefix + ".latency_p99_ms"), nullptr);
  ASSERT_NE(registry.find_gauge(prefix + ".throughput_jobs_per_s"), nullptr);
  ASSERT_NE(registry.find_gauge(prefix + ".dev0.utilization"), nullptr);
  ASSERT_NE(registry.find_gauge(prefix + ".dev1.utilization"), nullptr);
  EXPECT_GT(registry.find_gauge(prefix + ".completed")->value(), 0.0);
  EXPECT_GT(registry.find_gauge(prefix + ".dev0.utilization")->value(), 0.0);
}

TEST(ServeServerTest, TracerGetsPerDeviceEngineRowsAndServeSpans) {
  const auto suite = make_toy_suite(2, 4'000);
  const auto specs = toy_workload(4, 2);
  obs::Tracer tracer;
  ServerConfig config = toy_server(2, Policy::kRoundRobin, 4);
  config.tracer = &tracer;
  run_server(config, specs, suite);

  bool saw_dev0_engine = false;
  bool saw_dev1_engine = false;
  bool saw_serve_span = false;
  for (const obs::SpanEvent& span : tracer.spans()) {
    const std::string_view process = tracer.process_name(span.track.pid);
    if (process.rfind("dev0 engine block ", 0) == 0) saw_dev0_engine = true;
    if (process.rfind("dev1 engine block ", 0) == 0) saw_dev1_engine = true;
    if (process == "serve") saw_serve_span = true;
  }
  EXPECT_TRUE(saw_dev0_engine);
  EXPECT_TRUE(saw_dev1_engine);
  EXPECT_TRUE(saw_serve_span);
}

}  // namespace
}  // namespace bigk::serve
