// Serving-layer stress: a saturating mixed workload over a 4-device pool
// with admission pressure, affinity placement, full bigkcheck sanitizers,
// and live telemetry — everything on at once. CI runs this binary under
// ThreadSanitizer (scripts/ci.sh tsan) to prove the multi-engine refactor
// introduced no shared mutable state.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

TEST(ServeStressTest, SaturatedPoolUnderCheckersAndTelemetry) {
  const auto suite = make_toy_suite(4, 6'000, /*alu_ops=*/64.0);
  std::vector<std::string> names{"toy0", "toy1", "toy2", "toy3"};
  WorkloadConfig workload;
  workload.num_jobs = 24;
  workload.seed = 314;
  workload.mean_gap = 0;  // all 24 jobs arrive at t=0: a saturating burst
  workload.deadline = sim::DurationPs{400'000'000'000};  // 400 ms SLO

  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  ServerConfig config;
  config.system = toy_system();
  config.devices = 4;
  config.policy = Policy::kAppAffinity;
  config.queue_depth = 6;  // real admission pressure
  config.max_retries = 500;
  config.engine = toy_engine_options();
  config.check = check::CheckOptions::all_enabled();
  config.tracer = &tracer;
  config.metrics = &registry;

  const ServeReport report =
      run_server(config, make_workload(names, workload), suite);

  EXPECT_EQ(report.completed, 24u);  // retries absorb the pressure
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GT(report.rejections, 0u);
  EXPECT_LE(report.peak_queue_depth, 6u);
  EXPECT_GT(report.warm_hits, 0u);
  EXPECT_FALSE(tracer.spans().empty());
  EXPECT_GT(registry.size(), 0u);
  std::uint64_t device_jobs = 0;
  for (const DeviceReport& device : report.devices) device_jobs += device.jobs;
  EXPECT_EQ(device_jobs, 24u);
}

}  // namespace
}  // namespace bigk::serve
