// bigkdur flap damping for the serve health monitor: a quarantined device
// must pass `reinstate_after` consecutive clean probes before it re-enters
// the pool, so a flapping device — one whose outage clears and re-trips
// between probes — stays quarantined instead of bouncing jobs.
#include "serve/health.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/job.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

TEST(HealthFlapTest, ZeroReinstateThresholdIsRejected) {
  EXPECT_THROW(HealthMonitor(2, HealthMonitor::Config{2, 0}),
               std::invalid_argument);
}

TEST(HealthFlapTest, LegacySingleProbeReinstatesByDefault) {
  HealthMonitor health(2, HealthMonitor::Config{1, 1});
  ASSERT_TRUE(health.on_failure(0, /*fatal=*/true));
  EXPECT_TRUE(health.on_probe(0, true));
  EXPECT_FALSE(health.quarantined(0));
  EXPECT_EQ(health.reinstatements(), 1u);
}

TEST(HealthFlapTest, ReinstatementWaitsForConsecutiveCleanProbes) {
  HealthMonitor health(2, HealthMonitor::Config{1, 3});
  ASSERT_TRUE(health.on_failure(0, /*fatal=*/true));
  EXPECT_FALSE(health.on_probe(0, true));
  EXPECT_FALSE(health.on_probe(0, true));
  EXPECT_TRUE(health.quarantined(0));
  EXPECT_TRUE(health.on_probe(0, true));  // third clean probe completes it
  EXPECT_FALSE(health.quarantined(0));
  EXPECT_EQ(health.reinstatements(), 1u);
}

TEST(HealthFlapTest, FailedProbeResetsTheCleanStreak) {
  HealthMonitor health(2, HealthMonitor::Config{1, 3});
  ASSERT_TRUE(health.on_failure(0, /*fatal=*/true));
  // A flapping device: two clean probes, a relapse, two clean probes, a
  // relapse — it must never re-enter the pool.
  for (int cycle = 0; cycle < 4; ++cycle) {
    EXPECT_FALSE(health.on_probe(0, true));
    EXPECT_FALSE(health.on_probe(0, true));
    EXPECT_FALSE(health.on_probe(0, false));
    EXPECT_TRUE(health.quarantined(0));
  }
  EXPECT_EQ(health.reinstatements(), 0u);
  // Once the flapping stops, three clean probes in a row reinstate.
  EXPECT_FALSE(health.on_probe(0, true));
  EXPECT_FALSE(health.on_probe(0, true));
  EXPECT_TRUE(health.on_probe(0, true));
  EXPECT_EQ(health.reinstatements(), 1u);
}

TEST(HealthFlapTest, ProbesOnHealthyDevicesAreNoops) {
  HealthMonitor health(2, HealthMonitor::Config{1, 2});
  EXPECT_FALSE(health.on_probe(1, true));
  EXPECT_FALSE(health.on_probe(1, false));
  EXPECT_EQ(health.reinstatements(), 0u);
  EXPECT_FALSE(health.quarantined(1));
}

TEST(HealthFlapTest, DampedServerStillReinstatesAndCompletes) {
  // End to end: with reinstate_after=3 the lost device rides three 50 us
  // probe rounds before re-entering the pool; the workload still completes
  // with the fault books balanced.
  const auto suite = test::make_toy_suite(3, 6'000);
  WorkloadConfig workload;
  workload.num_jobs = 12;
  workload.seed = 7;
  const auto specs = make_workload({"toy0", "toy1", "toy2"}, workload);

  ServerConfig config;
  config.system = test::toy_system();
  config.devices = 4;
  config.policy = Policy::kRoundRobin;
  config.queue_depth = 12;
  config.retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
  config.max_retries = 200;
  config.engine = test::toy_engine_options();
  config.fault_spec = "device_lost,nth=1,device=0,down_us=1";
  config.probe_interval = sim::DurationPs{50'000'000};  // 50 us
  config.reinstate_after = 3;
  const ServeReport report = run_server(config, specs, suite);

  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_EQ(report.reinstatements, 1u);
  EXPECT_EQ(report.fault_recovered, report.fault_injected);
}

}  // namespace
}  // namespace bigk::serve
