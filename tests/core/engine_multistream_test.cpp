// Multi-stream pipeline tests: the paper supports several mapped data
// structures per kernel ("If multiple data structures are mapped and
// accessed by the GPU, then we additionally read the data from each
// structure separately", §IV.B). Each stream gets its own address/data
// buffers, patterns, and assembly order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

// Two mapped streams over the same record space: per record, out[r] (stream
// B, element 1) = a0 * 2 + a2 + b0, where A records have 4 elements and B
// records have 2.
struct JoinKernel {
  StreamRef<std::uint64_t> a;
  StreamRef<std::uint64_t> b;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a0 = ctx.read(a, r * 4);
      const std::uint64_t a2 = ctx.read(a, r * 4 + 2);
      const std::uint64_t b0 = ctx.read(b, r * 2);
      ctx.alu(6);
      ctx.write(b, r * 2 + 1, a0 * 2 + a2 + b0);
    }
  }
};

struct TwoStreamFixture {
  static constexpr std::uint64_t kRecords = 15'000;
  sim::Simulation sim;
  gpusim::SystemConfig config;
  std::vector<std::uint64_t> stream_a;
  std::vector<std::uint64_t> stream_b;

  TwoStreamFixture() {
    config.gpu.global_memory_bytes = 8 << 20;
    stream_a.resize(kRecords * 4);
    stream_b.resize(kRecords * 2);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      stream_a[r * 4] = r + 1;
      stream_a[r * 4 + 1] = 0xAAAA;
      stream_a[r * 4 + 2] = r * r;
      stream_a[r * 4 + 3] = 0xBBBB;
      stream_b[r * 2] = r ^ 0xF0F0;
      stream_b[r * 2 + 1] = 0;
    }
  }

  EngineMetrics run(Options options) {
    cusim::Runtime runtime(sim, config);
    Engine engine(runtime, options);
    auto ref_a = engine.streaming_map<std::uint64_t>(
        std::span(stream_a), AccessMode::kReadOnly, 4, 2);
    auto ref_b = engine.streaming_map<std::uint64_t>(
        std::span(stream_b), AccessMode::kReadWrite, 2, 1, 1);
    JoinKernel kernel{ref_a, ref_b};
    TableSet tables;
    sim.run_until_complete(
        [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
           JoinKernel k) -> sim::Task<> {
          DeviceTables device = co_await DeviceTables::upload(rt, tbl);
          co_await eng.launch(k, kRecords, device);
        }(runtime, engine, tables, kernel));
    return engine.metrics();
  }

  void check() const {
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      const std::uint64_t expected = (r + 1) * 2 + r * r + (r ^ 0xF0F0);
      ASSERT_EQ(stream_b[r * 2 + 1], expected) << "record " << r;
      ASSERT_EQ(stream_a[r * 4 + 1], 0xAAAAu);  // read-only stream untouched
    }
  }
};

Options small_options() {
  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 32 << 10;
  return options;
}

TEST(MultiStreamTest, TwoStreamsFullPipeline) {
  TwoStreamFixture fixture;
  const EngineMetrics metrics = fixture.run(small_options());
  fixture.check();
  // Both streams' accessed elements were gathered: 3 reads per record.
  EXPECT_EQ(metrics.elements_fetched, TwoStreamFixture::kRecords * 3);
  EXPECT_EQ(metrics.elements_written, TwoStreamFixture::kRecords);
}

TEST(MultiStreamTest, TwoStreamsOverlapOnlyMode) {
  TwoStreamFixture fixture;
  Options options = small_options();
  options.transfer_reduction = false;
  options.coalesced_layout = false;
  fixture.run(options);
  fixture.check();
}

TEST(MultiStreamTest, TwoStreamsWithoutPatterns) {
  TwoStreamFixture fixture;
  Options options = small_options();
  options.pattern_recognition = false;
  fixture.run(options);
  fixture.check();
}

TEST(MultiStreamTest, PatternsFoundPerStream) {
  TwoStreamFixture fixture;
  const EngineMetrics metrics = fixture.run(small_options());
  // Both streams are strided: nearly every thread-chunk patterns (tail
  // chunks can be too short to confirm a cycle).
  EXPECT_GT(metrics.pattern_hit_rate(), 0.95);
}

TEST(MultiStreamTest, StreamLimitEnforced) {
  sim::Simulation sim;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  cusim::Runtime runtime(sim, config);
  Engine engine(runtime, small_options());
  std::vector<std::uint64_t> data(64);
  for (std::uint32_t s = 0; s < kMaxStreams; ++s) {
    (void)engine.streaming_map<std::uint64_t>(std::span(data),
                                              AccessMode::kReadOnly, 1, 1);
  }
  EXPECT_THROW((void)engine.streaming_map<std::uint64_t>(
                   std::span(data), AccessMode::kReadOnly, 1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace bigk::core
