// Property sweep: the BigKernel pipeline must be functionally exact for any
// stream geometry (element width, record size, read/write counts) under
// every layout variant. A configurable gather kernel xors the first `reads`
// elements of each record and (optionally) writes the result to the last
// element; the outcome is checked against direct evaluation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

struct Geometry {
  std::uint32_t elem_size;  // 1, 4, or 8
  std::uint32_t elems_per_record;
  std::uint32_t reads_per_record;
  bool writes;
  bool transfer_reduction;
  bool coalesced;
  bool patterns;
};

std::string geometry_name(const ::testing::TestParamInfo<Geometry>& info) {
  const Geometry& g = info.param;
  return "z" + std::to_string(g.elem_size) + "e" +
         std::to_string(g.elems_per_record) + "r" +
         std::to_string(g.reads_per_record) + (g.writes ? "w" : "") +
         (g.transfer_reduction ? "T" : "") + (g.coalesced ? "C" : "") +
         (g.patterns ? "P" : "");
}

template <class T>
struct GeoKernel {
  StreamRef<T> stream;
  std::uint32_t elems_per_record;
  std::uint32_t reads_per_record;
  bool writes;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t base = r * elems_per_record;
      T acc{};
      for (std::uint32_t i = 0; i < reads_per_record; ++i) {
        acc = static_cast<T>(acc ^ ctx.read(stream, base + i));
      }
      ctx.alu(reads_per_record * 2.0);
      if (writes) {
        ctx.write(stream, base + elems_per_record - 1, acc);
      }
    }
  }
};

template <class T>
void run_geometry(const Geometry& geometry) {
  constexpr std::uint64_t kRecords = 6'000;
  sim::Simulation sim;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 4 << 20;
  cusim::Runtime runtime(sim, config);

  std::vector<T> host(kRecords * geometry.elems_per_record);
  std::uint64_t seed = 12345;
  for (T& value : host) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    value = static_cast<T>(seed >> 32);
  }
  const std::vector<T> original = host;

  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.buffer_depth = 2;
  options.transfer_reduction = geometry.transfer_reduction;
  options.coalesced_layout = geometry.coalesced;
  options.pattern_recognition = geometry.patterns;

  Engine engine(runtime, options);
  auto stream = engine.streaming_map<T>(
      std::span(host),
      geometry.writes ? AccessMode::kReadWrite : AccessMode::kReadOnly,
      geometry.elems_per_record, geometry.reads_per_record,
      geometry.writes ? 1 : 0);
  GeoKernel<T> kernel{stream, geometry.elems_per_record,
                      geometry.reads_per_record, geometry.writes};
  TableSet tables;

  sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         GeoKernel<T> k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, kRecords, device);
      }(runtime, engine, tables, kernel));

  for (std::uint64_t r = 0; r < kRecords; ++r) {
    const std::uint64_t base = r * geometry.elems_per_record;
    T expected{};
    for (std::uint32_t i = 0; i < geometry.reads_per_record; ++i) {
      expected = static_cast<T>(expected ^ original[base + i]);
    }
    if (geometry.writes) {
      ASSERT_EQ(host[base + geometry.elems_per_record - 1], expected)
          << "record " << r;
    }
    // Non-written elements must be untouched.
    for (std::uint32_t i = 0;
         i + (geometry.writes ? 1 : 0) < geometry.elems_per_record; ++i) {
      ASSERT_EQ(host[base + i], original[base + i])
          << "record " << r << " elem " << i << " clobbered";
    }
  }
  EXPECT_GT(engine.metrics().chunks, 0u);
}

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, PipelineIsExact) {
  const Geometry& geometry = GetParam();
  switch (geometry.elem_size) {
    case 1: run_geometry<std::uint8_t>(geometry); break;
    case 4: run_geometry<std::uint32_t>(geometry); break;
    case 8: run_geometry<std::uint64_t>(geometry); break;
    default: FAIL() << "unsupported element size";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        // Byte streams (Word Count / MasterCard shapes).
        Geometry{1, 1, 1, false, true, true, true},
        Geometry{1, 64, 64, false, true, true, true},
        Geometry{1, 64, 64, false, false, false, true},
        Geometry{1, 16, 8, false, true, false, true},
        // 4-byte element streams.
        Geometry{4, 4, 2, true, true, true, true},
        Geometry{4, 4, 2, true, true, true, false},
        Geometry{4, 10, 3, false, true, true, true},
        // 8-byte element streams (K-means / Netflix / DNA shapes).
        Geometry{8, 8, 4, true, true, true, true},
        Geometry{8, 8, 4, true, false, false, true},
        Geometry{8, 8, 4, true, true, false, true},
        Geometry{8, 11, 4, false, true, true, true},
        Geometry{8, 32, 23, false, true, true, true},
        Geometry{8, 1, 1, true, true, true, true},
        Geometry{8, 2, 2, true, true, true, false}),
    geometry_name);

}  // namespace
}  // namespace bigk::core
