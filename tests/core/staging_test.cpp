// Tests for the pipeline staging structures: address logs, pattern-vs-raw
// wire accounting, and the three data-buffer layouts.
#include "core/staging.hpp"

#include <gtest/gtest.h>

namespace bigk::core {
namespace {

TEST(ThreadAddrsTest, FeedCollectsElementsAndCount) {
  ThreadAddrs addrs;
  addrs.begin(true);
  for (std::uint64_t e = 0; e < 10; ++e) addrs.feed(e * 3, 8);
  EXPECT_EQ(addrs.count, 10u);
  EXPECT_EQ(addrs.elems.size(), 10u);
}

TEST(ThreadAddrsTest, StridedFeedFinalizesToPattern) {
  ThreadAddrs addrs;
  addrs.begin(true);
  for (std::uint64_t e = 0; e < 100; ++e) addrs.feed(e * 4, 8);
  addrs.finalize();
  ASSERT_TRUE(addrs.pattern.has_value());
  EXPECT_TRUE(addrs.elems.empty());  // dropped once the pattern covers them
  EXPECT_EQ(addrs.wire_bytes, addrs.pattern->descriptor_bytes());
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(addrs.element_at(k, 8), k * 4);
  }
}

TEST(ThreadAddrsTest, IrregularFeedFinalizesToRawAddresses) {
  ThreadAddrs addrs;
  addrs.begin(true);
  const std::uint64_t elems[] = {5, 99, 3, 1000, 7, 42, 8, 9, 13, 77};
  for (std::uint64_t e : elems) addrs.feed(e, 8);
  addrs.finalize();
  EXPECT_FALSE(addrs.pattern.has_value());
  EXPECT_EQ(addrs.wire_bytes, 10 * kAddrBytes);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(addrs.element_at(k, 8), elems[k]);
  }
}

TEST(ThreadAddrsTest, DetectionDisabledAlwaysSendsRaw) {
  ThreadAddrs addrs;
  addrs.begin(false);
  for (std::uint64_t e = 0; e < 50; ++e) addrs.feed(e, 8);
  addrs.finalize();
  EXPECT_FALSE(addrs.pattern.has_value());
  EXPECT_EQ(addrs.wire_bytes, 50 * kAddrBytes);
}

TEST(ThreadAddrsTest, BeginResetsForReuse) {
  ThreadAddrs addrs;
  addrs.begin(true);
  addrs.feed(1, 8);
  addrs.feed(100, 8);
  addrs.feed(3, 8);
  addrs.finalize();
  addrs.begin(true);
  EXPECT_EQ(addrs.count, 0u);
  for (std::uint64_t e = 0; e < 20; ++e) addrs.feed(e, 8);
  addrs.finalize();
  EXPECT_TRUE(addrs.pattern.has_value());
}

TEST(ThreadAddrsTest, EmptyFinalizeIsHarmless) {
  ThreadAddrs addrs;
  addrs.begin(true);
  addrs.finalize();
  EXPECT_EQ(addrs.wire_bytes, 0u);
  EXPECT_EQ(addrs.count, 0u);
}

StreamStage make_stage() {
  StreamStage stage;
  stage.dev_data_base = 10'000;
  stage.dev_write_base = 50'000;
  stage.slots_per_thread = 100;
  stage.write_slots_per_thread = 10;
  return stage;
}

TEST(LayoutTest, InterleavedPlacesThreadsAdjacently) {
  const StreamStage stage = make_stage();
  // Thread v's slot k at base + (k*C + v)*elem.
  EXPECT_EQ(data_slot_address(stage, DataLayout::kInterleaved, 64, 0, 0, 8),
            10'000u);
  EXPECT_EQ(data_slot_address(stage, DataLayout::kInterleaved, 64, 1, 0, 8),
            10'008u);
  EXPECT_EQ(data_slot_address(stage, DataLayout::kInterleaved, 64, 0, 1, 8),
            10'000u + 64 * 8);
}

TEST(LayoutTest, ThreadMajorKeepsAThreadContiguous) {
  const StreamStage stage = make_stage();
  EXPECT_EQ(data_slot_address(stage, DataLayout::kThreadMajor, 64, 0, 1, 8),
            10'008u);
  EXPECT_EQ(data_slot_address(stage, DataLayout::kThreadMajor, 64, 1, 0, 8),
            10'000u + 100 * 8);
  // kOriginal shares the thread-major geometry.
  EXPECT_EQ(data_slot_address(stage, DataLayout::kOriginal, 64, 2, 5, 8),
            10'000u + (2 * 100 + 5) * 8);
}

TEST(LayoutTest, PrefetchPositionMirrorsDeviceLayout) {
  const StreamStage stage = make_stage();
  for (std::uint32_t v : {0u, 3u, 63u}) {
    for (std::uint64_t k : {0ull, 7ull, 99ull}) {
      EXPECT_EQ(prefetch_position(stage, DataLayout::kInterleaved, 64, v, k, 8),
                data_slot_address(stage, DataLayout::kInterleaved, 64, v, k, 8) -
                    stage.dev_data_base);
    }
  }
}

TEST(LayoutTest, WriteSlotsAreAlwaysInterleaved) {
  const StreamStage stage = make_stage();
  EXPECT_EQ(write_slot_address(stage, 64, 0, 0, 8), 50'000u);
  EXPECT_EQ(write_slot_address(stage, 64, 5, 0, 8), 50'000u + 5 * 8);
  EXPECT_EQ(write_slot_address(stage, 64, 0, 2, 8), 50'000u + 2 * 64 * 8);
}

// Property: within capacity, no two (thread, slot) pairs alias, for every
// layout and element size.
TEST(LayoutProperty, SlotAddressesNeverAlias) {
  StreamStage stage = make_stage();
  stage.slots_per_thread = 16;
  constexpr std::uint32_t kThreads = 8;
  for (DataLayout layout : {DataLayout::kInterleaved, DataLayout::kThreadMajor}) {
    for (std::uint32_t elem : {1u, 4u, 8u}) {
      std::vector<std::uint64_t> seen;
      for (std::uint32_t v = 0; v < kThreads; ++v) {
        for (std::uint64_t k = 0; k < stage.slots_per_thread; ++k) {
          seen.push_back(data_slot_address(stage, layout, kThreads, v, k, elem));
        }
      }
      std::sort(seen.begin(), seen.end());
      EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
          << "aliasing in layout " << static_cast<int>(layout) << " elem "
          << elem;
    }
  }
}

}  // namespace
}  // namespace bigk::core
