// Engine pipeline telemetry through the unified obs::Tracer (successor of
// the retired trace::Recorder shim): a real engine run must emit one span
// per (stage, block, chunk) on "engine block <b>" process rows, the per-stage
// busy metrics must show actual pipelining, and set_trace_scope() must
// namespace the rows so concurrent engines do not collide.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/device_tables.hpp"
#include "cusim/runtime.hpp"
#include "obs/stage.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

struct SumKernel {
  StreamRef<std::uint64_t> s;
  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t b, std::uint64_t e,
                  std::uint64_t stride) const {
    for (std::uint64_t r = b; r < e; r += stride) {
      const auto a = ctx.read(s, r * 4);
      const auto c = ctx.read(s, r * 4 + 1);
      ctx.write(s, r * 4 + 3, a + c);
    }
  }
};

constexpr std::uint64_t kRecords = 10'000;

/// Runs one small engine launch with `tracer` attached and returns the
/// engine's chunk count.
std::uint64_t run_traced_engine(obs::Tracer* tracer,
                                const std::string& trace_scope,
                                sim::TimePs* finished,
                                EngineMetrics* metrics_out) {
  sim::Simulation sim;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 8 << 20;
  cusim::Runtime runtime(sim, config);

  std::vector<std::uint64_t> host(kRecords * 4);
  for (std::uint64_t i = 0; i < host.size(); ++i) host[i] = i;

  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 32 << 10;
  Engine engine(runtime, options);
  engine.set_tracer(tracer);
  engine.set_trace_scope(trace_scope);

  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(host), AccessMode::kReadWrite, 4, 2, 1);
  SumKernel kernel{stream};
  TableSet tables;

  sim.run_until_complete([](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
                            SumKernel k) -> sim::Task<> {
    DeviceTables device = co_await DeviceTables::upload(rt, tbl);
    co_await eng.launch(k, kRecords, device);
  }(runtime, engine, tables, kernel));

  if (finished != nullptr) *finished = sim.now();
  if (metrics_out != nullptr) *metrics_out = engine.metrics();
  return engine.metrics().chunks;
}

// A real engine run must produce one tracer span per (stage, block, chunk),
// all on "engine block <b>" processes, with non-degenerate intervals.
TEST(EngineTraceTest, EngineEmitsAllStages) {
  obs::Tracer tracer;
  sim::TimePs finished = 0;
  EngineMetrics metrics;
  const std::uint64_t chunks =
      run_traced_engine(&tracer, "", &finished, &metrics);
  ASSERT_GT(chunks, 0u);

  std::map<std::string, std::uint64_t> per_stage;
  for (const obs::SpanEvent& span : tracer.spans()) {
    if (span.category != "engine") continue;
    EXPECT_GE(span.end, span.begin);
    const std::string_view process = tracer.process_name(span.track.pid);
    EXPECT_EQ(process.rfind("engine block ", 0), 0u)
        << "engine span on foreign process " << process;
    ++per_stage[span.name];
  }
  // One span per chunk for each of the five stages (writes present).
  for (obs::Stage stage : obs::all_stages()) {
    EXPECT_EQ(per_stage[obs::stage_name(stage)], chunks)
        << obs::stage_name(stage);
  }
  // The stage pipeline must actually overlap: total span < sum of stages.
  sim::DurationPs stage_sum = 0;
  for (obs::Stage stage : obs::all_stages()) {
    stage_sum += metrics.stage_busy(stage);
  }
  EXPECT_LT(finished, stage_sum);
  // Tracer spans and the metrics breakdown come from the same intervals.
  for (obs::Stage stage : obs::all_stages()) {
    EXPECT_EQ(tracer.named_busy(obs::stage_name(stage)),
              metrics.stage_busy(stage))
        << obs::stage_name(stage);
  }
}

// set_trace_scope must prefix every engine process row, so engines driving
// different devices write to disjoint tracks of one shared tracer.
TEST(EngineTraceTest, TraceScopeNamespacesProcessRows) {
  obs::Tracer tracer;
  run_traced_engine(&tracer, "dev1 ", nullptr, nullptr);
  ASSERT_FALSE(tracer.spans().empty());
  bool saw_engine_row = false;
  for (const obs::SpanEvent& span : tracer.spans()) {
    if (span.category != "engine") continue;
    const std::string_view process = tracer.process_name(span.track.pid);
    EXPECT_EQ(process.rfind("dev1 engine block ", 0), 0u) << process;
    saw_engine_row = true;
  }
  EXPECT_TRUE(saw_engine_row);
}

// The exported Chrome JSON must carry the labelled engine rows end to end.
TEST(EngineTraceTest, ChromeJsonNamesEngineProcesses) {
  obs::Tracer tracer;
  run_traced_engine(&tracer, "", nullptr, nullptr);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("engine block 0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

}  // namespace
}  // namespace bigk::core
