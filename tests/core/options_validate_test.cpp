// Unit tests for core::Options validation: static invariants via
// Options::validate() plus the device-aware checks the Engine constructor
// layers on top (warp-size multiple, staging ring vs. arena capacity).
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

TEST(OptionsValidateTest, DefaultsAreValid) {
  EXPECT_NO_THROW(Options{}.validate());
  EXPECT_NO_THROW(Options::overlap_only().validate());
  EXPECT_NO_THROW(Options::with_transfer_reduction().validate());
  EXPECT_NO_THROW(Options::full().validate());
}

TEST(OptionsValidateTest, RejectsThreadsNotMultipleOfWarp) {
  Options options;
  options.compute_threads_per_block = 96;
  EXPECT_NO_THROW(options.validate());  // 3 warps: fine
  options.compute_threads_per_block = 100;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.compute_threads_per_block = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(OptionsValidateTest, RejectsZeroBlocks) {
  Options options;
  options.num_blocks = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(OptionsValidateTest, RejectsSingleBufferRing) {
  Options options;
  options.buffer_depth = 1;  // no slot to produce into while one is consumed
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.buffer_depth = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.buffer_depth = 2;
  EXPECT_NO_THROW(options.validate());
}

struct EngineCtorFixture {
  sim::Simulation sim;
  gpusim::SystemConfig config;

  EngineCtorFixture() { config.gpu.global_memory_bytes = 4 << 20; }
};

TEST(OptionsValidateTest, EngineConstructorRunsStaticValidation) {
  EngineCtorFixture fx;
  cusim::Runtime runtime(fx.sim, fx.config);
  Options options;
  options.buffer_depth = 1;
  EXPECT_THROW(Engine(runtime, options), std::invalid_argument);
}

TEST(OptionsValidateTest, EngineRejectsThreadsNotMultipleOfDeviceWarp) {
  EngineCtorFixture fx;
  fx.config.gpu.warp_size = 64;  // wavefront-style device
  cusim::Runtime runtime(fx.sim, fx.config);
  Options options;
  options.compute_threads_per_block = 96;  // 3x32 but 1.5x64
  EXPECT_THROW(Engine(runtime, options), std::invalid_argument);
  options.compute_threads_per_block = 128;
  EXPECT_NO_THROW(Engine(runtime, options));
}

TEST(OptionsValidateTest, EngineRejectsRingLargerThanArena) {
  EngineCtorFixture fx;
  cusim::Runtime runtime(fx.sim, fx.config);
  Options options;
  options.buffer_depth = 3;
  options.data_buf_bytes = 2 << 20;  // 3 x 2 MiB ring > 4 MiB arena
  EXPECT_THROW(Engine(runtime, options), std::invalid_argument);
  options.data_buf_bytes = 256 << 10;
  EXPECT_NO_THROW(Engine(runtime, options));
}

}  // namespace
}  // namespace bigk::core
