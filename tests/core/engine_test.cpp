// Integration tests for the BigKernel engine: functional correctness of the
// full 4(+2)-stage pipeline under every feature combination, plus the
// mechanism checks behind the paper's claims (single launch, transfer
// reduction, pattern recognition, coalesced layout).
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/device_tables.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

// Toy streaming kernel: records of 4 elements [a, b, pad, out];
// out = a + b + bias. Reads are strided (pattern-friendly), control flow is
// independent of stream values.
struct ScaleKernel {
  StreamRef<std::uint64_t> data;
  TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(5);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

// Irregular variant: the first read hops around pseudo-randomly (but
// data-independently), so no stride pattern exists.
struct IrregularKernel {
  StreamRef<std::uint64_t> data;
  std::uint64_t num_records;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t other = (r * 2654435761u) % num_records;
      const std::uint64_t a = ctx.read(data, other * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      ctx.write(data, r * 4 + 3, a ^ b);
    }
  }
};

struct Fixture {
  static constexpr std::uint64_t kRecords = 20'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  std::vector<std::uint64_t> host;

  Fixture() {
    config.gpu.global_memory_bytes = 8 << 20;
    host.resize(kRecords * 4);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      host[r * 4] = r * 3;
      host[r * 4 + 1] = r ^ 5;
      host[r * 4 + 2] = 0xDEAD;
      host[r * 4 + 3] = 0;
    }
  }
};

Options small_options() {
  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  return options;
}

/// Runs ScaleKernel through the engine and returns (metrics, elapsed).
EngineMetrics run_scale(Fixture& fixture, Options options,
                        sim::TimePs* elapsed = nullptr) {
  cusim::Runtime runtime(fixture.sim, fixture.config);
  Engine engine(runtime, options);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite,
      /*elems_per_record=*/4, /*reads_per_record=*/2, /*writes_per_record=*/1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  ScaleKernel kernel{stream, bias};

  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));

  if (elapsed) *elapsed = fixture.sim.now();
  return engine.metrics();
}

void expect_scale_output(const Fixture& fixture) {
  for (std::uint64_t r = 0; r < Fixture::kRecords; ++r) {
    ASSERT_EQ(fixture.host[r * 4 + 3], r * 3 + (r ^ 5) + 7) << "record " << r;
    ASSERT_EQ(fixture.host[r * 4 + 2], 0xDEADu) << "pad clobbered at " << r;
  }
}

TEST(EngineTest, FullPipelineComputesCorrectResults) {
  Fixture fixture;
  run_scale(fixture, small_options());
  expect_scale_output(fixture);
}

TEST(EngineTest, OverlapOnlyModeComputesCorrectResults) {
  Fixture fixture;
  Options options = small_options();
  options.transfer_reduction = false;
  options.coalesced_layout = false;
  run_scale(fixture, options);
  expect_scale_output(fixture);
}

TEST(EngineTest, TransferReductionWithoutCoalescingComputesCorrectResults) {
  Fixture fixture;
  Options options = small_options();
  options.coalesced_layout = false;
  run_scale(fixture, options);
  expect_scale_output(fixture);
}

TEST(EngineTest, PatternRecognitionOffComputesCorrectResults) {
  Fixture fixture;
  Options options = small_options();
  options.pattern_recognition = false;
  run_scale(fixture, options);
  expect_scale_output(fixture);
}

TEST(EngineTest, LocalityAssemblyOffComputesCorrectResults) {
  Fixture fixture;
  Options options = small_options();
  options.locality_assembly = false;
  run_scale(fixture, options);
  expect_scale_output(fixture);
}

TEST(EngineTest, DeepAndShallowRingsAgree) {
  for (std::uint32_t depth : {2u, 3u, 5u}) {
    Fixture fixture;
    Options options = small_options();
    options.buffer_depth = depth;
    run_scale(fixture, options);
    expect_scale_output(fixture);
  }
}

TEST(EngineTest, SingleKernelLaunchForWholeStream) {
  Fixture fixture;
  cusim::Runtime runtime(fixture.sim, fixture.config);
  Engine engine(runtime, small_options());
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite, 4, 2, 1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  ScaleKernel kernel{stream, bias};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
      }(runtime, engine, tables, kernel));
  EXPECT_EQ(runtime.gpu().stats().kernel_launches, 1u);
  EXPECT_GT(engine.metrics().chunks, engine.active_blocks());
}

TEST(EngineTest, TransferReductionShrinksDataTraffic) {
  Fixture full_fixture;
  const EngineMetrics full = run_scale(full_fixture, small_options());
  Fixture fetch_all_fixture;
  Options fetch_all = small_options();
  fetch_all.transfer_reduction = false;
  fetch_all.coalesced_layout = false;
  const EngineMetrics all = run_scale(fetch_all_fixture, fetch_all);
  // The kernel reads 2 of 4 elements: reduced traffic should be ~half.
  EXPECT_LT(full.data_bytes_sent, all.data_bytes_sent * 6 / 10);
  EXPECT_GT(full.data_bytes_sent, all.data_bytes_sent * 4 / 10);
}

TEST(EngineTest, PatternRecognitionShrinksAddressTraffic) {
  // Use realistically sized chunks so the fixed ~tens-of-bytes pattern
  // descriptor amortizes (with 10-record chunks it saves only ~4x).
  Options options = small_options();
  options.data_buf_bytes = 256 << 10;
  Fixture with_fixture;
  const EngineMetrics with_patterns = run_scale(with_fixture, options);
  Fixture without_fixture;
  Options no_patterns = options;
  no_patterns.pattern_recognition = false;
  const EngineMetrics without = run_scale(without_fixture, no_patterns);
  EXPECT_DOUBLE_EQ(with_patterns.pattern_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(without.pattern_hit_rate(), 0.0);
  // One 8-byte address per access vs a ~32-byte descriptor per thread-chunk.
  EXPECT_LT(with_patterns.addr_bytes_sent, without.addr_bytes_sent / 10);
}

TEST(EngineTest, CoalescedLayoutSpeedsUpComputeStage) {
  Fixture coalesced_fixture;
  sim::TimePs coalesced_elapsed = 0;
  const EngineMetrics coalesced =
      run_scale(coalesced_fixture, small_options(), &coalesced_elapsed);
  Fixture strided_fixture;
  Options strided_options = small_options();
  strided_options.coalesced_layout = false;
  sim::TimePs strided_elapsed = 0;
  const EngineMetrics strided =
      run_scale(strided_fixture, strided_options, &strided_elapsed);
  EXPECT_LT(coalesced.compute_busy(), strided.compute_busy());
}

TEST(EngineTest, IrregularAccessesFindNoPatternButStayCorrect) {
  Fixture fixture;
  cusim::Runtime runtime(fixture.sim, fixture.config);
  Engine engine(runtime, small_options());
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite, 4, 2, 1);
  TableSet tables;
  IrregularKernel kernel{stream, Fixture::kRecords};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         IrregularKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
      }(runtime, engine, tables, kernel));
  // The strided second read still patterns; the scrambled first one cannot.
  EXPECT_LT(engine.metrics().pattern_hit_rate(), 0.8);
  for (std::uint64_t r = 0; r < Fixture::kRecords; ++r) {
    const std::uint64_t other = (r * 2654435761u) % Fixture::kRecords;
    ASSERT_EQ(fixture.host[r * 4 + 3],
              (other * 3) ^ (r ^ 5))
        << "record " << r;
  }
}

TEST(EngineTest, ReadProportionIsReflectedInSourceReads) {
  Fixture fixture;
  const EngineMetrics metrics = run_scale(fixture, small_options());
  // 2 of 4 elements fetched exactly once each.
  EXPECT_EQ(metrics.elements_fetched, Fixture::kRecords * 2);
  EXPECT_EQ(metrics.elements_written, Fixture::kRecords);
  EXPECT_EQ(metrics.source_bytes_read, Fixture::kRecords * 2 * 8);
}

TEST(EngineTest, StageBusyTimesAreAllPopulated) {
  Fixture fixture;
  const EngineMetrics metrics = run_scale(fixture, small_options());
  EXPECT_GT(metrics.addr_gen_busy(), 0u);
  EXPECT_GT(metrics.assembly_busy(), 0u);
  EXPECT_GT(metrics.transfer_busy(), 0u);
  EXPECT_GT(metrics.compute_busy(), 0u);
  EXPECT_GT(metrics.writeback_busy(), 0u);
  // Address generation runs a skeleton kernel: it must be the cheap stage.
  EXPECT_LT(metrics.addr_gen_busy(), metrics.compute_busy());
}

TEST(EngineTest, ZeroRecordsCompletesImmediately) {
  Fixture fixture;
  cusim::Runtime runtime(fixture.sim, fixture.config);
  Engine engine(runtime, small_options());
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite, 4, 2, 1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  ScaleKernel kernel{stream, bias};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, 0, device);
      }(runtime, engine, tables, kernel));
  EXPECT_EQ(engine.metrics().chunks, 0u);
}

TEST(EngineTest, AutoSizedBuffersFitDeviceMemory) {
  Fixture fixture;
  Options options = small_options();
  options.data_buf_bytes = 0;  // auto-size from free memory
  run_scale(fixture, options);
  expect_scale_output(fixture);
}

TEST(EngineTest, OversizedExplicitBuffersThrow) {
  Fixture fixture;
  Options options = small_options();
  options.data_buf_bytes = 1ull << 30;  // far beyond the 8 MB device
  // Caught by the engine's construction-time validation, before any device
  // allocation happens (tests/core/options_validate_test.cpp covers the
  // diagnostics in detail).
  EXPECT_THROW(run_scale(fixture, options), std::invalid_argument);
}

TEST(EngineTest, LaunchWithoutStreamsThrows) {
  sim::Simulation sim;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  cusim::Runtime runtime(sim, config);
  Engine engine(runtime, small_options());
  TableSet tables;
  DeviceTables device;
  ScaleKernel kernel{};
  EXPECT_THROW(sim.run_until_complete(engine.launch(kernel, 10, device)),
               std::logic_error);
}

TEST(EngineOptionsTest, ValidationRejectsBadShapes) {
  Options bad_threads;
  bad_threads.compute_threads_per_block = 100;  // not a warp multiple
  EXPECT_THROW(bad_threads.validate(), std::invalid_argument);

  Options bad_depth;
  bad_depth.buffer_depth = 1;
  EXPECT_THROW(bad_depth.validate(), std::invalid_argument);

  Options bad_blocks;
  bad_blocks.num_blocks = 0;
  EXPECT_THROW(bad_blocks.validate(), std::invalid_argument);
}

TEST(EngineOptionsTest, PresetsMatchAblationDefinitions) {
  const Options overlap = Options::overlap_only();
  EXPECT_FALSE(overlap.transfer_reduction);
  EXPECT_FALSE(overlap.coalesced_layout);
  const Options reduced = Options::with_transfer_reduction();
  EXPECT_TRUE(reduced.transfer_reduction);
  EXPECT_FALSE(reduced.coalesced_layout);
  const Options full = Options::full();
  EXPECT_TRUE(full.transfer_reduction && full.coalesced_layout);
}

TEST(EngineTest, PinnedFootprintIsTracked) {
  Fixture fixture;
  cusim::Runtime runtime(fixture.sim, fixture.config);
  Engine engine(runtime, small_options());
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite, 4, 2, 1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  ScaleKernel kernel{stream, bias};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
      }(runtime, engine, tables, kernel));
  EXPECT_GT(runtime.pinned_bytes(), 0u);
}

}  // namespace
}  // namespace bigk::core
