// Tests for TableSet and its device materialization.
#include "core/device_tables.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/stream.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  return config;
}

TEST(TableSetTest, TypedSpansRoundTrip) {
  TableSet tables;
  auto ints = tables.add<std::uint32_t>(10);
  auto doubles = tables.add<double>(4);
  tables.host_span(ints)[3] = 99;
  tables.host_span(doubles)[0] = 2.5;
  EXPECT_EQ(tables.host_span(ints)[3], 99u);
  EXPECT_DOUBLE_EQ(tables.host_span(doubles)[0], 2.5);
  EXPECT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables.total_bytes(), 10 * 4 + 4 * 8u);
}

TEST(TableSetTest, TypeMismatchThrows) {
  TableSet tables;
  auto ints = tables.add<std::uint32_t>(10);
  TableRef<double> wrong{ints.id};
  EXPECT_THROW(tables.host_span(wrong), std::logic_error);
}

TEST(TableSetTest, ZeroInitialized) {
  TableSet tables;
  auto t = tables.add<std::uint64_t>(100);
  for (std::uint64_t v : tables.host_span(t)) EXPECT_EQ(v, 0u);
}

TEST(DeviceTablesTest, UploadCopiesContentAndChargesPcie) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, small_config());
  TableSet tables;
  auto t = tables.add<std::uint32_t>(256);
  auto span = tables.host_span(t);
  std::iota(span.begin(), span.end(), 1u);

  sim.run_until_complete([](cusim::Runtime& rt, TableSet& tbl,
                            TableRef<std::uint32_t> ref) -> sim::Task<> {
    DeviceTables device = co_await DeviceTables::upload(rt, tbl);
    auto ptr = device.device_ptr(ref);
    EXPECT_EQ(rt.gpu().memory().read(ptr, 0), 1u);
    EXPECT_EQ(rt.gpu().memory().read(ptr, 255), 256u);
    EXPECT_EQ(device.device_bytes(), 1024u);
    device.release();
  }(runtime, tables, t));
  EXPECT_EQ(runtime.gpu().stats().h2d_bytes, 1024u);
  EXPECT_GT(sim.now(), 0u);
}

TEST(DeviceTablesTest, DownloadBringsResultsBack) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, small_config());
  TableSet tables;
  auto t = tables.add<std::uint32_t>(16);
  sim.run_until_complete([](cusim::Runtime& rt, TableSet& tbl,
                            TableRef<std::uint32_t> ref) -> sim::Task<> {
    DeviceTables device = co_await DeviceTables::upload(rt, tbl);
    rt.gpu().memory().write(device.device_ptr(ref), 7, 1234u);
    co_await device.download();
    EXPECT_EQ(tbl.host_span(ref)[7], 1234u);
    device.release();
  }(runtime, tables, t));
  EXPECT_EQ(runtime.gpu().stats().d2h_bytes, 64u);
}

TEST(DeviceTablesTest, ReleaseFreesDeviceMemory) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, small_config());
  TableSet tables;
  (void)tables.add<std::uint64_t>(1000);
  const std::uint64_t before = runtime.gpu().memory().used();
  sim.run_until_complete([](cusim::Runtime& rt, TableSet& tbl,
                            std::uint64_t baseline) -> sim::Task<> {
    DeviceTables device = co_await DeviceTables::upload(rt, tbl);
    EXPECT_GT(rt.gpu().memory().used(), baseline);
    device.release();
    EXPECT_EQ(rt.gpu().memory().used(), baseline);
    device.release();  // idempotent
  }(runtime, tables, before));
}

TEST(DeviceTablesTest, EmptySetUploadsNothing) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, small_config());
  TableSet tables;
  sim.run_until_complete([](cusim::Runtime& rt, TableSet& tbl) -> sim::Task<> {
    DeviceTables device = co_await DeviceTables::upload(rt, tbl);
    EXPECT_EQ(device.device_bytes(), 0u);
  }(runtime, tables));
  EXPECT_EQ(runtime.gpu().stats().h2d_bytes, 0u);
}

}  // namespace
}  // namespace bigk::core
