// Tests for the stride-pattern recognition of §IV.A.
#include "core/pattern.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bigk::core {
namespace {

std::vector<std::uint64_t> expand(const StridePattern& pattern) {
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t i = 0; i < pattern.count; ++i) {
    addrs.push_back(pattern.address_at(i));
  }
  return addrs;
}

TEST(StridePatternTest, AddressAtReproducesCyclicStrides) {
  // The paper's K-means shape: x,y,z of 48-byte particles -> strides 8,8,32.
  StridePattern pattern{0x1000, {8, 8, 32}, 7};
  EXPECT_EQ(expand(pattern),
            (std::vector<std::uint64_t>{0x1000, 0x1008, 0x1010, 0x1030,
                                        0x1038, 0x1040, 0x1060}));
}

TEST(StridePatternTest, DescriptorBytesScaleWithCycle) {
  EXPECT_EQ((StridePattern{0, {1}, 10}.descriptor_bytes()), 24u);
  EXPECT_EQ((StridePattern{0, {8, 8, 32}, 10}.descriptor_bytes()), 40u);
}

TEST(StridePatternTest, NegativeStridesWork) {
  StridePattern pattern{0x1000, {-16}, 4};
  EXPECT_EQ(expand(pattern),
            (std::vector<std::uint64_t>{0x1000, 0xFF0, 0xFE0, 0xFD0}));
}

TEST(PatternDetectorTest, DetectsUnitStride) {
  PatternDetector detector;
  for (std::uint64_t a = 100; a < 200; ++a) ASSERT_TRUE(detector.feed(a));
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->base, 100u);
  EXPECT_EQ(pattern->strides, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pattern->count, 100u);
}

TEST(PatternDetectorTest, DetectsKmeansCycle) {
  // Example from the paper: 0x00100, 0x00105, 0x00110, 0x00115 has base
  // 0x00100 and stride cycle [5, 11, 5] — our detector explains any
  // consistent cyclic stride sequence.
  PatternDetector detector(8, 4);
  std::uint64_t addr = 0x2000;
  std::vector<std::uint64_t> fed;
  for (int rec = 0; rec < 20; ++rec) {
    for (std::int64_t stride : {8, 8, 32}) {
      fed.push_back(addr);
      addr += static_cast<std::uint64_t>(stride);
    }
  }
  for (std::uint64_t a : fed) ASSERT_TRUE(detector.feed(a));
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->count, fed.size());
  for (std::uint64_t i = 0; i < fed.size(); ++i) {
    EXPECT_EQ(pattern->address_at(i), fed[i]) << "i=" << i;
  }
}

TEST(PatternDetectorTest, BreakDuringVerificationReturnsFalseOnce) {
  PatternDetector detector(4, 2);
  for (std::uint64_t a : {0u, 8u, 16u, 24u}) ASSERT_TRUE(detector.feed(a));
  EXPECT_EQ(detector.state(), PatternDetector::State::kVerifying);
  EXPECT_FALSE(detector.feed(1000));  // breaks the stride
  EXPECT_EQ(detector.state(), PatternDetector::State::kBroken);
  EXPECT_TRUE(detector.feed(2000));  // further feeds just collect
  EXPECT_FALSE(detector.pattern().has_value());
}

TEST(PatternDetectorTest, IrregularProbeNeverFormsPattern) {
  PatternDetector detector(6, 4);
  for (std::uint64_t a : {3u, 17u, 4u, 96u, 11u, 205u, 7u}) detector.feed(a);
  EXPECT_FALSE(detector.pattern().has_value());
  EXPECT_EQ(detector.state(), PatternDetector::State::kBroken);
}

TEST(PatternDetectorTest, ShortConsistentSequenceStillYieldsPattern) {
  // Fewer addresses than the probe window, but perfectly strided: the
  // pattern covers them exactly.
  PatternDetector detector(16, 4);
  for (std::uint64_t a : {0u, 4u, 8u}) detector.feed(a);
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->count, 3u);
  EXPECT_EQ(pattern->strides, (std::vector<std::int64_t>{4}));
}

TEST(PatternDetectorTest, SingleAddressIsItsOwnPattern) {
  PatternDetector detector;
  detector.feed(0xABC);
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->base, 0xABCu);
  EXPECT_EQ(pattern->count, 1u);
}

TEST(PatternDetectorTest, NoAddressesMeansNoPattern) {
  PatternDetector detector;
  EXPECT_FALSE(detector.pattern().has_value());
}

TEST(PatternDetectorTest, ResetAllowsReuse) {
  PatternDetector detector(4, 2);
  for (std::uint64_t a : {9u, 1u, 77u, 13u}) detector.feed(a);
  EXPECT_EQ(detector.state(), PatternDetector::State::kBroken);
  detector.reset();
  for (std::uint64_t a : {0u, 8u, 16u, 24u, 32u}) detector.feed(a);
  ASSERT_TRUE(detector.pattern().has_value());
}

TEST(PatternDetectorTest, PrefersShortestCycle) {
  PatternDetector detector(8, 4);
  for (std::uint64_t a = 0; a < 64; a += 8) detector.feed(a);
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->strides.size(), 1u);
}

TEST(PatternDetectorTest, CycleLongerThanMaxCycleNeverLocksOn) {
  // A perfectly periodic sequence whose cycle (5) exceeds max_cycle (4):
  // the detector must refuse rather than truncate to a wrong hypothesis.
  PatternDetector detector(16, 4);
  std::uint64_t addr = 0;
  for (int i = 0; i < 40; ++i) {
    detector.feed(addr);
    addr += static_cast<std::uint64_t>((i % 5) + 1);  // cycle [1,2,3,4,5]
  }
  EXPECT_FALSE(detector.pattern().has_value());
  // The same sequence with max_cycle 5 is explained exactly.
  PatternDetector wider(16, 5);
  addr = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(wider.feed(addr)) << "i=" << i;
    addr += static_cast<std::uint64_t>((i % 5) + 1);
  }
  EXPECT_TRUE(wider.pattern().has_value());
}

TEST(PatternDetectorTest, ResetMidVerificationStartsFresh) {
  PatternDetector detector(4, 2);
  for (std::uint64_t a : {0u, 8u, 16u, 24u, 32u, 40u}) {
    ASSERT_TRUE(detector.feed(a));
  }
  ASSERT_EQ(detector.state(), PatternDetector::State::kVerifying);
  detector.reset();
  EXPECT_FALSE(detector.pattern().has_value());  // verified prefix discarded
  // A different stride after reset must not be judged against the old
  // hypothesis.
  for (std::uint64_t a : {5u, 12u, 19u, 26u, 33u}) {
    ASSERT_TRUE(detector.feed(a));
  }
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->base, 5u);
  EXPECT_EQ(pattern->strides, (std::vector<std::int64_t>{7}));
}

TEST(PatternDetectorTest, RepeatedSingleAddressIsAZeroStrideCycle) {
  // A kernel that polls one element (e.g. a table-resident accumulator read
  // through a stream) produces a constant address sequence.
  PatternDetector detector(6, 3);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(detector.feed(0x4000));
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->base, 0x4000u);
  EXPECT_EQ(pattern->count, 20u);
  for (std::int64_t stride : pattern->strides) EXPECT_EQ(stride, 0);
}

TEST(PatternDetectorTest, DescendingNegativeStrideCycle) {
  // Reverse-order scan with a record skip: cycle [-8, -8, -48].
  PatternDetector detector(16, 4);
  std::uint64_t addr = 1 << 16;
  std::vector<std::uint64_t> fed;
  for (int rec = 0; rec < 12; ++rec) {
    for (std::int64_t stride : {-8, -8, -48}) {
      fed.push_back(addr);
      addr += static_cast<std::uint64_t>(stride);
    }
  }
  for (std::uint64_t a : fed) ASSERT_TRUE(detector.feed(a));
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  for (std::uint64_t i = 0; i < fed.size(); ++i) {
    EXPECT_EQ(pattern->address_at(i), fed[i]) << "i=" << i;
  }
}

// Property sweep: any (base, cycle, count) combination round-trips.
struct PatternCase {
  std::uint64_t base;
  std::vector<std::int64_t> strides;
};

class PatternRoundTrip : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternRoundTrip, DetectorConfirmsAndReproduces) {
  const PatternCase& param = GetParam();
  StridePattern truth{param.base, param.strides, 50};
  // The probe window must hold two full cycles plus one address for the
  // longest cycle under test (4).
  PatternDetector detector(12, 4);
  for (std::uint64_t i = 0; i < truth.count; ++i) {
    ASSERT_TRUE(detector.feed(truth.address_at(i))) << "i=" << i;
  }
  auto pattern = detector.pattern();
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->count, truth.count);
  for (std::uint64_t i = 0; i < truth.count; ++i) {
    EXPECT_EQ(pattern->address_at(i), truth.address_at(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, PatternRoundTrip,
    ::testing::Values(PatternCase{0, {1}}, PatternCase{4096, {8}},
                      PatternCase{100, {8, 8, 32}}, PatternCase{7, {3, 5}},
                      PatternCase{1 << 20, {64, -8, 8, 200}},
                      PatternCase{50, {0}}, PatternCase{1234, {16, 16}}));

}  // namespace
}  // namespace bigk::core
