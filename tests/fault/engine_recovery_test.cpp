// bigkfault end-to-end recovery at the engine level: with a fault plane
// attached to the runtime, injected faults are absorbed (chunk-level H2D
// retry, watchdog-bounded stalls, degraded ring depth) and the launch output
// is byte-identical to a fault-free run — the recovery suite behind the
// fault.recovered == fault.injected contract. Unrecoverable specs abort the
// launch with the matching typed error instead of hanging or corrupting.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/pinned_pool.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "fault/fault.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

// Same toy streaming kernel as the engine tests: records of 4 elements
// [a, b, pad, out]; out = a + b + bias, pad must survive untouched.
struct ScaleKernel {
  StreamRef<std::uint64_t> data;
  TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(5);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

struct Fixture {
  static constexpr std::uint64_t kRecords = 20'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  std::vector<std::uint64_t> host;

  Fixture() {
    config.gpu.global_memory_bytes = 8 << 20;
    host.resize(kRecords * 4);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      host[r * 4] = r * 3;
      host[r * 4 + 1] = r ^ 5;
      host[r * 4 + 2] = 0xDEAD;
      host[r * 4 + 3] = 0;
    }
  }
};

Options small_options() {
  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  return options;
}

struct RunResult {
  fault::FaultStats fault;
  EngineMetrics engine;
  sim::TimePs elapsed = 0;
};

/// Runs ScaleKernel with `spec` installed on the runtime's fault plane
/// (empty = fault-free). `use_pinned_pool` attaches an external PinnedPool —
/// the pinned_alloc_fail injection site and the degraded-ring path.
RunResult run_scale(Fixture& fixture, Options options, const char* spec,
                    bool use_pinned_pool = false) {
  fault::FaultPlane plane(/*seed=*/1);
  cusim::Runtime runtime(fixture.sim, fixture.config);
  if (spec != nullptr && spec[0] != '\0') {
    plane.add_all(fault::FaultSpec::parse(spec));
    runtime.set_fault_plane(&plane);
  }
  cache::PinnedPool pool(runtime);
  Engine engine(runtime, options);
  if (use_pinned_pool) engine.set_pinned_pool(&pool);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite,
      /*elems_per_record=*/4, /*reads_per_record=*/2, /*writes_per_record=*/1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  ScaleKernel kernel{stream, bias};

  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));

  return RunResult{plane.stats(), engine.metrics(), fixture.sim.now()};
}

/// Golden output: one fault-free run's host bytes.
const std::vector<std::uint64_t>& golden_output() {
  static const std::vector<std::uint64_t> golden = [] {
    Fixture fixture;
    run_scale(fixture, small_options(), "");
    return fixture.host;
  }();
  return golden;
}

void expect_byte_identical(const Fixture& fixture) {
  ASSERT_EQ(fixture.host, golden_output())
      << "recovered run diverged from the fault-free output";
}

TEST(EngineRecoveryTest, DmaErrorRetryIsByteIdentical) {
  Fixture fixture;
  const RunResult result = run_scale(fixture, small_options(), "dma_error,nth=3");
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  EXPECT_GE(result.engine.chunk_retries, 1u);
  EXPECT_GT(result.engine.retried_bytes, 0u);
}

TEST(EngineRecoveryTest, RepeatedDmaErrorsAreAllAbsorbed) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, small_options(), "dma_error,nth=2,every=7,max=4");
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 4u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
}

TEST(EngineRecoveryTest, EccCorruptionIsRestagedByteIdentical) {
  // ecc_corrupt lands the copy, then trashes device bytes; the retry
  // re-transfers the pinned image, so the corruption never reaches compute.
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, small_options(), "ecc_corrupt,nth=2,every=5,max=3");
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 3u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  EXPECT_GE(result.engine.chunk_retries, 3u);
}

TEST(EngineRecoveryTest, FiniteStageStallIsAbsorbed) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, small_options(), "stage_stall,nth=2,stall_us=50");
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  // The absorbed stall costs sim time relative to the fault-free run.
  Fixture baseline;
  const RunResult clean = run_scale(baseline, small_options(), "");
  EXPECT_GT(result.elapsed, clean.elapsed);
}

TEST(EngineRecoveryTest, PinnedAllocFailureDegradesRingByteIdentical) {
  // With a pool attached, the 3rd slot acquisition is block 0's last ring
  // slot (depth 3): the failure rolls that slot back and block 0 runs with a
  // 2-deep ring while every other block keeps 3.
  Fixture fixture;
  const RunResult result = run_scale(fixture, small_options(),
                                     "pinned_alloc_fail,nth=3",
                                     /*use_pinned_pool=*/true);
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  EXPECT_EQ(result.fault.degraded, 1u);
  EXPECT_EQ(result.engine.degraded_blocks, 1u);
}

TEST(EngineRecoveryTest, RetryBackoffIsExponentialAndCapped) {
  const Options::Recovery recovery{};
  const sim::DurationPs b = recovery.retry_backoff;
  EXPECT_EQ(recovery.backoff_for(0), b);
  EXPECT_EQ(recovery.backoff_for(1), 2 * b);
  EXPECT_EQ(recovery.backoff_for(2), 4 * b);
  EXPECT_EQ(recovery.backoff_for(3), 8 * b);
  EXPECT_EQ(recovery.backoff_for(4), 16 * b);
  // Past the cap the backoff is flat — attempts never overflow the shift.
  EXPECT_EQ(recovery.backoff_for(5), 16 * b);
  EXPECT_EQ(recovery.backoff_for(1'000'000), 16 * b);
}

TEST(EngineRecoveryTest, CapBoundaryRetriesRecoverByteIdentical) {
  // Exactly max_chunk_retries (4) failures on the first chunk: the retry
  // ladder rides b, 2b, 4b, 8b and the fifth attempt lands, so the launch
  // recovers at the precise boundary past which it would abort.
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, small_options(), "dma_error,nth=1,every=1,max=4");
  expect_byte_identical(fixture);
  EXPECT_EQ(result.fault.injected, 4u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  EXPECT_GE(result.engine.chunk_retries, 4u);
  // The ladder is deterministic: a second seeded run matches to the tick.
  Fixture again;
  const RunResult rerun =
      run_scale(again, small_options(), "dma_error,nth=1,every=1,max=4");
  EXPECT_EQ(rerun.elapsed, result.elapsed);
  EXPECT_EQ(again.host, fixture.host);
}

TEST(EngineRecoveryTest, ExhaustedRetriesAbortWithDmaError) {
  // Every H2D fails, retries included: the supervisor gives up after
  // max_chunk_retries and the launch rethrows DmaError.
  Fixture fixture;
  EXPECT_THROW(run_scale(fixture, small_options(), "dma_error,nth=1,every=1"),
               fault::DmaError);
}

TEST(EngineRecoveryTest, DeviceLostAbortsWithDeviceLostError) {
  Fixture fixture;
  EXPECT_THROW(run_scale(fixture, small_options(), "device_lost,nth=1"),
               fault::DeviceLostError);
}

TEST(EngineRecoveryTest, IndefiniteStallTripsTheWatchdog) {
  // stall with no duration = stalled forever; the stage watchdog converts
  // the hang into TimeoutError instead of deadlocking the simulation.
  Fixture fixture;
  Options options = small_options();
  options.recovery.watchdog_timeout = 5'000'000'000;  // 5 us of sim time
  EXPECT_THROW(run_scale(fixture, options, "stage_stall,nth=1"),
               fault::TimeoutError);
}

}  // namespace
}  // namespace bigk::core
