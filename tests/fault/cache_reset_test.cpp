// bigkfault satellite: chunk-cache behaviour across a device reset (serve
// quarantining a device after a device_lost fault). invalidate_all with
// device_reset drops every entry — the arena contents are no longer
// trustworthy — and the pipeline checker condemns any surviving lease so a
// read through it is flagged as read_after_device_reset.
#include <gtest/gtest.h>

#include <cstdint>

#include "cache/chunk_cache.hpp"
#include "cache/policy.hpp"
#include "check/options.hpp"
#include "check/pipecheck.hpp"
#include "check/report.hpp"
#include "gpusim/device_memory.hpp"

namespace bigk::cache {
namespace {

CacheKey key_for(std::uint64_t chunk, std::uint64_t dataset = 1) {
  CacheKey key;
  key.dataset = dataset;
  key.stream = 0;
  key.range_begin = 0;
  key.range_end = 1000;
  key.chunk = chunk;
  key.layout = 0;
  key.signature = 0x5EED ^ chunk;
  return key;
}

struct ResetFixture {
  gpusim::DeviceMemory memory{1 << 20};
  ChunkCache cache{memory, ChunkCache::Config{64 << 10,
                                              EvictionKind::kCostAware, 256}};

  std::uint64_t put(const CacheKey& key, std::uint64_t bytes,
                    sim::TimePs now = 0) {
    const auto lease = cache.insert(key, bytes, now);
    EXPECT_TRUE(lease.has_value());
    cache.unpin(lease->entry);
    return lease->entry;
  }
};

TEST(CacheDeviceResetTest, DropsEveryEntryAcrossDatasets) {
  ResetFixture fx;
  fx.put(key_for(0, 1), 4096);
  fx.put(key_for(1, 1), 4096);
  fx.put(key_for(0, 2), 4096);
  ASSERT_EQ(fx.cache.entry_count(), 3u);

  fx.cache.invalidate_all(10, /*device_reset=*/true);

  EXPECT_EQ(fx.cache.entry_count(), 0u);
  EXPECT_EQ(fx.cache.bytes_used(), 0u);
  EXPECT_EQ(fx.cache.resident_bytes(1), 0u);
  EXPECT_EQ(fx.cache.resident_bytes(2), 0u);
  EXPECT_EQ(fx.cache.stats().invalidations, 3u);
  // Post-reset lookups miss and the caller restages from host memory.
  EXPECT_FALSE(fx.cache.lookup(key_for(0, 1), 11).has_value());
  EXPECT_FALSE(fx.cache.lookup(key_for(0, 2), 11).has_value());
}

TEST(CacheDeviceResetTest, CacheIsReusableAfterReset) {
  ResetFixture fx;
  fx.put(key_for(0), 4096);
  fx.cache.invalidate_all(10, /*device_reset=*/true);
  // The partition survives the reset; fresh images insert and hit again.
  fx.put(key_for(0), 4096, 11);
  EXPECT_TRUE(fx.cache.lookup(key_for(0), 12).has_value());
}

TEST(CacheDeviceResetTest, PinnedEntryTurnsZombieAndReclaimsAtUnpin) {
  ResetFixture fx;
  const auto pinned = fx.cache.insert(key_for(0), 4096, 0);
  ASSERT_TRUE(pinned.has_value());

  fx.cache.invalidate_all(1, /*device_reset=*/true);

  // Removed from the index immediately: lookups miss even before the unpin.
  EXPECT_FALSE(fx.cache.lookup(key_for(0), 2).has_value());
  EXPECT_EQ(fx.cache.resident_bytes(1), 0u);
  // Storage is reclaimed at the last unpin, not before.
  EXPECT_GT(fx.cache.bytes_used(), 0u);
  fx.cache.unpin(pinned->entry);
  EXPECT_EQ(fx.cache.bytes_used(), 0u);
}

TEST(CacheDeviceResetTest, CheckerFlagsReadThroughSurvivingLease) {
  ResetFixture fx;
  check::CheckOptions options = check::CheckOptions::all_enabled();
  check::Reporter reporter{options};
  check::PipelineChecker checker{reporter};
  checker.begin_launch(2, 2, 2, 1);
  fx.cache.set_checker(&checker);

  // A compute stage holds a cache hit when the device is reset under it.
  const auto lease = fx.cache.insert(key_for(0), 4096, 0);
  ASSERT_TRUE(lease.has_value());
  checker.on_slot_acquire(0, 0);
  checker.on_addr_counts(0, 0, 0, {4, 4});
  checker.on_cache_slot(0, 0, 0, lease->entry, /*hit=*/true);
  checker.on_compute_begin(0, 0, 1);

  fx.cache.invalidate_all(5, /*device_reset=*/true);
  checker.on_compute_read(0, 0, 0, 0, 0);

  ASSERT_EQ(reporter.total(), 1u);
  const check::Violation& violation = reporter.recorded().front();
  EXPECT_EQ(violation.checker, "pipecheck");
  EXPECT_EQ(violation.kind, "read_after_device_reset");
  EXPECT_EQ(violation.block, 0);
  EXPECT_EQ(violation.chunk, 0);
  EXPECT_EQ(violation.allocation, lease->entry);
  fx.cache.set_checker(nullptr);
  fx.cache.unpin(lease->entry);
}

TEST(CacheDeviceResetTest, PlainInvalidateAllStaysStaleCacheRead) {
  ResetFixture fx;
  check::CheckOptions options = check::CheckOptions::all_enabled();
  check::Reporter reporter{options};
  check::PipelineChecker checker{reporter};
  checker.begin_launch(2, 2, 2, 1);
  fx.cache.set_checker(&checker);

  const auto lease = fx.cache.insert(key_for(0), 4096, 0);
  ASSERT_TRUE(lease.has_value());
  checker.on_slot_acquire(0, 0);
  checker.on_addr_counts(0, 0, 0, {4, 4});
  checker.on_cache_slot(0, 0, 0, lease->entry, /*hit=*/true);
  checker.on_compute_begin(0, 0, 1);

  // Without device_reset the drop is an ordinary invalidation: same entries
  // gone, but the read is classified as a stale read, not a reset read.
  fx.cache.invalidate_all(5, /*device_reset=*/false);
  checker.on_compute_read(0, 0, 0, 0, 0);

  ASSERT_EQ(reporter.total(), 1u);
  EXPECT_EQ(reporter.recorded().front().kind, "stale_cache_read");
  fx.cache.set_checker(nullptr);
  fx.cache.unpin(lease->entry);
}

}  // namespace
}  // namespace bigk::cache
