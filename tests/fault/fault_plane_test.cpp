// Unit tests for the bigkfault fault plane: the FaultSpec grammar, the
// nth/every/max and probability triggers (seed-deterministic), per-device
// targeting, the device-lost state machine behind the serve quarantine
// probe, and the injected/recovered bookkeeping contract.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace bigk::fault {
namespace {

TEST(FaultSpecTest, ParsesKindAndTriggerKeys) {
  const FaultSpec spec =
      FaultSpec::parse_one("dma_error,nth=3,every=2,max=5,device=1");
  EXPECT_EQ(spec.kind, FaultKind::kDmaError);
  EXPECT_EQ(spec.nth, 3u);
  EXPECT_EQ(spec.every, 2u);
  EXPECT_EQ(spec.max_injections, 5u);
  EXPECT_EQ(spec.device, 1u);
  EXPECT_EQ(spec.probability, 0.0);
}

TEST(FaultSpecTest, ParsesProbabilityDurationsAndFactor) {
  const FaultSpec stall = FaultSpec::parse_one("stage_stall,p=0.25,stall_us=50");
  EXPECT_EQ(stall.kind, FaultKind::kStageStall);
  EXPECT_DOUBLE_EQ(stall.probability, 0.25);
  EXPECT_EQ(stall.stall, sim::DurationPs{50'000'000});

  const FaultSpec lost = FaultSpec::parse_one("device_lost,nth=1,down_ms=2");
  EXPECT_EQ(lost.kind, FaultKind::kDeviceLost);
  EXPECT_EQ(lost.down, sim::DurationPs{2'000'000'000});

  const FaultSpec pcie = FaultSpec::parse_one("pcie_degrade,nth=1,factor=8");
  EXPECT_DOUBLE_EQ(pcie.factor, 8.0);
}

TEST(FaultSpecTest, ParsesSemicolonSeparatedListAndLegacyAliases) {
  const std::vector<FaultSpec> specs =
      FaultSpec::parse("dma_error,nth=1;fault.stale_cache;ecc_corrupt,p=0.5");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, FaultKind::kDmaError);
  EXPECT_EQ(specs[1].kind, FaultKind::kStaleCache);
  EXPECT_EQ(specs[2].kind, FaultKind::kEccCorrupt);
}

TEST(FaultSpecTest, RejectsUnknownKindsAndKeys) {
  EXPECT_THROW(FaultSpec::parse_one("flux_capacitor,nth=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse_one("dma_error,wibble=1"),
               std::invalid_argument);
}

TEST(FaultSpecTest, ParsesBitflipKinds) {
  EXPECT_EQ(FaultSpec::parse_one("bitflip_dma,nth=1").kind,
            FaultKind::kBitflipDma);
  EXPECT_EQ(FaultSpec::parse_one("bitflip_cache,p=0.5").kind,
            FaultKind::kBitflipCache);
  EXPECT_EQ(FaultSpec::parse_one("bitflip_writeback,nth=2,every=3").kind,
            FaultKind::kBitflipWriteback);
}

TEST(FaultSpecTest, RejectsTriggerlessInjectableSpecs) {
  // A spec without p=/nth= never fires; that is a silent workload
  // misconfiguration, so the grammar rejects it up front.
  EXPECT_THROW(FaultSpec::parse_one("bitflip_dma"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse_one("dma_error,device=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse_one("device_lost,down_us=10"),
               std::invalid_argument);
  // Protocol bugs are always-on behaviors, not triggered injections: they
  // legitimately parse without a trigger.
  EXPECT_NO_THROW(FaultSpec::parse_one("stale_cache"));
  EXPECT_NO_THROW(FaultSpec::parse_one("skip_data_ready_wait"));
  EXPECT_NO_THROW(FaultSpec::parse_one("early_ring_release"));
}

TEST(FaultPlaneTest, NthTriggerFiresExactlyOnce) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("dma_error,nth=3"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(plane.should_inject(FaultKind::kDmaError, 0, i));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().injected_by_kind[static_cast<std::size_t>(
                FaultKind::kDmaError)],
            1u);
}

TEST(FaultPlaneTest, EveryRepeatsAndMaxCaps) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("dma_error,nth=2,every=2,max=3"));
  std::uint64_t count = 0;
  for (int i = 0; i < 20; ++i) {
    if (plane.should_inject(FaultKind::kDmaError, 0, i)) ++count;
  }
  EXPECT_EQ(count, 3u);  // trials 2, 4, 6; capped after max
}

TEST(FaultPlaneTest, ProbabilityTriggerIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FaultPlane plane(seed);
    plane.add(FaultSpec::parse_one("dma_error,p=0.3"));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(plane.should_inject(FaultKind::kDmaError, 0, i));
    }
    return fired;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // 64 trials at p=0.3: collision ~impossible
}

TEST(FaultPlaneTest, DeviceFilterRestrictsInjection) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("dma_error,nth=1,device=2"));
  EXPECT_FALSE(plane.should_inject(FaultKind::kDmaError, 0, 0));
  EXPECT_FALSE(plane.should_inject(FaultKind::kDmaError, 1, 0));
  // Filtered trials do not consume the counter, so the first trial on the
  // matching device is still trial 1.
  EXPECT_TRUE(plane.should_inject(FaultKind::kDmaError, 2, 0));
}

TEST(FaultPlaneTest, DeviceLostTripsPersistentStateUntilProbe) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("device_lost,nth=1,down_us=10"));
  EXPECT_FALSE(plane.device_lost(0));
  EXPECT_TRUE(plane.should_inject(FaultKind::kDeviceLost, 0, 100));
  EXPECT_TRUE(plane.device_lost(0));
  // Probe before the outage elapsed: still down.
  EXPECT_FALSE(plane.probe_device(0, 100 + 5'000'000));
  EXPECT_TRUE(plane.device_lost(0));
  // After the outage: reinstated, and the injection counts as recovered.
  EXPECT_TRUE(plane.probe_device(0, 100 + 10'000'000));
  EXPECT_FALSE(plane.device_lost(0));
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().recovered, 1u);
}

TEST(FaultPlaneTest, ProbingAHealthyDeviceSucceedsWithoutBookkeeping) {
  FaultPlane plane(1);
  EXPECT_TRUE(plane.probe_device(3, 0));
  EXPECT_EQ(plane.stats().recovered, 0u);
}

TEST(FaultPlaneTest, PcieDegradeIsStickyAndSelfRecovering) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("pcie_degrade,nth=2,factor=4"));
  EXPECT_DOUBLE_EQ(plane.pcie_factor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(plane.pcie_factor(0, 1), 4.0);  // trial 2 fires
  EXPECT_DOUBLE_EQ(plane.pcie_factor(0, 2), 4.0);  // sticky
  // Perf-only fault: recovered the moment it lands.
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().recovered, 1u);
}

TEST(FaultPlaneTest, StallDurationDistinguishesFiringFromSilence) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("stage_stall,nth=2,stall_us=7"));
  EXPECT_FALSE(plane.stall_duration(0, 0).has_value());
  const auto stall = plane.stall_duration(0, 1);
  ASSERT_TRUE(stall.has_value());
  EXPECT_EQ(*stall, sim::DurationPs{7'000'000});
  // A spec without a duration fires with 0 — "stalled forever", which the
  // engine watchdog converts into TimeoutError.
  FaultPlane hang(1);
  hang.add(FaultSpec::parse_one("stage_stall,nth=1"));
  const auto forever = hang.stall_duration(0, 0);
  ASSERT_TRUE(forever.has_value());
  EXPECT_EQ(*forever, sim::DurationPs{0});
}

TEST(FaultPlaneTest, ProtocolBugIgnoresTriggerFields) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("stale_cache,device=1"));
  EXPECT_TRUE(plane.protocol_bug(FaultKind::kStaleCache, 1));
  EXPECT_FALSE(plane.protocol_bug(FaultKind::kStaleCache, 0));
  EXPECT_FALSE(plane.protocol_bug(FaultKind::kSkipDataReadyWait, 1));
}

TEST(FaultPlaneTest, RecoveryBookkeepingBalancesInjections) {
  FaultPlane plane(1);
  plane.add(FaultSpec::parse_one("dma_error,nth=1,every=1,max=4"));
  std::uint64_t injected = 0;
  for (int i = 0; i < 4; ++i) {
    if (plane.should_inject(FaultKind::kDmaError, 0, i)) ++injected;
  }
  EXPECT_EQ(injected, 4u);
  plane.on_recovered(FaultKind::kDmaError, 3);
  plane.on_recovered(FaultKind::kDmaError);
  EXPECT_EQ(plane.stats().recovered, plane.stats().injected);
  EXPECT_EQ(plane.stats().recovered_by_kind[static_cast<std::size_t>(
                FaultKind::kDmaError)],
            4u);
}

}  // namespace
}  // namespace bigk::fault
