// bigkfault end-to-end recovery at the serving layer: a device lost
// mid-workload is quarantined (cache dropped, in-flight and queued jobs
// redispatched), the probe daemon reinstates it after the outage, and the
// workload still completes with zero jobs shed to the failure — plus the
// degenerate single-device outage, where clients ride escalating no-device
// rejections until the device comes back.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

ServerConfig toy_server(std::uint32_t devices, std::uint32_t queue_depth) {
  ServerConfig config;
  config.system = toy_system();
  config.devices = devices;
  config.policy = Policy::kRoundRobin;
  config.queue_depth = queue_depth;
  config.retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
  config.max_retries = 200;
  config.engine = toy_engine_options();
  return config;
}

std::vector<JobSpec> toy_workload(std::uint32_t num_jobs,
                                  std::uint32_t num_apps) {
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < num_apps; ++i) {
    names.push_back("toy" + std::to_string(i));
  }
  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.seed = 7;
  return make_workload(names, workload);
}

TEST(ServeRecoveryTest, DeviceLostMidWorkloadIsQuarantinedAndReinstated) {
  const auto suite = make_toy_suite(3, 6'000);
  const auto specs = toy_workload(12, 3);
  ServerConfig config = toy_server(4, 12);
  // Device 0 dies on its first DMA, with a 1 us outage and a 50 us probe
  // period so it is reinstated while the workload is still running.
  config.fault_spec = "device_lost,nth=1,device=0,down_us=1";
  config.probe_interval = sim::DurationPs{50'000'000};  // 50 us
  const ServeReport report = run_server(config, specs, suite);

  // The acceptance bar: every job finishes, none are shed or abandoned
  // because of the failure, and the fault books balance.
  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_EQ(report.fault_injected, 1u);
  EXPECT_EQ(report.fault_recovered, report.fault_injected);
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_EQ(report.reinstatements, 1u);
  // At minimum the job that was running on device 0 moved elsewhere.
  EXPECT_GE(report.redispatches, 1u);
  for (const JobRecord& record : report.jobs) {
    EXPECT_TRUE(record.completed) << "job " << record.spec.id;
    EXPECT_FALSE(record.failed);
  }
  std::uint64_t device_jobs = 0;
  for (const DeviceReport& device : report.devices) device_jobs += device.jobs;
  EXPECT_EQ(device_jobs, 12u);
}

TEST(ServeRecoveryTest, ConsecutiveDmaFailuresQuarantineWithoutLosingJobs) {
  const auto suite = make_toy_suite(3, 6'000);
  const auto specs = toy_workload(12, 3);
  ServerConfig config = toy_server(4, 12);
  // Device 0's DMA engine is broken for good: every op fails, the engine's
  // retries exhaust, and each job on it aborts with DmaError. Two such
  // failures in a row trip the quarantine; the other three devices absorb
  // the redispatches.
  config.fault_spec = "dma_error,nth=1,every=1,device=0";
  config.quarantine_after = 2;
  const ServeReport report = run_server(config, specs, suite);

  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_GE(report.quarantines, 1u);
  EXPECT_GE(report.redispatches, 2u);
  EXPECT_GT(report.fault_injected, 0u);
}

TEST(ServeRecoveryTest, SoleDeviceOutageShedsToNoDeviceRejections) {
  const auto suite = make_toy_suite(2, 6'000);
  const auto specs = toy_workload(8, 2);
  ServerConfig config = toy_server(1, /*queue_depth=*/1);
  config.fault_spec = "device_lost,nth=1,down_ms=1";
  const ServeReport report = run_server(config, specs, suite);

  // The job in flight when the only device died has nowhere to go: it is
  // the one failure the outage costs.
  EXPECT_EQ(report.failed_jobs, 1u);
  EXPECT_EQ(report.completed, 7u);
  EXPECT_EQ(report.dropped, 0u);
  // While the pool is empty, submissions are refused as no-device (not
  // queue-full) and clients ride the escalating retry-after.
  EXPECT_GT(report.rejections_no_device, 0u);
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_EQ(report.reinstatements, 1u);
  EXPECT_EQ(report.fault_recovered, report.fault_injected);
}

TEST(ServeRecoveryTest, SilentFaultPlaneKeepsScheduleByteIdentical) {
  // A plane whose specs never fire must not perturb the simulation: same
  // makespan, same completion order as no plane at all.
  const auto suite = make_toy_suite(3, 6'000);
  const auto specs = toy_workload(8, 3);
  const ServeReport clean = run_server(toy_server(2, 8), specs, suite);
  ServerConfig config = toy_server(2, 8);
  config.fault_spec = "dma_error,nth=1000000";
  const ServeReport silent = run_server(config, specs, suite);

  EXPECT_EQ(silent.fault_injected, 0u);
  EXPECT_EQ(silent.makespan, clean.makespan);
  EXPECT_EQ(silent.completion_order, clean.completion_order);
  EXPECT_EQ(silent.completed, clean.completed);
}

TEST(ServeRecoveryTest, MalformedFaultSpecIsRejectedUpFront) {
  const auto suite = make_toy_suite(1, 1'000);
  const auto specs = toy_workload(1, 1);
  ServerConfig config = toy_server(1, 1);
  config.fault_spec = "warp_drive_failure,nth=1";
  EXPECT_THROW(run_server(config, specs, suite), std::invalid_argument);
}

}  // namespace
}  // namespace bigk::serve
