// bigkfault satellite: per-client escalating retry-after in the admission
// queue — doubling to a cap, deterministic jitter, streak reset on accept,
// and the rejection-cause breakdown used by the shedding reports.
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bigk::serve {
namespace {

constexpr sim::DurationPs kBase = sim::DurationPs{1'000};

JobQueue::Config full_queue_config() {
  JobQueue::Config config;
  config.max_depth = 1;
  config.retry_after = kBase;
  config.max_retry_after = 0;  // resolves to 8x base
  config.jitter_seed = 0;
  return config;
}

TEST(QueueEscalationTest, HintDoublesPerClientUpToDefaultCap) {
  JobQueue queue(full_queue_config());
  ASSERT_TRUE(queue.try_admit(99).accepted);  // fill the queue
  std::vector<sim::DurationPs> hints;
  for (int i = 0; i < 6; ++i) {
    const JobQueue::Admission a = queue.try_admit(7);
    EXPECT_FALSE(a.accepted);
    EXPECT_EQ(a.cause, RejectCause::kQueueFull);
    hints.push_back(a.retry_after);
  }
  // base, 2x, 4x, 8x, then pinned at the default cap of 8x.
  EXPECT_EQ(hints, (std::vector<sim::DurationPs>{
                       kBase, 2 * kBase, 4 * kBase, 8 * kBase, 8 * kBase,
                       8 * kBase}));
}

TEST(QueueEscalationTest, ExplicitCapBoundsEscalation) {
  JobQueue::Config config = full_queue_config();
  config.max_retry_after = 3 * kBase;  // not a power-of-two multiple
  JobQueue queue(config);
  ASSERT_TRUE(queue.try_admit(99).accepted);
  EXPECT_EQ(queue.try_admit(1).retry_after, kBase);
  EXPECT_EQ(queue.try_admit(1).retry_after, 2 * kBase);
  EXPECT_EQ(queue.try_admit(1).retry_after, 3 * kBase);  // 4x clamped to cap
  EXPECT_EQ(queue.try_admit(1).retry_after, 3 * kBase);
}

TEST(QueueEscalationTest, StreaksAreIndependentPerClient) {
  JobQueue queue(full_queue_config());
  ASSERT_TRUE(queue.try_admit(99).accepted);
  EXPECT_EQ(queue.try_admit(1).retry_after, kBase);
  EXPECT_EQ(queue.try_admit(1).retry_after, 2 * kBase);
  // A different client starts from the base regardless of client 1's streak.
  EXPECT_EQ(queue.try_admit(2).retry_after, kBase);
  EXPECT_EQ(queue.try_admit(1).retry_after, 4 * kBase);
}

TEST(QueueEscalationTest, AcceptanceResetsTheStreak) {
  JobQueue queue(full_queue_config());
  ASSERT_TRUE(queue.try_admit(99).accepted);
  EXPECT_EQ(queue.try_admit(7).retry_after, kBase);
  EXPECT_EQ(queue.try_admit(7).retry_after, 2 * kBase);
  queue.release();
  ASSERT_TRUE(queue.try_admit(7).accepted);
  queue.release();
  ASSERT_TRUE(queue.try_admit(99).accepted);
  // Fresh streak after the acceptance: back to the base hint.
  EXPECT_EQ(queue.try_admit(7).retry_after, kBase);
}

TEST(QueueEscalationTest, JitterIsDeterministicAndBounded) {
  const auto hints_with_seed = [](std::uint64_t seed) {
    JobQueue::Config config = full_queue_config();
    config.jitter_seed = seed;
    JobQueue queue(config);
    queue.try_admit(99);
    std::vector<sim::DurationPs> hints;
    for (int i = 0; i < 4; ++i) {
      hints.push_back(queue.try_admit(7).retry_after);
    }
    return hints;
  };
  const std::vector<sim::DurationPs> a = hints_with_seed(1234);
  EXPECT_EQ(a, hints_with_seed(1234));  // same seed, same hints
  // Each jittered hint stays within [hint, hint + hint/4].
  const std::vector<sim::DurationPs> bare = {kBase, 2 * kBase, 4 * kBase,
                                             8 * kBase};
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_GE(a[i], bare[i]);
    EXPECT_LE(a[i], bare[i] + bare[i] / 4);
  }
}

TEST(QueueEscalationTest, RejectionCausesAreBrokenDown) {
  JobQueue queue(full_queue_config());
  ASSERT_TRUE(queue.try_admit(99).accepted);
  queue.try_admit(1);                        // queue_full
  queue.reject(RejectCause::kNoDevice, 2);   // pool-wide quarantine path
  queue.reject(RejectCause::kNoDevice, 2);
  EXPECT_EQ(queue.rejected(), 3u);
  EXPECT_EQ(queue.rejected(RejectCause::kQueueFull), 1u);
  EXPECT_EQ(queue.rejected(RejectCause::kNoDevice), 2u);
}

TEST(QueueEscalationTest, NoDeviceRejectionsShareTheClientStreak) {
  JobQueue queue(full_queue_config());
  // Caller-decided rejections escalate the same per-client streak that
  // queue-full rejections use.
  EXPECT_EQ(queue.reject(RejectCause::kNoDevice, 5), kBase);
  EXPECT_EQ(queue.reject(RejectCause::kNoDevice, 5), 2 * kBase);
  ASSERT_TRUE(queue.try_admit(5).accepted);
  EXPECT_EQ(queue.reject(RejectCause::kNoDevice, 5), kBase);
}

TEST(QueueEscalationTest, CompatConstructorKeepsConstantHint) {
  // The two-arg constructor pins the cap to the base: legacy behavior where
  // every rejection returns retry_after verbatim.
  JobQueue queue(1, kBase);
  ASSERT_TRUE(queue.try_admit(0).accepted);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.try_admit(0).retry_after, kBase);
  }
}

}  // namespace
}  // namespace bigk::serve
