// Harness flag parsing: ratio-valued flags (--cpu-ratio) must reject
// malformed and out-of-range input with a clear error instead of silently
// clamping a typo into a valid split, while accepting the whole legal range
// including both endpoints.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common.hpp"

namespace bigk::bench {
namespace {

TEST(HarnessFlags, ParseRatioAcceptsTheFullRange) {
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("0", "--cpu-ratio"), 0.0);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("1", "--cpu-ratio"), 1.0);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("0.25", "--cpu-ratio"), 0.25);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("0.5", "--cpu-ratio"), 0.5);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("1.0", "--cpu-ratio"), 1.0);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("5e-1", "--cpu-ratio"), 0.5);
  EXPECT_DOUBLE_EQ(Harness::parse_ratio("0.0", "--cpu-ratio"), 0.0);
}

TEST(HarnessFlags, ParseRatioRejectsOutOfRange) {
  EXPECT_THROW(Harness::parse_ratio("1.5", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("-0.1", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("2", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("nan", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("inf", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("1e300", "--cpu-ratio"),
               std::invalid_argument);
}

TEST(HarnessFlags, ParseRatioRejectsMalformedInput) {
  EXPECT_THROW(Harness::parse_ratio("", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("abc", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("0.5x", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("0.2.5", "--cpu-ratio"),
               std::invalid_argument);
  EXPECT_THROW(Harness::parse_ratio("--", "--cpu-ratio"),
               std::invalid_argument);
}

TEST(HarnessFlags, ParseRatioErrorNamesTheFlagAndValue) {
  try {
    Harness::parse_ratio("1.5", "--cpu-ratio");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("--cpu-ratio"), std::string::npos);
    EXPECT_NE(message.find("1.5"), std::string::npos);
  }
}

}  // namespace
}  // namespace bigk::bench
