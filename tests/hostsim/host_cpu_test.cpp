// Tests for the host CPU model: cache behaviour, cost accounting, and
// multi-thread contention — the effects behind the data-assembly stage costs.
#include "hostsim/host_cpu.hpp"

#include <gtest/gtest.h>

#include "hostsim/cache_model.hpp"
#include "sim/simulation.hpp"

namespace bigk::hostsim {
namespace {

gpusim::CpuConfig test_config() {
  gpusim::CpuConfig config;
  config.llc_bytes = 64 << 10;  // small cache so tests can evict easily
  return config;
}

TEST(CacheModelTest, RepeatedAccessHits) {
  CacheModel cache(64 << 10, 64, 8);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheModelTest, LruEvictsOldestWay) {
  CacheModel cache(8 * 64, 64, 8);  // one set, 8 ways
  ASSERT_EQ(cache.sets(), 1u);
  for (std::uint64_t i = 0; i < 8; ++i) cache.access(i * 64);
  EXPECT_TRUE(cache.access(0));        // still resident, now MRU
  EXPECT_FALSE(cache.access(8 * 64));  // evicts line 1 (LRU)
  EXPECT_FALSE(cache.access(1 * 64));  // line 1 is gone
  EXPECT_TRUE(cache.access(0));        // line 0 survived
}

TEST(CacheModelTest, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(64 << 10, 64, 8);
  const std::uint64_t lines = (256 << 10) / 64;  // 4x capacity
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l) cache.access(l * 64);
  }
  // Second pass must still miss essentially everywhere (LRU + oversize set).
  EXPECT_GT(cache.misses(), cache.hits());
}

TEST(CacheModelTest, DistinctRegionsDoNotAlias) {
  CacheModel cache(64 << 10, 64, 8);
  EXPECT_FALSE(cache.access(logical_address(1, 0)));
  EXPECT_FALSE(cache.access(logical_address(2, 0)));
  EXPECT_TRUE(cache.access(logical_address(1, 0)));
}

TEST(CacheModelTest, ResetClearsContents) {
  CacheModel cache(64 << 10, 64, 8);
  cache.access(0);
  cache.reset();
  EXPECT_FALSE(cache.access(0));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(HostThreadTest, SequentialReadMostlyHits) {
  sim::Simulation sim;
  HostCpu cpu(sim, test_config());
  HostThread thread = cpu.make_thread();
  thread.read(1, 0, 64 << 10);  // 1024 lines, each touched once: all misses
  EXPECT_EQ(thread.cache().misses(), 1024u);
  thread.read(1, 0, 64);  // now resident
  EXPECT_EQ(thread.cache().hits(), 1u);
}

TEST(HostThreadTest, CommitAdvancesTimeByComputeCost) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.clock_ghz = 1.0;
  config.ipc = 1.0;
  HostCpu cpu(sim, config);
  HostThread thread = cpu.make_thread();
  sim.run_until_complete([](HostThread& t) -> sim::Task<> {
    t.compute(1'000'000);  // 1M cycles at 1GHz = 1 ms
    co_await t.commit();
  }(thread));
  EXPECT_EQ(sim.now(), sim::milliseconds(1));
}

TEST(HostThreadTest, CommitChargesBandwidthForMisses) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.mem_gbps = 10.0;
  config.cache_hit_cycles = 0.0;
  config.cache_miss_latency = 0;
  HostCpu cpu(sim, config);
  HostThread thread = cpu.make_thread();
  sim.run_until_complete([](HostThread& t) -> sim::Task<> {
    t.read(1, 0, 10'000'000);  // 10 MB of misses at 10 GB/s = 1 ms
    co_await t.commit();
  }(thread));
  EXPECT_GE(sim.now(), sim::milliseconds(1));
  EXPECT_LT(sim.now(), sim::milliseconds(2));
}

TEST(HostThreadTest, ScatteredReadsCostMoreThanSequential) {
  auto run = [](bool scattered) {
    sim::Simulation sim;
    HostCpu cpu(sim, test_config());
    HostThread thread = cpu.make_thread();
    sim::DurationPs elapsed = 0;
    sim.run_until_complete(
        [](HostThread& t, bool sc, sim::Simulation& s,
           sim::DurationPs& out) -> sim::Task<> {
          // Read the same 8 MB twice; sequential rereads partially hit,
          // scattered ones stride across lines and hit nothing.
          for (int pass = 0; pass < 2; ++pass) {
            for (std::uint64_t i = 0; i < 1 << 17; ++i) {
              const std::uint64_t offset =
                  sc ? (i * 7919) % (8 << 20) : i * 64;
              t.read(1, offset, 8);
            }
            co_await t.commit();
          }
          out = s.now();
        }(thread, scattered, sim, elapsed));
    return elapsed;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(HostThreadTest, ThreadsOnDifferentCoresOverlapCompute) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.clock_ghz = 1.0;
  config.ipc = 1.0;
  HostCpu cpu(sim, config);
  std::vector<HostThread> threads;
  for (int i = 0; i < 4; ++i) threads.push_back(cpu.make_thread());
  for (HostThread& t : threads) {
    sim.spawn([](HostThread& th) -> sim::Task<> {
      th.compute(1'000'000);
      co_await th.commit();
    }(t));
  }
  sim.run();
  EXPECT_EQ(sim.now(), sim::milliseconds(1));  // perfect overlap
}

TEST(HostThreadTest, ThreadsShareMemoryBandwidth) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.mem_gbps = 10.0;
  config.cache_hit_cycles = 0.0;
  config.cache_miss_latency = 0;
  HostCpu cpu(sim, config);
  std::vector<HostThread> threads;
  for (std::uint32_t i = 0; i < 4; ++i) threads.push_back(cpu.make_thread());
  for (std::uint32_t i = 0; i < 4; ++i) {
    sim.spawn([](HostThread& th, std::uint32_t region) -> sim::Task<> {
      th.read(region + 1, 0, 10'000'000);  // 10 MB of misses each
      co_await th.commit();
    }(threads[i], i));
  }
  sim.run();
  // 40 MB total at 10 GB/s = 4 ms: bandwidth-bound, no 4-way speedup.
  EXPECT_GE(sim.now(), sim::milliseconds(4));
}

TEST(HostThreadTest, OversubscribedCoreSerializes) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.cores = 1;  // everything pins to one physical core
  config.clock_ghz = 1.0;
  config.ipc = 1.0;
  HostCpu cpu(sim, config);
  HostThread a = cpu.make_thread();
  HostThread b = cpu.make_thread();
  for (HostThread* t : {&a, &b}) {
    sim.spawn([](HostThread& th) -> sim::Task<> {
      th.compute(1'000'000);
      co_await th.commit();
    }(*t));
  }
  sim.run();
  EXPECT_EQ(sim.now(), sim::milliseconds(2));  // serialized on the core
}

TEST(HostThreadTest, StreamingWritesUseBandwidthNotLatency) {
  sim::Simulation sim;
  gpusim::CpuConfig config = test_config();
  config.mem_gbps = 10.0;
  HostCpu cpu(sim, config);
  HostThread thread = cpu.make_thread();
  sim.run_until_complete([](HostThread& t) -> sim::Task<> {
    t.write_stream(10'000'000);
    co_await t.commit();
  }(thread));
  EXPECT_EQ(sim.now(), sim::milliseconds(1));
}


TEST(HostThreadTest, SequentialReadSkipsMissLatency) {
  auto run = [](bool sequential) {
    sim::Simulation sim;
    gpusim::CpuConfig config = test_config();
    config.cache_miss_latency = sim::nanoseconds(50);
    config.mem_gbps = 1000.0;  // make latency the only significant cost
    config.cache_hit_cycles = 0.0;
    HostCpu cpu(sim, config);
    HostThread thread = cpu.make_thread();
    sim.run_until_complete([](HostThread& t, bool seq) -> sim::Task<> {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        if (seq) {
          t.read_sequential(1, i * 64, 8);
        } else {
          t.read(1, i * 64, 8);
        }
      }
      co_await t.commit();
    }(thread, sequential));
    return sim.now();
  };
  // 1000 misses x 50ns of stall only on the random-access path.
  EXPECT_GE(run(false), run(true) + sim::nanoseconds(40'000));
}

}  // namespace
}  // namespace bigk::hostsim
