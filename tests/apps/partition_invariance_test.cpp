// Partition-invariance properties: application results must not depend on
// how records are split across threads, chunks, batches, or schemes — the
// fundamental correctness requirement behind the paper's "operate on records
// in independent ways" restriction, and the subtlest one for the
// variable-length (delimiter-scanned) MasterCard log, whose records can span
// any partition boundary.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/mastercard.hpp"
#include "apps/wordcount.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {
namespace {

gpusim::SystemConfig tiny_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

// Sweep the CPU batch size: every batch boundary is a partition boundary,
// and the newline-ownership rule must keep each record counted exactly once.
TEST(PartitionInvariance, MastercardCpuBatchSizeSweep) {
  MastercardApp app({.data_bytes = 1 << 19, .seed = 901});
  schemes::SchemeConfig sc;
  sc.cpu_batch_records = 1 << 20;  // one batch: the whole log
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  ASSERT_NE(reference, kFnvBasis);

  for (std::uint64_t batch : {37ull, 1000ull, 4096ull, 65536ull}) {
    sc.cpu_batch_records = batch;
    (void)schemes::run_cpu_serial(tiny_config(), app, sc);
    EXPECT_EQ(app.result_digest(), reference) << "batch " << batch;
  }
}

TEST(PartitionInvariance, MastercardThreadCountSweep) {
  MastercardApp app({.data_bytes = 1 << 19, .seed = 902});
  schemes::SchemeConfig sc;
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  for (std::uint32_t threads : {2u, 3u, 5u, 8u}) {
    (void)schemes::run_cpu(tiny_config(), app, threads, sc);
    EXPECT_EQ(app.result_digest(), reference) << threads << " threads";
  }
}

TEST(PartitionInvariance, MastercardBigKernelChunkSizeSweep) {
  MastercardApp app({.data_bytes = 1 << 19, .seed = 903});
  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 4;
  sc.bigkernel.compute_threads_per_block = 64;
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  // Different data-buffer budgets => different chunk boundaries everywhere.
  for (std::uint64_t buf : {24ull << 10, 64ull << 10, 160ull << 10}) {
    sc.bigkernel.data_buf_bytes = buf;
    (void)schemes::run_bigkernel(tiny_config(), app, sc);
    EXPECT_EQ(app.result_digest(), reference) << "buf " << buf;
  }
}

TEST(PartitionInvariance, MastercardGpuGridSweep) {
  MastercardApp app({.data_bytes = 1 << 19, .seed = 904});
  schemes::SchemeConfig sc;
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  for (std::uint32_t blocks : {4u, 16u, 48u}) {
    sc.gpu_blocks = blocks;
    (void)schemes::run_gpu_single(tiny_config(), app, sc);
    EXPECT_EQ(app.result_digest(), reference) << blocks << " blocks";
  }
}

TEST(PartitionInvariance, WordCountGridAndBatchSweep) {
  WordCountApp app({.data_bytes = 1 << 19, .seed = 905});
  schemes::SchemeConfig sc;
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  const std::uint64_t words = app.total_words();
  ASSERT_GT(words, 0u);

  sc.cpu_batch_records = 13;
  (void)schemes::run_cpu_mt(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
  EXPECT_EQ(app.total_words(), words);

  sc.gpu_blocks = 48;
  (void)schemes::run_gpu_double(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
}

// Generator determinism: identical seeds give identical data and results;
// different seeds give different ones.
TEST(GeneratorDeterminism, SameSeedSameDigest) {
  schemes::SchemeConfig sc;
  MastercardApp first({.data_bytes = 1 << 18, .seed = 55});
  MastercardApp second({.data_bytes = 1 << 18, .seed = 55});
  (void)schemes::run_cpu_serial(tiny_config(), first, sc);
  (void)schemes::run_cpu_serial(tiny_config(), second, sc);
  EXPECT_EQ(first.result_digest(), second.result_digest());
  EXPECT_EQ(first.transactions(), second.transactions());
}

TEST(GeneratorDeterminism, DifferentSeedDifferentDigest) {
  schemes::SchemeConfig sc;
  MastercardApp first({.data_bytes = 1 << 18, .seed = 55});
  MastercardApp second({.data_bytes = 1 << 18, .seed = 56});
  (void)schemes::run_cpu_serial(tiny_config(), first, sc);
  (void)schemes::run_cpu_serial(tiny_config(), second, sc);
  EXPECT_NE(first.result_digest(), second.result_digest());
}

// Simulated time itself must be deterministic: two identical runs produce
// identical virtual completion times, bit for bit.
TEST(Determinism, IdenticalRunsIdenticalVirtualTime) {
  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 4;
  sc.bigkernel.compute_threads_per_block = 64;
  WordCountApp app({.data_bytes = 1 << 18, .seed = 77});
  const auto first = schemes::run_bigkernel(tiny_config(), app, sc);
  const auto second = schemes::run_bigkernel(tiny_config(), app, sc);
  EXPECT_EQ(first.total_time, second.total_time);
  EXPECT_EQ(first.h2d_bytes, second.h2d_bytes);
  EXPECT_EQ(first.engine.assembly_busy(), second.engine.assembly_busy());
}

}  // namespace
}  // namespace bigk::apps
