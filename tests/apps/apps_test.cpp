// Cross-scheme validation of all benchmark applications: every scheme must
// produce bit-identical results to the serial CPU reference, for every app.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/dna.hpp"
#include "apps/kmeans.hpp"
#include "apps/mastercard.hpp"
#include "apps/netflix.hpp"
#include "apps/opinion.hpp"
#include "apps/registry.hpp"
#include "apps/wordcount.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {
namespace {

gpusim::SystemConfig tiny_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 3 << 20;  // data (4-6 MB) exceeds memory
  return config;
}

schemes::SchemeConfig tiny_scheme_config() {
  schemes::SchemeConfig sc;
  sc.gpu_blocks = 8;
  sc.gpu_threads_per_block = 128;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 64;
  return sc;
}

constexpr std::uint64_t kTinyBytes = 1u << 21;  // 2 MB apps

template <class App>
void check_all_schemes(typename App::Params params) {
  App app(params);
  const schemes::SchemeConfig sc = tiny_scheme_config();
  const gpusim::SystemConfig config = tiny_config();

  (void)schemes::run_cpu_serial(config, app, sc);
  const std::uint64_t reference = app.result_digest();
  ASSERT_NE(reference, 0u);

  for (schemes::Scheme scheme :
       {schemes::Scheme::kCpuMultiThreaded, schemes::Scheme::kGpuSingleBuffer,
        schemes::Scheme::kGpuDoubleBuffer, schemes::Scheme::kBigKernel}) {
    const schemes::RunMetrics metrics =
        schemes::run_scheme(scheme, config, app, sc);
    EXPECT_EQ(app.result_digest(), reference)
        << "scheme " << schemes::scheme_name(scheme) << " diverged";
    EXPECT_GT(metrics.total_time, 0u);
  }
}

TEST(AppsCrossScheme, Kmeans) {
  check_all_schemes<KmeansApp>({.data_bytes = kTinyBytes, .seed = 101});
}

TEST(AppsCrossScheme, WordCount) {
  check_all_schemes<WordCountApp>({.data_bytes = kTinyBytes, .seed = 102});
}

TEST(AppsCrossScheme, Netflix) {
  check_all_schemes<NetflixApp>({.data_bytes = kTinyBytes, .seed = 103});
}

TEST(AppsCrossScheme, Opinion) {
  check_all_schemes<OpinionApp>({.data_bytes = kTinyBytes, .seed = 104});
}

TEST(AppsCrossScheme, Dna) {
  check_all_schemes<DnaApp>({.data_bytes = kTinyBytes, .seed = 105});
}

TEST(AppsCrossScheme, Mastercard) {
  check_all_schemes<MastercardApp>({.data_bytes = kTinyBytes, .seed = 106});
}

TEST(AppsCrossScheme, MastercardIndexed) {
  check_all_schemes<MastercardIndexedApp>(
      {.data_bytes = kTinyBytes, .seed = 107});
}

// BigKernel ablation variants must also be functionally identical.
template <class App>
void check_ablations(typename App::Params params) {
  App app(params);
  const gpusim::SystemConfig config = tiny_config();
  schemes::SchemeConfig sc = tiny_scheme_config();

  (void)schemes::run_cpu_serial(config, app, sc);
  const std::uint64_t reference = app.result_digest();

  for (auto options : {core::Options::overlap_only(),
                       core::Options::with_transfer_reduction(),
                       core::Options::full()}) {
    options.num_blocks = sc.bigkernel.num_blocks;
    options.compute_threads_per_block =
        sc.bigkernel.compute_threads_per_block;
    sc.bigkernel = options;
    (void)schemes::run_bigkernel(config, app, sc);
    EXPECT_EQ(app.result_digest(), reference) << "ablation variant diverged";
  }
  sc.bigkernel = tiny_scheme_config().bigkernel;
  sc.bigkernel.pattern_recognition = false;
  (void)schemes::run_bigkernel(config, app, sc);
  EXPECT_EQ(app.result_digest(), reference) << "pattern-off diverged";
}

TEST(AppsAblation, KmeansAllVariantsAgree) {
  check_ablations<KmeansApp>({.data_bytes = kTinyBytes, .seed = 201});
}

TEST(AppsAblation, WordCountAllVariantsAgree) {
  check_ablations<WordCountApp>({.data_bytes = kTinyBytes, .seed = 202});
}

TEST(AppsAblation, MastercardAllVariantsAgree) {
  check_ablations<MastercardApp>({.data_bytes = kTinyBytes, .seed = 203});
}

TEST(AppsAblation, MastercardIndexedAllVariantsAgree) {
  check_ablations<MastercardIndexedApp>(
      {.data_bytes = kTinyBytes, .seed = 204});
}

// Sanity of the generated datasets themselves.
TEST(AppsData, WordCountHasWords) {
  WordCountApp app({.data_bytes = 1 << 18, .seed = 1});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  EXPECT_GT(app.total_words(), 1000u);
}

TEST(AppsData, MastercardTargetCustomersExist) {
  MastercardApp app({.data_bytes = 1 << 18, .seed = 2});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  EXPECT_NE(app.result_digest(), kFnvBasis);  // some merchants counted
}

TEST(AppsData, KmeansAssignsEveryParticle) {
  KmeansApp app({.data_bytes = 1 << 18, .seed = 3});
  schemes::SchemeConfig sc = tiny_scheme_config();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  // reset() marks cid = -1; after a run every cid must be in [0, kClusters).
  app.reset();
  (void)schemes::run_cpu_serial(tiny_config(), app, sc);
  const auto decls = app.stream_decls();
  const auto& binding = decls[0].binding;
  for (std::uint64_t r = 0; r < app.num_records(); ++r) {
    const double cid =
        binding.load<double>(r * KmeansApp::kElemsPerRecord + 4);
    ASSERT_GE(cid, 0.0);
    ASSERT_LT(cid, static_cast<double>(KmeansApp::kClusters));
  }
}

TEST(AppsData, TableOneProportionsMatchDeclarations) {
  // The declared reads/elems ratios must reproduce Table I's percentages.
  const ScaledSystem scaled{.scale = 0.0005};
  struct Row {
    double declared;
    double expected;
  };
  KmeansApp kmeans({.data_bytes = 1 << 16});
  NetflixApp netflix({.data_bytes = 1 << 16});
  OpinionApp opinion({.data_bytes = 1 << 16});
  DnaApp dna({.data_bytes = 1 << 16});
  auto ratio = [](auto& app) {
    const auto decl = app.stream_decls()[0].binding;
    return 100.0 * decl.reads_per_record / decl.elems_per_record;
  };
  EXPECT_NEAR(ratio(kmeans), 50.0, 1.0);
  EXPECT_NEAR(ratio(netflix), 30.0, 1.0);
  EXPECT_NEAR(ratio(opinion), 73.0, 2.0);
  EXPECT_NEAR(ratio(dna), 36.0, 1.0);
  EXPECT_EQ(benchmark_apps(scaled).size(), 7u);
}

TEST(AppsRegistry, EntriesRunUnderAnyScheme) {
  const ScaledSystem scaled{.scale = 0.0003};  // ~1.3-2 MB inputs
  auto suite = benchmark_apps(scaled);
  ASSERT_EQ(suite.size(), 7u);
  const gpusim::SystemConfig config = scaled.config();
  const schemes::SchemeConfig sc = tiny_scheme_config();
  for (const BenchApp& entry : suite) {
    const auto metrics =
        entry.run(schemes::Scheme::kBigKernel, config, sc);
    EXPECT_GT(metrics.total_time, 0u) << entry.name;
    EXPECT_EQ(metrics.kernel_launches, 1u) << entry.name;
  }
}

}  // namespace
}  // namespace bigk::apps
