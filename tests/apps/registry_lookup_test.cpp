// Registry lookup contract: find_app resolves every registered name, and an
// unknown name fails fast with a message listing all valid apps.
#include "apps/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

namespace bigk::apps {
namespace {

ScaledSystem tiny_system() {
  ScaledSystem scaled;
  scaled.scale = 0.0005;
  return scaled;
}

TEST(RegistryLookupTest, FindsEveryRegisteredName) {
  const auto suite = benchmark_apps(tiny_system());
  const auto names = app_names(suite);
  ASSERT_EQ(names.size(), suite.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const BenchApp& found = find_app(suite, names[i]);
    EXPECT_EQ(found.name, names[i]);
    EXPECT_EQ(&found, &suite[i]) << "lookup must preserve suite order";
  }
}

TEST(RegistryLookupTest, UnknownNameThrowsListingValidApps) {
  const auto suite = benchmark_apps(tiny_system());
  try {
    find_app(suite, "grep-acceleration");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("grep-acceleration"), std::string::npos)
        << "message must echo the bad name: " << message;
    for (const std::string& name : app_names(suite)) {
      EXPECT_NE(message.find(name), std::string::npos)
          << "message must list valid app \"" << name << "\": " << message;
    }
  }
}

TEST(RegistryLookupTest, EveryAppBuildsAJobRunner) {
  const auto suite = benchmark_apps(tiny_system());
  for (const BenchApp& entry : suite) {
    ASSERT_TRUE(entry.make_runner != nullptr) << entry.name;
    const std::unique_ptr<JobRunner> runner = entry.make_runner();
    ASSERT_NE(runner, nullptr) << entry.name;
    EXPECT_EQ(runner->app_name(), entry.name);
    EXPECT_GT(runner->num_records(), 0u) << entry.name;
    EXPECT_GT(runner->input_bytes(), 0u) << entry.name;
  }
}

TEST(RegistryLookupTest, RunnersAreIndependentInstances) {
  const auto suite = benchmark_apps(tiny_system());
  const BenchApp& entry = suite.front();
  const auto first = entry.make_runner();
  const auto second = entry.make_runner();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->input_bytes(), second->input_bytes())
      << "same seed must regenerate the same dataset size";
}

}  // namespace
}  // namespace bigk::apps
