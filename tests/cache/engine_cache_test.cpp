// End-to-end tests for bigkcache wired into the core engine: a second launch
// over the same read-only stream must hit the chunk cache, skip the H2D
// transfer for every hit, and still compute byte-identical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "cache/pinned_pool.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

// Read-only input stream (cacheable) feeding a read-write output stream
// (never cached): out[r] = in0 * 3 + in1.
struct SumKernel {
  StreamRef<std::uint64_t> in;
  StreamRef<std::uint64_t> out;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t in0 = ctx.read(in, r * 2);
      const std::uint64_t in1 = ctx.read(in, r * 2 + 1);
      ctx.alu(3);
      ctx.write(out, r, in0 * 3 + in1);
    }
  }
};

struct CacheFixture {
  static constexpr std::uint64_t kRecords = 12'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  cusim::Runtime runtime;
  std::vector<std::uint64_t> input;
  std::vector<std::uint64_t> output;

  CacheFixture()
      : runtime((config.gpu.global_memory_bytes = 8 << 20, sim), config) {
    input.resize(kRecords * 2);
    output.resize(kRecords);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      input[r * 2] = r * 7 + 1;
      input[r * 2 + 1] = r ^ 0xC0FFEE;
    }
  }

  Options small_options() const {
    Options options;
    options.num_blocks = 4;
    options.compute_threads_per_block = 64;
    options.data_buf_bytes = 16 << 10;
    return options;
  }

  /// One engine launch; wires `cache`/`pool` in when non-null.
  EngineMetrics launch(cache::ChunkCache* cache, cache::PinnedPool* pool,
                       std::uint64_t dataset = 1) {
    Engine engine(runtime, small_options());
    engine.set_chunk_cache(cache, dataset);
    engine.set_pinned_pool(pool);
    auto in_ref = engine.streaming_map<std::uint64_t>(
        std::span(input), AccessMode::kReadOnly, 2, 2);
    auto out_ref = engine.streaming_map<std::uint64_t>(
        std::span(output), AccessMode::kReadWrite, 1, 0, 1);
    SumKernel kernel{in_ref, out_ref};
    TableSet tables;
    sim.run_until_complete(
        [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
           SumKernel k) -> sim::Task<> {
          DeviceTables device = co_await DeviceTables::upload(rt, tbl);
          co_await eng.launch(k, kRecords, device);
        }(runtime, engine, tables, kernel));
    return engine.metrics();
  }

  void check_output() const {
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      ASSERT_EQ(output[r], (r * 7 + 1) * 3 + (r ^ 0xC0FFEE)) << "record " << r;
    }
  }
};

TEST(EngineCacheTest, SecondLaunchHitsAndSkipsTransfers) {
  CacheFixture fixture;
  // Generous partition: every chunk of the input stream fits resident.
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  cache::PinnedPool pool(fixture.runtime);

  const EngineMetrics cold = fixture.launch(&cache, &pool);
  fixture.check_output();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_GT(cache.stats().insertions, 0u)
      << "insert_failures=" << cache.stats().insert_failures;

  const EngineMetrics warm = fixture.launch(&cache, &pool);
  fixture.check_output();
  EXPECT_EQ(warm.cache_misses, 0u)
      << "hits=" << warm.cache_hits
      << " insertions=" << cache.stats().insertions
      << " insert_failures=" << cache.stats().insert_failures
      << " evictions=" << cache.stats().evictions
      << " invalidations=" << cache.stats().invalidations;
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  EXPECT_GT(warm.cache_bytes_saved, 0u);
  // Every hit skips its H2D copy: the warm launch moves strictly fewer bytes.
  EXPECT_LT(warm.data_bytes_sent, cold.data_bytes_sent);
}

TEST(EngineCacheTest, ResultsAreByteIdenticalWithAndWithoutCache) {
  CacheFixture plain;
  plain.launch(nullptr, nullptr);
  const std::vector<std::uint64_t> expected = plain.output;

  CacheFixture cached;
  cache::ChunkCache cache(cached.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  cached.launch(&cache, nullptr);
  EXPECT_EQ(cached.output, expected);
  cached.launch(&cache, nullptr);  // warm pass reads cached device ranges
  EXPECT_EQ(cached.output, expected);
}

TEST(EngineCacheTest, DatasetInvalidationForcesReassembly) {
  CacheFixture fixture;
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  fixture.launch(&cache, nullptr);
  const std::uint64_t resident = cache.resident_bytes(1);
  EXPECT_GT(resident, 0u);

  // The input mutates: the owner invalidates before relaunching.
  for (std::uint64_t r = 0; r < CacheFixture::kRecords; ++r) {
    fixture.input[r * 2] = r * 11 + 5;
  }
  cache.invalidate_dataset(1, fixture.sim.now());
  EXPECT_EQ(cache.resident_bytes(1), 0u);

  const EngineMetrics metrics = fixture.launch(&cache, nullptr);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_GT(metrics.cache_misses, 0u);
  for (std::uint64_t r = 0; r < CacheFixture::kRecords; ++r) {
    ASSERT_EQ(fixture.output[r], (r * 11 + 5) * 3 + (r ^ 0xC0FFEE))
        << "record " << r;
  }
}

TEST(EngineCacheTest, DistinctDatasetsDoNotCollide) {
  CacheFixture fixture;
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  fixture.launch(&cache, nullptr, /*dataset=*/1);
  // Same geometry, different dataset id: must miss, not alias dataset 1.
  const EngineMetrics other = fixture.launch(&cache, nullptr, /*dataset=*/2);
  EXPECT_EQ(other.cache_hits, 0u);
  EXPECT_GT(other.cache_misses, 0u);
  EXPECT_GT(cache.resident_bytes(2), 0u);
}

TEST(EngineCacheTest, PinnedPoolReusesAssemblyBuffers) {
  CacheFixture fixture;
  cache::PinnedPool pool(fixture.runtime);
  fixture.launch(nullptr, &pool);
  const cache::PinnedPool::Stats cold = pool.stats();
  EXPECT_GT(cold.fresh_allocations, 0u);
  fixture.launch(nullptr, &pool);
  const cache::PinnedPool::Stats warm = pool.stats();
  // Second launch draws the same slot geometry from the pool: no new backing
  // buffers, every acquire is a reuse.
  EXPECT_EQ(warm.fresh_allocations, cold.fresh_allocations);
  EXPECT_GT(warm.reuses, cold.reuses);
  fixture.check_output();
}

}  // namespace
}  // namespace bigk::core
