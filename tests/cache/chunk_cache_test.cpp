// Unit tests for the bigkcache chunk cache: key lookup, pinning, eviction
// policy behaviour under arena pressure (LRU vs cost-aware), invalidation,
// and the sub-allocator's capacity accounting.
#include "cache/chunk_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "cache/policy.hpp"
#include "gpusim/device_memory.hpp"

namespace bigk::cache {
namespace {

CacheKey key_for(std::uint64_t chunk, std::uint64_t dataset = 1,
                 std::uint32_t stream = 0) {
  CacheKey key;
  key.dataset = dataset;
  key.stream = stream;
  key.range_begin = 0;
  key.range_end = 1000;
  key.chunk = chunk;
  key.layout = 0;
  key.signature = 0x5EED ^ chunk;
  return key;
}

struct CacheFixture {
  gpusim::DeviceMemory memory{1 << 20};

  ChunkCache make(std::uint64_t capacity,
                  EvictionKind eviction = EvictionKind::kCostAware,
                  std::uint64_t stale_ticks = 256) {
    return ChunkCache(memory,
                      ChunkCache::Config{capacity, eviction, stale_ticks});
  }

  /// Insert-and-unpin: the steady state of an entry after its chunk retires.
  static std::uint64_t put(ChunkCache& cache, const CacheKey& key,
                           std::uint64_t bytes, sim::TimePs now = 0) {
    const auto lease = cache.insert(key, bytes, now);
    EXPECT_TRUE(lease.has_value());
    cache.unpin(lease->entry);
    return lease->entry;
  }
};

TEST(ChunkCacheTest, MissThenInsertThenHit) {
  CacheFixture fx;
  ChunkCache cache = fx.make(64 << 10);
  EXPECT_FALSE(cache.lookup(key_for(0), 0).has_value());
  const std::uint64_t entry = CacheFixture::put(cache, key_for(0), 4096);

  const auto hit = cache.lookup(key_for(0), 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry, entry);
  EXPECT_EQ(hit->bytes, 4096u);
  cache.unpin(hit->entry);

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().bytes_saved, 4096u);
  EXPECT_EQ(cache.resident_bytes(1), 4096u);
}

TEST(ChunkCacheTest, DistinctKeyFieldsDoNotAlias) {
  CacheFixture fx;
  ChunkCache cache = fx.make(64 << 10);
  CacheFixture::put(cache, key_for(0), 1024);
  EXPECT_FALSE(cache.lookup(key_for(1), 0).has_value());           // chunk
  EXPECT_FALSE(cache.lookup(key_for(0, 2), 0).has_value());        // dataset
  EXPECT_FALSE(cache.lookup(key_for(0, 1, 1), 0).has_value());     // stream
  CacheKey tweaked = key_for(0);
  tweaked.signature ^= 1;
  EXPECT_FALSE(cache.lookup(tweaked, 0).has_value());              // signature
}

TEST(ChunkCacheTest, OversizedInsertFailsWithoutEvicting) {
  CacheFixture fx;
  ChunkCache cache = fx.make(8 << 10);
  CacheFixture::put(cache, key_for(0), 1024);
  EXPECT_FALSE(cache.insert(key_for(9), 16 << 10, 0).has_value());
  EXPECT_EQ(cache.stats().insert_failures, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.lookup(key_for(0), 0).has_value());
}

TEST(ChunkCacheTest, PinnedEntriesAreNeverEvicted) {
  CacheFixture fx;
  // Room for exactly two 4 KiB entries; LRU so eviction is unconditional.
  ChunkCache cache = fx.make(8 << 10, EvictionKind::kLru);
  const auto a = cache.insert(key_for(0), 4096, 0);  // stays pinned
  ASSERT_TRUE(a.has_value());
  CacheFixture::put(cache, key_for(1), 4096);
  // A third insert must evict the unpinned entry 1, never the pinned 0.
  const auto c = cache.insert(key_for(2), 4096, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(cache.lookup(key_for(0), 2).has_value());
  EXPECT_FALSE(cache.lookup(key_for(1), 2).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ChunkCacheTest, AllPinnedInsertFailsInsteadOfEvicting) {
  CacheFixture fx;
  ChunkCache cache = fx.make(8 << 10, EvictionKind::kLru);
  ASSERT_TRUE(cache.insert(key_for(0), 4096, 0).has_value());
  ASSERT_TRUE(cache.insert(key_for(1), 4096, 0).has_value());
  EXPECT_FALSE(cache.insert(key_for(2), 4096, 0).has_value());
  EXPECT_EQ(cache.stats().insert_failures, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ChunkCacheTest, LruEvictsTheColdestEntry) {
  CacheFixture fx;
  ChunkCache cache = fx.make(12 << 10, EvictionKind::kLru);
  CacheFixture::put(cache, key_for(0), 4096);
  CacheFixture::put(cache, key_for(1), 4096);
  CacheFixture::put(cache, key_for(2), 4096);
  // Touch 0 and 2; 1 becomes the LRU victim.
  cache.unpin(cache.lookup(key_for(0), 1)->entry);
  cache.unpin(cache.lookup(key_for(2), 2)->entry);
  CacheFixture::put(cache, key_for(3), 4096, 3);
  EXPECT_TRUE(cache.lookup(key_for(0), 4).has_value());
  EXPECT_FALSE(cache.lookup(key_for(1), 4).has_value());
  EXPECT_TRUE(cache.lookup(key_for(2), 4).has_value());
}

TEST(ChunkCacheTest, CostAwareKeepsProvenEarnersOverZeros) {
  CacheFixture fx;
  // stale_ticks = 0: pure cost ranking, every unpinned entry evictable.
  ChunkCache cache = fx.make(12 << 10, EvictionKind::kCostAware, 0);
  CacheFixture::put(cache, key_for(0), 4096);
  CacheFixture::put(cache, key_for(1), 4096);
  CacheFixture::put(cache, key_for(2), 4096);
  // Entry 0 earns savings (oldest but proven); 1 and 2 never hit.
  cache.unpin(cache.lookup(key_for(0), 1)->entry);
  // Under LRU entry 0 would now go; cost-aware keeps the proven earner and
  // evicts the least-earning, oldest zero-savings entry (1).
  CacheFixture::put(cache, key_for(3), 4096, 3);
  EXPECT_TRUE(cache.lookup(key_for(0), 4).has_value());
  EXPECT_FALSE(cache.lookup(key_for(1), 4).has_value());
  EXPECT_TRUE(cache.lookup(key_for(2), 4).has_value());
}

TEST(ChunkCacheTest, CostAwareAdmissionProtectsFreshResidents) {
  CacheFixture fx;
  ChunkCache cache = fx.make(8 << 10, EvictionKind::kCostAware);
  CacheFixture::put(cache, key_for(0), 4096);
  CacheFixture::put(cache, key_for(1), 4096);
  // Both residents are fresh and unproven: a new unproven image may not
  // displace them — the insert is refused, not admitted by churn.
  EXPECT_FALSE(cache.insert(key_for(2), 4096, 1).has_value());
  EXPECT_EQ(cache.stats().insert_failures, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.lookup(key_for(0), 2).has_value());
}

TEST(ChunkCacheTest, CostAwareEvictsStaleEntriesForNewCandidates) {
  CacheFixture fx;
  // Tight admission window so disuse ages quickly.
  ChunkCache cache = fx.make(8 << 10, EvictionKind::kCostAware,
                             /*stale_ticks=*/4);
  CacheFixture::put(cache, key_for(0), 4096);
  CacheFixture::put(cache, key_for(1), 4096);
  // Traffic keeps entry 1 hot while entry 0 goes untouched past the window.
  for (int i = 0; i < 6; ++i) cache.unpin(cache.lookup(key_for(1), i)->entry);
  const auto lease = cache.insert(key_for(2), 4096, 9);
  ASSERT_TRUE(lease.has_value());
  cache.unpin(lease->entry);
  EXPECT_FALSE(cache.lookup(key_for(0), 10).has_value());  // stale: evicted
  EXPECT_TRUE(cache.lookup(key_for(1), 10).has_value());
  EXPECT_TRUE(cache.lookup(key_for(2), 10).has_value());
}

TEST(ChunkCacheTest, CostAwareIsScanResistantWhereLruThrashes) {
  // A repeated sequential scan of 6 chunks through a 4-entry partition:
  // LRU evicts each chunk just before its reuse (0 hits ever); cost-aware
  // admission keeps the first 4 chunks resident and serves them every pass.
  const auto scan_hits = [](EvictionKind kind) {
    CacheFixture fx;
    ChunkCache cache = fx.make(16 << 10, kind);
    std::uint64_t hits = 0;
    sim::TimePs now = 0;
    for (int pass = 0; pass < 4; ++pass) {
      for (std::uint64_t chunk = 0; chunk < 6; ++chunk) {
        if (const auto hit = cache.lookup(key_for(chunk), ++now)) {
          ++hits;
          cache.unpin(hit->entry);
          continue;
        }
        if (const auto lease = cache.insert(key_for(chunk), 4096, now)) {
          cache.unpin(lease->entry);
        }
      }
    }
    return hits;
  };
  EXPECT_EQ(scan_hits(EvictionKind::kLru), 0u);
  // 3 warm passes x 4 resident chunks.
  EXPECT_EQ(scan_hits(EvictionKind::kCostAware), 12u);
}

TEST(ChunkCacheTest, InvalidateWhilePinnedDefersReclaimToUnpin) {
  CacheFixture fx;
  ChunkCache cache = fx.make(8 << 10);
  const auto lease = cache.insert(key_for(0), 4096, 0);  // pinned
  ASSERT_TRUE(lease.has_value());
  cache.invalidate_entry(lease->entry, 1);
  // Gone from the index immediately...
  EXPECT_FALSE(cache.lookup(key_for(0), 2).has_value());
  EXPECT_EQ(cache.resident_bytes(1), 0u);
  // ...but the storage outlives the in-flight pin: a full-capacity insert
  // only fits after the unpin releases the zombie range.
  EXPECT_FALSE(cache.insert(key_for(1), 8 << 10, 3).has_value());
  cache.unpin(lease->entry);
  EXPECT_TRUE(cache.insert(key_for(1), 8 << 10, 4).has_value());
}

TEST(ChunkCacheTest, InvalidateDatasetDropsOnlyThatDataset) {
  CacheFixture fx;
  ChunkCache cache = fx.make(64 << 10);
  CacheFixture::put(cache, key_for(0, 1), 4096);
  CacheFixture::put(cache, key_for(0, 2), 4096);
  cache.invalidate_dataset(1, 0);
  EXPECT_FALSE(cache.lookup(key_for(0, 1), 1).has_value());
  EXPECT_TRUE(cache.lookup(key_for(0, 2), 1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ChunkCacheTest, ReinsertUnderSameKeyReplacesTheOldImage) {
  CacheFixture fx;
  ChunkCache cache = fx.make(64 << 10);
  CacheFixture::put(cache, key_for(0), 4096);
  const auto fresh = cache.insert(key_for(0), 8192, 1);
  ASSERT_TRUE(fresh.has_value());
  cache.unpin(fresh->entry);
  const auto hit = cache.lookup(key_for(0), 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->bytes, 8192u);
  EXPECT_EQ(cache.resident_bytes(1), 8192u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ChunkCacheTest, EvictionFreesSpaceForCoalescedReuse) {
  CacheFixture fx;
  ChunkCache cache = fx.make(16 << 10, EvictionKind::kLru);
  for (std::uint64_t chunk = 0; chunk < 4; ++chunk) {
    CacheFixture::put(cache, key_for(chunk), 4096);
  }
  // One 16 KiB entry needs the whole partition: every resident entry must be
  // evicted and the freed ranges coalesced back into a single span.
  const auto big = cache.insert(key_for(9), 16 << 10, 1);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(cache.stats().evictions, 4u);
}

TEST(ChunkCacheTest, CapacityMustBeNonZero) {
  CacheFixture fx;
  EXPECT_THROW(fx.make(0), std::invalid_argument);
}

}  // namespace
}  // namespace bigk::cache
