// Unit tests for the pinned assembly-buffer pool: reuse semantics, region-id
// stability across recycles, and the pinned-footprint accounting that only
// grows on genuinely fresh allocations.
#include "cache/pinned_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "cusim/runtime.hpp"
#include "gpusim/config.hpp"
#include "sim/simulation.hpp"

namespace bigk::cache {
namespace {

struct PoolFixture {
  sim::Simulation sim;
  gpusim::SystemConfig config;
  cusim::Runtime runtime{sim, config};
  PinnedPool pool{runtime};
};

TEST(PinnedPoolTest, FreshAcquireAllocatesAndPins) {
  PoolFixture fx;
  const std::uint64_t pinned_before = fx.runtime.pinned_bytes();
  PinnedPool::Buffer buffer = fx.pool.acquire(4096);
  EXPECT_EQ(buffer.data.size(), 4096u);
  EXPECT_NE(buffer.region, 0u);
  EXPECT_EQ(fx.pool.stats().fresh_allocations, 1u);
  EXPECT_EQ(fx.pool.stats().reuses, 0u);
  EXPECT_EQ(fx.runtime.pinned_bytes(), pinned_before + 4096);
}

TEST(PinnedPoolTest, ReleaseThenAcquireReusesBufferAndRegion) {
  PoolFixture fx;
  PinnedPool::Buffer buffer = fx.pool.acquire(4096);
  const std::uint32_t region = buffer.region;
  fx.pool.release(std::move(buffer));
  EXPECT_EQ(fx.pool.free_buffers(), 1u);

  const std::uint64_t pinned = fx.runtime.pinned_bytes();
  PinnedPool::Buffer again = fx.pool.acquire(4096);
  EXPECT_EQ(again.region, region);  // same hot region for the cache model
  EXPECT_EQ(fx.pool.stats().reuses, 1u);
  EXPECT_EQ(fx.pool.stats().fresh_allocations, 1u);
  EXPECT_EQ(fx.runtime.pinned_bytes(), pinned);  // no new pinned footprint
  EXPECT_EQ(fx.pool.free_buffers(), 0u);
}

TEST(PinnedPoolTest, SmallerAcquireShrinkFitsIntoFreeBuffer) {
  PoolFixture fx;
  PinnedPool::Buffer big = fx.pool.acquire(8192);
  fx.pool.release(std::move(big));
  PinnedPool::Buffer small = fx.pool.acquire(1024);
  EXPECT_EQ(small.data.size(), 1024u);
  EXPECT_EQ(fx.pool.stats().reuses, 1u);
  EXPECT_EQ(fx.pool.stats().fresh_allocations, 1u);
}

TEST(PinnedPoolTest, LargerAcquireAllocatesFreshInsteadOfRealloc) {
  PoolFixture fx;
  PinnedPool::Buffer small = fx.pool.acquire(1024);
  const std::uint32_t small_region = small.region;
  fx.pool.release(std::move(small));
  // 8 KiB does not fit in the 1 KiB cast-off: a realloc would silently move
  // the "pinned" storage, so the pool allocates fresh instead.
  PinnedPool::Buffer big = fx.pool.acquire(8192);
  EXPECT_NE(big.region, small_region);
  EXPECT_EQ(fx.pool.stats().fresh_allocations, 2u);
  EXPECT_EQ(fx.pool.stats().reuses, 0u);
  EXPECT_EQ(fx.pool.free_buffers(), 1u);  // the small one stays pooled
}

TEST(PinnedPoolTest, PicksSmallestSufficientBuffer) {
  PoolFixture fx;
  PinnedPool::Buffer a = fx.pool.acquire(2048);
  PinnedPool::Buffer b = fx.pool.acquire(16384);
  const std::uint32_t small_region = a.region;
  fx.pool.release(std::move(b));
  fx.pool.release(std::move(a));
  // 1 KiB fits both; best-fit takes the 2 KiB buffer, not the 16 KiB one.
  PinnedPool::Buffer c = fx.pool.acquire(1024);
  EXPECT_EQ(c.region, small_region);
  EXPECT_EQ(fx.pool.free_buffers(), 1u);
}

TEST(PinnedPoolTest, BytesAllocatedTracksOnlyFreshAllocations) {
  PoolFixture fx;
  PinnedPool::Buffer a = fx.pool.acquire(4096);
  fx.pool.release(std::move(a));
  PinnedPool::Buffer b = fx.pool.acquire(4096);
  fx.pool.release(std::move(b));
  PinnedPool::Buffer c = fx.pool.acquire(8192);
  fx.pool.release(std::move(c));
  EXPECT_EQ(fx.pool.stats().acquires, 3u);
  EXPECT_EQ(fx.pool.stats().bytes_allocated, 4096u + 8192u);
}

}  // namespace
}  // namespace bigk::cache
