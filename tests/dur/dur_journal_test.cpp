// bigkdur job journal: monotone per-job progress checkpoints with a terminal
// completion mark — the durable state a crashed server's successor resumes
// from.
#include "dur/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace bigk::dur {
namespace {

TEST(JobJournalTest, RecordAdvancesACheckpoint) {
  JobJournal journal;
  EXPECT_EQ(journal.find(7), nullptr);

  journal.record(7, 1500, 1, 0xAAAA);
  journal.record(7, 3000, 2, 0xBBBB);
  const JobCheckpoint* cp = journal.find(7);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->records_done, 3000u);
  EXPECT_EQ(cp->windows_done, 2u);
  EXPECT_EQ(cp->output_digest, 0xBBBBu);
  EXPECT_EQ(cp->updates, 2u);
  EXPECT_FALSE(cp->complete);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.writes(), 2u);
}

TEST(JobJournalTest, StaleWritesBelowTheHighWaterMarkAreIgnored) {
  JobJournal journal;
  journal.record(7, 3000, 2, 0xBBBB);
  // A redispatched attempt reporting older progress must not roll back the
  // checkpoint (resume would re-run verified windows).
  journal.record(7, 1500, 1, 0xAAAA);
  const JobCheckpoint* cp = journal.find(7);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->records_done, 3000u);
  EXPECT_EQ(cp->output_digest, 0xBBBBu);
  EXPECT_EQ(cp->updates, 1u);
  EXPECT_EQ(journal.writes(), 1u);
}

TEST(JobJournalTest, MarkCompleteIsTerminal) {
  JobJournal journal;
  journal.record(7, 3000, 2, 0xBBBB);
  journal.mark_complete(7, 6000, 0xCCCC);
  // Any later write for the job is a no-op, even one claiming more records.
  journal.record(7, 9000, 9, 0xDDDD);
  const JobCheckpoint* cp = journal.find(7);
  ASSERT_NE(cp, nullptr);
  EXPECT_TRUE(cp->complete);
  EXPECT_EQ(cp->records_done, 6000u);
  EXPECT_EQ(cp->output_digest, 0xCCCCu);
}

TEST(JobJournalTest, JobsAreIndependent) {
  JobJournal journal;
  journal.record(1, 1000, 1, 0x1);
  journal.record(2, 2000, 1, 0x2);
  journal.mark_complete(1, 4000, 0x3);
  EXPECT_EQ(journal.size(), 2u);
  ASSERT_NE(journal.find(2), nullptr);
  EXPECT_EQ(journal.find(2)->records_done, 2000u);
  EXPECT_FALSE(journal.find(2)->complete);
  EXPECT_TRUE(journal.find(1)->complete);
  // entries() iterates in job-id order — the determinism contract the
  // crash-restart tests lean on.
  std::uint64_t last = 0;
  for (const auto& [job, cp] : journal.entries()) {
    EXPECT_GE(job, last);
    last = job;
  }
}

}  // namespace
}  // namespace bigk::dur
