// bigkdur durable checkpoint/resume at the serving layer: jobs run as
// checkpoint windows journaled after each verified window; a redispatch
// resumes mid-job instead of restarting; and a whole-server crash (teardown +
// rebuild over the same journal) resumes every in-flight job from its last
// checkpoint — replaying strictly fewer windows, and finishing sooner, than a
// restart from zero. Resume is digest-verified: a successor whose output
// storage did not survive the crash falls back to record zero instead of
// emitting a hole.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <string>
#include <vector>

#include "dur/journal.hpp"
#include "serve/job.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_durable_toy_suite;
using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;
using test::ToyRunner;

constexpr std::uint64_t kRecords = 6'000;
constexpr std::uint64_t kWindow = 1'500;  // 4 checkpoint windows per job
constexpr std::uint32_t kJobs = 4;

ServerConfig dur_server(dur::JobJournal* journal) {
  ServerConfig config;
  config.system = toy_system();
  config.devices = 2;
  config.policy = Policy::kRoundRobin;
  config.queue_depth = 8;
  config.retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
  config.max_retries = 200;
  config.engine = toy_engine_options();
  config.dur.journal = journal;
  config.dur.checkpoint_records = kWindow;
  return config;
}

/// One job per app name, all submitted at t=0. The durable suite shares one
/// persistent runner per app, so distinct jobs must use distinct apps.
std::vector<JobSpec> one_job_per_app() {
  std::vector<JobSpec> specs;
  for (std::uint32_t i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app = "toy" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::shared_ptr<ToyRunner>> durable_runners() {
  std::vector<std::shared_ptr<ToyRunner>> runners;
  for (std::uint32_t i = 0; i < kJobs; ++i) {
    runners.push_back(std::make_shared<ToyRunner>("toy" + std::to_string(i),
                                                  kRecords, 8.0));
  }
  return runners;
}

/// Makespan of an untouched run — the reference for picking a crash instant
/// that lands mid-workload.
sim::TimePs clean_makespan() {
  static const sim::TimePs makespan = [] {
    const auto suite = make_toy_suite(kJobs, kRecords);
    ServerConfig config = dur_server(nullptr);
    config.dur.checkpoint_records = 0;
    return run_server(config, one_job_per_app(), suite).makespan;
  }();
  return makespan;
}

TEST(DurResumeTest, CheckpointWindowsJournalEveryJobToCompletion) {
  dur::JobJournal journal;
  const auto suite = make_toy_suite(kJobs, kRecords);
  const ServeReport report =
      run_server(dur_server(&journal), one_job_per_app(), suite);

  EXPECT_EQ(report.completed, kJobs);
  EXPECT_FALSE(report.crashed);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.chunks_replayed, 0u);
  ASSERT_EQ(journal.size(), kJobs);
  for (const auto& [job, cp] : journal.entries()) {
    EXPECT_TRUE(cp.complete) << "job " << job;
    EXPECT_EQ(cp.records_done, kRecords) << "job " << job;
    // Three mid-job record() writes plus the terminal mark_complete.
    EXPECT_EQ(cp.updates, kRecords / kWindow) << "job " << job;
    EXPECT_NE(cp.output_digest, 0u) << "job " << job;
  }
}

TEST(DurResumeTest, WindowedRunsMatchWholeJobResults) {
  // Windowing is a pure restartability seam: the same jobs run unwindowed
  // must produce the same completions (the toy runner self-checks results).
  dur::JobJournal journal;
  const auto suite = make_toy_suite(kJobs, kRecords);
  const ServeReport windowed =
      run_server(dur_server(&journal), one_job_per_app(), suite);
  ServerConfig whole = dur_server(nullptr);
  whole.dur.checkpoint_records = 0;
  const ServeReport unwindowed =
      run_server(whole, one_job_per_app(), suite);
  EXPECT_EQ(windowed.completed, unwindowed.completed);
  EXPECT_EQ(windowed.failed_jobs, 0u);
  EXPECT_EQ(unwindowed.failed_jobs, 0u);
}

TEST(DurResumeTest, CrashRestartResumesFromJournaledCheckpoints) {
  const auto specs = one_job_per_app();
  const auto runners = durable_runners();
  const auto suite = make_durable_toy_suite(runners);
  dur::JobJournal journal;

  // Run A: crash mid-workload. Window-granularity stop: in-flight windows
  // finish, then every unfinished job settles as failed so the run drains.
  ServerConfig crash_config = dur_server(&journal);
  crash_config.dur.crash_at = clean_makespan() / 2;
  const ServeReport crashed = run_server(crash_config, specs, suite);
  EXPECT_TRUE(crashed.crashed);
  EXPECT_GT(crashed.failed_jobs, 0u);
  EXPECT_LT(crashed.completed, kJobs);

  // The journal holds partial progress for at least one in-flight job.
  std::uint64_t partial = 0;
  std::uint64_t journaled = 0;
  for (const auto& [job, cp] : journal.entries()) {
    if (cp.records_done > 0) ++journaled;
    if (cp.records_done > 0 && !cp.complete) ++partial;
  }
  EXPECT_GT(partial, 0u) << "crash_at missed the in-flight window phase";
  const dur::JobJournal snapshot = journal;  // for the from-zero control

  // Run B: a fresh server over the same journal and the same (durable)
  // runners. Completed jobs verify-and-skip, in-flight jobs resume from
  // their checkpoints, and no journaled window is executed twice.
  const ServeReport resumed = run_server(dur_server(&journal), specs, suite);
  EXPECT_FALSE(resumed.crashed);
  EXPECT_EQ(resumed.completed, kJobs);
  EXPECT_EQ(resumed.failed_jobs, 0u);
  EXPECT_EQ(resumed.resumed, journaled);
  EXPECT_EQ(resumed.chunks_replayed, 0u);
  for (const JobRecord& record : resumed.jobs) {
    const dur::JobCheckpoint* cp = snapshot.find(record.spec.id);
    const bool expect_resumed = cp != nullptr && cp->records_done > 0;
    EXPECT_EQ(record.resumed, expect_resumed) << "job " << record.spec.id;
    EXPECT_TRUE(record.completed) << "job " << record.spec.id;
  }
  for (const auto& [job, cp] : journal.entries()) {
    EXPECT_TRUE(cp.complete) << "job " << job;
  }

  // Run C: the same crash journal, but fresh runners whose output storage
  // did not survive — every digest check fails, every job restarts from
  // record zero, and all journaled windows are replayed.
  dur::JobJournal lost_output = snapshot;
  const auto fresh_suite = make_toy_suite(kJobs, kRecords);
  const ServeReport restarted =
      run_server(dur_server(&lost_output), specs, fresh_suite);
  EXPECT_EQ(restarted.completed, kJobs);
  EXPECT_EQ(restarted.resumed, 0u);
  EXPECT_GT(restarted.chunks_replayed, 0u);
  // The acceptance bar: resume replays strictly fewer windows and finishes
  // strictly sooner than the restart-from-zero control.
  EXPECT_LT(resumed.chunks_replayed, restarted.chunks_replayed);
  EXPECT_LT(resumed.makespan, restarted.makespan);
}

TEST(DurResumeTest, CrashRestartIsDeterministicAcrossSeededRuns) {
  const auto specs = one_job_per_app();
  const auto run_once = [&specs] {
    const auto runners = durable_runners();
    const auto suite = make_durable_toy_suite(runners);
    dur::JobJournal journal;
    ServerConfig crash_config = dur_server(&journal);
    crash_config.dur.crash_at = clean_makespan() / 2;
    const ServeReport crashed = run_server(crash_config, specs, suite);
    const ServeReport resumed = run_server(dur_server(&journal), specs, suite);
    return std::tuple{crashed.completed, crashed.makespan, resumed.makespan,
                      resumed.resumed, resumed.chunks_replayed,
                      resumed.completion_order};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DurResumeTest, DeviceFailureResumesMidJobFromTheJournal) {
  // Same-incarnation resume: device 0 dies after the first checkpoint
  // windows landed; the redispatched jobs pick up from their checkpoints
  // (the runner object — and thus the output — survives a redispatch).
  dur::JobJournal journal;
  const auto suite = make_toy_suite(kJobs, kRecords);
  ServerConfig config = dur_server(&journal);
  config.fault_spec = "device_lost,nth=30,device=0,down_us=1";
  config.probe_interval = sim::DurationPs{50'000'000};  // 50 us
  const ServeReport report = run_server(config, one_job_per_app(), suite);

  EXPECT_EQ(report.completed, kJobs);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_EQ(report.fault_recovered, report.fault_injected);
  EXPECT_GE(report.resumed, 1u)
      << "the redispatched job should resume from its checkpoint";
  EXPECT_EQ(report.chunks_replayed, 0u);
}

}  // namespace
}  // namespace bigk::serve
