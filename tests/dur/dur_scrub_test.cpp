// bigkdur cache scrub daemon: budgeted re-verification of quiescent resident
// ChunkCache entries against their insert-time digests — clean entries
// survive, corrupted entries are evicted so the next lookup restages clean
// bytes, and pinned / undigested entries are left to their owners.
#include "cache/chunk_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dur/checksum.hpp"
#include "dur/integrity.hpp"
#include "fault/fault.hpp"
#include "gpusim/device_memory.hpp"

namespace bigk::cache {
namespace {

constexpr std::size_t site(dur::Site s) {
  return static_cast<std::size_t>(s);
}

CacheKey key_for(std::uint64_t chunk) {
  CacheKey key;
  key.dataset = 1;
  key.stream = 0;
  key.range_begin = 0;
  key.range_end = 1000;
  key.chunk = chunk;
  key.layout = 0;
  key.signature = 0x5EED ^ chunk;
  return key;
}

struct ScrubFixture {
  gpusim::DeviceMemory memory{1 << 20};
  dur::Integrity integrity;
  ChunkCache cache{memory, ChunkCache::Config{64 << 10}};

  ScrubFixture() { cache.set_integrity(&integrity); }

  /// Insert-and-unpin an entry whose device bytes match its recorded digest
  /// — the steady state the engine leaves behind after a verified DMA.
  ChunkCache::Lease put_digested(std::uint64_t chunk, std::uint64_t bytes,
                                 std::uint8_t fill, sim::TimePs now = 0) {
    std::vector<std::byte> image(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      image[i] = static_cast<std::byte>(fill + i);
    }
    const std::uint64_t digest =
        dur::checksum_bytes({image.data(), image.size()});
    const auto lease = cache.insert(key_for(chunk), bytes, now, digest);
    EXPECT_TRUE(lease.has_value());
    auto dev = memory.bytes_mut(lease->dev_base, bytes);
    std::copy(image.begin(), image.end(), dev.begin());
    cache.unpin(lease->entry);
    return *lease;
  }
};

TEST(DurScrubTest, CleanPassChecksEverythingAndEvictsNothing) {
  ScrubFixture fx;
  fx.put_digested(0, 4096, 0x11);
  fx.put_digested(1, 4096, 0x22);
  fx.put_digested(2, 4096, 0x33);

  const ChunkCache::ScrubResult result = fx.cache.scrub(10, /*now=*/1);
  EXPECT_EQ(result.checked, 3u);
  EXPECT_EQ(result.evicted, 0u);
  EXPECT_EQ(fx.integrity.stats().scrubbed, 3u);
  EXPECT_EQ(fx.integrity.stats().scrub_evictions, 0u);
  EXPECT_EQ(fx.integrity.stats().verified_by_site[site(dur::Site::kScrub)],
            3u);
  EXPECT_EQ(fx.cache.entry_count(), 3u);
}

TEST(DurScrubTest, CorruptedEntryIsEvictedAndMissesAfterwards) {
  ScrubFixture fx;
  fx.put_digested(0, 4096, 0x11);
  const ChunkCache::Lease victim = fx.put_digested(1, 4096, 0x22);
  fx.memory.bytes_mut(victim.dev_base, 1)[0] ^= std::byte{0x01};

  const ChunkCache::ScrubResult result = fx.cache.scrub(10, /*now=*/1);
  EXPECT_EQ(result.checked, 2u);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(fx.cache.stats().evictions, 1u);
  EXPECT_EQ(fx.integrity.stats().detected_by_site[site(dur::Site::kScrub)],
            1u);
  EXPECT_EQ(fx.integrity.stats().scrub_evictions, 1u);
  // The condemned entry misses (the engine would restage clean bytes); the
  // clean neighbour still hits.
  EXPECT_FALSE(fx.cache.lookup(key_for(1), 2).has_value());
  const auto hit = fx.cache.lookup(key_for(0), 2);
  ASSERT_TRUE(hit.has_value());
  fx.cache.unpin(hit->entry);
}

TEST(DurScrubTest, PinnedAndUndigestedEntriesAreSkipped) {
  ScrubFixture fx;
  // Still pinned: mid-DMA from the scrubber's point of view.
  const auto pinned = fx.cache.insert(key_for(0), 4096, 0, 123);
  ASSERT_TRUE(pinned.has_value());
  // No digest recorded (integrity was off when this image was inserted).
  const auto undigested = fx.cache.insert(key_for(1), 4096, 0);
  ASSERT_TRUE(undigested.has_value());
  fx.cache.unpin(undigested->entry);
  fx.put_digested(2, 4096, 0x33);

  const ChunkCache::ScrubResult result = fx.cache.scrub(10, /*now=*/1);
  EXPECT_EQ(result.checked, 1u);
  EXPECT_EQ(result.evicted, 0u);
  EXPECT_EQ(fx.cache.entry_count(), 3u);
  fx.cache.unpin(pinned->entry);
}

TEST(DurScrubTest, BudgetedCursorCoversAllEntriesAcrossPasses) {
  ScrubFixture fx;
  fx.put_digested(0, 4096, 0x11);
  fx.put_digested(1, 4096, 0x22);
  const ChunkCache::Lease victim = fx.put_digested(2, 4096, 0x33);
  fx.memory.bytes_mut(victim.dev_base, 1)[0] ^= std::byte{0x01};

  // One entry per pass: the round-robin cursor must still reach the
  // corrupted third entry, and exactly once.
  std::uint64_t evicted = 0;
  for (int pass = 0; pass < 3; ++pass) {
    evicted += fx.cache.scrub(1, /*now=*/pass).evicted;
  }
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(fx.integrity.stats().scrubbed, 3u);
  // The cursor wrapped: another full cycle revisits the survivors.
  fx.cache.scrub(1, /*now=*/4);
  EXPECT_EQ(fx.integrity.stats().scrubbed, 4u);
}

TEST(DurScrubTest, ScrubDetectsAnInjectedBitflip) {
  ScrubFixture fx;
  fault::FaultPlane plane(/*seed=*/1);
  plane.add_all(fault::FaultSpec::parse("bitflip_cache,nth=1"));
  fx.cache.set_fault(&plane, /*device=*/0);
  fx.put_digested(0, 4096, 0x11);

  // The scrub visit is itself a bitflip_cache injection point: the flip
  // fires, the digest catches it, and the eviction counts as recovery.
  const ChunkCache::ScrubResult result = fx.cache.scrub(10, /*now=*/1);
  EXPECT_EQ(result.checked, 1u);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().recovered, plane.stats().injected);
}

TEST(DurScrubTest, ScrubIsANoopWithoutIntegrity) {
  gpusim::DeviceMemory memory{1 << 20};
  ChunkCache cache(memory, ChunkCache::Config{64 << 10});
  const auto lease = cache.insert(key_for(0), 4096, 0, /*checksum=*/123);
  ASSERT_TRUE(lease.has_value());
  cache.unpin(lease->entry);

  const ChunkCache::ScrubResult result = cache.scrub(10, /*now=*/1);
  EXPECT_EQ(result.checked, 0u);
  EXPECT_EQ(result.evicted, 0u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

}  // namespace
}  // namespace bigk::cache
