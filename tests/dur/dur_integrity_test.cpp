// bigkdur end-to-end integrity at the engine level: a bit flipped at any
// custody point (H2D DMA, resident cache entry, staged write-back) is caught
// by the digest chain and repaired through the existing chunk machinery, so
// the run stays byte-identical and dur.detected == fault.injected. The same
// flips with integrity off provably corrupt the output — the control that
// shows the checks are load-bearing, not decorative.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "dur/integrity.hpp"
#include "fault/fault.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

constexpr std::size_t site(dur::Site s) {
  return static_cast<std::size_t>(s);
}

// Same toy streaming kernel as the recovery tests: records of 4 elements
// [a, b, pad, out]; out = a + b + bias, pad must survive untouched.
struct ScaleKernel {
  StreamRef<std::uint64_t> data;
  TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(5);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

struct Fixture {
  static constexpr std::uint64_t kRecords = 20'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  std::vector<std::uint64_t> host;

  Fixture() {
    config.gpu.global_memory_bytes = 8 << 20;
    host.resize(kRecords * 4);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      host[r * 4] = r * 3;
      host[r * 4 + 1] = r ^ 5;
      host[r * 4 + 2] = 0xDEAD;
      host[r * 4 + 3] = 0;
    }
  }
};

Options small_options() {
  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  return options;
}

struct RunResult {
  fault::FaultStats fault;
  dur::IntegrityStats dur;
  EngineMetrics engine;
};

/// Runs ScaleKernel with `spec` on the runtime's fault plane (empty =
/// fault-free) and, with `with_integrity`, the dur plane on the engine.
RunResult run_scale(Fixture& fixture, const char* spec, bool with_integrity) {
  fault::FaultPlane plane(/*seed=*/1);
  cusim::Runtime runtime(fixture.sim, fixture.config);
  if (spec != nullptr && spec[0] != '\0') {
    plane.add_all(fault::FaultSpec::parse(spec));
    runtime.set_fault_plane(&plane);
  }
  dur::Integrity integrity;
  Engine engine(runtime, small_options());
  if (with_integrity) engine.set_integrity(&integrity);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite,
      /*elems_per_record=*/4, /*reads_per_record=*/2, /*writes_per_record=*/1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  ScaleKernel kernel{stream, bias};

  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));

  return RunResult{plane.stats(), integrity.stats(), engine.metrics()};
}

/// Golden output: one fault-free, integrity-off run's host bytes.
const std::vector<std::uint64_t>& golden_output() {
  static const std::vector<std::uint64_t> golden = [] {
    Fixture fixture;
    run_scale(fixture, "", /*with_integrity=*/false);
    return fixture.host;
  }();
  return golden;
}

TEST(DurIntegrityTest, CleanRunWithIntegrityIsByteIdentical) {
  Fixture fixture;
  const RunResult result = run_scale(fixture, "", /*with_integrity=*/true);
  EXPECT_EQ(fixture.host, golden_output());
  EXPECT_EQ(result.dur.detected, 0u);
  EXPECT_GT(result.dur.verified, 0u);
  // Every chunk is verified both after its DMA and at write-back seal.
  EXPECT_GT(result.dur.verified_by_site[site(dur::Site::kDma)], 0u);
  EXPECT_GT(result.dur.verified_by_site[site(dur::Site::kWriteback)], 0u);
}

TEST(DurIntegrityTest, DmaBitflipIsDetectedAndRepairedByteIdentical) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, "bitflip_dma,nth=3", /*with_integrity=*/true);
  EXPECT_EQ(fixture.host, golden_output())
      << "detected flip must be repaired before compute reads it";
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.dur.detected, result.fault.injected);
  EXPECT_EQ(result.dur.detected_by_site[site(dur::Site::kDma)], 1u);
  EXPECT_GE(result.dur.repaired, 1u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
  EXPECT_GE(result.engine.chunk_retries, 1u);
}

TEST(DurIntegrityTest, DmaBitflipCorruptsOutputWithoutIntegrity) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, "bitflip_dma,nth=3", /*with_integrity=*/false);
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.dur.detected, 0u);
  EXPECT_NE(fixture.host, golden_output())
      << "with integrity off the flipped input must poison the output";
}

TEST(DurIntegrityTest, RepeatedDmaBitflipsAreAllAbsorbed) {
  Fixture fixture;
  const RunResult result = run_scale(fixture, "bitflip_dma,nth=2,every=5,max=3",
                                     /*with_integrity=*/true);
  EXPECT_EQ(fixture.host, golden_output());
  EXPECT_EQ(result.fault.injected, 3u);
  EXPECT_EQ(result.dur.detected, result.fault.injected);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
}

TEST(DurIntegrityTest, WritebackBitflipIsDetectedAndRepairedByteIdentical) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, "bitflip_writeback,nth=2", /*with_integrity=*/true);
  EXPECT_EQ(fixture.host, golden_output())
      << "scatter must repair the flipped staged value from the device buffer";
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_EQ(result.dur.detected_by_site[site(dur::Site::kWriteback)], 1u);
  EXPECT_GE(result.dur.repaired, 1u);
  EXPECT_EQ(result.fault.recovered, result.fault.injected);
}

TEST(DurIntegrityTest, WritebackBitflipCorruptsOutputWithoutIntegrity) {
  Fixture fixture;
  const RunResult result =
      run_scale(fixture, "bitflip_writeback,nth=2", /*with_integrity=*/false);
  EXPECT_EQ(result.fault.injected, 1u);
  EXPECT_NE(fixture.host, golden_output())
      << "a flipped staged write must land in host memory unchecked";
}

// --- resident cache entries ------------------------------------------------

// Read-only input stream (cacheable) feeding a read-write output stream:
// out[r] = in0 * 3 + in1; the second launch hits the cache.
struct SumKernel {
  StreamRef<std::uint64_t> in;
  StreamRef<std::uint64_t> out;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t in0 = ctx.read(in, r * 2);
      const std::uint64_t in1 = ctx.read(in, r * 2 + 1);
      ctx.alu(3);
      ctx.write(out, r, in0 * 3 + in1);
    }
  }
};

struct CacheFixture {
  static constexpr std::uint64_t kRecords = 12'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  cusim::Runtime runtime;
  std::vector<std::uint64_t> input;
  std::vector<std::uint64_t> output;

  CacheFixture()
      : runtime((config.gpu.global_memory_bytes = 8 << 20, sim), config) {
    input.resize(kRecords * 2);
    output.resize(kRecords);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      input[r * 2] = r * 7 + 1;
      input[r * 2 + 1] = r ^ 0xC0FFEE;
    }
  }

  EngineMetrics launch(cache::ChunkCache& cache, dur::Integrity* integrity) {
    Engine engine(runtime, small_options());
    engine.set_chunk_cache(&cache, /*dataset_id=*/1);
    engine.set_integrity(integrity);
    auto in_ref = engine.streaming_map<std::uint64_t>(
        std::span(input), AccessMode::kReadOnly, 2, 2);
    auto out_ref = engine.streaming_map<std::uint64_t>(
        std::span(output), AccessMode::kReadWrite, 1, 0, 1);
    SumKernel kernel{in_ref, out_ref};
    TableSet tables;
    sim.run_until_complete(
        [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
           SumKernel k) -> sim::Task<> {
          DeviceTables device = co_await DeviceTables::upload(rt, tbl);
          co_await eng.launch(k, kRecords, device);
        }(runtime, engine, tables, kernel));
    return engine.metrics();
  }

  void check_output() const {
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      ASSERT_EQ(output[r], (r * 7 + 1) * 3 + (r ^ 0xC0FFEE)) << "record " << r;
    }
  }
};

TEST(DurIntegrityTest, CacheHitsAreVerifiedOnCleanRuns) {
  CacheFixture fixture;
  dur::Integrity integrity;
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  cache.set_integrity(&integrity);

  fixture.launch(cache, &integrity);
  const EngineMetrics warm = fixture.launch(cache, &integrity);
  fixture.check_output();
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(integrity.stats().verified_by_site[site(dur::Site::kCache)],
            warm.cache_hits);
  EXPECT_EQ(integrity.stats().detected, 0u);
}

TEST(DurIntegrityTest, CacheBitflipEvictsTheEntryAndRestagesCleanBytes) {
  CacheFixture fixture;
  fault::FaultPlane plane(/*seed=*/1);
  plane.add_all(fault::FaultSpec::parse("bitflip_cache,nth=1"));
  dur::Integrity integrity;
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  cache.set_integrity(&integrity);
  cache.set_fault(&plane, /*device=*/0);

  const EngineMetrics cold = fixture.launch(cache, &integrity);
  // Second launch: the first quiescent hit gets its bytes flipped; the
  // verify catches it, the entry dies, and the engine restages that chunk.
  const EngineMetrics warm = fixture.launch(cache, &integrity);
  fixture.check_output();
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().recovered, plane.stats().injected);
  EXPECT_EQ(integrity.stats().detected_by_site[site(dur::Site::kCache)], 1u);
  EXPECT_GE(cache.stats().invalidations, 1u);
  // The corrupted entry read misses; every other chunk still hits.
  EXPECT_GE(warm.cache_misses, 1u);
  EXPECT_LT(warm.cache_misses, cold.cache_misses);
}

TEST(DurIntegrityTest, CacheBitflipCorruptsOutputWithoutIntegrity) {
  CacheFixture fixture;
  fault::FaultPlane plane(/*seed=*/1);
  plane.add_all(fault::FaultSpec::parse("bitflip_cache,nth=1"));
  cache::ChunkCache cache(fixture.runtime.gpu().memory(),
                          cache::ChunkCache::Config{4 << 20});
  cache.set_fault(&plane, /*device=*/0);

  fixture.launch(cache, nullptr);
  const std::vector<std::uint64_t> clean = fixture.output;
  fixture.launch(cache, nullptr);
  // Entries carry no digest, so the flipped resident bytes feed compute
  // unchecked: the warm launch silently diverges and nothing is recovered.
  EXPECT_EQ(plane.stats().injected, 1u);
  EXPECT_EQ(plane.stats().recovered, 0u);
  EXPECT_NE(fixture.output, clean)
      << "with integrity off the flipped cache entry must poison the output";
}

}  // namespace
}  // namespace bigk::core
