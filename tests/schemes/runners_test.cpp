// Cross-scheme tests: the same kernel source must produce identical results
// under every execution scheme, and the schemes must order the way the
// paper's evaluation assumes (double buffering beats single buffering,
// BigKernel beats both, for a communication-heavy workload).
#include "schemes/runners.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "schemes/metrics.hpp"

namespace bigk::schemes {
namespace {

// Toy app: records of 4 uint64 elements [a, b, pad, out];
// out = a*2 + b + table_sum where the kernel also aggregates a checksum into
// a one-slot table via atomics.
struct ToyApp {
  static constexpr std::uint32_t kElemsPerRecord = 4;
  std::uint64_t records;
  std::vector<std::uint64_t> data;
  core::TableSet table_set;
  core::TableRef<std::uint64_t> checksum;

  explicit ToyApp(std::uint64_t n) : records(n) {
    data.resize(records * kElemsPerRecord);
    checksum = table_set.add<std::uint64_t>(1);
    reset();
  }

  void reset() {
    for (std::uint64_t r = 0; r < records; ++r) {
      data[r * 4] = r * 7 + 1;
      data[r * 4 + 1] = r ^ 0x55;
      data[r * 4 + 2] = 99;
      data[r * 4 + 3] = 0;
    }
    table_set.host_span(checksum)[0] = 0;
  }

  std::uint64_t num_records() const { return records; }
  core::TableSet& tables() { return table_set; }
  bool interleaved_records() const { return true; }

  std::vector<StreamDecl> stream_decls() {
    StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(data.data());
    decl.binding.num_elements = data.size();
    decl.binding.elem_size = 8;
    decl.binding.mode = core::AccessMode::kReadWrite;
    decl.binding.elems_per_record = kElemsPerRecord;
    decl.binding.reads_per_record = 2;
    decl.binding.writes_per_record = 1;
    return {decl};
  }

  struct Kernel {
    core::StreamRef<std::uint64_t> stream{0};
    core::TableRef<std::uint64_t> checksum;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t a = ctx.read(stream, r * 4);
        const std::uint64_t b = ctx.read(stream, r * 4 + 1);
        ctx.alu(8);
        ctx.write(stream, r * 4 + 3, a * 2 + b);
        ctx.atomic_add_table(checksum, 0, a + b);
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, checksum}; }
};

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;  // force many chunks
  return config;
}

SchemeConfig small_scheme_config() {
  SchemeConfig sc;
  sc.gpu_blocks = 8;
  sc.gpu_threads_per_block = 128;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 64;
  return sc;
}

struct Expected {
  std::vector<std::uint64_t> out;
  std::uint64_t checksum = 0;
};

Expected expected_results(std::uint64_t records) {
  Expected expected;
  expected.out.resize(records);
  for (std::uint64_t r = 0; r < records; ++r) {
    const std::uint64_t a = r * 7 + 1;
    const std::uint64_t b = r ^ 0x55;
    expected.out[r] = a * 2 + b;
    expected.checksum += a + b;
  }
  return expected;
}

void check_app(const ToyApp& app, const Expected& expected) {
  for (std::uint64_t r = 0; r < app.records; ++r) {
    ASSERT_EQ(app.data[r * 4 + 3], expected.out[r]) << "record " << r;
    ASSERT_EQ(app.data[r * 4 + 2], 99u) << "pad clobbered at " << r;
  }
  auto& tables = const_cast<ToyApp&>(app).table_set;
  EXPECT_EQ(tables.host_span(app.checksum)[0], expected.checksum);
}

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, ProducesReferenceResults) {
  ToyApp app(30'000);
  const Expected expected = expected_results(app.records);
  const RunMetrics metrics =
      run_scheme(GetParam(), small_config(), app, small_scheme_config());
  EXPECT_GT(metrics.total_time, 0u);
  check_app(app, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemes,
    ::testing::Values(Scheme::kCpuSerial, Scheme::kCpuMultiThreaded,
                      Scheme::kGpuSingleBuffer, Scheme::kGpuDoubleBuffer,
                      Scheme::kBigKernel, Scheme::kHetero),
    [](const auto& info) {
      switch (info.param) {
        case Scheme::kCpuSerial: return "CpuSerial";
        case Scheme::kCpuMultiThreaded: return "CpuMt";
        case Scheme::kGpuSingleBuffer: return "GpuSingle";
        case Scheme::kGpuDoubleBuffer: return "GpuDouble";
        case Scheme::kBigKernel: return "BigKernel";
        case Scheme::kHetero: return "Hetero";
      }
      return "Unknown";
    });

TEST(SchemeOrderingTest, PaperOrderingHoldsForCommunicationBoundWorkload) {
  const gpusim::SystemConfig config = small_config();
  const SchemeConfig sc = small_scheme_config();
  ToyApp app(60'000);

  const RunMetrics serial = run_cpu_serial(config, app, sc);
  const RunMetrics mt = run_cpu_mt(config, app, sc);
  const RunMetrics single = run_gpu_single(config, app, sc);
  const RunMetrics dbl = run_gpu_double(config, app, sc);
  const RunMetrics big = run_bigkernel(config, app, sc);

  EXPECT_LT(mt.total_time, serial.total_time);
  EXPECT_LT(dbl.total_time, single.total_time);
  EXPECT_LT(big.total_time, dbl.total_time);
}

TEST(SchemeMetricsTest, SingleBufferSerializesCommAndComp) {
  // 200k records x 32 B = 6.4 MB against a 2 MB device: several chunks.
  ToyApp app(200'000);
  const RunMetrics single =
      run_gpu_single(small_config(), app, small_scheme_config());
  // Total time must be at least comm + comp apportioned: with a single
  // buffer nothing overlaps, so total >= max and close to their sum.
  EXPECT_GE(single.total_time, single.comm_busy);
  EXPECT_GE(single.total_time, single.comp_busy / 8);  // 8 SMs in parallel
  EXPECT_GT(single.comm_busy, 0u);
  EXPECT_GT(single.kernel_launches, 1u);
}

TEST(SchemeMetricsTest, BigKernelLaunchesOnceAndMovesFewerBytes) {
  ToyApp app(30'000);
  const RunMetrics single =
      run_gpu_single(small_config(), app, small_scheme_config());
  const RunMetrics big =
      run_bigkernel(small_config(), app, small_scheme_config());
  EXPECT_EQ(big.kernel_launches, 1u);
  // The kernel reads 2 of 4 elements; BigKernel's h2d bytes must be well
  // below the fetch-everything baselines'.
  EXPECT_LT(big.h2d_bytes, single.h2d_bytes * 7 / 10);
}

TEST(SchemeMetricsTest, DoubleBufferOverlapsCommunication) {
  ToyApp app(60'000);
  const RunMetrics single =
      run_gpu_single(small_config(), app, small_scheme_config());
  const RunMetrics dbl =
      run_gpu_double(small_config(), app, small_scheme_config());
  // Same bytes moved, less wall-clock: overlap, not volume.
  EXPECT_NEAR(static_cast<double>(dbl.h2d_bytes),
              static_cast<double>(single.h2d_bytes),
              static_cast<double>(single.h2d_bytes) * 0.05);
  EXPECT_LT(dbl.total_time, single.total_time);
}

TEST(SchemeMetricsTest, SpeedupHelper) {
  RunMetrics slow;
  slow.total_time = sim::seconds(2);
  RunMetrics fast;
  fast.total_time = sim::seconds(1);
  EXPECT_DOUBLE_EQ(speedup(slow, fast), 2.0);
}

}  // namespace
}  // namespace bigk::schemes
