// Tests for the demand-paging (UVM-style) execution scheme.
#include "schemes/uvm.hpp"

#include <gtest/gtest.h>

#include "apps/kmeans.hpp"
#include "apps/netflix.hpp"
#include "apps/wordcount.hpp"

namespace bigk::schemes {
namespace {

gpusim::SystemConfig tiny_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 3 << 20;
  return config;
}

SchemeConfig tiny_scheme_config() {
  SchemeConfig sc;
  sc.gpu_blocks = 8;
  sc.gpu_threads_per_block = 128;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 64;
  return sc;
}

TEST(UvmPageTableTest, FirstTouchFaultsRepeatTouchHits) {
  detail::UvmPageTable pages(4, 4096);
  EXPECT_TRUE(pages.touch(0, 100, false).fault);
  EXPECT_FALSE(pages.touch(0, 200, false).fault);   // same page
  EXPECT_TRUE(pages.touch(0, 5000, false).fault);   // next page
  EXPECT_EQ(pages.faults(), 2u);
}

TEST(UvmPageTableTest, LruEvictsAndFlagsDirtyWriteback) {
  detail::UvmPageTable pages(2, 4096);
  pages.touch(0, 0, true);            // page 0, dirty
  pages.touch(0, 4096, false);        // page 1
  const auto touch = pages.touch(0, 8192, false);  // evicts dirty page 0
  EXPECT_TRUE(touch.fault);
  EXPECT_TRUE(touch.writeback);
  EXPECT_EQ(pages.writebacks(), 1u);
  // Page 0 must fault again.
  EXPECT_TRUE(pages.touch(0, 0, false).fault);
}

TEST(UvmPageTableTest, TouchRefreshesLruPosition) {
  detail::UvmPageTable pages(2, 4096);
  pages.touch(0, 0, false);
  pages.touch(0, 4096, false);
  pages.touch(0, 0, false);           // page 0 becomes MRU
  pages.touch(0, 8192, false);        // evicts page 1
  EXPECT_FALSE(pages.touch(0, 0, false).fault);
  EXPECT_TRUE(pages.touch(0, 4096, false).fault);
}

TEST(UvmPageTableTest, StreamsDoNotAlias) {
  detail::UvmPageTable pages(8, 4096);
  EXPECT_TRUE(pages.touch(0, 0, false).fault);
  EXPECT_TRUE(pages.touch(1, 0, false).fault);
  EXPECT_FALSE(pages.touch(0, 0, false).fault);
}

TEST(UvmPageTableTest, DirtyResidentCountsUnflushedPages) {
  detail::UvmPageTable pages(8, 4096);
  pages.touch(0, 0, true);
  pages.touch(0, 4096, false);
  pages.touch(0, 8192, true);
  EXPECT_EQ(pages.dirty_resident(), 2u);
}

TEST(UvmSchemeTest, ProducesReferenceResults) {
  apps::KmeansApp app({.data_bytes = 1 << 21, .seed = 301});
  const SchemeConfig sc = tiny_scheme_config();
  (void)run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  const RunMetrics metrics = run_gpu_uvm(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
  EXPECT_EQ(metrics.kernel_launches, 1u);  // same single-launch model
  EXPECT_GT(metrics.total_time, 0u);
}

TEST(UvmSchemeTest, MigratesWholePagesNotElements) {
  // Netflix reads 30% of each record, but those reads touch every 4 KiB
  // page: UVM must move ~the whole dataset while BigKernel moves ~30%.
  apps::NetflixApp app({.data_bytes = 1 << 21, .seed = 302});
  const SchemeConfig sc = tiny_scheme_config();
  const RunMetrics uvm = run_gpu_uvm(tiny_config(), app, sc);
  const RunMetrics big = run_bigkernel(tiny_config(), app, sc);
  EXPECT_GT(uvm.h2d_bytes, (1u << 21) * 9 / 10);  // ~everything migrated
  EXPECT_LT(big.h2d_bytes, uvm.h2d_bytes / 2);
}

TEST(UvmSchemeTest, BigKernelOutperformsDemandPagingOnStreams) {
  apps::NetflixApp app({.data_bytes = 1 << 21, .seed = 303});
  const SchemeConfig sc = tiny_scheme_config();
  const RunMetrics uvm = run_gpu_uvm(tiny_config(), app, sc);
  const RunMetrics big = run_bigkernel(tiny_config(), app, sc);
  EXPECT_LT(big.total_time, uvm.total_time);
}

TEST(UvmSchemeTest, WriteBackFlushesDirtyPages) {
  apps::KmeansApp app({.data_bytes = 1 << 20, .seed = 304});
  const SchemeConfig sc = tiny_scheme_config();
  const RunMetrics metrics = run_gpu_uvm(tiny_config(), app, sc);
  // K-means dirties every record's page; d2h must carry them back (plus
  // table downloads).
  EXPECT_GT(metrics.d2h_bytes, (1u << 20) / 2);
}

TEST(UvmSchemeTest, TextScanWorksUnderPaging) {
  apps::WordCountApp app({.data_bytes = 1 << 20, .seed = 305});
  const SchemeConfig sc = tiny_scheme_config();
  (void)run_cpu_serial(tiny_config(), app, sc);
  const std::uint64_t reference = app.result_digest();
  (void)run_gpu_uvm(tiny_config(), app, sc);
  EXPECT_EQ(app.result_digest(), reference);
}

}  // namespace
}  // namespace bigk::schemes
