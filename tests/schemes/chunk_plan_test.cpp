// Unit tests for the chunked-GPU baseline planning helpers.
#include <gtest/gtest.h>

#include "schemes/runners.hpp"

namespace bigk::schemes {
namespace {

gpusim::SystemConfig config_with_mem(std::uint64_t bytes) {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = bytes;
  return config;
}

StreamDecl make_decl(std::vector<std::uint64_t>& storage,
                     std::uint32_t elems_per_record,
                     std::uint32_t overfetch = 0) {
  StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(storage.data());
  decl.binding.num_elements = storage.size();
  decl.binding.elem_size = 8;
  decl.binding.elems_per_record = elems_per_record;
  decl.binding.reads_per_record = elems_per_record;
  decl.overfetch_elems = overfetch;
  return decl;
}

TEST(ChunkPlanTest, ChunksCoverAllRecordsExactly) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, config_with_mem(1 << 20));
  std::vector<std::uint64_t> data(100'000 * 4);
  std::vector<StreamDecl> decls{make_decl(data, 4)};
  const auto plan = detail::plan_chunks(runtime, decls, 100'000, 1, 80);
  EXPECT_GT(plan.num_chunks, 1u);  // 3.2 MB of records vs ~0.8 MB budget
  EXPECT_GE(plan.records_per_chunk * plan.num_chunks, 100'000u);
  EXPECT_LT(plan.records_per_chunk * (plan.num_chunks - 1), 100'000u);
}

TEST(ChunkPlanTest, DoubleBufferingHalvesChunkSize) {
  sim::Simulation sim_a;
  cusim::Runtime runtime_a(sim_a, config_with_mem(1 << 20));
  std::vector<std::uint64_t> data(100'000 * 4);
  std::vector<StreamDecl> decls{make_decl(data, 4)};
  const auto single = detail::plan_chunks(runtime_a, decls, 100'000, 1, 80);

  sim::Simulation sim_b;
  cusim::Runtime runtime_b(sim_b, config_with_mem(1 << 20));
  const auto dbl = detail::plan_chunks(runtime_b, decls, 100'000, 2, 80);
  EXPECT_NEAR(static_cast<double>(dbl.records_per_chunk),
              static_cast<double>(single.records_per_chunk) / 2.0,
              static_cast<double>(single.records_per_chunk) * 0.05);
  EXPECT_EQ(dbl.dev_base.size(), 2u);  // two buffer sets
}

TEST(ChunkPlanTest, SmallDataFitsOneChunk) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, config_with_mem(8 << 20));
  std::vector<std::uint64_t> data(1000 * 4);
  std::vector<StreamDecl> decls{make_decl(data, 4)};
  const auto plan = detail::plan_chunks(runtime, decls, 1000, 1, 80);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_EQ(plan.records_per_chunk, 1000u);
}

TEST(ChunkPlanTest, CapacityIncludesOverfetch) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, config_with_mem(1 << 20));
  std::vector<std::uint64_t> data(100'000);
  std::vector<StreamDecl> decls{make_decl(data, 1, /*overfetch=*/64)};
  const auto plan = detail::plan_chunks(runtime, decls, 100'000, 1, 80);
  EXPECT_EQ(plan.capacity_elems[0], plan.records_per_chunk + 64);
}

TEST(ChunkPlanTest, ImpossibleBudgetThrows) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, config_with_mem(4 << 10));  // 4 KiB device
  std::vector<std::uint64_t> data(1024);
  std::vector<StreamDecl> decls{make_decl(data, 1, /*overfetch=*/4096)};
  EXPECT_THROW(detail::plan_chunks(runtime, decls, 1024, 1, 80),
               std::invalid_argument);
}

TEST(ChunkViewsTest, ViewsTrackChunkBoundsAndClampAtStreamEnd) {
  sim::Simulation sim;
  cusim::Runtime runtime(sim, config_with_mem(1 << 20));
  std::vector<std::uint64_t> data(10'000 * 4);
  std::vector<StreamDecl> decls{make_decl(data, 4)};
  auto bindings = detail::make_bindings(decls);
  auto plan = detail::plan_chunks(runtime, decls, 10'000, 1, 10);

  std::vector<GpuChunkCtx::ChunkView> views;
  const auto bytes0 =
      detail::chunk_views(bindings, plan, 0, 0, 10'000, &views);
  EXPECT_EQ(views[0].elem_begin, 0u);
  EXPECT_EQ(bytes0[0], views[0].elem_count * 8);

  const std::uint64_t last = plan.num_chunks - 1;
  detail::chunk_views(bindings, plan, 0, last, 10'000, &views);
  EXPECT_LE(views[0].elem_begin + views[0].elem_count, data.size());
}

TEST(MakeBindingsTest, AssignsSequentialRegions) {
  std::vector<std::uint64_t> a(16), b(16);
  std::vector<StreamDecl> decls{make_decl(a, 4), make_decl(b, 2)};
  const auto bindings = detail::make_bindings(decls);
  EXPECT_EQ(bindings[0].host_region, core::kStreamRegionBase);
  EXPECT_EQ(bindings[1].host_region, core::kStreamRegionBase + 1);
}

}  // namespace
}  // namespace bigk::schemes
