// Acceptance guard for the bigkcheck layer: every execution scheme must run
// a real (atomics + read-modify-write) workload with zero violations under
// full checking, and the runners must surface the count in RunMetrics.
#include "schemes/runners.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "check/options.hpp"
#include "check/sanitizer.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/device_pool.hpp"
#include "schemes/metrics.hpp"
#include "schemes/uvm.hpp"
#include "sim/simulation.hpp"

namespace bigk::schemes {
namespace {

// Same shape as runners_test's toy: records of 4 uint64 [a, b, pad, out];
// out = a * 2 + b, plus an atomic checksum table.
struct ToyApp {
  static constexpr std::uint32_t kElemsPerRecord = 4;
  std::uint64_t records;
  std::vector<std::uint64_t> data;
  core::TableSet table_set;
  core::TableRef<std::uint64_t> checksum;

  explicit ToyApp(std::uint64_t n) : records(n) {
    data.resize(records * kElemsPerRecord);
    checksum = table_set.add<std::uint64_t>(1);
    reset();
  }

  void reset() {
    for (std::uint64_t r = 0; r < records; ++r) {
      data[r * 4] = r * 7 + 1;
      data[r * 4 + 1] = r ^ 0x55;
      data[r * 4 + 2] = 99;
      data[r * 4 + 3] = 0;
    }
    table_set.host_span(checksum)[0] = 0;
  }

  std::uint64_t num_records() const { return records; }
  core::TableSet& tables() { return table_set; }
  bool interleaved_records() const { return true; }

  std::vector<StreamDecl> stream_decls() {
    StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(data.data());
    decl.binding.num_elements = data.size();
    decl.binding.elem_size = 8;
    decl.binding.mode = core::AccessMode::kReadWrite;
    decl.binding.elems_per_record = kElemsPerRecord;
    decl.binding.reads_per_record = 2;
    decl.binding.writes_per_record = 1;
    return {decl};
  }

  struct Kernel {
    core::StreamRef<std::uint64_t> stream{0};
    core::TableRef<std::uint64_t> checksum;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t a = ctx.read(stream, r * 4);
        const std::uint64_t b = ctx.read(stream, r * 4 + 1);
        ctx.alu(8);
        ctx.write(stream, r * 4 + 3, a * 2 + b);
        ctx.atomic_add_table(checksum, 0, a + b);
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, checksum}; }
};

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

SchemeConfig checked_scheme_config() {
  SchemeConfig sc;
  sc.gpu_blocks = 8;
  sc.gpu_threads_per_block = 128;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 64;
  sc.check = check::CheckOptions::all_enabled();
  return sc;
}

void expect_results(const ToyApp& app) {
  for (std::uint64_t r = 0; r < app.records; ++r) {
    const std::uint64_t a = r * 7 + 1;
    const std::uint64_t b = r ^ 0x55;
    ASSERT_EQ(app.data[r * 4 + 3], a * 2 + b) << "record " << r;
  }
}

class CheckedSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(CheckedSchemes, RunsCleanUnderAllCheckers) {
  ToyApp app(30'000);
  const RunMetrics metrics =
      run_scheme(GetParam(), small_config(), app, checked_scheme_config());
  EXPECT_EQ(metrics.check_violations, 0u);
  expect_results(app);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CheckedSchemes,
    ::testing::Values(Scheme::kGpuSingleBuffer, Scheme::kGpuDoubleBuffer,
                      Scheme::kBigKernel),
    [](const auto& info) {
      switch (info.param) {
        case Scheme::kGpuSingleBuffer: return "GpuSingle";
        case Scheme::kGpuDoubleBuffer: return "GpuDouble";
        case Scheme::kBigKernel: return "BigKernel";
        default: return "Unknown";
      }
    });

TEST(CheckedSchemesTest, ConcurrentEnginesOnDevicePoolRunClean) {
  // Two engines running simultaneously against distinct devices of one
  // pool, each under its own fully enabled sanitizer: the per-engine state
  // separation must hold up (no cross-device false positives), and both
  // workloads must still compute correct results.
  sim::Simulation sim;
  cusim::DevicePool pool(sim, small_config(), 2);

  std::vector<ToyApp> apps;
  apps.emplace_back(12'000);
  apps.emplace_back(9'000);
  std::vector<std::unique_ptr<check::Sanitizer>> sanitizers;
  for (std::uint32_t d = 0; d < 2; ++d) {
    sanitizers.push_back(std::make_unique<check::Sanitizer>(
        check::CheckOptions::all_enabled(), nullptr));
    sanitizers[d]->install(pool.device(d).gpu());
  }

  const auto run_one = [](cusim::Runtime& runtime, ToyApp& app,
                          check::Sanitizer& sanitizer) -> sim::Task<> {
    core::Options options;
    options.num_blocks = 4;
    options.compute_threads_per_block = 64;
    core::Engine engine(runtime, options);
    engine.set_trace_scope(runtime.trace_prefix());
    engine.set_sanitizer(&sanitizer);
    for (const StreamDecl& decl : app.stream_decls()) {
      engine.map_stream(decl.binding, decl.overfetch_elems);
    }
    core::DeviceTables tables =
        co_await core::DeviceTables::upload(runtime, app.tables());
    co_await engine.launch(app.kernel(), app.num_records(), tables);
    co_await tables.download();
    tables.release();
  };
  sim::Process first =
      sim.spawn(run_one(pool.device(0), apps[0], *sanitizers[0]));
  sim::Process second =
      sim.spawn(run_one(pool.device(1), apps[1], *sanitizers[1]));
  sim.run_until_complete([](sim::Process& a, sim::Process& b) -> sim::Task<> {
    co_await a.join();
    co_await b.join();
  }(first, second));

  for (std::uint32_t d = 0; d < 2; ++d) {
    sanitizers[d]->uninstall();
    sanitizers[d]->finalize();  // throws on any violation
    EXPECT_EQ(sanitizers[d]->reporter().total(), 0u);
  }
  for (const ToyApp& app : apps) expect_results(app);
}

TEST(CheckedSchemesTest, UvmRunsCleanUnderAllCheckers) {
  // UVM traces accesses at synthetic addresses (kFlagSynthetic): the race
  // detector must not fire on them, and its table atomics are exempt.
  ToyApp app(30'000);
  const RunMetrics metrics =
      run_gpu_uvm(small_config(), app, checked_scheme_config());
  EXPECT_EQ(metrics.check_violations, 0u);
  expect_results(app);
}

}  // namespace
}  // namespace bigk::schemes
