// bigkstatic end-to-end verifier tests: every registered benchmark app must
// pass every contract (with the statically derived stride cycle confirmed by
// the online core::PatternDetector), and every seeded violator kernel must be
// caught by exactly the check it targets, with its call-site named.
#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "verify/contracts.hpp"
#include "verify/violators.hpp"

namespace bigk::verify {
namespace {

const KernelReport& verdict_for(const std::vector<apps::BenchApp>& suite,
                                const std::string& name) {
  for (const auto& entry : suite) {
    if (entry.name == name) return apps::static_verdict(entry);
  }
  ADD_FAILURE() << "app not registered: " << name;
  static const KernelReport kEmpty;
  return kEmpty;
}

std::vector<std::int64_t> read_cycle(const KernelReport& report,
                                     std::uint32_t stream) {
  for (const auto& s : report.streams) {
    if (s.stream == stream) return s.read_strides;
  }
  return {};
}

TEST(Verifier, AllRegisteredAppsPassEveryContract) {
  const apps::ScaledSystem scaled;
  const auto suite = apps::benchmark_apps(scaled);
  ASSERT_FALSE(suite.empty());
  for (const auto& entry : suite) {
    const KernelReport& report = apps::static_verdict(entry);
    EXPECT_TRUE(report.passed) << entry.name << ": "
                               << (report.violations.empty()
                                       ? std::string("(no violations)")
                                       : violation_line(report.violations[0]));
    EXPECT_EQ(report.app, entry.name);
    // Pattern-applicable apps (Table II) must derive an affine read pattern;
    // the index-driven variant must be flagged non-affine, not mis-fit.
    EXPECT_EQ(report.affine_reads, entry.pattern_applicable) << entry.name;
    if (report.passed) {
      EXPECT_NE(report.pattern_signature, 0u) << entry.name;
    }
  }
}

TEST(Verifier, StaticCycleMatchesOnlineDetectorForPatterningApps) {
  const apps::ScaledSystem scaled;
  const auto suite = apps::benchmark_apps(scaled);
  for (const auto& entry : suite) {
    if (!entry.pattern_applicable) continue;
    const KernelReport& report = verdict_for(suite, entry.name);
    ASSERT_TRUE(report.passed) << entry.name;
    for (const auto& stream : report.streams) {
      if (!stream.has_reads) continue;
      EXPECT_TRUE(stream.affine) << entry.name << " stream " << stream.stream;
      // The cross-validation itself: PatternDetector, fed the statically
      // derived addresses, locked onto the same stride cycle.
      EXPECT_TRUE(stream.detector_confirmed)
          << entry.name << " stream " << stream.stream;
      EXPECT_FALSE(stream.read_strides.empty())
          << entry.name << " stream " << stream.stream;
    }
  }
}

TEST(Verifier, DerivedCyclesMatchTheKernelsAccessShapes) {
  const apps::ScaledSystem scaled;
  const auto suite = apps::benchmark_apps(scaled);
  // K-means: 4 doubles read per record then skip the written element.
  EXPECT_EQ(read_cycle(verdict_for(suite, "K-means"), 0),
            (std::vector<std::int64_t>{8, 8, 8, 40}));
  // Word Count / MasterCard: byte-at-a-time scans.
  EXPECT_EQ(read_cycle(verdict_for(suite, "Word Count"), 0),
            (std::vector<std::int64_t>{1}));
  EXPECT_EQ(read_cycle(verdict_for(suite, "MasterCard Affinity"), 0),
            (std::vector<std::int64_t>{1}));
  // Netflix: two u64 header reads then the stride to the next record.
  EXPECT_EQ(read_cycle(verdict_for(suite, "Netflix"), 0),
            (std::vector<std::int64_t>{8, 8, 64}));
  // DNA: 3 u64 reads then skip to the next record.
  EXPECT_EQ(read_cycle(verdict_for(suite, "DNA Assembly"), 0),
            (std::vector<std::int64_t>{8, 8, 8, 64}));
  // Indexed MasterCard gathers via an address table: no affine read fit.
  const KernelReport& indexed =
      verdict_for(suite, "MasterCard Affinity (indexed)");
  EXPECT_TRUE(indexed.passed);
  EXPECT_FALSE(indexed.affine_reads);
}

TEST(Verifier, VerdictIsMemoizedPerEntry) {
  const apps::ScaledSystem scaled;
  const auto suite = apps::benchmark_apps(scaled);
  const KernelReport& a = apps::static_verdict(suite.front());
  const KernelReport& b = apps::static_verdict(suite.front());
  EXPECT_EQ(&a, &b);
}

TEST(Verifier, UnverifiedEntryFailsClosed) {
  apps::BenchApp entry;
  entry.name = "no-verifier";
  const KernelReport& report = apps::static_verdict(entry);
  EXPECT_FALSE(report.passed);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].kind, "unverified");
}

TEST(Verifier, EveryViolatorIsCaughtByItsTargetCheck) {
  for (const auto& violator : violator_cases()) {
    const KernelReport report = violator.verify();
    SCOPED_TRACE(violator.name);
    EXPECT_FALSE(report.passed);
    // The check this violator was built to trip must have failed...
    EXPECT_FALSE(report.checks.passed(violator.expected))
        << "expected " << check_name(violator.expected) << " to fail";
    // ...and at least one of its violations must name a call-site inside the
    // violator kernels themselves (exact file:line provenance).
    bool sited = false;
    for (const auto& violation : report.violations) {
      if (violation.check != violator.expected) continue;
      if (violation.site.known() &&
          violation.site.file.find("violators.hpp") != std::string::npos) {
        sited = true;
      }
    }
    EXPECT_TRUE(sited) << "no violation of "
                       << check_name(violator.expected)
                       << " carries a violators.hpp call-site";
    // A failed kernel never gets a cacheable pattern signature.
    EXPECT_EQ(report.pattern_signature, 0u);
  }
}

TEST(Verifier, ViolatorSuiteCoversEveryContract) {
  bool seen[5] = {};
  for (const auto& violator : violator_cases()) {
    seen[static_cast<std::size_t>(violator.expected)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Verifier, StreamingViolationNamesValueOrigin) {
  // The gather violator routes a stream value into a read address; the
  // report must name both the offending read and where the value came from.
  for (const auto& violator : violator_cases()) {
    if (violator.expected != Check::kStreamingRestriction) continue;
    const KernelReport report = violator.verify();
    bool origin_named = false;
    for (const auto& violation : report.violations) {
      if (violation.check != Check::kStreamingRestriction) continue;
      if (violation.origin.known() && violation.site.known() &&
          violation.origin.line != violation.site.line) {
        origin_named = true;
      }
    }
    EXPECT_TRUE(origin_named) << violator.name;
  }
}

TEST(Verifier, ReportJsonIsWellFormedAndSchemaStable) {
  const apps::ScaledSystem scaled;
  const auto suite = apps::benchmark_apps(scaled);
  const KernelReport& report = verdict_for(suite, "K-means");
  const std::string json = report_json(report);
  for (const char* key :
       {"\"app\":", "\"passed\":", "\"pattern_signature\":",
        "\"affine_reads\":", "\"checks\":", "\"streaming_restriction\":",
        "\"addr_gen_purity\":", "\"phase_agreement\":", "\"alias_overlap\":",
        "\"pattern_consistency\":", "\"streams\":", "\"violations\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace bigk::verify
