// bigkstatic affine-domain unit tests: exact offline stride-cycle fitting
// and its agreement with the online core::PatternDetector.
#include "verify/affine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bigk::verify {
namespace {

std::vector<std::uint64_t> from_cycle(std::uint64_t base,
                                      const std::vector<std::int64_t>& cycle,
                                      std::size_t n) {
  std::vector<std::uint64_t> addrs{base};
  while (addrs.size() < n) {
    base += static_cast<std::uint64_t>(cycle[(addrs.size() - 1) % cycle.size()]);
    addrs.push_back(base);
  }
  return addrs;
}

TEST(Affine, FitsConstantStride) {
  const auto addrs = from_cycle(1000, {8}, 16);
  const auto fit = fit_stride_cycle(addrs, 32);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->base, 1000u);
  EXPECT_EQ(fit->strides, (std::vector<std::int64_t>{8}));
}

TEST(Affine, FitsMultiStrideCycleIncludingNegative) {
  const std::vector<std::int64_t> cycle{8, -24, 80};
  const auto addrs = from_cycle(4096, cycle, 30);
  const auto fit = fit_stride_cycle(addrs, 32);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->strides, cycle);
}

TEST(Affine, RejectsIrregularAndTooShort) {
  EXPECT_FALSE(fit_stride_cycle(std::vector<std::uint64_t>{0, 8}, 32));
  // Irregular: no cycle up to max explains every delta.
  const std::vector<std::uint64_t> irregular{0, 8, 16, 17, 40, 41, 99, 100,
                                             130, 170, 171, 205};
  EXPECT_FALSE(fit_stride_cycle(irregular, 4));
  // A cycle exists but is longer than max_cycle: must refuse, not truncate.
  const auto addrs = from_cycle(0, {1, 2, 3, 4, 5}, 40);
  EXPECT_FALSE(fit_stride_cycle(addrs, 4));
  EXPECT_TRUE(fit_stride_cycle(addrs, 5));
}

TEST(Affine, RequiresTwoFullCycleObservations) {
  const std::vector<std::int64_t> cycle{8, 8, 48};
  // 2*cycle+1 = 7 addresses minimum, mirroring the online hypothesis rule.
  EXPECT_FALSE(fit_stride_cycle(from_cycle(0, cycle, 6), 8));
  EXPECT_TRUE(fit_stride_cycle(from_cycle(0, cycle, 7), 8));
}

TEST(Affine, DetectorConfirmsWhatTheFitDerives) {
  const std::vector<std::int64_t> cycle{8, 8, 8, 40};
  const auto addrs = from_cycle(0, cycle, 96);
  const auto fit = fit_stride_cycle(addrs, 32);
  const auto online = detector_pattern(addrs, 48, 32);
  ASSERT_TRUE(fit.has_value());
  ASSERT_TRUE(online.has_value());
  EXPECT_TRUE(same_cycle(fit->strides, online->strides));
}

TEST(Affine, DetectorBreaksOnIrregularWhereFitAlsoFails) {
  std::vector<std::uint64_t> addrs;
  std::uint64_t state = 12345;
  std::uint64_t addr = 0;
  for (int i = 0; i < 64; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    addr += 1 + (state >> 59);
    addrs.push_back(addr * 8);
  }
  EXPECT_FALSE(fit_stride_cycle(addrs, 8));
  EXPECT_FALSE(detector_pattern(addrs, 16, 8));
}

TEST(Affine, SameCycleIsExactSequenceEquality) {
  EXPECT_TRUE(same_cycle({8, 8}, {8, 8}));
  EXPECT_FALSE(same_cycle({8, 8}, {8}));
  EXPECT_FALSE(same_cycle({8, 16}, {16, 8}));
}

}  // namespace
}  // namespace bigk::verify
