// bigkstatic taint-domain unit tests: lattice joins, provenance, the branch
// oracle, and the ADL seams (value_cast / fnv1a) kernels reach it through.
#include "verify/taint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/common.hpp"

namespace bigk::verify {
namespace {

TEST(Taint, CleanByDefaultAndJoinsOnArithmetic) {
  Tainted<std::uint64_t> clean = 7;
  EXPECT_EQ(clean.taint, Taint::kClean);

  const Tainted<std::uint64_t> stream(3, Taint::kStream, 11);
  const auto sum = clean + stream;
  EXPECT_EQ(sum.v, 10u);
  EXPECT_TRUE(has_taint(sum.taint, Taint::kStream));
  EXPECT_EQ(sum.origin, 11u);

  // Mixed with plain arithmetic values on either side.
  const auto left = 5 + stream;
  EXPECT_EQ(left.v, 8u);
  EXPECT_TRUE(has_taint(left.taint, Taint::kStream));
  const auto right = stream * 2;
  EXPECT_EQ(right.v, 6u);
  EXPECT_EQ(right.origin, 11u);
}

TEST(Taint, JoinPrefersStreamOrigin) {
  const Tainted<std::uint64_t> stripped(2, Taint::kStripped, 5);
  const Tainted<std::uint64_t> stream(3, Taint::kStream, 9);
  const auto a = stripped + stream;
  EXPECT_EQ(a.origin, 9u);  // the stream read is what reports should name
  EXPECT_TRUE(has_taint(a.taint, Taint::kStream));
  EXPECT_TRUE(has_taint(a.taint, Taint::kStripped));
  const auto b = stream + stripped;
  EXPECT_EQ(b.origin, 9u);
}

TEST(Taint, CompoundAssignAndComparisons) {
  Tainted<std::uint64_t> hash = 0xCBF29CE484222325ull;
  const Tainted<std::uint8_t> c('x', Taint::kStream, 4);
  hash = (hash ^ c) * 0x100000001B3ull;
  EXPECT_TRUE(has_taint(hash.taint, Taint::kStream));
  EXPECT_EQ(hash.origin, 4u);

  const Tainted<bool> cmp = c >= 'a';
  EXPECT_TRUE(cmp.v);
  EXPECT_TRUE(has_taint(cmp.taint, Taint::kStream));
}

TEST(Taint, ValueCastKeepsTaintAndPlainOverloadCoexists) {
  const Tainted<double> d(2.5, Taint::kStream, 7);
  const auto i = value_cast<std::uint64_t>(d);  // ADL finds verify::value_cast
  EXPECT_EQ(i.v, 2u);
  EXPECT_TRUE(has_taint(i.taint, Taint::kStream));
  EXPECT_EQ(i.origin, 7u);

  using core::value_cast;
  const auto plain = value_cast<std::uint64_t>(2.5);
  EXPECT_EQ(plain, 2u);
}

TEST(Taint, Fnv1aMatchesAppsFoldAndJoins) {
  const std::uint64_t expected = apps::fnv1a(apps::kFnvBasis, 0xDEADBEEFull);
  const Tainted<std::uint64_t> hash(apps::kFnvBasis, Taint::kClean, kNoSite);
  const Tainted<std::uint64_t> value(0xDEADBEEFull, Taint::kStream, 3);
  const auto tainted = fnv1a(hash, value);
  EXPECT_EQ(tainted.v, expected);
  EXPECT_TRUE(has_taint(tainted.taint, Taint::kStream));
  EXPECT_EQ(tainted.origin, 3u);
}

TEST(Taint, BranchOracleConcreteWithoutMonitorAndPerturbedWithin) {
  const Tainted<bool> tainted_true(true, Taint::kStream, 2);
  EXPECT_TRUE(static_cast<bool>(tainted_true));  // no monitor: concrete

  TaintMonitor concrete(1, /*perturb=*/false);
  {
    TaintScope scope(concrete);
    EXPECT_TRUE(static_cast<bool>(tainted_true));
    EXPECT_EQ(concrete.branches().size(), 1u);
    EXPECT_EQ(concrete.branches()[0].origin, 2u);
    EXPECT_TRUE(concrete.branches()[0].outcome);
  }

  // Perturbed monitors flip some outcomes: over many trials both outcomes
  // must occur even though the concrete value is always true.
  TaintMonitor perturbed(42, /*perturb=*/true);
  int trues = 0;
  {
    TaintScope scope(perturbed);
    for (int i = 0; i < 64; ++i) {
      if (static_cast<bool>(tainted_true)) ++trues;
    }
  }
  EXPECT_GT(trues, 0);
  EXPECT_LT(trues, 64);
  EXPECT_EQ(perturbed.branches().size(), 64u);

  // Clean values never consult the oracle.
  TaintMonitor watcher(7, true);
  {
    TaintScope scope(watcher);
    const Tainted<bool> clean(true);
    EXPECT_TRUE(static_cast<bool>(clean));
  }
  EXPECT_TRUE(watcher.branches().empty());
}

TEST(Taint, MonitorInternsSitesByFileAndLine) {
  TaintMonitor monitor(0, false);
  const auto here = std::source_location::current();
  const SiteId a = monitor.intern(here);
  const SiteId b = monitor.intern(here);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kNoSite);
  EXPECT_EQ(monitor.site(a).line, here.line());
  const SiteId c = monitor.intern(std::source_location::current());
  EXPECT_NE(c, a);
}

}  // namespace
}  // namespace bigk::verify
