// bigkstatic admission gate: the serving layer refuses jobs for apps whose
// kernels fail (or never ran) static verification, names the violation in
// the error, and threads the verified pattern signature into the engine's
// chunk-cache keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"
#include "verify/contracts.hpp"
#include "verify/violators.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

ServerConfig gate_server() {
  ServerConfig config;
  config.system = toy_system();
  config.devices = 1;
  config.queue_depth = 8;
  config.engine = toy_engine_options();
  return config;
}

std::vector<JobSpec> jobs_for(const std::string& app, std::uint32_t count) {
  WorkloadConfig workload;
  workload.num_jobs = count;
  workload.seed = 3;
  return make_workload({app}, workload);
}

TEST(ServeGateTest, VerifiedToySuiteIsAdmitted) {
  const auto suite = make_toy_suite(1, 2'000);
  ServerConfig config = gate_server();
  ASSERT_TRUE(config.require_verified);  // the gate is on by default
  const ServeReport report = run_server(config, jobs_for("toy0", 2), suite);
  EXPECT_EQ(report.completed, 2u);
  // The gate also published the verdict through the suite entry.
  ASSERT_NE(suite[0].verdict, nullptr);
  EXPECT_TRUE(suite[0].verdict->passed);
  EXPECT_NE(suite[0].verdict->pattern_signature, 0u);
}

TEST(ServeGateTest, UnverifiedAppIsRefusedWithClearError) {
  auto suite = make_toy_suite(1, 2'000);
  suite[0].verify = nullptr;  // no registered verifier: fail closed
  suite[0].verdict = nullptr;
  try {
    run_server(gate_server(), jobs_for("toy0", 1), suite);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("toy0"), std::string::npos) << what;
    EXPECT_NE(what.find("refused admission"), std::string::npos) << what;
  }
}

TEST(ServeGateTest, ContractViolatorIsRefusedNamingTheViolation) {
  auto suite = make_toy_suite(1, 2'000);
  // Swap in a verifier that reports the seeded gather violator's verdict:
  // a real streaming-restriction violation with a violators.hpp call-site.
  suite[0].verify = [] {
    for (const auto& violator : verify::violator_cases()) {
      if (violator.expected == verify::Check::kStreamingRestriction) {
        verify::KernelReport report = violator.verify();
        report.app = "toy0";
        return report;
      }
    }
    throw std::logic_error("no streaming violator registered");
  };
  suite[0].verdict = nullptr;
  try {
    run_server(gate_server(), jobs_for("toy0", 1), suite);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refused admission"), std::string::npos) << what;
    EXPECT_NE(what.find("streaming_restriction"), std::string::npos) << what;
    EXPECT_NE(what.find("violators.hpp"), std::string::npos) << what;
  }
}

TEST(ServeGateTest, GateCanBeDisabledForNonConformingExperiments) {
  auto suite = make_toy_suite(1, 2'000);
  suite[0].verify = nullptr;  // would be refused with the gate on
  suite[0].verdict = nullptr;
  ServerConfig config = gate_server();
  config.require_verified = false;
  const ServeReport report = run_server(config, jobs_for("toy0", 2), suite);
  EXPECT_EQ(report.completed, 2u);
}

TEST(ServeGateTest, VerifiedSignatureFlowsIntoCacheKeys) {
  // Same workload twice: with the gate on, chunk-cache keys carry the static
  // pattern signature; repeat jobs must still hit (the signature is stable),
  // proving the signature is mixed in consistently rather than poisoning
  // reuse.
  const auto suite = make_toy_suite(1, 2'000);
  ServerConfig config = gate_server();
  config.cache_enabled = true;
  const auto specs = jobs_for("toy0", 4);
  const ServeReport gated = run_server(config, specs, suite);
  EXPECT_EQ(gated.completed, 4u);
  EXPECT_GT(gated.cache_hits, 0u);

  // And the run is deterministic under the gate.
  const ServeReport again = run_server(config, specs, suite);
  EXPECT_EQ(again.cache_hits, gated.cache_hits);
  EXPECT_EQ(again.makespan, gated.makespan);
}

}  // namespace
}  // namespace bigk::serve
