// Tests for the simulated device arena and its free-list allocator.
#include "gpusim/device_memory.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bigk::gpusim {
namespace {

TEST(DeviceMemoryTest, AllocationsAreAlignedAndDisjoint) {
  DeviceMemory mem(1 << 20);
  auto a = mem.allocate<double>(10);
  auto b = mem.allocate<double>(10);
  EXPECT_EQ(a.byte_offset % 256, 0u);
  EXPECT_EQ(b.byte_offset % 256, 0u);
  EXPECT_NE(a.byte_offset, b.byte_offset);
}

TEST(DeviceMemoryTest, ReadsBackWrites) {
  DeviceMemory mem(1 << 16);
  auto p = mem.allocate<std::uint64_t>(100);
  for (std::uint64_t i = 0; i < 100; ++i) mem.write(p, i, i * i);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(mem.read(p, i), i * i);
}

TEST(DeviceMemoryTest, ExhaustionThrows) {
  DeviceMemory mem(4096);
  (void)mem.allocate<std::byte>(4096);
  EXPECT_THROW(mem.allocate<std::byte>(1), OutOfDeviceMemory);
}

TEST(DeviceMemoryTest, FreeMakesSpaceReusable) {
  DeviceMemory mem(4096);
  auto a = mem.allocate<std::byte>(4096);
  mem.free(a);
  EXPECT_EQ(mem.used(), 0u);
  auto b = mem.allocate<std::byte>(4096);
  EXPECT_EQ(b.byte_offset, a.byte_offset);
}

TEST(DeviceMemoryTest, FreeCoalescesNeighbors) {
  DeviceMemory mem(3 * 1024);
  auto a = mem.allocate<std::byte>(1024);
  auto b = mem.allocate<std::byte>(1024);
  auto c = mem.allocate<std::byte>(1024);
  mem.free(a);
  mem.free(c);
  mem.free(b);  // middle free must merge all three
  auto all = mem.allocate<std::byte>(3 * 1024);
  EXPECT_EQ(all.byte_offset, 0u);
}

TEST(DeviceMemoryTest, DoubleFreeThrows) {
  DeviceMemory mem(4096);
  auto a = mem.allocate<std::byte>(128);
  mem.free(a);
  EXPECT_THROW(mem.free(a), std::invalid_argument);
}

TEST(DeviceMemoryTest, OutOfBoundsAccessThrows) {
  DeviceMemory mem(4096);
  auto p = mem.allocate<std::uint32_t>(4);
  EXPECT_THROW(mem.read(DevicePtr<std::uint32_t>{4096}, 0), std::out_of_range);
  EXPECT_NO_THROW(mem.read(p, 3));
}

TEST(DeviceMemoryTest, UsedTracksLiveBytes) {
  DeviceMemory mem(1 << 16);
  EXPECT_EQ(mem.used(), 0u);
  auto a = mem.allocate<std::byte>(300);  // rounds to 512
  EXPECT_EQ(mem.used(), 512u);
  mem.free(a);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceMemoryTest, PointerArithmeticMatchesElementAddress) {
  DevicePtr<double> p{1024};
  EXPECT_EQ((p + 3).byte_offset, 1024 + 3 * sizeof(double));
  EXPECT_EQ(p.element_address(5), 1024 + 5 * sizeof(double));
  auto q = p.cast<std::uint8_t>();
  EXPECT_EQ(q.byte_offset, 1024u);
}

TEST(DeviceMemoryTest, NullPointerArithmeticThrowsInsteadOfWrapping) {
  // kNull is ~0: adding to it used to wrap around to a small valid-looking
  // address. It must throw.
  DevicePtr<std::uint64_t> null;
  EXPECT_TRUE(null.is_null());
  EXPECT_THROW((void)(null + 1), std::logic_error);
  EXPECT_THROW((void)null.element_address(0), std::logic_error);
}

TEST(DeviceMemoryTest, PointerArithmeticPastAddressSpaceThrows) {
  DevicePtr<std::uint64_t> p{1024};
  EXPECT_THROW((void)(p + (~std::uint64_t{0} / 8)), std::overflow_error);
  // Zero elements is always fine, even near the top of the address space.
  DevicePtr<std::uint64_t> high{DevicePtr<std::uint64_t>::kNull - 8};
  EXPECT_EQ(high.element_address(0), high.byte_offset);
}

TEST(DeviceMemoryTest, DoubleFreeThrowsTheSpecificType) {
  DeviceMemory mem(4096);
  auto a = mem.allocate<std::byte>(128);
  mem.free(a);
  EXPECT_THROW(mem.free(a), DoubleFree);
}

TEST(DeviceMemoryTest, InteriorFreeThrowsInvalidFreeNamingTheBase) {
  DeviceMemory mem(4096);
  auto a = mem.allocate<std::uint64_t>(64);
  try {
    mem.free_offset(a.byte_offset + 8);
    FAIL() << "interior free must throw";
  } catch (const InvalidFree& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("interior of the live allocation at base " +
                        std::to_string(a.byte_offset)),
              std::string::npos)
        << what;
  }
  // The allocation is still intact and freeable.
  EXPECT_NO_THROW(mem.free(a));
}

TEST(DeviceMemoryTest, FailedFreeDoesNotCorruptTheFreeList) {
  // Regression for the double-free path: after rejecting bad frees, the free
  // list must still coalesce back to one arena-sized block.
  DeviceMemory mem(3 * 1024);
  auto a = mem.allocate<std::byte>(1024);
  auto b = mem.allocate<std::byte>(1024);
  auto c = mem.allocate<std::byte>(1024);
  mem.free(a);
  mem.free(c);
  EXPECT_THROW(mem.free(a), DoubleFree);                       // freed space
  EXPECT_THROW(mem.free_offset(b.byte_offset + 100), InvalidFree);  // interior
  mem.free(b);
  auto all = mem.allocate<std::byte>(3 * 1024);
  EXPECT_EQ(all.byte_offset, 0u);
}

TEST(DeviceMemoryTest, RawByteViewsAreBoundsChecked) {
  DeviceMemory mem(4096);
  EXPECT_NO_THROW(mem.bytes(0, 4096));
  EXPECT_THROW(mem.bytes(1, 4096), std::out_of_range);
}

TEST(DeviceMemoryTest, ManyAllocFreeCyclesDoNotFragmentForever) {
  DeviceMemory mem(1 << 20);
  std::vector<DevicePtr<std::byte>> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      live.push_back(mem.allocate<std::byte>(1000 + 37 * i));
    }
    for (auto p : live) mem.free(p);
    live.clear();
  }
  EXPECT_EQ(mem.used(), 0u);
  // After full free, the arena must be one block again.
  EXPECT_NO_THROW(mem.allocate<std::byte>((1 << 20) - 256));
}

}  // namespace
}  // namespace bigk::gpusim
