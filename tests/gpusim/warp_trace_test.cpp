// Tests for the coalescing model: the heart of BigKernel's third claimed
// benefit (assembled data enables coalesced GPU accesses).
#include "gpusim/warp_trace.hpp"

#include <gtest/gtest.h>

#include "gpusim/config.hpp"

namespace bigk::gpusim {
namespace {

GpuConfig test_config() {
  GpuConfig config;
  config.mem_transaction_bytes = 128;
  return config;
}

TEST(WarpTraceTest, PerfectlyCoalescedAccessIsOneTransaction) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(lane * 4, 4);  // 32 lanes x 4B = one 128B segment
  }
  const WarpCost cost = tracer.finish(config);
  EXPECT_EQ(cost.mem_transactions, 1u);
  EXPECT_EQ(cost.mem_bytes, 128u);
}

TEST(WarpTraceTest, StridedAccessSerializesIntoManyTransactions) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(std::uint64_t{lane} * 512, 4);  // 512B stride
  }
  const WarpCost cost = tracer.finish(config);
  EXPECT_EQ(cost.mem_transactions, 32u);  // fully scattered
}

TEST(WarpTraceTest, EightByteElementsCoalesceIntoTwoTransactions) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(lane * 8, 8);  // 256B footprint
  }
  EXPECT_EQ(tracer.finish(config).mem_transactions, 2u);
}

TEST(WarpTraceTest, MultipleStepsAccumulate) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(lane * 4, 4);        // step 0: coalesced
    tracer.record_access(lane * 4 + 4096, 4);  // step 1: coalesced
  }
  EXPECT_EQ(tracer.finish(config).mem_transactions, 2u);
}

TEST(WarpTraceTest, AccessSpanningSegmentsCountsEach) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  tracer.begin_lane(0);
  tracer.record_access(120, 16);  // crosses a 128B boundary
  EXPECT_EQ(tracer.finish(config).mem_transactions, 2u);
}

TEST(WarpTraceTest, AluCyclesAreLockStepMaxOverLanes) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_alu(lane == 7 ? 100.0 : 10.0);
  }
  EXPECT_DOUBLE_EQ(tracer.finish(config).alu_cycles, 100.0);
}

TEST(WarpTraceTest, EachAccessCostsOneIssueCycle) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  tracer.begin_lane(0);
  tracer.record_access(0, 4);
  tracer.record_access(128, 4);
  EXPECT_DOUBLE_EQ(tracer.finish(config).alu_cycles, 2.0);
}

TEST(WarpTraceTest, DivergedLaneCountsAreHandled) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  // Lane 0 makes 3 accesses, others only 1: steps 1-2 have a single active
  // lane each.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(lane * 4, 4);
  }
  tracer.begin_lane(0);
  tracer.record_access(4096, 4);
  tracer.record_access(8192, 4);
  EXPECT_EQ(tracer.finish(config).mem_transactions, 3u);
}

TEST(WarpTraceTest, ResetClearsState) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  tracer.begin_lane(0);
  tracer.record_access(0, 4);
  tracer.reset();
  const WarpCost cost = tracer.finish(config);
  EXPECT_EQ(cost.mem_transactions, 0u);
  EXPECT_DOUBLE_EQ(cost.alu_cycles, 0.0);
}

TEST(WarpTraceTest, SmRequestCostIsMaxOfAluAndMemory) {
  GpuConfig config = test_config();
  config.core_clock_ghz = 1.0;
  config.num_sms = 8;
  config.global_mem_gbps = 192.0;  // 24 GB/s per SM
  config.lanes_per_sm = 192;       // warp parallelism 6

  // Memory-bound: 1000 transactions x 128B = 128000 B at 24 GB/s = 5333 ns;
  // ALU is negligible by comparison.
  WarpCost mem_bound{600.0, 1000, 128'000};
  EXPECT_EQ(sm_request_cost(mem_bound, config),
            sim::transfer_time(128'000, 24.0));

  // Compute-bound: trivial memory, heavy ALU. Issue rate is the SM's warp
  // parallelism derated by issue_efficiency.
  WarpCost alu_bound{60'000.0, 1, 128};
  EXPECT_EQ(sm_request_cost(alu_bound, config),
            sim::cycles_time(60'000.0 / config.warp_parallelism(), 1.0));
}

// Property: the coalesced layout BigKernel produces (thread i's k-th element
// at [k * num_threads + i]) touches only ~bytes-accessed worth of segments,
// while a record-strided layout touches one full transaction segment per
// lane once records exceed the transaction size.
TEST(WarpTraceProperty, InterleavedLayoutBeatsRecordStridedLayout) {
  const GpuConfig config = test_config();
  for (std::uint32_t record_size = 128; record_size <= 1024;
       record_size *= 2) {
    WarpTracer interleaved(32);
    WarpTracer strided(32);
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
      interleaved.begin_lane(lane);
      strided.begin_lane(lane);
      for (std::uint32_t k = 0; k < 4; ++k) {
        interleaved.record_access((k * 32 + lane) * 8, 8);
        strided.record_access(std::uint64_t{lane} * record_size + k * 8, 8);
      }
    }
    const auto a = interleaved.finish(config).mem_transactions;
    const auto b = strided.finish(config).mem_transactions;
    // Interleaved: 4 steps x 32 lanes x 8B = 1 KB packed into 8 segments.
    EXPECT_EQ(a, 8u);
    // Strided: each lane's 4 x 8B sit inside its own record's segment.
    EXPECT_EQ(b, 32u) << "record_size=" << record_size;
    EXPECT_LT(a, b);
  }
}


TEST(WarpTraceTest, IssueTransactionsCountPerStepBeforeReuse) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  // Two steps touching the same coalesced segment: 1 DRAM transaction but
  // 2 issued transactions.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(lane * 4, 4);
    tracer.record_access(lane * 4, 4);
  }
  const WarpCost cost = tracer.finish(config);
  EXPECT_EQ(cost.mem_transactions, 1u);
  EXPECT_EQ(cost.issue_transactions, 2u);
}

TEST(WarpTraceTest, ScatteredStepIssuesOneTransactionPerLane) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    tracer.record_access(std::uint64_t{lane} * 4096, 1);
  }
  EXPECT_EQ(tracer.finish(config).issue_transactions, 32u);
}

TEST(WarpTraceTest, SequentialPerLaneScanReusesSegmentsButIssuesPerStep) {
  // Each lane scans its own 128B region byte by byte: DRAM bytes stay at one
  // segment per lane, but every step issues 32 transactions -- the
  // non-coalesced byte-scan penalty BigKernel's interleaved layout removes.
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    tracer.begin_lane(lane);
    for (std::uint32_t i = 0; i < 128; ++i) {
      tracer.record_access(std::uint64_t{lane} * 128 + i, 1);
    }
  }
  const WarpCost cost = tracer.finish(config);
  EXPECT_EQ(cost.mem_transactions, 32u);          // one segment per lane
  EXPECT_EQ(cost.issue_transactions, 32u * 128);  // but issued every step
}

TEST(WarpTraceTest, AtomicOpsAreCounted) {
  const GpuConfig config = test_config();
  WarpTracer tracer(32);
  tracer.begin_lane(0);
  tracer.record_atomic();
  tracer.record_atomic();
  EXPECT_EQ(tracer.finish(config).atomic_ops, 2u);
  tracer.reset();
  EXPECT_EQ(tracer.finish(config).atomic_ops, 0u);
}

TEST(WarpTraceTest, IssueCostRaisesSmRequestTime) {
  GpuConfig config = test_config();
  config.txn_issue_cycles = 8.0;
  WarpCost coalesced{100.0, 10, 1280, 10, 0};
  WarpCost scattered{100.0, 10, 1280, 320, 0};
  EXPECT_LT(sm_request_cost(coalesced, config),
            sm_request_cost(scattered, config));
}

}  // namespace
}  // namespace bigk::gpusim
