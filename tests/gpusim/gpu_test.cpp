// Tests for the GPU execution engine: occupancy, block scheduling, kernel
// timing, PCIe transfers, and host-flag interaction.
#include "gpusim/gpu.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"

namespace bigk::gpusim {
namespace {

SystemConfig small_config() {
  SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  return config;
}

TEST(OccupancyTest, LimitedByThreadsPerSm) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.threads_per_block = 1024;
  launch.regs_per_thread = 1;
  launch.shared_bytes_per_block = 0;
  // 2048 max threads per SM / 1024 = 2 blocks per SM.
  EXPECT_EQ(gpu.max_active_blocks_per_sm(launch), 2u);
}

TEST(OccupancyTest, LimitedByRegisters) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.threads_per_block = 256;
  launch.regs_per_thread = 64;  // 16384 regs per block, 65536 per SM -> 4
  EXPECT_EQ(gpu.max_active_blocks_per_sm(launch), 4u);
}

TEST(OccupancyTest, LimitedBySharedMemory) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.threads_per_block = 64;
  launch.regs_per_thread = 1;
  launch.shared_bytes_per_block = 16 << 10;  // 48KB per SM -> 3 blocks
  EXPECT_EQ(gpu.max_active_blocks_per_sm(launch), 3u);
}

TEST(OccupancyTest, WholeGpuActiveBlocksFollowPaperFormula) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.threads_per_block = 1024;
  launch.regs_per_thread = 1;
  launch.num_blocks = 5;  // fewer than 2 * 8 SMs
  EXPECT_EQ(gpu.max_active_blocks(launch), 5u);
  launch.num_blocks = 100;
  EXPECT_EQ(gpu.max_active_blocks(launch), 16u);
}

TEST(GpuTest, SimpleKernelRunsEveryThreadOnce) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  auto counters = gpu.memory().allocate<std::uint32_t>(8 * 64);
  for (std::uint64_t i = 0; i < 8 * 64; ++i) {
    gpu.memory().write(counters, i, 0u);
  }
  KernelLaunch launch;
  launch.num_blocks = 8;
  launch.threads_per_block = 64;
  sim.run_until_complete(gpu.run_simple_kernel(
      launch, [&](LaneCtx& lane, std::uint32_t) {
        const std::uint32_t old =
            lane.load(counters, lane.global_thread());
        lane.store(counters, lane.global_thread(), old + 1);
      }));
  for (std::uint64_t i = 0; i < 8 * 64; ++i) {
    EXPECT_EQ(gpu.memory().read(counters, i), 1u) << "thread " << i;
  }
}

TEST(GpuTest, KernelLaunchHasFixedOverhead) {
  sim::Simulation sim;
  SystemConfig config = small_config();
  config.gpu.kernel_launch_overhead = sim::microseconds(8);
  Gpu gpu(sim, config);
  KernelLaunch launch;
  launch.num_blocks = 1;
  launch.threads_per_block = 32;
  sim.run_until_complete(
      gpu.run_simple_kernel(launch, [](LaneCtx&, std::uint32_t) {}));
  EXPECT_GE(sim.now(), sim::microseconds(8));
  EXPECT_EQ(gpu.stats().kernel_launches, 1u);
}

TEST(GpuTest, MemoryBoundKernelTimeScalesWithCoalescing) {
  // Two kernels doing identical work, one coalesced and one strided; the
  // strided one must take measurably longer.
  auto run = [](bool coalesced) {
    sim::Simulation sim;
    Gpu gpu(sim, small_config());
    auto data = gpu.memory().allocate<std::uint64_t>(64 << 10);
    KernelLaunch launch;
    launch.num_blocks = 8;
    launch.threads_per_block = 256;
    sim.run_until_complete(gpu.run_simple_kernel(
        launch, [&](LaneCtx& lane, std::uint32_t tid) {
          for (std::uint32_t k = 0; k < 16; ++k) {
            const std::uint64_t idx =
                coalesced ? (std::uint64_t{k} * 256 + tid)
                          : (std::uint64_t{tid} * 16 + k) * 8 % (64 << 10);
            (void)lane.load(data, idx % (64 << 10));
          }
        }));
    return sim.now();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(GpuTest, BlocksBeyondOccupancyRunInWaves) {
  // One block per SM slot; with 16x the active window the kernel must take
  // ~16x as long as a single wave.
  auto run = [](std::uint32_t num_blocks) {
    sim::Simulation sim;
    Gpu gpu(sim, small_config());
    KernelLaunch launch;
    launch.num_blocks = num_blocks;
    launch.threads_per_block = 1024;  // 2 blocks per SM -> window 16
    launch.regs_per_thread = 1;
    auto sink = gpu.memory().allocate<std::uint64_t>(1024);
    sim.run_until_complete(gpu.run_simple_kernel(
        launch, [&](LaneCtx& lane, std::uint32_t tid) {
          for (int k = 0; k < 50; ++k) (void)lane.load(sink, tid % 1024);
          lane.alu(5000);
        }));
    return sim.now();
  };
  const auto one_wave = run(16);
  const auto many_waves = run(16 * 8);
  EXPECT_GT(many_waves, 6 * one_wave);
  EXPECT_LT(many_waves, 10 * one_wave);
}

TEST(GpuTest, TransfersOccupyLinkAndCountBytes) {
  sim::Simulation sim;
  SystemConfig config = small_config();
  config.pcie.h2d_gbps = 10.0;
  config.pcie.transfer_latency = 0;
  Gpu gpu(sim, config);
  sim.run_until_complete([](Gpu& g) -> sim::Task<> {
    co_await g.h2d_transfer(10'000'000'000ull);  // 10 GB at 10 GB/s = 1 s
  }(gpu));
  EXPECT_EQ(sim.now(), sim::seconds(1));
  EXPECT_EQ(gpu.stats().h2d_bytes, 10'000'000'000ull);
  EXPECT_EQ(gpu.h2d_busy(), sim::seconds(1));
}

TEST(GpuTest, PostedTrafficCompletesInOrder) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  const sim::TimePs first = gpu.post_d2h(1 << 20);
  const sim::TimePs second = gpu.post_d2h(1 << 10);
  EXPECT_GT(second, first);  // small transfer queued behind the big one
}

TEST(GpuTest, SetFlagAtFiresAtRequestedTime) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  sim::Flag flag(sim);
  sim::TimePs seen_at = 0;
  gpu.set_flag_at(flag, 1, sim::microseconds(5));
  sim.spawn([](sim::Flag& f, sim::Simulation& s,
               sim::TimePs& out) -> sim::Task<> {
    co_await f.wait_ge(1);
    out = s.now();
  }(flag, sim, seen_at));
  sim.run();
  EXPECT_EQ(seen_at, sim::microseconds(5));
}

TEST(GpuTest, KernelWaitsOnHostFlag) {
  // A kernel block blocks on a host flag; the host raises it at t=100us;
  // kernel completion must follow it.
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  sim::Flag ready(sim);
  KernelLaunch launch;
  launch.num_blocks = 2;
  launch.threads_per_block = 32;
  sim.spawn([](sim::Simulation& s, sim::Flag& f) -> sim::Task<> {
    co_await s.delay(sim::microseconds(100));
    f.advance_to(1);
  }(sim, ready));
  sim.run_until_complete(
      gpu.run_kernel(launch, [&](BlockCtx& block) -> sim::Task<> {
        co_await block.wait_flag(ready, 1);
        co_await block.run_threads(0, block.threads_per_block(),
                                   [](LaneCtx& lane, std::uint32_t) {
                                     lane.alu(10);
                                   });
      }));
  EXPECT_GT(sim.now(), sim::microseconds(100));
}

TEST(GpuTest, AtomicAddIsFunctionallyCorrectAcrossThreads) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  auto counter = gpu.memory().allocate<std::uint64_t>(1);
  gpu.memory().write(counter, 0, std::uint64_t{0});
  KernelLaunch launch;
  launch.num_blocks = 4;
  launch.threads_per_block = 128;
  sim.run_until_complete(gpu.run_simple_kernel(
      launch, [&](LaneCtx& lane, std::uint32_t) {
        lane.atomic_add(counter, 0, std::uint64_t{1});
      }));
  EXPECT_EQ(gpu.memory().read(counter, 0), 4u * 128u);
}

TEST(GpuTest, ZeroBlockLaunchIsANoop) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.num_blocks = 0;
  sim.run_until_complete(
      gpu.run_simple_kernel(launch, [](LaneCtx&, std::uint32_t) {}));
  EXPECT_EQ(gpu.stats().kernel_launches, 0u);
}

TEST(GpuTest, ImpossibleLaunchThrows) {
  sim::Simulation sim;
  Gpu gpu(sim, small_config());
  KernelLaunch launch;
  launch.num_blocks = 1;
  launch.threads_per_block = 64;
  launch.shared_bytes_per_block = 1 << 20;  // more than any SM has
  EXPECT_THROW(sim.run_until_complete(gpu.run_kernel(
                   launch, [](BlockCtx&) -> sim::Task<> { co_return; })),
               std::invalid_argument);
}

}  // namespace
}  // namespace bigk::gpusim
