// Tests for the MapReduce framework layered on BigKernel (the paper's §VIII
// future work): correctness of map/combine/reduce under every execution
// scheme, and framework-level invariants.
#include "mapreduce/mapreduce.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "apps/common.hpp"

namespace bigk::mr {
namespace {

gpusim::SystemConfig tiny_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

schemes::SchemeConfig tiny_scheme_config() {
  schemes::SchemeConfig sc;
  sc.gpu_blocks = 8;
  sc.gpu_threads_per_block = 128;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 64;
  return sc;
}

// Records of 4 elements: [station, day, temperature, payload].
struct TemperatureMapper {
  template <class Record, class Emitter>
  void operator()(const Record& record, Emitter& emit) const {
    const std::uint64_t station = record.field(0);
    const std::uint64_t temperature = record.field(2);
    emit.cost(6);
    emit(station, temperature);
  }
};

struct Dataset {
  std::vector<std::uint64_t> records;
  std::map<std::uint64_t, Bucket> expected;  // bucket -> (sum, count)

  explicit Dataset(std::uint64_t n, std::uint32_t buckets) {
    records.resize(n * 4);
    apps::Rng rng(777);
    for (std::uint64_t r = 0; r < n; ++r) {
      const std::uint64_t station = rng.below(500);
      const std::uint64_t temperature = 200 + rng.below(150);
      records[r * 4] = station;
      records[r * 4 + 1] = rng.below(365);
      records[r * 4 + 2] = temperature;
      records[r * 4 + 3] = rng.next();
      Bucket& bucket = expected[station % buckets];
      bucket.sum += temperature;
      bucket.count += 1;
    }
  }
};

class MapReduceSchemes : public ::testing::TestWithParam<schemes::Scheme> {};

TEST_P(MapReduceSchemes, MatchesDirectAggregation) {
  constexpr std::uint32_t kBuckets = 1 << 10;
  Dataset dataset(40'000, kBuckets);
  MapReduceJob<std::uint64_t, TemperatureMapper> job(
      std::span(dataset.records), 4, 2, TemperatureMapper{}, kBuckets);
  const MapReduceResult result =
      run(job, GetParam(), tiny_config(), tiny_scheme_config());

  EXPECT_EQ(result.total_pairs(), 40'000u);
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    const auto it = dataset.expected.find(b);
    const Bucket expected = it == dataset.expected.end() ? Bucket{} : it->second;
    ASSERT_EQ(result.buckets[b].sum, expected.sum) << "bucket " << b;
    ASSERT_EQ(result.buckets[b].count, expected.count) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MapReduceSchemes,
    ::testing::Values(schemes::Scheme::kCpuSerial,
                      schemes::Scheme::kCpuMultiThreaded,
                      schemes::Scheme::kGpuSingleBuffer,
                      schemes::Scheme::kGpuDoubleBuffer,
                      schemes::Scheme::kBigKernel),
    [](const auto& info) {
      return std::string(schemes::scheme_name(info.param))
          .substr(0, 3) == "CPU"
          ? (info.param == schemes::Scheme::kCpuSerial ? "CpuSerial" : "CpuMt")
          : (info.param == schemes::Scheme::kGpuSingleBuffer ? "GpuSingle"
             : info.param == schemes::Scheme::kGpuDoubleBuffer ? "GpuDouble"
                                                               : "BigKernel");
    });

// A mapper emitting two pairs per record (station and day histograms).
struct TwoKeyMapper {
  template <class Record, class Emitter>
  void operator()(const Record& record, Emitter& emit) const {
    emit(record.field(0), 1);          // station count
    emit(1000 + record.field(1), 1);   // day count, shifted keyspace
    emit.cost(4);
  }
};

TEST(MapReduceTest, MultiEmitMappersWork) {
  constexpr std::uint32_t kBuckets = 1 << 11;
  Dataset dataset(10'000, kBuckets);
  MapReduceJob<std::uint64_t, TwoKeyMapper> job(
      std::span(dataset.records), 4, 2, TwoKeyMapper{}, kBuckets);
  const MapReduceResult result =
      run(job, schemes::Scheme::kBigKernel, tiny_config(),
          tiny_scheme_config());
  EXPECT_EQ(result.total_pairs(), 20'000u);  // two emits per record
}

TEST(MapReduceTest, JobIsReusableAcrossRuns) {
  constexpr std::uint32_t kBuckets = 256;
  Dataset dataset(5'000, kBuckets);
  MapReduceJob<std::uint64_t, TemperatureMapper> job(
      std::span(dataset.records), 4, 2, TemperatureMapper{}, kBuckets);
  const MapReduceResult first =
      run(job, schemes::Scheme::kCpuSerial, tiny_config());
  const MapReduceResult second =
      run(job, schemes::Scheme::kBigKernel, tiny_config(),
          tiny_scheme_config());
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    ASSERT_EQ(first.buckets[b].sum, second.buckets[b].sum);
    ASSERT_EQ(first.buckets[b].count, second.buckets[b].count);
  }
}

TEST(MapReduceTest, BigKernelRunsJobInOneLaunch) {
  constexpr std::uint32_t kBuckets = 256;
  Dataset dataset(30'000, kBuckets);
  MapReduceJob<std::uint64_t, TemperatureMapper> job(
      std::span(dataset.records), 4, 2, TemperatureMapper{}, kBuckets);
  const MapReduceResult result =
      run(job, schemes::Scheme::kBigKernel, tiny_config(),
          tiny_scheme_config());
  EXPECT_EQ(result.metrics.kernel_launches, 1u);
  // Map reads 2 of 4 fields: transfer reduction applies to MapReduce too.
  EXPECT_LT(result.metrics.h2d_bytes, 30'000u * 32 * 7 / 10);
}

TEST(MapReduceTest, EmptyInputYieldsEmptyBuckets) {
  std::vector<std::uint64_t> empty;
  MapReduceJob<std::uint64_t, TemperatureMapper> job(
      std::span<std::uint64_t>(empty), 4, 2,
                                                     TemperatureMapper{}, 64);
  const MapReduceResult result =
      run(job, schemes::Scheme::kCpuSerial, tiny_config());
  EXPECT_EQ(result.total_pairs(), 0u);
}

}  // namespace
}  // namespace bigk::mr
