// Unit tests for the discrete-event simulation core: clock, ordering,
// process lifecycle, and error propagation.
#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace bigk::sim {
namespace {

Task<> record_after(Simulation& sim, DurationPs dt, std::vector<int>& log,
                    int id) {
  co_await sim.delay(dt);
  log.push_back(id);
}

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(SimulationTest, DelayAdvancesClock) {
  Simulation sim;
  TimePs observed = 0;
  sim.run_until_complete([](Simulation& s, TimePs& out) -> Task<> {
    co_await s.delay(microseconds(3));
    out = s.now();
  }(sim, observed));
  EXPECT_EQ(observed, microseconds(3));
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn(record_after(sim, nanoseconds(30), log, 3));
  sim.spawn(record_after(sim, nanoseconds(10), log, 1));
  sim.spawn(record_after(sim, nanoseconds(20), log, 2));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, EqualTimestampsFireInSpawnOrder) {
  Simulation sim;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) {
    sim.spawn(record_after(sim, nanoseconds(7), log, i));
  }
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, ZeroDelayYieldsDeterministically) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn([](Simulation& s, std::vector<int>& out) -> Task<> {
    out.push_back(1);
    co_await s.delay(0);
    out.push_back(3);
  }(sim, log));
  sim.spawn([](Simulation&, std::vector<int>& out) -> Task<> {
    out.push_back(2);
    co_return;
  }(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, NestedTasksPropagateValues) {
  Simulation sim;
  int result = 0;
  sim.run_until_complete([](Simulation& s, int& out) -> Task<> {
    auto child = [](Simulation& s2) -> Task<int> {
      co_await s2.delay(nanoseconds(5));
      co_return 42;
    };
    out = co_await child(s);
  }(sim, result));
  EXPECT_EQ(result, 42);
}

TEST(SimulationTest, JoinWaitsForProcess) {
  Simulation sim;
  TimePs join_time = 0;
  sim.run_until_complete([](Simulation& s, TimePs& out) -> Task<> {
    Process worker = s.spawn([](Simulation& s2) -> Task<> {
      co_await s2.delay(microseconds(10));
    }(s));
    co_await worker.join();
    out = s.now();
  }(sim, join_time));
  EXPECT_EQ(join_time, microseconds(10));
}

TEST(SimulationTest, JoinOnFinishedProcessIsImmediate) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    Process worker = s.spawn([](Simulation&) -> Task<> { co_return; }(s));
    co_await s.delay(microseconds(1));
    EXPECT_TRUE(worker.done());
    co_await worker.join();
    EXPECT_EQ(s.now(), microseconds(1));
  }(sim));
}

TEST(SimulationTest, ExceptionPropagatesThroughAwait) {
  Simulation sim;
  auto main = [](Simulation& s) -> Task<> {
    auto thrower = [](Simulation&) -> Task<> {
      throw std::runtime_error("boom");
      co_return;
    };
    co_await thrower(s);
  };
  EXPECT_THROW(sim.run_until_complete(main(sim)), std::runtime_error);
}

TEST(SimulationTest, ExceptionPropagatesThroughJoin) {
  Simulation sim;
  bool caught = false;
  sim.run_until_complete([](Simulation& s, bool& out) -> Task<> {
    Process worker = s.spawn([](Simulation& s2) -> Task<> {
      co_await s2.delay(nanoseconds(1));
      throw std::runtime_error("worker failed");
    }(s));
    try {
      co_await worker.join();
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(sim, caught));
  EXPECT_TRUE(caught);
}

TEST(SimulationTest, UnjoinedProcessErrorSurfacesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<> {
    co_await s.delay(nanoseconds(1));
    throw std::logic_error("unobserved");
  }(sim));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SimulationTest, ManyProcessesAllComplete) {
  Simulation sim;
  int completed = 0;
  std::vector<Process> procs;
  for (int i = 0; i < 1000; ++i) {
    procs.push_back(sim.spawn([](Simulation& s, int& done, int i2) -> Task<> {
      co_await s.delay(nanoseconds(static_cast<std::uint64_t>(i2 % 17)));
      ++done;
    }(sim, completed, i)));
  }
  sim.run();
  EXPECT_EQ(completed, 1000);
  for (const Process& p : procs) EXPECT_TRUE(p.done());
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(nanoseconds(1), 1000u);
  EXPECT_EQ(microseconds(1), 1'000'000u);
  EXPECT_EQ(milliseconds(2), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(kMillisecond), 1.0);
}

TEST(TimeTest, TransferTimeMatchesBandwidth) {
  // 8 GB at 8 GB/s = 1 s.
  EXPECT_EQ(transfer_time(8'000'000'000ull, 8.0), kSecond);
  // Tiny transfers round up to at least 1 ps.
  EXPECT_GE(transfer_time(1, 1000.0), 1u);
  EXPECT_EQ(transfer_time(0, 10.0), 0u);
}

TEST(TimeTest, CyclesTimeMatchesFrequency) {
  // 1000 cycles at 1 GHz = 1 us.
  EXPECT_EQ(cycles_time(1000.0, 1.0), microseconds(1));
  EXPECT_EQ(cycles_time(0.0, 1.0), 0u);
}

}  // namespace
}  // namespace bigk::sim
