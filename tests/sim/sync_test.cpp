// Tests for Flag / Semaphore / Barrier / Channel / FifoServer, the
// primitives the BigKernel pipeline synchronization is built on.
#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace bigk::sim {
namespace {

TEST(FlagTest, WaitReturnsImmediatelyWhenSatisfied) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    Flag flag(s);
    flag.advance_to(5);
    co_await flag.wait_ge(3);
    EXPECT_EQ(s.now(), 0u);
  }(sim));
}

TEST(FlagTest, WaitBlocksUntilAdvanced) {
  Simulation sim;
  Flag flag(sim);
  TimePs woke_at = 0;
  sim.spawn([](Simulation& s, Flag& f, TimePs& out) -> Task<> {
    co_await f.wait_ge(2);
    out = s.now();
  }(sim, flag, woke_at));
  sim.spawn([](Simulation& s, Flag& f) -> Task<> {
    co_await s.delay(microseconds(1));
    f.increment();  // value 1: not enough
    co_await s.delay(microseconds(1));
    f.increment();  // value 2: wakes waiter
  }(sim, flag));
  sim.run();
  EXPECT_EQ(woke_at, microseconds(2));
}

TEST(FlagTest, AdvanceToIsMonotonic) {
  Simulation sim;
  Flag flag(sim);
  flag.advance_to(10);
  flag.advance_to(4);  // no-op
  EXPECT_EQ(flag.value(), 10u);
}

TEST(FlagTest, MultipleWaitersWakeInOrder) {
  Simulation sim;
  Flag flag(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Flag& f, std::vector<int>& out, int id) -> Task<> {
      co_await f.wait_ge(1);
      out.push_back(id);
    }(flag, order, i));
  }
  sim.spawn([](Simulation& s, Flag& f) -> Task<> {
    co_await s.delay(nanoseconds(1));
    f.increment();
  }(sim, flag));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, AcquireConsumesTokens) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    Semaphore sem(s, 2);
    co_await sem.acquire();
    co_await sem.acquire();
    EXPECT_EQ(sem.available(), 0u);
    sem.release();
    EXPECT_EQ(sem.available(), 1u);
  }(sim));
}

TEST(SemaphoreTest, BlockedAcquirerWakesOnRelease) {
  Simulation sim;
  Semaphore sem(sim, 1);
  TimePs acquired_at = 0;
  sim.spawn([](Simulation& s, Semaphore& sm, TimePs& out) -> Task<> {
    co_await sm.acquire();  // takes the only token
    co_await s.delay(microseconds(5));
    sm.release();
    (void)out;
  }(sim, sem, acquired_at));
  sim.spawn([](Simulation& s, Semaphore& sm, TimePs& out) -> Task<> {
    co_await sm.acquire();
    out = s.now();
  }(sim, sem, acquired_at));
  sim.run();
  EXPECT_EQ(acquired_at, microseconds(5));
}

TEST(SemaphoreTest, WaitersServedFifo) {
  Simulation sim;
  Semaphore sem(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Semaphore& sm, std::vector<int>& out, int id) -> Task<> {
      co_await sm.acquire();
      out.push_back(id);
      sm.release();
    }(sem, order, i));
  }
  sim.spawn([](Simulation& s, Semaphore& sm) -> Task<> {
    co_await s.delay(nanoseconds(1));
    sm.release();
  }(sim, sem));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BarrierTest, AllParticipantsLeaveTogether) {
  Simulation sim;
  Barrier barrier(sim, 3);
  std::vector<TimePs> times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](Simulation& s, Barrier& b, std::vector<TimePs>& out, int id)
            -> Task<> {
          co_await s.delay(microseconds(static_cast<std::uint64_t>(id)));
          co_await b.arrive_and_wait();
          out.push_back(s.now());
        }(sim, barrier, times, i));
  }
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  for (TimePs t : times) EXPECT_EQ(t, microseconds(2));  // slowest arrival
}

TEST(BarrierTest, BarrierIsReusable) {
  Simulation sim;
  Barrier barrier(sim, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, int& out, int id) -> Task<> {
      for (int round = 0; round < 5; ++round) {
        co_await s.delay(nanoseconds(static_cast<std::uint64_t>(id + 1)));
        co_await b.arrive_and_wait();
      }
      ++out;
    }(sim, barrier, rounds_done, i));
  }
  sim.run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(BarrierTest, SingleParticipantNeverBlocks) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    Barrier b(s, 1);
    co_await b.arrive_and_wait();
    co_await b.arrive_and_wait();
    EXPECT_EQ(s.now(), 0u);
  }(sim));
}

TEST(ChannelTest, PopReturnsPushedItemsInOrder) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    Channel<int> ch(s);
    ch.push(1);
    ch.push(2);
    EXPECT_EQ((co_await ch.pop()).value(), 1);
    EXPECT_EQ((co_await ch.pop()).value(), 2);
  }(sim));
}

TEST(ChannelTest, PopBlocksUntilPush) {
  Simulation sim;
  Channel<int> ch(sim);
  std::optional<int> got;
  TimePs got_at = 0;
  sim.spawn([](Simulation& s, Channel<int>& c, std::optional<int>& out,
               TimePs& at) -> Task<> {
    out = co_await c.pop();
    at = s.now();
  }(sim, ch, got, got_at));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(microseconds(2));
    c.push(9);
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, 9);
  EXPECT_EQ(got_at, microseconds(2));
}

TEST(ChannelTest, CloseDrainsToNullopt) {
  Simulation sim;
  std::vector<int> received;
  bool saw_end = false;
  Channel<int> ch(sim);
  sim.spawn([](Channel<int>& c, std::vector<int>& out, bool& end) -> Task<> {
    while (true) {
      std::optional<int> item = co_await c.pop();
      if (!item) {
        end = true;
        break;
      }
      out.push_back(*item);
    }
  }(ch, received, saw_end));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    c.push(1);
    co_await s.delay(nanoseconds(10));
    c.push(2);
    c.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
}

TEST(FifoServerTest, SerializesOverlappingRequests) {
  Simulation sim;
  FifoServer server(sim, "link");
  std::vector<TimePs> done_at(2);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, FifoServer& srv, TimePs& out) -> Task<> {
      co_await srv.request(microseconds(10));
      out = s.now();
    }(sim, server, done_at[static_cast<std::size_t>(i)]));
  }
  sim.run();
  EXPECT_EQ(done_at[0], microseconds(10));
  EXPECT_EQ(done_at[1], microseconds(20));
  EXPECT_EQ(server.busy_time(), microseconds(20));
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(FifoServerTest, IdleGapsDoNotCountAsBusy) {
  Simulation sim;
  FifoServer server(sim, "link");
  sim.run_until_complete([](Simulation& s, FifoServer& srv) -> Task<> {
    co_await srv.request(microseconds(1));
    co_await s.delay(microseconds(100));
    co_await srv.request(microseconds(1));
  }(sim, server));
  EXPECT_EQ(server.busy_time(), microseconds(2));
}

TEST(FifoServerTest, PostThenDrainWaitsForCompletion) {
  Simulation sim;
  FifoServer server(sim, "dma");
  TimePs drained_at = 0;
  sim.run_until_complete([](Simulation& s, FifoServer& srv,
                            TimePs& out) -> Task<> {
    srv.post(microseconds(3));
    srv.post(microseconds(4));
    co_await srv.drain();
    out = s.now();
  }(sim, server, drained_at));
  EXPECT_EQ(drained_at, microseconds(7));
}

TEST(FifoServerTest, ZeroCostRequestIsImmediate) {
  Simulation sim;
  sim.run_until_complete([](Simulation& s) -> Task<> {
    FifoServer srv(s, "x");
    co_await srv.request(0);
    EXPECT_EQ(s.now(), 0u);
  }(sim));
}

// The in-order property the paper's flag-after-data DMA trick relies on:
// a small "flag" transfer posted after a large data transfer must not
// complete before the data.
TEST(FifoServerTest, InOrderCompletionForFlagAfterData) {
  Simulation sim;
  FifoServer dma(sim, "dma");
  TimePs data_done = 0;
  TimePs flag_done = 0;
  sim.spawn([](Simulation& s, FifoServer& d, TimePs& out) -> Task<> {
    co_await d.request(milliseconds(5));  // big data buffer
    out = s.now();
  }(sim, dma, data_done));
  sim.spawn([](Simulation& s, FifoServer& d, TimePs& out) -> Task<> {
    co_await s.delay(nanoseconds(1));     // enqueued just after the data
    co_await d.request(nanoseconds(10));  // tiny flag copy
    out = s.now();
  }(sim, dma, flag_done));
  sim.run();
  EXPECT_GT(flag_done, data_done);
}

}  // namespace
}  // namespace bigk::sim
