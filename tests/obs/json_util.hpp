// Minimal recursive-descent JSON parser for validating exporter output in
// tests. Covers the grammar the exporters emit (objects, arrays, strings
// with escapes, numbers, true/false/null) and throws std::runtime_error
// with an offset on any malformed input, so a test failure points at the
// broken byte.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bigk::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;
  std::map<std::string, Value> members;

  bool has(const std::string& key) const { return members.count(key) != 0; }
  const Value& at(const std::string& key) const {
    auto it = members.find(key);
    if (it == members.end()) {
      throw std::runtime_error("missing key: " + key);
    }
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value result = value();
    skip_ws();
    if (pos_ != text_.size()) throw err("trailing characters");
    return result;
  }

 private:
  std::runtime_error err(const std::string& what) const {
    return std::runtime_error("JSON error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("JSON error: unexpected end of input");
    }
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) throw err(std::string("expected '") + c + "'");
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      throw err("bad literal, expected " + std::string(word));
    }
    pos_ += word.size();
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.str = string();
      return v;
    }
    if (c == 't') {
      literal("true");
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      literal("false");
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members[std::move(key)] = value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') throw err("expected ',' or '}' in object");
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') throw err("expected ',' or ']' in array");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        throw err("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw err("bad \\u escape");
          }
          // The exporters only emit \u00XX for control characters.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: throw err("bad escape character");
      }
    }
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) throw err("expected digits");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) throw err("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) throw err("expected exponent digits");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace bigk::testjson
