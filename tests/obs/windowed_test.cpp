// Unit tests for the sliding-window statistics: bucket accounting, window
// expiry, rate math, and lifetime totals.
#include "obs/prof/windowed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/time.hpp"

namespace bigk::obs {
namespace {

constexpr sim::DurationPs kWindow = 8'000;  // 8 buckets x 1000 ps

TEST(WindowedStats, RejectsZeroWindowAndBuckets) {
  EXPECT_THROW(WindowedStats(0), std::invalid_argument);
  EXPECT_THROW(WindowedStats(1'000, 0), std::invalid_argument);
}

TEST(WindowedStats, CountsEventsWithinWindow) {
  WindowedStats stats(kWindow, 8);
  stats.add(0, 10.0);
  stats.add(500, 5.0);    // same first bucket
  stats.add(3'000, 2.0);  // fourth bucket
  EXPECT_EQ(stats.events(3'000), 3u);
  EXPECT_DOUBLE_EQ(stats.sum(3'000), 17.0);
}

TEST(WindowedStats, OldBucketsExpire) {
  WindowedStats stats(kWindow, 8);
  stats.add(0, 10.0);
  stats.add(9'000, 1.0);  // > one full window later: bucket 0 is out of range
  EXPECT_EQ(stats.events(9'000), 1u);
  EXPECT_DOUBLE_EQ(stats.sum(9'000), 1.0);
  // Lifetime totals keep everything.
  EXPECT_EQ(stats.total_events(), 2u);
  EXPECT_DOUBLE_EQ(stats.total(), 11.0);
}

TEST(WindowedStats, RatesScaleByWindow) {
  WindowedStats stats(sim::DurationPs{1'000'000'000'000}, 10);  // 1 s window
  stats.add(0, 100.0);
  stats.add(1, 100.0);
  EXPECT_DOUBLE_EQ(stats.rate_per_s(10), 2.0);      // 2 events / 1 s
  EXPECT_DOUBLE_EQ(stats.sum_per_s(10), 200.0);     // 200 units / 1 s
}

TEST(WindowedStats, QueryAtLaterTimeDropsStaleBuckets) {
  WindowedStats stats(kWindow, 8);
  stats.add(0, 4.0);
  // Query without new adds: the window slides forward and leaves bucket 0.
  EXPECT_DOUBLE_EQ(stats.sum(0), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(7'999), 4.0);  // bucket 7, bucket 0 still live
  EXPECT_DOUBLE_EQ(stats.sum(8'000), 0.0);  // bucket 8, bucket 0 expired
}

}  // namespace
}  // namespace bigk::obs
