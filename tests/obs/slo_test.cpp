// Unit tests for the declarative SLO monitor: rule grammar, evaluation
// semantics (absent metrics are skipped, not violated), and the counter +
// trace-instant sinks.
#include "obs/prof/slo.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"

namespace bigk::obs::prof {
namespace {

TEST(SloRule, ParsesEveryOperator) {
  const SloRule le = SloRule::parse("p99_ms <= 5.5");
  EXPECT_EQ(le.metric, "p99_ms");
  EXPECT_EQ(le.op, SloRule::Op::kLe);
  EXPECT_DOUBLE_EQ(le.threshold, 5.5);

  EXPECT_EQ(SloRule::parse("x < 1").op, SloRule::Op::kLt);
  EXPECT_EQ(SloRule::parse("x > 1").op, SloRule::Op::kGt);
  EXPECT_EQ(SloRule::parse("utilization>=0.25").op, SloRule::Op::kGe);
  EXPECT_DOUBLE_EQ(SloRule::parse("utilization>=0.25").threshold, 0.25);
}

TEST(SloRule, RejectsMalformedRules) {
  EXPECT_THROW(SloRule::parse(""), std::invalid_argument);
  EXPECT_THROW(SloRule::parse("p99_ms"), std::invalid_argument);
  EXPECT_THROW(SloRule::parse("<= 5"), std::invalid_argument);
  EXPECT_THROW(SloRule::parse("p99_ms <="), std::invalid_argument);
  EXPECT_THROW(SloRule::parse("p99_ms <= five"), std::invalid_argument);
  EXPECT_THROW(SloRule::parse("p99_ms == 5"), std::invalid_argument);
}

TEST(SloRule, HoldsAndRoundTrips) {
  const SloRule rule = SloRule::parse("p95_ms <= 2");
  EXPECT_TRUE(rule.holds(2.0));
  EXPECT_FALSE(rule.holds(2.1));
  EXPECT_EQ(rule.to_string(), "p95_ms <= 2");
  EXPECT_EQ(SloRule::parse(rule.to_string()).to_string(), rule.to_string());
}

TEST(ParseSloRules, SplitsOnSemicolonsIgnoringEmptySegments) {
  const auto rules =
      parse_slo_rules("p99_ms <= 5; ; utilization >= 0.2;");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].metric, "p99_ms");
  EXPECT_EQ(rules[1].metric, "utilization");
  EXPECT_TRUE(parse_slo_rules("").empty());
  EXPECT_TRUE(parse_slo_rules(" ; ; ").empty());
}

TEST(SloMonitor, CountsViolationsAndSkipsAbsentMetrics) {
  SloMonitor monitor(parse_slo_rules("p99_ms <= 5; queue_depth < 4"));
  ASSERT_EQ(monitor.rules().size(), 2u);

  // p99_ms is not observable yet: only queue_depth is evaluated.
  EXPECT_EQ(monitor.evaluate(0, {{"queue_depth", 2.0}}), 0u);
  EXPECT_EQ(monitor.evaluate(1, {{"queue_depth", 9.0}}), 1u);
  // Both rules fail against this snapshot.
  EXPECT_EQ(monitor.evaluate(2, {{"queue_depth", 9.0}, {"p99_ms", 7.0}}), 2u);
  EXPECT_EQ(monitor.violations(), 3u);
}

TEST(SloMonitor, ExportsCountersAndTraceInstants) {
  MetricsRegistry registry;
  Tracer tracer;
  SloMonitor monitor(parse_slo_rules("p99_ms <= 5"));
  monitor.attach(&registry, &tracer, "serve.");

  monitor.evaluate(10, {{"p99_ms", 4.0}});  // holds: no sink traffic
  EXPECT_EQ(registry.find_counter("serve.slo.violation"), nullptr);

  monitor.evaluate(20, {{"p99_ms", 6.0}});
  monitor.evaluate(30, {{"p99_ms", 8.0}});
  ASSERT_NE(registry.find_counter("serve.slo.violation"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.slo.violation")->value(), 2u);
  ASSERT_NE(registry.find_counter("serve.slo.violation.p99_ms"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.slo.violation.p99_ms")->value(), 2u);

  ASSERT_EQ(tracer.instants().size(), 2u);
  EXPECT_EQ(tracer.instants()[0].name, "p99_ms <= 5");
  EXPECT_EQ(tracer.instants()[0].category, "slo");
}

}  // namespace
}  // namespace bigk::obs::prof
