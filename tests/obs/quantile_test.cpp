// Unit tests for the P² streaming quantile sketch: constructor validation,
// the exact small-count path, estimation accuracy on known distributions,
// clamping, and determinism.
#include "obs/prof/quantile.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bigk::obs::prof {
namespace {

TEST(QuantileSketch, RejectsBadQuantiles) {
  EXPECT_THROW(QuantileSketch(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({0.0}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({1.0}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({0.5, -0.1}), std::invalid_argument);
}

TEST(QuantileSketch, EmptySketchAnswersZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketch, SmallCountsAreExactNearestRank) {
  QuantileSketch sketch;
  sketch.observe(30.0);
  sketch.observe(10.0);
  sketch.observe(20.0);
  EXPECT_EQ(sketch.count(), 3u);
  // Nearest rank over {10, 20, 30}: p50 -> rank ceil(1.5)=2 -> 20.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 30.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 10.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 30.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 60.0);
}

TEST(QuantileSketch, UnregisteredQuantileThrowsOnceStreaming) {
  QuantileSketch sketch({0.5});
  for (int i = 0; i < 10; ++i) sketch.observe(static_cast<double>(i));
  EXPECT_THROW(sketch.quantile(0.25), std::invalid_argument);
  EXPECT_NO_THROW(sketch.quantile(0.5));
}

TEST(QuantileSketch, TracksUniformStream) {
  // 1..10'000 in a deterministic shuffled order (LCG permutation walk).
  QuantileSketch sketch;
  constexpr std::uint64_t kN = 10'000;
  std::uint64_t state = 12345;
  for (std::uint64_t i = 0; i < kN; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    sketch.observe(static_cast<double>(state % kN) + 1.0);
  }
  EXPECT_EQ(sketch.count(), kN);
  // P² is approximate: a few percent of the range is plenty for uniform data.
  EXPECT_NEAR(sketch.quantile(0.5), kN * 0.5, kN * 0.05);
  EXPECT_NEAR(sketch.quantile(0.95), kN * 0.95, kN * 0.05);
  EXPECT_NEAR(sketch.quantile(0.99), kN * 0.99, kN * 0.05);
}

TEST(QuantileSketch, EstimatesStayWithinObservedRange) {
  QuantileSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.observe(5.0);  // degenerate stream
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 5.0);
  sketch.observe(7.0);
  EXPECT_GE(sketch.quantile(0.99), 5.0);
  EXPECT_LE(sketch.quantile(0.99), 7.0);
}

TEST(QuantileSketch, DeterministicAcrossRuns) {
  const auto run = [] {
    QuantileSketch sketch;
    std::uint64_t state = 99;
    for (int i = 0; i < 5'000; ++i) {
      state = state * 2862933555777941757ull + 3037000493ull;
      sketch.observe(static_cast<double>(state % 1'000));
    }
    return std::vector<double>{sketch.quantile(0.5), sketch.quantile(0.95),
                               sketch.quantile(0.99)};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bigk::obs::prof
