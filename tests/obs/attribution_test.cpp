// StageProfiler tests: exact window splitting, argmax/tie semantics, overlap
// efficiency, flip counting — plus end-to-end integration against a real
// Engine launch, where the profiler must agree with the engine's own stage
// accounting and a seeded stage_stall fault must flip the attributed
// bottleneck to the stalled stage in-window.
#include "obs/prof/attribution.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "fault/fault.hpp"
#include "schemes/metrics.hpp"
#include "schemes/runners.hpp"
#include "sim/simulation.hpp"

namespace bigk::obs::prof {
namespace {

constexpr sim::DurationPs kWindow = 1'000;

TEST(StageProfiler, RejectsZeroWindow) {
  EXPECT_THROW(StageProfiler(0), std::invalid_argument);
}

TEST(StageProfiler, SplitsIntervalsExactlyAtWindowBoundaries) {
  StageProfiler profiler(kWindow);
  profiler.record(Stage::kTransfer, 500, 2'500);
  EXPECT_EQ(profiler.stage_busy(Stage::kTransfer), 2'000);
  const auto windows = profiler.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].index, 0u);
  EXPECT_EQ(windows[0].begin, 0);
  EXPECT_EQ(windows[0].end, 1'000);
  EXPECT_EQ(windows[0].busy[stage_index(Stage::kTransfer)], 500);
  EXPECT_EQ(windows[1].busy[stage_index(Stage::kTransfer)], 1'000);
  EXPECT_EQ(windows[2].busy[stage_index(Stage::kTransfer)], 500);
}

TEST(StageProfiler, OutOfOrderRecordsStayChronological) {
  StageProfiler profiler(kWindow);
  profiler.record(Stage::kCompute, 5'000, 5'500);
  profiler.record(Stage::kAssembly, 0, 300);
  const auto windows = profiler.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0u);
  EXPECT_EQ(windows[0].bottleneck, Stage::kAssembly);
  EXPECT_EQ(windows[1].index, 5u);
  EXPECT_EQ(windows[1].bottleneck, Stage::kCompute);
}

TEST(StageProfiler, BottleneckTiesGoToTheEarlierStage) {
  StageProfiler profiler(kWindow);
  profiler.record(Stage::kAssembly, 0, 400);
  profiler.record(Stage::kCompute, 0, 400);
  EXPECT_EQ(profiler.bottleneck(), Stage::kAssembly);
  profiler.record(Stage::kCompute, 400, 500);
  EXPECT_EQ(profiler.bottleneck(), Stage::kCompute);
}

TEST(StageProfiler, OverlapEfficiencyMeasuresPipelining) {
  StageProfiler profiler(kWindow);
  profiler.record(Stage::kTransfer, 0, 1'000);
  profiler.record(Stage::kCompute, 0, 1'000);
  // Two stages fully overlapped over 1000 ps of wall time: 1 - 1000/2000.
  EXPECT_DOUBLE_EQ(profiler.overlap_efficiency(1'000), 0.5);
  // Fully serialized (wall >= total busy) clamps to 0.
  EXPECT_DOUBLE_EQ(profiler.overlap_efficiency(3'000), 0.0);
  // No busy time at all: defined as 0.
  EXPECT_DOUBLE_EQ(StageProfiler(kWindow).overlap_efficiency(100), 0.0);
}

TEST(StageProfiler, CountsBottleneckFlips) {
  StageProfiler profiler(kWindow);
  profiler.record(Stage::kCompute, 0, 900);       // window 0: compute
  profiler.record(Stage::kTransfer, 1'000, 1'900);  // window 1: transfer
  profiler.record(Stage::kTransfer, 2'000, 2'900);  // window 2: transfer
  profiler.record(Stage::kCompute, 3'000, 3'900);   // window 3: compute
  EXPECT_EQ(profiler.bottleneck_flips(), 2u);
  EXPECT_EQ(profiler.window_count(), 4u);
}

// ---------------------------------------------------------------------------
// Engine integration: the profiler consumes the same record_stage feed as the
// engine's metrics, so the two accountings must agree to the picosecond, and
// a stage_stall fault must surface as an assembly-bottlenecked window.

// Compute-heavy toy kernel so the clean run's limiting stage is compute, not
// assembly — the stall flip below is then unambiguous.
struct HeavyKernel {
  core::StreamRef<std::uint64_t> data;
  core::TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(2'000);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

constexpr sim::DurationPs kEngineWindow = 50 * sim::kMicrosecond;

struct EngineRun {
  StageProfiler profiler{kEngineWindow};
  core::EngineMetrics metrics;
  sim::TimePs elapsed = 0;
};

EngineRun run_heavy(const char* fault_spec) {
  EngineRun result;
  sim::Simulation simulation;
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 8 << 20;

  constexpr std::uint64_t kRecords = 4'000;
  std::vector<std::uint64_t> host(kRecords * 4);
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    host[r * 4] = r;
    host[r * 4 + 1] = r ^ 5;
  }

  fault::FaultPlane plane(/*seed=*/1);
  cusim::Runtime runtime(simulation, config);
  if (fault_spec != nullptr && fault_spec[0] != '\0') {
    plane.add_all(fault::FaultSpec::parse(fault_spec));
    runtime.set_fault_plane(&plane);
  }

  core::Options options;
  options.num_blocks = 1;  // a stalled assembly leaves nothing else running
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  core::Engine engine(runtime, options);
  engine.set_profiler(&result.profiler);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(host), core::AccessMode::kReadWrite, /*elems_per_record=*/4,
      /*reads_per_record=*/2, /*writes_per_record=*/1);
  core::TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  HeavyKernel kernel{stream, bias};

  simulation.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
         HeavyKernel k, std::uint64_t records) -> sim::Task<> {
        core::DeviceTables device =
            co_await core::DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, records, device);
        device.release();
      }(runtime, engine, tables, kernel, kRecords));

  result.metrics = engine.metrics();
  result.elapsed = simulation.now();
  return result;
}

TEST(StageProfilerEngineTest, AgreesWithEngineStageAccounting) {
  const EngineRun run = run_heavy("");
  for (const Stage stage : all_stages()) {
    EXPECT_EQ(run.profiler.stage_busy(stage), run.metrics.stage_busy(stage))
        << "profiler diverged from engine metrics for "
        << stage_name(stage);
  }
  EXPECT_GT(run.profiler.window_count(), 1u);
  EXPECT_EQ(run.profiler.bottleneck(), Stage::kCompute);
  const double overlap = run.profiler.overlap_efficiency(run.elapsed);
  EXPECT_GE(overlap, 0.0);
  EXPECT_LT(overlap, 1.0);
}

TEST(StageProfilerEngineTest, StageStallFlipsBottleneckToAssemblyInWindow) {
  const EngineRun clean = run_heavy("");
  // 500 us stall on the first assembly op: ~10 full 50 us windows in which
  // the single block can only sit in assembly.
  const EngineRun stalled = run_heavy("stage_stall,nth=1,stall_us=500");

  const sim::DurationPs stall = 500 * sim::kMicrosecond;
  EXPECT_GE(stalled.profiler.stage_busy(Stage::kAssembly),
            clean.profiler.stage_busy(Stage::kAssembly) + stall * 9 / 10);

  // In-window flip: at least one window is attributed to assembly with the
  // stall filling (nearly) the whole window and compute idle.
  bool found_stall_window = false;
  for (const WindowAttribution& w : stalled.profiler.windows()) {
    if (w.bottleneck == Stage::kAssembly &&
        w.busy[stage_index(Stage::kAssembly)] >= kEngineWindow * 9 / 10 &&
        w.busy[stage_index(Stage::kCompute)] == 0) {
      found_stall_window = true;
      break;
    }
  }
  EXPECT_TRUE(found_stall_window)
      << "no window attributed the stall to assembly";

  // The run still does its compute-bound work after the stall, so the
  // attributed bottleneck must flip at least once across the timeline.
  EXPECT_GE(stalled.profiler.bottleneck_flips(), 1u);
  // Clean attribution is unaffected: compute remains the limiting stage.
  EXPECT_EQ(clean.profiler.bottleneck(), Stage::kCompute);
}

// Minimal runnable app for exercising run_bigkernel's prof summary; lives at
// namespace scope because local classes cannot carry static members or the
// kernel's member template.
struct ToyApp {
  static constexpr std::uint32_t kElemsPerRecord = 4;
  std::uint64_t records = 8'000;
  std::vector<std::uint64_t> data;
  core::TableSet table_set;

  ToyApp() { data.resize(records * kElemsPerRecord); }
  void reset() {}
  std::uint64_t num_records() const { return records; }
  core::TableSet& tables() { return table_set; }
  bool interleaved_records() const { return true; }

  std::vector<schemes::StreamDecl> stream_decls() {
    schemes::StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(data.data());
    decl.binding.num_elements = data.size();
    decl.binding.elem_size = 8;
    decl.binding.mode = core::AccessMode::kReadWrite;
    decl.binding.elems_per_record = kElemsPerRecord;
    decl.binding.reads_per_record = 2;
    decl.binding.writes_per_record = 1;
    return {decl};
  }

  struct Kernel {
    core::StreamRef<std::uint64_t> stream{0};
    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t a = ctx.read(stream, r * 4);
        const std::uint64_t b = ctx.read(stream, r * 4 + 1);
        ctx.alu(8);
        ctx.write(stream, r * 4 + 3, a + b);
      }
    }
  };
  Kernel kernel() const { return Kernel{}; }
};

// run_bigkernel computes the same attribution from the engine's stage sums,
// so the bench JSON's prof block matches fig6's slowest-stage ranking by
// construction; with a window configured it also carries the timeline stats.
TEST(StageProfilerEngineTest, RunnerProfSummaryMatchesEngineStageSums) {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 4;
  sc.bigkernel.compute_threads_per_block = 64;
  sc.prof_window = 100 * sim::kMicrosecond;

  ToyApp app;
  const schemes::RunMetrics metrics = schemes::run_bigkernel(config, app, sc);

  ASSERT_GE(metrics.prof.bottleneck, 0);
  ASSERT_LT(metrics.prof.bottleneck, static_cast<std::int32_t>(kStageCount));
  // The prof bottleneck is the argmax of the engine's stage busy sums — the
  // same sums fig6 ranks — so the two may never disagree.
  sim::DurationPs best = 0;
  std::int32_t argmax = -1;
  for (const Stage stage : all_stages()) {
    const sim::DurationPs busy = metrics.engine.stage_busy(stage);
    if (argmax < 0 || busy > best) {
      best = busy;
      argmax = static_cast<std::int32_t>(stage_index(stage));
    }
  }
  EXPECT_EQ(metrics.prof.bottleneck, argmax);
  EXPECT_GE(metrics.prof.overlap_efficiency, 0.0);
  EXPECT_LT(metrics.prof.overlap_efficiency, 1.0);
  EXPECT_GT(metrics.prof.windows, 0u);
  EXPECT_DOUBLE_EQ(metrics.prof.window_ms, 0.1);
}

}  // namespace
}  // namespace bigk::obs::prof
