// Tracer + MetricsRegistry + bigkprof under a 4-engine serve run: four
// device workers share one tracer, one registry, per-device StageProfilers,
// the pool-wide latency sketch, windowed telemetry, and an armed SLO
// monitor, all at once. CI runs this binary under ThreadSanitizer
// (scripts/ci.sh tsan) to prove the telemetry plane adds no shared mutable
// state to the multi-engine refactor. The test itself locks down the
// per-job breakdown partition contract and the prof/slo export schema.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/stage.hpp"
#include "obs/tracer.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

TEST(ConcurrentTelemetryTest, FourEngineServeWithFullTelemetryPlane) {
  const auto suite = make_toy_suite(4, 6'000, /*alu_ops=*/64.0);
  std::vector<std::string> names{"toy0", "toy1", "toy2", "toy3"};
  WorkloadConfig workload;
  workload.num_jobs = 24;
  workload.seed = 314;
  workload.mean_gap = 0;

  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  ServerConfig config;
  config.system = toy_system();
  config.devices = 4;
  config.policy = Policy::kAppAffinity;
  config.queue_depth = 6;
  config.max_retries = 500;
  config.engine = toy_engine_options();
  config.tracer = &tracer;
  config.metrics = &registry;
  config.metrics_prefix = "tele";
  config.prof_window = sim::DurationPs{100'000'000};  // 100 us
  // An impossible latency bound plus a trivially-true rule: the monitor must
  // fire on the first and never on the second.
  config.slo_spec = "p99_ms <= 0.000001; utilization >= 0";

  const ServeReport report =
      run_server(config, make_workload(names, workload), suite);
  ASSERT_EQ(report.completed, 24u);

  // --- per-job breakdown: an exact partition of [submit, finish] ----------
  for (const JobRecord& job : report.jobs) {
    ASSERT_TRUE(job.completed) << "job " << job.spec.id;
    const JobRecord::Breakdown b = job.breakdown();
    EXPECT_EQ(b.total(), job.latency()) << "job " << job.spec.id;
    EXPECT_GE(b.admission, 0) << "job " << job.spec.id;
    EXPECT_GE(b.queue, 0) << "job " << job.spec.id;
    EXPECT_GE(b.staging, 0) << "job " << job.spec.id;
    EXPECT_GT(b.execution, 0) << "job " << job.spec.id;
    EXPECT_GE(b.writeback, 0) << "job " << job.spec.id;
    if (job.warm) EXPECT_EQ(b.staging, 0) << "warm job " << job.spec.id;
  }

  // --- report-level breakdown means sum to the mean latency ---------------
  const double breakdown_sum_ms =
      report.breakdown_admission_ms + report.breakdown_queue_ms +
      report.breakdown_staging_ms + report.breakdown_execution_ms +
      report.breakdown_writeback_ms;
  EXPECT_NEAR(breakdown_sum_ms, report.breakdown_total_ms,
              report.breakdown_total_ms * 1e-9 + 1e-9);
  double latency_sum_ms = 0.0;
  for (const JobRecord& job : report.jobs) {
    latency_sum_ms += static_cast<double>(job.latency()) / 1e9;
  }
  EXPECT_NEAR(report.breakdown_total_ms, latency_sum_ms / 24.0,
              latency_sum_ms * 1e-9 + 1e-9);

  // --- attribution ---------------------------------------------------------
  EXPECT_GE(report.bottleneck_stage, 0);
  EXPECT_LT(report.bottleneck_stage,
            static_cast<std::int32_t>(obs::kStageCount));
  EXPECT_GE(report.overlap_efficiency, 0.0);
  EXPECT_LT(report.overlap_efficiency, 1.0);
  EXPECT_GE(report.prof_windows, 4u);  // every device ran profiled work
  for (const DeviceReport& device : report.devices) {
    EXPECT_GE(device.bottleneck_stage, 0);
    EXPECT_GE(device.prof_windows, 1u);
  }

  // --- sketch percentiles stay ordered ------------------------------------
  EXPECT_GT(report.latency_p50, 0);
  EXPECT_LE(report.latency_p50, report.latency_p95);
  EXPECT_LE(report.latency_p95, report.latency_p99);

  // --- SLO monitor ---------------------------------------------------------
  EXPECT_EQ(report.slo_rules, 2u);
  EXPECT_GE(report.slo_violations, 1u);
  const obs::Counter* violations =
      registry.find_counter("tele.slo.violation");
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->value(), report.slo_violations);
  ASSERT_NE(registry.find_counter("tele.slo.violation.p99_ms"), nullptr);
  // The always-true utilization rule never fires.
  EXPECT_EQ(registry.find_counter("tele.slo.violation.utilization"), nullptr);
  bool slo_instant = false;
  for (const auto& instant : tracer.instants()) {
    if (instant.category == "slo") slo_instant = true;
  }
  EXPECT_TRUE(slo_instant) << "SLO violations left no trace instants";

  // --- exported gauges -----------------------------------------------------
  const auto gauge = [&](const std::string& name) {
    const obs::Gauge* g = registry.find_gauge(name);
    EXPECT_NE(g, nullptr) << "missing gauge " << name;
    return g != nullptr ? g->value() : -1.0;
  };
  EXPECT_GE(gauge("tele.prof.bottleneck_stage"), 0.0);
  EXPECT_GE(gauge("tele.prof.overlap_efficiency"), 0.0);
  EXPECT_GE(gauge("tele.prof.windows"), 4.0);
  gauge("tele.prof.bottleneck_flips");
  gauge("tele.breakdown.admission_ms");
  gauge("tele.breakdown.queue_ms");
  gauge("tele.breakdown.staging_ms");
  gauge("tele.breakdown.execution_ms");
  gauge("tele.breakdown.writeback_ms");
  EXPECT_NEAR(gauge("tele.breakdown.total_ms"), report.breakdown_total_ms,
              1e-12);
  EXPECT_EQ(gauge("tele.slo.rules"), 2.0);
  EXPECT_GE(gauge("tele.slo.violations"), 1.0);
  for (std::uint32_t d = 0; d < 4; ++d) {
    gauge("tele.dev" + std::to_string(d) + ".bottleneck_stage");
  }

  EXPECT_FALSE(tracer.spans().empty());
}

}  // namespace
}  // namespace bigk::serve
