// Validates the committed sample of the bench harness's --metrics-json
// output (bench/sample_metrics.json, regenerated via
//   BIGK_SCALE=0.001 build/bench/table1_datasets \
//       --metrics-json=bench/sample_metrics.json
// ) so the machine-readable schema cannot drift silently.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "json_util.hpp"
#include "obs/stage.hpp"

#ifndef BIGK_SAMPLE_METRICS_JSON
#error "build must define BIGK_SAMPLE_METRICS_JSON"
#endif

namespace bigk {
namespace {

testjson::Value load_sample() {
  std::ifstream in(BIGK_SAMPLE_METRICS_JSON);
  EXPECT_TRUE(in.good()) << "missing " << BIGK_SAMPLE_METRICS_JSON;
  std::ostringstream text;
  text << in.rdbuf();
  return testjson::parse(text.str());
}

TEST(BenchMetricsJson, SampleMatchesSchema) {
  const testjson::Value doc = load_sample();
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kObject);
  EXPECT_FALSE(doc.at("benchmark").str.empty());
  EXPECT_GT(doc.at("scale").number, 0.0);

  const auto& results = doc.at("results").items;
  ASSERT_FALSE(results.empty());
  for (const testjson::Value& entry : results) {
    EXPECT_FALSE(entry.at("name").str.empty());
    const testjson::Value& m = entry.at("metrics");
    EXPECT_FALSE(m.at("scheme").str.empty());
    EXPECT_GT(m.at("total_ms").number, 0.0);
    const double fraction = m.at("comm_fraction").number;
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
    for (const char* key :
         {"comm_busy_ms", "comp_busy_ms", "h2d_bytes", "d2h_bytes",
          "kernel_launches", "pinned_bytes"}) {
      EXPECT_TRUE(m.has(key)) << key;
    }
    // The engine breakdown names every canonical stage.
    const testjson::Value& stages = m.at("engine").at("stage_busy_ms");
    for (obs::Stage stage : obs::all_stages()) {
      EXPECT_TRUE(stages.has(std::string(obs::stage_name(stage))))
          << obs::stage_name(stage);
    }
    // bigkprof attribution summary rides along on every result.
    const testjson::Value& prof = m.at("prof");
    EXPECT_FALSE(prof.at("bottleneck_stage").str.empty());
    EXPECT_GE(prof.at("overlap_efficiency").number, 0.0);
    EXPECT_LT(prof.at("overlap_efficiency").number, 1.0);
    EXPECT_TRUE(prof.has("windows"));
    EXPECT_TRUE(prof.has("bottleneck_flips"));
  }

  // The cross-subsystem counter registry rode along and is non-empty.
  const auto& counters = doc.at("counters").items;
  ASSERT_FALSE(counters.empty());
  bool saw_gpusim = false;
  for (const testjson::Value& counter : counters) {
    EXPECT_FALSE(counter.at("type").str.empty());
    if (counter.at("name").str.rfind("gpusim.", 0) == 0) saw_gpusim = true;
  }
  EXPECT_TRUE(saw_gpusim);
}

}  // namespace
}  // namespace bigk
