// Unit tests for the metrics registry: instrument semantics, get-or-create
// identity, kind-mismatch detection, and the three exporters (validated with
// a real JSON parse, not substring checks).
#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_util.hpp"

namespace bigk::obs {
namespace {

TEST(Counter, AccumulatesMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndPeak) {
  Gauge g;
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Histogram, BucketsWithOverflow) {
  Histogram h({10.0, 100.0});
  h.observe(1.0);
  h.observe(10.0);   // inclusive upper edge -> first bucket
  h.observe(50.0);
  h.observe(1000.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1061.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  a.add(7);
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.size(), 1u);

  Histogram& h1 = registry.histogram("x.hist", {1.0, 2.0});
  Histogram& h2 = registry.histogram("x.hist", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindAndBoundsMismatchThrow) {
  MetricsRegistry registry;
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("name", {1.0}), std::invalid_argument);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, FindReturnsNullForMissing) {
  MetricsRegistry registry;
  registry.counter("c");
  EXPECT_NE(registry.find_counter("c"), nullptr);
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("c"), nullptr);  // wrong kind
  EXPECT_EQ(registry.find_histogram("c"), nullptr);
}

MetricsRegistry& populated(MetricsRegistry& registry) {
  registry.counter("bytes \"quoted\"").add(123);
  registry.gauge("depth").set(2.5);
  registry.histogram("sizes", {10.0, 100.0}).observe(42.0);
  return registry;
}

TEST(MetricsRegistry, JsonlRoundTrips) {
  MetricsRegistry registry;
  populated(registry);
  std::ostringstream out;
  registry.write_jsonl(out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<testjson::Value> parsed;
  while (std::getline(lines, line)) {
    if (!line.empty()) parsed.push_back(testjson::parse(line));
  }
  ASSERT_EQ(parsed.size(), 3u);

  EXPECT_EQ(parsed[0].at("type").str, "counter");
  EXPECT_EQ(parsed[0].at("name").str, "bytes \"quoted\"");  // escaping held
  EXPECT_DOUBLE_EQ(parsed[0].at("value").number, 123.0);

  EXPECT_EQ(parsed[1].at("type").str, "gauge");
  EXPECT_DOUBLE_EQ(parsed[1].at("value").number, 2.5);

  EXPECT_EQ(parsed[2].at("type").str, "histogram");
  EXPECT_DOUBLE_EQ(parsed[2].at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(parsed[2].at("sum").number, 42.0);
  const auto& buckets = parsed[2].at("buckets").items;
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_DOUBLE_EQ(buckets[0].at("le").number, 10.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").number, 0.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("count").number, 1.0);
  EXPECT_EQ(buckets[2].at("le").str, "inf");
}

TEST(MetricsRegistry, JsonArrayParsesAndPreservesOrder) {
  MetricsRegistry registry;
  populated(registry);
  std::ostringstream out;
  registry.write_json_array(out);
  const testjson::Value doc = testjson::parse(out.str());
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kArray);
  ASSERT_EQ(doc.items.size(), 3u);
  EXPECT_EQ(doc.items[0].at("type").str, "counter");
  EXPECT_EQ(doc.items[1].at("name").str, "depth");
  EXPECT_EQ(doc.items[2].at("type").str, "histogram");
}

TEST(MetricsRegistry, CsvHasHeaderAndBucketRows) {
  MetricsRegistry registry;
  populated(registry);
  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "type,name,value,count,sum,min,max,bucket_le,bucket_count");
  std::vector<std::string> rows;
  while (std::getline(lines, line)) {
    if (!line.empty()) rows.push_back(line);
  }
  // counter + gauge + histogram summary + 3 bucket rows (2 bounds + inf).
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[3], "histogram.bucket,sizes,,,,,,10,0");
  EXPECT_EQ(rows[4], "histogram.bucket,sizes,,,,,,100,1");
  EXPECT_EQ(rows[5], "histogram.bucket,sizes,,,,,,inf,0");
}

TEST(MetricsRegistry, EmptyExports) {
  MetricsRegistry registry;
  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  EXPECT_TRUE(jsonl.str().empty());
  std::ostringstream array;
  registry.write_json_array(array);
  const testjson::Value doc = testjson::parse(array.str());
  EXPECT_EQ(doc.kind, testjson::Value::Kind::kArray);
  EXPECT_TRUE(doc.items.empty());
}

}  // namespace
}  // namespace bigk::obs
