// Tests for the unified tracer: stable track registration, the Chrome-
// tracing writer (validated with a real JSON parse), counter accumulation,
// and a full-stack integration run asserting the invariants the timeline
// relies on — spans from every subsystem, no overlap within a thread row,
// and per-stage span durations exactly matching the engine's busy metrics.
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "json_util.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/stage.hpp"
#include "sim/simulation.hpp"

namespace bigk::obs {
namespace {

TEST(Tracer, RegistrationIsStableAndGetOrCreate) {
  Tracer tracer;
  const std::uint32_t pcie = tracer.process("pcie");
  const std::uint32_t gpu = tracer.process("gpu");
  EXPECT_NE(pcie, gpu);
  EXPECT_EQ(tracer.process("pcie"), pcie);
  EXPECT_EQ(tracer.process_name(pcie), "pcie");

  const TrackId h2d = tracer.thread(pcie, "h2d link");
  const TrackId d2h = tracer.thread(pcie, "d2h link");
  EXPECT_EQ(h2d.pid, pcie);
  EXPECT_NE(h2d.tid, d2h.tid);
  const TrackId again = tracer.track("pcie", "h2d link");
  EXPECT_EQ(again.pid, h2d.pid);
  EXPECT_EQ(again.tid, h2d.tid);
}

TEST(Tracer, NamedBusySumsSpanDurations) {
  Tracer tracer;
  const TrackId t = tracer.track("p", "t");
  tracer.complete(t, "work", 100, 250);
  tracer.complete(t, "work", 300, 400);
  tracer.complete(t, "other", 0, 1000);
  EXPECT_EQ(tracer.named_busy("work"), 250u);
  EXPECT_EQ(tracer.named_busy("other"), 1000u);
  EXPECT_EQ(tracer.named_busy("missing"), 0u);
}

TEST(Tracer, EmptyWritesEmptyArray) {
  Tracer tracer;
  EXPECT_TRUE(tracer.empty());
  std::ostringstream out;
  tracer.write_chrome_json(out);
  EXPECT_EQ(out.str(), "[\n]\n");
}

TEST(Tracer, WriterEmitsMetadataSpansInstantsAndEscapes) {
  Tracer tracer;
  const TrackId t = tracer.track("proc \"A\"", "thread\n1");
  tracer.complete(t, "span", 1'000'000, 3'000'000, "cat",
                  {{"bytes", 42.0}});
  tracer.instant(t, "tick", 2'000'000);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const testjson::Value doc = testjson::parse(out.str());
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kArray);

  // Metadata first: a process_name and a thread_name record with the
  // original (unescaped-after-parse) names.
  ASSERT_GE(doc.items.size(), 4u);
  EXPECT_EQ(doc.items[0].at("ph").str, "M");
  EXPECT_EQ(doc.items[0].at("name").str, "process_name");
  EXPECT_EQ(doc.items[0].at("args").at("name").str, "proc \"A\"");
  bool thread_meta = false;
  for (const auto& event : doc.items) {
    if (event.at("ph").str == "M" && event.at("name").str == "thread_name" &&
        event.at("args").at("name").str == "thread\n1") {
      thread_meta = true;
    }
  }
  EXPECT_TRUE(thread_meta);

  bool span = false, instant = false;
  for (const auto& event : doc.items) {
    if (event.at("ph").str == "X") {
      span = true;
      EXPECT_EQ(event.at("name").str, "span");
      EXPECT_EQ(event.at("cat").str, "cat");
      EXPECT_NEAR(event.at("ts").number, 1.0, 1e-9);   // 1e6 ps = 1 us
      EXPECT_NEAR(event.at("dur").number, 2.0, 1e-9);
      EXPECT_DOUBLE_EQ(event.at("args").at("bytes").number, 42.0);
    }
    if (event.at("ph").str == "i") instant = true;
  }
  EXPECT_TRUE(span);
  EXPECT_TRUE(instant);
}

TEST(Tracer, CounterSamplesAccumulateSortedByTime) {
  Tracer tracer;
  const std::uint32_t pid = tracer.process("dma");
  tracer.counter_add(pid, "queue depth", 100'000'000, 1.0);
  tracer.counter_add(pid, "queue depth", 300'000'000, -1.0);
  tracer.counter_add(pid, "queue depth", 200'000'000, 1.0);  // out of order
  EXPECT_EQ(tracer.counter_track_count(), 1u);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const testjson::Value doc = testjson::parse(out.str());
  std::vector<std::pair<double, double>> samples;  // (ts, value)
  for (const auto& event : doc.items) {
    if (event.at("ph").str == "C") {
      samples.emplace_back(event.at("ts").number,
                           event.at("args").at("value").number);
    }
  }
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(samples[0].second, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].second, 2.0);  // cumulative
  EXPECT_DOUBLE_EQ(samples[2].second, 1.0);
}

// ---------------------------------------------------------------------------
// Full-stack integration
// ---------------------------------------------------------------------------

struct SumKernel {
  core::StreamRef<std::uint64_t> s;
  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t b, std::uint64_t e,
                  std::uint64_t stride) const {
    for (std::uint64_t r = b; r < e; r += stride) {
      const auto a = ctx.read(s, r * 4);
      const auto c = ctx.read(s, r * 4 + 1);
      ctx.write(s, r * 4 + 3, a + c);
    }
  }
};

class TracedEngineRun : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.gpu.global_memory_bytes = 8 << 20;
    runtime_ = std::make_unique<cusim::Runtime>(sim_, config_);
    runtime_->attach_observability(&tracer_, &metrics_);

    host_.resize(kRecords * 4);
    for (std::uint64_t i = 0; i < host_.size(); ++i) host_[i] = i;

    core::Options options;
    options.num_blocks = 4;
    options.compute_threads_per_block = 64;
    options.data_buf_bytes = 32 << 10;
    engine_ = std::make_unique<core::Engine>(*runtime_, options);
    engine_->set_tracer(&tracer_);

    auto stream = engine_->streaming_map<std::uint64_t>(
        std::span(host_), core::AccessMode::kReadWrite, 4, 2, 1);
    SumKernel kernel{stream};
    core::TableSet tables;

    sim_.run_until_complete(
        [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
           SumKernel k) -> sim::Task<> {
          core::DeviceTables device =
              co_await core::DeviceTables::upload(rt, tbl);
          co_await eng.launch(k, kRecords, device);
        }(*runtime_, *engine_, tables, kernel));
  }

  static constexpr std::uint64_t kRecords = 10'000;
  sim::Simulation sim_;
  gpusim::SystemConfig config_;
  std::unique_ptr<cusim::Runtime> runtime_;
  Tracer tracer_;
  MetricsRegistry metrics_;
  std::vector<std::uint64_t> host_;
  std::unique_ptr<core::Engine> engine_;
};

TEST_F(TracedEngineRun, SpansCoverAllSubsystemsWithCounters) {
  std::set<std::string> span_processes;
  for (const SpanEvent& span : tracer_.spans()) {
    span_processes.insert(std::string(tracer_.process_name(span.track.pid)));
  }
  // The four non-engine subsystems, by their registered process names.
  EXPECT_TRUE(span_processes.count("pcie")) << "PCIe link spans missing";
  EXPECT_TRUE(span_processes.count("gpu")) << "SM compute spans missing";
  EXPECT_TRUE(span_processes.count("host")) << "host core/bus spans missing";
  EXPECT_TRUE(span_processes.count("DMA streams")) << "stream op spans missing";
  // Plus one engine process per block.
  std::size_t engine_processes = 0;
  for (const std::string& name : span_processes) {
    if (name.rfind("engine block ", 0) == 0) ++engine_processes;
  }
  EXPECT_EQ(engine_processes, 4u);

  EXPECT_GE(tracer_.counter_track_count(), 3u)
      << "expected queue depth, bytes in flight, and active blocks tracks";
  EXPECT_FALSE(tracer_.instants().empty()) << "signal-flag instants missing";

  // Registry counters fed by the same run.
  EXPECT_GT(metrics_.counter("gpusim.h2d_bytes").value(), 0u);
  EXPECT_GT(metrics_.counter("hostsim.cache_misses").value(), 0u);
  EXPECT_EQ(metrics_.counter("gpusim.kernel_launches").value(), 1u);
}

TEST_F(TracedEngineRun, SpansNeverOverlapWithinAThreadRow) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<SpanEvent>>
      by_track;
  for (const SpanEvent& span : tracer_.spans()) {
    EXPECT_LE(span.begin, span.end);
    by_track[{span.track.pid, span.track.tid}].push_back(span);
  }
  for (auto& [track, spans] : by_track) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].begin, spans[i - 1].end)
          << "overlap on " << tracer_.process_name(track.first) << " tid "
          << track.second << " between \"" << spans[i - 1].name << "\" and \""
          << spans[i].name << "\"";
    }
  }
}

TEST_F(TracedEngineRun, StageSpanDurationsMatchEngineBusyMetrics) {
  const core::EngineMetrics& metrics = engine_->metrics();
  ASSERT_GT(metrics.chunks, 0u);
  for (Stage stage : all_stages()) {
    EXPECT_EQ(tracer_.named_busy(stage_name(stage)), metrics.stage_busy(stage))
        << "stage " << stage_name(stage);
  }
}

TEST_F(TracedEngineRun, ChromeJsonOutputParses) {
  std::ostringstream out;
  tracer_.write_chrome_json(out);
  const testjson::Value doc = testjson::parse(out.str());
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kArray);
  EXPECT_GT(doc.items.size(), 100u);
  std::size_t meta = 0, spans = 0, counters = 0;
  for (const auto& event : doc.items) {
    const std::string& ph = event.at("ph").str;
    if (ph == "M") ++meta;
    if (ph == "X") ++spans;
    if (ph == "C") ++counters;
  }
  EXPECT_GT(meta, 0u);
  EXPECT_EQ(spans, tracer_.spans().size());
  EXPECT_GT(counters, 0u);
}

}  // namespace
}  // namespace bigk::obs
