// Tests for the CUDA-like runtime: copies, streams, in-order DMA semantics,
// and pinned-memory tracking.
#include "cusim/runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace bigk::cusim {
namespace {

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  return config;
}

TEST(RuntimeTest, SyncCopiesRoundTrip) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(256);
  std::vector<int> source(256);
  std::iota(source.begin(), source.end(), 0);
  std::vector<int> sink(256, -1);
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            std::vector<int>& src,
                            std::vector<int>& dst) -> sim::Task<> {
    co_await rt.memcpy_h2d<int>(d, src);
    co_await rt.memcpy_d2h<int>(dst, d);
  }(runtime, device, source, sink));
  EXPECT_EQ(sink, source);
  EXPECT_GT(sim.now(), 0u);
}

TEST(RuntimeTest, PinnedBytesAreTracked) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto buffer = runtime.alloc_pinned<double>(1000);
  EXPECT_EQ(runtime.pinned_bytes(), 8000u);
  EXPECT_EQ(buffer.size(), 1000u);
  EXPECT_GT(buffer.region_id(), 0u);
}

TEST(RuntimeTest, RegionIdsAreUnique) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto a = runtime.alloc_pinned<int>(1);
  auto b = runtime.alloc_pinned<int>(1);
  EXPECT_NE(a.region_id(), b.region_id());
}

TEST(StreamTest, AsyncCopyCompletesAfterSynchronize) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(64);
  auto host = runtime.alloc_pinned<int>(64);
  for (std::uint64_t i = 0; i < 64; ++i) host[i] = static_cast<int>(i * 3);
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            PinnedBuffer<int>& h) -> sim::Task<> {
    Stream stream = rt.create_stream();
    stream.memcpy_h2d_async(d.byte_offset, h.data(), h.size_bytes());
    co_await stream.synchronize();
    EXPECT_EQ(rt.gpu().memory().read(d, 10), 30);
  }(runtime, device, host));
}

TEST(StreamTest, DataVisibleOnlyAfterTransferCompletes) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(1);
  runtime.gpu().memory().write(device, 0, 7);
  auto host = runtime.alloc_pinned<int>(1);
  host[0] = 42;
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            PinnedBuffer<int>& h) -> sim::Task<> {
    Stream stream = rt.create_stream();
    stream.memcpy_h2d_async(d.byte_offset, h.data(), h.size_bytes());
    // Before any await the copy has not been performed.
    EXPECT_EQ(rt.gpu().memory().read(d, 0), 7);
    co_await stream.synchronize();
    EXPECT_EQ(rt.gpu().memory().read(d, 0), 42);
  }(runtime, device, host));
}

TEST(StreamTest, FlagSignalsAfterPrecedingData) {
  // The §IV.C trick: enqueue data then a flag; a consumer woken by the flag
  // must observe the data already in device memory.
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(1024);
  auto host = runtime.alloc_pinned<int>(1024);
  for (std::uint64_t i = 0; i < 1024; ++i) host[i] = 5;
  sim::Flag ready(sim);
  bool checked = false;

  sim.spawn([](Runtime& rt, sim::Flag& f, gpusim::DevicePtr<int> d,
               bool& out) -> sim::Task<> {
    co_await f.wait_ge(1);
    EXPECT_EQ(rt.gpu().memory().read(d, 1023), 5);
    out = true;
  }(runtime, ready, device, checked));

  Stream stream = runtime.create_stream();
  stream.memcpy_h2d_async(device.byte_offset, host.data(), host.size_bytes());
  stream.signal_flag(ready, 1);
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(StreamTest, ChunkedCopyFlagSequenceObservesEachChunkInOrder) {
  // The pipeline's per-chunk protocol: data_i then flag=i+1 on one stream.
  // A consumer woken by flag i+1 must see chunk i landed, and must NOT yet
  // see chunk i+1 (its DMA is still occupying the in-order link).
  sim::Simulation sim;
  gpusim::SystemConfig config = small_config();
  config.pcie.h2d_gbps = 1.0;  // slow link so the ordering is visible
  config.pcie.transfer_latency = 0;
  Runtime runtime(sim, config);
  const std::uint64_t n = 64 << 10;  // ints per chunk: 256 KiB
  auto device = runtime.device_malloc<int>(2 * n);
  auto host = runtime.alloc_pinned<int>(2 * n);
  for (std::uint64_t i = 0; i < 2 * n; ++i) host[i] = i < n ? 1 : 2;
  sim::Flag ready(sim);
  std::vector<sim::TimePs> seen(2, 0);

  sim.spawn([](Runtime& rt, sim::Flag& f, gpusim::DevicePtr<int> d,
               std::uint64_t count,
               std::vector<sim::TimePs>& at) -> sim::Task<> {
    co_await f.wait_ge(1);
    EXPECT_EQ(rt.gpu().memory().read(d, count - 1), 1);      // chunk 0 landed
    EXPECT_EQ(rt.gpu().memory().read(d, 2 * count - 1), 0);  // chunk 1 not yet
    at[0] = rt.sim().now();
    co_await f.wait_ge(2);
    EXPECT_EQ(rt.gpu().memory().read(d, 2 * count - 1), 2);
    at[1] = rt.sim().now();
  }(runtime, ready, device, n, seen));

  Stream stream = runtime.create_stream();
  stream.memcpy_h2d_async(device.byte_offset, host.data(), n * sizeof(int));
  stream.signal_flag(ready, 1);
  stream.memcpy_h2d_async(device.byte_offset + n * sizeof(int),
                          host.data() + n, n * sizeof(int));
  stream.signal_flag(ready, 2);
  sim.run();

  // Each wake-up is gated by its chunk's full transfer time at 1 GB/s.
  EXPECT_GE(seen[0], sim::transfer_time(n * sizeof(int), 1.0));
  EXPECT_GE(seen[1], seen[0] + sim::transfer_time(n * sizeof(int), 1.0));
}

TEST(StreamTest, OpsOnOneStreamAreOrdered) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(1);
  auto host_a = runtime.alloc_pinned<int>(1);
  auto host_b = runtime.alloc_pinned<int>(1);
  host_a[0] = 1;
  host_b[0] = 2;
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            PinnedBuffer<int>& a,
                            PinnedBuffer<int>& b) -> sim::Task<> {
    Stream stream = rt.create_stream();
    stream.memcpy_h2d_async(d.byte_offset, a.data(), 4);
    stream.memcpy_h2d_async(d.byte_offset, b.data(), 4);
    co_await stream.synchronize();
    EXPECT_EQ(rt.gpu().memory().read(d, 0), 2);  // second write wins
  }(runtime, device, host_a, host_b));
}

TEST(StreamTest, D2HCopiesDeviceResults) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(16);
  for (std::uint64_t i = 0; i < 16; ++i) {
    runtime.gpu().memory().write(device, i, static_cast<int>(100 + i));
  }
  auto host = runtime.alloc_pinned<int>(16);
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            PinnedBuffer<int>& h) -> sim::Task<> {
    Stream stream = rt.create_stream();
    stream.memcpy_d2h_async(h.data(), d.byte_offset, 16 * sizeof(int));
    co_await stream.synchronize();
  }(runtime, device, host));
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(host[i], static_cast<int>(100 + i));
  }
}

TEST(StreamTest, TwoStreamsShareTheLinkFifo) {
  sim::Simulation sim;
  gpusim::SystemConfig config = small_config();
  config.pcie.h2d_gbps = 1.0;  // slow link to make serialization visible
  config.pcie.transfer_latency = 0;
  Runtime runtime(sim, config);
  auto device = runtime.device_malloc<std::byte>(512 << 10);
  auto host = runtime.alloc_pinned<std::byte>(512 << 10);
  Stream s1 = runtime.create_stream();
  Stream s2 = runtime.create_stream();
  const std::uint64_t half = 256 << 10;
  s1.memcpy_h2d_async(device.byte_offset, host.data(), half);
  s2.memcpy_h2d_async(device.byte_offset + half, host.data() + half, half);
  sim.spawn([](Stream& a, Stream& b) -> sim::Task<> {
    co_await a.synchronize();
    co_await b.synchronize();
  }(s1, s2));
  sim.run();
  // Total bytes at 1 GB/s: both transfers serialized on the one link.
  EXPECT_GE(sim.now(), sim::transfer_time(512 << 10, 1.0));
}


TEST(DevicePropertiesTest, MirrorsGpuConfig) {
  sim::Simulation sim;
  gpusim::SystemConfig config = small_config();
  config.gpu.num_sms = 8;
  config.gpu.warp_size = 32;
  Runtime runtime(sim, config);
  const DeviceProperties props = runtime.device_properties();
  EXPECT_EQ(props.multi_processor_count, 8u);
  EXPECT_EQ(props.warp_size, 32u);
  EXPECT_EQ(props.total_global_mem, config.gpu.global_memory_bytes);
  EXPECT_EQ(props.shared_mem_per_multiprocessor,
            config.gpu.shared_mem_per_sm_bytes);
  EXPECT_GT(props.clock_ghz, 0.0);
}

TEST(EventTest, RecordsCompletionOfPrecedingWork) {
  sim::Simulation sim;
  gpusim::SystemConfig config = small_config();
  config.pcie.h2d_gbps = 1.0;  // slow link so the copy takes visible time
  config.pcie.transfer_latency = 0;
  Runtime runtime(sim, config);
  auto device = runtime.device_malloc<std::byte>(256 << 10);
  auto host = runtime.alloc_pinned<std::byte>(256 << 10);
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<std::byte> d,
                            PinnedBuffer<std::byte>& h) -> sim::Task<> {
    Stream stream = rt.create_stream();
    Event event(rt.sim());
    stream.memcpy_h2d_async(d.byte_offset, h.data(), h.size_bytes());
    event.record(stream);
    EXPECT_FALSE(event.query());
    co_await event.synchronize();
    EXPECT_TRUE(event.query());
    // 256 KiB at 1 GB/s = 256 us.
    EXPECT_GE(rt.sim().now(), sim::transfer_time(256 << 10, 1.0));
  }(runtime, device, host));
}

TEST(EventTest, ReRecordingMovesTheMarker) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  auto device = runtime.device_malloc<int>(64);
  auto host = runtime.alloc_pinned<int>(64);
  sim.run_until_complete([](Runtime& rt, gpusim::DevicePtr<int> d,
                            PinnedBuffer<int>& h) -> sim::Task<> {
    Stream stream = rt.create_stream();
    Event event(rt.sim());
    event.record(stream);
    co_await event.synchronize();  // empty stream: immediate
    stream.memcpy_h2d_async(d.byte_offset, h.data(), h.size_bytes());
    event.record(stream);
    EXPECT_FALSE(event.query());
    co_await event.synchronize();
    EXPECT_TRUE(event.query());
  }(runtime, device, host));
}

}  // namespace
}  // namespace bigk::cusim
