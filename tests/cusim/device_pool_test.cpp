#include "cusim/device_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace bigk::cusim {
namespace {

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 2 << 20;
  return config;
}

TEST(DevicePoolTest, BuildsNamedDevicesSharingOneCpu) {
  sim::Simulation sim;
  DevicePool pool(sim, small_config(), 3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.device(0).device_name(), "dev0");
  EXPECT_EQ(pool.device(2).device_name(), "dev2");
  EXPECT_EQ(pool.device(1).trace_prefix(), "dev1 ");
  // All devices share the pool's host CPU (the contention point).
  EXPECT_EQ(&pool.device(0).cpu(), &pool.cpu());
  EXPECT_EQ(&pool.device(1).cpu(), &pool.cpu());
  EXPECT_EQ(&pool.device(2).cpu(), &pool.cpu());
}

TEST(DevicePoolTest, AtLeastOneDevice) {
  sim::Simulation sim;
  DevicePool pool(sim, small_config(), 0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(DevicePoolTest, DeviceArenasAreIndependent) {
  sim::Simulation sim;
  DevicePool pool(sim, small_config(), 2);
  const std::uint64_t free_before = pool.device(1).gpu().memory().free_bytes();
  pool.device(0).gpu().memory().allocate_bytes(256 << 10);
  EXPECT_EQ(pool.device(1).gpu().memory().free_bytes(), free_before);
  EXPECT_LT(pool.device(0).gpu().memory().free_bytes(), free_before);
}

TEST(DevicePoolTest, TransfersOnDistinctDevicesOverlap) {
  const std::uint64_t bytes = 512 << 10;
  const auto run = [&](std::uint32_t devices) {
    sim::Simulation sim;
    DevicePool pool(sim, small_config(), devices);
    std::vector<std::vector<std::byte>> sources(
        devices, std::vector<std::byte>(bytes));
    for (std::uint32_t d = 0; d < devices; ++d) {
      Runtime& device = pool.device(d);
      const std::uint64_t offset = device.gpu().memory().allocate_bytes(bytes);
      sim.spawn([](Runtime& rt, std::uint64_t dst,
                   std::vector<std::byte>& src) -> sim::Task<> {
        co_await rt.memcpy_h2d_bytes(dst, src);
      }(device, offset, sources[d]));
    }
    sim.run();
    return sim.now();
  };
  const sim::TimePs one = run(1);
  const sim::TimePs four = run(4);
  // Each device has its own PCIe link: four concurrent copies finish in the
  // same wall time as one (no shared-link serialization).
  EXPECT_EQ(four, one);
}

TEST(DevicePoolTest, AggregatesStatsAcrossDevices) {
  sim::Simulation sim;
  DevicePool pool(sim, small_config(), 2);
  const std::uint64_t bytes = 64 << 10;
  std::vector<std::byte> source(bytes);
  for (std::uint32_t d = 0; d < 2; ++d) {
    Runtime& device = pool.device(d);
    const std::uint64_t offset = device.gpu().memory().allocate_bytes(bytes);
    sim.spawn([](Runtime& rt, std::uint64_t dst,
                 std::vector<std::byte>& src) -> sim::Task<> {
      co_await rt.memcpy_h2d_bytes(dst, src);
    }(device, offset, source));
  }
  sim.run();
  EXPECT_EQ(pool.total_h2d_bytes(), 2 * bytes);
  EXPECT_EQ(pool.device(0).gpu().stats().h2d_bytes, bytes);
  EXPECT_EQ(pool.total_d2h_bytes(), 0u);
}

TEST(DevicePoolTest, ObservabilityUsesPerDevicePrefixes) {
  sim::Simulation sim;
  DevicePool pool(sim, small_config(), 2);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  pool.attach_observability(&tracer, &metrics);

  const std::uint64_t bytes = 64 << 10;
  std::vector<std::byte> source(bytes);
  Runtime& dev1 = pool.device(1);
  const std::uint64_t offset = dev1.gpu().memory().allocate_bytes(bytes);
  sim.spawn([](Runtime& rt, std::uint64_t dst,
               std::vector<std::byte>& src) -> sim::Task<> {
    co_await rt.memcpy_h2d_bytes(dst, src);
  }(dev1, offset, source));
  sim.run();

  bool saw_dev1_pcie = false;
  for (const obs::SpanEvent& span : tracer.spans()) {
    if (tracer.process_name(span.track.pid) == "dev1 pcie") {
      saw_dev1_pcie = true;
    }
    // No span may land on an unprefixed device row: every device of a pool
    // is namespaced, only the shared host keeps its plain name.
    EXPECT_NE(tracer.process_name(span.track.pid), "pcie");
  }
  EXPECT_TRUE(saw_dev1_pcie);
}

TEST(DevicePoolTest, StandAloneRuntimeKeepsLegacyTraceNames) {
  sim::Simulation sim;
  Runtime runtime(sim, small_config());
  EXPECT_EQ(runtime.device_name(), "");
  EXPECT_EQ(runtime.trace_prefix(), "");
}

}  // namespace
}  // namespace bigk::cusim
