// Seeded-violation tests for the warp/block data-race detector: conflicting
// access pairs are fed both directly (exact control over warp/epoch) and
// through a real gpusim kernel launch (end-to-end wiring). Clean patterns —
// barrier-separated phases, atomics, same-warp accesses, synthetic trace
// addresses — must stay silent.
#include "check/racecheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "check/options.hpp"
#include "check/report.hpp"
#include "gpusim/gpu.hpp"
#include "gpusim/warp_trace.hpp"
#include "sim/simulation.hpp"

namespace bigk::check {
namespace {

constexpr std::uint8_t kRead = 0;
constexpr std::uint8_t kWrite = gpusim::WarpTracer::kFlagWrite;
constexpr std::uint8_t kAtomic =
    gpusim::WarpTracer::kFlagWrite | gpusim::WarpTracer::kFlagAtomic;
constexpr std::uint8_t kSynthetic = gpusim::WarpTracer::kFlagSynthetic;

struct Fixture {
  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter{options};
  RaceChecker checker{reporter};

  explicit Fixture(std::uint32_t num_blocks = 2) {
    checker.on_kernel_begin(num_blocks);
  }
};

TEST(RaceCheckerTest, CrossWarpWriteWriteRaceIsDiagnosed) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 5, 0x1000, 8, kWrite);
  f.checker.on_warp_access(0, 1, 7, 0x1000, 8, kWrite);
  ASSERT_EQ(f.reporter.total(), 1u);
  const Violation& violation = f.reporter.recorded().front();
  EXPECT_EQ(violation.checker, "racecheck");
  EXPECT_EQ(violation.kind, "write_write_race");
  EXPECT_EQ(violation.offset, 0x1000);
  EXPECT_EQ(violation.block, 0);
  EXPECT_EQ(violation.warp, 1);
  EXPECT_EQ(violation.lane, 7);
  EXPECT_NE(violation.message.find("no barrier in between"), std::string::npos)
      << violation.message;
}

TEST(RaceCheckerTest, ReadThenWriteFromAnotherWarpRaces) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x2000, 8, kRead);
  f.checker.on_warp_access(0, 1, 1, 0x2000, 8, kWrite);
  ASSERT_EQ(f.reporter.total(), 1u);
  EXPECT_EQ(f.reporter.recorded().front().kind, "read_write_race");
}

TEST(RaceCheckerTest, WriteThenReadFromAnotherWarpRaces) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x2000, 8, kWrite);
  f.checker.on_warp_access(0, 1, 1, 0x2000, 8, kRead);
  ASSERT_EQ(f.reporter.total(), 1u);
  EXPECT_EQ(f.reporter.recorded().front().kind, "read_write_race");
}

TEST(RaceCheckerTest, BarrierSeparatesSameBlockAccesses) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x3000, 8, kWrite);
  f.checker.on_barrier(0);
  f.checker.on_warp_access(0, 1, 0, 0x3000, 8, kWrite);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(RaceCheckerTest, BarrierDoesNotOrderDifferentBlocks) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x4000, 8, kWrite);
  f.checker.on_barrier(0);
  f.checker.on_barrier(1);
  f.checker.on_warp_access(1, 0, 0, 0x4000, 8, kWrite);
  ASSERT_EQ(f.reporter.total(), 1u);
  EXPECT_NE(f.reporter.recorded().front().message.find("different block"),
            std::string::npos);
}

TEST(RaceCheckerTest, AtomicsAreExempt) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x5000, 8, kAtomic);
  f.checker.on_warp_access(0, 1, 0, 0x5000, 8, kAtomic);
  f.checker.on_warp_access(1, 0, 0, 0x5000, 8, kAtomic);
  // Reading a value other warps accumulate into is deliberate, not a race.
  f.checker.on_warp_access(0, 2, 0, 0x5000, 8, kRead);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(RaceCheckerTest, SameWarpAccessesNeverRace) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x6000, 8, kWrite);
  f.checker.on_warp_access(0, 0, 31, 0x6000, 8, kWrite);
  f.checker.on_warp_access(0, 0, 1, 0x6000, 8, kRead);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(RaceCheckerTest, SyntheticTraceAddressesAreSkipped) {
  // UVM-style traced-but-not-materialized accesses carry kFlagSynthetic.
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x7000, 8, kWrite | kSynthetic);
  f.checker.on_warp_access(0, 1, 0, 0x7000, 8, kWrite | kSynthetic);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(RaceCheckerTest, DisjointAddressesDoNotFalsePositive) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0x8000, 8, kWrite);
  f.checker.on_warp_access(0, 1, 0, 0x8008, 8, kWrite);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(RaceCheckerTest, OneReportPerAddress) {
  Fixture f;
  for (std::uint32_t warp = 0; warp < 8; ++warp) {
    f.checker.on_warp_access(0, warp, 0, 0x9000, 8, kWrite);
  }
  EXPECT_EQ(f.reporter.total(), 1u);
}

TEST(RaceCheckerTest, KernelBoundaryResetsState) {
  Fixture f;
  f.checker.on_warp_access(0, 0, 0, 0xA000, 8, kWrite);
  f.checker.on_kernel_end();
  f.checker.on_kernel_begin(2);
  // A different launch: no ordering claim needed, the state is simply gone.
  f.checker.on_warp_access(0, 1, 0, 0xA000, 8, kWrite);
  EXPECT_EQ(f.reporter.total(), 0u);
}

// --- end-to-end: the detector fed by a real simulated kernel --------------

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 1 << 20;
  return config;
}

TEST(RaceCheckerGpuTest, ConflictingStoresInOneLaunchAreCaught) {
  sim::Simulation sim;
  gpusim::Gpu gpu(sim, small_config());
  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter(options);
  RaceChecker checker(reporter);
  gpu.set_access_observer(&checker);

  auto cell = gpu.memory().allocate<std::uint64_t>(1);
  gpusim::KernelLaunch launch;
  launch.num_blocks = 1;
  launch.threads_per_block = 64;  // two warps of 32
  sim.run_until_complete(gpu.run_simple_kernel(
      launch, [&](gpusim::LaneCtx& lane, std::uint32_t tid) {
        // Lane 0 of each warp stores to the same cell: cross-warp WW race.
        if (tid % 32 == 0) lane.store(cell, 0, std::uint64_t{tid});
      }));

  ASSERT_GE(reporter.total(), 1u);
  const Violation& violation = reporter.recorded().front();
  EXPECT_EQ(violation.kind, "write_write_race");
  EXPECT_EQ(violation.offset, static_cast<std::int64_t>(cell.byte_offset));
  EXPECT_EQ(violation.block, 0);
}

TEST(RaceCheckerGpuTest, BarrierSeparatedPhasesRunClean) {
  sim::Simulation sim;
  gpusim::Gpu gpu(sim, small_config());
  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter(options);
  RaceChecker checker(reporter);
  gpu.set_access_observer(&checker);

  auto cell = gpu.memory().allocate<std::uint64_t>(1);
  gpusim::KernelLaunch launch;
  launch.num_blocks = 1;
  launch.threads_per_block = 64;
  sim.run_until_complete(
      gpu.run_kernel(launch, [&](gpusim::BlockCtx& block) -> sim::Task<> {
        co_await block.run_threads(0, 32,
                                   [&](gpusim::LaneCtx& lane, std::uint32_t t) {
                                     if (t == 0) {
                                       lane.store(cell, 0, std::uint64_t{1});
                                     }
                                   });
        co_await block.sync_overhead();  // bar.red: orders the two phases
        co_await block.run_threads(32, 32,
                                   [&](gpusim::LaneCtx& lane, std::uint32_t t) {
                                     if (t == 32) {
                                       lane.store(cell, 0, std::uint64_t{2});
                                     }
                                   });
      }));
  EXPECT_EQ(reporter.total(), 0u);
}

}  // namespace
}  // namespace bigk::check
