// Unit tests for the pipeline-ordering checker, driven with the exact event
// sequences the engine emits: a clean flag-after-data protocol round-trip and
// each protocol violation, precisely attributed to (block, chunk, slot) and,
// for coverage violations, (stream, virtual thread).
#include "check/pipecheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/options.hpp"
#include "check/report.hpp"

namespace bigk::check {
namespace {

struct Fixture {
  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter{options};
  PipelineChecker checker{reporter};

  // 2 blocks x ring depth 2, 2 virtual threads, 1 stream.
  Fixture() { checker.begin_launch(2, 2, 2, 1); }

  /// One healthy chunk round-trip through every stage event.
  void clean_chunk(std::uint32_t block, std::uint64_t chunk) {
    checker.on_slot_acquire(block, chunk);
    checker.on_addr_counts(block, chunk, 0, {4, 4});
    checker.on_assembly_begin(block, chunk);
    checker.on_compute_begin(block, chunk, chunk + 1);
    for (std::uint32_t thread = 0; thread < 2; ++thread) {
      for (std::uint64_t k = 0; k < 4; ++k) {
        checker.on_compute_read(block, chunk, 0, thread, k);
      }
    }
    checker.on_slot_release(block, chunk);
  }

  const Violation& only() {
    EXPECT_EQ(reporter.total(), 1u);
    return reporter.recorded().front();
  }
};

TEST(PipelineCheckerTest, CleanProtocolReportsNothing) {
  Fixture f;
  for (std::uint64_t chunk = 0; chunk < 6; ++chunk) {
    f.clean_chunk(0, chunk);
    f.clean_chunk(1, chunk);
  }
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(PipelineCheckerTest, ReacquiringABusySlotIsAnOverrun) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  // Chunk 2 maps to the same ring slot (depth 2) while chunk 0 never
  // released it.
  f.checker.on_slot_acquire(0, 2);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.checker, "pipecheck");
  EXPECT_EQ(violation.kind, "slot_overrun");
  EXPECT_EQ(violation.block, 0);
  EXPECT_EQ(violation.chunk, 2);
  EXPECT_EQ(violation.slot, 0);
  EXPECT_NE(violation.message.find("chunk 0"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, ReleasedSlotCanBeReacquired) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_slot_release(0, 0);
  f.checker.on_slot_acquire(0, 2);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(PipelineCheckerTest, AssemblyIntoAForeignSlotIsAnOverwrite) {
  Fixture f;
  f.checker.on_slot_acquire(0, 2);  // slot 0 now owned by chunk 2
  f.checker.on_assembly_begin(0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "assembly_overwrite");
  EXPECT_EQ(violation.block, 0);
  EXPECT_EQ(violation.chunk, 0);
  EXPECT_NE(violation.message.find("owned by chunk 2"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, ComputeBeforeDataReadyFlagIsFlagged) {
  Fixture f;
  f.checker.on_slot_acquire(1, 3);
  f.checker.on_addr_counts(1, 3, 0, {4, 4});
  f.checker.on_assembly_begin(1, 3);
  // data_ready is still at 3: the DMA for chunk 3 has not landed.
  f.checker.on_compute_begin(1, 3, 3);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "flag_before_data");
  EXPECT_EQ(violation.block, 1);
  EXPECT_EQ(violation.chunk, 3);
  EXPECT_EQ(violation.slot, 1);
  EXPECT_NE(violation.message.find("needs 4"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, FlagAheadOfChunkIsFine) {
  // The flag only grows; a deeper pipeline may have raised it further.
  Fixture f;
  f.checker.on_slot_acquire(0, 1);
  f.checker.on_compute_begin(0, 1, 5);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(PipelineCheckerTest, ReadPastStagedCountIsUncovered) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 2});
  f.checker.on_compute_begin(0, 0, 1);
  f.checker.on_compute_read(0, 0, 0, 1, 1);  // thread 1, k=1 < 2: fine
  EXPECT_EQ(f.reporter.total(), 0u);
  f.checker.on_compute_read(0, 0, 0, 1, 2);  // k=2 >= 2: uncovered
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "uncovered_read");
  EXPECT_EQ(violation.stream, 0);
  EXPECT_EQ(violation.thread, 1);
  EXPECT_NE(violation.message.find("staged only 2"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, ReadBeforeAnyCountsIsUncovered) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_compute_begin(0, 0, 1);
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "uncovered_read");
  EXPECT_NE(violation.message.find("before address generation"),
            std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, ReadingASlotReassignedToALaterChunkIsStale) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_slot_release(0, 0);
  f.checker.on_slot_acquire(0, 2);  // slot 0 recycled for chunk 2
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "stale_slot_read");
  EXPECT_EQ(violation.chunk, 0);
  EXPECT_NE(violation.message.find("owned by chunk 2"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, UncoveredReadsDeduplicatePerSlotAndStream) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {1, 1});
  for (std::uint64_t k = 1; k < 5; ++k) {
    f.checker.on_compute_read(0, 0, 0, 0, k);
  }
  EXPECT_EQ(f.reporter.total(), 1u);
  // A fresh acquisition of the slot resets the dedup.
  f.checker.on_slot_release(0, 0);
  f.checker.on_slot_acquire(0, 2);
  f.checker.on_compute_read(0, 0, 0, 0, 9);  // stale now, separate kind
  EXPECT_EQ(f.reporter.total(), 2u);
}

TEST(PipelineCheckerTest, BlocksTrackSlotsIndependently) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  // Block 1 touching its own slot 0 is unrelated to block 0's.
  f.checker.on_slot_acquire(1, 0);
  f.checker.on_slot_release(1, 0);
  f.checker.on_slot_acquire(1, 2);
  EXPECT_EQ(f.reporter.total(), 0u);
}

// --- bigkcache lifecycle states ------------------------------------------

TEST(PipelineCheckerTest, CleanCachedChunkReportsNothing) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_assembly_begin(0, 0);
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_compute_begin(0, 0, 1);
  for (std::uint32_t thread = 0; thread < 2; ++thread) {
    for (std::uint64_t k = 0; k < 4; ++k) {
      f.checker.on_compute_read(0, 0, 0, thread, k);
    }
  }
  f.checker.on_slot_release(0, 0);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(PipelineCheckerTest, ReadAfterInvalidateIsStaleCacheRead) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_compute_begin(0, 0, 1);
  // The reuse-after-invalidation bug: the entry dies between the hit
  // declaration and the compute read.
  f.checker.on_cache_invalidate(7);
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.checker, "pipecheck");
  EXPECT_EQ(violation.kind, "stale_cache_read");
  EXPECT_EQ(violation.block, 0);
  EXPECT_EQ(violation.chunk, 0);
  EXPECT_EQ(violation.stream, 0);
  EXPECT_EQ(violation.allocation, 7);
  EXPECT_NE(violation.message.find("cache entry 7"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, ReadAfterEvictIsEvictedSlotRead) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  // hit=false: even a freshly inserted image must outlive its chunk.
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/9, /*hit=*/false);
  f.checker.on_compute_begin(0, 0, 1);
  f.checker.on_cache_evict(9);
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "evicted_slot_read");
  EXPECT_EQ(violation.allocation, 9);
  EXPECT_NE(violation.message.find("after eviction"), std::string::npos)
      << violation.message;
}

TEST(PipelineCheckerTest, CacheViolationsDeduplicatePerSlotAndStream) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_compute_begin(0, 0, 1);
  f.checker.on_cache_invalidate(7);
  for (std::uint64_t k = 0; k < 4; ++k) {
    f.checker.on_compute_read(0, 0, 0, 0, k);
  }
  EXPECT_EQ(f.reporter.total(), 1u);
}

TEST(PipelineCheckerTest, InvalidateBeforeServeStillCondemnsTheEntry) {
  Fixture f;
  // The invalidate arrives before the slot registers the lease (entry ids
  // are never reused, so the condemned state must win).
  f.checker.on_cache_invalidate(7);
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_compute_begin(0, 0, 1);
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  EXPECT_EQ(f.only().kind, "stale_cache_read");
}

TEST(PipelineCheckerTest, ReadAfterScrubEvictIsScrubbedEntryRead) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_compute_begin(0, 0, 1);
  // The bigkdur scrub daemon proved the entry corrupt between the hit
  // declaration and the compute read: reading through the lease now means
  // compute consumed bytes known to be bad.
  f.checker.on_cache_scrub_evict(7);
  f.checker.on_compute_read(0, 0, 0, 0, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "scrubbed_entry_read");
  EXPECT_EQ(violation.allocation, 7);
}

TEST(PipelineCheckerTest, SlotReacquisitionClearsCacheLease) {
  Fixture f;
  f.checker.on_slot_acquire(0, 0);
  f.checker.on_addr_counts(0, 0, 0, {4, 4});
  f.checker.on_cache_slot(0, 0, 0, /*entry=*/7, /*hit=*/true);
  f.checker.on_slot_release(0, 0);
  f.checker.on_cache_evict(7);
  // Chunk 2 reuses the ring slot without a cache lease: its reads must not
  // inherit chunk 0's (now evicted) entry.
  f.checker.on_slot_acquire(0, 2);
  f.checker.on_addr_counts(0, 2, 0, {4, 4});
  f.checker.on_compute_begin(0, 2, 3);
  f.checker.on_compute_read(0, 2, 0, 0, 0);
  EXPECT_EQ(f.reporter.total(), 0u);
}

}  // namespace
}  // namespace bigk::check
