// Tests for the bigkcheck reporting spine: CheckOptions parsing, violation
// JSON, counting, fail-fast, and the enforce() failure path.
#include "check/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "check/options.hpp"
#include "obs/metrics_registry.hpp"

namespace bigk::check {
namespace {

TEST(CheckOptionsTest, DefaultAndOffSpellingsStayDisabled) {
  EXPECT_FALSE(CheckOptions{}.enabled);
  EXPECT_FALSE(CheckOptions::parse("").enabled);
  EXPECT_FALSE(CheckOptions::parse("0").enabled);
  EXPECT_FALSE(CheckOptions::parse("off").enabled);
}

TEST(CheckOptionsTest, OnSpellingsEnableEverything) {
  for (const char* spec : {"1", "on", "all"}) {
    const CheckOptions options = CheckOptions::parse(spec);
    EXPECT_TRUE(options.enabled) << spec;
    EXPECT_TRUE(options.memcheck && options.racecheck && options.pipecheck)
        << spec;
    EXPECT_FALSE(options.fail_fast) << spec;
  }
}

TEST(CheckOptionsTest, CommaListSelectsSubset) {
  const CheckOptions options = CheckOptions::parse("memcheck,fail_fast");
  EXPECT_TRUE(options.enabled);
  EXPECT_TRUE(options.memcheck);
  EXPECT_FALSE(options.racecheck);
  EXPECT_FALSE(options.pipecheck);
  EXPECT_TRUE(options.fail_fast);
}

TEST(CheckOptionsTest, UnknownItemThrows) {
  EXPECT_THROW(CheckOptions::parse("memchk"), std::invalid_argument);
}

TEST(ViolationTest, JsonCarriesOnlySetLocationFields) {
  Violation violation;
  violation.checker = "memcheck";
  violation.kind = "out_of_bounds";
  violation.message = "4 byte(s) past the end";
  violation.offset = 260;
  violation.allocation = 0;
  violation.size = 4;
  std::ostringstream out;
  violation.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"checker\":\"memcheck\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"out_of_bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"offset\":260"), std::string::npos);
  EXPECT_NE(json.find("\"allocation\":0"), std::string::npos);
  EXPECT_NE(json.find("\"size\":4"), std::string::npos);
  // Unset fields (all -1) must be absent, not emitted as -1.
  EXPECT_EQ(json.find("\"warp\""), std::string::npos);
  EXPECT_EQ(json.find("-1"), std::string::npos);
}

Violation make_violation(const std::string& kind) {
  Violation violation;
  violation.checker = "pipecheck";
  violation.kind = kind;
  violation.message = "slot busy";
  violation.block = 1;
  violation.chunk = 5;
  violation.slot = 2;
  return violation;
}

TEST(ReporterTest, CountsAndRecordsUpToCap) {
  CheckOptions options = CheckOptions::all_enabled();
  options.max_recorded = 2;
  Reporter reporter(options);
  for (int i = 0; i < 5; ++i) reporter.report(make_violation("slot_overrun"));
  EXPECT_EQ(reporter.total(), 5u);
  EXPECT_EQ(reporter.recorded().size(), 2u);
  EXPECT_EQ(reporter.recorded()[0].kind, "slot_overrun");
}

TEST(ReporterTest, FeedsMetricsRegistryPerChecker) {
  obs::MetricsRegistry metrics;
  Reporter reporter(CheckOptions::all_enabled(), &metrics);
  reporter.report(make_violation("slot_overrun"));
  reporter.report(make_violation("flag_before_data"));
  reporter.bump("racecheck.addresses_dropped", 3);
  EXPECT_EQ(metrics.counter("check.pipecheck.violations").value(), 2u);
  EXPECT_EQ(metrics.counter("check.racecheck.addresses_dropped").value(), 3u);
}

TEST(ReporterTest, FailFastThrowsOnFirstReport) {
  CheckOptions options = CheckOptions::all_enabled();
  options.fail_fast = true;
  Reporter reporter(options);
  EXPECT_THROW(reporter.report(make_violation("slot_overrun")), CheckError);
  EXPECT_EQ(reporter.total(), 1u);
}

TEST(ReporterTest, EnforceThrowsWithSummaryNamingTheViolation) {
  Reporter reporter(CheckOptions::all_enabled());
  reporter.report(make_violation("slot_overrun"));
  try {
    reporter.enforce();
    FAIL() << "enforce() must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 violation"), std::string::npos) << what;
    EXPECT_NE(what.find("pipecheck/slot_overrun"), std::string::npos) << what;
  }
}

TEST(ReporterTest, CleanReporterEnforcesQuietly) {
  Reporter reporter(CheckOptions::all_enabled());
  EXPECT_NO_THROW(reporter.enforce());
  EXPECT_EQ(reporter.total(), 0u);
}

TEST(ReporterTest, WriteJsonlEmitsOneObjectPerLine) {
  Reporter reporter(CheckOptions::all_enabled());
  reporter.report(make_violation("slot_overrun"));
  reporter.report(make_violation("stale_slot_read"));
  std::ostringstream out;
  reporter.write_jsonl(out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(text.find('{'), 0u);
}

}  // namespace
}  // namespace bigk::check
