// Seeded-violation tests for the device-memory sanitizer: every bug class it
// diagnoses is provoked against a real DeviceMemory arena and the diagnostic
// must name the exact allocation, offset, and size involved. A control test
// verifies the same sequences are invisible without the checker installed.
#include "check/memcheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "check/options.hpp"
#include "check/report.hpp"
#include "gpusim/device_memory.hpp"

namespace bigk::check {
namespace {

struct Fixture {
  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter{options};
  MemChecker checker{reporter};
  gpusim::DeviceMemory memory{64 << 10};

  Fixture() {
    checker.attach(memory);
    memory.set_observer(&checker);
  }

  const Violation& only() {
    EXPECT_EQ(reporter.total(), 1u);
    EXPECT_EQ(reporter.recorded().size(), 1u);
    return reporter.recorded().front();
  }
};

TEST(MemCheckerTest, CleanLifecycleReportsNothing) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(16);
  for (std::uint64_t i = 0; i < 16; ++i) f.memory.write(ptr, i, i * 3);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(f.memory.read(ptr, i), i * 3);
  }
  f.memory.free(ptr);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(MemCheckerTest, ReadIntoAlignmentPaddingIsOutOfBounds) {
  // 3 x u32 = 12 requested bytes inside a 256-byte aligned block: the arena's
  // own bounds check cannot see a read of element 3, the sanitizer must.
  Fixture f;
  auto ptr = f.memory.allocate<std::uint32_t>(3);
  for (std::uint64_t i = 0; i < 3; ++i) f.memory.write(ptr, i, 7u);
  (void)f.memory.read(ptr, 3);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.checker, "memcheck");
  EXPECT_EQ(violation.kind, "out_of_bounds");
  EXPECT_EQ(violation.offset,
            static_cast<std::int64_t>(ptr.byte_offset + 12));
  EXPECT_EQ(violation.allocation, static_cast<std::int64_t>(ptr.byte_offset));
  EXPECT_EQ(violation.size, 4);
  EXPECT_NE(violation.message.find("past the end"), std::string::npos)
      << violation.message;
}

TEST(MemCheckerTest, WithoutObserverThePaddingReadPassesSilently) {
  // Control for the seeded OOB: the unchecked arena accepts it.
  gpusim::DeviceMemory memory{64 << 10};
  auto ptr = memory.allocate<std::uint32_t>(3);
  EXPECT_NO_THROW((void)memory.read(ptr, 3));
}

TEST(MemCheckerTest, UseAfterFreeNamesTheFreedAllocation) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(8);
  f.memory.write(ptr, 0, std::uint64_t{1});
  f.memory.free(ptr);
  (void)f.memory.read(ptr, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "use_after_free");
  EXPECT_EQ(violation.offset, static_cast<std::int64_t>(ptr.byte_offset));
  EXPECT_EQ(violation.allocation, static_cast<std::int64_t>(ptr.byte_offset));
}

TEST(MemCheckerTest, UninitializedReadNamesTheFirstBadByte) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(4);
  f.memory.write(ptr, 0, std::uint64_t{5});  // element 0 ok, 1..3 untouched
  (void)f.memory.read(ptr, 0);               // clean
  EXPECT_EQ(f.reporter.total(), 0u);
  (void)f.memory.read(ptr, 2);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "uninitialized_read");
  EXPECT_EQ(violation.offset,
            static_cast<std::int64_t>(ptr.byte_offset + 16));
  EXPECT_NE(violation.message.find("byte 16"), std::string::npos)
      << violation.message;
}

TEST(MemCheckerTest, H2DCopyInitializesBytesForLaterReads) {
  // The DMA path: bytes_mut (copy-in) must mark the range initialized so the
  // staged data can be read back out (copy-out) without a false positive.
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(8);
  (void)f.memory.bytes_mut(ptr.byte_offset, 64);
  (void)f.memory.bytes(ptr.byte_offset, 64);
  (void)f.memory.read(ptr, 7);
  EXPECT_EQ(f.reporter.total(), 0u);
}

TEST(MemCheckerTest, D2HCopyOfUninitializedBytesIsFlagged) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(8);
  (void)f.memory.bytes(ptr.byte_offset, 64);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "uninitialized_read");
  EXPECT_NE(violation.message.find("D2H"), std::string::npos)
      << violation.message;
}

TEST(MemCheckerTest, MisalignedTypedAccessIsFlagged) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(4);
  f.memory.write(ptr, 0, std::uint64_t{1});
  gpusim::DevicePtr<std::uint32_t> skewed{ptr.byte_offset + 2};
  (void)f.memory.read(skewed, 0);
  ASSERT_GE(f.reporter.total(), 1u);
  const Violation& violation = f.reporter.recorded().front();
  EXPECT_EQ(violation.kind, "misaligned_access");
  EXPECT_EQ(violation.offset,
            static_cast<std::int64_t>(ptr.byte_offset + 2));
  EXPECT_EQ(violation.size, 4);
}

TEST(MemCheckerTest, DoubleFreeIsDiagnosedAndStillThrows) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(8);
  f.memory.free(ptr);
  EXPECT_THROW(f.memory.free(ptr), gpusim::DoubleFree);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "double_free");
  EXPECT_EQ(violation.offset, static_cast<std::int64_t>(ptr.byte_offset));
  EXPECT_EQ(violation.allocation, static_cast<std::int64_t>(ptr.byte_offset));
}

TEST(MemCheckerTest, InteriorFreeNamesTheOwningAllocation) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(64);
  EXPECT_THROW(f.memory.free_offset(ptr.byte_offset + 8), gpusim::InvalidFree);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "invalid_free");
  EXPECT_EQ(violation.allocation, static_cast<std::int64_t>(ptr.byte_offset));
  EXPECT_NE(violation.message.find("interior"), std::string::npos)
      << violation.message;
}

TEST(MemCheckerTest, WildAccessOutsideEveryAllocationIsFlagged) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint64_t>(4);
  gpusim::DevicePtr<std::uint64_t> wild{ptr.byte_offset + (32 << 10)};
  (void)f.memory.read(wild, 0);
  const Violation& violation = f.only();
  EXPECT_EQ(violation.kind, "out_of_bounds");
  EXPECT_NE(violation.message.find("no live allocation"), std::string::npos)
      << violation.message;
}

TEST(MemCheckerTest, AttachAdoptsPreExistingAllocationsAsInitialized) {
  // Tables uploaded before the sanitizer installs must be readable: attach()
  // adopts live allocations as fully initialized.
  gpusim::DeviceMemory memory{64 << 10};
  auto table = memory.allocate<std::uint64_t>(16);

  CheckOptions options = CheckOptions::all_enabled();
  Reporter reporter(options);
  MemChecker checker(reporter);
  checker.attach(memory);
  memory.set_observer(&checker);

  (void)memory.read(table, 15);
  EXPECT_EQ(reporter.total(), 0u);
  memory.free(table);
  EXPECT_EQ(reporter.total(), 0u);
}

TEST(MemCheckerTest, PerAllocationDeduplicationKeepsOneReportPerKind) {
  Fixture f;
  auto ptr = f.memory.allocate<std::uint32_t>(3);
  for (int repeat = 0; repeat < 5; ++repeat) {
    (void)f.memory.read(ptr, 3);  // same OOB five times
  }
  EXPECT_EQ(f.reporter.recorded().size(), 1u);
}

TEST(MemCheckerTest, FailFastThrowsAtTheAccess) {
  CheckOptions options = CheckOptions::all_enabled();
  options.fail_fast = true;
  Reporter reporter(options);
  MemChecker checker(reporter);
  gpusim::DeviceMemory memory{64 << 10};
  checker.attach(memory);
  memory.set_observer(&checker);
  auto ptr = memory.allocate<std::uint64_t>(4);
  EXPECT_THROW((void)memory.read(ptr, 0), CheckError);  // uninitialized
}

}  // namespace
}  // namespace bigk::check
