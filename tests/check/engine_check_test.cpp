// End-to-end tests of the bigkcheck sanitizers against the real BigKernel
// engine. The healthy pipeline must run clean under every checker; the
// seeded protocol faults (core::Options::fault) must corrupt results
// silently without the checkers and be precisely diagnosed with them.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "check/options.hpp"
#include "check/report.hpp"
#include "check/sanitizer.hpp"
#include "core/device_tables.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace bigk::core {
namespace {

// Same toy kernel as engine_test: records of 4 elements [a, b, pad, out];
// out = a + b + bias.
struct ScaleKernel {
  StreamRef<std::uint64_t> data;
  TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(5);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

// Misbehaving kernel: the compute stage sneaks in one read per thread-chunk
// that address generation never produced — the address-coverage bug class.
struct GreedyKernel {
  StreamRef<std::uint64_t> data;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      if constexpr (std::is_same_v<Ctx, ComputeCtx>) {
        if (r == rec_begin) (void)ctx.read(data, r * 4 + 1);
      }
      ctx.write(data, r * 4 + 3, a + 1);
    }
  }
};

struct Fixture {
  static constexpr std::uint64_t kRecords = 20'000;

  sim::Simulation sim;
  gpusim::SystemConfig config;
  std::vector<std::uint64_t> host;

  Fixture() {
    config.gpu.global_memory_bytes = 8 << 20;
    host.resize(kRecords * 4);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
      host[r * 4] = r * 3;
      host[r * 4 + 1] = r ^ 5;
      host[r * 4 + 2] = 0xDEAD;
      host[r * 4 + 3] = 0;
    }
  }
};

Options small_options() {
  Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  return options;
}

/// Runs ScaleKernel through the engine; `sanitizer` (optional) is installed
/// before any engine allocation and fed to the engine for pipeline events.
void run_scale(Fixture& fixture, Options options,
               check::Sanitizer* sanitizer = nullptr) {
  cusim::Runtime runtime(fixture.sim, fixture.config);
  if (sanitizer != nullptr) sanitizer->install(runtime.gpu());
  Engine engine(runtime, options);
  if (sanitizer != nullptr) engine.set_sanitizer(sanitizer);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite,
      /*elems_per_record=*/4, /*reads_per_record=*/2, /*writes_per_record=*/1);
  TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  ScaleKernel kernel{stream, bias};

  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         ScaleKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));
  // The runtime (and its Gpu) dies with this scope; a caller-owned sanitizer
  // must not keep observing it.
  if (sanitizer != nullptr) sanitizer->uninstall();
}

std::uint64_t count_scale_mismatches(const Fixture& fixture) {
  std::uint64_t mismatches = 0;
  for (std::uint64_t r = 0; r < Fixture::kRecords; ++r) {
    if (fixture.host[r * 4 + 3] != r * 3 + (r ^ 5) + 7) ++mismatches;
  }
  return mismatches;
}

TEST(EngineCheckTest, HealthyPipelineRunsCleanUnderAllCheckers) {
  Fixture fixture;
  Options options = small_options();
  options.check = check::CheckOptions::all_enabled();
  // The engine owns the sanitizer and would throw CheckError on violations.
  run_scale(fixture, options);
  EXPECT_EQ(count_scale_mismatches(fixture), 0u);
}

TEST(EngineCheckTest, ExternalSanitizerCollectsNothingOnHealthyRun) {
  Fixture fixture;
  check::Sanitizer sanitizer(check::CheckOptions::all_enabled());
  run_scale(fixture, small_options(), &sanitizer);
  EXPECT_EQ(sanitizer.reporter().total(), 0u);
  EXPECT_NO_THROW(sanitizer.finalize());
}

TEST(EngineCheckTest, SkippedDataReadyWaitCorruptsResultsSilently) {
  // The seeded bug without the checker: the run "succeeds" while the compute
  // stage consumed staging buffers before the DMA landed.
  Fixture fixture;
  Options options = small_options();
  options.fault.skip_data_ready_wait = true;
  run_scale(fixture, options);
  EXPECT_GT(count_scale_mismatches(fixture), 0u);
}

TEST(EngineCheckTest, SkippedDataReadyWaitIsDiagnosedAsFlagBeforeData) {
  Fixture fixture;
  Options options = small_options();
  options.fault.skip_data_ready_wait = true;
  check::Sanitizer sanitizer(check::CheckOptions::all_enabled());
  run_scale(fixture, options, &sanitizer);

  ASSERT_GT(sanitizer.reporter().total(), 0u);
  const check::Violation* flag_violation = nullptr;
  for (const check::Violation& violation : sanitizer.reporter().recorded()) {
    if (violation.kind == "flag_before_data") {
      flag_violation = &violation;
      break;
    }
  }
  ASSERT_NE(flag_violation, nullptr) << sanitizer.reporter().summary();
  EXPECT_EQ(flag_violation->checker, "pipecheck");
  // Chunk 0 skips the wait entirely: the first unserved chunk is diagnosed.
  EXPECT_EQ(flag_violation->chunk, 0);
  EXPECT_GE(flag_violation->block, 0);
  EXPECT_LT(flag_violation->block, 4);
  EXPECT_GE(flag_violation->slot, 0);

  try {
    sanitizer.finalize();
    FAIL() << "finalize() must throw on violations";
  } catch (const check::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("flag_before_data"),
              std::string::npos)
        << error.what();
  }
}

TEST(EngineCheckTest, EngineOwnedSanitizerThrowsOnSeededFault) {
  Fixture fixture;
  Options options = small_options();
  options.fault.skip_data_ready_wait = true;
  options.check = check::CheckOptions::all_enabled();
  EXPECT_THROW(run_scale(fixture, options), check::CheckError);
}

TEST(EngineCheckTest, EarlyRingReleaseIsDiagnosedAsSlotOverrun) {
  Fixture fixture;
  Options options = small_options();
  options.fault.early_ring_release = true;
  check::Sanitizer sanitizer(check::CheckOptions::all_enabled());
  run_scale(fixture, options, &sanitizer);

  const check::Violation* overrun = nullptr;
  for (const check::Violation& violation : sanitizer.reporter().recorded()) {
    if (violation.kind == "slot_overrun") {
      overrun = &violation;
      break;
    }
  }
  ASSERT_NE(overrun, nullptr) << sanitizer.reporter().summary();
  EXPECT_EQ(overrun->checker, "pipecheck");
  EXPECT_GE(overrun->block, 0);
  EXPECT_GE(overrun->chunk, 0);
  EXPECT_GE(overrun->slot, 0);
  EXPECT_NE(overrun->message.find("still in flight"), std::string::npos)
      << overrun->message;
}

TEST(EngineCheckTest, ComputeReadBeyondGeneratedAddressesIsUncovered) {
  Fixture fixture;
  cusim::Runtime runtime(fixture.sim, fixture.config);
  check::Sanitizer sanitizer(check::CheckOptions::parse("pipecheck"));
  sanitizer.install(runtime.gpu());
  Engine engine(runtime, small_options());
  engine.set_sanitizer(&sanitizer);
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host), AccessMode::kReadWrite, 4, 1, 1);
  TableSet tables;
  GreedyKernel kernel{stream};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         GreedyKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));

  const check::Violation* uncovered = nullptr;
  for (const check::Violation& violation : sanitizer.reporter().recorded()) {
    if (violation.kind == "uncovered_read") {
      uncovered = &violation;
      break;
    }
  }
  ASSERT_NE(uncovered, nullptr) << sanitizer.reporter().summary();
  EXPECT_EQ(uncovered->stream, 0);
  EXPECT_GE(uncovered->thread, 0);
  EXPECT_GE(uncovered->chunk, 0);
}

// Read-only stream (cacheable) + read-write output, for the cache faults.
struct CachedSumKernel {
  StreamRef<std::uint64_t> in;
  StreamRef<std::uint64_t> out;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(in, r * 2);
      const std::uint64_t b = ctx.read(in, r * 2 + 1);
      ctx.write(out, r, a + b);
    }
  }
};

/// One cached launch over a read-only stream with an external sanitizer.
void run_cached_sum(Fixture& fixture, Options options,
                    check::Sanitizer& sanitizer) {
  cusim::Runtime runtime(fixture.sim, fixture.config);
  sanitizer.install(runtime.gpu());
  cache::ChunkCache cache(runtime.gpu().memory(),
                          cache::ChunkCache::Config{2 << 20});
  std::vector<std::uint64_t> output(Fixture::kRecords);
  Engine engine(runtime, options);
  engine.set_sanitizer(&sanitizer);
  engine.set_chunk_cache(&cache, /*dataset_id=*/1);
  auto in_ref = engine.streaming_map<std::uint64_t>(
      std::span(fixture.host).first(Fixture::kRecords * 2),
      AccessMode::kReadOnly, 2, 2);
  auto out_ref = engine.streaming_map<std::uint64_t>(
      std::span(output), AccessMode::kReadWrite, 1, 0, 1);
  TableSet tables;
  CachedSumKernel kernel{in_ref, out_ref};
  fixture.sim.run_until_complete(
      [](cusim::Runtime& rt, Engine& eng, TableSet& tbl,
         CachedSumKernel k) -> sim::Task<> {
        DeviceTables device = co_await DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, Fixture::kRecords, device);
        device.release();
      }(runtime, engine, tables, kernel));
  sanitizer.uninstall();
}

TEST(EngineCheckTest, CachedLaunchRunsCleanUnderAllCheckers) {
  Fixture fixture;
  check::Sanitizer sanitizer(check::CheckOptions::all_enabled());
  run_cached_sum(fixture, small_options(), sanitizer);
  EXPECT_EQ(sanitizer.reporter().total(), 0u)
      << sanitizer.reporter().summary();
}

TEST(EngineCheckTest, StaleCacheFaultIsDiagnosedAsStaleCacheRead) {
  Fixture fixture;
  Options options = small_options();
  options.fault.stale_cache = true;
  check::Sanitizer sanitizer(check::CheckOptions::all_enabled());
  run_cached_sum(fixture, options, sanitizer);

  const check::Violation* stale = nullptr;
  for (const check::Violation& violation : sanitizer.reporter().recorded()) {
    if (violation.kind == "stale_cache_read") {
      stale = &violation;
      break;
    }
  }
  ASSERT_NE(stale, nullptr) << sanitizer.reporter().summary();
  EXPECT_EQ(stale->checker, "pipecheck");
  EXPECT_EQ(stale->stream, 0);  // only the read-only stream is cache-served
  EXPECT_GE(stale->allocation, 0);  // the condemned cache entry id
  EXPECT_NE(stale->message.find("reuse-after-invalidation"),
            std::string::npos)
      << stale->message;
}

}  // namespace
}  // namespace bigk::core
