// bigkload generator tests: plan determinism, tenant/app assignment, the
// --tenants grammar, and closed-loop chain construction.
#include "load/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bigk::load {
namespace {

const std::vector<std::string> kApps{"toy0", "toy1", "toy2"};

LoadConfig two_tenant_config() {
  LoadConfig config;
  config.arrival.rate_per_s = 200'000.0;
  config.arrival.seed = 77;
  config.duration = sim::kMillisecond;
  TenantSpec lc;
  lc.qos.name = "lc";
  lc.qos.weight = 8;
  lc.qos.deadline = 250 * sim::kMicrosecond;
  lc.share = 1.0;
  lc.clients = 16;
  TenantSpec batch;
  batch.qos.name = "batch";
  batch.qos.weight = 1;
  batch.share = 3.0;
  batch.clients = 32;
  config.tenants = {lc, batch};
  return config;
}

TEST(MakeLoadTest, PlanIsAPureFunctionOfConfig) {
  const LoadConfig config = two_tenant_config();
  const LoadPlan first = make_load(config, kApps);
  const LoadPlan second = make_load(config, kApps);
  ASSERT_EQ(first.specs.size(), second.specs.size());
  EXPECT_GT(first.specs.size(), 50u);
  for (std::size_t i = 0; i < first.specs.size(); ++i) {
    EXPECT_EQ(first.specs[i].id, second.specs[i].id);
    EXPECT_EQ(first.specs[i].tenant, second.specs[i].tenant);
    EXPECT_EQ(first.specs[i].client, second.specs[i].client);
    EXPECT_EQ(first.specs[i].app, second.specs[i].app);
    EXPECT_EQ(first.specs[i].submit_time, second.specs[i].submit_time);
    EXPECT_EQ(first.specs[i].deadline, second.specs[i].deadline);
  }
}

TEST(MakeLoadTest, SpecsCarryTenantDeadlineAndClientRanges) {
  const LoadConfig config = two_tenant_config();
  const LoadPlan plan = make_load(config, kApps);
  EXPECT_EQ(plan.tenants.size(), 2u);
  EXPECT_EQ(plan.clients, 48u);
  std::uint64_t lc_jobs = 0;
  for (const serve::JobSpec& spec : plan.specs) {
    ASSERT_LT(spec.tenant, 2u);
    ASSERT_GE(spec.client, 1u);  // 0 is the anonymous sentinel
    ASSERT_LE(spec.client, 48u);
    if (spec.tenant == 0) {
      ++lc_jobs;
      EXPECT_EQ(spec.deadline, 250 * sim::kMicrosecond);
      EXPECT_LE(spec.client, 16u);
    } else {
      EXPECT_EQ(spec.deadline, 0u);
      EXPECT_GT(spec.client, 16u);
    }
    EXPECT_LT(spec.submit_time, config.duration);
  }
  // Share 1:3 — the lc tenant should draw roughly a quarter of arrivals.
  const double lc_share =
      static_cast<double>(lc_jobs) / static_cast<double>(plan.specs.size());
  EXPECT_NEAR(lc_share, 0.25, 0.1);
}

TEST(MakeLoadTest, ArrivalsAreOrderedAndRateMatches) {
  const LoadConfig config = two_tenant_config();
  const LoadPlan plan = make_load(config, kApps);
  for (std::size_t i = 1; i < plan.specs.size(); ++i) {
    EXPECT_LT(plan.specs[i - 1].submit_time, plan.specs[i].submit_time);
  }
  // 200k jobs/s over 1 ms => ~200 jobs; offered load reflects the count.
  EXPECT_NEAR(static_cast<double>(plan.specs.size()), 200.0, 60.0);
  EXPECT_NEAR(plan.offered_jobs_per_s,
              static_cast<double>(plan.specs.size()) / 1e-3, 1e-6);
}

TEST(MakeLoadTest, MixRestrictsAppsAndWeightsThem) {
  LoadConfig config = two_tenant_config();
  config.tenants[0].mix = {{"toy2", 1.0}};
  config.tenants[1].mix = {{"toy0", 3.0}, {"toy1", 1.0}};
  const LoadPlan plan = make_load(config, kApps);
  std::uint64_t batch_toy0 = 0;
  std::uint64_t batch_toy1 = 0;
  for (const serve::JobSpec& spec : plan.specs) {
    if (spec.tenant == 0) {
      EXPECT_EQ(spec.app, "toy2");
    } else {
      EXPECT_NE(spec.app, "toy2");
      (spec.app == "toy0" ? batch_toy0 : batch_toy1)++;
    }
  }
  EXPECT_GT(batch_toy0, batch_toy1);
}

TEST(MakeLoadTest, MaxJobsTruncatesAndFlagsIt) {
  LoadConfig config = two_tenant_config();
  config.max_jobs = 10;
  const LoadPlan plan = make_load(config, kApps);
  EXPECT_EQ(plan.specs.size(), 10u);
  EXPECT_TRUE(plan.truncated);
}

TEST(MakeLoadTest, ClosedLoopBuildsPerClientChains) {
  LoadConfig config = two_tenant_config();
  config.closed_loop = true;
  config.arrival.rate_per_s = 96'000.0;  // 96 jobs over the 1 ms window
  const LoadPlan plan = make_load(config, kApps);
  // Every client gets the same chain length within its tenant; chain links
  // share the client's first-submit offset (re-stamped at run time).
  std::set<std::uint64_t> clients;
  for (const serve::JobSpec& spec : plan.specs) {
    clients.insert(spec.client);
    EXPECT_LT(spec.submit_time, config.duration);
  }
  EXPECT_EQ(clients.size(), 48u);  // all 16 + 32 clients own a chain
  for (const std::uint64_t client : clients) {
    sim::TimePs offset = 0;
    bool first = true;
    for (const serve::JobSpec& spec : plan.specs) {
      if (spec.client != client) continue;
      if (first) {
        offset = spec.submit_time;
        first = false;
      } else {
        EXPECT_EQ(spec.submit_time, offset);
      }
    }
  }
}

TEST(MakeLoadTest, ValidatesItsInputs) {
  LoadConfig config = two_tenant_config();
  EXPECT_THROW(make_load(config, {}), std::invalid_argument);
  config.tenants[0].mix = {{"nonexistent", 1.0}};
  EXPECT_THROW(make_load(config, kApps), std::invalid_argument);
  config = two_tenant_config();
  config.tenants.clear();
  EXPECT_THROW(make_load(config, kApps), std::invalid_argument);
  config = two_tenant_config();
  config.duration = 0;
  EXPECT_THROW(make_load(config, kApps), std::invalid_argument);
}

TEST(ParseTenantsTest, FullGrammar) {
  const auto tenants = parse_tenants(
      "lc:class=lc,weight=8,share=0.25,quota=4,deadline_us=300,clients=16,"
      "apps=toy0|toy2*3;"
      "batch:class=batch,weight=1,share=0.75,think_us=50");
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].qos.name, "lc");
  EXPECT_EQ(tenants[0].qos.slo, serve::SloClass::kLatencyCritical);
  EXPECT_EQ(tenants[0].qos.weight, 8u);
  EXPECT_DOUBLE_EQ(tenants[0].share, 0.25);
  EXPECT_EQ(tenants[0].qos.quota, 4u);
  EXPECT_EQ(tenants[0].qos.deadline, 300 * sim::kMicrosecond);
  EXPECT_EQ(tenants[0].clients, 16u);
  ASSERT_EQ(tenants[0].mix.size(), 2u);
  EXPECT_EQ(tenants[0].mix[0].app, "toy0");
  EXPECT_DOUBLE_EQ(tenants[0].mix[0].weight, 1.0);
  EXPECT_EQ(tenants[0].mix[1].app, "toy2");
  EXPECT_DOUBLE_EQ(tenants[0].mix[1].weight, 3.0);
  EXPECT_EQ(tenants[1].qos.name, "batch");
  EXPECT_EQ(tenants[1].qos.slo, serve::SloClass::kBatch);
  EXPECT_EQ(tenants[1].qos.think_time, 50 * sim::kMicrosecond);
}

TEST(ParseTenantsTest, DefaultsAndEmptyInput) {
  EXPECT_TRUE(parse_tenants("").empty());
  const auto tenants = parse_tenants("solo");
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].qos.name, "solo");
  EXPECT_EQ(tenants[0].qos.weight, 1u);
  EXPECT_DOUBLE_EQ(tenants[0].share, 1.0);
  EXPECT_TRUE(tenants[0].mix.empty());
}

TEST(ParseTenantsTest, RejectsMalformedEntries) {
  EXPECT_THROW(parse_tenants(":weight=1"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:weight"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:class=gold"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:share=0"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:clients=0"), std::invalid_argument);
  EXPECT_THROW(parse_tenants("a:apps=*2"), std::invalid_argument);
}

}  // namespace
}  // namespace bigk::load
