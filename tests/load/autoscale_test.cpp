// Autoscaler tests: the pure decision policy (growth, shrink, hysteresis,
// clamping) and the end-to-end daemon reacting to a seeded burst.
#include "serve/autoscaler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "load/generator.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

AutoscalerConfig policy_config() {
  AutoscalerConfig config;
  config.enabled = true;
  config.min_active = 1;
  config.up_queue_depth = 3.0;
  config.down_queue_depth = 1.0;
  config.cooldown = 2;
  return config;
}

TEST(AutoscalerPolicyTest, GrowsOnDeepQueueAndHonorsCooldown) {
  Autoscaler scaler(policy_config(), 4);
  EXPECT_EQ(scaler.decide(10.0, 0.0, 1), +1);
  // Cooldown: the next two periods hold even though the queue stays deep.
  EXPECT_EQ(scaler.decide(10.0, 0.0, 2), 0);
  EXPECT_EQ(scaler.decide(10.0, 0.0, 2), 0);
  EXPECT_EQ(scaler.decide(10.0, 0.0, 2), +1);
  EXPECT_EQ(scaler.scale_ups(), 2u);
  EXPECT_EQ(scaler.scale_downs(), 0u);
}

TEST(AutoscalerPolicyTest, NeverExceedsMaxActive) {
  AutoscalerConfig config = policy_config();
  config.cooldown = 0;
  config.max_active = 2;
  Autoscaler scaler(config, 4);
  EXPECT_EQ(scaler.max_active(), 2u);
  EXPECT_EQ(scaler.decide(100.0, 0.0, 1), +1);
  EXPECT_EQ(scaler.decide(100.0, 0.0, 2), 0);  // at the ceiling
}

TEST(AutoscalerPolicyTest, ShrinksOnIdleQueueDownToMinActive) {
  AutoscalerConfig config = policy_config();
  config.cooldown = 0;
  Autoscaler scaler(config, 4);
  EXPECT_EQ(scaler.decide(0.0, 0.0, 3), -1);
  EXPECT_EQ(scaler.decide(0.0, 0.0, 2), -1);
  EXPECT_EQ(scaler.decide(0.0, 0.0, 1), 0);  // at the floor
  EXPECT_EQ(scaler.scale_downs(), 2u);
}

TEST(AutoscalerPolicyTest, HysteresisBandHolds) {
  AutoscalerConfig config = policy_config();
  config.cooldown = 0;
  Autoscaler scaler(config, 4);
  // Depth between down_queue_depth*(active-1)=2 and up_queue_depth*active=9:
  // neither grow nor shrink.
  EXPECT_EQ(scaler.decide(5.0, 0.0, 3), 0);
}

TEST(AutoscalerPolicyTest, P99GateGrowsAndBlocksShrink) {
  AutoscalerConfig config = policy_config();
  config.cooldown = 0;
  config.up_p99_ms = 10.0;
  Autoscaler scaler(config, 4);
  // Depth is fine but the latency gate trips: grow.
  EXPECT_EQ(scaler.decide(0.0, 25.0, 1), +1);
  // Idle queue but p99 still above half the gate: hold instead of shrink.
  EXPECT_EQ(scaler.decide(0.0, 8.0, 2), 0);
  EXPECT_EQ(scaler.decide(0.0, 1.0, 2), -1);
}

TEST(AutoscalerPolicyTest, ClampsDegenerateConfigs) {
  EXPECT_THROW(Autoscaler(policy_config(), 0), std::invalid_argument);
  AutoscalerConfig config = policy_config();
  config.min_active = 10;  // above the pool size: clamped to the ceiling
  Autoscaler scaler(config, 3);
  EXPECT_EQ(scaler.min_active(), 3u);
  EXPECT_EQ(scaler.max_active(), 3u);
}

TEST(AutoscaleServeTest, ReactsToASeededBurst) {
  // MMPP calm/burst arrivals against a 3-device pool parked down to one
  // active device: the burst must grow the active set, and the calm tail
  // must shrink it back.
  const std::uint32_t devices = 3;
  const auto capacity = [&] {
    const auto suite = make_toy_suite(2, 2'000);
    WorkloadConfig workload;
    workload.num_jobs = 12;
    workload.seed = 5;
    workload.mean_gap = 0;
    ServerConfig config;
    config.system = toy_system();
    config.devices = devices;
    config.engine = toy_engine_options();
    config.queue_depth = 8;
    config.max_retries = 1'000;
    return run_server(config, make_workload({"toy0", "toy1"}, workload),
                      suite)
        .throughput_jobs_per_s;
  }();
  ASSERT_GT(capacity, 0.0);

  load::LoadConfig lc;
  lc.arrival.kind = load::ArrivalKind::kMmpp;
  lc.arrival.rate_per_s = 0.3 * capacity;
  lc.arrival.burst_rate_per_s = 3.0 * capacity;
  lc.arrival.seed = 8;
  lc.duration = static_cast<sim::DurationPs>(30.0 / capacity * 1e12);
  load::TenantSpec tenant;
  tenant.qos.name = "all";
  tenant.clients = 32;
  lc.tenants.push_back(tenant);
  const load::LoadPlan plan = load::make_load(lc, {"toy0", "toy1"});

  const auto run_once = [&] {
    const auto suite = make_toy_suite(2, 2'000);
    ServerConfig config;
    config.system = toy_system();
    config.devices = devices;
    config.engine = toy_engine_options();
    config.queue_depth = 32;
    config.max_retries = 1'000;
    config.retry_after = sim::DurationPs{20'000'000};
    config.qos.tenants = plan.tenants;
    config.qos.offered_window = lc.duration;
    config.qos.autoscaler.enabled = true;
    config.qos.autoscaler.min_active = 1;
    config.qos.autoscaler.period = sim::DurationPs{50'000'000};  // 50 us
    config.qos.autoscaler.up_queue_depth = 2.0;
    config.qos.autoscaler.cooldown = 1;
    return run_server(config, plan.specs, suite);
  };
  const ServeReport report = run_once();

  EXPECT_EQ(report.completed, plan.specs.size());
  EXPECT_GE(report.scale_ups, 1u);
  EXPECT_EQ(report.min_active_devices, 1u);
  EXPECT_GT(report.max_active_devices, report.min_active_devices);
  // The calm tail (arrivals stop at the window) drains the queue: the pool
  // gives devices back.
  EXPECT_GE(report.scale_downs, 1u);

  // The whole trajectory is deterministic.
  const ServeReport again = run_once();
  EXPECT_EQ(again.scale_ups, report.scale_ups);
  EXPECT_EQ(again.scale_downs, report.scale_downs);
  EXPECT_EQ(again.completion_order, report.completion_order);
  EXPECT_EQ(again.final_active_devices, report.final_active_devices);
}

}  // namespace
}  // namespace bigk::serve
