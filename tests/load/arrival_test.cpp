// bigkload arrival-process tests: determinism, statistical sanity of each
// process kind, and the --arrival spec grammar.
#include "load/arrival.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace bigk::load {
namespace {

std::vector<sim::TimePs> draw(const ArrivalSpec& spec, int count) {
  ArrivalProcess process(spec);
  std::vector<sim::TimePs> arrivals;
  arrivals.reserve(count);
  for (int i = 0; i < count; ++i) arrivals.push_back(process.next());
  return arrivals;
}

TEST(ArrivalProcessTest, SameSeedSameSequence) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_per_s = 50'000.0;
    spec.seed = 42;
    EXPECT_EQ(draw(spec, 500), draw(spec, 500))
        << arrival_kind_name(kind);
  }
}

TEST(ArrivalProcessTest, DifferentSeedsDiverge) {
  ArrivalSpec spec;
  spec.rate_per_s = 50'000.0;
  spec.seed = 1;
  const auto first = draw(spec, 100);
  spec.seed = 2;
  EXPECT_NE(first, draw(spec, 100));
}

TEST(ArrivalProcessTest, ArrivalsAreStrictlyIncreasing) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kMmpp, ArrivalKind::kDiurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_per_s = 1e6;  // high rate provokes sub-ps gap rounding
    const auto arrivals = draw(spec, 2'000);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      ASSERT_LT(arrivals[i - 1], arrivals[i]) << arrival_kind_name(kind);
    }
  }
}

TEST(ArrivalProcessTest, PoissonMeanRateIsClose) {
  ArrivalSpec spec;
  spec.rate_per_s = 100'000.0;
  spec.seed = 7;
  const int count = 20'000;
  const auto arrivals = draw(spec, count);
  const double span_s = static_cast<double>(arrivals.back()) / 1e12;
  const double observed = count / span_s;
  EXPECT_NEAR(observed, spec.rate_per_s, spec.rate_per_s * 0.05);
}

TEST(ArrivalProcessTest, MmppIsBurstierThanPoisson) {
  // Squared coefficient of variation of the gaps: ~1 for Poisson, > 1 for
  // a 2-state MMPP with well-separated rates.
  const auto cv2 = [](const std::vector<sim::TimePs>& arrivals) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      gaps.push_back(static_cast<double>(arrivals[i] - arrivals[i - 1]));
    }
    double mean = 0.0;
    for (const double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (const double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return var / (mean * mean);
  };
  ArrivalSpec poisson;
  poisson.rate_per_s = 50'000.0;
  poisson.seed = 11;
  ArrivalSpec mmpp = poisson;
  mmpp.kind = ArrivalKind::kMmpp;
  mmpp.burst_rate_per_s = 500'000.0;
  const double poisson_cv2 = cv2(draw(poisson, 20'000));
  const double mmpp_cv2 = cv2(draw(mmpp, 20'000));
  EXPECT_NEAR(poisson_cv2, 1.0, 0.15);
  EXPECT_GT(mmpp_cv2, 1.5);
}

TEST(ArrivalProcessTest, DiurnalRateStaysWithinEnvelope) {
  // Thinning against the peak rate: no window may exceed peak for long, and
  // the cycle must actually modulate (a busy and a quiet phase exist).
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_s = 100'000.0;
  spec.amplitude = 0.9;
  spec.period = sim::kMillisecond;
  spec.seed = 5;
  ArrivalProcess process(spec);
  // Bucket arrivals per quarter-period over 8 periods.
  std::vector<int> buckets(32, 0);
  const sim::DurationPs bucket_width = spec.period / 4;
  for (;;) {
    const sim::TimePs t = process.next();
    const std::size_t bucket = static_cast<std::size_t>(t / bucket_width);
    if (bucket >= buckets.size()) break;
    ++buckets[bucket];
  }
  int busiest = 0;
  int quietest = 1 << 30;
  for (const int count : buckets) {
    busiest = std::max(busiest, count);
    quietest = std::min(quietest, count);
  }
  EXPECT_GT(busiest, 2 * std::max(1, quietest));
}

TEST(ArrivalSpecTest, ParseRoundTrips) {
  for (const char* text :
       {"poisson,rate=2500,seed=9",
        "mmpp,rate=1000,burst=9000,calm_us=300,burst_us=50,seed=3",
        "diurnal,rate=800,amplitude=0.5,period_us=2000,seed=4"}) {
    const ArrivalSpec spec = ArrivalSpec::parse(text);
    const ArrivalSpec again = ArrivalSpec::parse(spec.to_string());
    EXPECT_EQ(again.kind, spec.kind) << text;
    EXPECT_DOUBLE_EQ(again.rate_per_s, spec.rate_per_s) << text;
    EXPECT_DOUBLE_EQ(again.burst_rate_per_s, spec.burst_rate_per_s) << text;
    EXPECT_EQ(again.mean_calm, spec.mean_calm) << text;
    EXPECT_EQ(again.mean_burst, spec.mean_burst) << text;
    EXPECT_DOUBLE_EQ(again.amplitude, spec.amplitude) << text;
    EXPECT_EQ(again.period, spec.period) << text;
    EXPECT_EQ(again.seed, spec.seed) << text;
  }
}

TEST(ArrivalSpecTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(ArrivalSpec::parse("uniform"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson,rate=-5"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson,bogus=1"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse(""), std::invalid_argument);
}

TEST(ArrivalSpecTest, ScaledMultipliesEveryRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kMmpp;
  spec.rate_per_s = 1'000.0;
  spec.burst_rate_per_s = 8'000.0;
  const ArrivalSpec doubled = spec.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.rate_per_s, 2'000.0);
  EXPECT_DOUBLE_EQ(doubled.burst_rate_per_s, 16'000.0);
  EXPECT_EQ(doubled.seed, spec.seed);
}

}  // namespace
}  // namespace bigk::load
