// bigkload determinism guard (seed regression): the same --arrival seed must
// produce a byte-identical generated plan, schedule, report JSON, and
// metrics JSON across independent runs — with the chunk cache on and off,
// in open- and closed-loop mode.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "load/generator.hpp"
#include "obs/metrics_registry.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

const std::vector<std::string> kApps{"toy0", "toy1", "toy2"};

load::LoadConfig load_config(std::uint64_t seed, bool closed_loop) {
  load::LoadConfig config;
  config.arrival.kind = load::ArrivalKind::kMmpp;
  config.arrival.rate_per_s = 120'000.0;
  config.arrival.burst_rate_per_s = 500'000.0;
  config.arrival.seed = seed;
  config.duration = 500 * sim::kMicrosecond;
  config.closed_loop = closed_loop;
  load::TenantSpec lc;
  lc.qos.name = "lc";
  lc.qos.slo = SloClass::kLatencyCritical;
  lc.qos.weight = 8;
  lc.qos.deadline = 400 * sim::kMicrosecond;
  lc.qos.think_time = 20 * sim::kMicrosecond;
  lc.share = 0.3;
  lc.clients = 8;
  load::TenantSpec batch;
  batch.qos.name = "batch";
  batch.qos.weight = 1;
  batch.qos.quota = 8;
  batch.qos.think_time = 10 * sim::kMicrosecond;
  batch.share = 0.7;
  batch.clients = 16;
  config.tenants = {lc, batch};
  return config;
}

struct RunOutput {
  ServeReport report;
  std::string report_json;
  std::string metrics_json;
};

RunOutput run_once(std::uint64_t seed, bool cache_enabled,
                   bool closed_loop = false) {
  const load::LoadConfig lc = load_config(seed, closed_loop);
  const load::LoadPlan plan = load::make_load(lc, kApps);
  const auto suite = make_toy_suite(3, 2'000);

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.system = toy_system();
  config.devices = 3;
  config.policy = Policy::kAppAffinity;
  config.queue_depth = 12;
  config.max_retries = 200;
  config.retry_after = sim::DurationPs{20'000'000};
  config.engine = toy_engine_options();
  config.metrics = &registry;
  config.metrics_prefix = "load.determinism";
  config.cache_enabled = cache_enabled;
  config.cache_bytes = 256 << 10;
  config.qos.tenants = plan.tenants;
  config.qos.closed_loop = closed_loop;
  config.qos.offered_window = lc.duration;
  config.qos.autoscaler.enabled = true;
  config.qos.autoscaler.min_active = 1;
  config.qos.autoscaler.period = sim::DurationPs{50'000'000};
  config.qos.autoscaler.cooldown = 1;

  RunOutput output;
  output.report = run_server(config, plan.specs, suite);
  std::ostringstream report_out;
  output.report.write_json(report_out);
  output.report_json = report_out.str();
  std::ostringstream metrics_out;
  registry.write_json_array(metrics_out);
  output.metrics_json = metrics_out.str();
  return output;
}

void expect_identical(const RunOutput& first, const RunOutput& second) {
  EXPECT_EQ(first.report.completion_order, second.report.completion_order);
  EXPECT_EQ(first.report.makespan, second.report.makespan);
  EXPECT_EQ(first.report.rejections, second.report.rejections);
  EXPECT_EQ(first.report.scale_ups, second.report.scale_ups);
  EXPECT_EQ(first.report.scale_downs, second.report.scale_downs);
  ASSERT_EQ(first.report.jobs.size(), second.report.jobs.size());
  for (std::size_t i = 0; i < first.report.jobs.size(); ++i) {
    EXPECT_EQ(first.report.jobs[i].device, second.report.jobs[i].device);
    EXPECT_EQ(first.report.jobs[i].start_time,
              second.report.jobs[i].start_time);
    EXPECT_EQ(first.report.jobs[i].finish_time,
              second.report.jobs[i].finish_time);
  }
  ASSERT_EQ(first.report.tenants.size(), second.report.tenants.size());
  for (std::size_t t = 0; t < first.report.tenants.size(); ++t) {
    EXPECT_EQ(first.report.tenants[t].completed,
              second.report.tenants[t].completed);
    EXPECT_EQ(first.report.tenants[t].shed, second.report.tenants[t].shed);
    EXPECT_EQ(first.report.tenants[t].latency_p99,
              second.report.tenants[t].latency_p99);
  }
  EXPECT_EQ(first.report_json, second.report_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(LoadDeterminismTest, GeneratedPlanIsByteStable) {
  const load::LoadConfig lc = load_config(2014, false);
  const load::LoadPlan first = load::make_load(lc, kApps);
  const load::LoadPlan second = load::make_load(lc, kApps);
  ASSERT_EQ(first.specs.size(), second.specs.size());
  ASSERT_GT(first.specs.size(), 0u);
  for (std::size_t i = 0; i < first.specs.size(); ++i) {
    EXPECT_EQ(first.specs[i].id, second.specs[i].id);
    EXPECT_EQ(first.specs[i].app, second.specs[i].app);
    EXPECT_EQ(first.specs[i].tenant, second.specs[i].tenant);
    EXPECT_EQ(first.specs[i].client, second.specs[i].client);
    EXPECT_EQ(first.specs[i].submit_time, second.specs[i].submit_time);
  }
}

TEST(LoadDeterminismTest, OpenLoopTwoRunsAreByteIdentical) {
  expect_identical(run_once(2014, false), run_once(2014, false));
}

TEST(LoadDeterminismTest, CachedRunsAreByteIdentical) {
  const RunOutput first = run_once(2014, true);
  const RunOutput second = run_once(2014, true);
  EXPECT_GT(first.report.cache_hits, 0u);
  expect_identical(first, second);
}

TEST(LoadDeterminismTest, ClosedLoopRunsAreByteIdentical) {
  expect_identical(run_once(2014, false, true),
                   run_once(2014, false, true));
}

TEST(LoadDeterminismTest, CacheOnAndOffAgreeOnOutcomes) {
  // The cache accelerates staging but must not change admission or QoS
  // outcomes' integrity: same job set, every completion's results verified
  // inside ToyRunner either way.
  const RunOutput cached = run_once(2014, true);
  const RunOutput uncached = run_once(2014, false);
  ASSERT_EQ(cached.report.jobs.size(), uncached.report.jobs.size());
  EXPECT_GT(cached.report.cache_hits, 0u);
  EXPECT_EQ(uncached.report.cache_hits, 0u);
  EXPECT_EQ(cached.report.completed + cached.report.dropped +
                cached.report.failed_jobs,
            uncached.report.completed + uncached.report.dropped +
                uncached.report.failed_jobs);
}

TEST(LoadDeterminismTest, DifferentArrivalSeedsChangeThePlan) {
  const load::LoadPlan first =
      load::make_load(load_config(1, false), kApps);
  const load::LoadPlan second =
      load::make_load(load_config(2, false), kApps);
  bool differs = first.specs.size() != second.specs.size();
  for (std::size_t i = 0; !differs && i < first.specs.size(); ++i) {
    differs = first.specs[i].submit_time != second.specs[i].submit_time ||
              first.specs[i].app != second.specs[i].app;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace bigk::serve
