// bigkload end-to-end QoS tests: WFQ protects the latency-critical tenant
// past saturation, per-tenant quotas are enforced, weight-0 background
// tenants are never starved forever, fairness accounting, and scale (many
// concurrent tenants / thousands of closed-loop clients).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "load/generator.hpp"
#include "obs/metrics_registry.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"
#include "toy_suite.hpp"

namespace bigk::serve {
namespace {

using test::make_toy_suite;
using test::toy_engine_options;
using test::toy_system;

constexpr std::uint64_t kRecords = 2'000;
const std::vector<std::string> kApps{"toy0", "toy1"};

ServerConfig base_config(std::uint32_t devices) {
  ServerConfig config;
  config.system = toy_system();
  config.devices = devices;
  config.queue_depth = 16 * devices;
  config.retry_after = sim::DurationPs{20'000'000};  // 20 us
  config.max_retries = 1'000;
  config.engine = toy_engine_options();
  return config;
}

sim::DurationPs seconds_to_ps(double seconds) {
  return static_cast<sim::DurationPs>(seconds * 1e12 + 0.5);
}

/// Pool capacity (jobs/s) on a deadline-free batch workload.
double measure_capacity(std::uint32_t devices) {
  const auto suite = make_toy_suite(2, kRecords);
  WorkloadConfig workload;
  workload.num_jobs = 12;
  workload.seed = 5;
  workload.mean_gap = 0;
  const ServeReport report = run_server(
      base_config(devices), make_workload(kApps, workload), suite);
  return report.throughput_jobs_per_s;
}

TEST(QosServeTest, WfqBeatsFifoPastSaturation) {
  const std::uint32_t devices = 2;
  const double capacity = measure_capacity(devices);
  ASSERT_GT(capacity, 0.0);

  load::LoadConfig lc;
  lc.arrival.rate_per_s = 2.5 * capacity;
  lc.arrival.seed = 31;
  lc.duration = seconds_to_ps(12.0 / capacity);
  load::TenantSpec critical;
  critical.qos.name = "lc";
  critical.qos.slo = SloClass::kLatencyCritical;
  critical.qos.weight = 8;
  critical.qos.deadline =
      seconds_to_ps(3.0 * static_cast<double>(devices) / capacity);
  critical.share = 0.25;
  critical.clients = 16;
  load::TenantSpec batch;
  batch.qos.name = "batch";
  batch.qos.weight = 1;
  batch.share = 0.75;
  batch.clients = 16;
  lc.tenants = {critical, batch};
  const load::LoadPlan plan = load::make_load(lc, kApps);
  ASSERT_GT(plan.specs.size(), 20u);

  const auto run_with = [&](Discipline discipline) {
    const auto suite = make_toy_suite(2, kRecords);
    ServerConfig config = base_config(devices);
    config.max_retries = 2;  // past saturation, shed instead of piling up
    config.qos.tenants = plan.tenants;
    config.qos.discipline = discipline;
    config.qos.offered_window = lc.duration;
    return run_server(config, plan.specs, suite);
  };
  const ServeReport fifo = run_with(Discipline::kFifo);
  const ServeReport wfq = run_with(Discipline::kWfq);

  ASSERT_EQ(fifo.tenants.size(), 2u);
  ASSERT_EQ(wfq.tenants.size(), 2u);
  ASSERT_GT(wfq.tenants[0].submitted, 0u);
  // The headline: weighted-fair ordering protects the latency-critical
  // tenant's SLO attainment when the pool is oversubscribed.
  EXPECT_GT(wfq.tenants[0].slo_attainment, fifo.tenants[0].slo_attainment);
  EXPECT_LT(wfq.tenants[0].latency_p99, fifo.tenants[0].latency_p99);
}

TEST(QosServeTest, TenantQuotaEnforced) {
  const auto suite = make_toy_suite(2, kRecords);
  ServerConfig config = base_config(2);
  TenantConfig limited;
  limited.name = "limited";
  limited.quota = 1;
  config.qos.tenants = {limited};
  config.retry_after = sim::DurationPs{5'000'000};  // 5 us
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app = kApps[i % kApps.size()];
    spec.submit_time = 0;
    spec.tenant = 0;
    spec.client = 1 + i;
    specs.push_back(spec);
  }
  const ServeReport report = run_server(config, specs, suite);
  // One admitted at a time; the rest bounce off the quota until it frees,
  // and every job still completes.
  EXPECT_EQ(report.completed, specs.size());
  EXPECT_GT(report.rejections_tenant_quota, 0u);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_GT(report.tenants[0].rejections, 0u);
  EXPECT_EQ(report.rejections_tenant_quota +
                report.rejections_queue_full + report.rejections_no_device,
            report.rejections);
}

TEST(QosServeTest, WeightZeroTenantIsNeverStarvedForever) {
  const std::uint32_t devices = 2;
  const double capacity = measure_capacity(devices);
  load::LoadConfig lc;
  lc.arrival.rate_per_s = 1.5 * capacity;
  lc.arrival.seed = 13;
  lc.duration = seconds_to_ps(14.0 / capacity);
  load::TenantSpec weighted;
  weighted.qos.name = "fg";
  weighted.qos.weight = 8;
  weighted.share = 0.7;
  load::TenantSpec background;
  background.qos.name = "bg";
  background.qos.weight = 0;  // epsilon weight, not exclusion
  background.share = 0.3;
  lc.tenants = {weighted, background};
  const load::LoadPlan plan = load::make_load(lc, kApps);

  const auto suite = make_toy_suite(2, kRecords);
  ServerConfig config = base_config(devices);
  config.qos.tenants = plan.tenants;
  config.qos.offered_window = lc.duration;
  const ServeReport report = run_server(config, plan.specs, suite);

  ASSERT_EQ(report.tenants.size(), 2u);
  const TenantReport& bg = report.tenants[1];
  ASSERT_GT(bg.submitted, 0u);
  // Arrivals stop at the window's end, so "never starved forever" is
  // observable: every background job eventually completes.
  EXPECT_EQ(bg.completed, bg.submitted);
  EXPECT_EQ(report.completed, plan.specs.size());
  // But it really ran in the background: it waited longer than the
  // weighted tenant.
  EXPECT_GE(bg.latency_p99, report.tenants[0].latency_p99);
}

TEST(QosServeTest, AllShedTenantYieldsHalfJain) {
  // The victim tenant's arrivals land while the queue is full of the other
  // tenant's admitted backlog and it never retries: zero goodput. Jain over
  // weight-normalized goodputs [g, 0] is exactly 1/2.
  const auto suite = make_toy_suite(2, kRecords);
  ServerConfig config = base_config(1);
  config.queue_depth = 4;
  config.max_retries = 0;
  TenantConfig hog;
  hog.name = "hog";
  TenantConfig victim;
  victim.name = "victim";
  config.qos.tenants = {hog, victim};
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 4; ++i) {  // fills the depth-4 queue at t=0
    JobSpec spec;
    spec.id = i;
    spec.app = kApps[0];
    spec.submit_time = 0;
    spec.tenant = 0;
    spec.client = 1 + i;
    specs.push_back(spec);
  }
  for (std::uint64_t i = 0; i < 3; ++i) {  // arrive into the full queue
    JobSpec spec;
    spec.id = 4 + i;
    spec.app = kApps[0];
    spec.submit_time = sim::kMicrosecond;
    spec.tenant = 1;
    spec.client = 10 + i;
    specs.push_back(spec);
  }
  const ServeReport report = run_server(config, specs, suite);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].completed, 4u);
  EXPECT_EQ(report.tenants[1].completed, 0u);
  EXPECT_EQ(report.tenants[1].shed, 3u);
  EXPECT_DOUBLE_EQ(report.tenants[1].goodput_jobs_per_s, 0.0);
  EXPECT_NEAR(report.fairness_jain, 0.5, 1e-9);
}

TEST(QosServeTest, MultiTenantConcurrent) {
  // Everything on at once — WFQ, quotas, deadlines, autoscaler, metrics —
  // on a multi-device pool; the TSan job in scripts/ci.sh load runs this.
  const std::uint32_t devices = 3;
  const double capacity = measure_capacity(devices);
  load::LoadConfig lc;
  lc.arrival.kind = load::ArrivalKind::kMmpp;
  lc.arrival.rate_per_s = 0.8 * capacity;
  lc.arrival.burst_rate_per_s = 2.5 * capacity;
  lc.arrival.seed = 97;
  lc.duration = seconds_to_ps(18.0 / capacity);
  for (int t = 0; t < 3; ++t) {
    load::TenantSpec tenant;
    tenant.qos.name = "t" + std::to_string(t);
    tenant.qos.weight = t == 0 ? 4 : 1;
    tenant.qos.quota = t == 2 ? 4 : 0;
    tenant.share = 1.0;
    tenant.clients = 32;
    lc.tenants.push_back(tenant);
  }
  const load::LoadPlan plan = load::make_load(lc, kApps);

  const auto suite = make_toy_suite(2, kRecords);
  obs::MetricsRegistry registry;
  ServerConfig config = base_config(devices);
  config.qos.tenants = plan.tenants;
  config.qos.offered_window = lc.duration;
  config.qos.autoscaler.enabled = true;
  config.qos.autoscaler.min_active = 1;
  config.qos.autoscaler.period = sim::DurationPs{50'000'000};  // 50 us
  config.qos.autoscaler.cooldown = 1;
  config.metrics = &registry;
  config.metrics_prefix = "qos.concurrent";
  const ServeReport report = run_server(config, plan.specs, suite);

  EXPECT_EQ(report.completed + report.dropped + report.failed_jobs,
            plan.specs.size());
  EXPECT_GT(report.completed, 0u);
  std::uint64_t tenant_sum = 0;
  for (const TenantReport& tenant : report.tenants) {
    tenant_sum += tenant.submitted;
  }
  EXPECT_EQ(tenant_sum, plan.specs.size());
}

TEST(QosServeTest, ThousandsOfClosedLoopClients) {
  const std::uint32_t devices = 4;
  load::LoadConfig lc;
  lc.duration = sim::kMillisecond;
  lc.closed_loop = true;
  lc.arrival.rate_per_s = 1.0;  // < clients => one job per client chain
  lc.arrival.seed = 3;
  for (int t = 0; t < 2; ++t) {
    load::TenantSpec tenant;
    tenant.qos.name = "c" + std::to_string(t);
    tenant.qos.think_time = 10 * sim::kMicrosecond;
    tenant.clients = 750;
    lc.tenants.push_back(tenant);
  }
  const load::LoadPlan plan = load::make_load(lc, kApps);
  EXPECT_EQ(plan.clients, 1'500u);
  EXPECT_EQ(plan.specs.size(), 1'500u);

  const auto suite = make_toy_suite(2, 200);
  ServerConfig config = base_config(devices);
  config.queue_depth = 64;
  config.qos.tenants = plan.tenants;
  config.qos.closed_loop = true;
  config.qos.offered_window = lc.duration;
  const ServeReport report = run_server(config, plan.specs, suite);
  EXPECT_EQ(report.completed + report.dropped + report.failed_jobs,
            plan.specs.size());
  EXPECT_GT(report.completed, 1'000u);
}

TEST(QosServeTest, RejectsOutOfRangeTenantIndex) {
  const auto suite = make_toy_suite(1, kRecords);
  ServerConfig config = base_config(1);
  TenantConfig only;
  only.name = "only";
  config.qos.tenants = {only};
  JobSpec spec;
  spec.id = 0;
  spec.app = "toy0";
  spec.tenant = 7;  // out of range
  EXPECT_THROW(run_server(config, {spec}, suite), std::invalid_argument);
}

}  // namespace
}  // namespace bigk::serve
