#!/usr/bin/env python3
"""Smoke-checks the unified trace exporter end to end.

Runs the pipeline_trace example with --trace-out into a temp directory and
validates the produced Chrome-tracing JSON:
  * the file is a JSON array of event objects,
  * "ph":"M" metadata names the processes (so Perfetto shows labels),
  * spans cover at least four subsystems (PCIe, GPU SMs, host CPU,
    DMA streams and/or the engine's per-block stage rows),
  * at least one counter track ("ph":"C") is present,
  * complete spans never overlap within one (pid, tid) row.

Usage: check_trace.py <path-to-pipeline_trace-binary>
Exits non-zero with a diagnostic on the first violation.
"""

import json
import subprocess
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

REQUIRED_ANY = ["pcie", "gpu", "host", "DMA streams", "engine block"]


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <pipeline_trace binary>")
    # Resolve before running: the subprocess gets cwd=tmpdir, which would
    # break a relative binary path.
    binary = Path(sys.argv[1]).resolve()
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        result = subprocess.run(
            [str(binary), f"--trace-out={trace_path}"],
            cwd=tmp,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if result.returncode != 0:
            fail(f"pipeline_trace exited {result.returncode}:\n{result.stderr}")
        if not trace_path.exists():
            fail("no trace file written")
        events = json.loads(trace_path.read_text())

    if not isinstance(events, list) or not events:
        fail("trace is not a non-empty JSON array")
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            fail(f"malformed event: {event!r}")

    process_names = {}
    for event in events:
        if event["ph"] == "M" and event.get("name") == "process_name":
            process_names[event["pid"]] = event["args"]["name"]
    if not process_names:
        fail('no "ph":"M" process_name metadata')

    span_processes = set()
    spans_by_row = defaultdict(list)
    for event in events:
        if event["ph"] != "X":
            continue
        if event["dur"] < 0:
            fail(f"negative duration: {event!r}")
        span_processes.add(process_names.get(event["pid"], ""))
        spans_by_row[(event["pid"], event["tid"])].append(event)

    covered = [
        need
        for need in REQUIRED_ANY
        if any(name.startswith(need) for name in span_processes)
    ]
    if len(covered) < 4:
        fail(
            f"spans cover only {covered} "
            f"(processes seen: {sorted(span_processes)})"
        )

    if not any(event["ph"] == "C" for event in events):
        fail("no counter track samples")

    for (pid, tid), spans in spans_by_row.items():
        spans.sort(key=lambda event: event["ts"])
        for prev, cur in zip(spans, spans[1:]):
            # Timestamps are microsecond floats printed at ps precision; half
            # a picosecond of slack absorbs the formatting round-trip.
            if cur["ts"] < prev["ts"] + prev["dur"] - 5e-7:
                fail(
                    f"overlap in {process_names.get(pid, pid)!r} tid {tid}: "
                    f'"{prev["name"]}" [{prev["ts"]}, +{prev["dur"]}] then '
                    f'"{cur["name"]}" at {cur["ts"]}'
                )

    print(
        f"check_trace: OK: {sum(1 for e in events if e['ph'] == 'X')} spans "
        f"across {sorted(span_processes)}, "
        f"{sum(1 for e in events if e['ph'] == 'C')} counter samples"
    )


if __name__ == "__main__":
    main()
