#!/usr/bin/env python3
"""Locks down the serve_throughput --metrics-json document schema.

Runs the bigkserve throughput bench on a tiny 2-device workload (small
BIGK_SCALE so the smoke stays fast) and validates the emitted JSON:
  * top level carries "benchmark" == serve_throughput, a positive "scale",
    a "results" array, and a "counters" array,
  * every expected scenario (mixed baseline, mixed pool, reuse round-robin,
    reuse app-affinity, shed) appears in "results" with a metrics object,
  * for every serve scenario prefix the counter registry exports the latency
    percentiles (p50 <= p95 <= p99), the throughput gauge, and a per-device
    utilization gauge in (0, 1] for each pool device,
  * every prefix also carries the bigkprof plane: a bottleneck_stage index in
    [0, 5), overlap_efficiency in [0, 1), at least one profiling window, a
    queueing-delay breakdown whose five parts sum to breakdown.total_ms, SLO
    rule/violation gauges, and a per-device bottleneck_stage gauge,
  * the device-pool scaling gauge (pool vs. single device) is present and
    positive,
  * the bigkcache A/B (run under --cache) reports a positive hit rate with
    positive PCIe bytes saved, and strictly fewer total H2D bytes than the
    no-cache app-affinity run over the same reuse mix,
  * the bigkfault recovery scenario (serve/recover: one device lost
    mid-workload, quarantined, and reinstated) injects at least one fault,
    recovers every injected fault, quarantines and reinstates the device,
    and finishes every job with zero failures attributable to the outage,
  * the bigkhetero spill-over scenario (serve/spill: the batch burst against
    one device with co-execution enabled) actually spills — the spill
    counters are positive once the pool saturates past the spill depth —
    and every spilled job completes on the host cores with zero failures,
  * every prefix carries the bigkdur integrity/durability gauges, and the
    bigkdur integrity scenario (serve/dur/integrity: the reuse mix under
    silent bit-flip injection with the integrity plane + scrub daemon armed)
    detects every injected flip (dur.detected == dur.injected), runs the
    scrub daemon, and finishes every job,
  * the bigkdur crash/restart pair (serve/dur/resume vs serve/dur/restart:
    the same mid-workload crash over the same journal, with output storage
    surviving vs lost) shows checkpoint resume working — the resume run
    resumes jobs and replays nothing, the restart run resumes nothing and
    replays every journaled window, and the resume goodput strictly beats
    the restart goodput (serve.dur.resume_speedup > 1).

With a serve_load binary as the second argument the bigkload plane is
validated too:
  * every load scenario (calibrate, the FIFO/WFQ sweep points, balanced,
    autoscale, closed-loop) appears in "results",
  * every load prefix carries the QoS gauges (offered / goodput / SLO
    attainment, Jain fairness, autoscaler trajectory) plus the JobQueue
    admission instrumentation,
  * WFQ strictly beats FIFO on the latency-critical tenant's SLO attainment
    at both offered-load points past saturation,
  * the balanced four-tenant mix keeps the Jain index >= 0.9,
  * the autoscaler demonstrably reacts to the seeded MMPP burst (at least
    one scale-up, max active devices above the min_active floor).

Every serve prefix (throughput and load) additionally locks the JobQueue
admission instrumentation: a final `queue.depth` gauge of 0 (all jobs
settled) and the `queue.rejected.<cause>` counter breakdown summing to the
run's `rejections` gauge.

Usage: check_serve_bench.py <serve_throughput binary> [<serve_load binary>]
Exits non-zero with a diagnostic on the first violation.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

DEVICES = 2
JOBS = 8
# serve_load runs with more jobs so the offered-load sweep saturates the
# pool long enough for the QoS disciplines to diverge.
LOAD_JOBS = 16
LOAD_MULTIPLIERS = [50, 150, 250]  # --offered-load 0.5,1.5,2.5 as percents
REJECT_CAUSES = ["queue_full", "no_device", "tenant_quota"]
# serve/recover always runs with at least 4 devices so the pool can absorb
# the quarantined one (mirrors recover_devices in bench/serve_throughput.cpp).
RECOVER_DEVICES = max(DEVICES, 4)
# The bigkdur crash/restart pair runs a fixed 4 K-means jobs on 2 devices
# (mirrors kDurJobs / dur_config in bench/serve_throughput.cpp).
DUR_JOBS = 4
DUR_DEVICES = 2

EXPECTED_RESULTS = [
    "serve/mixed/devices1",
    f"serve/mixed/devices{DEVICES}",
    "serve/reuse/round-robin",
    "serve/reuse/app-affinity",
    "serve/reuse/app-affinity+cache",
    "serve/recover",
    "serve/shed",
    "serve/spill",
    "serve/dur/integrity",
    "serve/dur/resume",
    "serve/dur/restart",
]
# (metrics prefix, number of devices the scenario runs with)
EXPECTED_PREFIXES = [
    ("serve.mixed.devices1", 1),
    (f"serve.mixed.devices{DEVICES}", DEVICES),
    ("serve.reuse.round-robin", DEVICES),
    ("serve.reuse.app-affinity", DEVICES),
    ("serve.reuse.app-affinity+cache", DEVICES),
    ("serve.recover", RECOVER_DEVICES),
    ("serve.shed", DEVICES),
    ("serve.spill", 1),
    ("serve.dur.integrity", DEVICES),
    ("serve.dur.resume", DUR_DEVICES),
    ("serve.dur.restart", DUR_DEVICES),
]
SCALAR_GAUGES = [
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "throughput_jobs_per_s",
    "completed",
    "dropped",
    "rejections",
    "peak_queue_depth",
    "prof.bottleneck_stage",
    "prof.overlap_efficiency",
    "prof.windows",
    "prof.bottleneck_flips",
    "breakdown.admission_ms",
    "breakdown.queue_ms",
    "breakdown.staging_ms",
    "breakdown.execution_ms",
    "breakdown.writeback_ms",
    "breakdown.total_ms",
    "slo.rules",
    "slo.violations",
    "dur.verified",
    "dur.detected",
    "dur.repaired",
    "dur.injected",
    "dur.scrub_checked",
    "dur.scrub_evictions",
    "dur.resumed",
    "dur.chunks_replayed",
    "dur.crashed",
]
# Stage count of the BigKernel pipeline (obs::kStageCount).
STAGE_COUNT = 5


def fail(message):
    print(f"check_serve_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_bench(binary, benchmark_name, extra_args):
    """Runs a bench binary with --metrics-json and returns the parsed
    document plus {gauge name: value} and {counter name: value} maps."""
    env = dict(os.environ)
    # Tiny datasets: the schema, not the performance, is under test here.
    env.setdefault("BIGK_SCALE", "0.001")

    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = Path(tmp) / "serve_metrics.json"
        result = subprocess.run(
            [str(binary), f"--metrics-json={metrics_path}", *extra_args],
            cwd=tmp,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if result.returncode != 0:
            fail(
                f"{benchmark_name} exited {result.returncode}:\n"
                f"{result.stdout}\n{result.stderr}"
            )
        if not metrics_path.exists():
            fail(f"{benchmark_name}: no metrics json written")
        try:
            document = json.loads(metrics_path.read_text())
        except json.JSONDecodeError as error:
            fail(f"{benchmark_name}: metrics json does not parse: {error}")

    if document.get("benchmark") != benchmark_name:
        fail(f'bad "benchmark" field: {document.get("benchmark")!r}')
    scale = document.get("scale")
    if not isinstance(scale, (int, float)) or scale <= 0:
        fail(f'bad "scale" field: {scale!r}')

    counters = document.get("counters")
    if not isinstance(counters, list):
        fail('"counters" is not an array')
    gauges = {}
    totals = {}
    for entry in counters:
        if not isinstance(entry, dict) or "type" not in entry or "name" not in entry:
            fail(f"malformed counters entry: {entry!r}")
        if entry["type"] in ("gauge", "counter"):
            value = entry.get("value")
            if not isinstance(value, (int, float)):
                fail(
                    f'{entry["type"]} {entry["name"]!r} has non-numeric '
                    f"value: {value!r}"
                )
            target = gauges if entry["type"] == "gauge" else totals
            target[entry["name"]] = float(value)
    return document, gauges, totals


def result_names(document, expected):
    results = document.get("results")
    if not isinstance(results, list) or not results:
        fail('"results" is not a non-empty array')
    by_name = {}
    for entry in results:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            fail(f"malformed results entry: {entry!r}")
        if not isinstance(entry.get("metrics"), dict) or not entry["metrics"]:
            fail(f'result {entry["name"]!r} lacks a metrics object')
        by_name[entry["name"]] = entry["metrics"]
    for name in expected:
        if name not in by_name:
            fail(f"missing result {name!r} (have {sorted(by_name)})")
    return by_name


def make_lookup(kind, table):
    def lookup(name):
        if name not in table:
            fail(f"missing {kind} {name!r}")
        return table[name]

    return lookup


def check_queue_instrumentation(prefix, gauge, counter):
    """JobQueue admission gauges: final depth 0 (every job settled) and the
    rejected-by-cause counter breakdown summing to the run's rejections."""
    depth = gauge(f"{prefix}.queue.depth")
    if depth != 0:
        fail(f"{prefix}.queue.depth nonzero after settle: {depth}")
    rejected = sum(
        counter(f"{prefix}.queue.rejected.{cause}") for cause in REJECT_CAUSES
    )
    total = gauge(f"{prefix}.rejections")
    if rejected != total:
        fail(
            f"{prefix}: queue.rejected.* counters sum to {rejected} but the "
            f"rejections gauge says {total}"
        )


def check_serve_throughput(binary):
    document, gauges, counters = run_bench(
        binary,
        "serve_throughput",
        ["--devices", str(DEVICES), "--jobs", str(JOBS), "--cache"],
    )
    results = result_names(document, EXPECTED_RESULTS)
    gauge = make_lookup("gauge", gauges)
    counter = make_lookup("counter", counters)

    for prefix, devices in EXPECTED_PREFIXES:
        for suffix in SCALAR_GAUGES:
            gauge(f"{prefix}.{suffix}")
        check_queue_instrumentation(prefix, gauge, counter)
        p50 = gauge(f"{prefix}.latency_p50_ms")
        p95 = gauge(f"{prefix}.latency_p95_ms")
        p99 = gauge(f"{prefix}.latency_p99_ms")
        if not 0 <= p50 <= p95 <= p99:
            fail(f"{prefix}: percentiles out of order: {p50} / {p95} / {p99}")
        for dev in range(devices):
            utilization = gauge(f"{prefix}.dev{dev}.utilization")
            if not 0 < utilization <= 1:
                fail(
                    f"{prefix}.dev{dev}.utilization out of (0, 1]: {utilization}"
                )
            bottleneck = gauge(f"{prefix}.dev{dev}.bottleneck_stage")
            if not 0 <= bottleneck < STAGE_COUNT:
                fail(
                    f"{prefix}.dev{dev}.bottleneck_stage out of "
                    f"[0, {STAGE_COUNT}): {bottleneck}"
                )
        if f"{prefix}.dev{devices}.utilization" in gauges:
            fail(f"{prefix} exports more devices than the scenario ran with")

        # bigkprof attribution plane: pool bottleneck, overlap, windows.
        bottleneck = gauge(f"{prefix}.prof.bottleneck_stage")
        if not 0 <= bottleneck < STAGE_COUNT:
            fail(
                f"{prefix}.prof.bottleneck_stage out of "
                f"[0, {STAGE_COUNT}): {bottleneck}"
            )
        overlap = gauge(f"{prefix}.prof.overlap_efficiency")
        if not 0 <= overlap < 1:
            fail(f"{prefix}.prof.overlap_efficiency out of [0, 1): {overlap}")
        if gauge(f"{prefix}.prof.windows") < 1:
            fail(f"{prefix}.prof.windows: no profiled windows")

        # Queueing-delay breakdown: five parts partition the mean latency.
        parts = sum(
            gauge(f"{prefix}.breakdown.{part}_ms")
            for part in ("admission", "queue", "staging", "execution",
                         "writeback")
        )
        total = gauge(f"{prefix}.breakdown.total_ms")
        if total <= 0:
            fail(f"{prefix}.breakdown.total_ms is not positive: {total}")
        # The gauges round-trip through the JSON writer's 9-significant-digit
        # formatting, so allow serialization rounding on the partition check.
        if abs(parts - total) > max(1e-6, total * 1e-6):
            fail(
                f"{prefix}: breakdown parts sum {parts} != total {total}"
            )
        if gauge(f"{prefix}.breakdown.execution_ms") <= 0:
            fail(f"{prefix}: execution breakdown share is not positive")

        # No --slo spec was passed: the gauges exist but stay 0/0.
        if gauge(f"{prefix}.slo.rules") != 0:
            fail(f"{prefix}.slo.rules nonzero without an --slo spec")
        if gauge(f"{prefix}.slo.violations") != 0:
            fail(f"{prefix}.slo.violations nonzero without an --slo spec")

    scaling = gauge(f"serve.scaling.devices{DEVICES}_vs_1")
    if scaling <= 0:
        fail(f"scaling gauge is not positive: {scaling}")

    completed = gauge(f"serve.mixed.devices{DEVICES}.completed")
    if completed != JOBS:
        fail(f"pool scenario completed {completed} of {JOBS} jobs")

    # bigkcache A/B over the reuse mix: the cache must actually engage and
    # must strictly reduce the PCIe traffic against the no-cache run.
    hit_rate = gauge("serve.cache.hit_rate")
    if not 0 < hit_rate <= 1:
        fail(f"serve.cache.hit_rate out of (0, 1]: {hit_rate}")
    if gauge("serve.cache.hits") <= 0:
        fail("serve.cache.hits is not positive")
    if gauge("serve.cache.bytes_saved") <= 0:
        fail("serve.cache.bytes_saved is not positive")
    h2d_cache = gauge("serve.cache.h2d_bytes")
    h2d_nocache = gauge("serve.nocache.h2d_bytes")
    if not 0 < h2d_cache < h2d_nocache:
        fail(
            "cached reuse mix did not reduce H2D traffic: "
            f"{h2d_cache} (cache) vs {h2d_nocache} (no cache)"
        )

    # bigkfault recovery: the device_lost injection must fire, every injected
    # fault must be recovered, the device must round-trip through quarantine
    # and reinstatement, and no job may fail because of the outage.
    injected = gauge("serve.recover.fault.injected")
    recovered = gauge("serve.recover.fault.recovered")
    if injected <= 0:
        fail(f"recover scenario injected no faults: {injected}")
    if recovered != injected:
        fail(
            "recover scenario did not recover every injected fault: "
            f"{recovered} recovered vs {injected} injected"
        )
    if gauge("serve.recover.failed_jobs") != 0:
        fail(
            "recover scenario shed jobs to the outage: "
            f"{gauge('serve.recover.failed_jobs')} failed"
        )
    if gauge("serve.recover.completed") != JOBS:
        fail(
            f"recover scenario completed {gauge('serve.recover.completed')} "
            f"of {JOBS} jobs"
        )
    if gauge("serve.recover.quarantines") < 1:
        fail("recover scenario never quarantined the lost device")
    if gauge("serve.recover.reinstatements") < 1:
        fail("recover scenario never reinstated the lost device")
    if gauge("serve.recover.redispatches") < 1:
        fail("recover scenario never redispatched the in-flight job")

    # bigkhetero spill-over: the single-device pool saturates under the batch
    # burst, so jobs past the spill depth must run on the host cores — and
    # every one of them must finish. Cold device + co-execution means zero
    # dropped, zero failed.
    spills = gauge("serve.spill.hetero.spills")
    if spills <= 0:
        fail(f"spill scenario never spilled: {spills}")
    cpu_completed = gauge("serve.spill.hetero.cpu_completed")
    if cpu_completed != spills:
        fail(
            "spill scenario lost spilled jobs: "
            f"{cpu_completed} cpu-completed vs {spills} spilled"
        )
    if gauge("serve.spill.failed_jobs") != 0:
        fail(
            f"spill scenario failed jobs: {gauge('serve.spill.failed_jobs')}"
        )
    if gauge("serve.spill.dropped") != 0:
        fail(f"spill scenario dropped jobs: {gauge('serve.spill.dropped')}")
    if gauge("serve.spill.completed") != JOBS:
        fail(
            f"spill scenario completed {gauge('serve.spill.completed')} "
            f"of {JOBS} jobs"
        )

    # bigkdur integrity: the bit-flip specs must actually fire, and with the
    # integrity plane armed every injected flip must be detected — at the
    # write-back digest check, on the next cache hit, or by the scrub daemon
    # — and repaired without failing a single job.
    flips = gauge("serve.dur.integrity.dur.injected")
    detected = gauge("serve.dur.integrity.dur.detected")
    if flips <= 0:
        fail(f"dur/integrity scenario injected no bit flips: {flips}")
    if detected != flips:
        fail(
            "dur/integrity scenario missed silent corruption: "
            f"{detected} detected vs {flips} injected"
        )
    if gauge("serve.dur.integrity.dur.verified") <= 0:
        fail("dur/integrity scenario performed no integrity verifications")
    if gauge("serve.dur.integrity.dur.scrub_checked") <= 0:
        fail("dur/integrity scenario never ran the cache scrub daemon")
    if gauge("serve.dur.integrity.failed_jobs") != 0:
        fail(
            "dur/integrity scenario failed jobs under bit flips: "
            f"{gauge('serve.dur.integrity.failed_jobs')}"
        )
    if gauge("serve.dur.integrity.completed") != JOBS:
        fail(
            "dur/integrity scenario completed "
            f"{gauge('serve.dur.integrity.completed')} of {JOBS} jobs"
        )

    # bigkdur crash/restart A/B: identical crash, identical journal. The
    # resume run (output storage survived) must resume jobs from their
    # checkpoints without replaying a single journaled window; the restart
    # run (storage lost, digests mismatch) must resume nothing and redo
    # journaled work; and skipping that work must strictly pay off.
    resumed = gauge("serve.dur.resume.dur.resumed")
    if resumed <= 0:
        fail(f"dur/resume scenario resumed no jobs: {resumed}")
    if gauge("serve.dur.resume.dur.chunks_replayed") != 0:
        fail(
            "dur/resume scenario replayed journaled windows: "
            f"{gauge('serve.dur.resume.dur.chunks_replayed')}"
        )
    if gauge("serve.dur.restart.dur.resumed") != 0:
        fail(
            "dur/restart scenario resumed despite lost output storage: "
            f"{gauge('serve.dur.restart.dur.resumed')}"
        )
    replayed = gauge("serve.dur.restart.dur.chunks_replayed")
    if replayed <= 0:
        fail(f"dur/restart scenario replayed no windows: {replayed}")
    for scenario in ("resume", "restart"):
        if gauge(f"serve.dur.{scenario}.completed") != DUR_JOBS:
            fail(
                f"dur/{scenario} scenario completed "
                f"{gauge(f'serve.dur.{scenario}.completed')} of "
                f"{DUR_JOBS} jobs"
            )
        if gauge(f"serve.dur.{scenario}.failed_jobs") != 0:
            fail(
                f"dur/{scenario} scenario failed jobs: "
                f"{gauge(f'serve.dur.{scenario}.failed_jobs')}"
            )
    speedup = gauge("serve.dur.resume_speedup")
    if speedup <= 1:
        fail(
            "checkpoint resume did not beat restart-from-zero: "
            f"speedup {speedup}"
        )

    print(
        f"check_serve_bench: OK: {len(results)} scenarios, "
        f"{len(gauges)} gauges, scaling devices{DEVICES}_vs_1 = {scaling:.2f}, "
        f"cache hit rate {hit_rate:.1%} "
        f"(h2d {h2d_cache:.0f} vs {h2d_nocache:.0f} B), "
        f"recover {recovered:.0f}/{injected:.0f} faults recovered, "
        f"spill {spills:.0f} jobs to host cores ({cpu_completed:.0f} done), "
        f"dur {detected:.0f}/{flips:.0f} flips detected, "
        f"resume {resumed:.0f} jobs / {replayed:.0f} windows saved "
        f"({speedup:.2f}x)"
    )


def check_serve_load(binary):
    document, gauges, counters = run_bench(
        binary,
        "serve_load",
        [
            "--devices",
            str(DEVICES),
            "--jobs",
            str(LOAD_JOBS),
            "--offered-load",
            ",".join(str(m / 100) for m in LOAD_MULTIPLIERS),
        ],
    )
    expected = ["load/calibrate", "load/balanced/wfq", "load/autoscale",
                "load/closed"]
    for pct in LOAD_MULTIPLIERS:
        expected.append(f"load/sweep/x{pct}/fifo")
        expected.append(f"load/sweep/x{pct}/wfq")
    results = result_names(document, expected)
    gauge = make_lookup("gauge", gauges)
    counter = make_lookup("counter", counters)

    if gauge("load.capacity_jobs_per_s") <= 0:
        fail("calibrated capacity is not positive")

    # Schema: every load prefix carries the QoS plane plus the JobQueue
    # admission instrumentation.
    prefixes = ["load.calibrate", "load.balanced", "load.autoscale",
                "load.closed"]
    for pct in LOAD_MULTIPLIERS:
        prefixes.append(f"load.sweep.x{pct}.fifo")
        prefixes.append(f"load.sweep.x{pct}.wfq")
    for prefix in prefixes:
        for suffix in [
            "load.offered_jobs_per_s",
            "load.goodput_jobs_per_s",
            "load.slo_attained",
            "fairness.jain",
            "autoscaler.scale_ups",
            "autoscaler.scale_downs",
            "autoscaler.min_active",
            "autoscaler.max_active",
            "autoscaler.final_active",
            "rejections.tenant_quota",
        ]:
            gauge(f"{prefix}.{suffix}")
        check_queue_instrumentation(prefix, gauge, counter)
        jain = gauge(f"{prefix}.fairness.jain")
        if not 0 <= jain <= 1:
            fail(f"{prefix}.fairness.jain out of [0, 1]: {jain}")

    # Per-tenant gauges on the sweep points (the lc/batch default mix).
    for pct in LOAD_MULTIPLIERS:
        for discipline in ("fifo", "wfq"):
            prefix = f"load.sweep.x{pct}.{discipline}"
            for tenant in ("lc", "batch"):
                for suffix in ("weight", "submitted", "completed", "shed",
                               "goodput_jobs_per_s", "attainment", "p99_ms"):
                    gauge(f"{prefix}.tenant.{tenant}.{suffix}")
            attainment = gauge(f"{prefix}.tenant.lc.attainment")
            if not 0 <= attainment <= 1:
                fail(f"{prefix}.tenant.lc.attainment out of [0, 1]: "
                     f"{attainment}")

    # The QoS headline: past saturation (both points above 100% offered
    # load), WFQ must strictly beat FIFO on the latency-critical tenant's
    # SLO attainment.
    for pct in (150, 250):
        fifo = gauge(f"load.sweep.x{pct}.fifo.tenant.lc.attainment")
        wfq = gauge(f"load.sweep.x{pct}.wfq.tenant.lc.attainment")
        if not wfq > fifo:
            fail(
                f"x{pct}: WFQ does not protect the LC tenant past "
                f"saturation: attainment {wfq} (wfq) vs {fifo} (fifo)"
            )

    # Fairness: four equal tenants at 1.5x capacity stay near-even.
    balanced_jain = gauge("load.balanced.fairness.jain")
    if balanced_jain < 0.9:
        fail(f"balanced mix Jain index below 0.9: {balanced_jain}")

    # The autoscaler must react to the seeded MMPP burst.
    scale_ups = gauge("load.autoscale.autoscaler.scale_ups")
    min_active = gauge("load.autoscale.autoscaler.min_active")
    max_active = gauge("load.autoscale.autoscaler.max_active")
    if scale_ups < 1:
        fail(f"autoscale scenario never scaled up: {scale_ups}")
    if not max_active > min_active:
        fail(
            "autoscale scenario never grew the active set: "
            f"max_active {max_active} vs min_active {min_active}"
        )

    print(
        f"check_serve_bench: OK (load): {len(results)} scenarios, "
        f"capacity {gauge('load.capacity_jobs_per_s'):.0f} jobs/s, "
        "lc attainment wfq vs fifo "
        + " ".join(
            f"x{pct}:{gauge(f'load.sweep.x{pct}.wfq.tenant.lc.attainment'):.2f}"
            f"/{gauge(f'load.sweep.x{pct}.fifo.tenant.lc.attainment'):.2f}"
            for pct in (150, 250)
        )
        + f", balanced jain {balanced_jain:.3f}, "
        f"{scale_ups:.0f} scale-ups"
    )


def main():
    if len(sys.argv) not in (2, 3):
        fail(
            f"usage: {sys.argv[0]} <serve_throughput binary> "
            "[<serve_load binary>]"
        )
    binary = Path(sys.argv[1]).resolve()
    if not binary.exists():
        fail(f"binary not found: {binary}")
    check_serve_throughput(binary)
    if len(sys.argv) == 3:
        load_binary = Path(sys.argv[2]).resolve()
        if not load_binary.exists():
            fail(f"binary not found: {load_binary}")
        check_serve_load(load_binary)


if __name__ == "__main__":
    main()
