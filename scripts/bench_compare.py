#!/usr/bin/env python3
"""Perf-regression gate over the --bench-prof baseline (BENCH_prof.json).

Compares a freshly produced bench-prof document against a committed baseline
and fails (exit 1) on any regression outside tolerance:

  * total_ms / per-stage stage_busy_ms: current may not exceed baseline by
    more than --tolerance (default 2%),
  * bottleneck_stage: must match the baseline exactly (a flipped limiting
    stage is an attribution regression even when the total holds),
  * overlap_efficiency: may not drop more than --overlap-drop (default 0.02)
    below the baseline,
  * h2d_bytes / d2h_bytes: must stay within --bytes-tolerance (default 0.5%)
    of the baseline in either direction (traffic is deterministic; any drift
    means the pipeline changed what it moves),
  * chunks: exact match (chunking is a pure function of config + input),
  * the entry sets must agree: a scenario missing from either side fails.

The simulation is deterministic, so running the gate twice on the same build
must report zero regressions; improvements (current faster than baseline)
never fail, they are just reported.

Usage:
  bench_compare.py --baseline bench/BENCH_prof.json --current out.json
  bench_compare.py --baseline bench/BENCH_prof.json \
                   --bench build/bench/fig6_stages --scale 0.001
  bench_compare.py ... --update        # rewrite the baseline and exit 0

With --bench, the binary is run with BIGK_SCALE=<scale> and
--bench-prof=<tmpfile> to produce the current document.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(message):
    print(f"bench_compare: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_document(path):
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {path}: {error}")
    for key in ("benchmark", "schema", "entries"):
        if key not in document:
            fail(f'{path}: missing "{key}" field')
    if document["schema"] != 1:
        fail(f'{path}: unsupported schema {document["schema"]!r}')
    if not isinstance(document["entries"], dict) or not document["entries"]:
        fail(f'{path}: "entries" is not a non-empty object')
    return document


def run_bench(binary, scale, out_path, extra_args):
    binary = Path(binary).resolve()
    if not binary.exists():
        fail(f"bench binary not found: {binary}")
    env = dict(os.environ)
    if scale is not None:
        env["BIGK_SCALE"] = str(scale)
    command = [str(binary), f"--bench-prof={out_path}"] + list(extra_args)
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=1200, env=env
    )
    if result.returncode != 0:
        fail(
            f"{binary.name} exited {result.returncode}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    if not Path(out_path).exists():
        fail(f"{binary.name} wrote no bench-prof document to {out_path}")


def compare_entry(key, base, cur, args, problems):
    def record(metric, detail):
        problems.append(f"{key}: {metric}: {detail}")

    # Timing: one-sided (slower than baseline + tolerance fails; faster is an
    # improvement, never a failure).
    limit = base["total_ms"] * (1.0 + args.tolerance)
    if cur["total_ms"] > limit:
        record(
            "total_ms",
            f"{cur['total_ms']:.6f} exceeds baseline "
            f"{base['total_ms']:.6f} by more than {args.tolerance:.1%}",
        )
    for stage, base_ms in base.get("stage_busy_ms", {}).items():
        cur_ms = cur.get("stage_busy_ms", {}).get(stage)
        if cur_ms is None:
            record("stage_busy_ms", f"stage {stage!r} missing from current")
            continue
        if cur_ms > base_ms * (1.0 + args.tolerance) + 1e-9:
            record(
                f"stage_busy_ms[{stage}]",
                f"{cur_ms:.6f} exceeds baseline {base_ms:.6f} "
                f"by more than {args.tolerance:.1%}",
            )

    # Attribution: the limiting stage and the overlap quality must hold.
    if cur["bottleneck_stage"] != base["bottleneck_stage"]:
        record(
            "bottleneck_stage",
            f"{cur['bottleneck_stage']!r} != baseline "
            f"{base['bottleneck_stage']!r}",
        )
    if cur["overlap_efficiency"] < base["overlap_efficiency"] - args.overlap_drop:
        record(
            "overlap_efficiency",
            f"{cur['overlap_efficiency']:.4f} dropped more than "
            f"{args.overlap_drop} below baseline "
            f"{base['overlap_efficiency']:.4f}",
        )

    # Traffic: two-sided (the simulation is deterministic; any drift beyond
    # tolerance means the pipeline moves different bytes).
    for metric in ("h2d_bytes", "d2h_bytes"):
        base_bytes = base[metric]
        cur_bytes = cur[metric]
        band = base_bytes * args.bytes_tolerance
        if abs(cur_bytes - base_bytes) > band:
            record(
                metric,
                f"{cur_bytes} outside +/-{args.bytes_tolerance:.2%} of "
                f"baseline {base_bytes}",
            )
    if cur["chunks"] != base["chunks"]:
        record("chunks", f"{cur['chunks']} != baseline {base['chunks']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_prof.json to compare against")
    parser.add_argument("--current",
                        help="bench-prof document produced by this build")
    parser.add_argument("--bench",
                        help="bench binary to run (writes the current "
                             "document itself via --bench-prof)")
    parser.add_argument("--scale", type=float,
                        help="BIGK_SCALE for --bench (default: environment)")
    parser.add_argument("--bench-args", nargs=argparse.REMAINDER, default=[],
                        help="extra arguments forwarded to --bench")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative slowdown allowed on total_ms and "
                             "stage_busy_ms (default 0.02)")
    parser.add_argument("--overlap-drop", type=float, default=0.02,
                        help="absolute overlap_efficiency drop allowed "
                             "(default 0.02)")
    parser.add_argument("--bytes-tolerance", type=float, default=0.005,
                        help="relative two-sided band on h2d/d2h bytes "
                             "(default 0.005)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current document "
                             "instead of comparing")
    args = parser.parse_args()

    if bool(args.current) == bool(args.bench):
        fail("exactly one of --current / --bench is required")

    with tempfile.TemporaryDirectory() as tmp:
        current_path = args.current
        if args.bench:
            current_path = Path(tmp) / "bench_prof.json"
            run_bench(args.bench, args.scale, current_path, args.bench_args)
        current = load_document(current_path)

        if args.update:
            Path(args.baseline).write_text(
                Path(current_path).read_text()
            )
            print(f"bench_compare: baseline updated: {args.baseline} "
                  f"({len(current['entries'])} entries)")
            return

        baseline = load_document(args.baseline)

    if baseline["benchmark"] != current["benchmark"]:
        fail(
            f"benchmark mismatch: baseline {baseline['benchmark']!r} vs "
            f"current {current['benchmark']!r}"
        )
    if baseline.get("scale") != current.get("scale"):
        fail(
            f"scale mismatch: baseline {baseline.get('scale')!r} vs current "
            f"{current.get('scale')!r} (rerun with the baseline's BIGK_SCALE "
            "or regenerate with --update)"
        )

    problems = []
    base_entries = baseline["entries"]
    cur_entries = current["entries"]
    for key in sorted(base_entries):
        if key not in cur_entries:
            problems.append(f"{key}: missing from current run")
            continue
        compare_entry(key, base_entries[key], cur_entries[key], args, problems)
    for key in sorted(cur_entries):
        if key not in base_entries:
            problems.append(
                f"{key}: not in baseline (regenerate with --update)"
            )

    compared = len(set(base_entries) & set(cur_entries))
    if problems:
        print(
            f"bench_compare: {len(problems)} regression(s) across "
            f"{compared} compared entries:",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        sys.exit(1)
    print(
        f"bench_compare: OK: {compared} entries within tolerance "
        f"(total_ms/stage +{args.tolerance:.1%}, bytes "
        f"+/-{args.bytes_tolerance:.2%}, overlap -{args.overlap_drop})"
    )


if __name__ == "__main__":
    main()
