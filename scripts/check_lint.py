#!/usr/bin/env python3
"""Locks down the bigkstatic lint-gate JSON schema end to end.

Runs bigklint --violators --json into a temp directory and validates the
produced document:
  * top level is one JSON object with schema "bigklint-v1", an "apps" array
    and a "violators" array,
  * every app report carries the five named contract checks, passed == AND
    of the checks, and (when passed) affine_reads agrees with
    pattern_applicable,
  * every pattern-applicable app derives at least one detector-confirmed
    affine read-stride cycle and a nonzero 16-hex-digit pattern signature,
  * every seeded violator is detected: its expected check is false, and at
    least one violation of that check names a call-site in violators.hpp
    with a positive line number,
  * violation records carry file/line + origin_file/origin_line provenance.

Usage: check_lint.py <path-to-bigklint-binary>
Exits non-zero with a diagnostic on the first violation.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

CHECKS = [
    "streaming_restriction",
    "addr_gen_purity",
    "phase_agreement",
    "alias_overlap",
    "pattern_consistency",
]
SIGNATURE_RE = re.compile(r"^0x[0-9a-f]{16}$")


def fail(message):
    print(f"check_lint: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_report(report, where):
    for key in ("app", "passed", "affine_reads", "pattern_signature",
                "checks", "streams", "violations"):
        if key not in report:
            fail(f"{where}: report missing key {key!r}")
    checks = report["checks"]
    for check in CHECKS:
        if not isinstance(checks.get(check), bool):
            fail(f"{where}: checks.{check} missing or not a bool")
    if report["passed"] != all(checks[c] for c in CHECKS):
        fail(f"{where}: passed != AND of the five checks")
    if not SIGNATURE_RE.match(report["pattern_signature"]):
        fail(f"{where}: bad pattern_signature "
             f"{report['pattern_signature']!r}")
    if not report["passed"] and report["pattern_signature"] != "0x" + "0" * 16:
        fail(f"{where}: failed report must not carry a signature")
    for stream in report["streams"]:
        for key in ("stream", "has_reads", "has_writes", "affine",
                    "read_strides", "write_strides", "detector_confirmed"):
            if key not in stream:
                fail(f"{where}: stream record missing key {key!r}")
        for cycle in (stream["read_strides"], stream["write_strides"]):
            if not all(isinstance(s, int) for s in cycle):
                fail(f"{where}: non-integer stride in {cycle!r}")
    for violation in report["violations"]:
        for key in ("check", "kind", "message", "file", "line",
                    "origin_file", "origin_line", "stream", "thread"):
            if key not in violation:
                fail(f"{where}: violation missing key {key!r}")
        if violation["check"] not in CHECKS:
            fail(f"{where}: unknown check {violation['check']!r}")
        if "/" in violation["file"]:
            fail(f"{where}: call-site file must be a basename, got "
                 f"{violation['file']!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_lint.py <path-to-bigklint-binary>")
    binary = Path(sys.argv[1])
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "lint.json"
        proc = subprocess.run(
            [str(binary), "--violators", "--quiet", "--json", str(out_path)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            fail(f"bigklint exited {proc.returncode}:\n{proc.stderr}")
        try:
            document = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            fail(f"cannot parse {out_path}: {error}")

    if document.get("schema") != "bigklint-v1":
        fail(f"bad schema tag {document.get('schema')!r}")
    schemes = document.get("schemes")
    if not isinstance(schemes, list) or not schemes:
        fail("schemes must be a non-empty array")
    for required in ("cpu-serial", "cpu-mt", "gpu-single", "gpu-double",
                     "bigkernel", "hetero"):
        if required not in schemes:
            fail(f"schemes array missing {required!r} "
                 f"(one verdict must cover every run path, incl. hetero's "
                 f"CPU side); got {schemes}")
    apps = document.get("apps")
    violators = document.get("violators")
    if not isinstance(apps, list) or not apps:
        fail("apps must be a non-empty array")
    if not isinstance(violators, list) or not violators:
        fail("violators must be a non-empty array (ran with --violators)")

    patterning = 0
    for entry in apps:
        if "pattern_applicable" not in entry or "report" not in entry:
            fail("app entry missing pattern_applicable/report")
        report = entry["report"]
        name = report.get("app", "<unnamed>")
        validate_report(report, f"app {name}")
        if not report["passed"]:
            fail(f"registered app {name} failed verification")
        if report["affine_reads"] != entry["pattern_applicable"]:
            fail(f"app {name}: affine_reads != pattern_applicable")
        if entry["pattern_applicable"]:
            patterning += 1
            confirmed = [
                s for s in report["streams"]
                if s["has_reads"] and s["affine"] and s["detector_confirmed"]
                and s["read_strides"]
            ]
            if not confirmed:
                fail(f"app {name}: no detector-confirmed read cycle")
            if report["pattern_signature"] == "0x" + "0" * 16:
                fail(f"app {name}: missing pattern signature")
    if patterning == 0:
        fail("no pattern-applicable apps in the suite")

    for violator in violators:
        for key in ("name", "expected_check", "detected", "report"):
            if key not in violator:
                fail(f"violator entry missing key {key!r}")
        name = violator["name"]
        expected = violator["expected_check"]
        if expected not in CHECKS:
            fail(f"violator {name}: unknown expected_check {expected!r}")
        report = violator["report"]
        validate_report(report, f"violator {name}")
        if not violator["detected"]:
            fail(f"violator {name} was not detected")
        if report["checks"][expected]:
            fail(f"violator {name}: expected check {expected} still true")
        sited = [
            v for v in report["violations"]
            if v["check"] == expected and v["file"] == "violators.hpp"
            and v["line"] > 0
        ]
        if not sited:
            fail(f"violator {name}: no {expected} violation names a "
                 f"violators.hpp call-site")

    expected_checks = {v["expected_check"] for v in violators}
    if expected_checks != set(CHECKS):
        fail(f"violator suite covers {sorted(expected_checks)}, "
             f"expected all of {CHECKS}")

    print(f"check_lint: OK ({len(apps)} apps, {patterning} patterning, "
          f"{len(violators)} violators all detected)")


if __name__ == "__main__":
    main()
