#!/usr/bin/env python3
"""Locks down the bigkcheck JSONL report schema end to end.

Runs the check_demo example (which seeds one instance of every bug class the
checkers diagnose) with --report-out into a temp directory and validates the
produced report:
  * every line is one JSON object with string "checker", "kind", "message",
  * "checker" is one of memcheck / racecheck / pipecheck,
  * location fields are non-negative integers and each checker carries its
    own (memcheck -> offset; racecheck -> block/warp/lane;
    pipecheck -> block/chunk/slot),
  * every seeded bug class appears at least once across all three checkers.

Usage: check_report.py <path-to-check_demo-binary>
Exits non-zero with a diagnostic on the first violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

CHECKERS = {"memcheck", "racecheck", "pipecheck"}
LOCATION_FIELDS = [
    "offset",
    "allocation",
    "size",
    "block",
    "warp",
    "lane",
    "chunk",
    "slot",
    "stream",
    "thread",
]
# Per-checker fields every report line must carry to be actionable.
REQUIRED_BY_CHECKER = {
    "memcheck": ["offset"],
    "racecheck": ["block", "warp", "lane"],
    "pipecheck": ["block", "chunk", "slot"],
}
EXPECTED_KINDS = {
    "memcheck": {
        "out_of_bounds",
        "uninitialized_read",
        "misaligned_access",
        "use_after_free",
        "double_free",
        "invalid_free",
    },
    "racecheck": {"write_write_race"},
    "pipecheck": {"flag_before_data", "slot_overrun"},
}


def fail(message):
    print(f"check_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <check_demo binary>")
    # Resolve before running: the subprocess gets cwd=tmpdir, which would
    # break a relative binary path.
    binary = Path(sys.argv[1]).resolve()
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory() as tmp:
        report_path = Path(tmp) / "report.jsonl"
        result = subprocess.run(
            [str(binary), f"--report-out={report_path}"],
            cwd=tmp,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if result.returncode != 0:
            fail(
                f"check_demo exited {result.returncode}:\n"
                f"{result.stdout}\n{result.stderr}"
            )
        if not report_path.exists():
            fail("no report file written")
        lines = report_path.read_text().splitlines()

    if not lines:
        fail("report is empty")

    kinds_seen = {checker: set() for checker in CHECKERS}
    for lineno, line in enumerate(lines, start=1):
        try:
            violation = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"line {lineno} is not JSON ({error}): {line!r}")
        if not isinstance(violation, dict):
            fail(f"line {lineno} is not a JSON object: {line!r}")
        for key in ("checker", "kind", "message"):
            if not isinstance(violation.get(key), str) or not violation[key]:
                fail(f'line {lineno} lacks a non-empty string "{key}": {line!r}')
        checker = violation["checker"]
        if checker not in CHECKERS:
            fail(f"line {lineno} has unknown checker {checker!r}")
        extra = set(violation) - {"checker", "kind", "message", *LOCATION_FIELDS}
        if extra:
            fail(f"line {lineno} has unknown fields {sorted(extra)}")
        for field in LOCATION_FIELDS:
            if field in violation:
                value = violation[field]
                if not isinstance(value, int) or isinstance(value, bool):
                    fail(f'line {lineno} field "{field}" is not an int: {value!r}')
                if value < 0:
                    # Unset fields are omitted, never emitted as -1.
                    fail(f'line {lineno} field "{field}" is negative: {value}')
        for field in REQUIRED_BY_CHECKER[checker]:
            if field not in violation:
                fail(
                    f'line {lineno} ({checker}/{violation["kind"]}) lacks the '
                    f'required "{field}" field: {line!r}'
                )
        kinds_seen[checker].add(violation["kind"])

    for checker, expected in EXPECTED_KINDS.items():
        missing = expected - kinds_seen[checker]
        if missing:
            fail(
                f"{checker} never reported {sorted(missing)} "
                f"(saw {sorted(kinds_seen[checker])})"
            )

    print(
        f"check_report: OK: {len(lines)} diagnostics; "
        + "; ".join(
            f"{checker}: {sorted(kinds_seen[checker])}"
            for checker in ("memcheck", "racecheck", "pipecheck")
        )
    )


if __name__ == "__main__":
    main()
