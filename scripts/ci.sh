#!/usr/bin/env bash
# CI entry point: builds and runs the full test suite under three presets —
# plain, AddressSanitizer+UBSan, and ThreadSanitizer — each in its own build
# directory. The simulator is single-threaded coroutines, but the host-side
# bench harness and observers do touch std::atomic state, so TSan stays in
# the matrix.
#
#   scripts/ci.sh [preset ...]     presets: lint plain asan-ubsan tsan load
#                                           hetero dur
#
# With no arguments the lint gate plus all three build presets run. Set
# BIGK_CI_JOBS to override the parallelism (defaults to nproc). The `load`
# preset is the bigkload QoS gate: a TSan build of the load + serve suites,
# the multi-tenant concurrency tests, and the serve_load bench smoke with
# its schema/QoS assertions.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${BIGK_CI_JOBS:-$(nproc)}"

run_preset() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "=== ci preset ${name}: configure (${*:-no extra flags}) ==="
  cmake -B "${build_dir}" -S "${repo_root}" "$@"
  echo "=== ci preset ${name}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ci preset ${name}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
  echo "=== ci preset ${name}: OK ==="
}

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(lint plain asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  case "${preset}" in
    plain)
      run_preset plain
      # bigkprof perf-regression gate: rerun the fig6 stage bench at the
      # committed baseline's scale and fail on any timing / attribution /
      # traffic drift outside tolerance (also runs as the bench_prof_gate
      # ctest; running it by name here keeps the gate visible in CI logs).
      echo "=== ci preset plain: bench_compare perf gate ==="
      python3 "${repo_root}/scripts/bench_compare.py" \
        --baseline "${repo_root}/bench/BENCH_prof.json" \
        --bench "${repo_root}/build-ci-plain/bench/fig6_stages" \
        --scale 0.001
      ;;
    asan-ubsan)
      run_preset asan-ubsan -DBIGK_SANITIZE=address,undefined
      # bigkfault drives the error paths the happy-path suites never reach
      # (chunk retry, degraded rings, quarantine/redispatch); run the fault
      # suites explicitly so a leak or UB on a recovery path fails the
      # preset by name.
      echo "=== ci preset asan-ubsan: fault tests ==="
      "${repo_root}/build-ci-asan-ubsan/tests/fault_plane_test"
      "${repo_root}/build-ci-asan-ubsan/tests/fault_queue_escalation_test"
      "${repo_root}/build-ci-asan-ubsan/tests/fault_cache_reset_test"
      "${repo_root}/build-ci-asan-ubsan/tests/fault_engine_recovery_test"
      "${repo_root}/build-ci-asan-ubsan/tests/fault_serve_recovery_test"
      ;;
    tsan)
      run_preset tsan -DBIGK_SANITIZE=thread
      # The serving-layer stress test is the sharpest probe for shared
      # mutable state across concurrent engines; run it explicitly (beyond
      # its ctest shard) so a TSan hit in it fails the preset by name.
      echo "=== ci preset tsan: serve stress test ==="
      "${repo_root}/build-ci-tsan/tests/serve_stress_test"
      # bigkprof: the full telemetry plane (tracer + registry + per-device
      # profilers + latency sketch + SLO monitor) under a 4-engine serve run;
      # a data race in any shared telemetry sink fails the preset by name.
      echo "=== ci preset tsan: concurrent telemetry test ==="
      "${repo_root}/build-ci-tsan/tests/obs_concurrent_telemetry_test"
      # bigkcache shares one chunk cache + pinned pool across every engine a
      # device runs; exercise the cache suites explicitly under TSan so a
      # data race on the shared cache state fails the preset by name.
      echo "=== ci preset tsan: cache tests ==="
      "${repo_root}/build-ci-tsan/tests/cache_chunk_cache_test"
      "${repo_root}/build-ci-tsan/tests/cache_pinned_pool_test"
      "${repo_root}/build-ci-tsan/tests/cache_engine_cache_test"
      # The fault plane is consulted from every worker an engine spawns and
      # the probe daemon mutates quarantine state concurrently with the
      # dispatch loop; run the fault suites explicitly under TSan too.
      echo "=== ci preset tsan: fault tests ==="
      "${repo_root}/build-ci-tsan/tests/fault_plane_test"
      "${repo_root}/build-ci-tsan/tests/fault_queue_escalation_test"
      "${repo_root}/build-ci-tsan/tests/fault_cache_reset_test"
      "${repo_root}/build-ci-tsan/tests/fault_engine_recovery_test"
      "${repo_root}/build-ci-tsan/tests/fault_serve_recovery_test"
      ;;
    load)
      # bigkload QoS gate. A TSan build, because the QoS plane threads new
      # shared state (WFQ stage, tenant accounting, autoscaler daemon)
      # through the concurrent engine pool: build the load suites + the
      # serve_load bench, run them, then the bench smoke with the WFQ-vs-
      # FIFO / fairness / autoscaler assertions at a tiny scale.
      load_dir="${repo_root}/build-ci-load"
      echo "=== ci preset load: configure (thread sanitizer) ==="
      cmake -B "${load_dir}" -S "${repo_root}" -DBIGK_SANITIZE=thread
      echo "=== ci preset load: build ==="
      cmake --build "${load_dir}" -j "${jobs}" --target \
        serve_wfq_test load_arrival_test load_generator_test load_qos_test \
        load_autoscale_test load_determinism_test serve_stress_test \
        serve_throughput serve_load
      echo "=== ci preset load: load + serve suites under TSan ==="
      "${load_dir}/tests/serve_wfq_test"
      "${load_dir}/tests/load_arrival_test"
      "${load_dir}/tests/load_generator_test"
      # The multi-tenant concurrency probes: every QoS feature at once on a
      # multi-device pool, and thousands of closed-loop client coroutines.
      "${load_dir}/tests/load_qos_test"
      "${load_dir}/tests/load_autoscale_test"
      "${load_dir}/tests/load_determinism_test"
      "${load_dir}/tests/serve_stress_test"
      # The bench smoke runs against an unsanitized build: the offered-load
      # sweep is 10-20x slower under TSan, blowing past the checker's
      # per-binary subprocess timeout. The QoS assertions don't need TSan —
      # the concurrency coverage is the test suites above.
      load_bench_dir="${repo_root}/build-ci-load-bench"
      echo "=== ci preset load: configure bench build (no sanitizer) ==="
      cmake -B "${load_bench_dir}" -S "${repo_root}"
      echo "=== ci preset load: build bench ==="
      cmake --build "${load_bench_dir}" -j "${jobs}" --target \
        serve_throughput serve_load
      echo "=== ci preset load: serve_load bench smoke + QoS assertions ==="
      python3 "${repo_root}/scripts/check_serve_bench.py" \
        "${load_bench_dir}/bench/serve_throughput" \
        "${load_bench_dir}/bench/serve_load"
      echo "=== ci preset load: OK ==="
      ;;
    hetero)
      # bigkhetero co-execution gate. A TSan build, because co-execution is
      # exactly the shape that breeds races: engine pipeline and host-core
      # workers advancing concurrently over the same streams and (delta-
      # merged) tables, plus the serve spill worker running beside the
      # device workers. Then the ratio-sweep and spill bench smokes on an
      # unsanitized build (sim-time benches are meaningless under TSan).
      hetero_dir="${repo_root}/build-ci-hetero"
      echo "=== ci preset hetero: configure (thread sanitizer) ==="
      cmake -B "${hetero_dir}" -S "${repo_root}" -DBIGK_SANITIZE=thread
      echo "=== ci preset hetero: build ==="
      cmake --build "${hetero_dir}" -j "${jobs}" --target \
        hetero_splitter_test hetero_run_test serve_spill_test \
        bench_harness_flags_test
      echo "=== ci preset hetero: co-execution tests under TSan ==="
      "${hetero_dir}/tests/hetero_splitter_test"
      "${hetero_dir}/tests/hetero_run_test"
      "${hetero_dir}/tests/serve_spill_test"
      "${hetero_dir}/tests/bench_harness_flags_test"
      hetero_bench_dir="${repo_root}/build-ci-hetero-bench"
      echo "=== ci preset hetero: configure bench build (no sanitizer) ==="
      cmake -B "${hetero_bench_dir}" -S "${repo_root}"
      echo "=== ci preset hetero: build benches ==="
      cmake --build "${hetero_bench_dir}" -j "${jobs}" --target \
        hetero_sweep serve_throughput
      echo "=== ci preset hetero: ratio-sweep bench smoke ==="
      BIGK_SCALE=0.001 "${hetero_bench_dir}/bench/hetero_sweep"
      echo "=== ci preset hetero: serve spill bench smoke + assertions ==="
      python3 "${repo_root}/scripts/check_serve_bench.py" \
        "${hetero_bench_dir}/bench/serve_throughput"
      echo "=== ci preset hetero: OK ==="
      ;;
    dur)
      # bigkdur durability gate. An ASan+UBSan build of the integrity /
      # scrub / journal / crash-restart suites — the custody-chain and
      # resume paths shuffle raw byte spans and replay partially-built
      # state, exactly where a lifetime bug would hide — plus the crash-
      # restart suite under TSan (a restarted server rebuilds its worker
      # pool over live journal state), then the serve bench smoke with the
      # dur.detected == dur.injected and resume-vs-restart assertions.
      dur_dir="${repo_root}/build-ci-dur"
      echo "=== ci preset dur: configure (address+undefined sanitizer) ==="
      cmake -B "${dur_dir}" -S "${repo_root}" -DBIGK_SANITIZE=address,undefined
      echo "=== ci preset dur: build ==="
      cmake --build "${dur_dir}" -j "${jobs}" --target \
        dur_journal_test dur_scrub_test dur_integrity_test dur_resume_test \
        serve_health_flap_test check_pipecheck_test
      echo "=== ci preset dur: durability suites under ASan/UBSan ==="
      "${dur_dir}/tests/dur_journal_test"
      "${dur_dir}/tests/dur_scrub_test"
      "${dur_dir}/tests/dur_integrity_test"
      "${dur_dir}/tests/dur_resume_test"
      "${dur_dir}/tests/serve_health_flap_test"
      "${dur_dir}/tests/check_pipecheck_test"
      dur_tsan_dir="${repo_root}/build-ci-dur-tsan"
      echo "=== ci preset dur: configure (thread sanitizer) ==="
      cmake -B "${dur_tsan_dir}" -S "${repo_root}" -DBIGK_SANITIZE=thread
      echo "=== ci preset dur: build crash-restart suite ==="
      cmake --build "${dur_tsan_dir}" -j "${jobs}" --target dur_resume_test
      echo "=== ci preset dur: crash-restart under TSan ==="
      "${dur_tsan_dir}/tests/dur_resume_test"
      dur_bench_dir="${repo_root}/build-ci-dur-bench"
      echo "=== ci preset dur: configure bench build (no sanitizer) ==="
      cmake -B "${dur_bench_dir}" -S "${repo_root}"
      echo "=== ci preset dur: build bench ==="
      cmake --build "${dur_bench_dir}" -j "${jobs}" --target serve_throughput
      echo "=== ci preset dur: serve bench smoke + durability assertions ==="
      python3 "${repo_root}/scripts/check_serve_bench.py" \
        "${dur_bench_dir}/bench/serve_throughput"
      echo "=== ci preset dur: OK ==="
      ;;
    lint)
      # bigkstatic gate: build only the bigklint CLI, verify every
      # registered app kernel against the static contracts with the seeded
      # violators armed, and lock the JSON report schema. Fast (no test
      # suite), so it fronts the default matrix and fails first on a
      # contract or schema break.
      lint_dir="${repo_root}/build-ci-lint"
      echo "=== ci preset lint: configure ==="
      cmake -B "${lint_dir}" -S "${repo_root}"
      echo "=== ci preset lint: build bigklint ==="
      cmake --build "${lint_dir}" -j "${jobs}" --target bigklint
      echo "=== ci preset lint: bigklint --violators ==="
      "${lint_dir}/src/bigklint" --violators
      echo "=== ci preset lint: check_lint schema gate ==="
      python3 "${repo_root}/scripts/check_lint.py" "${lint_dir}/src/bigklint"
      echo "=== ci preset lint: OK ==="
      ;;
    tidy)
      # Optional extra: static analysis build (no tests; compile = analyze;
      # .clang-tidy sets WarningsAsErrors so any finding fails the build).
      run_preset tidy -DBIGK_CLANG_TIDY=ON
      ;;
    *)
      echo "ci.sh: unknown preset '${preset}'" >&2
      echo "usage: scripts/ci.sh [lint|plain|asan-ubsan|tsan|load|hetero|dur|tidy ...]" >&2
      exit 2
      ;;
  esac
done

echo "ci.sh: all presets passed: ${presets[*]}"
