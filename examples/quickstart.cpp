// Quickstart: the paper's §III.A programming model in ~80 lines.
//
// A K-means-style assignment kernel runs over a particle array that does not
// fit in (simulated) GPU memory. With BigKernel the host code is exactly the
// paper's: map the big array, upload the small cluster table, launch the
// kernel once. No chunking, no double buffering, no layout management.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <span>
#include <vector>

#include "apps/common.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bigk;

// Records of 8 doubles: [x, y, z, w, cid, pad, pad, pad].
struct AssignClusters {
  core::StreamRef<double> particles;
  core::TableRef<double> centroids;
  std::uint32_t num_clusters;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const double x = ctx.read(particles, r * 8);
      const double y = ctx.read(particles, r * 8 + 1);
      double best = 1e300;
      std::uint32_t best_cluster = 0;
      for (std::uint32_t c = 0; c < num_clusters; ++c) {
        const double dx = x - ctx.load_table(centroids, c * 2);
        const double dy = y - ctx.load_table(centroids, c * 2 + 1);
        const double dist = dx * dx + dy * dy;
        if (dist < best) {
          best = dist;
          best_cluster = c;
        }
      }
      ctx.alu(num_clusters * 8.0);
      ctx.write(particles, r * 8 + 4, static_cast<double>(best_cluster));
    }
  }
};

}  // namespace

int main() {
  // A GTX-680-like system at 1/100 capacity: ~20 MB of GPU memory.
  const apps::ScaledSystem scaled{.scale = 0.01};
  sim::Simulation sim;
  cusim::Runtime runtime(sim, scaled.config());

  // 60 MB of particles against 20 MB of device memory: out of core.
  const std::uint64_t records = (60u << 20) / 64;
  std::vector<double> particles(records * 8);
  apps::Rng rng(42);
  for (std::uint64_t r = 0; r < records; ++r) {
    particles[r * 8] = rng.unit() * 100.0;
    particles[r * 8 + 1] = rng.unit() * 100.0;
  }

  constexpr std::uint32_t kClusters = 16;
  core::TableSet tables;
  auto centroids = tables.add<double>(kClusters * 2);
  apps::Rng crng(7);
  for (double& v : tables.host_span(centroids)) v = crng.unit() * 100.0;

  // --- the BigKernel programming model -----------------------------------
  core::Engine engine(runtime, core::Options{});
  auto stream = engine.streaming_map<double>(
      std::span(particles), core::AccessMode::kReadWrite,
      /*elems_per_record=*/8, /*reads_per_record=*/2, /*writes_per_record=*/1);
  AssignClusters kernel{stream, centroids, kClusters};

  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
         AssignClusters k, std::uint64_t n) -> sim::Task<> {
        core::DeviceTables device =
            co_await core::DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, n, device);  // one launch for all 60 MB
        device.release();
      }(runtime, engine, tables, kernel, records));

  // ------------------------------------------------------------------------
  std::vector<std::uint64_t> histogram(kClusters, 0);
  for (std::uint64_t r = 0; r < records; ++r) {
    ++histogram[static_cast<std::uint32_t>(particles[r * 8 + 4])];
  }

  const auto& metrics = engine.metrics();
  std::printf("assigned %llu particles to %u clusters in %.2f ms simulated\n",
              static_cast<unsigned long long>(records), kClusters,
              sim::to_milliseconds(sim.now()));
  std::printf("kernel launches: 1 (the whole point)\n");
  std::printf("pipeline: %llu chunks, pattern hit rate %.0f%%\n",
              static_cast<unsigned long long>(metrics.chunks),
              100.0 * metrics.pattern_hit_rate());
  std::printf("h2d data %.1f MB (stream is %.1f MB: only accessed fields "
              "moved)\n",
              static_cast<double>(metrics.data_bytes_sent) / 1e6,
              static_cast<double>(records * 64) / 1e6);
  std::printf("largest cluster holds %llu particles\n",
              static_cast<unsigned long long>(
                  *std::max_element(histogram.begin(), histogram.end())));
  return 0;
}
