// The full MasterCard Affinity application as the paper describes it
// (§V): TWO passes over the transaction log, both as BigKernel streaming
// kernels on one engine-managed mapped stream.
//
//   pass 1: extract the customers of target merchant X
//   pass 2: count the merchants those customers visit
//
// (The benchmark suite runs pass 2 against a precomputed customer table;
// this example shows the end-to-end application.)
//
//   $ ./examples/affinity_two_pass
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/mastercard.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bigk;

constexpr std::uint32_t kCustomerBuckets = apps::MastercardApp::kCustomerBuckets;
constexpr std::uint32_t kMerchantBuckets = apps::MastercardApp::kMerchantBuckets;
constexpr std::uint32_t kMaxRecordBytes = apps::MastercardApp::kMaxRecordBytes;

/// Pass 1: mark customers[card] for transactions at the target merchant.
/// The same '\n'-ownership scan as pass 2, writing the customer table.
struct ExtractCustomersKernel {
  core::StreamRef<std::uint8_t> log{0};
  core::TableRef<std::uint32_t> customers;
  std::uint64_t num_bytes;
  std::uint64_t target_merchant;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t begin, std::uint64_t end,
                  std::uint64_t stride) const {
    (void)stride;
    const std::uint64_t window_end =
        std::min(num_bytes, end + kMaxRecordBytes);
    bool capturing = begin == 0;
    std::uint64_t card = 0;
    std::uint64_t merchant = 0;
    std::uint32_t field = 0;
    for (std::uint64_t i = begin; i < window_end; ++i) {
      const std::uint8_t c = ctx.read(log, i);
      apps::charge_alu(ctx, 4, 3.0);
      if (c == '\n') {
        if (capturing && merchant == target_merchant) {
          ctx.store_table(customers, card % kCustomerBuckets,
                          std::uint32_t{1});
        }
        capturing = i < end;
        card = merchant = 0;
        field = 0;
      } else if (capturing) {
        if (c == '|') {
          ++field;
        } else if (field == 0) {
          card = card * 10 + (c - '0');
        } else if (field == 1) {
          merchant = merchant * 10 + (c - '0');
        }
      }
    }
  }
};

}  // namespace

int main() {
  const apps::ScaledSystem scaled{.scale = 0.003};
  sim::Simulation sim;
  cusim::Runtime runtime(sim, scaled.config());

  // Reuse the benchmark app purely as a data generator + reference.
  apps::MastercardApp reference({.data_bytes = scaled.data_bytes(6.4),
                                 .seed = 424242});
  const auto decls = reference.stream_decls();
  const auto& log_binding = decls[0].binding;

  // Our own tables: customers is now COMPUTED by pass 1, not precomputed.
  core::TableSet tables;
  auto customers = tables.add<std::uint32_t>(kCustomerBuckets);
  auto counts = tables.add<std::uint32_t>(kMerchantBuckets);

  core::Options options;
  options.num_blocks = 8;
  core::Engine engine(runtime, options);
  const std::uint32_t stream_id = engine.map_stream(log_binding,
                                                    kMaxRecordBytes);
  core::StreamRef<std::uint8_t> log{stream_id};

  ExtractCustomersKernel pass1{log, customers, reference.num_records(),
                               apps::MastercardApp::kTargetMerchant};
  apps::MastercardApp::Kernel pass2{log, customers, counts,
                                    reference.num_records()};

  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
         ExtractCustomersKernel p1, apps::MastercardApp::Kernel p2,
         std::uint64_t bytes) -> sim::Task<> {
        core::DeviceTables device =
            co_await core::DeviceTables::upload(rt, tbl);
        co_await eng.launch(p1, bytes, device);  // pass 1
        co_await eng.launch(p2, bytes, device);  // pass 2
        co_await device.download();
        device.release();
      }(runtime, engine, tables, pass1, pass2, reference.num_records()));

  // Reference: the generator's own pass-1 table drives the library's pass 2.
  schemes::SchemeConfig sc;
  (void)schemes::run_cpu_serial(scaled.config(), reference, sc);
  const std::uint64_t expected_digest = reference.result_digest();

  std::uint64_t digest = apps::kFnvBasis;
  std::uint64_t visits = 0;
  std::uint32_t top_merchant = 0;
  std::uint32_t top_count = 0;
  auto merchant_counts = tables.host_span(counts);
  for (std::uint32_t m = 0; m < kMerchantBuckets; ++m) {
    digest = apps::fnv1a(digest, merchant_counts[m]);
    visits += merchant_counts[m];
    if (merchant_counts[m] > top_count &&
        m != apps::MastercardApp::kTargetMerchant % kMerchantBuckets) {
      top_count = merchant_counts[m];
      top_merchant = m;
    }
  }

  std::printf("two-pass affinity over %.1f MB of transactions "
              "(%llu records)\n",
              static_cast<double>(reference.num_records()) / 1e6,
              static_cast<unsigned long long>(reference.transactions()));
  std::printf("  customers-of-X visits counted : %llu\n",
              static_cast<unsigned long long>(visits));
  std::printf("  busiest co-visited merchant   : bucket %u (%u visits)\n",
              top_merchant, top_count);
  std::printf("  simulated time (both passes)  : %.2f ms\n",
              sim::to_milliseconds(sim.now()));
  const bool ok = digest == expected_digest;
  std::printf("  matches single-pass reference : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
