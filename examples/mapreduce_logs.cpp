// MapReduce on BigKernel (the paper's §VIII future work): mean response
// size per HTTP status over an out-of-core access log, expressed as a
// 10-line Mapper and executed by the BigKernel pipeline in one launch.
//
//   $ ./examples/mapreduce_logs
#include <cstdio>
#include <vector>

#include "apps/common.hpp"
#include "mapreduce/mapreduce.hpp"

namespace {

using namespace bigk;

// Records of 4 elements: [timestamp, status, bytes, user].
struct BytesByStatus {
  template <class Record, class Emitter>
  void operator()(const Record& record, Emitter& emit) const {
    const std::uint64_t status = record.field(1);
    const std::uint64_t bytes = record.field(2);
    emit.cost(5);
    emit(status, bytes);
  }
};

}  // namespace

int main() {
  const apps::ScaledSystem scaled{.scale = 0.005};
  const gpusim::SystemConfig config = scaled.config();

  const std::uint64_t records = (48u << 20) / 32;  // 48 MB log
  std::vector<std::uint64_t> log(records * 4);
  apps::Rng rng(31337);
  const std::uint64_t statuses[] = {200, 200, 200, 204, 301, 404, 500};
  for (std::uint64_t r = 0; r < records; ++r) {
    log[r * 4] = 1'700'000'000 + r;
    log[r * 4 + 1] = statuses[rng.below(7)];
    log[r * 4 + 2] = 100 + rng.below(65'000);
    log[r * 4 + 3] = rng.next();
  }

  constexpr std::uint32_t kBuckets = 601;  // direct-mapped status keys
  mr::MapReduceJob<std::uint64_t, BytesByStatus> job(
      std::span<std::uint64_t>(log), /*elems_per_record=*/4, /*reads_per_record=*/2,
      BytesByStatus{}, kBuckets);

  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 8;

  std::printf("MapReduce over a %.0f MB access log (mean bytes per "
              "status)...\n\n",
              static_cast<double>(records * 32) / 1e6);
  const mr::MapReduceResult cpu =
      mr::run(job, schemes::Scheme::kCpuSerial, config, sc);
  const mr::MapReduceResult big =
      mr::run(job, schemes::Scheme::kBigKernel, config, sc);

  std::printf("%-8s %14s %14s\n", "status", "requests", "mean bytes");
  for (std::uint64_t status : {200u, 204u, 301u, 404u, 500u}) {
    const mr::Bucket& bucket = big.buckets[status % kBuckets];
    std::printf("%-8llu %14llu %14.1f\n",
                static_cast<unsigned long long>(status),
                static_cast<unsigned long long>(bucket.count),
                bucket.count == 0
                    ? 0.0
                    : static_cast<double>(bucket.sum) /
                          static_cast<double>(bucket.count));
    if (bucket.sum != cpu.buckets[status % kBuckets].sum) {
      std::printf("!! divergence vs CPU reference\n");
      return 1;
    }
  }
  std::printf("\nCPU serial %.2f ms -> BigKernel %.2f ms (%.2fx), "
              "%llu pairs combined GPU-side, 1 kernel launch\n",
              sim::to_milliseconds(cpu.metrics.total_time),
              sim::to_milliseconds(big.metrics.total_time),
              schemes::speedup(cpu.metrics, big.metrics),
              static_cast<unsigned long long>(big.total_pairs()));
  return 0;
}
