// Ablation tour: what each BigKernel feature buys (§IV / Fig. 5 / Table II),
// demonstrated on the Word Count workload.
//
// Walks from the single-buffer baseline through: pipelined overlap, transfer
// volume reduction, coalesced layout, pattern recognition, and
// locality-aware assembly, printing the delta each toggle contributes.
//
//   $ ./examples/ablation_tour
#include <cstdio>

#include "apps/wordcount.hpp"
#include "schemes/runners.hpp"

int main() {
  using namespace bigk;
  const apps::ScaledSystem scaled{.scale = 0.003};
  const gpusim::SystemConfig config = scaled.config();
  apps::WordCountApp app({.data_bytes = scaled.data_bytes(4.5), .seed = 5});

  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 128;

  const schemes::RunMetrics single = schemes::run_gpu_single(config, app, sc);
  const std::uint64_t reference = app.result_digest();
  std::printf("Word Count, %.1f MB corpus; single-buffer baseline %.3f ms\n\n",
              static_cast<double>(app.num_records() * 64) / 1e6,
              sim::to_milliseconds(single.total_time));
  std::printf("%-44s %10s %9s %11s\n", "variant", "sim time", "vs base",
              "h2d moved");

  struct Variant {
    const char* name;
    core::Options options;
  };
  core::Options overlap = core::Options::overlap_only();
  core::Options reduced = core::Options::with_transfer_reduction();
  core::Options full = core::Options::full();
  core::Options no_patterns = core::Options::full();
  no_patterns.pattern_recognition = false;
  core::Options no_locality = core::Options::full();
  no_locality.locality_assembly = false;
  const Variant variants[] = {
      {"pipelined overlap only", overlap},
      {"+ transfer volume reduction", reduced},
      {"+ coalesced layout (full BigKernel)", full},
      {"full, but pattern recognition off", no_patterns},
      {"full, but locality-aware assembly off", no_locality},
  };

  for (const Variant& variant : variants) {
    sc.bigkernel = variant.options;
    sc.bigkernel.num_blocks = 8;
    sc.bigkernel.compute_threads_per_block = 128;
    const schemes::RunMetrics metrics =
        schemes::run_bigkernel(config, app, sc);
    if (app.result_digest() != reference) {
      std::printf("!! %s diverged\n", variant.name);
      return 1;
    }
    std::printf("%-44s %7.3f ms %8.2fx %8.2f MB\n", variant.name,
                sim::to_milliseconds(metrics.total_time),
                schemes::speedup(single, metrics),
                static_cast<double>(metrics.h2d_bytes) / 1e6);
  }

  std::printf("\nWord Count reads 100%% of its input, so transfer reduction "
              "adds nothing;\nthe gains come from overlap, coalescing, and "
              "(vs raw addresses) patterns —\nexactly the paper's Fig. 5 / "
              "Table II story. Every variant produced the\nsame word counts "
              "(digest %016llx).\n",
              static_cast<unsigned long long>(reference));
  return 0;
}
