// Writing your own streaming application against the public API.
//
// Scenario from the paper's introduction: filter + aggregate a huge access
// log. Fixed 32-byte records [timestamp, status, bytes, user]; the kernel
// reads status and bytes (50% of each record), filters server errors, and
// aggregates per-status byte counts into a device table — then the same
// kernel source is validated against a plain CPU run.
//
//   $ ./examples/log_filter
#include <cstdio>
#include <span>
#include <vector>

#include "apps/common.hpp"
#include "schemes/runners.hpp"

namespace {

using namespace bigk;

class LogFilterApp {
 public:
  static constexpr std::uint32_t kElemsPerRecord = 4;
  static constexpr std::uint32_t kStatusBuckets = 600;

  explicit LogFilterApp(std::uint64_t records) : records_(records) {
    log_.resize(records * kElemsPerRecord);
    apps::Rng rng(2026);
    for (std::uint64_t r = 0; r < records; ++r) {
      std::uint64_t* rec = &log_[r * kElemsPerRecord];
      rec[0] = 1'700'000'000 + r;                          // timestamp
      rec[1] = rng.below(100) < 7 ? 500 + rng.below(5)     // server errors
                                  : 200 + rng.below(2);    // OK-ish
      rec[2] = 200 + rng.below(40'000);                    // bytes served
      rec[3] = rng.below(1u << 20);                        // user id
    }
    bytes_by_status_ = tables_.add<std::uint64_t>(kStatusBuckets);
    error_count_ = tables_.add<std::uint64_t>(1);
    reset();
  }

  // --- the duck-typed app interface every scheme runner understands ---
  void reset() {
    for (auto& v : tables_.host_span(bytes_by_status_)) v = 0;
    tables_.host_span(error_count_)[0] = 0;
  }
  std::uint64_t num_records() const { return records_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }

  std::vector<schemes::StreamDecl> stream_decls() {
    schemes::StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(log_.data());
    decl.binding.num_elements = log_.size();
    decl.binding.elem_size = 8;
    decl.binding.mode = core::AccessMode::kReadOnly;
    decl.binding.elems_per_record = kElemsPerRecord;
    decl.binding.reads_per_record = 2;  // status + bytes: 50% of the record
    return {decl};
  }

  struct Kernel {
    core::StreamRef<std::uint64_t> log{0};
    core::TableRef<std::uint64_t> bytes_by_status;
    core::TableRef<std::uint64_t> error_count;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t status = ctx.read(log, r * kElemsPerRecord + 1);
        const std::uint64_t bytes = ctx.read(log, r * kElemsPerRecord + 2);
        apps::charge_alu(ctx, 6, /*warp_divergence=*/1.5);
        ctx.atomic_add_table(bytes_by_status, status % kStatusBuckets, bytes);
        if (status >= 500) {
          ctx.atomic_add_table(error_count, 0, std::uint64_t{1});
        }
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, bytes_by_status_, error_count_}; }

  std::uint64_t errors() const { return tables_.host_span(error_count_)[0]; }
  std::uint64_t bytes_for(std::uint32_t status) const {
    return tables_.host_span(bytes_by_status_)[status];
  }

 private:
  std::uint64_t records_;
  std::vector<std::uint64_t> log_;
  core::TableSet tables_;
  core::TableRef<std::uint64_t> bytes_by_status_;
  core::TableRef<std::uint64_t> error_count_;
};

}  // namespace

int main() {
  const apps::ScaledSystem scaled{.scale = 0.005};
  const gpusim::SystemConfig config = scaled.config();
  LogFilterApp app((32u << 20) / 32);  // 32 MB log vs ~10 MB device memory

  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 8;

  const schemes::RunMetrics cpu = schemes::run_cpu_serial(config, app, sc);
  const std::uint64_t cpu_errors = app.errors();
  const std::uint64_t cpu_200 = app.bytes_for(200);

  const schemes::RunMetrics big = schemes::run_bigkernel(config, app, sc);

  std::printf("access-log aggregation over %llu records (32 MB)\n",
              static_cast<unsigned long long>(app.num_records()));
  std::printf("  server errors        : %llu\n",
              static_cast<unsigned long long>(app.errors()));
  std::printf("  bytes served (200)   : %llu\n",
              static_cast<unsigned long long>(app.bytes_for(200)));
  std::printf("  CPU serial           : %8.3f ms\n",
              sim::to_milliseconds(cpu.total_time));
  std::printf("  BigKernel            : %8.3f ms  (%.2fx, one launch, "
              "%.1f/%.1f MB moved)\n",
              sim::to_milliseconds(big.total_time),
              schemes::speedup(cpu, big),
              static_cast<double>(big.h2d_bytes) / 1e6, 32.0);
  const bool consistent =
      app.errors() == cpu_errors && app.bytes_for(200) == cpu_200;
  std::printf("  results identical    : %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
