// Scheme tour: one workload, all five execution schemes of the paper's
// evaluation — serial CPU, multi-threaded CPU, single-buffer GPU,
// double-buffer GPU, and BigKernel — with identical results and a timing
// comparison, plus BigKernel's per-stage pipeline breakdown.
//
//   $ ./examples/scheme_tour [scale]     (default 0.002)
#include <cstdio>
#include <cstdlib>

#include "apps/dna.hpp"
#include "schemes/runners.hpp"

int main(int argc, char** argv) {
  using namespace bigk;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  const apps::ScaledSystem scaled{.scale = scale};
  const gpusim::SystemConfig config = scaled.config();

  apps::DnaApp app({.data_bytes = scaled.data_bytes(4.5), .seed = 99});
  std::printf("DNA assembly k-mer counting: %.1f MB of reads, %.1f MB GPU "
              "memory\n\n",
              static_cast<double>(app.num_records() * 88) / 1e6,
              static_cast<double>(config.gpu.global_memory_bytes) / 1e6);

  schemes::SchemeConfig sc;
  sc.bigkernel.num_blocks = 8;
  sc.bigkernel.compute_threads_per_block = 128;

  struct Row {
    const char* name;
    schemes::Scheme scheme;
  };
  const Row rows[] = {
      {"CPU serial", schemes::Scheme::kCpuSerial},
      {"CPU multi-threaded", schemes::Scheme::kCpuMultiThreaded},
      {"GPU single buffer", schemes::Scheme::kGpuSingleBuffer},
      {"GPU double buffer", schemes::Scheme::kGpuDoubleBuffer},
      {"GPU BigKernel", schemes::Scheme::kBigKernel},
  };

  std::printf("%-22s %12s %10s %12s %10s\n", "scheme", "sim time", "speedup",
              "h2d moved", "launches");
  sim::DurationPs serial_time = 0;
  schemes::RunMetrics bigkernel_metrics;
  std::uint64_t reference_digest = 0;
  for (const Row& row : rows) {
    const schemes::RunMetrics metrics =
        schemes::run_scheme(row.scheme, config, app, sc);
    if (row.scheme == schemes::Scheme::kCpuSerial) {
      serial_time = metrics.total_time;
      reference_digest = app.result_digest();
    } else if (app.result_digest() != reference_digest) {
      std::printf("!! %s diverged from the serial reference\n", row.name);
      return 1;
    }
    if (row.scheme == schemes::Scheme::kBigKernel) bigkernel_metrics = metrics;
    std::printf("%-22s %9.3f ms %9.2fx %9.2f MB %10llu\n", row.name,
                sim::to_milliseconds(metrics.total_time),
                static_cast<double>(serial_time) /
                    static_cast<double>(metrics.total_time),
                static_cast<double>(metrics.h2d_bytes) / 1e6,
                static_cast<unsigned long long>(metrics.kernel_launches));
  }

  const auto& engine = bigkernel_metrics.engine;
  std::printf("\nBigKernel pipeline stage times (summed across blocks):\n");
  std::printf("  address generation %8.3f ms\n",
              sim::to_milliseconds(engine.addr_gen_busy()));
  std::printf("  data assembly      %8.3f ms\n",
              sim::to_milliseconds(engine.assembly_busy()));
  std::printf("  data transfer      %8.3f ms\n",
              sim::to_milliseconds(engine.transfer_busy()));
  std::printf("  computation        %8.3f ms\n",
              sim::to_milliseconds(engine.compute_busy()));
  std::printf("all schemes produced identical k-mer tables (digest %016llx)\n",
              static_cast<unsigned long long>(reference_digest));
  return 0;
}
