// bigkcheck demo: seeds one instance of every bug class the checkers
// diagnose — against a raw device arena (memcheck), a data-racing kernel
// (racecheck), and a BigKernel engine run with its staging protocol
// deliberately broken (pipecheck) — then prints the collected diagnostics.
//
//   ./check_demo [--report-out=<file>]
//
// With --report-out the full violation list is written as JSONL (one JSON
// object per line), the machine-readable schema scripts/check_report.py
// locks down in CI. The demo self-validates: it exits non-zero if any
// expected violation kind was not diagnosed.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "check/options.hpp"
#include "check/sanitizer.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "gpusim/gpu.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bigk;

struct ScaleKernel {
  core::StreamRef<std::uint64_t> data;
  core::TableRef<std::uint64_t> bias;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      const std::uint64_t a = ctx.read(data, r * 4);
      const std::uint64_t b = ctx.read(data, r * 4 + 1);
      const std::uint64_t bias_value = ctx.load_table(bias, 0);
      ctx.alu(5);
      ctx.write(data, r * 4 + 3, a + b + bias_value);
    }
  }
};

gpusim::SystemConfig small_config() {
  gpusim::SystemConfig config;
  config.gpu.global_memory_bytes = 8 << 20;
  return config;
}

/// Part 1: device-memory bugs against a raw arena.
void seed_memcheck_violations(check::Sanitizer& sanitizer) {
  sim::Simulation sim;
  gpusim::Gpu gpu(sim, small_config());
  sanitizer.install(gpu);
  gpusim::DeviceMemory& memory = gpu.memory();

  auto tile = memory.allocate<std::uint32_t>(3);  // 12 bytes in a 256B block
  for (std::uint64_t i = 0; i < 3; ++i) memory.write(tile, i, 7u);
  (void)memory.read(tile, 3);  // out_of_bounds: into the alignment padding

  auto buffer = memory.allocate<std::uint64_t>(8);
  (void)memory.read(buffer, 0);  // uninitialized_read: never written
  gpusim::DevicePtr<std::uint32_t> skewed{buffer.byte_offset + 2};
  (void)memory.read(skewed, 0);  // misaligned_access: offset % 4 != 0
  memory.free(buffer);
  (void)memory.read(buffer, 0);  // use_after_free

  try {
    memory.free(buffer);  // double_free
  } catch (const gpusim::DoubleFree&) {
  }
  try {
    memory.free_offset(tile.byte_offset + 4);  // invalid_free: interior
  } catch (const gpusim::InvalidFree&) {
  }
  sanitizer.uninstall();
}

/// Part 2: a cross-warp write-write race inside one kernel launch.
void seed_racecheck_violation(check::Sanitizer& sanitizer) {
  sim::Simulation sim;
  gpusim::Gpu gpu(sim, small_config());
  sanitizer.install(gpu);
  auto cell = gpu.memory().allocate<std::uint64_t>(1);
  gpusim::KernelLaunch launch;
  launch.num_blocks = 1;
  launch.threads_per_block = 64;  // two warps
  sim.run_until_complete(gpu.run_simple_kernel(
      launch, [&](gpusim::LaneCtx& lane, std::uint32_t tid) {
        // Lane 0 of each warp stores to the same cell with no barrier.
        if (tid % 32 == 0) lane.store(cell, 0, std::uint64_t{tid});
      }));
  sanitizer.uninstall();
}

/// Part 3: a full engine run with the staging protocol deliberately broken.
void seed_pipecheck_violations(check::Sanitizer& sanitizer,
                               core::Options::FaultInjection fault) {
  constexpr std::uint64_t kRecords = 20'000;
  std::vector<std::uint64_t> host(kRecords * 4);
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    host[r * 4] = r * 3;
    host[r * 4 + 1] = r ^ 5;
    host[r * 4 + 2] = 0xDEAD;
    host[r * 4 + 3] = 0;
  }

  sim::Simulation sim;
  cusim::Runtime runtime(sim, small_config());
  sanitizer.install(runtime.gpu());
  core::Options options;
  options.num_blocks = 4;
  options.compute_threads_per_block = 64;
  options.data_buf_bytes = 16 << 10;
  options.fault = fault;
  core::Engine engine(runtime, options);
  engine.set_sanitizer(&sanitizer);  // collect; do not throw at launch end
  auto stream = engine.streaming_map<std::uint64_t>(
      std::span(host), core::AccessMode::kReadWrite, 4, 2, 1);
  core::TableSet tables;
  auto bias = tables.add<std::uint64_t>(1);
  tables.host_span(bias)[0] = 7;
  ScaleKernel kernel{stream, bias};
  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
         ScaleKernel k, std::uint64_t records) -> sim::Task<> {
        core::DeviceTables device = co_await core::DeviceTables::upload(rt, tbl);
        co_await eng.launch(k, records, device);
        device.release();
      }(runtime, engine, tables, kernel, kRecords));
  sanitizer.uninstall();
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) report_path = arg.substr(13);
  }

  check::CheckOptions options = check::CheckOptions::all_enabled();
  // The faulty engine runs report one flag_before_data per affected chunk;
  // keep every diagnostic so the later slot_overrun run is still recorded.
  options.max_recorded = 4096;
  check::Sanitizer sanitizer(options);

  std::printf("bigkcheck demo: seeding device-memory bugs...\n");
  seed_memcheck_violations(sanitizer);
  std::printf("bigkcheck demo: seeding a cross-warp data race...\n");
  seed_racecheck_violation(sanitizer);
  std::printf(
      "bigkcheck demo: running the engine with the data_ready wait "
      "skipped...\n");
  core::Options::FaultInjection skip_wait;
  skip_wait.skip_data_ready_wait = true;
  seed_pipecheck_violations(sanitizer, skip_wait);
  std::printf(
      "bigkcheck demo: running the engine with the ring slot released "
      "early...\n");
  core::Options::FaultInjection early_release;
  early_release.early_ring_release = true;
  seed_pipecheck_violations(sanitizer, early_release);

  const check::Reporter& reporter = sanitizer.reporter();
  std::printf("\n%s\n", reporter.summary(12).c_str());

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    reporter.write_jsonl(out);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("report: %s (%zu diagnostics, %llu total violations)\n",
                report_path.c_str(), reporter.recorded().size(),
                static_cast<unsigned long long>(reporter.total()));
  }

  // Self-validation: every seeded bug class must have been diagnosed.
  std::set<std::string> kinds;
  for (const check::Violation& violation : reporter.recorded()) {
    kinds.insert(violation.kind);
  }
  const char* expected[] = {
      "out_of_bounds",   "uninitialized_read", "misaligned_access",
      "use_after_free",  "double_free",        "invalid_free",
      "write_write_race", "flag_before_data",  "slot_overrun",
  };
  bool ok = true;
  for (const char* kind : expected) {
    if (kinds.count(kind) == 0) {
      std::fprintf(stderr, "check_demo: expected a %s diagnosis, got none\n",
                   kind);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("check_demo: OK: all %zu seeded bug classes diagnosed\n",
              std::size(expected));
  return 0;
}
