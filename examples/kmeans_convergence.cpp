// Full iterative K-means over an out-of-core particle array: each iteration
// is one BigKernel launch that (a) assigns every particle to its nearest
// centroid (streamed reads + write-back of the cluster id) and (b)
// accumulates per-cluster coordinate sums GPU-side via atomics; the host
// then recomputes the centroids and relaunches. Demonstrates multi-launch
// workflows over one engine-managed stream, with real convergence.
//
//   $ ./examples/kmeans_convergence [iterations]    (default 6)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/common.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bigk;

constexpr std::uint32_t kClusters = 12;
constexpr std::uint32_t kDims = 2;

// Records of 8 doubles: [x, y, cid, pad x5]. One launch assigns and
// accumulates: sums[c*3+d] += point[d], sums[c*3+2] += 1.
struct AssignAndAccumulate {
  core::StreamRef<double> particles;
  core::TableRef<double> centroids;
  core::TableRef<double> sums;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    double centroid[kClusters][kDims];
    for (std::uint32_t c = 0; c < kClusters; ++c) {
      for (std::uint32_t d = 0; d < kDims; ++d) {
        centroid[c][d] = ctx.load_table(centroids, c * kDims + d);
      }
    }
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      double point[kDims];
      for (std::uint32_t d = 0; d < kDims; ++d) {
        point[d] = ctx.read(particles, r * 8 + d);
      }
      double best = 1e300;
      std::uint32_t best_cluster = 0;
      for (std::uint32_t c = 0; c < kClusters; ++c) {
        double dist = 0.0;
        for (std::uint32_t d = 0; d < kDims; ++d) {
          const double delta = point[d] - centroid[c][d];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          best_cluster = c;
        }
      }
      ctx.alu(kClusters * 8.0);
      ctx.write(particles, r * 8 + 2, static_cast<double>(best_cluster));
      for (std::uint32_t d = 0; d < kDims; ++d) {
        ctx.atomic_add_table(sums, best_cluster * 3 + d, point[d]);
      }
      ctx.atomic_add_table(sums, best_cluster * 3 + 2, 1.0);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 6;
  const apps::ScaledSystem scaled{.scale = 0.002};
  sim::Simulation sim;
  cusim::Runtime runtime(sim, scaled.config());

  // Particles drawn around kClusters true centers, cid initially -1.
  const std::uint64_t records = scaled.data_bytes(6.0) / 64;
  std::vector<double> particles(records * 8);
  apps::Rng rng(2014);
  for (std::uint64_t r = 0; r < records; ++r) {
    const std::uint64_t center = rng.below(kClusters);
    particles[r * 8] = (center % 4) * 25.0 + rng.unit() * 8.0;
    particles[r * 8 + 1] = (center / 4) * 25.0 + rng.unit() * 8.0;
    particles[r * 8 + 2] = -1.0;
  }

  core::TableSet tables;
  auto centroids = tables.add<double>(kClusters * kDims);
  auto sums = tables.add<double>(kClusters * 3);
  apps::Rng crng(99);
  for (double& v : tables.host_span(centroids)) v = crng.unit() * 80.0;

  core::Options options;
  options.num_blocks = 8;
  core::Engine engine(runtime, options);
  auto stream = engine.streaming_map<double>(
      std::span(particles), core::AccessMode::kReadWrite, 8, 2, 1);
  AssignAndAccumulate kernel{stream, centroids, sums};

  std::printf("iterative K-means: %llu particles (%.0f MB), %u clusters\n\n",
              static_cast<unsigned long long>(records),
              static_cast<double>(records * 64) / 1e6, kClusters);
  std::printf("%5s %16s %14s\n", "iter", "centroid shift", "sim time");

  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, core::TableSet& tbl,
         AssignAndAccumulate k, std::uint64_t n, int iters,
         core::TableRef<double> cent,
         core::TableRef<double> sum_ref) -> sim::Task<> {
        for (int it = 0; it < iters; ++it) {
          for (double& v : tbl.host_span(sum_ref)) v = 0.0;
          core::DeviceTables device =
              co_await core::DeviceTables::upload(rt, tbl);
          co_await eng.launch(k, n, device);
          co_await device.download();
          device.release();

          auto c = tbl.host_span(cent);
          auto s = tbl.host_span(sum_ref);
          double shift = 0.0;
          for (std::uint32_t cl = 0; cl < kClusters; ++cl) {
            const double count = s[cl * 3 + 2];
            if (count == 0.0) continue;
            for (std::uint32_t d = 0; d < kDims; ++d) {
              const double updated = s[cl * 3 + d] / count;
              shift += std::abs(updated - c[cl * kDims + d]);
              c[cl * kDims + d] = updated;
            }
          }
          std::printf("%5d %16.4f %11.2f ms\n", it + 1, shift,
                      sim::to_milliseconds(rt.sim().now()));
        }
      }(runtime, engine, tables, kernel, records, iterations, centroids,
        sums));

  // Cluster sizes from the final assignment written back to the stream.
  std::vector<std::uint64_t> histogram(kClusters, 0);
  for (std::uint64_t r = 0; r < records; ++r) {
    ++histogram[static_cast<std::uint32_t>(particles[r * 8 + 2])];
  }
  std::printf("\nfinal cluster sizes:");
  for (std::uint64_t count : histogram) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n%d launches over the same mapped stream, %.2f ms total\n",
              iterations, sim::to_milliseconds(sim.now()));
  return 0;
}
