// Records a BigKernel run as a unified Chrome-tracing timeline — the paper's
// Fig. 2 pipeline diagram, drawn from an actual execution, with every
// simulated subsystem on the same time axis: PCIe link transfers, DMA stream
// operations, SM compute intervals, host assembly cores, and the engine's
// five pipeline stages. Open the produced JSON in chrome://tracing or
// https://ui.perfetto.dev.
//
//   $ ./examples/pipeline_trace [--trace-out=<file>] [--metrics-json=<file>]
//   $ ./examples/pipeline_trace [out.json]           (legacy positional form)
//
// Defaults: bigkernel_trace.json, no metrics file.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/kmeans.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/stage.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bigk;
  std::string trace_path = "bigkernel_trace.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(15);
    } else if (arg.rfind("--", 0) != 0) {
      trace_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out=<file>] [--metrics-json=<file>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "error: --trace-out needs a file name\n");
    return 2;
  }

  const apps::ScaledSystem scaled{.scale = 0.002};
  sim::Simulation sim;
  cusim::Runtime runtime(sim, scaled.config());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime.attach_observability(&tracer, &metrics);
  apps::KmeansApp app({.data_bytes = scaled.data_bytes(6.0), .seed = 9});

  core::Options options;
  options.num_blocks = 4;  // few blocks keep the timeline readable
  core::Engine engine(runtime, options);
  engine.set_tracer(&tracer);
  for (const auto& decl : app.stream_decls()) {
    engine.map_stream(decl.binding, decl.overfetch_elems);
  }
  const auto kernel = app.kernel();

  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, apps::KmeansApp& a,
         decltype(kernel) k) -> sim::Task<> {
        core::DeviceTables tables =
            co_await core::DeviceTables::upload(rt, a.tables());
        co_await eng.launch(k, a.num_records(), tables);
        co_await tables.download();
      }(runtime, engine, app, kernel));

  {
    std::ofstream out(trace_path);
    tracer.write_chrome_json(out);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.write_json_array(out);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write metrics json to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }

  sim::DurationPs stage_sum = 0;
  std::printf("engine stage busy times:\n");
  for (obs::Stage stage : obs::all_stages()) {
    const sim::DurationPs busy = engine.metrics().stage_busy(stage);
    stage_sum += busy;
    std::printf("  %-22s %8.2f ms  (spans sum to %.2f ms)\n",
                std::string(obs::stage_name(stage)).c_str(),
                sim::to_milliseconds(busy),
                sim::to_milliseconds(tracer.named_busy(obs::stage_name(stage))));
  }
  std::printf("run took %.2f ms; stages sum to %.2f ms -> %.1fx pipeline "
              "overlap\n",
              sim::to_milliseconds(sim.now()),
              sim::to_milliseconds(stage_sum),
              static_cast<double>(stage_sum) / static_cast<double>(sim.now()));

  std::printf("trace: %zu spans, %zu instants, %zu counter tracks across %zu "
              "processes:",
              tracer.spans().size(), tracer.instants().size(),
              tracer.counter_track_count(), tracer.process_count());
  for (std::uint32_t pid = 1; pid <= tracer.process_count(); ++pid) {
    std::printf(" [%s]", std::string(tracer.process_name(pid)).c_str());
  }
  std::printf("\n");
  std::printf("%llu cache hits / %llu misses on the host side; %llu kernel "
              "launches\n",
              static_cast<unsigned long long>(
                  metrics.counter("hostsim.cache_hits").value()),
              static_cast<unsigned long long>(
                  metrics.counter("hostsim.cache_misses").value()),
              static_cast<unsigned long long>(
                  metrics.counter("gpusim.kernel_launches").value()));
  std::printf("wrote %s%s%s — open it in chrome://tracing or ui.perfetto.dev\n",
              trace_path.c_str(), metrics_path.empty() ? "" : " and ",
              metrics_path.c_str());
  return 0;
}
