// Records a BigKernel run as a Chrome-tracing timeline — the paper's Fig. 2
// pipeline diagram, drawn from an actual execution. Open the produced JSON
// in chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./examples/pipeline_trace [out.json]     (default bigkernel_trace.json)
#include <cstdio>
#include <fstream>

#include "apps/kmeans.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "cusim/runtime.hpp"
#include "sim/simulation.hpp"
#include "trace/recorder.hpp"

int main(int argc, char** argv) {
  using namespace bigk;
  const char* path = argc > 1 ? argv[1] : "bigkernel_trace.json";

  const apps::ScaledSystem scaled{.scale = 0.002};
  sim::Simulation sim;
  cusim::Runtime runtime(sim, scaled.config());
  apps::KmeansApp app({.data_bytes = scaled.data_bytes(6.0), .seed = 9});

  core::Options options;
  options.num_blocks = 4;  // few blocks keep the timeline readable
  core::Engine engine(runtime, options);
  trace::Recorder recorder;
  engine.set_recorder(&recorder);
  for (const auto& decl : app.stream_decls()) {
    engine.map_stream(decl.binding, decl.overfetch_elems);
  }
  const auto kernel = app.kernel();

  sim.run_until_complete(
      [](cusim::Runtime& rt, core::Engine& eng, apps::KmeansApp& a,
         decltype(kernel) k) -> sim::Task<> {
        core::DeviceTables tables =
            co_await core::DeviceTables::upload(rt, a.tables());
        co_await eng.launch(k, a.num_records(), tables);
        co_await tables.download();
      }(runtime, engine, app, kernel));

  std::ofstream out(path);
  recorder.write_chrome_json(out);

  sim::DurationPs stage_sum = 0;
  for (int stage = 0; stage < 5; ++stage) {
    stage_sum +=
        recorder.stage_busy(static_cast<trace::StageEvent::Stage>(stage));
  }
  std::printf("wrote %zu stage intervals across %llu chunks to %s\n",
              recorder.events().size(),
              static_cast<unsigned long long>(engine.metrics().chunks), path);
  std::printf("run took %.2f ms; stages sum to %.2f ms -> %.1fx pipeline "
              "overlap\n",
              sim::to_milliseconds(sim.now()),
              sim::to_milliseconds(stage_sum),
              static_cast<double>(stage_sum) /
                  static_cast<double>(sim.now()));
  std::printf("open the file in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
