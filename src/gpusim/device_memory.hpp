// Simulated GPU global memory: a byte arena with a first-fit free-list
// allocator and typed, bounds-checked access via DevicePtr<T>.
//
// DevicePtr<T> plays the role of a CUDA device pointer: it is not
// dereferenceable on the host; the runtime (cusim) and simulated GPU threads
// (gpusim::LaneCtx) read and write through DeviceMemory.
//
// Every allocation, free, and byte access can additionally be mirrored to a
// MemoryObserver — the hook the check:: device-memory sanitizer installs to
// keep shadow state (bounds, liveness, initialized bytes) without slowing
// the unchecked path.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bigk::gpusim {

class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(std::uint64_t requested, std::uint64_t capacity)
      : std::runtime_error("device memory exhausted: requested " +
                           std::to_string(requested) + " bytes, capacity " +
                           std::to_string(capacity)) {}
};

/// free() of an offset that lies in already-freed (or never-allocated) space.
class DoubleFree : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// free() of an offset that is not an allocation base: the interior of a live
/// allocation, or a point outside the arena entirely.
class InvalidFree : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

template <class T>
struct DevicePtr {
  static constexpr std::uint64_t kNull = ~std::uint64_t{0};

  std::uint64_t byte_offset = kNull;

  bool is_null() const noexcept { return byte_offset == kNull; }

  /// Element arithmetic, like pointer arithmetic on T*. Arithmetic on a null
  /// pointer or past the 64-bit device address space throws instead of
  /// silently wrapping around ~0.
  DevicePtr operator+(std::uint64_t elements) const {
    return DevicePtr{element_address(elements)};
  }

  /// Byte address of element `i` (the "device address" the paper's address
  /// buffers carry).
  std::uint64_t element_address(std::uint64_t i) const {
    if (is_null()) {
      throw std::logic_error("DevicePtr arithmetic on a null device pointer");
    }
    if (i != 0 && i > (kNull - 1 - byte_offset) / sizeof(T)) {
      throw std::overflow_error(
          "DevicePtr arithmetic overflows the device address space: base " +
          std::to_string(byte_offset) + " + " + std::to_string(i) +
          " elements of " + std::to_string(sizeof(T)) + " bytes");
    }
    return byte_offset + i * sizeof(T);
  }

  /// Reinterpret as a different element type (offset is byte-exact).
  template <class U>
  DevicePtr<U> cast() const noexcept {
    return DevicePtr<U>{byte_offset};
  }

  friend bool operator==(DevicePtr, DevicePtr) = default;
};

/// Category of an observed arena access.
enum class MemAccess : std::uint8_t {
  kKernelRead,   // typed load by a simulated GPU lane (or host runtime read)
  kKernelWrite,  // typed store
  kCopyIn,       // raw bytes landing from an H2D copy
  kCopyOut,      // raw bytes leaving via a D2H copy
};

/// Mirror of every allocator and access event; implemented by the
/// check::MemChecker device-memory sanitizer. All hooks fire *before* the
/// operation takes effect (and before the allocator throws on a bad free).
class MemoryObserver {
 public:
  virtual ~MemoryObserver() = default;
  /// `requested` is the caller's byte count, `aligned` the padded block size
  /// actually reserved — accesses into the padding are out of bounds.
  virtual void on_alloc(std::uint64_t offset, std::uint64_t requested,
                        std::uint64_t aligned) = 0;
  virtual void on_free(std::uint64_t offset, std::uint64_t aligned) = 0;
  /// A free the allocator rejects; `is_double_free` distinguishes
  /// freed-or-never-allocated space from a foreign/interior offset.
  virtual void on_bad_free(std::uint64_t offset, bool is_double_free) = 0;
  virtual void on_access(MemAccess kind, std::uint64_t offset,
                         std::uint64_t bytes, std::uint32_t align) = 0;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes)
      : arena_(capacity_bytes) {
    free_blocks_[0] = capacity_bytes;
  }

  std::uint64_t capacity() const noexcept { return arena_.size(); }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t free_bytes() const noexcept { return arena_.size() - used_; }

  /// Installs (or with nullptr removes) the access observer.
  void set_observer(MemoryObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Live allocations (offset -> aligned size), e.g. for an observer
  /// installed after allocations were already made.
  const std::map<std::uint64_t, std::uint64_t>& live_allocations()
      const noexcept {
    return live_allocs_;
  }

  /// Allocates `count` elements of T, 256-byte aligned like cudaMalloc.
  template <class T>
  DevicePtr<T> allocate(std::uint64_t count) {
    return DevicePtr<T>{allocate_bytes(count * sizeof(T))};
  }

  /// First-fit allocation of raw bytes; throws OutOfDeviceMemory on failure.
  std::uint64_t allocate_bytes(std::uint64_t bytes);

  template <class T>
  void free(DevicePtr<T> ptr) {
    free_offset(ptr.byte_offset);
  }

  /// Frees an allocation made by allocate_bytes. Throws DoubleFree when
  /// `offset` points into already-free space and InvalidFree when it is not
  /// an allocation base (both derive from std::invalid_argument).
  void free_offset(std::uint64_t offset);

  template <class T>
  T read(DevicePtr<T> ptr, std::uint64_t index = 0) const {
    const std::uint64_t addr = ptr.element_address(index);
    if (observer_ != nullptr) {
      observer_->on_access(MemAccess::kKernelRead, addr, sizeof(T),
                           sizeof(T));
    }
    T value;
    std::memcpy(&value, checked(addr, sizeof(T)), sizeof(T));
    return value;
  }

  template <class T>
  void write(DevicePtr<T> ptr, std::uint64_t index, const T& value) {
    const std::uint64_t addr = ptr.element_address(index);
    if (observer_ != nullptr) {
      observer_->on_access(MemAccess::kKernelWrite, addr, sizeof(T),
                           sizeof(T));
    }
    std::memcpy(checked_mut(addr, sizeof(T)), &value, sizeof(T));
  }

  /// Raw byte views for host<->device copies; bounds-checked. The returned
  /// spans are what DMA copies read/write, so the observer sees them as
  /// copy-out/copy-in traffic.
  std::span<const std::byte> bytes(std::uint64_t offset,
                                   std::uint64_t n) const {
    if (observer_ != nullptr) {
      observer_->on_access(MemAccess::kCopyOut, offset, n, 1);
    }
    return {static_cast<const std::byte*>(checked(offset, n)), n};
  }
  std::span<std::byte> bytes_mut(std::uint64_t offset, std::uint64_t n) {
    if (observer_ != nullptr) {
      observer_->on_access(MemAccess::kCopyIn, offset, n, 1);
    }
    return {static_cast<std::byte*>(checked_mut(offset, n)), n};
  }

 private:
  const void* checked(std::uint64_t offset, std::uint64_t n) const {
    if (offset + n > arena_.size() || offset + n < offset) {
      throw std::out_of_range("device memory access out of bounds: offset " +
                              std::to_string(offset) + " size " +
                              std::to_string(n));
    }
    return arena_.data() + offset;
  }
  void* checked_mut(std::uint64_t offset, std::uint64_t n) {
    return const_cast<void*>(checked(offset, n));
  }

  static constexpr std::uint64_t kAlignment = 256;

  std::vector<std::byte> arena_;
  std::map<std::uint64_t, std::uint64_t> free_blocks_;  // offset -> size
  std::map<std::uint64_t, std::uint64_t> live_allocs_;  // offset -> size
  std::uint64_t used_ = 0;
  MemoryObserver* observer_ = nullptr;
};

}  // namespace bigk::gpusim
