// Simulated GPU global memory: a byte arena with a first-fit free-list
// allocator and typed, bounds-checked access via DevicePtr<T>.
//
// DevicePtr<T> plays the role of a CUDA device pointer: it is not
// dereferenceable on the host; the runtime (cusim) and simulated GPU threads
// (gpusim::LaneCtx) read and write through DeviceMemory.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

namespace bigk::gpusim {

class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(std::uint64_t requested, std::uint64_t capacity)
      : std::runtime_error("device memory exhausted: requested " +
                           std::to_string(requested) + " bytes, capacity " +
                           std::to_string(capacity)) {}
};

template <class T>
struct DevicePtr {
  static constexpr std::uint64_t kNull = ~std::uint64_t{0};

  std::uint64_t byte_offset = kNull;

  bool is_null() const noexcept { return byte_offset == kNull; }

  /// Element arithmetic, like pointer arithmetic on T*.
  DevicePtr operator+(std::uint64_t elements) const noexcept {
    return DevicePtr{byte_offset + elements * sizeof(T)};
  }

  /// Byte address of element `i` (the "device address" the paper's address
  /// buffers carry).
  std::uint64_t element_address(std::uint64_t i) const noexcept {
    return byte_offset + i * sizeof(T);
  }

  /// Reinterpret as a different element type (offset is byte-exact).
  template <class U>
  DevicePtr<U> cast() const noexcept {
    return DevicePtr<U>{byte_offset};
  }

  friend bool operator==(DevicePtr, DevicePtr) = default;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes)
      : arena_(capacity_bytes) {
    free_blocks_[0] = capacity_bytes;
  }

  std::uint64_t capacity() const noexcept { return arena_.size(); }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t free_bytes() const noexcept { return arena_.size() - used_; }

  /// Allocates `count` elements of T, 256-byte aligned like cudaMalloc.
  template <class T>
  DevicePtr<T> allocate(std::uint64_t count) {
    return DevicePtr<T>{allocate_bytes(count * sizeof(T))};
  }

  /// First-fit allocation of raw bytes; throws OutOfDeviceMemory on failure.
  std::uint64_t allocate_bytes(std::uint64_t bytes);

  template <class T>
  void free(DevicePtr<T> ptr) {
    free_offset(ptr.byte_offset);
  }

  void free_offset(std::uint64_t offset);

  template <class T>
  T read(DevicePtr<T> ptr, std::uint64_t index = 0) const {
    T value;
    std::memcpy(&value, checked(ptr.element_address(index), sizeof(T)),
                sizeof(T));
    return value;
  }

  template <class T>
  void write(DevicePtr<T> ptr, std::uint64_t index, const T& value) {
    std::memcpy(checked_mut(ptr.element_address(index), sizeof(T)), &value,
                sizeof(T));
  }

  /// Raw byte views for host<->device copies; bounds-checked.
  std::span<const std::byte> bytes(std::uint64_t offset,
                                   std::uint64_t n) const {
    return {static_cast<const std::byte*>(checked(offset, n)), n};
  }
  std::span<std::byte> bytes_mut(std::uint64_t offset, std::uint64_t n) {
    return {static_cast<std::byte*>(checked_mut(offset, n)), n};
  }

 private:
  const void* checked(std::uint64_t offset, std::uint64_t n) const {
    if (offset + n > arena_.size() || offset + n < offset) {
      throw std::out_of_range("device memory access out of bounds: offset " +
                              std::to_string(offset) + " size " +
                              std::to_string(n));
    }
    return arena_.data() + offset;
  }
  void* checked_mut(std::uint64_t offset, std::uint64_t n) {
    return const_cast<void*>(checked(offset, n));
  }

  static constexpr std::uint64_t kAlignment = 256;

  std::vector<std::byte> arena_;
  std::map<std::uint64_t, std::uint64_t> free_blocks_;  // offset -> size
  std::map<std::uint64_t, std::uint64_t> live_allocs_;  // offset -> size
  std::uint64_t used_ = 0;
};

}  // namespace bigk::gpusim
