// The simulated GPU: SMs, occupancy-limited block scheduling, PCIe links,
// and the per-thread execution context used by kernels.
//
// Kernels are expressed as a *block driver*: a coroutine invoked once per
// thread block that alternates between
//   - functional lane execution (BlockCtx::run_threads), which runs real C++
//     per-thread code, traces its global-memory accesses, and charges the
//     block's SM with the resulting warp costs, and
//   - synchronization awaits (flags set by the host, barriers, DMA drains),
// which is exactly the structure of the paper's transformed kernels (Fig. 3):
// chunks of straight-line SIMD work separated by block-wide sync points.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "gpusim/config.hpp"
#include "gpusim/device_memory.hpp"
#include "gpusim/warp_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace bigk::gpusim {

class Gpu;
class BlockCtx;

/// Observes the per-lane global-memory access stream of every executed warp
/// (the raw material of the check:: data-race detector) plus the
/// synchronization events that order accesses: block-wide barriers and
/// kernel launch boundaries. `warp` is the warp index within the block and
/// `lane` the lane within that warp; `flags` are WarpTracer::kFlag* bits.
class WarpAccessObserver {
 public:
  virtual ~WarpAccessObserver() = default;
  virtual void on_kernel_begin(std::uint32_t /*num_blocks*/) {}
  virtual void on_kernel_end() {}
  virtual void on_warp_access(std::uint32_t block, std::uint32_t warp,
                              std::uint32_t lane, std::uint64_t addr,
                              std::uint32_t size, std::uint8_t flags) = 0;
  /// One block-wide synchronization round (bar.red) in `block`.
  virtual void on_barrier(std::uint32_t /*block*/) {}
};

/// Kernel launch configuration (the <<<grid, block>>> parameters plus the
/// compile-time resource usage the occupancy calculation of §IV.D needs).
struct KernelLaunch {
  std::uint32_t num_blocks = 1;
  std::uint32_t threads_per_block = 256;
  std::uint32_t regs_per_thread = 32;
  std::uint32_t shared_bytes_per_block = 0;
};

/// Per-thread execution context handed to lane functions. Loads and stores
/// operate on the device arena and are traced for the coalescing model;
/// alu() charges arithmetic work.
class LaneCtx {
 public:
  LaneCtx(DeviceMemory& memory, WarpTracer& tracer,
          std::uint32_t thread_in_block, std::uint32_t global_thread)
      : memory_(memory),
        tracer_(tracer),
        thread_in_block_(thread_in_block),
        global_thread_(global_thread) {}

  std::uint32_t thread_in_block() const noexcept { return thread_in_block_; }
  std::uint32_t global_thread() const noexcept { return global_thread_; }

  template <class T>
  T load(DevicePtr<T> ptr, std::uint64_t index = 0) {
    tracer_.record_access(ptr.element_address(index), sizeof(T));
    return memory_.read(ptr, index);
  }

  template <class T>
  void store(DevicePtr<T> ptr, std::uint64_t index, const T& value) {
    tracer_.record_access(ptr.element_address(index), sizeof(T),
                          WarpTracer::kFlagWrite);
    memory_.write(ptr, index, value);
  }

  /// Atomic read-modify-write on global memory (adds the configured extra
  /// serialization cycles on top of the traced access).
  template <class T>
  T atomic_add(DevicePtr<T> ptr, std::uint64_t index, T delta) {
    tracer_.record_access(ptr.element_address(index), sizeof(T),
                          WarpTracer::kFlagWrite | WarpTracer::kFlagAtomic);
    tracer_.record_alu(atomic_extra_cycles_);
    tracer_.record_atomic();
    T old = memory_.read(ptr, index);
    memory_.write(ptr, index, static_cast<T>(old + delta));
    return old;
  }

  /// Charges `ops` arithmetic operations (1 cycle each).
  void alu(double ops) { tracer_.record_alu(ops); }

  /// Traces an access at a synthetic device address without touching the
  /// arena — for memory that is modelled but not materialized (e.g. the
  /// resident pages of the demand-paging scheme).
  void trace_access(std::uint64_t addr, std::uint32_t size) {
    tracer_.record_access(addr, size, WarpTracer::kFlagSynthetic);
  }

 private:
  friend class BlockCtx;
  DeviceMemory& memory_;
  WarpTracer& tracer_;
  std::uint32_t thread_in_block_;
  std::uint32_t global_thread_;
  double atomic_extra_cycles_ = 12.0;
};

/// Per-block context given to the block driver.
class BlockCtx {
 public:
  using LaneFn = std::function<void(LaneCtx&, std::uint32_t thread_in_block)>;

  BlockCtx(Gpu& gpu, const KernelLaunch& launch, std::uint32_t block_index,
           std::uint32_t sm_index)
      : gpu_(gpu),
        launch_(launch),
        block_index_(block_index),
        sm_index_(sm_index) {}

  std::uint32_t block_index() const noexcept { return block_index_; }
  std::uint32_t sm_index() const noexcept { return sm_index_; }
  std::uint32_t threads_per_block() const noexcept {
    return launch_.threads_per_block;
  }
  std::uint32_t num_blocks() const noexcept { return launch_.num_blocks; }
  Gpu& gpu() noexcept { return gpu_; }
  sim::Simulation& sim() noexcept;

  /// Runs `lane_fn` for threads [first, first+count) of this block, warp by
  /// warp, then occupies this block's SM for the merged warp costs. Returns
  /// the total SM time charged (for per-stage metrics).
  sim::Task<sim::DurationPs> run_threads(std::uint32_t first,
                                         std::uint32_t count,
                                         const LaneFn& lane_fn);

  /// One block-wide synchronization round (bar.red + memory-flag polling).
  sim::Task<> sync_overhead();

  /// Suspends until `flag` (a location the host DMAs into GPU memory)
  /// reaches `threshold`.
  sim::Task<> wait_flag(sim::Flag& flag, std::uint64_t threshold);

 private:
  Gpu& gpu_;
  KernelLaunch launch_;
  std::uint32_t block_index_;
  std::uint32_t sm_index_;
};

using BlockFn = std::function<sim::Task<>(BlockCtx&)>;

/// Cumulative counters exposed for the benchmark harness.
struct GpuStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
};

class Gpu {
 public:
  Gpu(sim::Simulation& sim, const SystemConfig& config);

  sim::Simulation& sim() noexcept { return sim_; }
  const GpuConfig& config() const noexcept { return config_.gpu; }
  const SystemConfig& system_config() const noexcept { return config_; }
  DeviceMemory& memory() noexcept { return memory_; }

  /// Attaches the unified telemetry sinks (either may be nullptr). With a
  /// tracer, every PCIe transfer becomes a span on the link's track (with a
  /// "bytes in flight" counter), every SM warp segment a span on its SM
  /// track, and kernel launches maintain an "active blocks" counter track.
  /// `trace_prefix` (e.g. "dev1 ") namespaces the "pcie"/"gpu" process rows
  /// so several devices share one timeline without colliding; the default
  /// keeps the single-device names.
  void attach_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                            std::string_view trace_prefix = {});

  /// Installs (or with nullptr removes) the warp-access observer: every
  /// traced lane access, block barrier, and kernel boundary is forwarded.
  void set_access_observer(WarpAccessObserver* observer) noexcept {
    access_observer_ = observer;
  }

  /// Attaches (or with nullptr removes) the fault plane; `device` is this
  /// GPU's index in its pool. The only gpusim site is the PCIe link:
  /// pcie_degrade divides the configured bandwidth by the spec's factor.
  void set_fault_plane(fault::FaultPlane* plane, std::uint32_t device) {
    fault_plane_ = plane;
    fault_device_ = device;
  }
  fault::FaultPlane* fault_plane() const noexcept { return fault_plane_; }
  std::uint32_t fault_device() const noexcept { return fault_device_; }

  /// --- PCIe / DMA -------------------------------------------------------
  /// Blocking bulk transfer host->device / device->host (occupies the link
  /// for latency + bytes/bandwidth, completes in FIFO order per direction).
  sim::Task<> h2d_transfer(std::uint64_t bytes);
  sim::Task<> d2h_transfer(std::uint64_t bytes);

  /// Fire-and-forget link traffic (e.g. streamed address-buffer writes whose
  /// latency the GPU hides); returns the virtual time the traffic lands.
  sim::TimePs post_h2d(std::uint64_t bytes);
  sim::TimePs post_d2h(std::uint64_t bytes);

  /// Raises `flag` to `value` at virtual time `when` (used to model a DMA
  /// engine copying a ready-flag after in-order data, §IV.C).
  void set_flag_at(sim::Flag& flag, std::uint64_t value, sim::TimePs when);

  /// --- Kernel execution -------------------------------------------------
  /// Active thread-blocks across the whole GPU for `launch` (§IV.D):
  /// min(num_blocks, occupancy-per-SM * num_SMs).
  std::uint32_t max_active_blocks(const KernelLaunch& launch) const;

  /// Occupancy per SM from the launch's resource usage.
  std::uint32_t max_active_blocks_per_sm(const KernelLaunch& launch) const;

  /// Runs `block_fn` once per block, windowed by occupancy; completes when
  /// every block has retired.
  sim::Task<> run_kernel(const KernelLaunch& launch, BlockFn block_fn);

  /// Convenience for classic kernels: every thread runs `lane_fn` once.
  sim::Task<> run_simple_kernel(const KernelLaunch& launch,
                                const BlockCtx::LaneFn& lane_fn);

  /// --- Metrics ----------------------------------------------------------
  const GpuStats& stats() const noexcept { return stats_; }
  sim::DurationPs sm_busy_total() const;
  sim::DurationPs sm_busy_max() const;
  sim::DurationPs atomic_busy() const { return atomic_unit_.busy_time(); }
  /// Wall-clock computation occupancy: the busiest SM or the atomic units,
  /// whichever bounds the kernel.
  sim::DurationPs compute_wall_busy() const {
    return std::max(sm_busy_max(), atomic_busy());
  }
  sim::FifoServer& atomic_unit() noexcept { return atomic_unit_; }
  sim::DurationPs h2d_busy() const { return h2d_link_.busy_time(); }
  sim::DurationPs d2h_busy() const { return d2h_link_.busy_time(); }

  sim::FifoServer& sm_server(std::uint32_t sm) { return *sm_servers_.at(sm); }

 private:
  friend class BlockCtx;

  sim::Task<> run_block(KernelLaunch launch, const BlockFn& block_fn,
                        std::uint32_t block_index, sim::Semaphore& slots);

  sim::DurationPs link_cost(std::uint64_t bytes, double gbps) const;

  /// Telemetry for one link transfer about to be enqueued (span + counters).
  void note_transfer(bool h2d, std::uint64_t bytes, sim::DurationPs cost);

  sim::Simulation& sim_;
  SystemConfig config_;
  DeviceMemory memory_;
  std::vector<std::unique_ptr<sim::FifoServer>> sm_servers_;
  sim::FifoServer atomic_unit_;
  sim::FifoServer h2d_link_;
  sim::FifoServer d2h_link_;
  GpuStats stats_;
  WarpAccessObserver* access_observer_ = nullptr;
  fault::FaultPlane* fault_plane_ = nullptr;
  std::uint32_t fault_device_ = 0;

  // --- telemetry sinks (optional) ----------------------------------------
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint32_t pcie_pid_ = 0;
  std::uint32_t gpu_pid_ = 0;
  obs::TrackId h2d_track_{};
  obs::TrackId d2h_track_{};
  obs::TrackId atomic_track_{};
  std::vector<obs::TrackId> sm_tracks_;
  obs::Counter* ctr_h2d_bytes_ = nullptr;
  obs::Counter* ctr_d2h_bytes_ = nullptr;
  obs::Counter* ctr_kernel_launches_ = nullptr;
  obs::Histogram* hist_h2d_bytes_ = nullptr;
  obs::Histogram* hist_d2h_bytes_ = nullptr;
};

}  // namespace bigk::gpusim
