#include "gpusim/device_memory.hpp"

namespace bigk::gpusim {

namespace {
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

std::uint64_t DeviceMemory::allocate_bytes(std::uint64_t bytes) {
  const std::uint64_t size = align_up(bytes == 0 ? 1 : bytes, kAlignment);
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const auto [offset, block_size] = *it;
    if (block_size < size) continue;
    free_blocks_.erase(it);
    if (block_size > size) {
      free_blocks_[offset + size] = block_size - size;
    }
    live_allocs_[offset] = size;
    used_ += size;
    return offset;
  }
  throw OutOfDeviceMemory(size, arena_.size());
}

void DeviceMemory::free_offset(std::uint64_t offset) {
  auto alloc = live_allocs_.find(offset);
  if (alloc == live_allocs_.end()) {
    throw std::invalid_argument("free of unallocated device offset " +
                                std::to_string(offset));
  }
  std::uint64_t size = alloc->second;
  live_allocs_.erase(alloc);
  used_ -= size;

  // Coalesce with the following free block.
  auto next = free_blocks_.lower_bound(offset);
  if (next != free_blocks_.end() && offset + size == next->first) {
    size += next->second;
    next = free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_blocks_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_blocks_[offset] = size;
}

}  // namespace bigk::gpusim
