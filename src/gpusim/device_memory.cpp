#include "gpusim/device_memory.hpp"

namespace bigk::gpusim {

namespace {
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

std::uint64_t DeviceMemory::allocate_bytes(std::uint64_t bytes) {
  const std::uint64_t requested = bytes == 0 ? 1 : bytes;
  const std::uint64_t size = align_up(requested, kAlignment);
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const auto [offset, block_size] = *it;
    if (block_size < size) continue;
    free_blocks_.erase(it);
    if (block_size > size) {
      free_blocks_[offset + size] = block_size - size;
    }
    live_allocs_[offset] = size;
    used_ += size;
    if (observer_ != nullptr) observer_->on_alloc(offset, requested, size);
    return offset;
  }
  throw OutOfDeviceMemory(size, arena_.size());
}

void DeviceMemory::free_offset(std::uint64_t offset) {
  auto alloc = live_allocs_.find(offset);
  if (alloc == live_allocs_.end()) {
    // Diagnose instead of corrupting the free list: an offset inside a free
    // block is a double free (or a free of never-allocated space); the
    // interior of a live allocation or a point past the arena is a foreign
    // offset.
    auto after = free_blocks_.upper_bound(offset);
    if (after != free_blocks_.begin()) {
      const auto& [free_base, free_size] = *std::prev(after);
      if (offset >= free_base && offset < free_base + free_size) {
        if (observer_ != nullptr) {
          observer_->on_bad_free(offset, /*is_double_free=*/true);
        }
        throw DoubleFree("double free of device offset " +
                         std::to_string(offset) +
                         ": lies in free space (already freed or never "
                         "allocated)");
      }
    }
    if (observer_ != nullptr) {
      observer_->on_bad_free(offset, /*is_double_free=*/false);
    }
    auto owner = live_allocs_.upper_bound(offset);
    if (owner != live_allocs_.begin()) {
      const auto& [base, size] = *std::prev(owner);
      if (offset > base && offset < base + size) {
        throw InvalidFree("free of device offset " + std::to_string(offset) +
                          ": interior of the live allocation at base " +
                          std::to_string(base) + " (size " +
                          std::to_string(size) + ")");
      }
    }
    throw InvalidFree("free of device offset " + std::to_string(offset) +
                      ": not an allocation base");
  }
  std::uint64_t size = alloc->second;
  if (observer_ != nullptr) observer_->on_free(offset, size);
  live_allocs_.erase(alloc);
  used_ -= size;

  // Coalesce with the following free block.
  auto next = free_blocks_.lower_bound(offset);
  if (next != free_blocks_.end() && offset + size == next->first) {
    size += next->second;
    next = free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_blocks_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_blocks_[offset] = size;
}

}  // namespace bigk::gpusim
