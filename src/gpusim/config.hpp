// Hardware model configuration.
//
// Defaults mirror the paper's testbed (§V) — an NVIDIA GTX 680 (8 SMs x 192
// cores @ 1.02 GHz, 192 GB/s GDDR5, 2 GB), PCIe Gen3 x16, and a 3.8 GHz
// quad-core (8 HW threads) Xeon E5 with quad-channel memory — except that all
// *capacities* are scaled by SystemConfig::capacity_scale (default 1/100) so
// that the out-of-core ratios of the paper (multi-GB data vs. 2 GB GPU
// memory) are preserved at simulation-friendly sizes. Rates (GB/s, GHz) are
// never scaled: only sizes are, so every time *ratio* the paper reports is
// scale-invariant.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace bigk::gpusim {

struct GpuConfig {
  std::uint32_t num_sms = 8;
  std::uint32_t lanes_per_sm = 192;
  std::uint32_t warp_size = 32;
  double core_clock_ghz = 1.02;

  /// Fraction of peak issue the SM sustains on the latency-bound, low-ILP
  /// streaming kernels this class of applications runs (the paper observes
  /// GPU core utilization is low for them). Scales warp_parallelism().
  double issue_efficiency = 0.33;

  /// Effective warp-instruction issue slots per SM: (lanes / warp size)
  /// derated by issue_efficiency.
  double warp_parallelism() const {
    return static_cast<double>(lanes_per_sm) /
           static_cast<double>(warp_size) * issue_efficiency;
  }

  std::uint64_t global_memory_bytes = 20ull << 20;  // 2 GB / 100
  double global_mem_gbps = 192.0;
  std::uint32_t mem_transaction_bytes = 128;
  /// Issue/queue cycles per memory transaction on the warp's path: a warp
  /// step whose lanes scatter across many segments serializes transaction
  /// issue even when the data is cached — the per-access cost behind
  /// non-coalesced penalties.
  double txn_issue_cycles = 8.0;

  std::uint32_t shared_mem_per_sm_bytes = 48u << 10;
  std::uint32_t registers_per_sm = 65'536;
  std::uint32_t max_threads_per_sm = 2'048;
  std::uint32_t max_blocks_per_sm = 16;

  sim::DurationPs kernel_launch_overhead = sim::microseconds(8);
  /// Cost of one intra-block synchronization round (bar.red + flag checks).
  sim::DurationPs block_sync_overhead = sim::microseconds(1);
  /// Extra serialization cycles charged per atomic global-memory update on
  /// the issuing warp.
  double atomic_extra_cycles = 12.0;
  /// Aggregate GPU-wide atomic-update throughput (billions/s): global
  /// atomics serialize through the L2 atomic units regardless of which SM
  /// issues them; contended Big-Data histograms run well below peak.
  double atomic_throughput_gops = 0.5;

  /// Per-SM share of global-memory bandwidth (GB/s).
  double mem_gbps_per_sm() const {
    return global_mem_gbps / static_cast<double>(num_sms);
  }
};

struct PcieConfig {
  /// Effective (not theoretical) bandwidth per direction, GB/s. PCIe Gen3
  /// x16 is 15.75 GB/s on paper and "difficult to exploit in practice" (§I);
  /// 8 GB/s matches 2014-era sustained pinned-transfer throughput, with the
  /// paper observing that PCIe starves the GPU for this workload class.
  double h2d_gbps = 8.0;
  double d2h_gbps = 8.0;
  /// Per-transfer setup latency (driver + DMA doorbell).
  sim::DurationPs transfer_latency = sim::microseconds(2);
};

struct CpuConfig {
  std::uint32_t cores = 4;
  std::uint32_t hw_threads = 8;
  double clock_ghz = 3.8;
  /// Sustained instructions per cycle for the scalar streaming code the
  /// benchmarks run (branchy record processing, not peak SIMD).
  double ipc = 1.2;
  /// Sustained quad-channel DDR3-1800 bandwidth (57.6 GB/s peak).
  double mem_gbps = 42.0;

  std::uint64_t llc_bytes = 10ull << 20;  // combined L2/L3 (not scaled:
                                          // records are not scaled either)
  std::uint32_t cache_line_bytes = 64;
  std::uint32_t cache_ways = 8;
  /// Cycles per cache-line touch that hits.
  double cache_hit_cycles = 2.0;
  /// Fixed per-line stall on a miss, on top of bandwidth occupancy.
  sim::DurationPs cache_miss_latency = sim::nanoseconds(6);
};

struct SystemConfig {
  GpuConfig gpu;
  PcieConfig pcie;
  CpuConfig cpu;

  /// Documentation-only: the factor by which capacities were scaled from the
  /// paper's testbed. Workload generators use this to scale data sizes.
  double capacity_scale = 0.01;
};

}  // namespace bigk::gpusim
