// Warp execution tracing and the coalescing cost model.
//
// Warp lanes execute their (functional) C++ code sequentially in the
// simulator, but each lane records its global-memory accesses in program
// order. Lock-step SIMD timing is recovered afterwards: the i-th access of
// every lane is assumed to issue in the same warp instruction (exactly true
// for uniform control flow, and a faithful divergence penalty otherwise,
// because drifting lanes stop sharing 128-byte transaction segments).
//
// For each access step, the number of global-memory transactions equals the
// number of distinct aligned transaction segments the 32 lanes touch — 1 for
// a perfectly coalesced access, up to 32 for a fully scattered one.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/config.hpp"
#include "sim/time.hpp"

namespace bigk::gpusim {

/// Aggregate cost of one warp's instruction segment.
struct WarpCost {
  double alu_cycles = 0.0;            // lock-step cycles (max over lanes)
  std::uint64_t mem_transactions = 0;  // distinct segments touched (DRAM)
  std::uint64_t mem_bytes = 0;         // transactions * transaction size
  /// Transactions *issued* step by step (before cross-step reuse): the
  /// coalescing quality of each lock-step access.
  std::uint64_t issue_transactions = 0;
  std::uint64_t atomic_ops = 0;        // updates routed to the atomic units

  WarpCost& operator+=(const WarpCost& other) {
    alu_cycles += other.alu_cycles;
    mem_transactions += other.mem_transactions;
    mem_bytes += other.mem_bytes;
    issue_transactions += other.issue_transactions;
    atomic_ops += other.atomic_ops;
    return *this;
  }
};

/// Collects per-lane traces for one warp and merges them into a WarpCost.
class WarpTracer {
 public:
  /// Access-kind bits carried by each traced access (the cost model ignores
  /// them; the data-race checker consumes them).
  static constexpr std::uint8_t kFlagWrite = 1;
  static constexpr std::uint8_t kFlagAtomic = 2;
  /// Synthetic addresses (LaneCtx::trace_access): modelled but never
  /// materialized in the arena, so they may alias real offsets by accident.
  static constexpr std::uint8_t kFlagSynthetic = 4;

  explicit WarpTracer(std::uint32_t warp_size) : lanes_(warp_size) {}

  /// Directs subsequent record_* calls at lane `lane` (0-based in the warp).
  void begin_lane(std::uint32_t lane) { current_ = &lanes_.at(lane); }

  /// Records one global-memory access of `size` bytes at device address
  /// `addr`. Each access also costs one issue cycle.
  void record_access(std::uint64_t addr, std::uint32_t size,
                     std::uint8_t flags = 0) {
    current_->accesses.push_back(Access{addr, size, flags});
    current_->alu_cycles += 1.0;
  }

  /// Records `cycles` of arithmetic on the current lane.
  void record_alu(double cycles) { current_->alu_cycles += cycles; }

  /// Records one atomic read-modify-write (serialized GPU-wide).
  void record_atomic() { ++atomic_ops_; }

  /// Merges the lane traces into the warp's cost under `config`'s
  /// transaction size. The tracer can be reused after calling reset().
  WarpCost finish(const GpuConfig& config) const;

  void reset();

  /// Visits every recorded access of every lane in program order:
  /// fn(lane, addr, size, flags). Used to forward the per-lane access
  /// streams to a WarpAccessObserver.
  template <class Fn>
  void for_each_access(Fn&& fn) const {
    for (std::uint32_t lane = 0; lane < lanes_.size(); ++lane) {
      for (const Access& access : lanes_[lane].accesses) {
        fn(lane, access.addr, access.size, access.flags);
      }
    }
  }

 private:
  struct Access {
    std::uint64_t addr;
    std::uint32_t size;
    std::uint8_t flags = 0;
  };
  struct Lane {
    std::vector<Access> accesses;
    double alu_cycles = 0.0;
  };

  std::vector<Lane> lanes_;
  Lane* current_ = nullptr;
  std::uint64_t atomic_ops_ = 0;
};

/// Converts a warp cost into occupancy time on an SM's timing server: the SM
/// retires warp_parallelism() warp-instructions per cycle and owns a per-SM
/// share of global-memory bandwidth; a memory-bound segment is limited by the
/// latter, a compute-bound one by the former.
sim::DurationPs sm_request_cost(const WarpCost& cost, const GpuConfig& config);

}  // namespace bigk::gpusim
