#include "gpusim/warp_trace.hpp"

#include <algorithm>

namespace bigk::gpusim {

WarpCost WarpTracer::finish(const GpuConfig& config) const {
  WarpCost cost;
  for (const Lane& lane : lanes_) {
    cost.alu_cycles = std::max(cost.alu_cycles, lane.alu_cycles);
  }

  // DRAM traffic: each *distinct* 128-byte segment the warp touches during
  // this execution segment costs one transaction — segments shared by lanes
  // in the same step coalesce, and segments re-touched in later steps hit
  // the warp-local cache (L1/L2 capturing the immediate spatial/temporal
  // reuse of streaming kernels).
  //
  // Issue cost: per lock-step access, lanes spread over k segments issue k
  // transactions (counted per step, before reuse) — the classic coalescing
  // penalty that serializes scattered warp accesses.
  const std::uint64_t txn = config.mem_transaction_bytes;
  std::size_t max_steps = 0;
  for (const Lane& lane : lanes_) {
    max_steps = std::max(max_steps, lane.accesses.size());
  }
  std::vector<std::uint64_t> segments;
  std::vector<std::uint64_t> step_segments;
  for (std::size_t step = 0; step < max_steps; ++step) {
    step_segments.clear();
    for (const Lane& lane : lanes_) {
      if (step >= lane.accesses.size()) continue;
      const Access& access = lane.accesses[step];
      const std::uint64_t first = access.addr / txn;
      const std::uint64_t last =
          (access.addr + std::max<std::uint32_t>(access.size, 1) - 1) / txn;
      for (std::uint64_t seg = first; seg <= last; ++seg) {
        step_segments.push_back(seg);
      }
    }
    std::sort(step_segments.begin(), step_segments.end());
    step_segments.erase(
        std::unique(step_segments.begin(), step_segments.end()),
        step_segments.end());
    cost.issue_transactions += step_segments.size();
    segments.insert(segments.end(), step_segments.begin(),
                    step_segments.end());
  }
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()),
                 segments.end());
  cost.mem_transactions = segments.size();
  cost.mem_bytes = cost.mem_transactions * txn;
  cost.atomic_ops = atomic_ops_;
  return cost;
}

void WarpTracer::reset() {
  for (Lane& lane : lanes_) {
    lane.accesses.clear();
    lane.alu_cycles = 0.0;
  }
  current_ = nullptr;
  atomic_ops_ = 0;
}

sim::DurationPs sm_request_cost(const WarpCost& cost,
                                const GpuConfig& config) {
  const double issue_cycles =
      cost.alu_cycles + static_cast<double>(cost.issue_transactions) *
                            config.txn_issue_cycles;
  const sim::DurationPs alu = sim::cycles_time(
      issue_cycles / config.warp_parallelism(), config.core_clock_ghz);
  const sim::DurationPs mem =
      sim::transfer_time(cost.mem_bytes, config.mem_gbps_per_sm());
  return std::max(alu, mem);
}

}  // namespace bigk::gpusim
