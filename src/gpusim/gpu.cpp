#include "gpusim/gpu.hpp"

#include <algorithm>
#include <cassert>

namespace bigk::gpusim {

sim::Simulation& BlockCtx::sim() noexcept { return gpu_.sim_; }

sim::Task<sim::DurationPs> BlockCtx::run_threads(std::uint32_t first,
                                                 std::uint32_t count,
                                                 const LaneFn& lane_fn) {
  const GpuConfig& config = gpu_.config();
  const std::uint32_t warp_size = config.warp_size;
  const sim::TimePs entry = gpu_.sim_.now();
  sim::DurationPs total = 0;
  std::uint64_t atomic_ops = 0;
  WarpTracer tracer(warp_size);
  for (std::uint32_t warp_first = first; warp_first < first + count;
       warp_first += warp_size) {
    tracer.reset();
    const std::uint32_t warp_count =
        std::min(warp_size, first + count - warp_first);
    for (std::uint32_t lane = 0; lane < warp_count; ++lane) {
      tracer.begin_lane(lane);
      const std::uint32_t tid = warp_first + lane;
      LaneCtx lane_ctx(gpu_.memory(), tracer, tid,
                       block_index_ * launch_.threads_per_block + tid);
      lane_ctx.atomic_extra_cycles_ = config.atomic_extra_cycles;
      lane_fn(lane_ctx, tid);
    }
    if (gpu_.access_observer_ != nullptr) {
      const std::uint32_t warp_index = warp_first / warp_size;
      tracer.for_each_access([&](std::uint32_t lane, std::uint64_t addr,
                                 std::uint32_t size, std::uint8_t flags) {
        gpu_.access_observer_->on_warp_access(block_index_, warp_index, lane,
                                              addr, size, flags);
      });
    }
    const WarpCost cost = tracer.finish(config);
    atomic_ops += cost.atomic_ops;
    total += sm_request_cost(cost, config);
  }
  // Atomic updates serialize through the GPU-wide atomic units concurrently
  // with SM execution; whichever finishes later bounds this stage.
  sim::TimePs atomics_done = gpu_.sim_.now();
  if (atomic_ops > 0) {
    const sim::DurationPs atomic_cost = sim::cycles_time(
        static_cast<double>(atomic_ops), config.atomic_throughput_gops);
    atomics_done = gpu_.atomic_unit_.post(atomic_cost);
    if (gpu_.tracer_ != nullptr && atomic_cost > 0) {
      gpu_.tracer_->complete(
          gpu_.atomic_track_, "atomics", atomics_done - atomic_cost,
          atomics_done, "gpu",
          {{"ops", static_cast<double>(atomic_ops)},
           {"block", static_cast<double>(block_index_)}});
    }
  }
  if (gpu_.tracer_ != nullptr && total > 0) {
    sim::FifoServer& server = *gpu_.sm_servers_.at(sm_index_);
    const sim::TimePs service_begin =
        std::max(gpu_.sim_.now(), server.next_free());
    gpu_.tracer_->complete(gpu_.sm_tracks_.at(sm_index_),
                           "block " + std::to_string(block_index_),
                           service_begin, service_begin + total, "gpu",
                           {{"threads", static_cast<double>(count)}});
  }
  co_await gpu_.sm_servers_.at(sm_index_)->request(total);
  if (atomics_done > gpu_.sim_.now()) {
    co_await gpu_.sim_.delay(atomics_done - gpu_.sim_.now());
  }
  // Report the stage's own service time (SM occupancy, extended by the
  // atomic units if they ran longer), not queueing behind sibling stages.
  const sim::DurationPs atomic_extension =
      atomics_done > entry ? atomics_done - entry : 0;
  co_return std::max(total, atomic_extension);
}

sim::Task<> BlockCtx::sync_overhead() {
  if (gpu_.access_observer_ != nullptr) {
    gpu_.access_observer_->on_barrier(block_index_);
  }
  co_await gpu_.sim_.delay(gpu_.config().block_sync_overhead);
}

sim::Task<> BlockCtx::wait_flag(sim::Flag& flag, std::uint64_t threshold) {
  co_await flag.wait_ge(threshold);
}

Gpu::Gpu(sim::Simulation& sim, const SystemConfig& config)
    : sim_(sim),
      config_(config),
      memory_(config.gpu.global_memory_bytes),
      atomic_unit_(sim, "atomic-units"),
      h2d_link_(sim, "pcie-h2d"),
      d2h_link_(sim, "pcie-d2h") {
  sm_servers_.reserve(config_.gpu.num_sms);
  for (std::uint32_t i = 0; i < config_.gpu.num_sms; ++i) {
    sm_servers_.push_back(
        std::make_unique<sim::FifoServer>(sim, "sm" + std::to_string(i)));
  }
}

sim::DurationPs Gpu::link_cost(std::uint64_t bytes, double gbps) const {
  if (fault_plane_ != nullptr) {
    gbps /= fault_plane_->pcie_factor(fault_device_, sim_.now());
  }
  return config_.pcie.transfer_latency + sim::transfer_time(bytes, gbps);
}

void Gpu::attach_observability(obs::Tracer* tracer,
                               obs::MetricsRegistry* metrics,
                               std::string_view trace_prefix) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (tracer_ != nullptr) {
    const std::string prefix(trace_prefix);
    pcie_pid_ = tracer_->process(prefix + "pcie");
    h2d_track_ = tracer_->thread(pcie_pid_, "h2d link");
    d2h_track_ = tracer_->thread(pcie_pid_, "d2h link");
    gpu_pid_ = tracer_->process(prefix + "gpu");
    sm_tracks_.clear();
    for (std::uint32_t i = 0; i < config_.gpu.num_sms; ++i) {
      sm_tracks_.push_back(
          tracer_->thread(gpu_pid_, "sm" + std::to_string(i)));
    }
    atomic_track_ = tracer_->thread(gpu_pid_, "atomic units");
  }
  if (metrics_ != nullptr) {
    const std::vector<double> size_buckets = {
        1 << 10, 16 << 10, 256 << 10, 4 << 20, 64 << 20};
    ctr_h2d_bytes_ = &metrics_->counter("gpusim.h2d_bytes");
    ctr_d2h_bytes_ = &metrics_->counter("gpusim.d2h_bytes");
    ctr_kernel_launches_ = &metrics_->counter("gpusim.kernel_launches");
    hist_h2d_bytes_ =
        &metrics_->histogram("gpusim.h2d_transfer_bytes", size_buckets);
    hist_d2h_bytes_ =
        &metrics_->histogram("gpusim.d2h_transfer_bytes", size_buckets);
  }
}

void Gpu::note_transfer(bool h2d, std::uint64_t bytes, sim::DurationPs cost) {
  if (metrics_ != nullptr) {
    (h2d ? ctr_h2d_bytes_ : ctr_d2h_bytes_)->add(bytes);
    (h2d ? hist_h2d_bytes_ : hist_d2h_bytes_)
        ->observe(static_cast<double>(bytes));
  }
  if (tracer_ == nullptr || cost == 0) return;
  // The link is an exact FIFO, so service begins at max(now, next_free):
  // the span is the transfer's true occupancy interval on the wire.
  sim::FifoServer& link = h2d ? h2d_link_ : d2h_link_;
  const sim::TimePs begin = std::max(sim_.now(), link.next_free());
  const sim::TimePs done = begin + cost;
  tracer_->complete(h2d ? h2d_track_ : d2h_track_, h2d ? "h2d" : "d2h",
                    begin, done, "pcie",
                    {{"bytes", static_cast<double>(bytes)}});
  tracer_->counter_add(pcie_pid_, "bytes in flight", sim_.now(),
                       static_cast<double>(bytes));
  tracer_->counter_add(pcie_pid_, "bytes in flight", done,
                       -static_cast<double>(bytes));
}

sim::Task<> Gpu::h2d_transfer(std::uint64_t bytes) {
  stats_.h2d_bytes += bytes;
  const sim::DurationPs cost = link_cost(bytes, config_.pcie.h2d_gbps);
  note_transfer(/*h2d=*/true, bytes, cost);
  co_await h2d_link_.request(cost);
}

sim::Task<> Gpu::d2h_transfer(std::uint64_t bytes) {
  stats_.d2h_bytes += bytes;
  const sim::DurationPs cost = link_cost(bytes, config_.pcie.d2h_gbps);
  note_transfer(/*h2d=*/false, bytes, cost);
  co_await d2h_link_.request(cost);
}

sim::TimePs Gpu::post_h2d(std::uint64_t bytes) {
  stats_.h2d_bytes += bytes;
  const sim::DurationPs cost = link_cost(bytes, config_.pcie.h2d_gbps);
  note_transfer(/*h2d=*/true, bytes, cost);
  return h2d_link_.post(cost);
}

sim::TimePs Gpu::post_d2h(std::uint64_t bytes) {
  stats_.d2h_bytes += bytes;
  const sim::DurationPs cost = link_cost(bytes, config_.pcie.d2h_gbps);
  note_transfer(/*h2d=*/false, bytes, cost);
  return d2h_link_.post(cost);
}

void Gpu::set_flag_at(sim::Flag& flag, std::uint64_t value,
                      sim::TimePs when) {
  assert(when >= sim_.now());
  sim_.spawn([](sim::Simulation& sim, sim::Flag& f, std::uint64_t v,
                sim::TimePs t) -> sim::Task<> {
    co_await sim.delay(t - sim.now());
    f.advance_to(v);
  }(sim_, flag, value, when));
}

std::uint32_t Gpu::max_active_blocks_per_sm(
    const KernelLaunch& launch) const {
  const GpuConfig& gpu = config_.gpu;
  std::uint32_t limit = gpu.max_blocks_per_sm;
  if (launch.threads_per_block > 0) {
    limit = std::min(limit, gpu.max_threads_per_sm / launch.threads_per_block);
  }
  const std::uint64_t regs_per_block =
      std::uint64_t{launch.regs_per_thread} * launch.threads_per_block;
  if (regs_per_block > 0) {
    limit = std::min<std::uint32_t>(
        limit, static_cast<std::uint32_t>(gpu.registers_per_sm /
                                          regs_per_block));
  }
  if (launch.shared_bytes_per_block > 0) {
    limit = std::min(limit, gpu.shared_mem_per_sm_bytes /
                                launch.shared_bytes_per_block);
  }
  return limit;
}

std::uint32_t Gpu::max_active_blocks(const KernelLaunch& launch) const {
  const std::uint32_t per_sm = max_active_blocks_per_sm(launch);
  // The paper's formula (§IV.D): min(numSetBlocks, R_GPU / R_tb).
  return std::min(launch.num_blocks, per_sm * config_.gpu.num_sms);
}

sim::Task<> Gpu::run_kernel(const KernelLaunch& launch, BlockFn block_fn) {
  if (launch.num_blocks == 0 || launch.threads_per_block == 0) co_return;
  const std::uint32_t window = max_active_blocks(launch);
  if (window == 0) {
    throw std::invalid_argument(
        "kernel launch exceeds per-SM resources: no block can become active");
  }
  ++stats_.kernel_launches;
  if (access_observer_ != nullptr) {
    access_observer_->on_kernel_begin(launch.num_blocks);
  }
  if (ctr_kernel_launches_ != nullptr) ctr_kernel_launches_->add(1);
  if (metrics_ != nullptr) {
    metrics_->gauge("gpusim.active_block_window")
        .set_max(static_cast<double>(window));
  }
  co_await sim_.delay(config_.gpu.kernel_launch_overhead);

  sim::Semaphore slots(sim_, window);
  std::vector<sim::Process> blocks;
  blocks.reserve(launch.num_blocks);
  for (std::uint32_t b = 0; b < launch.num_blocks; ++b) {
    co_await slots.acquire();
    blocks.push_back(sim_.spawn(run_block(launch, block_fn, b, slots)));
  }
  for (sim::Process& block : blocks) {
    co_await block.join();
  }
  if (access_observer_ != nullptr) access_observer_->on_kernel_end();
}

sim::Task<> Gpu::run_block(KernelLaunch launch, const BlockFn& block_fn,
                           std::uint32_t block_index, sim::Semaphore& slots) {
  BlockCtx ctx(*this, launch, block_index,
               block_index % config_.gpu.num_sms);
  if (tracer_ != nullptr) {
    tracer_->counter_add(gpu_pid_, "active blocks", sim_.now(), 1.0);
  }
  co_await block_fn(ctx);
  if (tracer_ != nullptr) {
    tracer_->counter_add(gpu_pid_, "active blocks", sim_.now(), -1.0);
  }
  slots.release();
}

sim::Task<> Gpu::run_simple_kernel(const KernelLaunch& launch,
                                   const BlockCtx::LaneFn& lane_fn) {
  co_await run_kernel(launch, [&lane_fn](BlockCtx& block) -> sim::Task<> {
    co_await block.run_threads(0, block.threads_per_block(), lane_fn);
  });
}

sim::DurationPs Gpu::sm_busy_total() const {
  sim::DurationPs total = 0;
  for (const auto& server : sm_servers_) total += server->busy_time();
  return total;
}

sim::DurationPs Gpu::sm_busy_max() const {
  sim::DurationPs busiest = 0;
  for (const auto& server : sm_servers_) {
    busiest = std::max(busiest, server->busy_time());
  }
  return busiest;
}

}  // namespace bigk::gpusim
