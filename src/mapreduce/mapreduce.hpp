// MapReduce over BigKernel — the paper's stated future work (§VIII: "we
// plan on applying BigKernel to MapReduce").
//
// A MapReduceJob streams an arbitrarily large record array through a
// user-provided Mapper that emits (key, value) pairs. The pairs are
// combined GPU-side into a bucketed aggregate table (sum + count per
// bucket, merged with atomics — the combiner must therefore be
// commutative-associative, which covers count/sum/mean/histogram jobs),
// and reduced host-side by a user Reducer after the kernel completes.
//
// Because the map kernel is an ordinary streaming kernel, the whole job
// runs under any execution scheme — CPU, chunked GPU, demand paging, or
// BigKernel — which is exactly how the framework is validated.
//
// Usage:
//   struct TemperatureMapper {
//     template <class Record, class Emitter>
//     void operator()(const Record& record, Emitter& emit) const {
//       emit(record.field(0) /*station*/, record.field(2) /*temp*/);
//       emit.cost(5);
//     }
//   };
//   mr::MapReduceJob<std::uint64_t, TemperatureMapper> job(
//       std::span(records), /*elems_per_record=*/4, /*reads=*/3,
//       TemperatureMapper{}, /*buckets=*/1 << 14);
//   auto result = mr::run(job, schemes::Scheme::kBigKernel, config, sc);
//   // result.buckets[b].sum / result.buckets[b].count ...
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::mr {

/// One combined bucket of the shuffle/combine table.
struct Bucket {
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

/// The reduced output: per-bucket aggregates (buckets with count 0 held no
/// keys).
struct MapReduceResult {
  std::vector<Bucket> buckets;
  schemes::RunMetrics metrics;

  std::uint64_t total_pairs() const {
    std::uint64_t total = 0;
    for (const Bucket& bucket : buckets) total += bucket.count;
    return total;
  }
};

namespace detail {

/// Read-only view of one input record, handed to the Mapper.
template <class Ctx, class T>
class RecordView {
 public:
  RecordView(Ctx& ctx, core::StreamRef<T> stream, std::uint64_t record,
             std::uint32_t elems_per_record)
      : ctx_(ctx),
        stream_(stream),
        base_(record * elems_per_record),
        elems_(elems_per_record) {}

  /// The i-th element of this record (i < elems_per_record).
  T field(std::uint32_t i) const {
    return ctx_.read(stream_, base_ + i);
  }
  std::uint32_t size() const noexcept { return elems_; }

 private:
  Ctx& ctx_;
  core::StreamRef<T> stream_;
  std::uint64_t base_;
  std::uint32_t elems_;
};

/// GPU/CPU-side combiner: emit(key, value) folds the pair into its bucket.
template <class Ctx>
class Emitter {
 public:
  Emitter(Ctx& ctx, core::TableRef<std::uint64_t> sums,
          core::TableRef<std::uint64_t> counts, std::uint32_t buckets)
      : ctx_(ctx), sums_(sums), counts_(counts), buckets_(buckets) {}

  void operator()(std::uint64_t key, std::uint64_t value) {
    const std::uint64_t bucket = key % buckets_;
    ctx_.atomic_add_table(sums_, bucket, value);
    ctx_.atomic_add_table(counts_, bucket, std::uint64_t{1});
  }

  /// Charges `ops` of per-record map work (divergence-inflated on SIMD
  /// contexts like any kernel arithmetic).
  void cost(double ops, double warp_divergence = 1.5) {
    ctx_.alu(Ctx::kSimd ? ops * warp_divergence : ops);
  }

 private:
  Ctx& ctx_;
  core::TableRef<std::uint64_t> sums_;
  core::TableRef<std::uint64_t> counts_;
  std::uint32_t buckets_;
};

/// The streaming kernel the framework generates around the Mapper.
template <class T, class Mapper>
struct MapKernel {
  core::StreamRef<T> input{0};
  core::TableRef<std::uint64_t> sums;
  core::TableRef<std::uint64_t> counts;
  std::uint32_t elems_per_record = 1;
  std::uint32_t buckets = 1;
  Mapper mapper;

  template <class Ctx>
  void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                  std::uint64_t stride) const {
    Emitter<Ctx> emit(ctx, sums, counts, buckets);
    for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
      RecordView<Ctx, T> record(ctx, input, r, elems_per_record);
      mapper(record, emit);
    }
  }
};

}  // namespace detail

/// A configured job: the input stream, the mapper, and the combiner shape.
/// Satisfies the scheme-runner application interface, so any scheme can
/// execute it.
template <class T, class Mapper>
class MapReduceJob {
 public:
  MapReduceJob(std::span<T> input, std::uint32_t elems_per_record,
               std::uint32_t reads_per_record, Mapper mapper,
               std::uint32_t buckets)
      : input_(input),
        elems_per_record_(elems_per_record),
        reads_per_record_(reads_per_record),
        mapper_(std::move(mapper)),
        buckets_(buckets) {
    sums_ = tables_.add<std::uint64_t>(buckets);
    counts_ = tables_.add<std::uint64_t>(buckets);
  }

  // --- scheme-runner application interface ---
  void reset() {
    for (auto& v : tables_.host_span(sums_)) v = 0;
    for (auto& v : tables_.host_span(counts_)) v = 0;
  }
  std::uint64_t num_records() const {
    return input_.size() / elems_per_record_;
  }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }

  std::vector<schemes::StreamDecl> stream_decls() {
    schemes::StreamDecl decl;
    decl.binding.host_data = reinterpret_cast<std::byte*>(input_.data());
    decl.binding.num_elements = input_.size();
    decl.binding.elem_size = sizeof(T);
    decl.binding.mode = core::AccessMode::kReadOnly;
    decl.binding.elems_per_record = elems_per_record_;
    decl.binding.reads_per_record = reads_per_record_;
    return {decl};
  }

  using Kernel = detail::MapKernel<T, Mapper>;
  Kernel kernel() const {
    return Kernel{{0}, sums_, counts_, elems_per_record_, buckets_, mapper_};
  }

  // --- results ---
  std::vector<Bucket> reduce() const {
    std::vector<Bucket> buckets(buckets_);
    auto sums = tables_.host_span(sums_);
    auto counts = tables_.host_span(counts_);
    for (std::uint32_t b = 0; b < buckets_; ++b) {
      buckets[b].sum = sums[b];
      buckets[b].count = counts[b];
    }
    return buckets;
  }

  std::uint32_t num_buckets() const noexcept { return buckets_; }

 private:
  std::span<T> input_;
  std::uint32_t elems_per_record_;
  std::uint32_t reads_per_record_;
  Mapper mapper_;
  std::uint32_t buckets_;
  core::TableSet tables_;
  core::TableRef<std::uint64_t> sums_;
  core::TableRef<std::uint64_t> counts_;
};

/// Runs the map+combine phases under `scheme` and reduces host-side.
template <class T, class Mapper>
MapReduceResult run(MapReduceJob<T, Mapper>& job, schemes::Scheme scheme,
                    const gpusim::SystemConfig& config,
                    const schemes::SchemeConfig& sc = {}) {
  MapReduceResult result;
  result.metrics = schemes::run_scheme(scheme, config, job, sc);
  result.buckets = job.reduce();
  return result;
}

}  // namespace bigk::mr
