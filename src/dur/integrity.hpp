// bigkdur integrity plane: end-to-end custody-chain verification for every
// chunk the pipeline moves.
//
// The custody chain and its check points (see DESIGN.md §12):
//
//   assembly (host, pinned image)     -> digest computed here, once
//     |- H2D DMA                      -> verified against the landed device
//     |                                  bytes by the transfer supervisor
//     |- ChunkCache insert            -> digest stored on the entry;
//     |    resident entry               re-verified on every lookup hit and
//     |                                  by the background scrub daemon
//     |- compute -> staged writes     -> write-back digest computed at
//     |                                  compute end, re-verified by the
//     |                                  scatter stage before host bytes move
//     '- hetero CPU partition         -> partition digest verified before
//                                        run_hetero merges table deltas
//
// A mismatch is *detection*: the detecting layer counts dur.detected, then
// recovers through the existing chunk machinery (re-DMA, cache eviction +
// re-assembly, write-buffer re-fetch). IntegrityError is thrown only when a
// mismatch cannot be repaired — it derives fault::FaultError so the serving
// layer's failure path (quarantine + redispatch) handles it like any other
// device fault.
//
// An Integrity instance is a passive stats/telemetry sink shared by every
// layer of one device's stack (engine, cache, hetero runner). Null pointer =
// integrity off: no digests, no verification, byte-identical behavior.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace bigk::dur {

/// Custody point where a digest is verified (and where a mismatch can be
/// detected).
enum class Site : std::uint8_t {
  kDma = 0,        // post-DMA device image vs. assembly digest
  kCache,          // resident ChunkCache entry vs. insert digest
  kWriteback,      // staged write-back values vs. compute-end digest
  kCpuPartition,   // hetero CPU-side partition before table merge
  kScrub,          // background cache scrub pass
};

inline constexpr std::size_t kNumSites = 5;

const char* site_name(Site site);

/// An integrity mismatch that could not be repaired in place. Derives
/// fault::FaultError so serve's quarantine/redispatch path absorbs it.
class IntegrityError : public fault::FaultError {
 public:
  using fault::FaultError::FaultError;
};

struct IntegrityStats {
  std::uint64_t verified = 0;   // digest comparisons that passed
  std::uint64_t detected = 0;   // mismatches caught
  std::uint64_t repaired = 0;   // mismatches recovered in place
  std::uint64_t scrubbed = 0;   // cache entries re-verified by the scrubber
  std::uint64_t scrub_evictions = 0;  // entries the scrubber evicted
  std::array<std::uint64_t, kNumSites> verified_by_site{};
  std::array<std::uint64_t, kNumSites> detected_by_site{};
};

class Integrity {
 public:
  Integrity() = default;
  Integrity(const Integrity&) = delete;
  Integrity& operator=(const Integrity&) = delete;

  /// Registers the dur.* counters (pre-registered so a clean run exports
  /// dur.detected == 0) and a "dur" trace track for detection instants.
  void attach_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  void note_verified(Site site);
  /// A digest mismatch at `site` on `device` — counts dur.detected and emits
  /// a trace instant.
  void note_detected(Site site, std::uint32_t device, sim::TimePs now);
  /// The mismatch was recovered in place (re-DMA landed clean bytes, the
  /// write buffer re-fetch matched, ...).
  void note_repaired(Site site);
  /// One scrub pass visited `checked` entries and evicted `evicted`.
  void note_scrub(std::uint64_t checked, std::uint64_t evicted);

  const IntegrityStats& stats() const noexcept { return stats_; }

 private:
  IntegrityStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId trace_track_{};
};

}  // namespace bigk::dur
