// bigkdur durable job journal: per-job progress checkpoints the serving
// layer writes after every verified execution window and consults on
// redispatch (device quarantine) or server restart (crash recovery).
//
// A checkpoint is (records_done, output_digest): the digest is the FNV of
// the job's write-mode host stream bytes over the completed record prefix.
// Resume is *verified*: before skipping ahead, the server re-digests the
// job's current output region and only resumes from the checkpoint when the
// digests match — if the backing output storage was lost with the server,
// the job falls back to record zero instead of silently emitting a hole.
//
// The journal is plain host state with no simulation coupling, so one
// instance can outlive a Server: tear the server down mid-run ("crash"),
// build a new one over the same journal, and in-flight jobs resume from
// their last checkpoint. Determinism: entries are keyed by job id in an
// ordered map and every mutation is driven by sim events, so two seeded runs
// produce identical journals.
#pragma once

#include <cstdint>
#include <map>

namespace bigk::dur {

struct JobCheckpoint {
  std::uint64_t records_done = 0;   // verified record prefix
  std::uint64_t windows_done = 0;   // checkpoint windows completed
  std::uint64_t output_digest = 0;  // digest of the completed output prefix
  std::uint64_t updates = 0;        // checkpoint writes for this job
  bool complete = false;            // the job finished (terminal checkpoint)
};

class JobJournal {
 public:
  /// Records (or advances) a job's checkpoint. Progress is monotone: a stale
  /// write below the recorded high-water mark is ignored.
  void record(std::uint64_t job, std::uint64_t records_done,
              std::uint64_t windows_done, std::uint64_t output_digest) {
    JobCheckpoint& entry = entries_[job];
    if (entry.complete || records_done < entry.records_done) return;
    entry.records_done = records_done;
    entry.windows_done = windows_done;
    entry.output_digest = output_digest;
    ++entry.updates;
    ++writes_;
  }

  /// Marks a job finished; later record() calls for it are no-ops.
  void mark_complete(std::uint64_t job, std::uint64_t records_done,
                     std::uint64_t output_digest) {
    JobCheckpoint& entry = entries_[job];
    entry.records_done = records_done;
    entry.output_digest = output_digest;
    entry.complete = true;
    ++entry.updates;
    ++writes_;
  }

  const JobCheckpoint* find(std::uint64_t job) const {
    const auto it = entries_.find(job);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t writes() const noexcept { return writes_; }

  const std::map<std::uint64_t, JobCheckpoint>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<std::uint64_t, JobCheckpoint> entries_;
  std::uint64_t writes_ = 0;
};

}  // namespace bigk::dur
