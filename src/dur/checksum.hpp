// bigkdur checksum primitive: 64-bit FNV-1a over byte spans and packed
// words. This is the per-chunk digest the integrity plane computes once at
// assembly and re-verifies at every later custody point (post-DMA device
// image, resident cache entry, staged write-back values, hetero CPU
// partition). FNV-1a is deliberate: the simulator moves real host bytes, so
// a cheap byte-serial hash keeps the verification cost negligible while
// still catching any single flipped bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bigk::dur {

struct Checksum {
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t state = kOffsetBasis;

  void mix_byte(std::uint8_t byte) noexcept {
    state = (state ^ byte) * kPrime;
  }

  /// Mixes a 64-bit word little-endian, so digests are host-order
  /// independent of how the caller packed the value.
  void mix(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(value & 0xff));
      value >>= 8;
    }
  }

  void mix_bytes(std::span<const std::byte> bytes) noexcept {
    for (const std::byte byte : bytes) {
      mix_byte(std::to_integer<std::uint8_t>(byte));
    }
  }

  std::uint64_t value() const noexcept { return state; }
};

/// One-shot digest of a byte span.
inline std::uint64_t checksum_bytes(std::span<const std::byte> bytes) {
  Checksum sum;
  sum.mix_bytes(bytes);
  return sum.value();
}

}  // namespace bigk::dur
