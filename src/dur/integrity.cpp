#include "dur/integrity.hpp"

namespace bigk::dur {
namespace {

constexpr std::array<const char*, kNumSites> kSiteNames = {
    "dma", "cache", "writeback", "cpu_partition", "scrub",
};

}  // namespace

const char* site_name(Site site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

void Integrity::attach_observability(obs::MetricsRegistry* metrics,
                                     obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics_ != nullptr) {
    // Pre-register the headline counters so a clean run still exports
    // dur.verified > 0 with dur.detected == 0.
    metrics_->counter("dur.verified");
    metrics_->counter("dur.detected");
    metrics_->counter("dur.repaired");
    metrics_->counter("dur.scrub.checked");
    metrics_->counter("dur.scrub.evictions");
  }
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->track("dur", "integrity");
  }
}

void Integrity::note_verified(Site site) {
  ++stats_.verified;
  ++stats_.verified_by_site[static_cast<std::size_t>(site)];
  if (metrics_ != nullptr) metrics_->counter("dur.verified").add(1);
}

void Integrity::note_detected(Site site, std::uint32_t device,
                              sim::TimePs now) {
  ++stats_.detected;
  ++stats_.detected_by_site[static_cast<std::size_t>(site)];
  if (metrics_ != nullptr) {
    metrics_->counter("dur.detected").add(1);
    metrics_->counter(std::string("dur.detected.") + site_name(site)).add(1);
  }
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_,
                     std::string("corruption at ") + site_name(site) +
                         " dev" + std::to_string(device),
                     now, "dur");
  }
}

void Integrity::note_repaired(Site site) {
  ++stats_.repaired;
  if (metrics_ != nullptr) {
    metrics_->counter("dur.repaired").add(1);
    metrics_->counter(std::string("dur.repaired.") + site_name(site)).add(1);
  }
}

void Integrity::note_scrub(std::uint64_t checked, std::uint64_t evicted) {
  stats_.scrubbed += checked;
  stats_.scrub_evictions += evicted;
  if (metrics_ != nullptr) {
    metrics_->counter("dur.scrub.checked").add(checked);
    metrics_->counter("dur.scrub.evictions").add(evicted);
  }
}

}  // namespace bigk::dur
