// Eviction policies for the bigkcache chunk cache.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bigk::cache {

enum class EvictionKind : std::uint8_t {
  /// Pure recency: evict the entry with the oldest last use.
  kLru,
  /// Cost-aware with admission control: a resident entry is only evictable
  /// for a new, unproven image after it has gone Config::stale_ticks of
  /// cache traffic without a use; among stale entries the one with the
  /// least accumulated PCIe savings (hits x bytes) goes first, then the
  /// oldest. This makes the policy scan-resistant: a sequential chunk scan
  /// bigger than the partition keeps a stable resident prefix that serves
  /// every later pass, instead of the LRU pathology of evicting each chunk
  /// moments before its reuse.
  kCostAware,
};

inline const char* eviction_name(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru: return "lru";
    case EvictionKind::kCostAware: return "cost-aware";
  }
  return "?";
}

/// Parses a --cache-policy value; throws std::invalid_argument listing the
/// valid names on anything unknown.
inline EvictionKind eviction_from_name(std::string_view name) {
  if (name == "lru") return EvictionKind::kLru;
  if (name == "cost-aware") return EvictionKind::kCostAware;
  throw std::invalid_argument("unknown cache eviction policy \"" +
                              std::string(name) +
                              "\"; valid policies: \"lru\" \"cost-aware\"");
}

}  // namespace bigk::cache
