// Host-side pinned assembly-buffer pool.
//
// Every engine launch needs one pinned prefetch buffer per ring slot, and
// cudaMallocHost-style pinned allocation is expensive and accumulates in the
// host's pinned footprint. The pool recycles buffers (with their cache-model
// region ids) across launches and across jobs on the same device: a reused
// buffer keeps its region id, so the host cache model sees the same hot
// region instead of an ever-growing set of cold ones, and the runtime's
// pinned-bytes gauge only grows on genuinely fresh allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cusim/runtime.hpp"
#include "fault/fault.hpp"

namespace bigk::cache {

class PinnedPool {
 public:
  struct Buffer {
    std::vector<std::byte> data;
    std::uint32_t region = 0;
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;
    std::uint64_t fresh_allocations = 0;
    std::uint64_t bytes_allocated = 0;  // pinned footprint ever allocated
  };

  explicit PinnedPool(cusim::Runtime& runtime) : runtime_(runtime) {}

  PinnedPool(const PinnedPool&) = delete;
  PinnedPool& operator=(const PinnedPool&) = delete;

  /// Returns a pinned buffer of exactly `bytes` bytes: the smallest free
  /// buffer whose capacity covers the request (no reallocation, region id
  /// preserved), or a fresh pinned allocation. When the runtime carries a
  /// fault plane, a firing pinned_alloc_fail spec throws PinnedAllocError —
  /// the engine responds by degrading ring depth instead of crashing.
  Buffer acquire(std::uint64_t bytes) {
    if (fault::FaultPlane* plane = runtime_.fault_plane();
        plane != nullptr &&
        plane->should_inject(fault::FaultKind::kPinnedAllocFail,
                             runtime_.fault_device(), runtime_.sim().now())) {
      throw fault::PinnedAllocError("pinned allocation of " +
                                    std::to_string(bytes) +
                                    " bytes failed (injected)");
    }
    ++stats_.acquires;
    auto it = free_.lower_bound(bytes);
    if (it != free_.end()) {
      Buffer buffer = std::move(it->second);
      free_.erase(it);
      buffer.data.resize(bytes);
      ++stats_.reuses;
      return buffer;
    }
    Buffer buffer;
    buffer.data.resize(bytes);
    buffer.region = runtime_.next_region_id();
    runtime_.note_pinned(bytes);
    ++stats_.fresh_allocations;
    stats_.bytes_allocated += bytes;
    return buffer;
  }

  /// Hands a buffer back for reuse. Keyed by capacity: a later, smaller
  /// acquire can shrink-fit into it without reallocating.
  void release(Buffer buffer) {
    const std::uint64_t capacity = buffer.data.capacity();
    free_.emplace(capacity, std::move(buffer));
  }

  const Stats& stats() const noexcept { return stats_; }
  std::size_t free_buffers() const noexcept { return free_.size(); }

 private:
  cusim::Runtime& runtime_;
  std::multimap<std::uint64_t, Buffer> free_;  // capacity -> buffer
  Stats stats_;
};

}  // namespace bigk::cache
