// bigkcache: a device-resident chunk cache over the staging pipeline.
//
// The engine re-assembles and re-transfers the same chunk images on every
// launch, even when a repeat job of the same app lands on a device whose
// arena still holds them. The chunk cache carves a partition out of the
// device arena and retains assembled ring-slot contents after their chunk
// retires, keyed by (dataset, stream, chunk range, layout, pattern
// signature); on a hit the assembly and DMA stages are skipped and the
// compute stage reads the cached device range directly.
//
// Protocol:
//   * lookup() pins the entry on a hit; the engine unpins at slot release,
//     so an entry backing an in-flight chunk can never be evicted.
//   * On a miss the engine assembles as usual, then insert() allocates an
//     entry (evicting per policy under pressure) and the H2D DMA targets the
//     entry's device range directly — no device-to-device copy; the entry is
//     born pinned and the engine unpins it at slot release.
//   * invalidate_dataset() / invalidate_entry() drop entries whose source
//     bytes mutated; a still-pinned entry turns zombie (removed from the
//     index immediately, storage reclaimed at the last unpin) and the
//     pipeline checker is told so a read after the invalidation is flagged
//     as stale_cache_read.
//
// Everything is deterministic: ordered containers, monotonic entry ids, and
// a recency tick instead of wall clocks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cache/key.hpp"
#include "cache/policy.hpp"
#include "check/pipecheck.hpp"
#include "gpusim/device_memory.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace bigk::cache {

class ChunkCache {
 public:
  struct Config {
    /// Partition carved from the device arena at construction.
    std::uint64_t capacity_bytes = 0;
    EvictionKind eviction = EvictionKind::kCostAware;
    /// Admission window for kCostAware: a resident entry is evictable for a
    /// new, unproven image only after it has gone this many ticks of cache
    /// traffic (lookups + insertions) without a use. 0 = every unpinned
    /// entry is immediately evictable (pure cost ranking, no admission
    /// control). Ignored by kLru.
    std::uint64_t stale_ticks = 256;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t insert_failures = 0;  // no unpinned victim / oversized
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    /// PCIe H2D bytes avoided by hits (the assembled image per hit).
    std::uint64_t bytes_saved = 0;
  };

  /// Result of lookup()/insert(): a pinned device range the engine may DMA
  /// into (insert) or read directly (hit). `entry` feeds unpin().
  struct Lease {
    std::uint64_t entry = 0;
    std::uint64_t dev_base = 0;  // absolute device offset
    std::uint64_t bytes = 0;
  };

  /// Reserves the partition from `memory`; throws gpusim::OutOfDeviceMemory
  /// when the arena cannot spare `config.capacity_bytes`.
  ChunkCache(gpusim::DeviceMemory& memory, Config config);
  ~ChunkCache();

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Registers the live counters (`cache.<name>.hits` etc.) and the
  /// per-device trace track ("<name> cache" process: hit/insert/evict
  /// instants plus a resident-bytes counter series). Both sinks optional.
  void attach_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                            const std::string& name);

  /// Pipeline checker notified of invalidations/evictions (so it can prove
  /// a cached read is never stale). The engine installs it per launch;
  /// nullptr detaches.
  void set_checker(check::PipelineChecker* checker) noexcept {
    checker_ = checker;
  }

  /// Hit: pins the entry and returns its lease. Miss: counts it and returns
  /// nullopt (the caller assembles, then offers the image via insert()).
  std::optional<Lease> lookup(const CacheKey& key, sim::TimePs now);

  /// Allocates a pinned entry of `bytes` for `key`, evicting unpinned
  /// entries per policy under pressure. Returns nullopt when the image
  /// cannot fit (oversized, or everything else is pinned); the caller then
  /// falls back to the ring slot's own buffer.
  std::optional<Lease> insert(const CacheKey& key, std::uint64_t bytes,
                              sim::TimePs now);

  /// Releases the pin taken by lookup()/insert(). A zombie entry (one
  /// invalidated while pinned) is reclaimed at its last unpin.
  void unpin(std::uint64_t entry);

  /// Drops every entry of `dataset` (input mutated in place).
  void invalidate_dataset(std::uint64_t dataset, sim::TimePs now);
  /// Drops one entry by id (arena reclaim, fault injection); no-op when the
  /// id is unknown or already invalidated.
  void invalidate_entry(std::uint64_t entry, sim::TimePs now);
  /// Drops every entry. With `device_reset` (serve quarantining the device
  /// after a fault) the checker is told on_cache_device_reset instead of a
  /// plain invalidation, so a read through a surviving lease is flagged as
  /// read_after_device_reset; subsequent lookups miss and restage.
  void invalidate_all(sim::TimePs now, bool device_reset = false);

  /// Live bytes cached for `dataset` — the scheduler's warm-benefit
  /// estimate (what an affinity hit would actually save on PCIe).
  std::uint64_t resident_bytes(std::uint64_t dataset) const;

  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t bytes_used() const noexcept { return used_; }
  std::uint64_t entry_count() const noexcept { return entries_.size(); }
  double hit_rate() const noexcept {
    const std::uint64_t total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats_.hits) /
                                  static_cast<double>(total);
  }

 private:
  struct Entry {
    CacheKey key;
    std::uint64_t offset = 0;  // absolute device offset
    std::uint64_t bytes = 0;
    std::uint32_t pins = 0;
    bool zombie = false;  // invalidated while pinned
    std::uint64_t hits = 0;
    std::uint64_t saved_bytes = 0;  // accumulated PCIe savings
    std::uint64_t last_use = 0;     // recency tick
  };

  /// First-fit from the partition free list (256-byte aligned, neighbours
  /// coalesced on free — the same discipline as the arena allocator).
  std::optional<std::uint64_t> allocate(std::uint64_t bytes);
  void free_range(std::uint64_t offset, std::uint64_t bytes);

  void invalidate_entry_impl(std::uint64_t entry, sim::TimePs now,
                             bool device_reset);

  /// Eviction victim per policy among unpinned live entries; entries_.end()
  /// when everything is pinned.
  std::map<std::uint64_t, Entry>::iterator pick_victim();
  void evict(std::map<std::uint64_t, Entry>::iterator victim,
             sim::TimePs now);
  void reclaim(Entry& entry);
  void trace_instant(const char* name, sim::TimePs now);
  void trace_usage(sim::TimePs now);

  gpusim::DeviceMemory& memory_;
  Config config_;
  std::uint64_t capacity_ = 0;
  std::uint64_t partition_base_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t next_entry_ = 1;
  std::uint64_t tick_ = 0;

  std::map<CacheKey, std::uint64_t> index_;     // key -> entry id
  std::map<std::uint64_t, Entry> entries_;      // entry id -> entry
  std::map<std::uint64_t, std::uint64_t> free_;  // offset -> size

  Stats stats_;
  check::PipelineChecker* checker_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  obs::TrackId trace_events_{};
  obs::Counter* ctr_hits_ = nullptr;
  obs::Counter* ctr_misses_ = nullptr;
  obs::Counter* ctr_evictions_ = nullptr;
  obs::Counter* ctr_bytes_saved_ = nullptr;
  obs::Counter* ctr_insertions_ = nullptr;
  obs::Counter* ctr_insert_failures_ = nullptr;
  obs::Counter* ctr_invalidations_ = nullptr;
};

}  // namespace bigk::cache
