// bigkcache: a device-resident chunk cache over the staging pipeline.
//
// The engine re-assembles and re-transfers the same chunk images on every
// launch, even when a repeat job of the same app lands on a device whose
// arena still holds them. The chunk cache carves a partition out of the
// device arena and retains assembled ring-slot contents after their chunk
// retires, keyed by (dataset, stream, chunk range, layout, pattern
// signature); on a hit the assembly and DMA stages are skipped and the
// compute stage reads the cached device range directly.
//
// Protocol:
//   * lookup() pins the entry on a hit; the engine unpins at slot release,
//     so an entry backing an in-flight chunk can never be evicted.
//   * On a miss the engine assembles as usual, then insert() allocates an
//     entry (evicting per policy under pressure) and the H2D DMA targets the
//     entry's device range directly — no device-to-device copy; the entry is
//     born pinned and the engine unpins it at slot release.
//   * invalidate_dataset() / invalidate_entry() drop entries whose source
//     bytes mutated; a still-pinned entry turns zombie (removed from the
//     index immediately, storage reclaimed at the last unpin) and the
//     pipeline checker is told so a read after the invalidation is flagged
//     as stale_cache_read.
//
// Everything is deterministic: ordered containers, monotonic entry ids, and
// a recency tick instead of wall clocks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cache/key.hpp"
#include "cache/policy.hpp"
#include "check/pipecheck.hpp"
#include "dur/integrity.hpp"
#include "fault/fault.hpp"
#include "gpusim/device_memory.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace bigk::cache {

class ChunkCache {
 public:
  struct Config {
    /// Partition carved from the device arena at construction.
    std::uint64_t capacity_bytes = 0;
    EvictionKind eviction = EvictionKind::kCostAware;
    /// Admission window for kCostAware: a resident entry is evictable for a
    /// new, unproven image only after it has gone this many ticks of cache
    /// traffic (lookups + insertions) without a use. 0 = every unpinned
    /// entry is immediately evictable (pure cost ranking, no admission
    /// control). Ignored by kLru.
    std::uint64_t stale_ticks = 256;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t insert_failures = 0;  // no unpinned victim / oversized
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    /// PCIe H2D bytes avoided by hits (the assembled image per hit).
    std::uint64_t bytes_saved = 0;
  };

  /// Result of lookup()/insert(): a pinned device range the engine may DMA
  /// into (insert) or read directly (hit). `entry` feeds unpin().
  struct Lease {
    std::uint64_t entry = 0;
    std::uint64_t dev_base = 0;  // absolute device offset
    std::uint64_t bytes = 0;
  };

  /// Reserves the partition from `memory`; throws gpusim::OutOfDeviceMemory
  /// when the arena cannot spare `config.capacity_bytes`.
  ChunkCache(gpusim::DeviceMemory& memory, Config config);
  ~ChunkCache();

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Registers the live counters (`cache.<name>.hits` etc.) and the
  /// per-device trace track ("<name> cache" process: hit/insert/evict
  /// instants plus a resident-bytes counter series). Both sinks optional.
  void attach_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                            const std::string& name);

  /// Pipeline checker notified of invalidations/evictions (so it can prove
  /// a cached read is never stale). The engine installs it per launch;
  /// nullptr detaches.
  void set_checker(check::PipelineChecker* checker) noexcept {
    checker_ = checker;
  }

  /// bigkdur integrity plane (externally owned; nullptr = integrity off).
  /// With integrity on, a lookup hit on a quiescent (unpinned) entry first
  /// re-digests the entry's device bytes against the checksum recorded at
  /// insert; a mismatch invalidates the entry and the lookup misses, so the
  /// engine re-assembles and re-transfers clean bytes. Entries still pinned
  /// by an in-flight chunk are skipped — their bytes are covered by the
  /// owner's post-DMA verification.
  void set_integrity(dur::Integrity* integrity) noexcept {
    integrity_ = integrity;
  }

  /// Fault plane + device id for the fault.bitflip_cache injection point:
  /// resident entry bytes are flipped at lookup-hit / scrub-visit time.
  void set_fault(fault::FaultPlane* fault, std::uint32_t device) noexcept {
    fault_ = fault;
    device_ = device;
  }

  /// Hit: pins the entry and returns its lease. Miss: counts it and returns
  /// nullopt (the caller assembles, then offers the image via insert()).
  std::optional<Lease> lookup(const CacheKey& key, sim::TimePs now);

  /// Allocates a pinned entry of `bytes` for `key`, evicting unpinned
  /// entries per policy under pressure. Returns nullopt when the image
  /// cannot fit (oversized, or everything else is pinned); the caller then
  /// falls back to the ring slot's own buffer. `checksum` is the bigkdur
  /// digest of the image about to be DMA'd into the entry (0 = integrity
  /// off; hits and scrubs skip verification).
  std::optional<Lease> insert(const CacheKey& key, std::uint64_t bytes,
                              sim::TimePs now, std::uint64_t checksum = 0);

  struct ScrubResult {
    std::uint64_t checked = 0;
    std::uint64_t evicted = 0;
  };

  /// bigkdur cache scrub: re-verifies up to `max_entries` quiescent resident
  /// entries (round-robin cursor across calls) against their insert-time
  /// checksums and evicts mismatches, notifying the pipeline checker so a
  /// later read through a surviving lease is flagged as scrubbed_entry_read.
  /// No-op with integrity off.
  ScrubResult scrub(std::uint64_t max_entries, sim::TimePs now);

  /// Releases the pin taken by lookup()/insert(). A zombie entry (one
  /// invalidated while pinned) is reclaimed at its last unpin.
  void unpin(std::uint64_t entry);

  /// Drops every entry of `dataset` (input mutated in place).
  void invalidate_dataset(std::uint64_t dataset, sim::TimePs now);
  /// Drops one entry by id (arena reclaim, fault injection); no-op when the
  /// id is unknown or already invalidated.
  void invalidate_entry(std::uint64_t entry, sim::TimePs now);
  /// Drops every entry. With `device_reset` (serve quarantining the device
  /// after a fault) the checker is told on_cache_device_reset instead of a
  /// plain invalidation, so a read through a surviving lease is flagged as
  /// read_after_device_reset; subsequent lookups miss and restage.
  void invalidate_all(sim::TimePs now, bool device_reset = false);

  /// Live bytes cached for `dataset` — the scheduler's warm-benefit
  /// estimate (what an affinity hit would actually save on PCIe).
  std::uint64_t resident_bytes(std::uint64_t dataset) const;

  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t bytes_used() const noexcept { return used_; }
  std::uint64_t entry_count() const noexcept { return entries_.size(); }
  double hit_rate() const noexcept {
    const std::uint64_t total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats_.hits) /
                                  static_cast<double>(total);
  }

 private:
  struct Entry {
    CacheKey key;
    std::uint64_t offset = 0;  // absolute device offset
    std::uint64_t bytes = 0;
    std::uint32_t pins = 0;
    bool zombie = false;  // invalidated while pinned
    std::uint64_t hits = 0;
    std::uint64_t saved_bytes = 0;  // accumulated PCIe savings
    std::uint64_t last_use = 0;     // recency tick
    std::uint64_t checksum = 0;     // bigkdur insert-time digest (0 = off)
  };

  /// First-fit from the partition free list (256-byte aligned, neighbours
  /// coalesced on free — the same discipline as the arena allocator).
  std::optional<std::uint64_t> allocate(std::uint64_t bytes);
  void free_range(std::uint64_t offset, std::uint64_t bytes);

  void invalidate_entry_impl(std::uint64_t entry, sim::TimePs now,
                             bool device_reset);

  /// fault.bitflip_cache trial: flips one device byte of `entry`.
  void maybe_corrupt(const Entry& entry, sim::TimePs now);
  /// Re-digests the entry's device bytes against its insert-time checksum.
  bool verify_entry(const Entry& entry) const;

  /// Eviction victim per policy among unpinned live entries; entries_.end()
  /// when everything is pinned.
  std::map<std::uint64_t, Entry>::iterator pick_victim();
  void evict(std::map<std::uint64_t, Entry>::iterator victim,
             sim::TimePs now);
  void reclaim(Entry& entry);
  void trace_instant(const char* name, sim::TimePs now);
  void trace_usage(sim::TimePs now);

  gpusim::DeviceMemory& memory_;
  Config config_;
  std::uint64_t capacity_ = 0;
  std::uint64_t partition_base_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t next_entry_ = 1;
  std::uint64_t tick_ = 0;

  std::map<CacheKey, std::uint64_t> index_;     // key -> entry id
  std::map<std::uint64_t, Entry> entries_;      // entry id -> entry
  std::map<std::uint64_t, std::uint64_t> free_;  // offset -> size

  Stats stats_;
  check::PipelineChecker* checker_ = nullptr;
  dur::Integrity* integrity_ = nullptr;  // externally owned, optional
  fault::FaultPlane* fault_ = nullptr;   // externally owned, optional
  std::uint32_t device_ = 0;
  std::uint64_t scrub_cursor_ = 0;  // next entry id the scrubber visits
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  obs::TrackId trace_events_{};
  obs::Counter* ctr_hits_ = nullptr;
  obs::Counter* ctr_misses_ = nullptr;
  obs::Counter* ctr_evictions_ = nullptr;
  obs::Counter* ctr_bytes_saved_ = nullptr;
  obs::Counter* ctr_insertions_ = nullptr;
  obs::Counter* ctr_insert_failures_ = nullptr;
  obs::Counter* ctr_invalidations_ = nullptr;
};

}  // namespace bigk::cache
