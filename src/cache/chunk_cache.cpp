#include "cache/chunk_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "dur/checksum.hpp"

namespace bigk::cache {

namespace {
constexpr std::uint64_t kAlign = 256;  // match the arena allocator

constexpr std::uint64_t align_up(std::uint64_t bytes) {
  return (bytes + kAlign - 1) / kAlign * kAlign;
}
}  // namespace

ChunkCache::ChunkCache(gpusim::DeviceMemory& memory, Config config)
    : memory_(memory), config_(config), capacity_(config.capacity_bytes) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ChunkCache needs a non-zero capacity");
  }
  partition_base_ = memory_.allocate_bytes(capacity_);
  free_[partition_base_] = capacity_;
}

ChunkCache::~ChunkCache() { memory_.free_offset(partition_base_); }

void ChunkCache::attach_observability(obs::MetricsRegistry* metrics,
                                      obs::Tracer* tracer,
                                      const std::string& name) {
  if (metrics != nullptr) {
    ctr_hits_ = &metrics->counter("cache." + name + ".hits");
    ctr_misses_ = &metrics->counter("cache." + name + ".misses");
    ctr_evictions_ = &metrics->counter("cache." + name + ".evictions");
    ctr_bytes_saved_ = &metrics->counter("cache." + name + ".bytes_saved");
    ctr_insertions_ = &metrics->counter("cache." + name + ".insertions");
    ctr_insert_failures_ =
        &metrics->counter("cache." + name + ".insert_failures");
    ctr_invalidations_ =
        &metrics->counter("cache." + name + ".invalidations");
  }
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_pid_ = tracer_->process(name + " cache");
    trace_events_ = tracer_->thread(trace_pid_, "events");
  }
}

std::optional<ChunkCache::Lease> ChunkCache::lookup(const CacheKey& key,
                                                    sim::TimePs now) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++tick_;  // misses advance the aging clock: dead entries go stale
    ++stats_.misses;
    if (ctr_misses_ != nullptr) ctr_misses_->add();
    return std::nullopt;
  }
  Entry& entry = entries_.at(it->second);
  if (entry.pins == 0) {
    // Quiescent entry: the bitflip_cache injection point, then the bigkdur
    // re-verification. (A pinned entry may still be mid-DMA — its bytes are
    // covered by the inserting chunk's post-DMA verification instead.)
    maybe_corrupt(entry, now);
    if (integrity_ != nullptr && entry.checksum != 0 &&
        !verify_entry(entry)) {
      integrity_->note_detected(dur::Site::kCache, device_, now);
      if (fault_ != nullptr) {
        // Invalidate-and-miss is the recovery: the engine re-assembles and
        // re-transfers the chunk, landing clean bytes.
        fault_->on_recovered(fault::FaultKind::kBitflipCache);
      }
      const std::uint64_t id = it->second;
      invalidate_entry(id, now);
      ++tick_;
      ++stats_.misses;
      if (ctr_misses_ != nullptr) ctr_misses_->add();
      return std::nullopt;
    }
    if (integrity_ != nullptr && entry.checksum != 0) {
      integrity_->note_verified(dur::Site::kCache);
    }
  }
  ++entry.pins;
  ++entry.hits;
  entry.saved_bytes += entry.bytes;
  entry.last_use = ++tick_;
  ++stats_.hits;
  stats_.bytes_saved += entry.bytes;
  if (ctr_hits_ != nullptr) ctr_hits_->add();
  if (ctr_bytes_saved_ != nullptr) ctr_bytes_saved_->add(entry.bytes);
  trace_instant("cache hit", now);
  return Lease{it->second, entry.offset, entry.bytes};
}

std::optional<ChunkCache::Lease> ChunkCache::insert(const CacheKey& key,
                                                    std::uint64_t bytes,
                                                    sim::TimePs now,
                                                    std::uint64_t checksum) {
  if (bytes == 0 || align_up(bytes) > capacity_) {
    ++stats_.insert_failures;
    if (ctr_insert_failures_ != nullptr) ctr_insert_failures_->add();
    return std::nullopt;
  }
  // A re-insert under an existing key replaces the old image (its bytes may
  // differ when the dataset owner forgot to invalidate — the fresh image is
  // the correct one either way).
  if (const auto existing = index_.find(key); existing != index_.end()) {
    invalidate_entry(existing->second, now);
  }
  std::optional<std::uint64_t> offset = allocate(bytes);
  while (!offset.has_value()) {
    const auto victim = pick_victim();
    if (victim == entries_.end()) {
      ++stats_.insert_failures;
      if (ctr_insert_failures_ != nullptr) ctr_insert_failures_->add();
      return std::nullopt;
    }
    evict(victim, now);
    offset = allocate(bytes);
  }
  const std::uint64_t id = next_entry_++;
  Entry entry;
  entry.key = key;
  entry.offset = *offset;
  entry.bytes = bytes;
  entry.pins = 1;  // born pinned; the engine unpins at slot release
  entry.last_use = ++tick_;
  entry.checksum = checksum;
  entries_.emplace(id, entry);
  index_[key] = id;
  ++stats_.insertions;
  if (ctr_insertions_ != nullptr) ctr_insertions_->add();
  trace_instant("cache insert", now);
  trace_usage(now);
  return Lease{id, *offset, bytes};
}

void ChunkCache::unpin(std::uint64_t entry_id) {
  const auto it = entries_.find(entry_id);
  if (it == entries_.end() || it->second.pins == 0) return;
  Entry& entry = it->second;
  --entry.pins;
  if (entry.zombie && entry.pins == 0) {
    reclaim(entry);
    entries_.erase(it);
  }
}

void ChunkCache::invalidate_dataset(std::uint64_t dataset, sim::TimePs now) {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, entry] : entries_) {
    if (entry.key.dataset == dataset && !entry.zombie) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) invalidate_entry(id, now);
}

void ChunkCache::invalidate_all(sim::TimePs now, bool device_reset) {
  std::vector<std::uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (!entry.zombie) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    invalidate_entry_impl(id, now, device_reset);
  }
}

void ChunkCache::invalidate_entry(std::uint64_t entry_id, sim::TimePs now) {
  invalidate_entry_impl(entry_id, now, /*device_reset=*/false);
}

void ChunkCache::invalidate_entry_impl(std::uint64_t entry_id, sim::TimePs now,
                                       bool device_reset) {
  const auto it = entries_.find(entry_id);
  if (it == entries_.end() || it->second.zombie) return;
  Entry& entry = it->second;
  index_.erase(entry.key);
  ++stats_.invalidations;
  if (ctr_invalidations_ != nullptr) ctr_invalidations_->add();
  if (checker_ != nullptr) {
    if (device_reset) {
      checker_->on_cache_device_reset(entry_id);
    } else {
      checker_->on_cache_invalidate(entry_id);
    }
  }
  trace_instant(device_reset ? "cache device reset" : "cache invalidate", now);
  if (entry.pins > 0) {
    // Still backing an in-flight chunk: drop it from the index now, reclaim
    // the storage at the last unpin. The checker flags any read after this
    // point as stale_cache_read.
    entry.zombie = true;
    return;
  }
  reclaim(entry);
  entries_.erase(it);
  trace_usage(now);
}

void ChunkCache::maybe_corrupt(const Entry& entry, sim::TimePs now) {
  if (fault_ == nullptr || entry.bytes == 0 ||
      !fault_->should_inject(fault::FaultKind::kBitflipCache, device_, now)) {
    return;
  }
  auto span = memory_.bytes_mut(entry.offset, entry.bytes);
  span[entry.bytes / 2] ^= std::byte{0x01};
}

bool ChunkCache::verify_entry(const Entry& entry) const {
  return dur::checksum_bytes(memory_.bytes(entry.offset, entry.bytes)) ==
         entry.checksum;
}

ChunkCache::ScrubResult ChunkCache::scrub(std::uint64_t max_entries,
                                          sim::TimePs now) {
  ScrubResult result;
  if (integrity_ == nullptr || max_entries == 0 || entries_.empty()) {
    return result;
  }
  // Budgeted round-robin: resume from the cursor, wrap once, never visit an
  // entry twice per pass.
  std::vector<std::uint64_t> ids;
  ids.reserve(std::min<std::size_t>(max_entries, entries_.size()));
  for (auto it = entries_.lower_bound(scrub_cursor_);
       it != entries_.end() && ids.size() < max_entries; ++it) {
    ids.push_back(it->first);
  }
  for (auto it = entries_.begin();
       it != entries_.end() && ids.size() < max_entries &&
       it->first < scrub_cursor_;
       ++it) {
    ids.push_back(it->first);
  }
  if (!ids.empty()) scrub_cursor_ = ids.back() + 1;
  for (const std::uint64_t id : ids) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    // Pinned entries may be mid-DMA (covered by their owner's post-DMA
    // verification); zombies are already condemned.
    if (entry.pins > 0 || entry.zombie || entry.checksum == 0) continue;
    ++result.checked;
    maybe_corrupt(entry, now);
    if (verify_entry(entry)) {
      integrity_->note_verified(dur::Site::kScrub);
      continue;
    }
    integrity_->note_detected(dur::Site::kScrub, device_, now);
    if (fault_ != nullptr) {
      // Evict-on-mismatch is the recovery: the next lookup misses and the
      // engine restages clean bytes.
      fault_->on_recovered(fault::FaultKind::kBitflipCache);
    }
    index_.erase(entry.key);
    if (checker_ != nullptr) checker_->on_cache_scrub_evict(id);
    reclaim(entry);
    ++stats_.evictions;
    if (ctr_evictions_ != nullptr) ctr_evictions_->add();
    trace_instant("cache scrub evict", now);
    entries_.erase(it);
    trace_usage(now);
    ++result.evicted;
  }
  integrity_->note_scrub(result.checked, result.evicted);
  return result;
}

std::uint64_t ChunkCache::resident_bytes(std::uint64_t dataset) const {
  std::uint64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.key.dataset == dataset && !entry.zombie) total += entry.bytes;
  }
  return total;
}

std::optional<std::uint64_t> ChunkCache::allocate(std::uint64_t bytes) {
  const std::uint64_t need = align_up(bytes);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    const std::uint64_t offset = it->first;
    const std::uint64_t remaining = it->second - need;
    free_.erase(it);
    if (remaining > 0) free_[offset + need] = remaining;
    used_ += need;
    return offset;
  }
  return std::nullopt;
}

void ChunkCache::free_range(std::uint64_t offset, std::uint64_t bytes) {
  std::uint64_t size = align_up(bytes);
  used_ -= size;
  auto next = free_.upper_bound(offset);
  if (next != free_.end() && offset + size == next->first) {
    size += next->second;
    next = free_.erase(next);
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_[offset] = size;
}

std::map<std::uint64_t, ChunkCache::Entry>::iterator
ChunkCache::pick_victim() {
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const Entry& entry = it->second;
    if (entry.pins > 0 || entry.zombie) continue;
    if (config_.eviction == EvictionKind::kCostAware &&
        tick_ - entry.last_use <= config_.stale_ticks) {
      // Admission control: a new, unproven image may not displace an entry
      // that is still earning its seat. Without this, a chunk scan larger
      // than the partition churns every slot and evicts each image moments
      // before its reuse (0 hits forever); with it, the first images to
      // arrive stay resident and serve every later pass, and only entries
      // that go `stale_ticks` of cache traffic without a use yield their
      // space to new candidates.
      continue;
    }
    if (best == entries_.end()) {
      best = it;
      continue;
    }
    const Entry& leader = best->second;
    if (config_.eviction == EvictionKind::kLru) {
      if (entry.last_use < leader.last_use) best = it;
    } else {
      // Among stale entries: least accumulated PCIe savings first — an entry
      // that served hits proved its worth and outlives one that never did —
      // then oldest last use.
      if (entry.saved_bytes < leader.saved_bytes ||
          (entry.saved_bytes == leader.saved_bytes &&
           entry.last_use < leader.last_use)) {
        best = it;
      }
    }
  }
  return best;
}

void ChunkCache::evict(std::map<std::uint64_t, Entry>::iterator victim,
                       sim::TimePs now) {
  Entry& entry = victim->second;
  index_.erase(entry.key);
  if (checker_ != nullptr) checker_->on_cache_evict(victim->first);
  reclaim(entry);
  ++stats_.evictions;
  if (ctr_evictions_ != nullptr) ctr_evictions_->add();
  trace_instant("cache evict", now);
  entries_.erase(victim);
  trace_usage(now);
}

void ChunkCache::reclaim(Entry& entry) {
  free_range(entry.offset, entry.bytes);
}

void ChunkCache::trace_instant(const char* name, sim::TimePs now) {
  if (tracer_ != nullptr) tracer_->instant(trace_events_, name, now, "cache");
}

void ChunkCache::trace_usage(sim::TimePs now) {
  if (tracer_ != nullptr) {
    tracer_->counter_set(trace_pid_, "resident bytes", now,
                         static_cast<double>(used_));
  }
}

}  // namespace bigk::cache
