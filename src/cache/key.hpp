// Cache keys for assembled chunk contents.
//
// A cached slot is only reusable when the *exact same bytes in the exact
// same layout* would be assembled again. The key therefore covers everything
// that determines the assembled image:
//   * dataset: caller-assigned identity of the mapped stream contents (the
//     serving layer hashes the app name — same app, same generated dataset).
//     The cache never hashes stream bytes itself; invalidate_dataset() is
//     the caller's obligation when it mutates a dataset in place.
//   * stream: the stream's index within the kernel's mapped-stream list.
//   * range_begin / range_end: the block's record range.
//   * chunk: the chunk index within that range.
//   * layout: the core::DataLayout the bytes were assembled into.
//   * signature: an FNV-1a hash over the launch geometry (computation
//     threads, per-thread slot capacity, records per thread-chunk) and the
//     generated address stream of every thread, so a kernel that generates
//     different addresses — or the same addresses under different geometry —
//     never aliases a stale image.
#pragma once

#include <compare>
#include <cstdint>

namespace bigk::cache {

struct CacheKey {
  std::uint64_t dataset = 0;
  std::uint32_t stream = 0;
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
  std::uint64_t chunk = 0;
  std::uint8_t layout = 0;
  std::uint64_t signature = 0;

  auto operator<=>(const CacheKey&) const = default;
};

/// Incremental FNV-1a (64-bit): the standard cheap deterministic hash; used
/// for both pattern signatures and dataset ids.
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void mix(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      state ^= (value >> (8 * i)) & 0xffu;
      state *= 1099511628211ull;
    }
  }

  void mix_bytes(const char* data, std::uint64_t size) noexcept {
    for (std::uint64_t i = 0; i < size; ++i) {
      state ^= static_cast<unsigned char>(data[i]);
      state *= 1099511628211ull;
    }
  }
};

}  // namespace bigk::cache
