// Mapped streaming data structures and device-resident tables.
//
// A *stream* is the paper's streamingMalloc/streamingMap object: an
// arbitrarily large host array that a kernel accesses in a streaming fashion
// through pseudo-virtual memory. A *table* is an ordinary device-resident
// structure (the K-means cluster array, Word Count's hash table, ...) that
// fits in GPU memory and is copied explicitly, outside BigKernel's purview.
//
// Kernels refer to both through small typed handles (StreamRef / TableRef)
// so that the same kernel source can be instantiated against every execution
// context: CPU, chunked GPU baselines, and BigKernel's address-generation
// and computation stages — the template equivalent of the paper's compiler
// transformation.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace bigk::core {

namespace detail {
template <class Ctx, class T, class = void>
struct CtxValue {
  using type = T;
};
template <class Ctx, class T>
struct CtxValue<Ctx, T, std::void_t<typename Ctx::template Value<T>>> {
  using type = typename Ctx::template Value<T>;
};
}  // namespace detail

/// Context-dependent value type for kernel locals that hold stream or table
/// values. An abstract context may expose a `Value<T>` member alias wrapping
/// the values its read()/load_table() return (bigkstatic's taint context
/// wraps them in Tainted<T>); every executing context leaves it undefined
/// and kernels see plain T.
template <class Ctx, class T>
using Val = typename detail::CtxValue<Ctx, T>::type;

/// static_cast for kernel values. Abstract value wrappers overload this via
/// ADL (verify::Tainted<T> keeps its taint through casts), so kernels that
/// cast stream-derived values stay analyzable.
template <class To, class From>
  requires std::is_arithmetic_v<From>
constexpr To value_cast(From value) {
  return static_cast<To>(value);
}

/// How a kernel accesses a mapped stream.
enum class AccessMode : std::uint8_t {
  kReadOnly,
  kReadWrite,
};

/// Typed handle to a mapped stream (index into the engine's binding list).
template <class T>
struct StreamRef {
  std::uint32_t id = ~0u;
  bool valid() const noexcept { return id != ~0u; }
};

/// Typed handle to a device-resident table (index into a TableSet).
template <class T>
struct TableRef {
  std::uint32_t id = ~0u;
  bool valid() const noexcept { return id != ~0u; }
};

/// Type-erased description of one mapped stream.
struct StreamBinding {
  std::byte* host_data = nullptr;   // mutable for write-back scatters
  std::uint64_t num_elements = 0;
  std::uint32_t elem_size = 0;
  std::uint32_t host_region = 0;    // cache-model region id
  AccessMode mode = AccessMode::kReadOnly;

  /// Declared worst-case accesses per record (sizes the address/data
  /// buffers, like the compile-time analysis in the paper).
  std::uint32_t elems_per_record = 1;
  std::uint32_t reads_per_record = 1;
  std::uint32_t writes_per_record = 0;

  std::uint64_t size_bytes() const noexcept {
    return num_elements * elem_size;
  }

  template <class T>
  T load(std::uint64_t index) const {
    assert(index < num_elements && sizeof(T) == elem_size);
    T value;
    std::memcpy(&value, host_data + index * sizeof(T), sizeof(T));
    return value;
  }

  template <class T>
  void store(std::uint64_t index, const T& value) {
    assert(index < num_elements && sizeof(T) == elem_size);
    std::memcpy(host_data + index * sizeof(T), &value, sizeof(T));
  }
};

/// Canonical (host-side) storage for kernel tables. Schemes that execute on
/// the simulated GPU materialize the set into device memory before the run
/// and copy results back afterwards; the CPU schemes operate on it directly.
class TableSet {
 public:
  template <class T>
  TableRef<T> add(std::uint64_t count) {
    Table table;
    table.elem_size = sizeof(T);
    table.count = count;
    table.bytes.resize(count * sizeof(T));
    tables_.push_back(std::move(table));
    return TableRef<T>{static_cast<std::uint32_t>(tables_.size() - 1)};
  }

  std::size_t size() const noexcept { return tables_.size(); }

  template <class T>
  std::span<T> host_span(TableRef<T> ref) {
    Table& table = tables_.at(ref.id);
    if (table.elem_size != sizeof(T)) {
      throw std::logic_error("TableRef type mismatch");
    }
    return {reinterpret_cast<T*>(table.bytes.data()), table.count};
  }

  template <class T>
  std::span<const T> host_span(TableRef<T> ref) const {
    const Table& table = tables_.at(ref.id);
    if (table.elem_size != sizeof(T)) {
      throw std::logic_error("TableRef type mismatch");
    }
    return {reinterpret_cast<const T*>(table.bytes.data()), table.count};
  }

  std::uint64_t table_bytes(std::uint32_t id) const {
    return tables_.at(id).bytes.size();
  }
  std::span<std::byte> raw_bytes(std::uint32_t id) {
    return tables_.at(id).bytes;
  }
  std::span<const std::byte> raw_bytes(std::uint32_t id) const {
    return tables_.at(id).bytes;
  }
  std::uint32_t elem_size(std::uint32_t id) const {
    return tables_.at(id).elem_size;
  }

  std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const Table& t : tables_) total += t.bytes.size();
    return total;
  }

 private:
  struct Table {
    std::uint32_t elem_size = 0;
    std::uint64_t count = 0;
    std::vector<std::byte> bytes;
  };
  std::vector<Table> tables_;
};

}  // namespace bigk::core
