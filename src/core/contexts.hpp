// The two kernel instantiations BigKernel's "compiler transformation"
// produces from one kernel source (§III):
//
//  * AddrGenCtx — the prefetch address-generation stage: stream reads record
//    their addresses (feeding the pattern detector) and return dummy zero
//    values; everything that does not contribute to addresses (arithmetic,
//    table access, atomics) is stripped to a no-op, exactly like the paper's
//    statement removal. load_addr_table() is the one table access kept: it
//    marks loads that feed address computation (e.g. the indexed MasterCard
//    offset array).
//
//  * ComputeCtx — the computation stage: stream reads are redirected to the
//    assembled data buffer (dataBuf[counter++][tid] in the paper), stream
//    writes go to the write buffer and are staged for CPU-side scatter, and
//    all stripped operations run for real.
//
// Kernels must satisfy the streaming restriction of the paper: the sequence
// of stream accesses may not depend on stream *values* except that a kernel
// may stop early (dummy zeros must take the maximal access path), so the
// computation stage consumes a prefix of the recorded access sequence.
#pragma once

#include <array>
#include <cassert>
#include <cstring>

#include "check/pipecheck.hpp"
#include "core/device_tables.hpp"
#include "core/staging.hpp"
#include "core/stream.hpp"
#include "gpusim/gpu.hpp"

namespace bigk::core {

/// Maximum mapped streams per kernel (fixed-size counters keep the hot path
/// allocation-free).
constexpr std::uint32_t kMaxStreams = 4;

/// Cycles charged per generated address (the surviving address arithmetic).
constexpr double kAddrGenCyclesPerAccess = 2.0;
/// Extra cycles for the online pattern check of §IV.A.
constexpr double kPatternCheckCycles = 0.5;

class AddrGenCtx {
 public:
  /// SIMD lock-step execution: kernels inflate branchy work on such
  /// contexts by their declared warp-divergence factor.
  static constexpr bool kSimd = true;

  AddrGenCtx(gpusim::LaneCtx& lane, ChunkSlot& slot,
             const std::vector<StreamBinding>& bindings,
             const DeviceTables& tables, std::uint32_t vtid,
             bool detect_patterns)
      : lane_(lane),
        slot_(slot),
        bindings_(bindings),
        tables_(tables),
        vtid_(vtid),
        detect_(detect_patterns) {}

  template <class T>
  T read(StreamRef<T> stream, std::uint64_t elem) {
    ThreadAddrs& addrs = slot_.streams[stream.id].read_addrs[vtid_];
    addrs.feed(elem, sizeof(T));
    lane_.alu(kAddrGenCyclesPerAccess +
              (detect_ ? kPatternCheckCycles : 0.0));
    return T{};
  }

  template <class T>
  void write(StreamRef<T> stream, std::uint64_t elem, const T&) {
    ThreadAddrs& addrs = slot_.streams[stream.id].write_addrs[vtid_];
    addrs.feed(elem, sizeof(T));
    lane_.alu(kAddrGenCyclesPerAccess +
              (detect_ ? kPatternCheckCycles : 0.0));
  }

  /// Kept: a device load that feeds address computation.
  template <class T>
  T load_addr_table(TableRef<T> table, std::uint64_t index) {
    return lane_.load(tables_.device_ptr(table), index);
  }

  // Stripped statements: no cost, no effect, dummy values.
  template <class T>
  T load_table(TableRef<T>, std::uint64_t) {
    return T{};
  }
  template <class T>
  void store_table(TableRef<T>, std::uint64_t, const T&) {}
  template <class T>
  T atomic_add_table(TableRef<T>, std::uint64_t, T) {
    return T{};
  }
  void alu(double) {}

 private:
  gpusim::LaneCtx& lane_;
  ChunkSlot& slot_;
  const std::vector<StreamBinding>& bindings_;
  const DeviceTables& tables_;
  std::uint32_t vtid_;
  bool detect_;
};

class ComputeCtx {
 public:
  static constexpr bool kSimd = true;

  ComputeCtx(gpusim::LaneCtx& lane, ChunkSlot& slot,
             const std::vector<StreamBinding>& bindings,
             const DeviceTables& tables, DataLayout layout,
             std::uint32_t compute_threads, std::uint32_t vtid,
             std::uint64_t rec_begin,
             check::PipelineChecker* checker = nullptr,
             std::uint32_t block = 0, std::uint64_t chunk = 0)
      : lane_(lane),
        slot_(slot),
        bindings_(bindings),
        tables_(tables),
        layout_(layout),
        compute_threads_(compute_threads),
        vtid_(vtid),
        rec_begin_(rec_begin),
        checker_(checker),
        block_(block),
        chunk_(chunk) {
    read_counter_.fill(0);
    write_counter_.fill(0);
  }

  template <class T>
  T read(StreamRef<T> stream, std::uint64_t elem) {
    StreamStage& stage = slot_.streams[stream.id];
    std::uint64_t k;
    if (layout_ == DataLayout::kOriginal) {
      const std::uint64_t base =
          rec_begin_ * bindings_[stream.id].elems_per_record;
      assert(elem >= base);
      k = elem - base;
    } else {
      k = read_counter_[stream.id]++;
    }
    if (checker_ != nullptr) {
      checker_->on_compute_read(block_, chunk_, stream.id, vtid_, k);
    }
    assert(k < stage.slots_per_thread && "data buffer slot overflow");
    const std::uint64_t addr = data_slot_address(
        stage, layout_, compute_threads_, vtid_, k, sizeof(T));
    return lane_.load(gpusim::DevicePtr<T>{addr});
  }

  template <class T>
  void write(StreamRef<T> stream, std::uint64_t elem, const T& value) {
    StreamStage& stage = slot_.streams[stream.id];
    const std::uint64_t k = write_counter_[stream.id]++;
    assert(k < stage.write_slots_per_thread && "write buffer slot overflow");
    const std::uint64_t addr =
        write_slot_address(stage, compute_threads_, vtid_, k, sizeof(T));
    lane_.store(gpusim::DevicePtr<T>{addr}, 0, value);
    std::uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    stage.staged_writes.push_back(StagedWrite{elem, raw, addr});
  }

  template <class T>
  T load_addr_table(TableRef<T> table, std::uint64_t index) {
    return lane_.load(tables_.device_ptr(table), index);
  }
  template <class T>
  T load_table(TableRef<T> table, std::uint64_t index) {
    return lane_.load(tables_.device_ptr(table), index);
  }
  template <class T>
  void store_table(TableRef<T> table, std::uint64_t index, const T& value) {
    lane_.store(tables_.device_ptr(table), index, value);
  }
  template <class T>
  T atomic_add_table(TableRef<T> table, std::uint64_t index, T delta) {
    return lane_.atomic_add(tables_.device_ptr(table), index, delta);
  }
  void alu(double ops) { lane_.alu(ops); }

 private:
  gpusim::LaneCtx& lane_;
  ChunkSlot& slot_;
  const std::vector<StreamBinding>& bindings_;
  const DeviceTables& tables_;
  DataLayout layout_;
  std::uint32_t compute_threads_;
  std::uint32_t vtid_;
  std::uint64_t rec_begin_;
  check::PipelineChecker* checker_;
  std::uint32_t block_;
  std::uint64_t chunk_;
  std::array<std::uint64_t, kMaxStreams> read_counter_{};
  std::array<std::uint64_t, kMaxStreams> write_counter_{};
};

}  // namespace bigk::core
