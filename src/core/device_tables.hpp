// Materialization of kernel tables into simulated device memory.
//
// Tables (cluster arrays, dictionaries, hash tables, index arrays) are the
// explicitly-managed device data of the paper's examples: copied up before
// the kernel runs, copied back afterwards, and accessed by GPU threads with
// ordinary (traced, coalescing-modelled) loads and stores.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stream.hpp"
#include "cusim/runtime.hpp"
#include "gpusim/device_memory.hpp"
#include "sim/task.hpp"

namespace bigk::core {

class DeviceTables {
 public:
  DeviceTables() = default;

  /// Allocates device storage for every table in `tables` and synchronously
  /// copies the host contents up (charging PCIe time).
  static sim::Task<DeviceTables> upload(cusim::Runtime& runtime,
                                        TableSet& tables) {
    DeviceTables device;
    device.runtime_ = &runtime;
    device.tables_ = &tables;
    for (std::uint32_t id = 0; id < tables.size(); ++id) {
      const std::uint64_t bytes = tables.table_bytes(id);
      Entry entry;
      entry.offset = runtime.gpu().memory().allocate_bytes(bytes);
      entry.bytes = bytes;
      entry.elem_size = tables.elem_size(id);
      device.entries_.push_back(entry);
      co_await runtime.gpu().h2d_transfer(bytes);
      auto dst = runtime.gpu().memory().bytes_mut(entry.offset, bytes);
      auto src = tables.raw_bytes(id);
      std::memcpy(dst.data(), src.data(), bytes);
    }
    co_return device;
  }

  /// Copies every table's device contents back into the host TableSet
  /// (results of GPU runs, charged as one transfer per table).
  sim::Task<> download() {
    for (std::uint32_t id = 0; id < entries_.size(); ++id) {
      const Entry& entry = entries_[id];
      co_await runtime_->gpu().d2h_transfer(entry.bytes);
      auto src = runtime_->gpu().memory().bytes(entry.offset, entry.bytes);
      auto dst = tables_->raw_bytes(id);
      std::memcpy(dst.data(), src.data(), entry.bytes);
    }
  }

  /// Frees the device allocations (idempotent).
  void release() {
    if (!runtime_) return;
    for (const Entry& entry : entries_) {
      runtime_->gpu().memory().free_offset(entry.offset);
    }
    entries_.clear();
    runtime_ = nullptr;
  }

  template <class T>
  gpusim::DevicePtr<T> device_ptr(TableRef<T> ref) const {
    return gpusim::DevicePtr<T>{entries_.at(ref.id).offset};
  }

  std::uint64_t device_bytes() const {
    std::uint64_t total = 0;
    for (const Entry& entry : entries_) total += entry.bytes;
    return total;
  }

 private:
  struct Entry {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t elem_size = 0;
  };
  cusim::Runtime* runtime_ = nullptr;
  TableSet* tables_ = nullptr;
  std::vector<Entry> entries_;
};

}  // namespace bigk::core
