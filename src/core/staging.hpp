// Pipeline staging state: the address buffers, prefetch/data buffers and
// write buffers of Fig. 1, organized as a ring of `buffer_depth` chunk slots
// per thread block (the paper's "multiple instances of each buffer").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/pattern.hpp"
#include "sim/sync.hpp"

namespace bigk::core {

/// Wire size of one device address in the address buffers. Streams are
/// addressed by 32-bit offsets (the paper: "addresses (which are typically
/// 4 or 8-bytes)"); our scaled streams always fit.
constexpr std::uint64_t kAddrBytes = 4;

/// Placement of assembled elements in the data buffer.
enum class DataLayout : std::uint8_t {
  /// Slot-major interleave: thread v's k-th element at (k * C + v). The
  /// layout BigKernel produces for coalesced GPU accesses.
  kInterleaved,
  /// Thread-major: thread v's elements contiguous. Models "transferred data
  /// left in its original layout" (coalescing ablation off).
  kThreadMajor,
  /// Whole-chunk fetch: every element of each thread's records, addressable
  /// by element index. The fallback / overlap-only mode.
  kOriginal,
};

/// One thread's generated addresses for one chunk of one stream: either a
/// confirmed stride pattern or explicit element indices.
struct ThreadAddrs {
  std::optional<StridePattern> pattern;
  std::vector<std::uint64_t> elems;  // element indices (kept until finalize)
  std::uint64_t count = 0;
  std::uint64_t wire_bytes = 0;  // what crossed PCIe for this thread-chunk

  PatternDetector detector;
  bool detect = true;

  void begin(bool detect_patterns) {
    pattern.reset();
    elems.clear();
    count = 0;
    wire_bytes = 0;
    detector.reset();
    detect = detect_patterns;
  }

  /// Records one accessed element (detector fed with byte addresses, like
  /// the hardware would see).
  void feed(std::uint64_t elem_index, std::uint32_t elem_size) {
    ++count;
    elems.push_back(elem_index);
    if (detect) detector.feed(elem_index * elem_size);
  }

  /// Resolves the pattern-vs-addresses outcome and the wire traffic.
  void finalize() {
    if (detect && count > 0) {
      if (auto p = detector.pattern(); p && p->count == count) {
        pattern = std::move(*p);
        wire_bytes = pattern->descriptor_bytes();
        elems.clear();
        elems.shrink_to_fit();
        return;
      }
    }
    wire_bytes = count * kAddrBytes;  // one device address per access
  }

  /// Element index of the k-th access (from the pattern or the explicit
  /// list); `elem_size` converts pattern byte addresses back.
  std::uint64_t element_at(std::uint64_t k, std::uint32_t elem_size) const {
    if (pattern) return pattern->address_at(k) / elem_size;
    return elems[k];
  }
};

/// Sentinel for StreamStage::cached_dev_base: the chunk is not cache-served.
constexpr std::uint64_t kNoCachedBase = ~std::uint64_t{0};

/// One value produced by the computation stage, pending scatter. `dev_addr`
/// records where the value also landed in the device write buffer, so the
/// scatter stage can re-fetch the authoritative copy if the staged value is
/// corrupted in flight (bigkdur write-back repair).
struct StagedWrite {
  std::uint64_t elem = 0;      // destination element index in the stream
  std::uint64_t raw = 0;       // little-endian value widened to 8 bytes
  std::uint64_t dev_addr = 0;  // device write-buffer address of the value
};

/// Per-stream staging within one ring slot.
struct StreamStage {
  std::vector<ThreadAddrs> read_addrs;   // one per computation thread
  std::vector<ThreadAddrs> write_addrs;  // write-address buffer (Fig. 1)
  /// Values produced by the computation stage, pending scatter.
  std::vector<StagedWrite> staged_writes;

  std::uint64_t dev_data_base = 0;   // device offset of this slot's data buf
  std::uint64_t dev_write_base = 0;  // device offset of this slot's write buf
  std::uint64_t data_capacity_bytes = 0;
  std::uint64_t write_capacity_bytes = 0;
  /// Per-thread slot capacity (reads) or element capacity (kOriginal).
  std::uint64_t slots_per_thread = 0;
  std::uint64_t write_slots_per_thread = 0;
  /// When the chunk cache serves this stream's current chunk, the cache
  /// entry's device range replaces the slot's own data buffer for both the
  /// DMA target (insert) and compute reads (hit). Reset every chunk.
  std::uint64_t cached_dev_base = kNoCachedBase;
  /// bigkdur custody digests, valid only while integrity is on: FNV of the
  /// assembled pinned image (computed once at assembly, verified post-DMA
  /// and on cache hits) and of the staged writes (computed at compute end,
  /// verified by the scatter stage).
  std::uint64_t image_checksum = 0;
  std::uint64_t staged_checksum = 0;

  std::uint64_t active_data_base() const noexcept {
    return cached_dev_base != kNoCachedBase ? cached_dev_base : dev_data_base;
  }
};

/// One ring slot: staging for every stream plus the pinned prefetch buffer
/// backing the host->device copy.
struct ChunkSlot {
  std::vector<StreamStage> streams;
  std::vector<std::byte> prefetch;  // pinned; region id tracked by the engine
  std::uint32_t prefetch_region = 0;
  /// Byte offset of each stream's section within `prefetch`.
  std::vector<std::uint64_t> prefetch_offset;
};

/// Byte offset of the k-th assembled element of computation thread `vtid`
/// within the data buffer under `layout` (C = computation threads per
/// block). Base-independent: the same offset applies to the slot's own
/// buffer, a cache entry's range, and the pinned prefetch buffer.
inline std::uint64_t data_slot_offset(const StreamStage& stage,
                                      DataLayout layout, std::uint32_t c,
                                      std::uint32_t vtid, std::uint64_t k,
                                      std::uint32_t elem_size) {
  switch (layout) {
    case DataLayout::kInterleaved:
      return (k * c + vtid) * elem_size;
    case DataLayout::kThreadMajor:
    case DataLayout::kOriginal:
      return (std::uint64_t{vtid} * stage.slots_per_thread + k) * elem_size;
  }
  return 0;
}

/// Device address of the k-th assembled element (the cache entry's range
/// when the chunk is cache-served, the slot's own data buffer otherwise).
inline std::uint64_t data_slot_address(const StreamStage& stage,
                                       DataLayout layout, std::uint32_t c,
                                       std::uint32_t vtid, std::uint64_t k,
                                       std::uint32_t elem_size) {
  return stage.active_data_base() +
         data_slot_offset(stage, layout, c, vtid, k, elem_size);
}

/// Matching position inside the pinned prefetch buffer (same layout, so the
/// host->device copy is a straight memcpy).
inline std::uint64_t prefetch_position(const StreamStage& stage,
                                       DataLayout layout, std::uint32_t c,
                                       std::uint32_t vtid, std::uint64_t k,
                                       std::uint32_t elem_size) {
  return data_slot_offset(stage, layout, c, vtid, k, elem_size);
}

/// Write-buffer device address (always interleaved: writes from lock-step
/// threads land adjacently).
inline std::uint64_t write_slot_address(const StreamStage& stage,
                                        std::uint32_t c, std::uint32_t vtid,
                                        std::uint64_t k,
                                        std::uint32_t elem_size) {
  return stage.dev_write_base + (k * c + vtid) * elem_size;
}

}  // namespace bigk::core
