// Per-launch metrics collected by the BigKernel engine: stage busy times
// (Fig. 6), traffic volumes, and pattern-recognition outcomes (Table II).
#pragma once

#include <array>
#include <cstdint>

#include "obs/stage.hpp"
#include "sim/time.hpp"

namespace bigk::core {

struct EngineMetrics {
  // --- stage busy times (summed across blocks) --------------------------
  // Indexed by the canonical obs::Stage taxonomy — the same enum the trace
  // events use, so the Fig. 6 breakdown and the Fig. 2 timeline agree by
  // construction.
  std::array<sim::DurationPs, obs::kStageCount> stage_busy_ps{};

  sim::DurationPs& stage_busy(obs::Stage stage) {
    return stage_busy_ps[obs::stage_index(stage)];
  }
  sim::DurationPs stage_busy(obs::Stage stage) const {
    return stage_busy_ps[obs::stage_index(stage)];
  }

  sim::DurationPs addr_gen_busy() const {   // stage 1, GPU
    return stage_busy(obs::Stage::kAddrGen);
  }
  sim::DurationPs assembly_busy() const {   // stage 2, CPU
    return stage_busy(obs::Stage::kAssembly);
  }
  sim::DurationPs transfer_busy() const {   // stage 3, DMA h2d
    return stage_busy(obs::Stage::kTransfer);
  }
  sim::DurationPs compute_busy() const {    // stage 4, GPU
    return stage_busy(obs::Stage::kCompute);
  }
  sim::DurationPs writeback_busy() const {  // optional stages 5+6
    return stage_busy(obs::Stage::kWriteback);
  }

  // --- traffic -----------------------------------------------------------
  std::uint64_t addr_bytes_sent = 0;    // GPU->CPU addresses / patterns
  std::uint64_t data_bytes_sent = 0;    // CPU->GPU assembled data
  std::uint64_t write_bytes_sent = 0;   // GPU->CPU write-back values
  std::uint64_t source_bytes_read = 0;  // gathered from the mapped source

  // --- pipeline shape ------------------------------------------------------
  std::uint64_t chunks = 0;             // chunk iterations across blocks
  std::uint64_t thread_chunks = 0;      // per-thread chunk address streams
  std::uint64_t pattern_hits = 0;       // ... covered by a stride pattern
  std::uint64_t elements_fetched = 0;   // elements gathered by assembly
  std::uint64_t elements_written = 0;   // elements scattered back

  // --- bigkcache (chunk cache attached via set_chunk_cache) ---------------
  std::uint64_t cache_hits = 0;         // stream-chunks served from cache
  std::uint64_t cache_misses = 0;       // cacheable stream-chunks assembled
  std::uint64_t cache_bytes_saved = 0;  // PCIe H2D bytes skipped on hits

  // --- bigkfault (fault plane attached on the runtime) --------------------
  std::uint64_t chunk_retries = 0;   // failed H2D rounds re-issued
  std::uint64_t retried_bytes = 0;   // H2D bytes re-transferred by retries
  std::uint64_t degraded_blocks = 0;  // blocks running a shrunken ring

  double pattern_hit_rate() const {
    return thread_chunks == 0
               ? 0.0
               : static_cast<double>(pattern_hits) /
                     static_cast<double>(thread_chunks);
  }
};

}  // namespace bigk::core
