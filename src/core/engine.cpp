#include "core/engine.hpp"

#include <array>
#include <cassert>
#include <cstring>

namespace bigk::core {

namespace {
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// bigkdur digest of a stream's staged write-back values.
std::uint64_t staged_checksum_of(const StreamStage& stage) {
  dur::Checksum sum;
  for (const StagedWrite& write : stage.staged_writes) {
    sum.mix(write.elem);
    sum.mix(write.raw);
  }
  return sum.value();
}
}  // namespace

Engine::Geometry Engine::plan(std::uint64_t num_records) {
  Geometry geometry;
  geometry.layout = !options_.transfer_reduction
                        ? DataLayout::kOriginal
                        : (options_.coalesced_layout
                               ? DataLayout::kInterleaved
                               : DataLayout::kThreadMajor);

  gpusim::KernelLaunch probe;
  probe.num_blocks = options_.num_blocks;
  probe.threads_per_block = 2 * options_.compute_threads_per_block;
  probe.regs_per_thread = options_.regs_per_thread;
  probe.shared_bytes_per_block = options_.shared_bytes_per_block;
  geometry.blocks = runtime_.gpu().max_active_blocks(probe);
  if (geometry.blocks == 0) {
    throw std::invalid_argument("BigKernel launch shape fits no SM");
  }

  // Buffer budget per (block, ring slot): §IV.D — allocate for active blocks
  // only, so fewer active blocks means larger buffers.
  std::uint64_t budget = options_.data_buf_bytes;
  if (budget == 0) {
    const std::uint64_t free_bytes = runtime_.gpu().memory().free_bytes();
    budget = free_bytes * 7 / 10 /
             (std::uint64_t{geometry.blocks} * options_.buffer_depth);
  }

  const std::uint32_t c_threads = options_.compute_threads_per_block;
  std::uint64_t per_record_bytes = 0;
  std::uint64_t fixed_bytes = 0;
  for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
    const StreamBinding& bind = bindings_[s];
    const std::uint64_t accessed = geometry.layout == DataLayout::kOriginal
                                       ? bind.elems_per_record
                                       : bind.reads_per_record;
    per_record_bytes +=
        std::uint64_t{bind.elem_size} * (accessed + bind.writes_per_record);
    fixed_bytes += std::uint64_t{bind.elem_size} * overfetch_[s];
  }
  if (per_record_bytes == 0) {
    throw std::invalid_argument("mapped streams declare no accesses");
  }
  if (budget / c_threads <= fixed_bytes) {
    throw std::invalid_argument(
        "data buffer budget too small for the declared overfetch window");
  }
  geometry.rptc =
      std::max<std::uint64_t>(1, (budget / c_threads - fixed_bytes) /
                                     per_record_bytes);
  (void)num_records;
  return geometry;
}

gpusim::KernelLaunch Engine::launch_shape() const {
  gpusim::KernelLaunch shape;
  shape.num_blocks = geometry_.blocks;
  shape.threads_per_block = 2 * options_.compute_threads_per_block;
  shape.regs_per_thread = options_.regs_per_thread;
  shape.shared_bytes_per_block = options_.shared_bytes_per_block;
  return shape;
}

void Engine::build_blocks(std::uint64_t num_records) {
  release_buffers();
  auto& memory = runtime_.gpu().memory();
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  const std::uint32_t depth = options_.buffer_depth;
  const std::uint64_t per_block = ceil_div(num_records, geometry_.blocks);
  const std::uint32_t host_threads =
      geometry_.blocks * (has_writes_ ? 2u : 1u);

  blocks_.reserve(geometry_.blocks);
  for (std::uint32_t b = 0; b < geometry_.blocks; ++b) {
    auto block = std::make_unique<BlockState>(sim(), depth,
                                              runtime_.create_stream());
    block->index = b;
    block->records.begin = std::min(std::uint64_t{b} * per_block, num_records);
    block->records.end =
        std::min(block->records.begin + per_block, num_records);
    block->per_thread = ceil_div(block->records.size(), c_threads);
    block->chunks = ceil_div(block->per_thread, geometry_.rptc);
    block->addr_region = runtime_.next_region_id();
    block->assembly_thread.emplace(runtime_.cpu().make_thread(host_threads));
    block->assembly_thread->set_trace_label("assembly b" + std::to_string(b));
    if (has_writes_) {
      block->scatter_thread.emplace(runtime_.cpu().make_thread(host_threads));
      block->scatter_thread->set_trace_label("scatter b" + std::to_string(b));
    }

    block->slots.resize(depth);
    std::uint64_t pinned_addr_bytes = 0;
    for (std::uint32_t slot_idx = 0; slot_idx < block->slots.size();
         ++slot_idx) {
      ChunkSlot& slot = block->slots[slot_idx];
      const std::size_t allocs_before = device_allocs_.size();
      slot.streams.resize(bindings_.size());
      slot.prefetch_offset.resize(bindings_.size());
      std::uint64_t total = 0;
      std::uint64_t slot_addr_bytes = 0;
      for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
        const StreamBinding& bind = bindings_[s];
        StreamStage& stage = slot.streams[s];
        const std::uint64_t accessed =
            geometry_.layout == DataLayout::kOriginal
                ? geometry_.rptc * bind.elems_per_record
                : geometry_.rptc * bind.reads_per_record;
        stage.slots_per_thread = accessed + overfetch_[s];
        stage.write_slots_per_thread =
            geometry_.rptc * bind.writes_per_record;
        stage.data_capacity_bytes =
            std::uint64_t{c_threads} * stage.slots_per_thread * bind.elem_size;
        stage.write_capacity_bytes = std::uint64_t{c_threads} *
                                     stage.write_slots_per_thread *
                                     bind.elem_size;
        stage.dev_data_base = memory.allocate_bytes(stage.data_capacity_bytes);
        device_allocs_.push_back(stage.dev_data_base);
        if (stage.write_capacity_bytes > 0) {
          stage.dev_write_base =
              memory.allocate_bytes(stage.write_capacity_bytes);
          device_allocs_.push_back(stage.dev_write_base);
        }
        stage.read_addrs.resize(c_threads);
        stage.write_addrs.resize(c_threads);
        slot.prefetch_offset[s] = total;
        total += stage.data_capacity_bytes;
        slot_addr_bytes +=
            std::uint64_t{c_threads} * stage.slots_per_thread * 8;
      }
      if (pinned_pool_ != nullptr) {
        cache::PinnedPool::Buffer buffer;
        try {
          buffer = pinned_pool_->acquire(total);
        } catch (const fault::PinnedAllocError&) {
          if (slot_idx < 2) {
            // A ring needs two slots to pipeline at all; below that the
            // failure is fatal and propagates to the caller.
            throw;
          }
          // Graceful degradation: run this block with the slots already
          // built. The extra ring tokens are withheld permanently so the
          // pipeline never acquires the abandoned slot.
          for (std::size_t a = device_allocs_.size(); a > allocs_before; --a) {
            memory.free_offset(device_allocs_[a - 1]);
          }
          device_allocs_.resize(allocs_before);
          block->slots.resize(slot_idx);
          block->depth = slot_idx;
          for (std::uint32_t k = slot_idx; k < depth; ++k) {
            block->ring.try_acquire();
          }
          degraded_ = true;
          ++metrics_.degraded_blocks;
          if (fault::FaultPlane* plane = runtime_.fault_plane()) {
            plane->on_degraded();
            plane->on_recovered(fault::FaultKind::kPinnedAllocFail);
          }
          break;
        }
        slot.prefetch = std::move(buffer.data);
        slot.prefetch_region = buffer.region;
      } else {
        slot.prefetch.resize(total);
        slot.prefetch_region = runtime_.next_region_id();
        runtime_.note_pinned(total);
      }
      pinned_addr_bytes += slot_addr_bytes;
    }
    block->slot_leases.resize(block->depth);
    runtime_.note_pinned(pinned_addr_bytes);
    blocks_.push_back(std::move(block));
  }
}

void Engine::release_buffers() {
  for (std::uint64_t offset : device_allocs_) {
    runtime_.gpu().memory().free_offset(offset);
  }
  device_allocs_.clear();
  if (pinned_pool_ != nullptr) {
    for (auto& block : blocks_) {
      for (ChunkSlot& slot : block->slots) {
        if (slot.prefetch.empty() && slot.prefetch_region == 0) continue;
        pinned_pool_->release(cache::PinnedPool::Buffer{
            std::move(slot.prefetch), slot.prefetch_region});
        slot.prefetch_region = 0;
      }
    }
  }
  blocks_.clear();
}

Engine::Range Engine::thread_chunk_range(const BlockState& block,
                                         std::uint32_t vtid,
                                         std::uint64_t chunk) const {
  const std::uint64_t thread_begin =
      block.records.begin + std::uint64_t{vtid} * block.per_thread;
  if (thread_begin >= block.records.end) return {};
  const std::uint64_t thread_end =
      std::min(block.records.end, thread_begin + block.per_thread);
  const std::uint64_t chunk_begin = thread_begin + chunk * geometry_.rptc;
  if (chunk_begin >= thread_end) return {};
  return {chunk_begin, std::min(thread_end, chunk_begin + geometry_.rptc)};
}

void Engine::finalize_addresses(BlockState& block, ChunkSlot& slot,
                                std::uint64_t* wire_bytes) {
  (void)block;
  for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
    StreamStage& stage = slot.streams[s];
    for (std::uint32_t v = 0; v < stage.read_addrs.size(); ++v) {
      ThreadAddrs& reads = stage.read_addrs[v];
      reads.finalize();
      if (reads.count > 0) {
        ++metrics_.thread_chunks;
        if (reads.pattern) ++metrics_.pattern_hits;
      }
      *wire_bytes += reads.wire_bytes;
      ThreadAddrs& writes = stage.write_addrs[v];
      writes.finalize();
      *wire_bytes += writes.wire_bytes;
    }
  }
}

void Engine::report_addr_counts(BlockState& block, ChunkSlot& slot,
                                std::uint64_t chunk) {
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
    const StreamStage& stage = slot.streams[s];
    std::vector<std::uint32_t> counts(c_threads, 0);
    if (geometry_.layout == DataLayout::kOriginal) {
      // Whole-chunk fetch: the staged count per thread is determined by its
      // chunk range, mirroring the copy in assemble_stream().
      const StreamBinding& bind = bindings_[s];
      for (std::uint32_t v = 0; v < c_threads; ++v) {
        const Range range = thread_chunk_range(block, v, chunk);
        if (range.empty()) continue;
        const std::uint64_t base_elem = range.begin * bind.elems_per_record;
        std::uint64_t count =
            range.size() * bind.elems_per_record + overfetch_[s];
        count = std::min(count, bind.num_elements - base_elem);
        count = std::min(count, stage.slots_per_thread);
        counts[v] = static_cast<std::uint32_t>(count);
      }
    } else {
      for (std::uint32_t v = 0;
           v < c_threads && v < stage.read_addrs.size(); ++v) {
        counts[v] = static_cast<std::uint32_t>(stage.read_addrs[v].count);
      }
    }
    pipecheck_->on_addr_counts(block.index, chunk, s, std::move(counts));
  }
}

sim::Task<> Engine::assembly_process(BlockState& block) {
  hostsim::HostThread& thread = *block.assembly_thread;
  fault::FaultPlane* plane = runtime_.fault_plane();
  const std::uint32_t device = runtime_.fault_device();
  for (std::uint64_t chunk = 0; chunk < block.chunks; ++chunk) {
    co_await block.addr_ready.wait_ge(chunk + 1);
    if (aborted_) co_return;
    if (plane != nullptr) {
      if (const auto stall = plane->stall_duration(device, sim().now())) {
        if (*stall == 0 || *stall >= options_.recovery.watchdog_timeout) {
          // The stage would hang (stall=0 models "forever") or outlast the
          // watchdog: the watchdog fires at the timeout and converts the
          // stall into a TimeoutError instead of wedging the pipeline.
          co_await sim().delay(options_.recovery.watchdog_timeout);
          abort_launch(std::make_exception_ptr(fault::TimeoutError(
              "stage watchdog: assembly for block " +
              std::to_string(block.index) + " chunk " + std::to_string(chunk) +
              " stalled past the watchdog timeout")));
          co_return;
        }
        // Finite stall: absorbed as pipeline delay and counted recovered.
        // The stall occupies the assembly stage, so it is attributed as
        // assembly busy time — a stalled stage must show up as the
        // bottleneck in the profiler's window, not vanish from accounting.
        const sim::TimePs stall_begin = sim().now();
        co_await sim().delay(*stall);
        if (aborted_) co_return;
        plane->on_recovered(fault::FaultKind::kStageStall);
        record_stage(obs::Stage::kAssembly, block.index, chunk, stall_begin,
                     sim().now());
      }
    }
    ChunkSlot& slot = block.slots[chunk % block.depth];
    if (pipecheck_ != nullptr) {
      pipecheck_->on_assembly_begin(block.index, chunk);
    }

    const sim::TimePs start = sim().now();
    std::vector<std::uint64_t> bytes(bindings_.size(), 0);
    std::vector<std::uint64_t>& leases =
        block.slot_leases[chunk % block.depth];
    for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
      StreamStage& stage = slot.streams[s];
      if (chunk_cache_ == nullptr || !stream_cacheable(s)) {
        bytes[s] = assemble_stream(block, slot, s, chunk, thread);
        if (integrity_ != nullptr && bytes[s] > 0) {
          stage.image_checksum = dur::checksum_bytes(
              {slot.prefetch.data() + slot.prefetch_offset[s], bytes[s]});
        }
        continue;
      }
      cache::CacheKey key;
      key.dataset = cache_dataset_;
      key.stream = s;
      key.range_begin = block.records.begin;
      key.range_end = block.records.end;
      key.chunk = chunk;
      key.layout = static_cast<std::uint8_t>(geometry_.layout);
      key.signature = chunk_signature(block, slot, s, chunk);
      if (auto lease = chunk_cache_->lookup(key, sim().now())) {
        // Hit: the entry's device range already holds this exact image —
        // skip assembly and the H2D DMA entirely; compute reads the entry.
        stage.cached_dev_base = lease->dev_base;
        leases.push_back(lease->entry);
        ++metrics_.cache_hits;
        metrics_.cache_bytes_saved += lease->bytes;
        if (pipecheck_ != nullptr) {
          pipecheck_->on_cache_slot(block.index, chunk, s, lease->entry,
                                    /*hit=*/true);
        }
        // Lookup + bookkeeping cost on the assembly thread (tiny next to
        // the gather it replaces).
        thread.compute(
            static_cast<double>(options_.compute_threads_per_block) * 0.25);
        continue;
      }
      ++metrics_.cache_misses;
      bytes[s] = assemble_stream(block, slot, s, chunk, thread);
      if (bytes[s] == 0) continue;
      if (integrity_ != nullptr) {
        // Digest the image once here; the same digest covers the cache
        // entry (hit/scrub verification) and the post-DMA check below.
        stage.image_checksum = dur::checksum_bytes(
            {slot.prefetch.data() + slot.prefetch_offset[s], bytes[s]});
      }
      if (auto lease = chunk_cache_->insert(key, bytes[s], sim().now(),
                                            stage.image_checksum)) {
        // The DMA below lands in the entry's range directly, so the image
        // is cached as a side effect of the transfer it had to do anyway.
        stage.cached_dev_base = lease->dev_base;
        leases.push_back(lease->entry);
        if (pipecheck_ != nullptr) {
          pipecheck_->on_cache_slot(block.index, chunk, s, lease->entry,
                                    /*hit=*/false);
        }
      }
    }
    co_await thread.commit();
    if (aborted_) co_return;
    record_stage(obs::Stage::kAssembly, block.index, chunk, start,
                 sim().now());

    std::vector<PendingCopy> copies;
    for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
      if (bytes[s] == 0) continue;
      const StreamStage& stage = slot.streams[s];
      const std::byte* host = slot.prefetch.data() + slot.prefetch_offset[s];
      const std::uint64_t op =
          block.dma.memcpy_h2d_async(stage.active_data_base(), host, bytes[s]);
      metrics_.data_bytes_sent += bytes[s];
      if (plane != nullptr || integrity_ != nullptr) {
        copies.push_back(PendingCopy{s, op, stage.active_data_base(), host,
                                     bytes[s], stage.image_checksum});
      }
    }
    if (plane != nullptr || integrity_ != nullptr) {
      // Fault path: the ready flag is raised by a supervisor that verifies
      // (and retries) the chunk's copies instead of riding the stream
      // in-order — a failed op must not signal data that never landed.
      supervisors_.push_back(sim().spawn(
          transfer_supervisor(block, chunk, std::move(copies), sim().now())));
      continue;
    }
    block.dma.signal_flag(block.data_ready, chunk + 1);
    // Measure the transfer stage as wall time from enqueue to the ready
    // flag landing (includes PCIe link contention with other blocks), like
    // the paper's continuous transfer-status pinging (fn. 7).
    sim().spawn([](Engine* engine, BlockState* blk,
                   std::uint64_t c) -> sim::Task<> {
      const sim::TimePs begin = engine->sim().now();
      co_await blk->data_ready.wait_ge(c + 1);
      engine->record_stage(obs::Stage::kTransfer, blk->index, c, begin,
                           engine->sim().now());
    }(this, &block, chunk));
  }
}

sim::Task<> Engine::transfer_supervisor(BlockState& block, std::uint64_t chunk,
                                        std::vector<PendingCopy> copies,
                                        sim::TimePs begin) {
  fault::FaultPlane* plane = runtime_.fault_plane();
  const std::uint32_t device = runtime_.fault_device();
  std::array<std::uint64_t, fault::kNumFaultKinds> absorbed{};
  for (std::uint32_t attempt = 0;; ++attempt) {
    for (const PendingCopy& copy : copies) {
      co_await block.dma.wait_for(copy.op);
    }
    if (aborted_) co_return;
    std::vector<PendingCopy> failed;
    bool lost = false;
    for (const PendingCopy& copy : copies) {
      if (const auto fault = block.dma.take_failure(copy.op)) {
        if (*fault == fault::FaultKind::kDeviceLost) {
          lost = true;
        } else {
          ++absorbed[static_cast<std::size_t>(*fault)];
        }
        failed.push_back(copy);
      }
    }
    if (lost || (plane != nullptr && plane->device_lost(device))) {
      abort_launch(std::make_exception_ptr(fault::DeviceLostError(
          "device lost during the chunk " + std::to_string(chunk) +
          " transfer (block " + std::to_string(block.index) + ")")));
      co_return;
    }
    // bigkdur post-DMA verification: re-digest the landed device bytes of
    // every cleanly-completed copy against the assembly-time checksum. A
    // silent flip (fault.bitflip_dma) looks like a successful op — only this
    // check catches it; the mismatch joins the failed set and rides the same
    // retry machinery (the pinned image is intact, so the redo is clean).
    bool mismatch = false;
    if (integrity_ != nullptr) {
      for (const PendingCopy& copy : copies) {
        if (copy.checksum == 0) continue;
        bool already_failed = false;
        for (const PendingCopy& f : failed) {
          if (f.op == copy.op) {
            already_failed = true;
            break;
          }
        }
        if (already_failed) continue;
        const auto landed =
            runtime_.gpu().memory().bytes(copy.dev_base, copy.bytes);
        if (dur::checksum_bytes(landed) == copy.checksum) {
          integrity_->note_verified(dur::Site::kDma);
        } else {
          integrity_->note_detected(dur::Site::kDma, device, sim().now());
          ++absorbed[static_cast<std::size_t>(fault::FaultKind::kBitflipDma)];
          failed.push_back(copy);
          mismatch = true;
        }
      }
    }
    if (failed.empty()) break;
    if (attempt >= options_.recovery.max_chunk_retries) {
      const std::string what =
          "block " + std::to_string(block.index) + " chunk " +
          std::to_string(chunk) + " H2D still failing after " +
          std::to_string(attempt + 1) + " attempts";
      abort_launch(mismatch ? std::make_exception_ptr(dur::IntegrityError(
                                  what + " (integrity mismatch persists)"))
                            : std::make_exception_ptr(fault::DmaError(what)));
      co_return;
    }
    // Capped exponential backoff before the redo.
    const sim::DurationPs backoff = options_.recovery.backoff_for(attempt);
    co_await sim().delay(backoff);
    if (aborted_) co_return;
    ++metrics_.chunk_retries;
    for (PendingCopy& copy : failed) {
      // Idempotent chunk redo: the pinned image for this ring slot stays
      // intact until the slot is released, so re-issuing the same copy
      // replays the transfer (and overwrites ECC-corrupted device bytes).
      copy.op = block.dma.memcpy_h2d_async(copy.dev_base, copy.host,
                                           copy.bytes);
      metrics_.retried_bytes += copy.bytes;
    }
    copies = std::move(failed);
  }
  // In-order flag protocol: chunk N's flag must not overtake chunk N-1's (a
  // retry can finish after the next chunk's clean transfer), so each
  // supervisor chains behind its predecessor before raising.
  co_await block.data_ready.wait_ge(chunk);
  if (aborted_) co_return;
  block.data_ready.advance_to(chunk + 1);
  record_stage(obs::Stage::kTransfer, block.index, chunk, begin, sim().now());
  if (plane != nullptr) {
    for (std::size_t k = 0; k < absorbed.size(); ++k) {
      if (absorbed[k] > 0) {
        plane->on_recovered(static_cast<fault::FaultKind>(k), absorbed[k]);
      }
    }
  }
  if (integrity_ != nullptr) {
    const std::uint64_t flips =
        absorbed[static_cast<std::size_t>(fault::FaultKind::kBitflipDma)];
    for (std::uint64_t i = 0; i < flips; ++i) {
      integrity_->note_repaired(dur::Site::kDma);
    }
  }
}

void Engine::abort_launch(std::exception_ptr error) {
  if (!aborted_) {
    aborted_ = true;
    abort_error_ = std::move(error);
  }
  // Wake every parked stage: flags flood past any chunk index and enough
  // ring tokens are handed out that blocked drivers resume, observe
  // aborted_, and exit. Flags are monotone, so the flood is idempotent.
  for (auto& block : blocks_) {
    const std::uint64_t flood = block->chunks + block->depth + 2;
    block->addr_ready.advance_to(flood);
    block->data_ready.advance_to(flood);
    block->wb_landed.advance_to(flood);
    for (std::uint32_t k = 0; k < block->depth; ++k) {
      block->ring.release();
    }
  }
}

std::uint64_t Engine::assemble_stream(BlockState& block, ChunkSlot& slot,
                                      std::uint32_t s, std::uint64_t chunk,
                                      hostsim::HostThread& thread) {
  const StreamBinding& bind = bindings_[s];
  StreamStage& stage = slot.streams[s];
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  const std::uint32_t elem_size = bind.elem_size;
  std::byte* prefetch = slot.prefetch.data() + slot.prefetch_offset[s];

  if (geometry_.layout == DataLayout::kOriginal) {
    // Whole-chunk copy, one contiguous run per computation thread.
    std::uint64_t used_bytes = 0;
    for (std::uint32_t v = 0; v < c_threads; ++v) {
      const Range range = thread_chunk_range(block, v, chunk);
      if (range.empty()) continue;
      const std::uint64_t base_elem = range.begin * bind.elems_per_record;
      std::uint64_t count = range.size() * bind.elems_per_record +
                            overfetch_[s];
      count = std::min(count, bind.num_elements - base_elem);
      count = std::min(count, stage.slots_per_thread);
      thread.read_sequential(bind.host_region, base_elem * elem_size,
                             count * elem_size);
      thread.write_stream(count * elem_size);
      thread.compute(static_cast<double>(count) * 0.25);  // copy-loop overhead
      std::memcpy(prefetch +
                      std::uint64_t{v} * stage.slots_per_thread * elem_size,
                  bind.host_data + base_elem * elem_size, count * elem_size);
      used_bytes =
          (std::uint64_t{v} * stage.slots_per_thread + count) * elem_size;
      metrics_.elements_fetched += count;
      metrics_.source_bytes_read += count * elem_size;
    }
    return used_bytes;
  }

  std::uint64_t max_count = 0;
  for (const ThreadAddrs& addrs : stage.read_addrs) {
    max_count = std::max(max_count, addrs.count);
  }
  if (max_count == 0) return 0;

  auto gather_one = [&](std::uint32_t v, const ThreadAddrs& addrs,
                        std::uint64_t k, bool addr_from_buffer,
                        bool thread_major_order) {
    const std::uint64_t elem = addrs.element_at(k, elem_size);
    if (addr_from_buffer) {
      // Without a pattern the CPU must first read the DMA-delivered address
      // (the extra read of §III's "two reads and two writes").
      thread.read_sequential(
          block.addr_region,
          (std::uint64_t{v} * stage.slots_per_thread + k) * kAddrBytes,
          kAddrBytes);
    }
    if (thread_major_order) {
      // One GPU thread's data at a time (Â§IV.B): addresses ascend
      // monotonically, so the hardware prefetcher covers them.
      thread.read_sequential(bind.host_region, elem * elem_size, elem_size);
    } else {
      // Slot-major order hops between every thread's region per step.
      thread.read(bind.host_region, elem * elem_size, elem_size);
    }
    thread.compute(1.0);
    const std::uint64_t pos = prefetch_position(
        stage, geometry_.layout, c_threads, v, k, elem_size);
    std::memcpy(prefetch + pos, bind.host_data + elem * elem_size, elem_size);
    thread.write_stream(elem_size);
    ++metrics_.elements_fetched;
    metrics_.source_bytes_read += elem_size;
  };

  // Pass 1 (§IV.B): pattern-covered threads gathered one thread at a time —
  // consecutive source elements, high cache locality. A unit-stride pattern
  // (character streams) degenerates to a bulk copy of the run: the CPU reads
  // it sequentially and scatters into the layout with vectorizable stores.
  for (std::uint32_t v = 0; v < c_threads; ++v) {
    const ThreadAddrs& addrs = stage.read_addrs[v];
    if (addrs.pattern && options_.locality_assembly) {
      const bool dense = addrs.pattern->strides.size() == 1 &&
                         addrs.pattern->strides[0] ==
                             static_cast<std::int64_t>(elem_size);
      if (dense) {
        const std::uint64_t first = addrs.element_at(0, elem_size);
        const std::uint64_t bytes = addrs.count * elem_size;
        thread.read_sequential(bind.host_region, first * elem_size, bytes);
        thread.write_stream(bytes);
        thread.compute(static_cast<double>(addrs.count) * 0.25);
        for (std::uint64_t k = 0; k < addrs.count; ++k) {
          const std::uint64_t pos = prefetch_position(
              stage, geometry_.layout, c_threads, v, k, elem_size);
          std::memcpy(prefetch + pos,
                      bind.host_data + (first + k) * elem_size, elem_size);
        }
        metrics_.elements_fetched += addrs.count;
        metrics_.source_bytes_read += bytes;
        continue;
      }
      for (std::uint64_t k = 0; k < addrs.count; ++k) {
        gather_one(v, addrs, k, /*addr_from_buffer=*/false,
                   /*thread_major_order=*/true);
      }
    }
  }
  // Pass 2: everything else in the order the GPU consumes it (slot-major).
  for (std::uint64_t k = 0; k < max_count; ++k) {
    for (std::uint32_t v = 0; v < c_threads; ++v) {
      const ThreadAddrs& addrs = stage.read_addrs[v];
      if (addrs.pattern && options_.locality_assembly) continue;
      if (k >= addrs.count) continue;
      gather_one(v, addrs, k, /*addr_from_buffer=*/!addrs.pattern,
                 /*thread_major_order=*/false);
    }
  }

  if (geometry_.layout == DataLayout::kInterleaved) {
    return max_count * c_threads * elem_size;
  }
  // Thread-major: transfer up to the end of the last used thread region.
  std::uint64_t used_bytes = 0;
  for (std::uint32_t v = 0; v < c_threads; ++v) {
    const ThreadAddrs& addrs = stage.read_addrs[v];
    if (addrs.count > 0) {
      used_bytes =
          (std::uint64_t{v} * stage.slots_per_thread + addrs.count) *
          elem_size;
    }
  }
  return used_bytes;
}

std::uint64_t Engine::chunk_signature(const BlockState& block,
                                      const ChunkSlot& slot,
                                      std::uint32_t stream,
                                      std::uint64_t chunk) const {
  const StreamStage& stage = slot.streams[stream];
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  cache::Fnv1a hash;
  hash.mix(c_threads);
  hash.mix(stage.slots_per_thread);
  hash.mix(geometry_.rptc);
  if (static_signature_ != 0) hash.mix(static_signature_);
  if (geometry_.layout == DataLayout::kOriginal) {
    // Whole-chunk fetch: the image is fully determined by the per-thread
    // chunk ranges (mirroring the copy in assemble_stream).
    for (std::uint32_t v = 0; v < c_threads; ++v) {
      const Range range = thread_chunk_range(block, v, chunk);
      hash.mix(range.begin);
      hash.mix(range.size());
    }
    return hash.state;
  }
  for (std::uint32_t v = 0; v < c_threads && v < stage.read_addrs.size();
       ++v) {
    const ThreadAddrs& addrs = stage.read_addrs[v];
    hash.mix(addrs.count);
    if (addrs.pattern) {
      hash.mix(addrs.pattern->base);
      for (std::int64_t stride : addrs.pattern->strides) {
        hash.mix(static_cast<std::uint64_t>(stride));
      }
    } else {
      for (std::uint64_t elem : addrs.elems) hash.mix(elem);
    }
  }
  return hash.state;
}

void Engine::release_slot_leases(BlockState& block, std::uint64_t chunk) {
  if (chunk_cache_ == nullptr || block.slot_leases.empty()) return;
  std::vector<std::uint64_t>& leases =
      block.slot_leases[chunk % block.depth];
  for (std::uint64_t entry : leases) chunk_cache_->unpin(entry);
  leases.clear();
}

void Engine::seal_staged_writes(ChunkSlot& slot) {
  fault::FaultPlane* plane = runtime_.fault_plane();
  const std::uint32_t device = runtime_.fault_device();
  for (StreamStage& stage : slot.streams) {
    if (integrity_ != nullptr) {
      stage.staged_checksum = staged_checksum_of(stage);
    }
    if (plane != nullptr && !stage.staged_writes.empty() &&
        plane->should_inject(fault::FaultKind::kBitflipWriteback, device,
                             sim().now())) {
      // Flip one bit of a staged value *after* the digest was taken: models
      // corruption between compute and the write-back scatter. With
      // integrity off this silently reaches the host output.
      stage.staged_writes.front().raw ^= 1;
    }
  }
}

sim::Task<> Engine::scatter_process(BlockState& block) {
  hostsim::HostThread& thread = *block.scatter_thread;
  fault::FaultPlane* plane = runtime_.fault_plane();
  const std::uint32_t device = runtime_.fault_device();
  for (std::uint64_t chunk = 0; chunk < block.chunks; ++chunk) {
    co_await block.wb_landed.wait_ge(chunk + 1);
    if (aborted_) co_return;
    ChunkSlot& slot = block.slots[chunk % block.depth];

    const sim::TimePs start = sim().now();
    for (std::uint32_t s = 0; s < bindings_.size(); ++s) {
      StreamBinding& bind = bindings_[s];
      StreamStage& stage = slot.streams[s];
      const std::uint32_t elem_size = bind.elem_size;
      if (integrity_ != nullptr && !stage.staged_writes.empty()) {
        // bigkdur write-back verification: re-digest the staged values
        // against the compute-end checksum before any host byte moves.
        if (staged_checksum_of(stage) != stage.staged_checksum) {
          integrity_->note_detected(dur::Site::kWriteback, device,
                                    sim().now());
          // Repair in place: the device write buffer still holds the values
          // the kernel actually stored — re-fetch each staged value from
          // its recorded device address.
          for (StagedWrite& write : stage.staged_writes) {
            std::uint64_t raw = 0;
            const auto src =
                runtime_.gpu().memory().bytes(write.dev_addr, elem_size);
            std::memcpy(&raw, src.data(), elem_size);
            write.raw = raw;
          }
          if (staged_checksum_of(stage) != stage.staged_checksum) {
            abort_launch(std::make_exception_ptr(dur::IntegrityError(
                "block " + std::to_string(block.index) + " chunk " +
                std::to_string(chunk) + " stream " + std::to_string(s) +
                " staged write-back corrupt and unrepairable from the "
                "device write buffer")));
            co_return;
          }
          integrity_->note_repaired(dur::Site::kWriteback);
          if (plane != nullptr) {
            plane->on_recovered(fault::FaultKind::kBitflipWriteback);
          }
        } else {
          integrity_->note_verified(dur::Site::kWriteback);
        }
      }
      std::uint64_t index = 0;
      for (const StagedWrite& write : stage.staged_writes) {
        thread.read_sequential(block.addr_region, index * kAddrBytes,
                               kAddrBytes);
        thread.write(bind.host_region, write.elem * elem_size, elem_size);
        thread.compute(1.0);
        std::memcpy(bind.host_data + write.elem * elem_size, &write.raw,
                    elem_size);
        ++metrics_.elements_written;
        ++index;
      }
      stage.staged_writes.clear();
    }
    co_await thread.commit();
    record_stage(obs::Stage::kWriteback, block.index, chunk, start,
                 sim().now());
    release_slot_leases(block, chunk);
    if (pipecheck_ != nullptr) {
      pipecheck_->on_slot_release(block.index, chunk);
    }
    block.ring.release();
  }
}

}  // namespace bigk::core
