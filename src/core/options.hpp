// BigKernel engine configuration, including the feature toggles that drive
// the paper's ablation experiments (Fig. 5, Table II).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "check/options.hpp"
#include "sim/time.hpp"

namespace bigk::core {

struct Options {
  /// Computation threads per block; the engine launches twice as many GPU
  /// threads (half address generation, half computation, §III). Must be a
  /// multiple of the warp size so each warp is uniformly one kind.
  std::uint32_t compute_threads_per_block = 128;

  /// numSetBlocks: requested thread blocks. The engine caps this with the
  /// occupancy formula of §IV.D and launches exactly the active count.
  std::uint32_t num_blocks = 32;

  /// Buffer instances per block (the multi-buffering ring; the paper needs
  /// at least 2; its n-3 synchronization corresponds to 3).
  std::uint32_t buffer_depth = 3;

  /// Per-block, per-ring-slot data-buffer budget in bytes across all mapped
  /// streams. 0 = auto-size from free device memory (§IV.D: fewer active
  /// blocks => larger buffers).
  std::uint64_t data_buf_bytes = 0;

  std::uint32_t regs_per_thread = 32;
  std::uint32_t shared_bytes_per_block = 8 << 10;

  // --- Feature toggles -------------------------------------------------
  /// Transfer only the elements the kernel will access (off = fetch the
  /// whole chunk, the paper's fallback / "overlap only" variant).
  bool transfer_reduction = true;
  /// Lay assembled data out interleaved by thread so GPU accesses coalesce
  /// (off = keep each thread's data contiguous, i.e. original-style layout).
  bool coalesced_layout = true;
  /// Recognize stride patterns in generated addresses (§IV.A).
  bool pattern_recognition = true;
  /// Gather one GPU thread's data at a time for CPU cache locality (§IV.B).
  bool locality_assembly = true;

  // --- Correctness checking --------------------------------------------
  /// bigkcheck configuration; when check.enabled the engine owns a
  /// check::Sanitizer for the launch and throws check::CheckError on any
  /// violation (see src/check/).
  check::CheckOptions check{};

  // --- bigkfault recovery policy ----------------------------------------
  /// How the engine responds to faults injected by the runtime's
  /// fault::FaultPlane (dma_error / ecc_corrupt retries, stage_stall
  /// watchdog). Inert when no plane is attached.
  struct Recovery {
    /// Re-issued H2D rounds per chunk before the launch aborts with
    /// fault::DmaError.
    std::uint32_t max_chunk_retries = 4;
    /// Backoff before the first retry; doubles per attempt, capped at 16x.
    sim::DurationPs retry_backoff = 200'000'000;  // 200 us
    /// An assembly stall at or past this converts into fault::TimeoutError
    /// (the stage watchdog) instead of being absorbed as a delay.
    sim::DurationPs watchdog_timeout = 50'000'000'000;  // 50 ms

    /// Backoff before retry `attempt` (0-based): retry_backoff doubled per
    /// attempt, capped at 16x. Deterministic — the recovery tests assert the
    /// exact sequence.
    sim::DurationPs backoff_for(std::uint32_t attempt) const {
      return std::min<sim::DurationPs>(
          retry_backoff << std::min<std::uint32_t>(attempt, 4),
          retry_backoff * 16);
    }
  };
  Recovery recovery{};

  /// Test-only seeded-bug injection: deliberately breaks a pipeline
  /// invariant so the checkers' seeded-violation tests can prove they catch
  /// real protocol bugs. Never enable outside tests.
  ///
  /// These toggles are the legacy spelling of the fault::FaultPlane protocol
  /// bugs: the engine ORs each with the plane's matching spec
  /// ("skip_data_ready_wait" / "early_ring_release" / "stale_cache", also
  /// accepted with a "fault." prefix), so either registry triggers the bug.
  struct FaultInjection {
    /// Compute stage skips the data_ready wait for the current chunk
    /// (waits for the previous chunk only), racing ahead of the staged DMA —
    /// the classic missing flag-after-data bug.
    bool skip_data_ready_wait = false;
    /// Compute stage releases the ring slot before the write-back scatter
    /// drained, letting assembly overwrite an in-flight slot.
    bool early_ring_release = false;
    /// With a chunk cache attached: invalidate every cache entry backing the
    /// current chunk after the hit was declared but before compute reads it —
    /// the reuse-after-invalidation bug pipecheck's stale_cache_read catches.
    bool stale_cache = false;
  } fault;

  void validate() const {
    if (compute_threads_per_block == 0 ||
        compute_threads_per_block % 32 != 0) {
      throw std::invalid_argument(
          "compute_threads_per_block must be a positive multiple of the warp "
          "size so address-generation and computation threads never share a "
          "warp");
    }
    if (num_blocks == 0) throw std::invalid_argument("num_blocks must be > 0");
    if (buffer_depth < 2) {
      throw std::invalid_argument(
          "buffer_depth must be >= 2 (one buffer produced while the other is "
          "consumed)");
    }
  }

  /// Fig. 5 variant (i): pipelined execution only — all data transferred in
  /// its original layout.
  static Options overlap_only() {
    Options options;
    options.transfer_reduction = false;
    options.coalesced_layout = false;
    return options;
  }

  /// Fig. 5 variant (ii): + transfer-volume reduction, original layout.
  static Options with_transfer_reduction() {
    Options options;
    options.transfer_reduction = true;
    options.coalesced_layout = false;
    return options;
  }

  /// Fig. 5 variant (iii) / the full system.
  static Options full() { return Options{}; }
};

}  // namespace bigk::core
