// Access-pattern recognition for the prefetch address-generation stage
// (§IV.A).
//
// Each address-generation thread first collects a handful of addresses in a
// small private buffer and tries to explain them as a base address plus a
// short cyclic sequence of strides (e.g. the K-means thread touching
// x, y, z of consecutive 48-byte particles produces strides [8, 8, 32]).
// If every subsequent address confirms the pattern, only the pattern
// descriptor crosses PCIe instead of one address per access — the paper's
// biggest win for character-granularity streams (Table II).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace bigk::core {

/// A recognized pattern: addresses are
///   base + sum of strides[0..k) cycled, for count addresses.
struct StridePattern {
  std::uint64_t base = 0;
  std::vector<std::int64_t> strides;  // cycle of length >= 1
  std::uint64_t count = 0;

  /// Wire size of the descriptor when sent to the CPU instead of addresses:
  /// base + count + stride cycle.
  std::uint64_t descriptor_bytes() const noexcept {
    return 16 + 8 * strides.size();
  }

  /// The i-th address of the pattern.
  std::uint64_t address_at(std::uint64_t i) const;
};

/// Online detector mirroring the paper's scheme: probe, hypothesize, verify.
class PatternDetector {
 public:
  /// `probe_window`: number of addresses collected in the private temporary
  /// buffer before a pattern is hypothesized (the paper's private temporary
  /// buffer of a few tens of bytes; 48 addresses lets cycles as long as a
  /// 23-field record — Opinion Finder — be hypothesized).
  /// `max_cycle`: longest stride cycle considered.
  explicit PatternDetector(std::uint32_t probe_window = 48,
                           std::uint32_t max_cycle = 32)
      : probe_window_(probe_window), max_cycle_(max_cycle) {}

  enum class State : std::uint8_t {
    kProbing,     // still filling the temporary buffer
    kVerifying,   // pattern hypothesized, checking further addresses
    kBroken,      // verification failed: raw addresses must be sent
  };

  State state() const noexcept { return state_; }

  /// Feeds the next generated address. Returns false exactly when this
  /// address broke a hypothesized pattern (the paper then restarts address
  /// generation without pattern matching).
  bool feed(std::uint64_t address);

  /// Number of addresses fed so far.
  std::uint64_t count() const noexcept { return count_; }

  /// The confirmed pattern covering every address fed, if the detector is
  /// still in (or reached) a consistent state; nullopt if broken or if too
  /// few addresses arrived to hypothesize one... except that a short,
  /// still-probing sequence is returned as an exact pattern when it happens
  /// to be consistent, mirroring "all addresses adhered".
  std::optional<StridePattern> pattern() const;

  void reset();

 private:
  bool hypothesize();

  std::uint32_t probe_window_;
  std::uint32_t max_cycle_;
  State state_ = State::kProbing;
  std::vector<std::uint64_t> probe_;
  StridePattern candidate_;
  std::uint64_t count_ = 0;
  std::uint64_t last_address_ = 0;
};

}  // namespace bigk::core
