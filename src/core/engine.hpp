// The BigKernel engine: pseudo-virtual memory for streaming GPU kernels via
// the 4-stage pipeline of §III (address generation -> data assembly -> data
// transfer -> computation), plus the write-back stages for modified streams.
//
// Usage mirrors the paper's programming model:
//
//   core::Engine engine(runtime, core::Options{});
//   auto particles = engine.streaming_map<double>(host_span,
//       core::AccessMode::kReadWrite, /*elems_per_record=*/6,
//       /*reads_per_record=*/3, /*writes_per_record=*/1);
//   KmeansKernel kernel{particles, clusters_table, ...};
//   co_await engine.launch(kernel, num_particles, device_tables);
//
// launch() invokes the (transformed) kernel exactly once: twice the
// requested computation threads are launched, warps are split into
// address-generation and computation halves, per-block CPU threads assemble
// prefetch buffers, and a ring of buffer_depth buffer instances per block
// keeps all four stages in flight (Fig. 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "cache/pinned_pool.hpp"
#include "check/sanitizer.hpp"
#include "fault/fault.hpp"
#include "core/contexts.hpp"
#include "core/device_tables.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/staging.hpp"
#include "core/stream.hpp"
#include "cusim/runtime.hpp"
#include "dur/checksum.hpp"
#include "dur/integrity.hpp"
#include "obs/prof/attribution.hpp"
#include "obs/stage.hpp"
#include "obs/tracer.hpp"
#include "gpusim/gpu.hpp"
#include "hostsim/host_cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace bigk::core {

/// Region-id base for mapped streams in the host cache model.
constexpr std::uint32_t kStreamRegionBase = 1000;
/// Region-id base for kernel tables (used by the CPU schemes).
constexpr std::uint32_t kTableRegionBase = 2000;

class Engine {
 public:
  /// Validates `options` against both the static invariants
  /// (Options::validate) and the device this engine will run on: the
  /// computation thread count must be a multiple of the *device's* warp size
  /// (not just the default 32), and an explicit data_buf_bytes must leave a
  /// ring of buffer_depth slots fitting the device arena.
  Engine(cusim::Runtime& runtime, Options options)
      : runtime_(runtime), options_(options) {
    options_.validate();
    const std::uint32_t warp = runtime_.device_properties().warp_size;
    if (warp != 0 && options_.compute_threads_per_block % warp != 0) {
      throw std::invalid_argument(
          "compute_threads_per_block (" +
          std::to_string(options_.compute_threads_per_block) +
          ") must be a multiple of the device warp size (" +
          std::to_string(warp) +
          ") so address-generation and computation threads never share a "
          "warp");
    }
    if (options_.data_buf_bytes > 0) {
      const std::uint64_t ring_bytes =
          options_.data_buf_bytes * options_.buffer_depth;
      const std::uint64_t arena = runtime_.gpu().memory().capacity();
      if (ring_bytes > arena) {
        throw std::invalid_argument(
            "data_buf_bytes (" + std::to_string(options_.data_buf_bytes) +
            ") x buffer_depth (" + std::to_string(options_.buffer_depth) +
            ") = " + std::to_string(ring_bytes) +
            " bytes: even a single block's staging ring exceeds the device "
            "arena (" +
            std::to_string(arena) + " bytes)");
      }
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// streamingMalloc + streamingMap: registers `host` as a mapped stream of
  /// records of `elems_per_record` elements, of which the kernel reads at
  /// most `reads_per_record` and writes at most `writes_per_record` each.
  /// `overfetch_elems` extends each thread's per-chunk window for kernels
  /// that peek a bounded distance past their slice (e.g. a word spanning a
  /// boundary).
  template <class T>
  StreamRef<T> streaming_map(std::span<T> host, AccessMode mode,
                             std::uint32_t elems_per_record,
                             std::uint32_t reads_per_record,
                             std::uint32_t writes_per_record = 0,
                             std::uint32_t overfetch_elems = 0) {
    static_assert(sizeof(T) <= 8, "stream elements must be at most 8 bytes");
    if (bindings_.size() >= kMaxStreams) {
      throw std::invalid_argument("too many mapped streams");
    }
    StreamBinding binding;
    binding.host_data = reinterpret_cast<std::byte*>(host.data());
    binding.num_elements = host.size();
    binding.elem_size = sizeof(T);
    binding.host_region =
        kStreamRegionBase + static_cast<std::uint32_t>(bindings_.size());
    binding.mode = mode;
    binding.elems_per_record = elems_per_record;
    binding.reads_per_record = reads_per_record;
    binding.writes_per_record = writes_per_record;
    overfetch_.push_back(overfetch_elems);
    bindings_.push_back(binding);
    if (writes_per_record > 0) has_writes_ = true;
    return StreamRef<T>{static_cast<std::uint32_t>(bindings_.size() - 1)};
  }

  /// Type-erased registration: maps a pre-built binding (ids are assigned in
  /// registration order, matching StreamRefs constructed by the caller).
  std::uint32_t map_stream(const StreamBinding& binding,
                           std::uint32_t overfetch_elems = 0) {
    if (bindings_.size() >= kMaxStreams) {
      throw std::invalid_argument("too many mapped streams");
    }
    StreamBinding bound = binding;
    bound.host_region =
        kStreamRegionBase + static_cast<std::uint32_t>(bindings_.size());
    overfetch_.push_back(overfetch_elems);
    bindings_.push_back(bound);
    if (bound.writes_per_record > 0) has_writes_ = true;
    return static_cast<std::uint32_t>(bindings_.size() - 1);
  }

  /// Runs `kernel` over records [0, num_records) through the full pipeline.
  /// `tables` must hold every TableRef the kernel uses, already uploaded.
  template <class Kernel>
  sim::Task<> launch(const Kernel& kernel, std::uint64_t num_records,
                     const DeviceTables& tables);

  const EngineMetrics& metrics() const noexcept { return metrics_; }
  const Options& options() const noexcept { return options_; }

  /// Attaches the unified tracer: every stage execution of every chunk
  /// becomes a span on an "engine block <b>" process with one thread row per
  /// pipeline stage (data transfer gets one row per ring slot, since up to
  /// buffer_depth transfers are in flight per block). nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches a bigkprof bottleneck profiler (externally owned): every stage
  /// interval that feeds the busy-time metrics is also attributed to the
  /// profiler's time windows, so online attribution, the tracer timeline,
  /// and the Fig. 6 sums all describe the same intervals. nullptr detaches.
  void set_profiler(obs::prof::StageProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Prefix for this engine's trace process rows (e.g. "dev2 " turns
  /// "engine block 0" into "dev2 engine block 0"). Concurrent engines on
  /// distinct devices set distinct scopes so their spans land on per-device
  /// tracks instead of interleaving on one row. Default: no prefix.
  void set_trace_scope(std::string scope) { trace_scope_ = std::move(scope); }
  const std::string& trace_scope() const noexcept { return trace_scope_; }

  /// Uses an externally owned bigkcheck sanitizer (already installed on the
  /// GPU by the caller) instead of constructing one from options().check.
  /// The caller keeps responsibility for finalize(); the engine only feeds
  /// the pipeline checker. nullptr detaches.
  void set_sanitizer(check::Sanitizer* sanitizer) noexcept {
    sanitizer_ = sanitizer;
  }

  /// Attaches a bigkcache chunk cache (externally owned; must live on this
  /// engine's device). Read-only streams are then looked up per chunk: on a
  /// hit the assembly and DMA stages are skipped and compute reads the
  /// cached device range; on a miss the assembled image is inserted and the
  /// DMA targets the entry directly. `dataset_id` names the mapped-stream
  /// contents (same id = identical bytes — the caller's contract; the
  /// serving layer hashes the app name). nullptr detaches.
  void set_chunk_cache(cache::ChunkCache* chunk_cache,
                       std::uint64_t dataset_id = 0) noexcept {
    chunk_cache_ = chunk_cache;
    cache_dataset_ = dataset_id;
  }

  /// Attaches a pinned assembly-buffer pool (externally owned): per-slot
  /// prefetch buffers are acquired from / released to it instead of being
  /// freshly pinned every launch. nullptr detaches.
  void set_pinned_pool(cache::PinnedPool* pool) noexcept {
    pinned_pool_ = pool;
  }

  /// Attaches the bigkdur integrity plane (externally owned): every chunk
  /// image is digested once at assembly and re-verified after the H2D DMA
  /// lands, on every cache hit (via the cache's own integrity hook), and on
  /// the staged write-back values before they reach host memory. A mismatch
  /// routes into the existing chunk-retry / write-buffer-repair machinery;
  /// only an unrepairable mismatch aborts the launch with
  /// dur::IntegrityError. nullptr = integrity off (no digests computed).
  void set_integrity(dur::Integrity* integrity) noexcept {
    integrity_ = integrity;
  }

  /// bigkstatic: mixes the app's statically derived access-pattern signature
  /// into every chunk-cache key, so kernels with identical launch geometry
  /// but different (verified) access patterns never share cache entries, and
  /// a kernel change that alters the pattern invalidates cached chunks.
  /// 0 = no signature (default).
  void set_static_signature(std::uint64_t signature) noexcept {
    static_signature_ = signature;
  }
  const std::vector<StreamBinding>& bindings() const noexcept {
    return bindings_;
  }

  /// Geometry of the last (or planned) launch.
  std::uint32_t active_blocks() const noexcept { return geometry_.blocks; }
  std::uint64_t records_per_thread_chunk() const noexcept {
    return geometry_.rptc;
  }
  DataLayout layout() const noexcept { return geometry_.layout; }

 private:
  struct Geometry {
    std::uint32_t blocks = 0;
    std::uint64_t rptc = 0;  // records per thread per chunk
    DataLayout layout = DataLayout::kInterleaved;
  };

  struct Range {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool empty() const noexcept { return begin >= end; }
    std::uint64_t size() const noexcept { return empty() ? 0 : end - begin; }
  };

  struct BlockState {
    BlockState(sim::Simulation& sim, std::uint32_t depth, cusim::Stream dma)
        : depth(depth),
          addr_ready(sim),
          data_ready(sim),
          wb_landed(sim),
          ring(sim, depth),
          dma(std::move(dma)) {}

    std::uint32_t index = 0;
    /// Ring depth this block actually runs with. Normally
    /// options_.buffer_depth; shrunk when a pinned_alloc_fail degraded the
    /// block to fewer slots (the withheld ring tokens are never released).
    std::uint32_t depth = 0;
    Range records;
    std::uint64_t per_thread = 0;  // record-slice length per compute thread
    std::uint64_t chunks = 0;

    sim::Flag addr_ready;
    sim::Flag data_ready;
    sim::Flag wb_landed;
    sim::Semaphore ring;
    std::vector<ChunkSlot> slots;
    /// Cache leases pinned for the chunk currently in each ring slot;
    /// released (unpinned) when the slot is handed back.
    std::vector<std::vector<std::uint64_t>> slot_leases;
    std::uint32_t addr_region = 0;  // pinned address-buffer region id
    std::optional<hostsim::HostThread> assembly_thread;
    std::optional<hostsim::HostThread> scatter_thread;
    cusim::Stream dma;
  };

  // --- planning / setup (engine.cpp) ------------------------------------
  Geometry plan(std::uint64_t num_records);
  void build_blocks(std::uint64_t num_records);
  void release_buffers();
  Range thread_chunk_range(const BlockState& block, std::uint32_t vtid,
                           std::uint64_t chunk) const;
  gpusim::KernelLaunch launch_shape() const;

  // --- bigkfault recovery (engine.cpp) -----------------------------------
  /// One H2D copy in flight for a chunk, retained so a failed op can be
  /// re-issued verbatim (the pinned image stays intact until slot release —
  /// the idempotent chunk redo).
  struct PendingCopy {
    std::uint32_t stream = 0;
    std::uint64_t op = 0;        // stream sequence id of the latest issue
    std::uint64_t dev_base = 0;  // destination (ring slot or cache entry)
    const std::byte* host = nullptr;
    std::uint64_t bytes = 0;
    /// bigkdur assembly-time digest of the pinned image (0 = integrity off);
    /// the supervisor re-digests the landed device bytes against it.
    std::uint64_t checksum = 0;
  };

  /// Awaits the chunk's H2D ops, retries failed ones with capped exponential
  /// backoff, then raises data_ready in chunk order (chained behind the
  /// previous chunk so a slow retry never lets a later flag overtake it).
  /// Aborts the launch on device_lost or exhausted retries.
  sim::Task<> transfer_supervisor(BlockState& block, std::uint64_t chunk,
                                  std::vector<PendingCopy> copies,
                                  sim::TimePs begin);

  /// Marks the launch failed with `error` (first abort wins) and wakes every
  /// stage: stage flags flood past any chunk index and ring tokens are handed
  /// out so blocked drivers observe aborted_ and exit.
  void abort_launch(std::exception_ptr error);

  /// Effective state of a seeded protocol bug: the legacy Options::fault
  /// toggle ORed with a matching always-on spec on the runtime's fault plane.
  bool seeded_bug(fault::FaultKind kind, bool legacy_toggle) const {
    if (legacy_toggle) return true;
    fault::FaultPlane* plane = runtime_.fault_plane();
    return plane != nullptr &&
           plane->protocol_bug(kind, runtime_.fault_device());
  }

  // --- host-side pipeline stages (engine.cpp) ----------------------------
  sim::Task<> assembly_process(BlockState& block);
  sim::Task<> scatter_process(BlockState& block);
  /// bigkdur: digests each stream's staged writes at compute end (verified
  /// by the scatter stage) and hosts the fault.bitflip_writeback injection
  /// point (one staged value flipped *after* the digest was taken).
  void seal_staged_writes(ChunkSlot& slot);
  std::uint64_t assemble_stream(BlockState& block, ChunkSlot& slot,
                                std::uint32_t stream, std::uint64_t chunk,
                                hostsim::HostThread& thread);
  void finalize_addresses(BlockState& block, ChunkSlot& slot,
                          std::uint64_t* wire_bytes);

  // --- bigkcache helpers (engine.cpp) -------------------------------------
  /// A stream is cacheable when the kernel never writes it: a cached device
  /// image of a read-only chunk stays valid across launches.
  bool stream_cacheable(std::uint32_t stream) const noexcept {
    return bindings_[stream].writes_per_record == 0;
  }
  /// Content signature of one stream-chunk: geometry plus the generated
  /// per-thread address streams (patterns or explicit elements), so two
  /// launches only ever share an entry when compute would read identical
  /// staged bytes.
  std::uint64_t chunk_signature(const BlockState& block, const ChunkSlot& slot,
                                std::uint32_t stream,
                                std::uint64_t chunk) const;
  /// Unpins every cache lease taken for the chunk occupying `chunk`'s ring
  /// slot; called right before the slot is handed back to the ring.
  void release_slot_leases(BlockState& block, std::uint64_t chunk);

  // --- GPU-side drivers (templates over the kernel) ----------------------
  template <class Kernel>
  sim::Task<> addr_gen_driver(gpusim::BlockCtx& ctx, BlockState& block,
                              const Kernel& kernel);
  template <class Kernel>
  sim::Task<> compute_driver(gpusim::BlockCtx& ctx, BlockState& block,
                             const Kernel& kernel);

  sim::Simulation& sim() noexcept { return runtime_.sim(); }

  cusim::Runtime& runtime_;
  Options options_;
  std::vector<StreamBinding> bindings_;
  std::vector<std::uint32_t> overfetch_;
  bool has_writes_ = false;

  const DeviceTables* tables_ = nullptr;
  Geometry geometry_;
  std::vector<std::unique_ptr<BlockState>> blocks_;
  std::vector<std::uint64_t> device_allocs_;
  EngineMetrics metrics_;

  // --- bigkfault ----------------------------------------------------------
  /// Launch-failure latch: transfer supervisors and the stage watchdog set it
  /// via abort_launch(); every pipeline loop checks it after each wait and
  /// exits, and launch() rethrows abort_error_ after draining.
  bool aborted_ = false;
  std::exception_ptr abort_error_;
  /// Any block shrank its ring this launch (pinned_alloc_fail absorbed).
  /// Pipecheck is detached for the launch: its slot geometry is fixed at
  /// begin_launch and cannot describe a per-block depth.
  bool degraded_ = false;
  /// Per-chunk transfer supervisors (fault path only); joined by launch()
  /// after the kernel and host stages complete.
  std::vector<sim::Process> supervisors_;
  obs::Tracer* tracer_ = nullptr;
  std::string trace_scope_;
  obs::prof::StageProfiler* profiler_ = nullptr;  // externally owned

  // --- bigkcache ---------------------------------------------------------
  cache::ChunkCache* chunk_cache_ = nullptr;  // externally owned, optional
  std::uint64_t cache_dataset_ = 0;
  std::uint64_t static_signature_ = 0;  // bigkstatic pattern signature
  cache::PinnedPool* pinned_pool_ = nullptr;  // externally owned, optional

  // --- bigkdur -----------------------------------------------------------
  dur::Integrity* integrity_ = nullptr;  // externally owned, optional

  // --- bigkcheck ---------------------------------------------------------
  check::Sanitizer* sanitizer_ = nullptr;  // externally owned, optional
  std::unique_ptr<check::Sanitizer> owned_sanitizer_;  // from options_.check
  check::PipelineChecker* pipecheck_ = nullptr;  // active during launch()

  /// Replays the per-thread staged-element counts of (block, chunk, stream)
  /// to the pipeline checker after address generation settles them.
  void report_addr_counts(BlockState& block, ChunkSlot& slot,
                          std::uint64_t chunk);

  /// Single accounting point for a stage execution: the busy-time metric and
  /// the tracer span come from the same interval, so the Fig. 6 breakdown
  /// and the timeline agree by construction. For the GPU stages callers pass
  /// [now - SM service time, now]; for the host/DMA stages the wall interval
  /// of the stage.
  void record_stage(obs::Stage stage, std::uint32_t block, std::uint64_t chunk,
                    sim::TimePs begin, sim::TimePs end) {
    metrics_.stage_busy(stage) += end - begin;
    if (profiler_ != nullptr && end > begin) {
      profiler_->record(stage, begin, end);
    }
    if (tracer_ != nullptr && end > begin) {
      const std::string process =
          trace_scope_ + "engine block " + std::to_string(block);
      std::string thread{obs::stage_name(stage)};
      if (stage == obs::Stage::kTransfer) {
        // One row per ring slot: transfers for consecutive chunks overlap.
        thread += " s" + std::to_string(chunk % options_.buffer_depth);
      }
      tracer_->complete(tracer_->track(process, thread),
                        obs::stage_name(stage), begin, end, "engine",
                        {{"chunk", static_cast<double>(chunk)}});
    }
  }
};

// ---------------------------------------------------------------------------
// Template implementations
// ---------------------------------------------------------------------------

template <class Kernel>
sim::Task<> Engine::launch(const Kernel& kernel, std::uint64_t num_records,
                           const DeviceTables& tables) {
  if (bindings_.empty()) {
    throw std::logic_error("launch() requires at least one mapped stream");
  }
  tables_ = &tables;
  geometry_ = plan(num_records);
  aborted_ = false;
  abort_error_ = nullptr;
  degraded_ = false;
  supervisors_.clear();

  // bigkcheck: construct and install a sanitizer when options_.check asks
  // for one and the caller did not provide one via set_sanitizer(). Install
  // happens before build_blocks() so the memory sanitizer sees the staging
  // allocations with their exact requested sizes.
  if (options_.check.enabled && sanitizer_ == nullptr) {
    owned_sanitizer_ = std::make_unique<check::Sanitizer>(
        options_.check, runtime_.metrics());
    owned_sanitizer_->install(runtime_.gpu());
  }
  check::Sanitizer* active_sanitizer =
      sanitizer_ != nullptr ? sanitizer_ : owned_sanitizer_.get();
  pipecheck_ =
      active_sanitizer != nullptr ? active_sanitizer->pipecheck() : nullptr;
  if (pipecheck_ != nullptr) {
    pipecheck_->begin_launch(geometry_.blocks, options_.buffer_depth,
                             options_.compute_threads_per_block,
                             static_cast<std::uint32_t>(bindings_.size()));
  }
  if (chunk_cache_ != nullptr) {
    // The cache reports invalidations/evictions to the same pipeline checker
    // for the duration of this launch (cache freshness invariant).
    chunk_cache_->set_checker(pipecheck_);
  }

  metrics_ = EngineMetrics{};
  build_blocks(num_records);
  if (degraded_) {
    // A shrunken ring invalidates the slot geometry pipecheck was armed
    // with; run the launch without it rather than raise false violations.
    pipecheck_ = nullptr;
    if (chunk_cache_ != nullptr) chunk_cache_->set_checker(nullptr);
  }

  std::vector<sim::Process> host_processes;
  for (auto& block : blocks_) {
    host_processes.push_back(sim().spawn(assembly_process(*block)));
    if (has_writes_) {
      host_processes.push_back(sim().spawn(scatter_process(*block)));
    }
  }

  const Kernel* kernel_ptr = &kernel;
  co_await runtime_.gpu().run_kernel(
      launch_shape(),
      [this, kernel_ptr](gpusim::BlockCtx& ctx) -> sim::Task<> {
        BlockState& block = *blocks_.at(ctx.block_index());
        sim::Process addr_gen =
            sim().spawn(addr_gen_driver(ctx, block, *kernel_ptr));
        sim::Process compute =
            sim().spawn(compute_driver(ctx, block, *kernel_ptr));
        co_await addr_gen.join();
        co_await compute.join();
      });

  for (sim::Process& process : host_processes) {
    co_await process.join();
  }
  for (sim::Process& process : supervisors_) {
    co_await process.join();
  }
  supervisors_.clear();
  if (aborted_) {
    // Drain the DMA streams before tearing the staging buffers down: an
    // aborted launch can leave retried or later-chunk copies in flight that
    // still reference the device ranges release_buffers() frees.
    for (auto& block : blocks_) {
      co_await block->dma.synchronize();
    }
  }
  release_buffers();

  if (chunk_cache_ != nullptr) chunk_cache_->set_checker(nullptr);
  pipecheck_ = nullptr;
  if (owned_sanitizer_ != nullptr) {
    // Detach and enforce: throws check::CheckError with the diagnostic
    // summary when any checker reported a violation. An external sanitizer
    // (set_sanitizer) is finalized by its owner instead. An aborted launch
    // skips enforcement — the fault error below is the diagnosis.
    std::unique_ptr<check::Sanitizer> sanitizer = std::move(owned_sanitizer_);
    sanitizer->uninstall();
    if (!aborted_) sanitizer->finalize();
  }
  if (aborted_) {
    std::exception_ptr error = abort_error_;
    abort_error_ = nullptr;
    aborted_ = false;
    std::rethrow_exception(error);
  }
}

template <class Kernel>
sim::Task<> Engine::addr_gen_driver(gpusim::BlockCtx& ctx, BlockState& block,
                                    const Kernel& kernel) {
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  for (std::uint64_t chunk = 0; chunk < block.chunks; ++chunk) {
    co_await block.ring.acquire();
    if (aborted_) co_return;
    if (pipecheck_ != nullptr) {
      pipecheck_->on_slot_acquire(block.index, chunk);
    }
    ChunkSlot& slot = block.slots[chunk % block.depth];
    for (StreamStage& stage : slot.streams) {
      stage.staged_writes.clear();
      stage.cached_dev_base = kNoCachedBase;
      stage.image_checksum = 0;
      stage.staged_checksum = 0;
    }

    std::uint64_t wire_bytes = 0;
    sim::DurationPs busy = 0;
    if (geometry_.layout == DataLayout::kOriginal) {
      // Fallback / overlap-only: the "addresses" are just per-thread chunk
      // ranges — one tiny descriptor each, no per-access generation.
      wire_bytes = std::uint64_t{c_threads} * 16;
      co_await ctx.sync_overhead();
    } else {
      busy = co_await ctx.run_threads(
          0, c_threads, [&](gpusim::LaneCtx& lane, std::uint32_t tid) {
            const std::uint32_t vtid = tid;
            for (StreamStage& stage : slot.streams) {
              stage.read_addrs[vtid].begin(options_.pattern_recognition);
              stage.write_addrs[vtid].begin(options_.pattern_recognition);
            }
            const Range range = thread_chunk_range(block, vtid, chunk);
            if (range.empty()) return;
            AddrGenCtx addr_ctx(lane, slot, bindings_, *tables_, vtid,
                                options_.pattern_recognition);
            kernel(addr_ctx, range.begin, range.end, /*stride=*/1);
          });
      finalize_addresses(block, slot, &wire_bytes);
      co_await ctx.sync_overhead();
    }
    if (pipecheck_ != nullptr) {
      report_addr_counts(block, slot, chunk);
    }

    metrics_.addr_bytes_sent += wire_bytes;
    // Busy = SM service time; the span ends now and sums to the metric.
    record_stage(obs::Stage::kAddrGen, block.index, chunk, sim().now() - busy,
                 sim().now());
    const sim::TimePs landed = runtime_.gpu().post_d2h(wire_bytes);
    runtime_.gpu().set_flag_at(block.addr_ready, chunk + 1,
                               std::max(landed, sim().now()));
  }
}

template <class Kernel>
sim::Task<> Engine::compute_driver(gpusim::BlockCtx& ctx, BlockState& block,
                                   const Kernel& kernel) {
  const std::uint32_t c_threads = options_.compute_threads_per_block;
  for (std::uint64_t chunk = 0; chunk < block.chunks; ++chunk) {
    if (seeded_bug(fault::FaultKind::kSkipDataReadyWait,
                   options_.fault.skip_data_ready_wait)) {
      // Seeded bug: wait for the *previous* chunk's flag only (none at all
      // for chunk 0) — the compute stage races the staged DMA.
      if (chunk > 0) co_await block.data_ready.wait_ge(chunk);
    } else {
      co_await block.data_ready.wait_ge(chunk + 1);
    }
    if (aborted_) co_return;
    ChunkSlot& slot = block.slots[chunk % block.depth];
    if (pipecheck_ != nullptr) {
      pipecheck_->on_compute_begin(block.index, chunk,
                                   block.data_ready.value());
    }
    if (chunk_cache_ != nullptr &&
        seeded_bug(fault::FaultKind::kStaleCache, options_.fault.stale_cache)) {
      // Seeded bug: yank every cache entry backing this chunk out from under
      // the compute stage after the hit was declared — the
      // reuse-after-invalidation protocol violation.
      for (std::uint64_t entry : block.slot_leases[chunk % block.depth]) {
        chunk_cache_->invalidate_entry(entry, sim().now());
      }
    }

    const sim::DurationPs busy = co_await ctx.run_threads(
        c_threads, c_threads, [&](gpusim::LaneCtx& lane, std::uint32_t tid) {
          const std::uint32_t vtid = tid - c_threads;
          const Range range = thread_chunk_range(block, vtid, chunk);
          if (range.empty()) return;
          ComputeCtx compute_ctx(lane, slot, bindings_, *tables_,
                                 geometry_.layout, c_threads, vtid,
                                 range.begin, pipecheck_, block.index, chunk);
          kernel(compute_ctx, range.begin, range.end, /*stride=*/1);
        });
    ++metrics_.chunks;
    record_stage(obs::Stage::kCompute, block.index, chunk, sim().now() - busy,
                 sim().now());
    co_await ctx.sync_overhead();
    if (aborted_) co_return;

    if (has_writes_) {
      seal_staged_writes(slot);
      std::uint64_t wb_bytes = 0;
      for (std::uint32_t s = 0; s < slot.streams.size(); ++s) {
        wb_bytes +=
            slot.streams[s].staged_writes.size() * bindings_[s].elem_size;
      }
      metrics_.write_bytes_sent += wb_bytes;
      const sim::TimePs landed = runtime_.gpu().post_d2h(wb_bytes);
      runtime_.gpu().set_flag_at(block.wb_landed, chunk + 1,
                                 std::max(landed, sim().now()));
      if (seeded_bug(fault::FaultKind::kEarlyRingRelease,
                     options_.fault.early_ring_release)) {
        // Seeded bug: hand the ring slot back while the write-back scatter
        // is still in flight — assembly may overwrite live staged writes.
        // (Deliberately no on_slot_release: the slot is NOT actually safe.)
        block.ring.release();
      }
    } else {
      release_slot_leases(block, chunk);
      if (pipecheck_ != nullptr) {
        pipecheck_->on_slot_release(block.index, chunk);
      }
      block.ring.release();
    }
  }
}

}  // namespace bigk::core
