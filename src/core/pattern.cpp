#include "core/pattern.hpp"

#include <numeric>

namespace bigk::core {

std::uint64_t StridePattern::address_at(std::uint64_t i) const {
  if (strides.empty() || i == 0) return base;
  const std::uint64_t cycle = strides.size();
  const std::uint64_t full = i / cycle;
  const std::uint64_t rest = i % cycle;
  std::int64_t cycle_sum =
      std::accumulate(strides.begin(), strides.end(), std::int64_t{0});
  std::int64_t prefix = 0;
  for (std::uint64_t j = 0; j < rest; ++j) prefix += strides[j];
  return base + static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(full) * cycle_sum + prefix);
}

bool PatternDetector::feed(std::uint64_t address) {
  ++count_;
  switch (state_) {
    case State::kProbing:
      probe_.push_back(address);
      if (probe_.size() >= probe_window_) {
        if (!hypothesize()) state_ = State::kBroken;
      }
      return true;
    case State::kVerifying: {
      const std::uint64_t expected = candidate_.address_at(count_ - 1);
      if (address == expected) {
        candidate_.count = count_;
        return true;
      }
      state_ = State::kBroken;
      return false;  // the paper restarts generation without matching
    }
    case State::kBroken:
      return true;
  }
  return true;
}

bool PatternDetector::hypothesize() {
  const std::size_t n = probe_.size();
  // A cycle must be observed at least twice (2*cycle+1 addresses) before it
  // counts as a hypothesis; otherwise any sequence would trivially "match"
  // a cycle of length n-1.
  for (std::uint32_t cycle = 1;
       cycle <= max_cycle_ && std::size_t{2} * cycle + 1 <= n; ++cycle) {
    std::vector<std::int64_t> strides(cycle);
    for (std::uint32_t j = 0; j < cycle; ++j) {
      strides[j] = static_cast<std::int64_t>(probe_[j + 1]) -
                   static_cast<std::int64_t>(probe_[j]);
    }
    bool consistent = true;
    for (std::size_t i = 1; i + 1 < n && consistent; ++i) {
      const std::int64_t diff = static_cast<std::int64_t>(probe_[i + 1]) -
                                static_cast<std::int64_t>(probe_[i]);
      consistent = diff == strides[i % cycle];
    }
    if (consistent) {
      candidate_.base = probe_.front();
      candidate_.strides = std::move(strides);
      candidate_.count = n;
      state_ = State::kVerifying;
      return true;
    }
  }
  return false;
}

std::optional<StridePattern> PatternDetector::pattern() const {
  if (state_ == State::kBroken || count_ == 0) return std::nullopt;
  if (state_ == State::kVerifying) return candidate_;
  // Still probing: a short sequence. Re-derive a pattern over what we have.
  if (probe_.size() == 1) {
    return StridePattern{probe_.front(), {0}, 1};
  }
  PatternDetector scratch(static_cast<std::uint32_t>(probe_.size()),
                          max_cycle_);
  scratch.probe_ = probe_;
  scratch.count_ = count_;
  if (scratch.hypothesize()) return scratch.candidate_;
  return std::nullopt;
}

void PatternDetector::reset() {
  state_ = State::kProbing;
  probe_.clear();
  candidate_ = StridePattern{};
  count_ = 0;
  last_address_ = 0;
}

}  // namespace bigk::core
