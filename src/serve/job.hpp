// Job descriptions and outcomes for the bigkserve serving layer, plus the
// deterministic workload generator used by benchmarks and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common.hpp"
#include "sim/time.hpp"

namespace bigk::serve {

/// One request submitted to the server: run app `app` once, arriving
/// `submit_time` after the start of the run.
struct JobSpec {
  std::uint64_t id = 0;
  std::string app;
  sim::TimePs submit_time = 0;
  /// Latency SLO measured from submission; 0 = no deadline.
  sim::DurationPs deadline = 0;
  /// bigkload QoS plane: index into ServerConfig::qos.tenants (ignored when
  /// no tenants are configured).
  std::uint32_t tenant = 0;
  /// Simulated client the job belongs to; 0 = anonymous (the job id keys
  /// the retry-escalation streak instead, preserving the legacy behavior).
  /// The load generator allocates globally unique ids starting at 1; in
  /// closed-loop mode a client's jobs form one think-time-paced chain.
  std::uint64_t client = 0;
};

/// What happened to one job, as reported by the server.
struct JobRecord {
  JobSpec spec;
  std::uint64_t input_bytes = 0;
  std::uint32_t device = 0;
  /// Admission rejections before acceptance (or before the job gave up).
  std::uint32_t rejections = 0;
  /// bigkfault: times the job was handed to another device after its device
  /// failed mid-run or was quarantined with the job still queued.
  std::uint32_t redispatches = 0;
  bool admitted = false;
  bool completed = false;
  /// bigkfault: admitted but never finished — the run failed and no
  /// available device remained to take the redispatch.
  bool failed = false;
  /// Device already held this app's dataset, so input staging was skipped.
  bool warm = false;
  /// bigkhetero: the job spilled to host-core execution (no device, no
  /// staging/DMA) because the device pool was saturated or quarantined.
  bool cpu_executed = false;
  /// bigkdur: at least one run attempt resumed past record zero from a
  /// journaled checkpoint instead of restarting the job from scratch.
  bool resumed = false;
  bool deadline_met = true;
  sim::TimePs admit_time = 0;
  sim::TimePs start_time = 0;
  /// bigkprof: input staging finished on the worker (== start_time for warm
  /// jobs, which skip staging).
  sim::TimePs staging_done_time = 0;
  /// bigkprof: kernel pipeline finished; the remainder up to finish_time is
  /// table download / write-back on the serving side.
  sim::TimePs exec_done_time = 0;
  sim::TimePs finish_time = 0;

  sim::DurationPs latency() const noexcept {
    return completed ? finish_time - spec.submit_time : 0;
  }

  /// bigkprof queueing-delay breakdown: an exact partition of
  /// [submit_time, finish_time], so the parts always sum to latency().
  struct Breakdown {
    sim::DurationPs admission = 0;  ///< submit -> admitted
    sim::DurationPs queue = 0;      ///< admitted -> worker picked it up
    sim::DurationPs staging = 0;    ///< input staging on the worker
    sim::DurationPs execution = 0;  ///< engine pipeline (launch to exec done)
    sim::DurationPs writeback = 0;  ///< table download / epilogue -> finish

    sim::DurationPs total() const noexcept {
      return admission + queue + staging + execution + writeback;
    }
  };

  /// Valid only for completed jobs (returns all-zero otherwise).
  Breakdown breakdown() const noexcept {
    Breakdown b;
    if (!completed) return b;
    b.admission = admit_time - spec.submit_time;
    b.queue = start_time - admit_time;
    const sim::TimePs staged =
        staging_done_time >= start_time ? staging_done_time : start_time;
    b.staging = staged - start_time;
    // A redispatched job can carry a stale exec timestamp from the failed
    // attempt; clamp into [staged, finish] so the partition stays exact.
    sim::TimePs exec = exec_done_time;
    if (exec < staged) exec = finish_time;
    if (exec > finish_time) exec = finish_time;
    b.execution = exec - staged;
    b.writeback = finish_time - exec;
    return b;
  }
};

/// Deterministic workload shape for make_workload.
struct WorkloadConfig {
  std::uint32_t num_jobs = 32;
  std::uint64_t seed = 1;
  /// Mean gap between consecutive submissions; actual gaps are uniform in
  /// [0, 2*mean_gap]. 0 = all jobs arrive at t=0.
  sim::DurationPs mean_gap = 0;
  /// Deadline applied to every job (0 = none).
  sim::DurationPs deadline = 0;
  /// Draw apps from the first `distinct_apps` names only (0 = all of them);
  /// small values produce the reuse-heavy mixes that reward app-affinity.
  std::uint32_t distinct_apps = 0;
};

/// Builds a mixed job sequence over `app_names` (round-started by a
/// splitmix64 stream seeded from `cfg.seed`), sorted by submit_time with ids
/// in submission order. Same names + config => byte-identical workload.
inline std::vector<JobSpec> make_workload(
    const std::vector<std::string>& app_names, const WorkloadConfig& cfg) {
  std::vector<JobSpec> specs;
  if (app_names.empty()) return specs;
  const std::uint64_t pool =
      cfg.distinct_apps == 0
          ? app_names.size()
          : std::min<std::uint64_t>(cfg.distinct_apps, app_names.size());
  apps::Rng rng(cfg.seed);
  sim::TimePs t = 0;
  specs.reserve(cfg.num_jobs);
  for (std::uint32_t j = 0; j < cfg.num_jobs; ++j) {
    JobSpec spec;
    spec.id = j;
    spec.app = app_names[rng.below(pool)];
    spec.submit_time = t;
    spec.deadline = cfg.deadline;
    specs.push_back(std::move(spec));
    if (cfg.mean_gap > 0) t += rng.below(2 * cfg.mean_gap + 1);
  }
  return specs;
}

}  // namespace bigk::serve
