// Pool autoscaler: grows and shrinks the set of *active* devices from two
// load signals sampled once per decision period — the average admission-queue
// depth over the period and the windowed p99 latency. Pure decision logic
// (no clock, no device handles): the server's autoscaler daemon feeds it the
// signals and applies the returned step to the scheduler's active axis,
// which is orthogonal to the health axis (a quarantined device stays
// unplaceable whether or not it is active).
//
// The policy is deliberately simple and hysteretic:
//   grow   when avg depth >= up_queue_depth * active, or p99 exceeds
//          up_p99_ms (when that gate is armed), and active < max_active;
//   shrink when avg depth <= down_queue_depth * (active - 1), p99 is under
//          half the up gate, and active > min_active;
// with a cooldown of `cooldown` decision periods after every action so the
// pool does not flap on a single bursty window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace bigk::serve {

struct AutoscalerConfig {
  bool enabled = false;
  /// Active-device floor; the pool never shrinks below it.
  std::uint32_t min_active = 1;
  /// Active-device ceiling; 0 = the whole pool.
  std::uint32_t max_active = 0;
  /// Decision (and signal-averaging) period.
  sim::DurationPs period = sim::DurationPs{100'000'000};  // 100 us
  /// Grow when the period's average queue depth reaches this many jobs per
  /// active device.
  double up_queue_depth = 3.0;
  /// Shrink when the average depth would still be under this per device
  /// after giving one device up.
  double down_queue_depth = 1.0;
  /// Latency gate: grow when the period's p99 exceeds this (ms); 0 disarms
  /// the gate and depth alone drives scaling.
  double up_p99_ms = 0.0;
  /// Decision periods to sit out after a scaling action.
  std::uint32_t cooldown = 2;
};

class Autoscaler {
 public:
  Autoscaler(const AutoscalerConfig& config, std::uint32_t pool_size)
      : config_(config),
        max_active_(config.max_active == 0
                        ? pool_size
                        : std::min(config.max_active, pool_size)) {
    if (pool_size == 0) {
      throw std::invalid_argument("Autoscaler needs a non-empty pool");
    }
    if (config_.min_active == 0) config_.min_active = 1;
    if (config_.min_active > max_active_) config_.min_active = max_active_;
  }

  /// One decision: +1 grow, -1 shrink, 0 hold. `avg_queue_depth` is the
  /// period's mean admission-queue depth, `p99_ms` the period's p99 latency
  /// (0 when nothing completed), `active` the current active-device count.
  int decide(double avg_queue_depth, double p99_ms, std::uint32_t active) {
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      return 0;
    }
    const bool depth_high =
        avg_queue_depth >=
        config_.up_queue_depth * static_cast<double>(active);
    const bool p99_high = config_.up_p99_ms > 0.0 && p99_ms > config_.up_p99_ms;
    if ((depth_high || p99_high) && active < max_active_) {
      ++scale_ups_;
      cooldown_left_ = config_.cooldown;
      return +1;
    }
    const bool depth_low =
        avg_queue_depth <=
        config_.down_queue_depth * static_cast<double>(active - 1);
    const bool p99_low =
        config_.up_p99_ms == 0.0 || p99_ms < config_.up_p99_ms / 2.0;
    if (depth_low && p99_low && active > config_.min_active) {
      ++scale_downs_;
      cooldown_left_ = config_.cooldown;
      return -1;
    }
    return 0;
  }

  std::uint32_t min_active() const noexcept { return config_.min_active; }
  std::uint32_t max_active() const noexcept { return max_active_; }
  std::uint64_t scale_ups() const noexcept { return scale_ups_; }
  std::uint64_t scale_downs() const noexcept { return scale_downs_; }

 private:
  AutoscalerConfig config_;
  std::uint32_t max_active_;
  std::uint32_t cooldown_left_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace bigk::serve
