#include "serve/server.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "cache/key.hpp"
#include "cache/pinned_pool.hpp"
#include "check/sanitizer.hpp"
#include "cusim/device_pool.hpp"
#include "dur/integrity.hpp"
#include "dur/journal.hpp"
#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "obs/prof/attribution.hpp"
#include "obs/prof/quantile.hpp"
#include "obs/prof/slo.hpp"
#include "obs/prof/windowed.hpp"
#include "serve/health.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace bigk::serve {

namespace {

/// Host cache-model region ids for the per-device input-staging scans (far
/// above core::kStreamRegionBase so they never collide with mapped streams).
constexpr std::uint32_t kStagingRegionBase = 9000;

double to_ms(sim::DurationPs ps) { return static_cast<double>(ps) / 1e9; }

/// Cache dataset identity of an app's generated input: apps regenerate the
/// same dataset from the same seed on every runner, so the app name is the
/// dataset.
std::uint64_t dataset_id_of(const std::string& app) {
  cache::Fnv1a hash;
  hash.mix_bytes(app.data(), app.size());
  return hash.state;
}

struct Job {
  JobRecord record;
  std::unique_ptr<apps::JobRunner> runner;
  /// bigkstatic pattern signature of the (verified) app, 0 when the
  /// verification gate is disabled.
  std::uint64_t static_signature = 0;
  /// bigkload closed loop: raised once when the job settles, so the owning
  /// chain client can submit its next link (null in open-loop runs).
  std::unique_ptr<sim::Flag> done;
  /// bigkdur: record high-water mark across this session's run attempts —
  /// windows at or below it that execute again count as replayed work.
  std::uint64_t progress = 0;
};

struct ServerState {
  const ServerConfig& config;
  sim::Simulation sim;
  cusim::DevicePool pool;
  JobQueue queue;
  Scheduler scheduler;
  HealthMonitor health;
  /// One FIFO per device; its worker is the single consumer, so jobs on one
  /// device serialize in dispatch order.
  std::vector<std::unique_ptr<sim::Channel<Job*>>> dispatch;
  /// bigkhetero: FIFO of jobs spilled to host-core execution (null unless
  /// hetero.spill_enabled). Its single cpu_worker serializes spilled jobs,
  /// so the host cores never oversubscribe across concurrent spills.
  std::unique_ptr<sim::Channel<Job*>> cpu_dispatch;
  std::uint64_t spills = 0;
  std::uint64_t cpu_completed = 0;
  std::vector<Job> jobs;
  std::vector<std::uint64_t> completion_order;
  /// bigkcache: one chunk cache + pinned pool per device (empty when the
  /// cache is disabled). Shared by every job dispatched to that device.
  std::vector<std::unique_ptr<cache::ChunkCache>> caches;
  std::vector<std::unique_ptr<cache::PinnedPool>> pools;
  /// bigkfault: the pool-wide fault plane (null without a fault_spec).
  std::unique_ptr<fault::FaultPlane> fault_plane;
  // --- bigkdur -------------------------------------------------------------
  /// Shared integrity plane for every device's engine and chunk cache (null
  /// when dur.integrity is off — byte-identical to the pre-dur build).
  std::unique_ptr<dur::Integrity> integrity;
  /// Run attempts that resumed past record zero from a journaled checkpoint.
  std::uint64_t resumed = 0;
  /// Checkpoint windows re-executed although an earlier attempt (or the
  /// journal) had already completed them.
  std::uint64_t chunks_replayed = 0;
  /// The simulated whole-server crash fired (dur.crash_at elapsed).
  bool crashed = false;
  // --- bigkprof -----------------------------------------------------------
  /// One bottleneck profiler per device (empty when prof_window == 0); every
  /// engine launch on the device feeds it via JobRunConfig::profiler.
  std::vector<std::unique_ptr<obs::prof::StageProfiler>> profilers;
  /// P² latency sketch over completed-job latencies in ms (always on — this
  /// is the source of the report's p50/p95/p99).
  obs::prof::QuantileSketch latency_sketch;
  /// Windowed completion streams: pool-wide plus one per device.
  std::unique_ptr<obs::WindowedStats> completions;
  std::vector<std::unique_ptr<obs::WindowedStats>> device_completions;
  /// Windowed PCIe bytes per pipeline side (fed by the telemetry daemon
  /// from per-tick deltas of the pool's DMA totals).
  std::unique_ptr<obs::WindowedStats> h2d_window;
  std::unique_ptr<obs::WindowedStats> d2h_window;
  /// Queue depth sampled at every admit/release transition.
  std::unique_ptr<obs::WindowedStats> queue_depth_window;
  obs::prof::SloMonitor slo;
  /// Effective gauge prefix (also the SLO counter scope).
  std::string metrics_scope;
  /// Telemetry-daemon tick state (deltas since the previous window).
  std::uint64_t last_h2d_bytes = 0;
  std::uint64_t last_d2h_bytes = 0;
  std::uint64_t last_compute_busy = 0;
  std::uint64_t last_fault_injected = 0;
  /// Jobs settled (completed, failed, or shed); serve_main waits for all of
  /// them before shutting the workers and the probe daemon down.
  std::uint64_t settled = 0;
  sim::Flag all_settled{sim};
  bool shutdown = false;
  /// Captured when the last job settles, before the shutdown handshake, so
  /// the makespan never includes a trailing probe tick.
  sim::TimePs finish_time = 0;
  // --- bigkload QoS plane --------------------------------------------------
  /// QoS mode is on iff tenants are configured; admitted jobs then pass
  /// through the WFQ stage instead of being placed at admission.
  bool qos_mode = false;
  /// Admitted-but-unfinished jobs per tenant (quota enforcement).
  std::vector<std::uint32_t> tenant_outstanding;
  std::unique_ptr<QosQueue<Job*>> qos_queue;
  /// Monotone event counter waking the dispatcher: enqueue, device freed,
  /// scale-up, shutdown.
  sim::Flag dispatch_events{sim};
  /// Jobs queued-or-running per device. The dispatcher only hands a job to
  /// an idle device, keeping placement late-bound under WFQ ordering
  /// (redispatch after a failure may push the count past 1).
  std::vector<std::uint32_t> inflight;
  std::unique_ptr<Autoscaler> autoscaler;
  /// Decision-period signal windows for the autoscaler daemon (the latency
  /// sketch is recreated every period so p99 is per-period, not cumulative).
  std::unique_ptr<obs::WindowedStats> scaler_depth;
  std::unique_ptr<obs::prof::QuantileSketch> scaler_latency;
  std::uint32_t active_devices = 0;
  std::uint32_t min_active_seen = 0;
  std::uint32_t max_active_seen = 0;

  explicit ServerState(const ServerConfig& cfg)
      : config(cfg),
        pool(sim, cfg.system, cfg.devices),
        queue(JobQueue::Config{cfg.queue_depth, cfg.retry_after,
                               cfg.retry_after_cap, cfg.retry_jitter_seed}),
        scheduler(cfg.policy, pool.size()),
        health(pool.size(), HealthMonitor::Config{cfg.quarantine_after,
                                                  cfg.reinstate_after}),
        slo(obs::prof::parse_slo_rules(cfg.slo_spec)) {
    metrics_scope = cfg.metrics_prefix.empty()
                        ? std::string("serve.") + policy_name(cfg.policy) +
                              ".devices" + std::to_string(pool.size())
                        : cfg.metrics_prefix;
    slo.attach(cfg.metrics, cfg.tracer, metrics_scope + ".");
    if (cfg.prof_window > 0) {
      for (std::uint32_t d = 0; d < pool.size(); ++d) {
        profilers.push_back(
            std::make_unique<obs::prof::StageProfiler>(cfg.prof_window));
        device_completions.push_back(
            std::make_unique<obs::WindowedStats>(cfg.prof_window));
      }
      completions = std::make_unique<obs::WindowedStats>(cfg.prof_window);
      h2d_window = std::make_unique<obs::WindowedStats>(cfg.prof_window);
      d2h_window = std::make_unique<obs::WindowedStats>(cfg.prof_window);
      queue_depth_window =
          std::make_unique<obs::WindowedStats>(cfg.prof_window);
    }
    pool.attach_observability(cfg.tracer, cfg.metrics);
    if (!cfg.fault_spec.empty()) {
      fault_plane = std::make_unique<fault::FaultPlane>(cfg.fault_seed);
      fault_plane->add_all(fault::FaultSpec::parse(cfg.fault_spec));
      fault_plane->attach_observability(cfg.metrics, cfg.tracer);
      pool.set_fault_plane(fault_plane.get());
    }
    if (cfg.dur.integrity) {
      integrity = std::make_unique<dur::Integrity>();
      integrity->attach_observability(cfg.metrics, cfg.tracer);
    }
    for (std::uint32_t d = 0; d < pool.size(); ++d) {
      dispatch.push_back(std::make_unique<sim::Channel<Job*>>(sim));
    }
    if (cfg.hetero.spill_enabled) {
      cpu_dispatch = std::make_unique<sim::Channel<Job*>>(sim);
    }
    if (cfg.cache_enabled) {
      const std::uint64_t capacity =
          cfg.cache_bytes != 0 ? cfg.cache_bytes
                               : cfg.system.gpu.global_memory_bytes / 4;
      for (std::uint32_t d = 0; d < pool.size(); ++d) {
        cusim::Runtime& device = pool.device(d);
        auto chunk_cache = std::make_unique<cache::ChunkCache>(
            device.gpu().memory(),
            cache::ChunkCache::Config{capacity, cfg.cache_eviction});
        chunk_cache->attach_observability(cfg.metrics, cfg.tracer,
                                          device.device_name());
        // bigkdur: resident entries re-verify against their insert digest on
        // every hit and under the scrub daemon; the fault hook lets
        // bitflip_cache corrupt them under this device's pool index.
        chunk_cache->set_integrity(integrity.get());
        chunk_cache->set_fault(fault_plane.get(), d);
        caches.push_back(std::move(chunk_cache));
        pools.push_back(std::make_unique<cache::PinnedPool>(device));
      }
      // Warm-preference bound: what an affinity hit would actually save —
      // the staged input skip plus the PCIe bytes the device's cache holds
      // for this app's dataset.
      scheduler.set_warm_benefit(
          [this](std::uint32_t device, const std::string& app,
                 std::uint64_t input_bytes) {
            return input_bytes +
                   caches[device]->resident_bytes(dataset_id_of(app));
          });
    }
    qos_mode = !cfg.qos.tenants.empty();
    if (qos_mode) {
      std::vector<std::uint32_t> weights;
      weights.reserve(cfg.qos.tenants.size());
      for (const TenantConfig& tenant : cfg.qos.tenants) {
        weights.push_back(tenant.weight);
      }
      qos_queue = std::make_unique<QosQueue<Job*>>(cfg.qos.discipline, weights);
      tenant_outstanding.assign(cfg.qos.tenants.size(), 0);
      inflight.assign(pool.size(), 0);
    }
    if (cfg.metrics != nullptr) {
      queue.attach_metrics(*cfg.metrics, metrics_scope);
    }
    active_devices = pool.size();
    if (cfg.qos.autoscaler.enabled) {
      autoscaler = std::make_unique<Autoscaler>(cfg.qos.autoscaler,
                                                pool.size());
      scaler_depth =
          std::make_unique<obs::WindowedStats>(cfg.qos.autoscaler.period);
      scaler_latency = std::make_unique<obs::prof::QuantileSketch>();
      // Start at the floor; the daemon grows the pool as load arrives.
      for (std::uint32_t d = autoscaler->min_active(); d < pool.size(); ++d) {
        scheduler.set_active(d, false);
      }
      active_devices = autoscaler->min_active();
    }
    min_active_seen = max_active_seen = active_devices;
    if (queue_depth_window != nullptr || scaler_depth != nullptr) {
      queue.set_depth_observer([this](std::uint32_t depth) {
        if (queue_depth_window != nullptr) {
          queue_depth_window->add(sim.now(), static_cast<double>(depth));
        }
        if (scaler_depth != nullptr) {
          scaler_depth->add(sim.now(), static_cast<double>(depth));
        }
      });
    }
  }

  void settle_one() { all_settled.advance_to(++settled); }

  /// Settles `job` and signals its closed-loop chain (if any).
  void settle_job(Job& job) {
    if (job.done != nullptr) job.done->increment();
    settle_one();
  }

  void trace_serve_instant(const std::string& name) {
    if (config.tracer == nullptr) return;
    const obs::TrackId track = config.tracer->track("serve", "health");
    config.tracer->instant(track, name, sim.now(), "serve");
  }
};

/// bigkhetero spill policy: an admitted job goes to the CPU instead of a
/// device queue when the pool has nothing placeable (every device quarantined
/// or parked) or the admitted backlog exceeds the spill depth.
bool should_spill(const ServerState& st) {
  if (!st.config.hetero.spill_enabled) return false;
  return !st.scheduler.any_available() ||
         st.queue.outstanding() > st.config.hetero.spill_depth;
}

/// Routes `job` to host-core execution (the cpu_worker completes it).
void spill_job(ServerState& st, Job& job) {
  job.record.cpu_executed = true;
  ++st.spills;
  if (st.config.metrics != nullptr) {
    st.config.metrics->counter("serve.spills").add(1);
  }
  st.trace_serve_instant("spill job " + std::to_string(job.record.spec.id) +
                         " to cpu");
  st.cpu_dispatch->push(&job);
}

/// Runs one job through admission control: keeps resubmitting until accepted
/// or out of retries. Rejections — queue full, the whole pool quarantined, or
/// (QoS mode) the job's tenant at its admission quota — return an escalating
/// retry-after hint the client honors verbatim; the escalation streak is
/// keyed by the submitting client when the workload names one, by the job id
/// otherwise. An accepted job is placed immediately in the legacy path, or
/// enters the WFQ stage for the dispatcher in QoS mode.
sim::Task<> submit_one(ServerState& st, Job& job) {
  const std::uint64_t client_key = job.record.spec.client != 0
                                       ? job.record.spec.client
                                       : job.record.spec.id;
  const std::uint32_t tenant = job.record.spec.tenant;
  for (std::uint32_t attempt = 0;; ++attempt) {
    sim::DurationPs retry_after = 0;
    const std::uint32_t quota =
        st.qos_mode ? st.config.qos.tenants[tenant].quota : 0;
    if (quota > 0 && st.tenant_outstanding[tenant] >= quota) {
      retry_after = st.queue.reject(RejectCause::kTenantQuota, client_key);
    } else if (!st.scheduler.any_available() &&
               !st.config.hetero.spill_enabled) {
      retry_after = st.queue.reject(RejectCause::kNoDevice, client_key);
    } else {
      const JobQueue::Admission admission = st.queue.try_admit(client_key);
      if (admission.accepted) {
        job.record.admitted = true;
        job.record.admit_time = st.sim.now();
        if (st.qos_mode) {
          ++st.tenant_outstanding[tenant];
          if (should_spill(st)) {
            spill_job(st, job);
          } else {
            st.qos_queue->push(tenant, &job, job.record.input_bytes >> 10);
            st.dispatch_events.increment();
          }
        } else if (should_spill(st)) {
          spill_job(st, job);
        } else {
          const std::uint32_t device = st.scheduler.pick_device(
              job.record.spec.app, job.record.input_bytes);
          job.record.device = device;
          job.record.warm =
              st.scheduler.resident_app(device) == job.record.spec.app;
          st.scheduler.on_dispatch(device, job.record.spec.app,
                                   job.record.input_bytes);
          st.dispatch[device]->push(&job);
        }
        co_return;  // settles when its worker finishes it
      }
      retry_after = admission.retry_after;
    }
    ++job.record.rejections;
    if (attempt >= st.config.max_retries) {  // shed for good
      st.settle_job(job);
      co_return;
    }
    co_await st.sim.delay(retry_after);
  }
}

/// One open-loop client: waits until the job's arrival time, then submits.
sim::Task<> client(ServerState& st, Job& job) {
  if (job.record.spec.submit_time > 0) {
    co_await st.sim.delay(job.record.spec.submit_time);
  }
  co_await submit_one(st, job);
}

/// One closed-loop client: its jobs (all sharing one JobSpec::client) form a
/// chain — each link submits only after the previous settled plus the
/// tenant's think time, and its submit timestamp is re-stamped to the actual
/// instant so latency is measured from the real submission. A shed link does
/// not break the chain.
sim::Task<> chain_client(ServerState& st, std::vector<std::size_t> chain) {
  for (std::size_t k = 0; k < chain.size(); ++k) {
    Job& job = st.jobs[chain[k]];
    if (k == 0) {
      if (job.record.spec.submit_time > 0) {
        co_await st.sim.delay(job.record.spec.submit_time);
      }
    } else {
      const sim::DurationPs think =
          st.config.qos.tenants[job.record.spec.tenant].think_time;
      if (think > 0) co_await st.sim.delay(think);
      job.record.spec.submit_time = st.sim.now();
    }
    co_await submit_one(st, job);
    if (job.record.admitted) co_await job.done->wait_ge(1);
  }
}

/// Hands an admitted job that cannot run on `from_device` (its run failed,
/// or it was queued behind a quarantine) to the best available device; with
/// the whole pool quarantined the job is abandoned as failed.
void redispatch(ServerState& st, std::uint32_t from_device, Job& job) {
  st.scheduler.on_complete(from_device, job.record.input_bytes);
  if (st.qos_mode) {
    if (st.inflight[from_device] > 0) --st.inflight[from_device];
    st.dispatch_events.increment();
  }
  const std::uint32_t target =
      st.scheduler.any_available()
          ? st.scheduler.pick_device(job.record.spec.app,
                                     job.record.input_bytes)
          : st.pool.size();
  if (target >= st.pool.size()) {
    if (st.config.hetero.spill_enabled) {
      // bigkhetero: instead of abandoning the job, hand it to the host
      // cores. The job keeps its admission slot (and tenant quota) until
      // the cpu_worker completes it.
      ++job.record.redispatches;
      spill_job(st, job);
      return;
    }
    job.record.failed = true;
    st.queue.release();
    if (st.qos_mode) --st.tenant_outstanding[job.record.spec.tenant];
    st.trace_serve_instant("job " + std::to_string(job.record.spec.id) +
                           " failed: no device");
    st.settle_job(job);
    return;
  }
  ++job.record.redispatches;
  job.record.device = target;
  job.record.warm = st.scheduler.resident_app(target) == job.record.spec.app;
  st.scheduler.on_dispatch(target, job.record.spec.app,
                           job.record.input_bytes);
  // A redispatched job keeps its admission and skips the WFQ stage: it bumps
  // the target's inflight count past the dispatcher's one-job limit, which
  // simply queues it behind the device's current job.
  if (st.qos_mode) ++st.inflight[target];
  st.dispatch[target]->push(&job);
}

/// Quarantine transition for `device`: no new placements, and its chunk
/// cache is dropped as a device reset (device memory is not trusted across
/// the outage; pipecheck flags any read through a surviving lease).
void quarantine_device(ServerState& st, std::uint32_t device) {
  st.scheduler.set_available(device, false);
  if (!st.caches.empty()) {
    st.caches[device]->invalidate_all(st.sim.now(), /*device_reset=*/true);
  }
  if (st.config.metrics != nullptr) {
    st.config.metrics->counter("serve.quarantines").add(1);
  }
  st.trace_serve_instant("quarantine dev" + std::to_string(device));
}

/// Periodically probes quarantined devices and reinstates the ones whose
/// outage has elapsed (for a device that was never lost — quarantined on
/// consecutive DMA failures — the first probe succeeds). Reinstatement is
/// flap-damped: the device must pass `reinstate_after` consecutive clean
/// probes, so an outage that clears and re-trips between probes keeps it out.
sim::Task<> probe_daemon(ServerState& st) {
  while (!st.shutdown) {
    co_await st.sim.delay(st.config.probe_interval);
    if (st.shutdown) break;
    for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
      if (!st.health.quarantined(d)) continue;
      const bool clean = st.fault_plane->probe_device(d, st.sim.now());
      if (!st.health.on_probe(d, clean)) continue;
      st.scheduler.set_available(d, true);
      if (st.config.metrics != nullptr) {
        st.config.metrics->counter("serve.reinstatements").add(1);
      }
      st.trace_serve_instant("reinstate dev" + std::to_string(d));
    }
  }
}

/// bigkdur: simulated whole-server crash. At dur.crash_at the flag flips and
/// every worker stops launching new checkpoint windows; queued and in-flight
/// jobs settle as failed so serve_main drains and run_server returns. A
/// fresh run_server over the same journal models the restart.
sim::Task<> crash_daemon(ServerState& st) {
  co_await st.sim.delay(st.config.dur.crash_at);
  if (st.shutdown) co_return;
  st.crashed = true;
  if (st.config.metrics != nullptr) {
    st.config.metrics->counter("serve.crashes").add(1);
  }
  st.trace_serve_instant("server crash");
}

/// bigkdur cache scrub daemon: every dur.scrub_period, re-verifies up to
/// dur.scrub_entries resident chunk-cache entries on `device` against their
/// insert digests and evicts any whose bytes no longer match (the engine
/// then re-assembles those chunks on the next miss).
sim::Task<> scrub_daemon(ServerState& st, std::uint32_t device) {
  while (!st.shutdown) {
    co_await st.sim.delay(st.config.dur.scrub_period);
    if (st.shutdown) break;
    st.caches[device]->scrub(st.config.dur.scrub_entries, st.sim.now());
  }
}

/// Epilogue for a job the simulated crash stranded on a worker: it settles
/// as failed (releasing its admission slot and device) so the run drains.
void fail_crashed_job(ServerState& st, std::uint32_t device_index, Job& job) {
  job.record.failed = true;
  st.scheduler.on_complete(device_index, job.record.input_bytes);
  st.queue.release();
  if (st.qos_mode) {
    --st.tenant_outstanding[job.record.spec.tenant];
    if (st.inflight[device_index] > 0) --st.inflight[device_index];
    st.dispatch_events.increment();
  }
  st.trace_serve_instant("job " + std::to_string(job.record.spec.id) +
                         " failed: server crashed");
  st.settle_job(job);
}

/// bigkprof telemetry daemon: once per profiling window, folds per-tick
/// deltas of the pool's DMA/compute totals into the windowed stats, publishes
/// the live throughput signals as tracer counter tracks, and evaluates the
/// SLO rules against a snapshot of the windowed metrics.
sim::Task<> telemetry_daemon(ServerState& st) {
  const sim::DurationPs window = st.config.prof_window;
  const double window_s = static_cast<double>(window) * 1e-12;
  while (!st.shutdown) {
    co_await st.sim.delay(window);
    if (st.shutdown) break;
    const sim::TimePs now = st.sim.now();

    std::uint64_t h2d = 0;
    std::uint64_t d2h = 0;
    std::uint64_t busy = 0;
    for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
      const gpusim::Gpu& gpu = st.pool.device(d).gpu();
      h2d += gpu.stats().h2d_bytes;
      d2h += gpu.stats().d2h_bytes;
      busy += gpu.compute_wall_busy();
    }
    st.h2d_window->add(now, static_cast<double>(h2d - st.last_h2d_bytes));
    st.d2h_window->add(now, static_cast<double>(d2h - st.last_d2h_bytes));
    const double utilization =
        static_cast<double>(busy - st.last_compute_busy) /
        (static_cast<double>(window) * static_cast<double>(st.pool.size()));
    st.last_h2d_bytes = h2d;
    st.last_d2h_bytes = d2h;
    st.last_compute_busy = busy;

    double fault_rate = 0.0;
    if (st.fault_plane != nullptr) {
      const std::uint64_t injected = st.fault_plane->stats().injected;
      fault_rate =
          static_cast<double>(injected - st.last_fault_injected) / window_s;
      st.last_fault_injected = injected;
    }

    if (st.config.tracer != nullptr) {
      const std::uint32_t pid = st.config.tracer->process("serve");
      st.config.tracer->counter_set(pid, "prof.jobs_per_s", now,
                                    st.completions->rate_per_s(now));
      st.config.tracer->counter_set(pid, "prof.h2d_gbps", now,
                                    st.h2d_window->sum_per_s(now) / 1e9);
      st.config.tracer->counter_set(pid, "prof.d2h_gbps", now,
                                    st.d2h_window->sum_per_s(now) / 1e9);
      for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
        const std::uint32_t dev_pid = st.config.tracer->process(
            st.pool.device(d).device_name());
        st.config.tracer->counter_set(
            dev_pid, "prof.jobs_per_s", now,
            st.device_completions[d]->rate_per_s(now));
      }
    }

    if (!st.slo.rules().empty()) {
      std::map<std::string, double> values;
      if (st.latency_sketch.count() > 0) {
        const double p50 = st.latency_sketch.quantile(0.50);
        const double p95 = std::max(p50, st.latency_sketch.quantile(0.95));
        const double p99 = std::max(p95, st.latency_sketch.quantile(0.99));
        values["p50_ms"] = p50;
        values["p95_ms"] = p95;
        values["p99_ms"] = p99;
      }
      values["throughput_jobs_per_s"] = st.completions->rate_per_s(now);
      values["queue_depth"] =
          st.queue_depth_window->events(now) > 0
              ? st.queue_depth_window->sum(now) /
                    static_cast<double>(st.queue_depth_window->events(now))
              : static_cast<double>(st.queue.outstanding());
      values["utilization"] = utilization;
      values["fault_rate"] = fault_rate;
      values["h2d_gbps"] = st.h2d_window->sum_per_s(now) / 1e9;
      values["d2h_gbps"] = st.d2h_window->sum_per_s(now) / 1e9;
      st.slo.evaluate(now, values);
    }
  }
}

/// Per-device worker: drains the device's dispatch FIFO one job at a time.
/// Cold jobs first stage their mapped input through the shared host memory
/// bus (one sequential read + one streamed write of input_bytes); warm jobs
/// reuse the dataset the previous same-app job left resident.
sim::Task<> device_worker(ServerState& st, std::uint32_t device_index) {
  cusim::Runtime& device = st.pool.device(device_index);
  hostsim::HostThread staging = st.pool.cpu().make_thread(2);
  staging.set_trace_label(device.device_name() + " staging");
  while (true) {
    std::optional<Job*> item = co_await st.dispatch[device_index]->pop();
    if (!item.has_value()) break;  // channel closed and drained
    Job& job = **item;
    if (st.health.quarantined(device_index)) {
      // The device went down with this job still queued behind it.
      redispatch(st, device_index, job);
      continue;
    }
    if (st.crashed) {
      fail_crashed_job(st, device_index, job);
      continue;
    }
    job.record.start_time = st.sim.now();
    if (!job.record.warm && job.record.input_bytes > 0) {
      staging.read_sequential(kStagingRegionBase + device_index, 0,
                              job.record.input_bytes);
      staging.write_stream(job.record.input_bytes);
      co_await staging.commit();
    }
    job.record.staging_done_time = st.sim.now();
    std::unique_ptr<check::Sanitizer> sanitizer;
    if (st.config.check.enabled) {
      sanitizer =
          std::make_unique<check::Sanitizer>(st.config.check, st.config.metrics);
      sanitizer->install(device.gpu());
    }
    apps::JobRunConfig run_cfg;
    run_cfg.engine = st.config.engine;
    run_cfg.engine.check.enabled = false;  // the server owns the sanitizer
    run_cfg.tracer = st.config.tracer;
    run_cfg.sanitizer = sanitizer.get();
    run_cfg.trace_scope = device.trace_prefix();
    if (!st.caches.empty()) {
      run_cfg.chunk_cache = st.caches[device_index].get();
      run_cfg.pinned_pool = st.pools[device_index].get();
      run_cfg.dataset_id = dataset_id_of(job.record.spec.app);
    }
    if (!st.profilers.empty()) {
      run_cfg.profiler = st.profilers[device_index].get();
    }
    run_cfg.exec_done = &job.record.exec_done_time;
    run_cfg.static_signature = job.static_signature;
    run_cfg.integrity = st.integrity.get();
    // bigkdur: the job runs as a sequence of checkpoint windows with a
    // journal write after each, so a later attempt — redispatch after a
    // failure, or a fresh server over the same journal — resumes from the
    // last checkpoint instead of record zero. Resume is verified: the
    // runner's current output prefix must re-digest to the journaled value,
    // otherwise the output did not survive and the job restarts from zero.
    const std::uint64_t total = job.runner->num_records();
    const std::uint64_t window = st.config.dur.checkpoint_records > 0
                                     ? st.config.dur.checkpoint_records
                                     : total;
    dur::JobJournal* journal = st.config.dur.journal;
    std::uint64_t begin = 0;
    std::uint64_t journaled = 0;
    std::uint64_t windows_done = 0;
    if (journal != nullptr) {
      if (const dur::JobCheckpoint* cp = journal->find(job.record.spec.id)) {
        journaled = cp->records_done;
        // A zero digest means the app has no write-mode streams — its
        // output lives in table state the journal cannot vouch for — so
        // only a nonzero digest match proves the checkpoint survived.
        const std::uint64_t digest =
            cp->records_done > 0 ? job.runner->output_digest(cp->records_done)
                                 : 0;
        if (digest != 0 && digest == cp->output_digest) {
          begin = std::min(cp->records_done, total);
          windows_done = cp->windows_done;
        }
      }
    }
    const std::uint64_t prior = std::max(job.progress, journaled);
    if (begin > 0) {
      ++st.resumed;
      job.record.resumed = true;
      st.trace_serve_instant("job " + std::to_string(job.record.spec.id) +
                             " resumed at record " + std::to_string(begin));
    }
    // Unrecovered faults (retries exhausted, device lost, watchdog timeout,
    // unrepairable integrity mismatch) surface here; anything else — checker
    // violations included — still propagates out of run_server.
    std::exception_ptr failure;
    bool fatal = false;
    bool crashed_out = false;
    for (std::uint64_t wb = begin; wb < total;) {
      if (st.crashed) {
        crashed_out = true;
        break;
      }
      const std::uint64_t we = std::min(wb + window, total);
      run_cfg.rec_begin = wb;
      run_cfg.rec_end = we;
      try {
        co_await job.runner->run(device, run_cfg);
      } catch (const fault::DeviceLostError&) {
        failure = std::current_exception();
        fatal = true;
      } catch (const fault::FaultError&) {
        failure = std::current_exception();
      }
      if (failure != nullptr) break;
      if (we <= prior) ++st.chunks_replayed;
      job.progress = std::max(job.progress, we);
      ++windows_done;
      if (journal != nullptr) {
        const std::uint64_t digest = job.runner->output_digest(we);
        if (we == total) {
          journal->mark_complete(job.record.spec.id, we, digest);
        } else {
          journal->record(job.record.spec.id, we, windows_done, digest);
        }
      }
      wb = we;
    }
    if (sanitizer != nullptr) {
      sanitizer->uninstall();
      if (failure == nullptr) {
        sanitizer->finalize();  // throws check::CheckError on violations
      }
    }
    if (crashed_out) {
      fail_crashed_job(st, device_index, job);
      continue;
    }
    if (failure != nullptr) {
      if (st.health.on_failure(device_index, fatal)) {
        quarantine_device(st, device_index);
      }
      redispatch(st, device_index, job);
      continue;
    }
    st.health.on_success(device_index);
    job.record.finish_time = st.sim.now();
    job.record.completed = true;
    if (job.record.spec.deadline > 0) {
      job.record.deadline_met =
          job.record.finish_time - job.record.spec.submit_time <=
          job.record.spec.deadline;
    }
    st.completion_order.push_back(job.record.spec.id);
    st.scheduler.on_complete(device_index, job.record.input_bytes);
    st.queue.release();
    if (st.qos_mode) {
      --st.tenant_outstanding[job.record.spec.tenant];
      if (st.inflight[device_index] > 0) --st.inflight[device_index];
      st.dispatch_events.increment();
    }
    st.latency_sketch.observe(to_ms(job.record.latency()));
    if (st.scaler_latency != nullptr) {
      st.scaler_latency->observe(to_ms(job.record.latency()));
    }
    if (st.completions != nullptr) {
      st.completions->add(job.record.finish_time);
      st.device_completions[device_index]->add(job.record.finish_time);
    }
    st.settle_job(job);
    if (st.config.tracer != nullptr) {
      const obs::TrackId track =
          st.config.tracer->track("serve", device.device_name());
      st.config.tracer->complete(
          track, job.record.spec.app, job.record.start_time,
          job.record.finish_time, "serve",
          {{"job", static_cast<double>(job.record.spec.id)},
           {"warm", job.record.warm ? 1.0 : 0.0}});
    }
  }
}

/// bigkhetero CPU worker: drains spilled jobs one at a time, running each
/// entirely on the shared host cores (JobRunner::run_cpu — no staging, no
/// DMA, no engine). Completion mirrors device_worker's epilogue minus the
/// device-side bookkeeping (no scheduler slot or health state was taken).
sim::Task<> cpu_worker(ServerState& st) {
  while (true) {
    std::optional<Job*> item = co_await st.cpu_dispatch->pop();
    if (!item.has_value()) break;  // channel closed and drained
    Job& job = **item;
    if (st.crashed) {
      // No device slot was taken for a spilled job; release admission only.
      job.record.failed = true;
      st.queue.release();
      if (st.qos_mode) {
        --st.tenant_outstanding[job.record.spec.tenant];
        st.dispatch_events.increment();
      }
      st.trace_serve_instant("job " + std::to_string(job.record.spec.id) +
                             " failed: server crashed");
      st.settle_job(job);
      continue;
    }
    job.record.start_time = st.sim.now();
    job.record.staging_done_time = job.record.start_time;  // no staging
    apps::CpuJobConfig cpu_cfg;
    cpu_cfg.threads = st.config.hetero.cpu_threads;
    cpu_cfg.exec_done = &job.record.exec_done_time;
    co_await job.runner->run_cpu(st.pool.cpu(), cpu_cfg);
    if (st.config.dur.journal != nullptr) {
      // The CPU path runs the job whole; journal its terminal checkpoint so
      // a restarted server does not redo it.
      const std::uint64_t total = job.runner->num_records();
      st.config.dur.journal->mark_complete(job.record.spec.id, total,
                                           job.runner->output_digest(total));
    }
    job.record.finish_time = st.sim.now();
    job.record.completed = true;
    if (job.record.spec.deadline > 0) {
      job.record.deadline_met =
          job.record.finish_time - job.record.spec.submit_time <=
          job.record.spec.deadline;
    }
    st.completion_order.push_back(job.record.spec.id);
    st.queue.release();
    if (st.qos_mode) {
      --st.tenant_outstanding[job.record.spec.tenant];
      st.dispatch_events.increment();
    }
    ++st.cpu_completed;
    st.latency_sketch.observe(to_ms(job.record.latency()));
    if (st.scaler_latency != nullptr) {
      st.scaler_latency->observe(to_ms(job.record.latency()));
    }
    if (st.completions != nullptr) {
      st.completions->add(job.record.finish_time);
    }
    st.settle_job(job);
    if (st.config.tracer != nullptr) {
      const obs::TrackId track =
          st.config.tracer->track("serve", "cpu spill");
      st.config.tracer->complete(
          track, job.record.spec.app, job.record.start_time,
          job.record.finish_time, "serve",
          {{"job", static_cast<double>(job.record.spec.id)},
           {"spilled", 1.0}});
    }
  }
}

/// bigkload dispatcher: pairs WFQ-ordered admitted jobs with idle placeable
/// devices. Placement is late-bound — the device is chosen at dispatch time
/// from the currently idle set (via the scheduler's eligibility mask), so
/// weighted-fair ordering composes with the configured placement policy
/// instead of fighting it.
sim::Task<> qos_dispatcher(ServerState& st) {
  std::uint64_t seen = 0;
  for (;;) {
    co_await st.dispatch_events.wait_ge(seen + 1);
    seen = st.dispatch_events.value();
    if (st.shutdown) co_return;
    while (!st.qos_queue->empty()) {
      std::vector<std::uint8_t> eligible(st.pool.size(), 0);
      bool any_idle = false;
      for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
        if (st.scheduler.placeable(d) && st.inflight[d] == 0) {
          eligible[d] = 1;
          any_idle = true;
        }
      }
      if (!any_idle) break;
      std::optional<Job*> item = st.qos_queue->pop();
      if (!item.has_value()) break;
      Job& job = **item;
      const std::uint32_t device = st.scheduler.pick_device(
          job.record.spec.app, job.record.input_bytes, &eligible);
      if (device >= st.pool.size()) {
        throw std::logic_error("QoS dispatcher: idle set yielded no device");
      }
      job.record.device = device;
      job.record.warm =
          st.scheduler.resident_app(device) == job.record.spec.app;
      st.scheduler.on_dispatch(device, job.record.spec.app,
                               job.record.input_bytes);
      ++st.inflight[device];
      st.dispatch[device]->push(&job);
    }
  }
}

/// bigkload autoscaler daemon: once per decision period, feeds the period's
/// mean admission-queue depth and p99 latency to the Autoscaler and applies
/// the returned step to the scheduler's active axis. Scale-up wakes the
/// lowest-index parked device (preferring a healthy one); scale-down parks
/// the highest-index active device, whose queued work still drains.
sim::Task<> autoscaler_daemon(ServerState& st) {
  const AutoscalerConfig& cfg = st.config.qos.autoscaler;
  while (!st.shutdown) {
    co_await st.sim.delay(cfg.period);
    if (st.shutdown) break;
    const sim::TimePs now = st.sim.now();
    const double depth =
        st.scaler_depth->events(now) > 0
            ? st.scaler_depth->sum(now) /
                  static_cast<double>(st.scaler_depth->events(now))
            : static_cast<double>(st.queue.outstanding());
    const double p99 = st.scaler_latency->count() > 0
                           ? st.scaler_latency->quantile(0.99)
                           : 0.0;
    // The latency signal is per-period: fresh sketch for the next decision.
    st.scaler_latency = std::make_unique<obs::prof::QuantileSketch>();
    const int step = st.autoscaler->decide(depth, p99, st.active_devices);
    if (step > 0) {
      std::uint32_t pick = st.pool.size();
      for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
        if (st.scheduler.active(d)) continue;
        if (pick == st.pool.size()) pick = d;
        if (!st.health.quarantined(d)) {
          pick = d;
          break;
        }
      }
      if (pick < st.pool.size()) {
        st.scheduler.set_active(pick, true);
        ++st.active_devices;
        st.trace_serve_instant("scale-up dev" + std::to_string(pick));
        if (st.qos_mode) st.dispatch_events.increment();
      }
    } else if (step < 0) {
      for (std::uint32_t d = st.pool.size(); d-- > 0;) {
        if (!st.scheduler.active(d)) continue;
        st.scheduler.set_active(d, false);
        --st.active_devices;
        st.trace_serve_instant("scale-down dev" + std::to_string(d));
        break;
      }
    }
    // Never leave the pool with nothing placeable while a healthy parked
    // device exists (quarantines can empty the active set between periods).
    if (!st.scheduler.any_available()) {
      for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
        if (st.scheduler.active(d) || st.health.quarantined(d)) continue;
        st.scheduler.set_active(d, true);
        ++st.active_devices;
        st.trace_serve_instant("scale-up dev" + std::to_string(d) +
                               " (failover)");
        if (st.qos_mode) st.dispatch_events.increment();
        break;
      }
    }
    st.min_active_seen = std::min(st.min_active_seen, st.active_devices);
    st.max_active_seen = std::max(st.max_active_seen, st.active_devices);
    if (st.config.metrics != nullptr) {
      st.config.metrics->gauge(st.metrics_scope + ".autoscaler.active")
          .set(static_cast<double>(st.active_devices));
    }
    if (st.config.tracer != nullptr) {
      const std::uint32_t pid = st.config.tracer->process("serve");
      st.config.tracer->counter_set(pid, "load.active_devices", now,
                                    static_cast<double>(st.active_devices));
    }
  }
}

sim::Task<> serve_main(ServerState& st) {
  std::vector<sim::Process> clients;
  if (st.qos_mode && st.config.qos.closed_loop) {
    // Group jobs into per-client chains; spec order is preserved inside
    // each, and std::map keys make the spawn order deterministic.
    std::map<std::uint64_t, std::vector<std::size_t>> chains;
    for (std::size_t i = 0; i < st.jobs.size(); ++i) {
      chains[st.jobs[i].record.spec.client].push_back(i);
    }
    clients.reserve(chains.size());
    for (auto& entry : chains) {
      clients.push_back(
          st.sim.spawn(chain_client(st, std::move(entry.second))));
    }
  } else {
    clients.reserve(st.jobs.size());
    for (Job& job : st.jobs) clients.push_back(st.sim.spawn(client(st, job)));
  }
  std::vector<sim::Process> workers;
  workers.reserve(st.pool.size());
  for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
    workers.push_back(st.sim.spawn(device_worker(st, d)));
  }
  sim::Process spill_worker;
  if (st.cpu_dispatch != nullptr) {
    spill_worker = st.sim.spawn(cpu_worker(st));
  }
  sim::Process dispatcher;
  if (st.qos_mode) dispatcher = st.sim.spawn(qos_dispatcher(st));
  sim::Process scaler;
  if (st.autoscaler != nullptr) scaler = st.sim.spawn(autoscaler_daemon(st));
  sim::Process probe;
  if (st.fault_plane != nullptr) {
    probe = st.sim.spawn(probe_daemon(st));
  }
  sim::Process telemetry;
  if (st.config.prof_window > 0) {
    telemetry = st.sim.spawn(telemetry_daemon(st));
  }
  sim::Process crasher;
  if (st.config.dur.crash_at > 0) {
    crasher = st.sim.spawn(crash_daemon(st));
  }
  std::vector<sim::Process> scrubbers;
  if (st.integrity != nullptr && !st.caches.empty() &&
      st.config.dur.scrub_period > 0 && st.config.dur.scrub_entries > 0) {
    scrubbers.reserve(st.pool.size());
    for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
      scrubbers.push_back(st.sim.spawn(scrub_daemon(st, d)));
    }
  }
  for (sim::Process& process : clients) co_await process.join();
  // Redispatch can push a failed job onto another device's queue long after
  // every client returned, so the channels stay open until every job has
  // actually settled (completed, failed, or shed).
  co_await st.all_settled.wait_ge(st.jobs.size());
  st.finish_time = st.sim.now();
  st.shutdown = true;
  if (st.qos_mode) st.dispatch_events.increment();  // wake for shutdown
  for (auto& channel : st.dispatch) channel->close();
  if (st.cpu_dispatch != nullptr) st.cpu_dispatch->close();
  for (sim::Process& process : workers) co_await process.join();
  if (spill_worker.valid()) co_await spill_worker.join();
  if (dispatcher.valid()) co_await dispatcher.join();
  if (scaler.valid()) co_await scaler.join();
  if (probe.valid()) co_await probe.join();
  if (telemetry.valid()) co_await telemetry.join();
  if (crasher.valid()) co_await crasher.join();
  for (sim::Process& scrubber : scrubbers) co_await scrubber.join();
}

}  // namespace

ServeReport run_server(const ServerConfig& config,
                       const std::vector<JobSpec>& specs,
                       const std::vector<apps::BenchApp>& suite) {
  ServerState state(config);
  state.jobs.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    Job job;
    job.record.spec = spec;
    if (state.qos_mode && spec.tenant >= config.qos.tenants.size()) {
      throw std::invalid_argument(
          "job " + std::to_string(spec.id) + " names tenant index " +
          std::to_string(spec.tenant) + " but only " +
          std::to_string(config.qos.tenants.size()) +
          " tenants are configured");
    }
    if (state.qos_mode && config.qos.closed_loop) {
      job.done = std::make_unique<sim::Flag>(state.sim);
    }
    const apps::BenchApp& app = apps::find_app(suite, spec.app);
    if (config.require_verified) {
      // bigkstatic gate: refuse kernels the static verifier rejects, naming
      // the first violation so the submitter can find the offending line.
      const verify::KernelReport& verdict = apps::static_verdict(app);
      if (!verdict.passed) {
        const std::string reason =
            verdict.violations.empty()
                ? std::string("static verification failed")
                : verify::violation_line(verdict.violations.front());
        throw std::invalid_argument("app \"" + spec.app +
                                    "\" refused admission: " + reason);
      }
      job.static_signature = verdict.pattern_signature;
    }
    job.runner = app.make_runner();
    job.record.input_bytes = job.runner->input_bytes();
    state.jobs.push_back(std::move(job));
  }

  state.sim.run_until_complete(serve_main(state));

  ServeReport report;
  report.makespan = state.finish_time;
  report.completion_order = std::move(state.completion_order);
  report.rejections = state.queue.rejected();
  report.rejections_queue_full = state.queue.rejected(RejectCause::kQueueFull);
  report.rejections_no_device = state.queue.rejected(RejectCause::kNoDevice);
  report.rejections_tenant_quota =
      state.queue.rejected(RejectCause::kTenantQuota);
  report.peak_queue_depth = state.queue.peak_depth();
  report.spills = state.spills;
  report.cpu_completed = state.cpu_completed;
  report.quarantines = state.health.quarantines();
  report.reinstatements = state.health.reinstatements();
  if (state.fault_plane != nullptr) {
    const fault::FaultStats& fs = state.fault_plane->stats();
    report.fault_injected = fs.injected;
    report.fault_recovered = fs.recovered;
    report.bitflips_injected =
        fs.injected_by_kind[static_cast<std::size_t>(
            fault::FaultKind::kBitflipDma)] +
        fs.injected_by_kind[static_cast<std::size_t>(
            fault::FaultKind::kBitflipCache)] +
        fs.injected_by_kind[static_cast<std::size_t>(
            fault::FaultKind::kBitflipWriteback)];
  }
  if (state.integrity != nullptr) {
    const dur::IntegrityStats& ds = state.integrity->stats();
    report.integrity_verified = ds.verified;
    report.integrity_detected = ds.detected;
    report.integrity_repaired = ds.repaired;
    report.scrub_checked = ds.scrubbed;
    report.scrub_evictions = ds.scrub_evictions;
  }
  report.resumed = state.resumed;
  report.chunks_replayed = state.chunks_replayed;
  report.crashed = state.crashed;
  report.devices.resize(state.pool.size());

  JobRecord::Breakdown breakdown_sums;
  for (Job& job : state.jobs) {
    const JobRecord& record = job.record;
    report.redispatches += record.redispatches;
    if (record.completed) {
      ++report.completed;
      const JobRecord::Breakdown b = record.breakdown();
      breakdown_sums.admission += b.admission;
      breakdown_sums.queue += b.queue;
      breakdown_sums.staging += b.staging;
      breakdown_sums.execution += b.execution;
      breakdown_sums.writeback += b.writeback;
      if (!record.cpu_executed) {
        // Spilled jobs completed on the host cores, not on record.device.
        DeviceReport& dev = report.devices[record.device];
        ++dev.jobs;
        if (record.warm) {
          ++dev.warm_jobs;
          ++report.warm_hits;
        }
      }
      if (!record.deadline_met) ++report.deadline_misses;
    } else if (record.failed) {
      ++report.failed_jobs;
    } else if (!record.admitted) {
      ++report.dropped;
    }
    report.jobs.push_back(record);
  }

  if (state.latency_sketch.count() > 0) {
    // Streaming P² estimates, clamped monotone so p50 <= p95 <= p99 always
    // holds in the report (the per-quantile cells are independent).
    const double p50_ms = state.latency_sketch.quantile(0.50);
    const double p95_ms = std::max(p50_ms, state.latency_sketch.quantile(0.95));
    const double p99_ms = std::max(p95_ms, state.latency_sketch.quantile(0.99));
    const auto to_ps = [](double ms) {
      return static_cast<sim::DurationPs>(ms * 1e9 + 0.5);
    };
    report.latency_p50 = to_ps(p50_ms);
    report.latency_p95 = to_ps(p95_ms);
    report.latency_p99 = to_ps(p99_ms);
  }
  if (report.completed > 0) {
    const double n = static_cast<double>(report.completed);
    report.breakdown_admission_ms = to_ms(breakdown_sums.admission) / n;
    report.breakdown_queue_ms = to_ms(breakdown_sums.queue) / n;
    report.breakdown_staging_ms = to_ms(breakdown_sums.staging) / n;
    report.breakdown_execution_ms = to_ms(breakdown_sums.execution) / n;
    report.breakdown_writeback_ms = to_ms(breakdown_sums.writeback) / n;
    report.breakdown_total_ms = to_ms(breakdown_sums.total()) / n;
  }
  report.slo_rules = state.slo.rules().size();
  report.slo_violations = state.slo.violations();
  if (report.makespan > 0) {
    report.throughput_jobs_per_s = static_cast<double>(report.completed) /
                                   (static_cast<double>(report.makespan) * 1e-12);
  }
  for (std::uint32_t d = 0; d < state.pool.size(); ++d) {
    const gpusim::Gpu& gpu = state.pool.device(d).gpu();
    DeviceReport& dev = report.devices[d];
    dev.h2d_bytes = gpu.stats().h2d_bytes;
    dev.d2h_bytes = gpu.stats().d2h_bytes;
    dev.kernel_launches = gpu.stats().kernel_launches;
    if (report.makespan > 0) {
      dev.utilization = static_cast<double>(gpu.compute_wall_busy()) /
                        static_cast<double>(report.makespan);
    }
    if (!state.caches.empty()) {
      const cache::ChunkCache::Stats& stats = state.caches[d]->stats();
      dev.cache_hits = stats.hits;
      dev.cache_misses = stats.misses;
      dev.cache_evictions = stats.evictions;
      dev.cache_bytes_saved = stats.bytes_saved;
      dev.cache_hit_rate = state.caches[d]->hit_rate();
      report.cache_hits += stats.hits;
      report.cache_misses += stats.misses;
      report.cache_bytes_saved += stats.bytes_saved;
    }
    if (!state.profilers.empty()) {
      const obs::prof::StageProfiler& prof = *state.profilers[d];
      sim::DurationPs busy_sum = 0;
      for (obs::Stage stage : obs::all_stages()) {
        busy_sum += prof.stage_busy(stage);
      }
      if (busy_sum > 0) {
        dev.bottleneck_stage =
            static_cast<std::int32_t>(obs::stage_index(prof.bottleneck()));
        dev.overlap_efficiency = prof.overlap_efficiency(report.makespan);
      }
      dev.prof_windows = prof.window_count();
      dev.bottleneck_flips = prof.bottleneck_flips();
    }
  }
  if (!state.profilers.empty()) {
    std::array<sim::DurationPs, obs::kStageCount> pool_busy{};
    for (const auto& prof : state.profilers) {
      for (obs::Stage stage : obs::all_stages()) {
        pool_busy[obs::stage_index(stage)] += prof->stage_busy(stage);
      }
      report.prof_windows += prof->window_count();
      report.bottleneck_flips += prof->bottleneck_flips();
    }
    sim::DurationPs busy_sum = 0;
    std::size_t best = 0;
    for (std::size_t s = 0; s < obs::kStageCount; ++s) {
      busy_sum += pool_busy[s];
      if (pool_busy[s] > pool_busy[best]) best = s;
    }
    if (busy_sum > 0) {
      report.bottleneck_stage = static_cast<std::int32_t>(best);
      report.overlap_efficiency =
          std::max(0.0, 1.0 - static_cast<double>(report.makespan) /
                                  static_cast<double>(busy_sum));
    }
  }
  if (report.cache_hits + report.cache_misses > 0) {
    report.cache_hit_rate =
        static_cast<double>(report.cache_hits) /
        static_cast<double>(report.cache_hits + report.cache_misses);
  }

  // --- bigkload QoS plane --------------------------------------------------
  report.min_active_devices = state.min_active_seen;
  report.max_active_devices = state.max_active_seen;
  report.final_active_devices = state.active_devices;
  if (state.autoscaler != nullptr) {
    report.scale_ups = state.autoscaler->scale_ups();
    report.scale_downs = state.autoscaler->scale_downs();
  }
  const double makespan_s = static_cast<double>(report.makespan) * 1e-12;
  std::uint64_t goodput_jobs = 0;
  for (const JobRecord& record : report.jobs) {
    if (record.completed && record.deadline_met) ++goodput_jobs;
  }
  report.slo_attained = goodput_jobs;
  if (makespan_s > 0) {
    report.goodput_jobs_per_s = static_cast<double>(goodput_jobs) / makespan_s;
  }
  sim::TimePs offered_window = config.qos.offered_window;
  if (offered_window == 0) {
    for (const JobRecord& record : report.jobs) {
      offered_window = std::max(offered_window, record.spec.submit_time);
    }
  }
  if (offered_window > 0) {
    report.offered_jobs_per_s = static_cast<double>(report.jobs.size()) /
                                (static_cast<double>(offered_window) * 1e-12);
  }
  if (state.qos_mode) {
    const std::vector<TenantConfig>& tenants_cfg = config.qos.tenants;
    report.tenants.resize(tenants_cfg.size());
    std::vector<obs::prof::QuantileSketch> sketches(tenants_cfg.size());
    std::vector<std::uint64_t> tenant_goodput(tenants_cfg.size(), 0);
    for (std::size_t t = 0; t < tenants_cfg.size(); ++t) {
      report.tenants[t].name = tenants_cfg[t].name;
      report.tenants[t].slo = tenants_cfg[t].slo;
      report.tenants[t].weight = tenants_cfg[t].weight;
    }
    for (const JobRecord& record : report.jobs) {
      TenantReport& tenant = report.tenants[record.spec.tenant];
      ++tenant.submitted;
      tenant.rejections += record.rejections;
      if (record.completed) {
        ++tenant.completed;
        sketches[record.spec.tenant].observe(to_ms(record.latency()));
        if (record.spec.deadline > 0) {
          if (record.deadline_met) {
            ++tenant.deadline_hits;
          } else {
            ++tenant.deadline_misses;
          }
        }
        if (record.deadline_met) ++tenant_goodput[record.spec.tenant];
      } else if (record.failed) {
        ++tenant.failed;
      } else if (!record.admitted) {
        ++tenant.shed;
      }
    }
    std::vector<double> normalized;
    for (std::size_t t = 0; t < tenants_cfg.size(); ++t) {
      TenantReport& tenant = report.tenants[t];
      if (sketches[t].count() > 0) {
        const double p50 = sketches[t].quantile(0.50);
        const double p95 = std::max(p50, sketches[t].quantile(0.95));
        const double p99 = std::max(p95, sketches[t].quantile(0.99));
        const auto quantile_ps = [](double ms) {
          return static_cast<sim::DurationPs>(ms * 1e9 + 0.5);
        };
        tenant.latency_p50 = quantile_ps(p50);
        tenant.latency_p95 = quantile_ps(p95);
        tenant.latency_p99 = quantile_ps(p99);
      }
      if (makespan_s > 0) {
        tenant.throughput_jobs_per_s =
            static_cast<double>(tenant.completed) / makespan_s;
        tenant.goodput_jobs_per_s =
            static_cast<double>(tenant_goodput[t]) / makespan_s;
      }
      if (tenant.submitted > 0) {
        tenant.slo_attainment = static_cast<double>(tenant_goodput[t]) /
                                static_cast<double>(tenant.submitted);
      }
      // Weight-0 background tenants are excluded: they hold no fair-share
      // entitlement, so they neither lift nor sink the index.
      if (tenant.weight > 0) {
        normalized.push_back(tenant.goodput_jobs_per_s /
                             static_cast<double>(tenant.weight));
      }
    }
    report.fairness_jain = jain_index(normalized);
  }

  if (config.metrics != nullptr) {
    const std::string prefix =
        config.metrics_prefix.empty()
            ? std::string("serve.") + policy_name(config.policy) +
                  ".devices" + std::to_string(state.pool.size())
            : config.metrics_prefix;
    report.export_metrics(*config.metrics, prefix);
  }
  return report;
}

void ServeReport::export_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.gauge(prefix + ".jobs").set(static_cast<double>(jobs.size()));
  registry.gauge(prefix + ".completed").set(static_cast<double>(completed));
  registry.gauge(prefix + ".dropped").set(static_cast<double>(dropped));
  registry.gauge(prefix + ".rejections").set(static_cast<double>(rejections));
  registry.gauge(prefix + ".deadline_misses")
      .set(static_cast<double>(deadline_misses));
  registry.gauge(prefix + ".warm_hits").set(static_cast<double>(warm_hits));
  registry.gauge(prefix + ".failed_jobs").set(static_cast<double>(failed_jobs));
  registry.gauge(prefix + ".redispatches")
      .set(static_cast<double>(redispatches));
  registry.gauge(prefix + ".quarantines").set(static_cast<double>(quarantines));
  registry.gauge(prefix + ".reinstatements")
      .set(static_cast<double>(reinstatements));
  registry.gauge(prefix + ".rejections.queue_full")
      .set(static_cast<double>(rejections_queue_full));
  registry.gauge(prefix + ".rejections.no_device")
      .set(static_cast<double>(rejections_no_device));
  registry.gauge(prefix + ".hetero.spills").set(static_cast<double>(spills));
  registry.gauge(prefix + ".hetero.cpu_completed")
      .set(static_cast<double>(cpu_completed));
  registry.gauge(prefix + ".fault.injected")
      .set(static_cast<double>(fault_injected));
  registry.gauge(prefix + ".fault.recovered")
      .set(static_cast<double>(fault_recovered));
  registry.gauge(prefix + ".dur.verified")
      .set(static_cast<double>(integrity_verified));
  registry.gauge(prefix + ".dur.detected")
      .set(static_cast<double>(integrity_detected));
  registry.gauge(prefix + ".dur.repaired")
      .set(static_cast<double>(integrity_repaired));
  registry.gauge(prefix + ".dur.injected")
      .set(static_cast<double>(bitflips_injected));
  registry.gauge(prefix + ".dur.scrub_checked")
      .set(static_cast<double>(scrub_checked));
  registry.gauge(prefix + ".dur.scrub_evictions")
      .set(static_cast<double>(scrub_evictions));
  registry.gauge(prefix + ".dur.resumed").set(static_cast<double>(resumed));
  registry.gauge(prefix + ".dur.chunks_replayed")
      .set(static_cast<double>(chunks_replayed));
  registry.gauge(prefix + ".dur.crashed").set(crashed ? 1.0 : 0.0);
  registry.gauge(prefix + ".cache.hits").set(static_cast<double>(cache_hits));
  registry.gauge(prefix + ".cache.misses")
      .set(static_cast<double>(cache_misses));
  registry.gauge(prefix + ".cache.bytes_saved")
      .set(static_cast<double>(cache_bytes_saved));
  registry.gauge(prefix + ".cache.hit_rate").set(cache_hit_rate);
  registry.gauge(prefix + ".peak_queue_depth")
      .set(static_cast<double>(peak_queue_depth));
  registry.gauge(prefix + ".makespan_ms").set(to_ms(makespan));
  registry.gauge(prefix + ".latency_p50_ms").set(to_ms(latency_p50));
  registry.gauge(prefix + ".latency_p95_ms").set(to_ms(latency_p95));
  registry.gauge(prefix + ".latency_p99_ms").set(to_ms(latency_p99));
  registry.gauge(prefix + ".throughput_jobs_per_s").set(throughput_jobs_per_s);
  registry.gauge(prefix + ".prof.bottleneck_stage")
      .set(static_cast<double>(bottleneck_stage));
  registry.gauge(prefix + ".prof.overlap_efficiency").set(overlap_efficiency);
  registry.gauge(prefix + ".prof.windows")
      .set(static_cast<double>(prof_windows));
  registry.gauge(prefix + ".prof.bottleneck_flips")
      .set(static_cast<double>(bottleneck_flips));
  registry.gauge(prefix + ".breakdown.admission_ms").set(breakdown_admission_ms);
  registry.gauge(prefix + ".breakdown.queue_ms").set(breakdown_queue_ms);
  registry.gauge(prefix + ".breakdown.staging_ms").set(breakdown_staging_ms);
  registry.gauge(prefix + ".breakdown.execution_ms").set(breakdown_execution_ms);
  registry.gauge(prefix + ".breakdown.writeback_ms").set(breakdown_writeback_ms);
  registry.gauge(prefix + ".breakdown.total_ms").set(breakdown_total_ms);
  registry.gauge(prefix + ".slo.rules").set(static_cast<double>(slo_rules));
  registry.gauge(prefix + ".slo.violations")
      .set(static_cast<double>(slo_violations));
  registry.gauge(prefix + ".rejections.tenant_quota")
      .set(static_cast<double>(rejections_tenant_quota));
  registry.gauge(prefix + ".load.offered_jobs_per_s").set(offered_jobs_per_s);
  registry.gauge(prefix + ".load.goodput_jobs_per_s").set(goodput_jobs_per_s);
  registry.gauge(prefix + ".load.slo_attained")
      .set(static_cast<double>(slo_attained));
  registry.gauge(prefix + ".fairness.jain").set(fairness_jain);
  registry.gauge(prefix + ".autoscaler.scale_ups")
      .set(static_cast<double>(scale_ups));
  registry.gauge(prefix + ".autoscaler.scale_downs")
      .set(static_cast<double>(scale_downs));
  registry.gauge(prefix + ".autoscaler.min_active")
      .set(static_cast<double>(min_active_devices));
  registry.gauge(prefix + ".autoscaler.max_active")
      .set(static_cast<double>(max_active_devices));
  registry.gauge(prefix + ".autoscaler.final_active")
      .set(static_cast<double>(final_active_devices));
  for (const TenantReport& tenant : tenants) {
    const std::string tenant_prefix = prefix + ".tenant." + tenant.name;
    registry.gauge(tenant_prefix + ".weight")
        .set(static_cast<double>(tenant.weight));
    registry.gauge(tenant_prefix + ".submitted")
        .set(static_cast<double>(tenant.submitted));
    registry.gauge(tenant_prefix + ".completed")
        .set(static_cast<double>(tenant.completed));
    registry.gauge(tenant_prefix + ".shed")
        .set(static_cast<double>(tenant.shed));
    registry.gauge(tenant_prefix + ".goodput_jobs_per_s")
        .set(tenant.goodput_jobs_per_s);
    registry.gauge(tenant_prefix + ".attainment").set(tenant.slo_attainment);
    registry.gauge(tenant_prefix + ".p99_ms").set(to_ms(tenant.latency_p99));
  }
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const std::string dev_prefix = prefix + ".dev" + std::to_string(d);
    registry.gauge(dev_prefix + ".utilization").set(devices[d].utilization);
    registry.gauge(dev_prefix + ".jobs")
        .set(static_cast<double>(devices[d].jobs));
    registry.gauge(dev_prefix + ".warm_jobs")
        .set(static_cast<double>(devices[d].warm_jobs));
    registry.gauge(dev_prefix + ".bottleneck_stage")
        .set(static_cast<double>(devices[d].bottleneck_stage));
  }
}

void ServeReport::write_json(std::ostream& out) const {
  out << "{\"makespan_ms\":" << obs::json_number(to_ms(makespan))
      << ",\"jobs\":" << jobs.size() << ",\"completed\":" << completed
      << ",\"dropped\":" << dropped << ",\"rejections\":" << rejections
      << ",\"deadline_misses\":" << deadline_misses
      << ",\"warm_hits\":" << warm_hits
      << ",\"peak_queue_depth\":" << peak_queue_depth
      << ",\"fault\":{\"injected\":" << fault_injected
      << ",\"recovered\":" << fault_recovered
      << ",\"failed_jobs\":" << failed_jobs
      << ",\"redispatches\":" << redispatches
      << ",\"quarantines\":" << quarantines
      << ",\"reinstatements\":" << reinstatements
      << ",\"rejections_queue_full\":" << rejections_queue_full
      << ",\"rejections_no_device\":" << rejections_no_device << "}"
      << ",\"dur\":{\"verified\":" << integrity_verified
      << ",\"detected\":" << integrity_detected
      << ",\"repaired\":" << integrity_repaired
      << ",\"injected\":" << bitflips_injected
      << ",\"scrub_checked\":" << scrub_checked
      << ",\"scrub_evictions\":" << scrub_evictions
      << ",\"resumed\":" << resumed
      << ",\"chunks_replayed\":" << chunks_replayed
      << ",\"crashed\":" << (crashed ? "true" : "false") << "}"
      << ",\"hetero\":{\"spills\":" << spills
      << ",\"cpu_completed\":" << cpu_completed << "}"
      << ",\"cache\":{\"hits\":" << cache_hits << ",\"misses\":" << cache_misses
      << ",\"bytes_saved\":" << cache_bytes_saved
      << ",\"hit_rate\":" << obs::json_number(cache_hit_rate) << "}"
      << ",\"throughput_jobs_per_s\":"
      << obs::json_number(throughput_jobs_per_s) << ",\"latency_ms\":{"
      << "\"p50\":" << obs::json_number(to_ms(latency_p50))
      << ",\"p95\":" << obs::json_number(to_ms(latency_p95))
      << ",\"p99\":" << obs::json_number(to_ms(latency_p99)) << "}"
      << ",\"prof\":{\"bottleneck_stage\":"
      << obs::json_quote(
             bottleneck_stage >= 0 &&
                     bottleneck_stage <
                         static_cast<std::int32_t>(obs::kStageCount)
                 ? obs::stage_name(static_cast<obs::Stage>(bottleneck_stage))
                 : "n/a")
      << ",\"overlap_efficiency\":" << obs::json_number(overlap_efficiency)
      << ",\"windows\":" << prof_windows
      << ",\"bottleneck_flips\":" << bottleneck_flips << "}"
      << ",\"breakdown_ms\":{\"admission\":"
      << obs::json_number(breakdown_admission_ms)
      << ",\"queue\":" << obs::json_number(breakdown_queue_ms)
      << ",\"staging\":" << obs::json_number(breakdown_staging_ms)
      << ",\"execution\":" << obs::json_number(breakdown_execution_ms)
      << ",\"writeback\":" << obs::json_number(breakdown_writeback_ms)
      << ",\"total\":" << obs::json_number(breakdown_total_ms) << "}"
      << ",\"slo\":{\"rules\":" << slo_rules
      << ",\"violations\":" << slo_violations << "}"
      << ",\"load\":{\"offered_jobs_per_s\":"
      << obs::json_number(offered_jobs_per_s) << ",\"goodput_jobs_per_s\":"
      << obs::json_number(goodput_jobs_per_s)
      << ",\"slo_attained\":" << slo_attained
      << ",\"fairness_jain\":" << obs::json_number(fairness_jain)
      << ",\"rejections_tenant_quota\":" << rejections_tenant_quota << "}"
      << ",\"autoscaler\":{\"scale_ups\":" << scale_ups
      << ",\"scale_downs\":" << scale_downs
      << ",\"min_active\":" << min_active_devices
      << ",\"max_active\":" << max_active_devices
      << ",\"final_active\":" << final_active_devices << "}"
      << ",\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (t > 0) out << ',';
    const TenantReport& tenant = tenants[t];
    out << "{\"name\":" << obs::json_quote(tenant.name)
        << ",\"class\":" << obs::json_quote(slo_class_name(tenant.slo))
        << ",\"weight\":" << tenant.weight
        << ",\"submitted\":" << tenant.submitted
        << ",\"completed\":" << tenant.completed << ",\"shed\":" << tenant.shed
        << ",\"failed\":" << tenant.failed
        << ",\"rejections\":" << tenant.rejections
        << ",\"deadline_hits\":" << tenant.deadline_hits
        << ",\"deadline_misses\":" << tenant.deadline_misses
        << ",\"latency_ms\":{\"p50\":"
        << obs::json_number(to_ms(tenant.latency_p50))
        << ",\"p95\":" << obs::json_number(to_ms(tenant.latency_p95))
        << ",\"p99\":" << obs::json_number(to_ms(tenant.latency_p99)) << "}"
        << ",\"throughput_jobs_per_s\":"
        << obs::json_number(tenant.throughput_jobs_per_s)
        << ",\"goodput_jobs_per_s\":"
        << obs::json_number(tenant.goodput_jobs_per_s)
        << ",\"attainment\":" << obs::json_number(tenant.slo_attainment)
        << "}";
  }
  out << "],\"devices\":[";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    if (d > 0) out << ',';
    const DeviceReport& dev = devices[d];
    out << "{\"device\":" << d << ",\"jobs\":" << dev.jobs
        << ",\"warm_jobs\":" << dev.warm_jobs
        << ",\"utilization\":" << obs::json_number(dev.utilization)
        << ",\"h2d_bytes\":" << dev.h2d_bytes
        << ",\"d2h_bytes\":" << dev.d2h_bytes
        << ",\"kernel_launches\":" << dev.kernel_launches
        << ",\"cache_hits\":" << dev.cache_hits
        << ",\"cache_misses\":" << dev.cache_misses
        << ",\"cache_evictions\":" << dev.cache_evictions
        << ",\"cache_bytes_saved\":" << dev.cache_bytes_saved
        << ",\"bottleneck_stage\":" << dev.bottleneck_stage
        << ",\"overlap_efficiency\":"
        << obs::json_number(dev.overlap_efficiency) << "}";
  }
  out << "],\"completion_order\":[";
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (i > 0) out << ',';
    out << completion_order[i];
  }
  out << "],\"job_records\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0) out << ',';
    const JobRecord& record = jobs[i];
    out << "{\"id\":" << record.spec.id
        << ",\"app\":" << obs::json_quote(record.spec.app)
        << ",\"device\":" << record.device
        << ",\"submit_ms\":" << obs::json_number(to_ms(record.spec.submit_time))
        << ",\"latency_ms\":" << obs::json_number(to_ms(record.latency()))
        << ",\"rejections\":" << record.rejections
        << ",\"redispatches\":" << record.redispatches
        << ",\"admitted\":" << (record.admitted ? "true" : "false")
        << ",\"completed\":" << (record.completed ? "true" : "false")
        << ",\"failed\":" << (record.failed ? "true" : "false")
        << ",\"warm\":" << (record.warm ? "true" : "false")
        << ",\"cpu_executed\":" << (record.cpu_executed ? "true" : "false")
        << ",\"resumed\":" << (record.resumed ? "true" : "false")
        << ",\"deadline_met\":" << (record.deadline_met ? "true" : "false");
    const JobRecord::Breakdown b = record.breakdown();
    out << ",\"breakdown_ms\":{\"admission\":"
        << obs::json_number(to_ms(b.admission))
        << ",\"queue\":" << obs::json_number(to_ms(b.queue))
        << ",\"staging\":" << obs::json_number(to_ms(b.staging))
        << ",\"execution\":" << obs::json_number(to_ms(b.execution))
        << ",\"writeback\":" << obs::json_number(to_ms(b.writeback)) << "}}";
  }
  out << "]}";
}

}  // namespace bigk::serve
