#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "cache/key.hpp"
#include "cache/pinned_pool.hpp"
#include "check/sanitizer.hpp"
#include "cusim/device_pool.hpp"
#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "serve/health.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace bigk::serve {

namespace {

/// Host cache-model region ids for the per-device input-staging scans (far
/// above core::kStreamRegionBase so they never collide with mapped streams).
constexpr std::uint32_t kStagingRegionBase = 9000;

/// Cache dataset identity of an app's generated input: apps regenerate the
/// same dataset from the same seed on every runner, so the app name is the
/// dataset.
std::uint64_t dataset_id_of(const std::string& app) {
  cache::Fnv1a hash;
  hash.mix_bytes(app.data(), app.size());
  return hash.state;
}

struct Job {
  JobRecord record;
  std::unique_ptr<apps::JobRunner> runner;
};

struct ServerState {
  const ServerConfig& config;
  sim::Simulation sim;
  cusim::DevicePool pool;
  JobQueue queue;
  Scheduler scheduler;
  HealthMonitor health;
  /// One FIFO per device; its worker is the single consumer, so jobs on one
  /// device serialize in dispatch order.
  std::vector<std::unique_ptr<sim::Channel<Job*>>> dispatch;
  std::vector<Job> jobs;
  std::vector<std::uint64_t> completion_order;
  /// bigkcache: one chunk cache + pinned pool per device (empty when the
  /// cache is disabled). Shared by every job dispatched to that device.
  std::vector<std::unique_ptr<cache::ChunkCache>> caches;
  std::vector<std::unique_ptr<cache::PinnedPool>> pools;
  /// bigkfault: the pool-wide fault plane (null without a fault_spec).
  std::unique_ptr<fault::FaultPlane> fault_plane;
  /// Jobs settled (completed, failed, or shed); serve_main waits for all of
  /// them before shutting the workers and the probe daemon down.
  std::uint64_t settled = 0;
  sim::Flag all_settled{sim};
  bool shutdown = false;
  /// Captured when the last job settles, before the shutdown handshake, so
  /// the makespan never includes a trailing probe tick.
  sim::TimePs finish_time = 0;

  explicit ServerState(const ServerConfig& cfg)
      : config(cfg),
        pool(sim, cfg.system, cfg.devices),
        queue(JobQueue::Config{cfg.queue_depth, cfg.retry_after,
                               cfg.retry_after_cap, cfg.retry_jitter_seed}),
        scheduler(cfg.policy, pool.size()),
        health(pool.size(), HealthMonitor::Config{cfg.quarantine_after}) {
    pool.attach_observability(cfg.tracer, cfg.metrics);
    if (!cfg.fault_spec.empty()) {
      fault_plane = std::make_unique<fault::FaultPlane>(cfg.fault_seed);
      fault_plane->add_all(fault::FaultSpec::parse(cfg.fault_spec));
      fault_plane->attach_observability(cfg.metrics, cfg.tracer);
      pool.set_fault_plane(fault_plane.get());
    }
    for (std::uint32_t d = 0; d < pool.size(); ++d) {
      dispatch.push_back(std::make_unique<sim::Channel<Job*>>(sim));
    }
    if (cfg.cache_enabled) {
      const std::uint64_t capacity =
          cfg.cache_bytes != 0 ? cfg.cache_bytes
                               : cfg.system.gpu.global_memory_bytes / 4;
      for (std::uint32_t d = 0; d < pool.size(); ++d) {
        cusim::Runtime& device = pool.device(d);
        auto chunk_cache = std::make_unique<cache::ChunkCache>(
            device.gpu().memory(),
            cache::ChunkCache::Config{capacity, cfg.cache_eviction});
        chunk_cache->attach_observability(cfg.metrics, cfg.tracer,
                                          device.device_name());
        caches.push_back(std::move(chunk_cache));
        pools.push_back(std::make_unique<cache::PinnedPool>(device));
      }
      // Warm-preference bound: what an affinity hit would actually save —
      // the staged input skip plus the PCIe bytes the device's cache holds
      // for this app's dataset.
      scheduler.set_warm_benefit(
          [this](std::uint32_t device, const std::string& app,
                 std::uint64_t input_bytes) {
            return input_bytes +
                   caches[device]->resident_bytes(dataset_id_of(app));
          });
    }
  }

  void settle_one() { all_settled.advance_to(++settled); }

  void trace_serve_instant(const std::string& name) {
    if (config.tracer == nullptr) return;
    const obs::TrackId track = config.tracer->track("serve", "health");
    config.tracer->instant(track, name, sim.now(), "serve");
  }
};

/// One submitting client: waits until the job's arrival time, then keeps
/// resubmitting through admission control until accepted or out of retries.
/// Rejections — queue full, or the whole pool quarantined — return an
/// escalating per-client retry-after hint the client honors verbatim.
sim::Task<> client(ServerState& st, Job& job) {
  if (job.record.spec.submit_time > 0) {
    co_await st.sim.delay(job.record.spec.submit_time);
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    sim::DurationPs retry_after = 0;
    if (!st.scheduler.any_available()) {
      retry_after = st.queue.reject(RejectCause::kNoDevice, job.record.spec.id);
    } else {
      const JobQueue::Admission admission =
          st.queue.try_admit(job.record.spec.id);
      if (admission.accepted) {
        job.record.admitted = true;
        job.record.admit_time = st.sim.now();
        const std::uint32_t device = st.scheduler.pick_device(
            job.record.spec.app, job.record.input_bytes);
        job.record.device = device;
        job.record.warm =
            st.scheduler.resident_app(device) == job.record.spec.app;
        st.scheduler.on_dispatch(device, job.record.spec.app,
                                 job.record.input_bytes);
        st.dispatch[device]->push(&job);
        co_return;  // settles when its worker finishes it
      }
      retry_after = admission.retry_after;
    }
    ++job.record.rejections;
    if (attempt >= st.config.max_retries) {  // shed for good
      st.settle_one();
      co_return;
    }
    co_await st.sim.delay(retry_after);
  }
}

/// Hands an admitted job that cannot run on `from_device` (its run failed,
/// or it was queued behind a quarantine) to the best available device; with
/// the whole pool quarantined the job is abandoned as failed.
void redispatch(ServerState& st, std::uint32_t from_device, Job& job) {
  st.scheduler.on_complete(from_device, job.record.input_bytes);
  const std::uint32_t target =
      st.scheduler.any_available()
          ? st.scheduler.pick_device(job.record.spec.app,
                                     job.record.input_bytes)
          : st.pool.size();
  if (target >= st.pool.size()) {
    job.record.failed = true;
    st.queue.release();
    st.trace_serve_instant("job " + std::to_string(job.record.spec.id) +
                           " failed: no device");
    st.settle_one();
    return;
  }
  ++job.record.redispatches;
  job.record.device = target;
  job.record.warm = st.scheduler.resident_app(target) == job.record.spec.app;
  st.scheduler.on_dispatch(target, job.record.spec.app,
                           job.record.input_bytes);
  st.dispatch[target]->push(&job);
}

/// Quarantine transition for `device`: no new placements, and its chunk
/// cache is dropped as a device reset (device memory is not trusted across
/// the outage; pipecheck flags any read through a surviving lease).
void quarantine_device(ServerState& st, std::uint32_t device) {
  st.scheduler.set_available(device, false);
  if (!st.caches.empty()) {
    st.caches[device]->invalidate_all(st.sim.now(), /*device_reset=*/true);
  }
  if (st.config.metrics != nullptr) {
    st.config.metrics->counter("serve.quarantines").add(1);
  }
  st.trace_serve_instant("quarantine dev" + std::to_string(device));
}

/// Periodically probes quarantined devices and reinstates the ones whose
/// outage has elapsed (for a device that was never lost — quarantined on
/// consecutive DMA failures — the first probe succeeds).
sim::Task<> probe_daemon(ServerState& st) {
  while (!st.shutdown) {
    co_await st.sim.delay(st.config.probe_interval);
    if (st.shutdown) break;
    for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
      if (!st.health.quarantined(d)) continue;
      if (!st.fault_plane->probe_device(d, st.sim.now())) continue;
      st.health.reinstate(d);
      st.scheduler.set_available(d, true);
      if (st.config.metrics != nullptr) {
        st.config.metrics->counter("serve.reinstatements").add(1);
      }
      st.trace_serve_instant("reinstate dev" + std::to_string(d));
    }
  }
}

/// Per-device worker: drains the device's dispatch FIFO one job at a time.
/// Cold jobs first stage their mapped input through the shared host memory
/// bus (one sequential read + one streamed write of input_bytes); warm jobs
/// reuse the dataset the previous same-app job left resident.
sim::Task<> device_worker(ServerState& st, std::uint32_t device_index) {
  cusim::Runtime& device = st.pool.device(device_index);
  hostsim::HostThread staging = st.pool.cpu().make_thread(2);
  staging.set_trace_label(device.device_name() + " staging");
  while (true) {
    std::optional<Job*> item = co_await st.dispatch[device_index]->pop();
    if (!item.has_value()) break;  // channel closed and drained
    Job& job = **item;
    if (st.health.quarantined(device_index)) {
      // The device went down with this job still queued behind it.
      redispatch(st, device_index, job);
      continue;
    }
    job.record.start_time = st.sim.now();
    if (!job.record.warm && job.record.input_bytes > 0) {
      staging.read_sequential(kStagingRegionBase + device_index, 0,
                              job.record.input_bytes);
      staging.write_stream(job.record.input_bytes);
      co_await staging.commit();
    }
    std::unique_ptr<check::Sanitizer> sanitizer;
    if (st.config.check.enabled) {
      sanitizer =
          std::make_unique<check::Sanitizer>(st.config.check, st.config.metrics);
      sanitizer->install(device.gpu());
    }
    apps::JobRunConfig run_cfg;
    run_cfg.engine = st.config.engine;
    run_cfg.engine.check.enabled = false;  // the server owns the sanitizer
    run_cfg.tracer = st.config.tracer;
    run_cfg.sanitizer = sanitizer.get();
    run_cfg.trace_scope = device.trace_prefix();
    if (!st.caches.empty()) {
      run_cfg.chunk_cache = st.caches[device_index].get();
      run_cfg.pinned_pool = st.pools[device_index].get();
      run_cfg.dataset_id = dataset_id_of(job.record.spec.app);
    }
    // Unrecovered faults (retries exhausted, device lost, watchdog timeout)
    // surface here; anything else — checker violations included — still
    // propagates out of run_server.
    std::exception_ptr failure;
    bool fatal = false;
    try {
      co_await job.runner->run(device, run_cfg);
    } catch (const fault::DeviceLostError&) {
      failure = std::current_exception();
      fatal = true;
    } catch (const fault::FaultError&) {
      failure = std::current_exception();
    }
    if (sanitizer != nullptr) {
      sanitizer->uninstall();
      if (failure == nullptr) {
        sanitizer->finalize();  // throws check::CheckError on violations
      }
    }
    if (failure != nullptr) {
      if (st.health.on_failure(device_index, fatal)) {
        quarantine_device(st, device_index);
      }
      redispatch(st, device_index, job);
      continue;
    }
    st.health.on_success(device_index);
    job.record.finish_time = st.sim.now();
    job.record.completed = true;
    if (job.record.spec.deadline > 0) {
      job.record.deadline_met =
          job.record.finish_time - job.record.spec.submit_time <=
          job.record.spec.deadline;
    }
    st.completion_order.push_back(job.record.spec.id);
    st.scheduler.on_complete(device_index, job.record.input_bytes);
    st.queue.release();
    st.settle_one();
    if (st.config.tracer != nullptr) {
      const obs::TrackId track =
          st.config.tracer->track("serve", device.device_name());
      st.config.tracer->complete(
          track, job.record.spec.app, job.record.start_time,
          job.record.finish_time, "serve",
          {{"job", static_cast<double>(job.record.spec.id)},
           {"warm", job.record.warm ? 1.0 : 0.0}});
    }
  }
}

sim::Task<> serve_main(ServerState& st) {
  std::vector<sim::Process> clients;
  clients.reserve(st.jobs.size());
  for (Job& job : st.jobs) clients.push_back(st.sim.spawn(client(st, job)));
  std::vector<sim::Process> workers;
  workers.reserve(st.pool.size());
  for (std::uint32_t d = 0; d < st.pool.size(); ++d) {
    workers.push_back(st.sim.spawn(device_worker(st, d)));
  }
  sim::Process probe;
  if (st.fault_plane != nullptr) {
    probe = st.sim.spawn(probe_daemon(st));
  }
  for (sim::Process& process : clients) co_await process.join();
  // Redispatch can push a failed job onto another device's queue long after
  // every client returned, so the channels stay open until every job has
  // actually settled (completed, failed, or shed).
  co_await st.all_settled.wait_ge(st.jobs.size());
  st.finish_time = st.sim.now();
  st.shutdown = true;
  for (auto& channel : st.dispatch) channel->close();
  for (sim::Process& process : workers) co_await process.join();
  if (probe.valid()) co_await probe.join();
}

/// Nearest-rank percentile over an ascending-sorted sample.
sim::DurationPs percentile(const std::vector<sim::DurationPs>& sorted,
                           double q) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

double to_ms(sim::DurationPs ps) { return static_cast<double>(ps) / 1e9; }

}  // namespace

ServeReport run_server(const ServerConfig& config,
                       const std::vector<JobSpec>& specs,
                       const std::vector<apps::BenchApp>& suite) {
  ServerState state(config);
  state.jobs.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    Job job;
    job.record.spec = spec;
    job.runner = apps::find_app(suite, spec.app).make_runner();
    job.record.input_bytes = job.runner->input_bytes();
    state.jobs.push_back(std::move(job));
  }

  state.sim.run_until_complete(serve_main(state));

  ServeReport report;
  report.makespan = state.finish_time;
  report.completion_order = std::move(state.completion_order);
  report.rejections = state.queue.rejected();
  report.rejections_queue_full = state.queue.rejected(RejectCause::kQueueFull);
  report.rejections_no_device = state.queue.rejected(RejectCause::kNoDevice);
  report.peak_queue_depth = state.queue.peak_depth();
  report.quarantines = state.health.quarantines();
  report.reinstatements = state.health.reinstatements();
  if (state.fault_plane != nullptr) {
    report.fault_injected = state.fault_plane->stats().injected;
    report.fault_recovered = state.fault_plane->stats().recovered;
  }
  report.devices.resize(state.pool.size());

  std::vector<sim::DurationPs> latencies;
  for (Job& job : state.jobs) {
    const JobRecord& record = job.record;
    report.redispatches += record.redispatches;
    if (record.completed) {
      ++report.completed;
      latencies.push_back(record.latency());
      DeviceReport& dev = report.devices[record.device];
      ++dev.jobs;
      if (record.warm) {
        ++dev.warm_jobs;
        ++report.warm_hits;
      }
      if (!record.deadline_met) ++report.deadline_misses;
    } else if (record.failed) {
      ++report.failed_jobs;
    } else if (!record.admitted) {
      ++report.dropped;
    }
    report.jobs.push_back(record);
  }

  std::sort(latencies.begin(), latencies.end());
  report.latency_p50 = percentile(latencies, 0.50);
  report.latency_p95 = percentile(latencies, 0.95);
  report.latency_p99 = percentile(latencies, 0.99);
  if (report.makespan > 0) {
    report.throughput_jobs_per_s = static_cast<double>(report.completed) /
                                   (static_cast<double>(report.makespan) * 1e-12);
  }
  for (std::uint32_t d = 0; d < state.pool.size(); ++d) {
    const gpusim::Gpu& gpu = state.pool.device(d).gpu();
    DeviceReport& dev = report.devices[d];
    dev.h2d_bytes = gpu.stats().h2d_bytes;
    dev.d2h_bytes = gpu.stats().d2h_bytes;
    dev.kernel_launches = gpu.stats().kernel_launches;
    if (report.makespan > 0) {
      dev.utilization = static_cast<double>(gpu.compute_wall_busy()) /
                        static_cast<double>(report.makespan);
    }
    if (!state.caches.empty()) {
      const cache::ChunkCache::Stats& stats = state.caches[d]->stats();
      dev.cache_hits = stats.hits;
      dev.cache_misses = stats.misses;
      dev.cache_evictions = stats.evictions;
      dev.cache_bytes_saved = stats.bytes_saved;
      dev.cache_hit_rate = state.caches[d]->hit_rate();
      report.cache_hits += stats.hits;
      report.cache_misses += stats.misses;
      report.cache_bytes_saved += stats.bytes_saved;
    }
  }
  if (report.cache_hits + report.cache_misses > 0) {
    report.cache_hit_rate =
        static_cast<double>(report.cache_hits) /
        static_cast<double>(report.cache_hits + report.cache_misses);
  }

  if (config.metrics != nullptr) {
    const std::string prefix =
        config.metrics_prefix.empty()
            ? std::string("serve.") + policy_name(config.policy) +
                  ".devices" + std::to_string(state.pool.size())
            : config.metrics_prefix;
    report.export_metrics(*config.metrics, prefix);
  }
  return report;
}

void ServeReport::export_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.gauge(prefix + ".jobs").set(static_cast<double>(jobs.size()));
  registry.gauge(prefix + ".completed").set(static_cast<double>(completed));
  registry.gauge(prefix + ".dropped").set(static_cast<double>(dropped));
  registry.gauge(prefix + ".rejections").set(static_cast<double>(rejections));
  registry.gauge(prefix + ".deadline_misses")
      .set(static_cast<double>(deadline_misses));
  registry.gauge(prefix + ".warm_hits").set(static_cast<double>(warm_hits));
  registry.gauge(prefix + ".failed_jobs").set(static_cast<double>(failed_jobs));
  registry.gauge(prefix + ".redispatches")
      .set(static_cast<double>(redispatches));
  registry.gauge(prefix + ".quarantines").set(static_cast<double>(quarantines));
  registry.gauge(prefix + ".reinstatements")
      .set(static_cast<double>(reinstatements));
  registry.gauge(prefix + ".rejections.queue_full")
      .set(static_cast<double>(rejections_queue_full));
  registry.gauge(prefix + ".rejections.no_device")
      .set(static_cast<double>(rejections_no_device));
  registry.gauge(prefix + ".fault.injected")
      .set(static_cast<double>(fault_injected));
  registry.gauge(prefix + ".fault.recovered")
      .set(static_cast<double>(fault_recovered));
  registry.gauge(prefix + ".cache.hits").set(static_cast<double>(cache_hits));
  registry.gauge(prefix + ".cache.misses")
      .set(static_cast<double>(cache_misses));
  registry.gauge(prefix + ".cache.bytes_saved")
      .set(static_cast<double>(cache_bytes_saved));
  registry.gauge(prefix + ".cache.hit_rate").set(cache_hit_rate);
  registry.gauge(prefix + ".peak_queue_depth")
      .set(static_cast<double>(peak_queue_depth));
  registry.gauge(prefix + ".makespan_ms").set(to_ms(makespan));
  registry.gauge(prefix + ".latency_p50_ms").set(to_ms(latency_p50));
  registry.gauge(prefix + ".latency_p95_ms").set(to_ms(latency_p95));
  registry.gauge(prefix + ".latency_p99_ms").set(to_ms(latency_p99));
  registry.gauge(prefix + ".throughput_jobs_per_s").set(throughput_jobs_per_s);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const std::string dev_prefix = prefix + ".dev" + std::to_string(d);
    registry.gauge(dev_prefix + ".utilization").set(devices[d].utilization);
    registry.gauge(dev_prefix + ".jobs")
        .set(static_cast<double>(devices[d].jobs));
    registry.gauge(dev_prefix + ".warm_jobs")
        .set(static_cast<double>(devices[d].warm_jobs));
  }
}

void ServeReport::write_json(std::ostream& out) const {
  out << "{\"makespan_ms\":" << obs::json_number(to_ms(makespan))
      << ",\"jobs\":" << jobs.size() << ",\"completed\":" << completed
      << ",\"dropped\":" << dropped << ",\"rejections\":" << rejections
      << ",\"deadline_misses\":" << deadline_misses
      << ",\"warm_hits\":" << warm_hits
      << ",\"peak_queue_depth\":" << peak_queue_depth
      << ",\"fault\":{\"injected\":" << fault_injected
      << ",\"recovered\":" << fault_recovered
      << ",\"failed_jobs\":" << failed_jobs
      << ",\"redispatches\":" << redispatches
      << ",\"quarantines\":" << quarantines
      << ",\"reinstatements\":" << reinstatements
      << ",\"rejections_queue_full\":" << rejections_queue_full
      << ",\"rejections_no_device\":" << rejections_no_device << "}"
      << ",\"cache\":{\"hits\":" << cache_hits << ",\"misses\":" << cache_misses
      << ",\"bytes_saved\":" << cache_bytes_saved
      << ",\"hit_rate\":" << obs::json_number(cache_hit_rate) << "}"
      << ",\"throughput_jobs_per_s\":"
      << obs::json_number(throughput_jobs_per_s) << ",\"latency_ms\":{"
      << "\"p50\":" << obs::json_number(to_ms(latency_p50))
      << ",\"p95\":" << obs::json_number(to_ms(latency_p95))
      << ",\"p99\":" << obs::json_number(to_ms(latency_p99)) << "}"
      << ",\"devices\":[";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    if (d > 0) out << ',';
    const DeviceReport& dev = devices[d];
    out << "{\"device\":" << d << ",\"jobs\":" << dev.jobs
        << ",\"warm_jobs\":" << dev.warm_jobs
        << ",\"utilization\":" << obs::json_number(dev.utilization)
        << ",\"h2d_bytes\":" << dev.h2d_bytes
        << ",\"d2h_bytes\":" << dev.d2h_bytes
        << ",\"kernel_launches\":" << dev.kernel_launches
        << ",\"cache_hits\":" << dev.cache_hits
        << ",\"cache_misses\":" << dev.cache_misses
        << ",\"cache_evictions\":" << dev.cache_evictions
        << ",\"cache_bytes_saved\":" << dev.cache_bytes_saved << "}";
  }
  out << "],\"completion_order\":[";
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (i > 0) out << ',';
    out << completion_order[i];
  }
  out << "],\"job_records\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0) out << ',';
    const JobRecord& record = jobs[i];
    out << "{\"id\":" << record.spec.id
        << ",\"app\":" << obs::json_quote(record.spec.app)
        << ",\"device\":" << record.device
        << ",\"submit_ms\":" << obs::json_number(to_ms(record.spec.submit_time))
        << ",\"latency_ms\":" << obs::json_number(to_ms(record.latency()))
        << ",\"rejections\":" << record.rejections
        << ",\"redispatches\":" << record.redispatches
        << ",\"admitted\":" << (record.admitted ? "true" : "false")
        << ",\"completed\":" << (record.completed ? "true" : "false")
        << ",\"failed\":" << (record.failed ? "true" : "false")
        << ",\"warm\":" << (record.warm ? "true" : "false")
        << ",\"deadline_met\":" << (record.deadline_met ? "true" : "false")
        << "}";
  }
  out << "]}";
}

}  // namespace bigk::serve
