// Per-device health bookkeeping for the serving layer (bigkfault).
//
// Each device carries a consecutive-failure streak: a job that fails on the
// device (a fault::FaultError out of its engine launch) increments it, a
// success resets it, and crossing `quarantine_after` trips quarantine. A
// fatal failure — the device itself was lost — quarantines immediately. The
// monitor is pure bookkeeping; the server drives the consequences off the
// transition edge it reports (mark the device unavailable, invalidate its
// chunk cache as a device reset, redispatch its jobs, start probing for
// reinstatement).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bigk::serve {

class HealthMonitor {
 public:
  struct Config {
    /// Consecutive ordinary failures before quarantine. Fatal failures
    /// (device lost) quarantine on the first one.
    std::uint32_t quarantine_after = 2;
    /// bigkdur flap damping: consecutive clean probes a quarantined device
    /// must pass before reinstatement. 1 = legacy behavior (first clean
    /// probe reinstates); higher values keep a flapping device — one whose
    /// outage clears and re-trips between probes — out of the pool until it
    /// proves stable.
    std::uint32_t reinstate_after = 1;
  };

  HealthMonitor(std::uint32_t num_devices, Config config)
      : config_(config), devices_(num_devices) {
    if (config_.quarantine_after == 0) {
      throw std::invalid_argument(
          "HealthMonitor quarantine_after must be > 0");
    }
    if (config_.reinstate_after == 0) {
      throw std::invalid_argument(
          "HealthMonitor reinstate_after must be > 0");
    }
  }
  explicit HealthMonitor(std::uint32_t num_devices)
      : HealthMonitor(num_devices, Config{}) {}

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void on_success(std::uint32_t device) { devices_.at(device).streak = 0; }

  /// Records one failed job on `device`; true exactly when this failure
  /// transitions the device into quarantine.
  bool on_failure(std::uint32_t device, bool fatal = false) {
    State& state = devices_.at(device);
    ++failures_;
    ++state.streak;
    if (state.quarantined) return false;
    if (!fatal && state.streak < config_.quarantine_after) return false;
    state.quarantined = true;
    state.streak = 0;
    ++quarantines_;
    return true;
  }

  /// Records one reinstatement-probe outcome on a quarantined device; true
  /// exactly when this probe completes a run of `reinstate_after`
  /// consecutive clean probes and the device is reinstated. A failed probe
  /// resets the clean streak, so a flapping device never re-enters the pool.
  bool on_probe(std::uint32_t device, bool success) {
    State& state = devices_.at(device);
    if (!state.quarantined) return false;
    if (!success) {
      state.probe_streak = 0;
      return false;
    }
    if (++state.probe_streak < config_.reinstate_after) return false;
    reinstate(device);
    return true;
  }

  /// A reinstatement probe succeeded: the device serves traffic again.
  void reinstate(std::uint32_t device) {
    State& state = devices_.at(device);
    if (!state.quarantined) return;
    state.quarantined = false;
    state.streak = 0;
    state.probe_streak = 0;
    ++reinstatements_;
  }

  bool quarantined(std::uint32_t device) const {
    return devices_.at(device).quarantined;
  }

  std::uint32_t healthy_devices() const {
    std::uint32_t healthy = 0;
    for (const State& state : devices_) {
      if (!state.quarantined) ++healthy;
    }
    return healthy;
  }

  std::uint64_t failures() const noexcept { return failures_; }
  std::uint64_t quarantines() const noexcept { return quarantines_; }
  std::uint64_t reinstatements() const noexcept { return reinstatements_; }

 private:
  struct State {
    std::uint32_t streak = 0;
    /// Consecutive clean reinstatement probes while quarantined.
    std::uint32_t probe_streak = 0;
    bool quarantined = false;
  };

  Config config_;
  std::vector<State> devices_;
  std::uint64_t failures_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t reinstatements_ = 0;
};

}  // namespace bigk::serve
