// Placement policies for admitted jobs. The scheduler is deliberately pure
// bookkeeping — it never touches the simulation clock — so every policy is
// deterministic given the same sequence of dispatch/complete events.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bigk::serve {

enum class Policy : std::uint8_t {
  /// Devices in rotation, ignoring load — the baseline.
  kRoundRobin,
  /// Device with the fewest admitted-but-unfinished input bytes (a proxy for
  /// the shortest backlog when job sizes vary).
  kLeastOutstandingBytes,
  /// Prefer a device whose most recent job ran the same app: its mapped
  /// dataset is still resident, so input staging over the shared host memory
  /// bus is skipped entirely. The preference is bounded — when the warm
  /// device's backlog exceeds the emptiest device's by more than the job's
  /// own input bytes (the most a warm hit can save), the job spills to the
  /// emptiest device instead of head-of-line blocking behind the warm one.
  kAppAffinity,
};

inline const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kLeastOutstandingBytes: return "least-bytes";
    case Policy::kAppAffinity: return "app-affinity";
  }
  return "?";
}

/// Parses a --policy value; throws std::invalid_argument listing the valid
/// names on anything unknown.
inline Policy policy_from_name(std::string_view name) {
  if (name == "round-robin") return Policy::kRoundRobin;
  if (name == "least-bytes") return Policy::kLeastOutstandingBytes;
  if (name == "app-affinity") return Policy::kAppAffinity;
  throw std::invalid_argument(
      "unknown scheduling policy \"" + std::string(name) +
      "\"; valid policies: \"round-robin\" \"least-bytes\" \"app-affinity\"");
}

class Scheduler {
 public:
  Scheduler(Policy policy, std::uint32_t num_devices)
      : policy_(policy), devices_(num_devices) {
    if (num_devices == 0) {
      throw std::invalid_argument("Scheduler needs at least one device");
    }
  }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Policy policy() const noexcept { return policy_; }
  std::uint32_t num_devices() const noexcept {
    return static_cast<std::uint32_t>(devices_.size());
  }

  /// App whose dataset is resident on `device` ("" before the first job).
  /// Jobs on one device run in dispatch order, so the most recently
  /// dispatched app is the one resident when the next job starts.
  const std::string& resident_app(std::uint32_t device) const {
    return devices_.at(device).resident_app;
  }

  std::uint64_t outstanding_bytes(std::uint32_t device) const {
    return devices_.at(device).outstanding_bytes;
  }

  /// bigkfault: a quarantined device is marked unavailable and every policy
  /// skips it until it is reinstated.
  void set_available(std::uint32_t device, bool available) {
    devices_.at(device).available = available;
  }
  bool available(std::uint32_t device) const {
    return devices_.at(device).available;
  }

  /// bigkload autoscaler axis, orthogonal to health: a parked (inactive)
  /// device is skipped by every policy exactly like a quarantined one, but
  /// reinstatement never reactivates it — only the autoscaler flips this
  /// bit. A device takes placements only when available AND active.
  void set_active(std::uint32_t device, bool active) {
    devices_.at(device).active = active;
  }
  bool active(std::uint32_t device) const {
    return devices_.at(device).active;
  }

  /// Healthy and active: the device can take placements.
  bool placeable(std::uint32_t device) const {
    const DeviceState& state = devices_.at(device);
    return state.available && state.active;
  }
  std::uint32_t num_available() const {
    std::uint32_t count = 0;
    for (const DeviceState& state : devices_) {
      if (state.available && state.active) ++count;
    }
    return count;
  }
  bool any_available() const { return num_available() > 0; }

  /// Replaces the app-affinity warm-preference bound ("a warm hit saves at
  /// most the job's input bytes") with a caller-supplied estimate of what a
  /// hit on `device` would actually save — the serving layer plugs in the
  /// chunk cache's live resident-bytes figure on top of the staging skip, so
  /// a device holding a hot cached dataset is worth a proportionally longer
  /// detour. Empty function restores the input-bytes default.
  using WarmBenefitFn = std::function<std::uint64_t(
      std::uint32_t device, const std::string& app, std::uint64_t input_bytes)>;
  void set_warm_benefit(WarmBenefitFn estimator) {
    warm_benefit_ = std::move(estimator);
  }

  /// Picks the target device for a job of `app` with `input_bytes` of mapped
  /// input. Ties break towards the lowest device index. Returns the
  /// num_devices() sentinel when every device is unavailable. The optional
  /// `eligible` mask (one entry per device) further restricts the candidate
  /// set — the QoS dispatcher passes the set of idle placeable devices so
  /// placement stays late-bound under weighted-fair ordering.
  std::uint32_t pick_device(const std::string& app, std::uint64_t input_bytes,
                            const std::vector<std::uint8_t>* eligible =
                                nullptr) {
    switch (policy_) {
      case Policy::kRoundRobin: {
        for (std::uint32_t i = 0; i < num_devices(); ++i) {
          const std::uint32_t device = rr_next_;
          rr_next_ = (rr_next_ + 1) % num_devices();
          if (placeable(device) && is_eligible(eligible, device)) {
            return device;
          }
        }
        return num_devices();
      }
      case Policy::kLeastOutstandingBytes:
        return least_loaded(/*require_app=*/nullptr, eligible);
      case Policy::kAppAffinity: {
        const std::uint32_t warm = least_loaded(&app, eligible);
        const std::uint32_t cold = least_loaded(/*require_app=*/nullptr,
                                                eligible);
        if (warm == num_devices()) return cold;
        // A warm hit saves input staging on the shared host bus (at most
        // `input_bytes`) — plus, when a warm-benefit estimator is installed,
        // whatever the device's chunk cache would skip on PCIe. Queuing
        // behind the warm device costs its backlog lead; take it only while
        // the detour is worth the saving, otherwise spill to the emptiest.
        const std::uint64_t benefit =
            warm_benefit_ ? warm_benefit_(warm, app, input_bytes)
                          : input_bytes;
        if (devices_[warm].outstanding_bytes <=
            devices_[cold].outstanding_bytes + benefit) {
          return warm;
        }
        return cold;
      }
    }
    throw std::logic_error("unhandled policy");
  }

  /// Records that a job was queued to `device` (call right after
  /// pick_device; also marks `app` as the device's resident dataset).
  void on_dispatch(std::uint32_t device, const std::string& app,
                   std::uint64_t input_bytes) {
    DeviceState& state = devices_.at(device);
    state.outstanding_bytes += input_bytes;
    state.resident_app = app;
  }

  void on_complete(std::uint32_t device, std::uint64_t input_bytes) {
    DeviceState& state = devices_.at(device);
    state.outstanding_bytes -= std::min(state.outstanding_bytes, input_bytes);
  }

 private:
  struct DeviceState {
    std::uint64_t outstanding_bytes = 0;
    std::string resident_app;
    bool available = true;  // false while quarantined
    bool active = true;     // false while parked by the autoscaler
  };

  static bool is_eligible(const std::vector<std::uint8_t>* eligible,
                          std::uint32_t device) {
    return eligible == nullptr || (*eligible)[device] != 0;
  }

  /// Least outstanding bytes over placeable devices matching `require_app`
  /// (all of them when null). Returns num_devices() if none matches.
  std::uint32_t least_loaded(const std::string* require_app,
                             const std::vector<std::uint8_t>* eligible =
                                 nullptr) const {
    std::uint32_t best = num_devices();
    for (std::uint32_t d = 0; d < num_devices(); ++d) {
      if (!placeable(d) || !is_eligible(eligible, d)) continue;
      if (require_app != nullptr && devices_[d].resident_app != *require_app) {
        continue;
      }
      if (best == num_devices() ||
          devices_[d].outstanding_bytes < devices_[best].outstanding_bytes) {
        best = d;
      }
    }
    return best;
  }

  Policy policy_;
  std::vector<DeviceState> devices_;
  std::uint32_t rr_next_ = 0;
  WarmBenefitFn warm_benefit_;
};

}  // namespace bigk::serve
