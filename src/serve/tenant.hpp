// bigkload QoS plane: tenants and SLO classes.
//
// A tenant is a traffic source with its own weight in the weighted-fair
// scheduler, an optional admission quota (max admitted-but-unfinished jobs),
// an SLO class, and — for generated workloads — a default per-job deadline
// and a closed-loop think time. Per-tenant accounting (goodput, SLO
// attainment, latency percentiles) and the Jain fairness index over
// weight-normalized goodput are the serving layer's multi-tenant headline.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace bigk::serve {

enum class SloClass : std::uint8_t {
  /// Tight per-job deadline; the WFQ weight should dominate the mix.
  kLatencyCritical,
  /// Throughput-oriented; tolerates queueing behind latency-critical work.
  kBatch,
};

inline const char* slo_class_name(SloClass slo) {
  switch (slo) {
    case SloClass::kLatencyCritical: return "latency-critical";
    case SloClass::kBatch: return "batch";
  }
  return "?";
}

/// Parses an SLO class name ("lc" / "latency-critical" / "batch"); throws
/// std::invalid_argument on anything else.
inline SloClass slo_class_from_name(std::string_view name) {
  if (name == "lc" || name == "latency-critical") {
    return SloClass::kLatencyCritical;
  }
  if (name == "batch") return SloClass::kBatch;
  throw std::invalid_argument("unknown SLO class \"" + std::string(name) +
                              "\"; valid classes: \"lc\" \"batch\"");
}

struct TenantConfig {
  std::string name = "default";
  SloClass slo = SloClass::kBatch;
  /// Weighted-fair share. 0 is allowed and means "background": the tenant
  /// runs at the scheduler's epsilon weight — far behind every weighted
  /// tenant, but never starved forever (virtual time always catches up with
  /// its finish tags once weighted backlogs drain or age past them).
  std::uint32_t weight = 1;
  /// Max admitted-but-unfinished jobs for this tenant; 0 = unlimited. On top
  /// of the pool-wide JobQueue depth, so one tenant cannot monopolize
  /// admission slots.
  std::uint32_t quota = 0;
  /// Default per-job deadline the load generator stamps on this tenant's
  /// jobs (0 = none).
  sim::DurationPs deadline = 0;
  /// Closed-loop mode: a client waits this long after one job settles before
  /// submitting its next.
  sim::DurationPs think_time = 0;
};

/// Per-tenant outcome block of a ServeReport.
struct TenantReport {
  std::string name;
  SloClass slo = SloClass::kBatch;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Gave up at admission (retries exhausted).
  std::uint64_t shed = 0;
  /// Admitted but abandoned after a failure with no device left.
  std::uint64_t failed = 0;
  /// Admission rejections its clients absorbed (retries included).
  std::uint64_t rejections = 0;
  std::uint64_t deadline_hits = 0;
  std::uint64_t deadline_misses = 0;
  sim::DurationPs latency_p50 = 0;
  sim::DurationPs latency_p95 = 0;
  sim::DurationPs latency_p99 = 0;
  double throughput_jobs_per_s = 0.0;
  /// Useful throughput: completions that met their deadline (all completions
  /// for deadline-free tenants) per second of makespan.
  double goodput_jobs_per_s = 0.0;
  /// Deadline-met completions / submitted jobs (completion ratio when the
  /// tenant has no deadlines). In [0, 1].
  double slo_attainment = 0.0;
};

/// Jain fairness index J(x) = (sum x)^2 / (n * sum x^2), in (0, 1]; 1 is a
/// perfectly even allocation. The all-zero allocation is defined as 1 (no
/// tenant is ahead of any other), and an empty vector as 1.
inline double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

}  // namespace bigk::serve
