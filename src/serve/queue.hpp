// Bounded admission queue: the server accepts at most `max_depth` jobs that
// are admitted but not yet finished (queued or running, across all devices).
// Beyond that, submissions are rejected with a retry-after hint — load is
// shed at the front door instead of growing an unbounded backlog, the
// standard admission-control discipline for latency-SLO serving.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace bigk::serve {

class JobQueue {
 public:
  struct Admission {
    bool accepted = false;
    /// When rejected: how long the client should wait before resubmitting.
    sim::DurationPs retry_after = 0;
  };

  JobQueue(std::uint32_t max_depth, sim::DurationPs retry_after)
      : max_depth_(max_depth), retry_after_(retry_after) {
    if (max_depth_ == 0) {
      throw std::invalid_argument("JobQueue depth must be > 0");
    }
  }

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits one job or rejects it with the retry-after hint.
  Admission try_admit() {
    if (outstanding_ >= max_depth_) {
      ++rejected_;
      return Admission{false, retry_after_};
    }
    ++outstanding_;
    ++admitted_;
    if (outstanding_ > peak_depth_) peak_depth_ = outstanding_;
    return Admission{true, 0};
  }

  /// Marks one admitted job finished, freeing its queue slot.
  void release() {
    if (outstanding_ == 0) {
      throw std::logic_error("JobQueue release without outstanding job");
    }
    --outstanding_;
  }

  std::uint32_t outstanding() const noexcept { return outstanding_; }
  std::uint32_t max_depth() const noexcept { return max_depth_; }
  std::uint32_t peak_depth() const noexcept { return peak_depth_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  /// Total rejections issued (one job may be rejected several times).
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::uint32_t max_depth_;
  sim::DurationPs retry_after_;
  std::uint32_t outstanding_ = 0;
  std::uint32_t peak_depth_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace bigk::serve
