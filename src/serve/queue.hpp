// Bounded admission queue: the server accepts at most `max_depth` jobs that
// are admitted but not yet finished (queued or running, across all devices).
// Beyond that, submissions are rejected with a retry-after hint — load is
// shed at the front door instead of growing an unbounded backlog, the
// standard admission-control discipline for latency-SLO serving.
//
// bigkfault hardening: the hint escalates per client. A client's consecutive
// rejections double its retry-after (base, 2x, 4x, ...) up to a cap, with an
// optional deterministic jitter drawn from a seeded splitmix64 hash of
// (client, streak) so synchronized clients fan out instead of re-colliding —
// the classic thundering-herd fix, reproduced bit-for-bit on every run. An
// acceptance resets the client's streak. Rejections are also broken down by
// cause (queue full / no available device / tenant over quota) for the
// shedding reports, and attach_metrics() publishes the live depth and the
// per-cause breakdown straight into a MetricsRegistry.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/metrics_registry.hpp"
#include "sim/time.hpp"

namespace bigk::serve {

/// Why a submission was turned away.
enum class RejectCause : std::uint8_t {
  /// Admitted-but-unfinished depth is at max_depth.
  kQueueFull = 0,
  /// Every device in the pool is quarantined; nothing could run the job.
  kNoDevice,
  /// bigkload QoS: the job's tenant is at its per-tenant admission quota.
  kTenantQuota,
};

inline constexpr std::size_t kNumRejectCauses = 3;

inline const char* reject_cause_name(RejectCause cause) {
  switch (cause) {
    case RejectCause::kQueueFull: return "queue_full";
    case RejectCause::kNoDevice: return "no_device";
    case RejectCause::kTenantQuota: return "tenant_quota";
  }
  return "?";
}

class JobQueue {
 public:
  struct Config {
    std::uint32_t max_depth = 16;
    /// Hint for a client's first rejection; doubles per consecutive
    /// rejection of the same client.
    sim::DurationPs retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
    /// Escalation ceiling. 0 = 8x retry_after; equal to retry_after
    /// disables escalation (every hint is the base).
    sim::DurationPs max_retry_after = 0;
    /// Seed for the deterministic per-(client, streak) jitter in
    /// [0, hint/4]; 0 = no jitter.
    std::uint64_t jitter_seed = 0;
  };

  struct Admission {
    bool accepted = false;
    /// When rejected: how long the client should wait before resubmitting.
    sim::DurationPs retry_after = 0;
    RejectCause cause = RejectCause::kQueueFull;
  };

  explicit JobQueue(Config config) : config_(config) {
    if (config_.max_depth == 0) {
      throw std::invalid_argument("JobQueue depth must be > 0");
    }
    if (config_.max_retry_after == 0) {
      config_.max_retry_after = 8 * config_.retry_after;
    }
  }

  /// Constant-hint queue (no escalation, no jitter): every rejection returns
  /// `retry_after` verbatim.
  JobQueue(std::uint32_t max_depth, sim::DurationPs retry_after)
      : JobQueue(Config{max_depth, retry_after, retry_after, 0}) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits one job or rejects it with the client's escalated retry-after
  /// hint. `client` keys the escalation streak (the server passes the job
  /// id); acceptance resets it.
  Admission try_admit(std::uint64_t client = 0) {
    if (outstanding_ >= config_.max_depth) {
      return Admission{false, reject(RejectCause::kQueueFull, client),
                       RejectCause::kQueueFull};
    }
    ++outstanding_;
    ++admitted_;
    streaks_.erase(client);
    if (outstanding_ > peak_depth_) peak_depth_ = outstanding_;
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(outstanding_));
    }
    if (depth_observer_) depth_observer_(outstanding_);
    return Admission{true, 0, RejectCause::kQueueFull};
  }

  /// Counts a rejection the caller decided on (e.g. the whole pool is
  /// quarantined) and returns the client's escalated hint — the same
  /// bookkeeping a queue-full rejection runs.
  sim::DurationPs reject(RejectCause cause, std::uint64_t client = 0) {
    ++rejected_;
    ++rejected_by_cause_[static_cast<std::size_t>(cause)];
    if (reject_counters_[static_cast<std::size_t>(cause)] != nullptr) {
      reject_counters_[static_cast<std::size_t>(cause)]->add(1);
    }
    std::uint32_t& streak = streaks_[client];
    sim::DurationPs hint = config_.retry_after;
    for (std::uint32_t i = 0; i < streak && hint < config_.max_retry_after;
         ++i) {
      hint *= 2;
    }
    if (hint > config_.max_retry_after) hint = config_.max_retry_after;
    if (config_.jitter_seed != 0) {
      hint += splitmix64(config_.jitter_seed ^ (client * 0x9e3779b97f4a7c15ull)
                         ^ streak) %
              (hint / 4 + 1);
    }
    ++streak;
    return hint;
  }

  /// Marks one admitted job finished, freeing its queue slot.
  void release() {
    if (outstanding_ == 0) {
      throw std::logic_error("JobQueue release without outstanding job");
    }
    --outstanding_;
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(outstanding_));
    }
    if (depth_observer_) depth_observer_(outstanding_);
  }

  /// Publishes the queue's live state into `registry` under `prefix`: an
  /// instantaneous `<prefix>.queue.depth` gauge updated at every admit /
  /// release transition, and one `<prefix>.queue.rejected.<cause>` counter
  /// per RejectCause (registered immediately, so the breakdown is present —
  /// as zeros — even on runs that never reject).
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) {
    depth_gauge_ = &registry.gauge(prefix + ".queue.depth");
    depth_gauge_->set(static_cast<double>(outstanding_));
    for (std::size_t c = 0; c < kNumRejectCauses; ++c) {
      reject_counters_[c] = &registry.counter(
          prefix + ".queue.rejected." +
          reject_cause_name(static_cast<RejectCause>(c)));
    }
  }

  /// bigkprof: called with the new outstanding depth on every admit and
  /// release, so windowed telemetry can sample queue depth at the exact
  /// transition instants instead of polling. Empty function detaches.
  void set_depth_observer(std::function<void(std::uint32_t)> observer) {
    depth_observer_ = std::move(observer);
  }

  std::uint32_t outstanding() const noexcept { return outstanding_; }
  std::uint32_t max_depth() const noexcept { return config_.max_depth; }
  std::uint32_t peak_depth() const noexcept { return peak_depth_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  /// Total rejections issued (one job may be rejected several times).
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t rejected(RejectCause cause) const noexcept {
    return rejected_by_cause_[static_cast<std::size_t>(cause)];
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Config config_;
  std::uint32_t outstanding_ = 0;
  std::uint32_t peak_depth_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::array<std::uint64_t, kNumRejectCauses> rejected_by_cause_{};
  /// Consecutive rejections per client since its last acceptance.
  std::map<std::uint64_t, std::uint32_t> streaks_;
  std::function<void(std::uint32_t)> depth_observer_;
  /// Live metrics sinks (null until attach_metrics).
  obs::Gauge* depth_gauge_ = nullptr;
  std::array<obs::Counter*, kNumRejectCauses> reject_counters_{};
};

}  // namespace bigk::serve
