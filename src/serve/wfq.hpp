// Virtual-time weighted-fair queueing over tenant queues (start-time fair
// queueing, SFQ): each item gets a start tag S = max(V, tenant's last finish
// tag) and a finish tag F = S + cost / weight; the queue serves the minimum
// finish tag and advances the virtual clock V to the served item's start
// tag. With all-integer tags and a deterministic tie-break (finish tag, then
// tenant index, then arrival sequence), the schedule is reproducible bit for
// bit.
//
// Weight 0 is a background tenant: it runs at an epsilon weight (1/64 of
// weight 1), so it falls far behind every weighted tenant under load but is
// never starved forever — its finish tag is finite, and V monotonically
// catches up as weighted tenants receive service, at which point their
// ever-growing finish tags pass it and the background item is served.
//
// A kFifo discipline (serve strictly by arrival sequence, tenant-blind) is
// provided as the baseline the QoS benchmarks compare against.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bigk::serve {

enum class Discipline : std::uint8_t {
  /// Global arrival order, tenant-blind (the baseline).
  kFifo,
  /// Virtual-time weighted-fair queueing over tenant queues.
  kWfq,
};

inline const char* discipline_name(Discipline discipline) {
  switch (discipline) {
    case Discipline::kFifo: return "fifo";
    case Discipline::kWfq: return "wfq";
  }
  return "?";
}

/// Parses a discipline name; throws std::invalid_argument listing the valid
/// names on anything unknown.
inline Discipline discipline_from_name(std::string_view name) {
  if (name == "fifo") return Discipline::kFifo;
  if (name == "wfq") return Discipline::kWfq;
  throw std::invalid_argument("unknown queueing discipline \"" +
                              std::string(name) +
                              "\"; valid disciplines: \"fifo\" \"wfq\"");
}

/// The tenant-aware reorder stage between admission and device dispatch.
/// Pure bookkeeping (never touches the simulation clock), one FIFO per
/// tenant inside.
template <class T>
class QosQueue {
 public:
  /// Virtual-cost scale: one cost unit at weight 1 advances a tenant's
  /// finish tag by kVirtualScale / kWeightScale.
  static constexpr std::uint64_t kVirtualScale = 1ull << 20;
  /// Effective weight of weight w is w * kWeightScale; weight 0 gets an
  /// effective weight of 1 (the epsilon that prevents total starvation).
  static constexpr std::uint64_t kWeightScale = 64;

  QosQueue(Discipline discipline, const std::vector<std::uint32_t>& weights)
      : discipline_(discipline) {
    if (weights.empty()) {
      throw std::invalid_argument("QosQueue needs at least one tenant");
    }
    tenants_.reserve(weights.size());
    served_.assign(weights.size(), 0);
    for (const std::uint32_t weight : weights) {
      TenantQueue tq;
      tq.eff_weight = weight > 0 ? static_cast<std::uint64_t>(weight) *
                                       kWeightScale
                                 : 1;
      tenants_.push_back(std::move(tq));
    }
  }

  QosQueue(const QosQueue&) = delete;
  QosQueue& operator=(const QosQueue&) = delete;

  /// Enqueues `item` for `tenant`. `cost` is the item's service demand in
  /// arbitrary units (the server passes input KiB); 0 is clamped to 1 so
  /// every item advances the tags.
  void push(std::uint32_t tenant, T item, std::uint64_t cost) {
    TenantQueue& tq = tenants_.at(tenant);
    Entry entry;
    entry.item = std::move(item);
    entry.seq = next_seq_++;
    const std::uint64_t vcost =
        std::max<std::uint64_t>(1, cost) * kVirtualScale / tq.eff_weight;
    entry.vstart = std::max(virtual_time_, tq.last_vfinish);
    entry.vfinish = entry.vstart + std::max<std::uint64_t>(1, vcost);
    tq.last_vfinish = entry.vfinish;
    tq.queue.push_back(std::move(entry));
    ++size_;
    if (size_ > peak_backlog_) peak_backlog_ = size_;
  }

  /// Serves the next item (min finish tag under kWfq, min arrival sequence
  /// under kFifo); std::nullopt when empty.
  std::optional<T> pop() {
    std::size_t best = tenants_.size();
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      if (tenants_[t].queue.empty()) continue;
      if (best == tenants_.size() ||
          comes_first(tenants_[t].queue.front(), t,
                      tenants_[best].queue.front(), best)) {
        best = t;
      }
    }
    if (best == tenants_.size()) return std::nullopt;
    Entry entry = std::move(tenants_[best].queue.front());
    tenants_[best].queue.pop_front();
    --size_;
    if (entry.vstart > virtual_time_) virtual_time_ = entry.vstart;
    ++served_[best];
    return std::move(entry.item);
  }

  Discipline discipline() const noexcept { return discipline_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  std::size_t backlog(std::uint32_t tenant) const {
    return tenants_.at(tenant).queue.size();
  }
  std::size_t peak_backlog() const noexcept { return peak_backlog_; }
  std::uint64_t served(std::uint32_t tenant) const {
    return served_.at(tenant);
  }
  std::uint64_t virtual_time() const noexcept { return virtual_time_; }

 private:
  struct Entry {
    T item{};
    std::uint64_t vstart = 0;
    std::uint64_t vfinish = 0;
    std::uint64_t seq = 0;
  };

  struct TenantQueue {
    std::deque<Entry> queue;
    std::uint64_t last_vfinish = 0;
    std::uint64_t eff_weight = 1;
  };

  bool comes_first(const Entry& a, std::size_t ta, const Entry& b,
                   std::size_t tb) const {
    if (discipline_ == Discipline::kFifo) return a.seq < b.seq;
    if (a.vfinish != b.vfinish) return a.vfinish < b.vfinish;
    if (ta != tb) return ta < tb;
    return a.seq < b.seq;
  }

  Discipline discipline_;
  std::vector<TenantQueue> tenants_;
  std::uint64_t virtual_time_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_backlog_ = 0;
  std::vector<std::uint64_t> served_;
};

}  // namespace bigk::serve
