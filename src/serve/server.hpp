// bigkserve: an SLA-aware serving layer over a cusim::DevicePool.
//
// run_server() plays a job workload against N simulated devices behind one
// shared host CPU:
//   submit -> JobQueue admission (bounded depth, reject with retry-after)
//          -> Scheduler placement (round-robin / least-bytes / app-affinity)
//          -> per-device FIFO worker: cold jobs stage their mapped input
//             through the shared host memory bus, then one core::Engine
//             launch runs the app's kernel on that device (BigKernel
//             pipeline, per-job sanitizer when checking is enabled).
//
// Everything is deterministic: the same config + workload produce the same
// schedule, completion order, latencies, and metrics, byte for byte.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "cache/policy.hpp"
#include "check/options.hpp"
#include "core/options.hpp"
#include "dur/journal.hpp"
#include "gpusim/config.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tracer.hpp"
#include "serve/autoscaler.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "serve/wfq.hpp"
#include "sim/time.hpp"

namespace bigk::serve {

struct ServerConfig {
  /// Per-device system model (every device is built from this; the shared
  /// host CPU comes from system.cpu).
  gpusim::SystemConfig system;
  std::uint32_t devices = 1;
  Policy policy = Policy::kRoundRobin;

  /// Admission control: max admitted-but-unfinished jobs across the pool.
  std::uint32_t queue_depth = 16;
  /// Retry-after hint returned on rejection.
  sim::DurationPs retry_after = sim::DurationPs{1'000'000'000};  // 1 ms
  /// Resubmissions a client attempts before giving up (0 = no retries).
  std::uint32_t max_retries = 64;

  /// Engine options for every job's BigKernel launch.
  core::Options engine;

  /// bigkcache: when enabled, every device gets a chunk cache (a partition
  /// of its arena) plus a pinned assembly-buffer pool, shared by all jobs on
  /// that device. Repeat jobs of an app whose chunks are still resident skip
  /// the assembly + PCIe transfer for those chunks, and the app-affinity
  /// warm-preference bound upgrades from "job input bytes" to the cache's
  /// live resident-bytes estimate.
  bool cache_enabled = false;
  /// Cache partition per device; 0 = a quarter of the device arena.
  std::uint64_t cache_bytes = 0;
  cache::EvictionKind cache_eviction = cache::EvictionKind::kCostAware;
  /// When enabled, each job runs under a fresh check::Sanitizer installed on
  /// its device; a violation throws check::CheckError out of run_server.
  check::CheckOptions check;
  /// bigkstatic: admission gate — every submitted app's kernel must pass the
  /// static contract verifier (apps::static_verdict) before any of its jobs
  /// is admitted; a failing or unverified app makes run_server throw
  /// std::invalid_argument naming the first violation. The app's verified
  /// pattern signature is then mixed into its chunk-cache keys. Disable only
  /// for experiments with deliberately non-conforming kernels.
  bool require_verified = true;

  // --- bigkfault ---------------------------------------------------------
  /// Fault specs (fault::FaultSpec::parse grammar, ';'-separated) installed
  /// on a pool-wide fault::FaultPlane; every engine launch and DMA stream
  /// injects from it under the device's pool index. Empty = no plane, and
  /// the server behaves byte-identically to the fault-free build.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  /// Consecutive job failures on one device before it is quarantined; a
  /// device-lost failure quarantines immediately.
  std::uint32_t quarantine_after = 2;
  /// Period of the reinstatement probe run against quarantined devices.
  sim::DurationPs probe_interval = sim::DurationPs{2'000'000'000};  // 2 ms
  /// bigkdur flap damping: consecutive clean probes a quarantined device
  /// must pass before reinstatement (1 = first clean probe reinstates).
  std::uint32_t reinstate_after = 1;
  /// Ceiling for the per-client escalating retry-after hint (0 = 8x
  /// retry_after; equal to retry_after disables escalation).
  sim::DurationPs retry_after_cap = 0;
  /// Seed for the deterministic retry-after jitter (0 = no jitter).
  std::uint64_t retry_jitter_seed = 0;

  // --- bigkprof -----------------------------------------------------------
  /// Attribution / telemetry window: every device gets a StageProfiler with
  /// this window, windowed throughput + latency-sketch signals tick at this
  /// period, and the SLO monitor is evaluated once per window. 0 disables
  /// the windowed plane (the latency sketch still replaces the percentile
  /// sort). Default 100 us.
  sim::DurationPs prof_window = sim::DurationPs{100'000'000};
  /// Declarative SLO rules over the windowed metrics, ';'-separated
  /// "<metric> <op> <threshold>" (obs::prof::parse_slo_rules grammar).
  /// Metrics: p50_ms p95_ms p99_ms throughput_jobs_per_s queue_depth
  /// utilization fault_rate h2d_gbps d2h_gbps. Empty = no rules.
  std::string slo_spec;

  // --- bigkload QoS plane --------------------------------------------------
  struct QosConfig {
    /// Tenants in JobSpec::tenant index order. Empty = QoS plane off: the
    /// server behaves byte-identically to the pre-tenant build (clients
    /// place their job at admission; no WFQ stage, no quotas).
    std::vector<TenantConfig> tenants;
    /// Ordering of admitted jobs across tenants while they wait for a free
    /// device (kWfq default; kFifo is the baseline for A/B runs).
    Discipline discipline = Discipline::kWfq;
    /// Closed-loop mode: jobs sharing a JobSpec::client id form one chain —
    /// each submits only after the previous settled plus the tenant's think
    /// time (open loop, the default, submits at the stamped instants).
    bool closed_loop = false;
    /// Denominator for the offered-load gauge; 0 = the last submit instant.
    sim::DurationPs offered_window = 0;
    /// Pool autoscaler (enabled flag inside; works with or without tenants).
    AutoscalerConfig autoscaler;
  };
  QosConfig qos;

  // --- bigkhetero spill-over ----------------------------------------------
  struct HeteroConfig {
    /// Spill whole jobs to host-core execution (JobRunner::run_cpu — no
    /// staging, no DMA) when no device is available at placement time or
    /// the pool backlog exceeds `spill_depth`. Off = byte-identical to the
    /// pre-hetero build.
    bool spill_enabled = false;
    /// Outstanding-jobs threshold past which admitted jobs spill to the CPU
    /// instead of queueing for a device.
    std::uint32_t spill_depth = 8;
    /// Software threads for each spilled job (0 = all host hw threads).
    std::uint32_t cpu_threads = 0;
  };
  HeteroConfig hetero;

  // --- bigkdur durability & integrity --------------------------------------
  struct DurConfig {
    /// End-to-end chunk integrity: every chunk's FNV digest is computed once
    /// at assembly and re-verified after DMA, on every cache hit, on staged
    /// write-back, and on the hetero CPU partition. Off = byte-identical to
    /// the pre-dur build (no digests, no verification).
    bool integrity = false;
    /// Durable per-job progress journal, owned by the caller so it survives
    /// a simulated server crash: build a new server over the same journal
    /// and in-flight jobs resume from their last verified checkpoint. Null =
    /// no checkpointing (jobs always run whole).
    dur::JobJournal* journal = nullptr;
    /// Records per checkpoint window; a job runs as a sequence of windows
    /// with a journal write after each. 0 = the whole job is one window.
    std::uint64_t checkpoint_records = 0;
    /// Simulated whole-server crash instant (0 = never). At `crash_at` the
    /// workers stop launching new windows; in-flight and queued jobs settle
    /// as failed so run_server returns, and a fresh run_server over the same
    /// journal models the restart.
    sim::TimePs crash_at = 0;
    /// Background cache scrub daemon: every `scrub_period` each device's
    /// chunk cache re-verifies up to `scrub_entries` resident entries and
    /// evicts any whose bytes no longer match their insert digest. Either
    /// 0 = scrubbing off. Requires `integrity` and the chunk cache.
    sim::DurationPs scrub_period = 0;
    std::uint64_t scrub_entries = 0;
  };
  DurConfig dur;

  /// Optional telemetry sinks (must outlive the run). With a tracer, every
  /// device gets its own "devK ..." process rows plus a "serve" process with
  /// one job span per completion.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Gauge-name prefix for the auto-export into `metrics`; empty picks
  /// "serve.<policy>.devices<N>". Give each scenario its own prefix when one
  /// registry collects several runs.
  std::string metrics_prefix;
};

struct DeviceReport {
  std::uint64_t jobs = 0;
  std::uint64_t warm_jobs = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernel_launches = 0;
  /// SM busy time / makespan.
  double utilization = 0.0;
  /// bigkcache (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes_saved = 0;
  double cache_hit_rate = 0.0;
  /// bigkprof (from the device's StageProfiler; bottleneck_stage is an
  /// obs::Stage index, -1 when the device ran no profiled work).
  std::int32_t bottleneck_stage = -1;
  double overlap_efficiency = 0.0;
  std::uint64_t prof_windows = 0;
  std::uint64_t bottleneck_flips = 0;
};

struct ServeReport {
  /// One record per submitted job, in spec order.
  std::vector<JobRecord> jobs;
  /// Job ids in the order they finished.
  std::vector<std::uint64_t> completion_order;
  std::vector<DeviceReport> devices;

  sim::TimePs makespan = 0;
  std::uint64_t completed = 0;
  /// Jobs that exhausted their retries without being admitted.
  std::uint64_t dropped = 0;
  /// Total admission rejections (a job may be rejected several times).
  std::uint64_t rejections = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t warm_hits = 0;
  std::uint32_t peak_queue_depth = 0;

  /// bigkfault (all zero without a fault plane).
  std::uint64_t fault_injected = 0;
  std::uint64_t fault_recovered = 0;
  /// Jobs admitted but abandoned: their run failed with every other device
  /// quarantined.
  std::uint64_t failed_jobs = 0;
  /// Jobs handed to another device after a failure or quarantine.
  std::uint64_t redispatches = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t reinstatements = 0;
  /// Rejection breakdown by cause (sums to `rejections`).
  std::uint64_t rejections_queue_full = 0;
  std::uint64_t rejections_no_device = 0;
  std::uint64_t rejections_tenant_quota = 0;

  /// bigkhetero (all zero unless hetero.spill_enabled).
  /// Jobs routed to host-core execution (at placement or on redispatch).
  std::uint64_t spills = 0;
  /// Spilled jobs that completed on the CPU (included in `completed`).
  std::uint64_t cpu_completed = 0;

  /// bigkcache totals across devices (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes_saved = 0;
  double cache_hit_rate = 0.0;

  /// Streaming-sketch (P²) percentiles over completed-job latencies,
  /// clamped monotone (p50 <= p95 <= p99).
  sim::DurationPs latency_p50 = 0;
  sim::DurationPs latency_p95 = 0;
  sim::DurationPs latency_p99 = 0;
  double throughput_jobs_per_s = 0.0;

  // --- bigkprof -----------------------------------------------------------
  /// Mean queueing-delay breakdown over completed jobs, in ms. The five
  /// parts partition [submit, finish] exactly, so they sum to the mean
  /// latency (breakdown_total_ms).
  double breakdown_admission_ms = 0.0;
  double breakdown_queue_ms = 0.0;
  double breakdown_staging_ms = 0.0;
  double breakdown_execution_ms = 0.0;
  double breakdown_writeback_ms = 0.0;
  double breakdown_total_ms = 0.0;
  /// Pool-level limiting stage (argmax of summed per-device stage busy;
  /// obs::Stage index, -1 without profiling) and overlap efficiency
  /// (1 - makespan / sum of stage busy, clamped at 0).
  std::int32_t bottleneck_stage = -1;
  double overlap_efficiency = 0.0;
  /// Sums over devices of the windowed timeline sizes.
  std::uint64_t prof_windows = 0;
  std::uint64_t bottleneck_flips = 0;
  /// SLO monitoring outcome (0/0 when no slo_spec was configured).
  std::uint64_t slo_rules = 0;
  std::uint64_t slo_violations = 0;

  // --- bigkdur -------------------------------------------------------------
  /// Integrity-plane totals (all zero with dur.integrity off).
  std::uint64_t integrity_verified = 0;
  std::uint64_t integrity_detected = 0;
  std::uint64_t integrity_repaired = 0;
  std::uint64_t scrub_checked = 0;
  std::uint64_t scrub_evictions = 0;
  /// Silent-corruption injections (bitflip_dma/cache/writeback) the fault
  /// plane performed — with integrity on, detected == injected.
  std::uint64_t bitflips_injected = 0;
  /// Job run attempts that began past record zero from a journaled
  /// checkpoint (redispatch after a failure, or a post-crash restart).
  std::uint64_t resumed = 0;
  /// Checkpoint windows re-executed even though an earlier attempt (this
  /// session or the journal) had already completed them — the work a
  /// from-zero restart redoes that checkpoint resume skips.
  std::uint64_t chunks_replayed = 0;
  /// The simulated crash fired during this run (dur.crash_at elapsed).
  bool crashed = false;

  // --- bigkload QoS plane --------------------------------------------------
  /// One block per configured tenant (empty without a QoS config).
  std::vector<TenantReport> tenants;
  /// Jain index over weight-normalized tenant goodput (weight-0 background
  /// tenants excluded); 1.0 when fewer than two weighted tenants exist.
  double fairness_jain = 1.0;
  /// Offered load (submitted jobs over the configured window) and pool-wide
  /// goodput (deadline-met completions per second of makespan).
  double offered_jobs_per_s = 0.0;
  double goodput_jobs_per_s = 0.0;
  /// Deadline-met completions (jobs without a deadline count as attained).
  std::uint64_t slo_attained = 0;
  /// Autoscaler trajectory (static pool: min == max == devices, 0 events).
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint32_t min_active_devices = 0;
  std::uint32_t max_active_devices = 0;
  std::uint32_t final_active_devices = 0;

  /// Registers the headline numbers as `<prefix>.*` gauges (latency
  /// percentiles in ms, throughput, per-device utilization, shedding
  /// counts), so they ride along in the standard bench JSON counters array.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

  /// Full machine-readable report (one JSON object; deterministic field
  /// order, no whitespace variation).
  void write_json(std::ostream& out) const;
};

/// Runs `specs` against a fresh DevicePool built from `config`, resolving
/// app names through `suite` (see apps::benchmark_apps / apps::find_app).
ServeReport run_server(const ServerConfig& config,
                       const std::vector<JobSpec>& specs,
                       const std::vector<apps::BenchApp>& suite);

}  // namespace bigk::serve
