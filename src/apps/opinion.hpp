// Opinion Finder: sentiment analysis of tweets about a subject
// [Wilson et al. 2005].
//
// Mapped data: fixed 256-byte records of 32 uint64 elements
// [timestamp, meta x8, token x23]; the kernel reads the timestamp and the
// 22 text tokens (23 elements = 184 B ~ 73% of the record, Table I). Each
// token is looked up in three device-resident dictionaries (positive,
// negative, adverb) and scored with fairly heavy lexical arithmetic — the
// paper's reason this app stays compute-dominant. The output is a single
// aggregated sentiment score.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class OpinionApp {
 public:
  static constexpr std::uint32_t kElemsPerRecord = 32;
  static constexpr std::uint32_t kReadsPerRecord = 23;
  static constexpr std::uint32_t kTokens = 22;
  static constexpr std::uint32_t kDictBuckets = 1u << 12;

  struct Params {
    std::uint64_t data_bytes = 6ull << 20;
    std::uint64_t seed = 4;
  };

  explicit OpinionApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return records_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    /// Sentiment rules branch on token class: strong divergence.
    static constexpr double kDivergence = 3.0;

    core::StreamRef<std::uint64_t> tweets{0};
    core::TableRef<std::uint32_t> positive;
    core::TableRef<std::uint32_t> negative;
    core::TableRef<std::uint32_t> adverbs;
    core::TableRef<std::uint64_t> score;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t base = r * kElemsPerRecord;
        const auto timestamp = ctx.read(tweets, base);
        core::Val<Ctx, std::int64_t> sentiment = 0;
        core::Val<Ctx, std::int64_t> emphasis = 1;
        for (std::uint32_t t = 0; t < kTokens; ++t) {
          const auto token = ctx.read(tweets, base + 9 + t);
          const auto h = token % kDictBuckets;
          const auto is_positive = ctx.load_table(positive, h);
          const auto is_negative = ctx.load_table(negative, h);
          const auto is_adverb = ctx.load_table(adverbs, h);
          // Lexical analysis: stemming, precedence rules, window scoring —
          // modelled as a heavy per-token arithmetic cost.
          charge_alu(ctx, 260, kDivergence);
          if (is_adverb != 0) {
            emphasis = 2;
          } else {
            sentiment += emphasis * (value_cast<std::int64_t>(is_positive) -
                                     value_cast<std::int64_t>(is_negative));
            emphasis = 1;
          }
        }
        charge_alu(ctx, 12.0 + value_cast<double>(timestamp % 2),
                   kDivergence);  // aggregation
        ctx.atomic_add_table(score, 0,
                             value_cast<std::uint64_t>(sentiment));
      }
    }
  };

  Kernel kernel() const {
    return Kernel{{0}, positive_, negative_, adverbs_, score_};
  }

  static AppInfo paper_info() {
    return AppInfo{"Opinion Finder", 6.2, "Fixed-length", 73.0, 0.0};
  }
  std::uint64_t result_digest() const;
  std::int64_t sentiment_score() const;

 private:
  std::uint64_t records_;
  std::vector<std::uint64_t> tweets_;
  core::TableSet tables_;
  core::TableRef<std::uint32_t> positive_;
  core::TableRef<std::uint32_t> negative_;
  core::TableRef<std::uint32_t> adverbs_;
  core::TableRef<std::uint64_t> score_;
};

}  // namespace bigk::apps
