// K-means (assignment step), the paper's running example (§III).
//
// Mapped data: particles as fixed 64-byte records of 8 doubles
// [x, y, z, w, cid, r0, r1, r2]. The kernel reads the 4 coordinates
// (32 B = 50% of the record, Table I) and writes the cluster id
// (8 B = 12.5% ~ the paper's 12%). The centroid table is explicitly
// device-resident, outside BigKernel's purview, exactly as in the paper's
// example; it is loaded once per thread slice (shared-memory style) and the
// per-record work is the k-way distance computation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class KmeansApp {
 public:
  static constexpr std::uint32_t kElemsPerRecord = 8;
  static constexpr std::uint32_t kReadsPerRecord = 4;
  static constexpr std::uint32_t kClusters = 64;
  static constexpr std::uint32_t kDims = 4;

  struct Params {
    std::uint64_t data_bytes = 6ull << 20;
    std::uint64_t seed = 1;
  };

  explicit KmeansApp(const Params& params);

  // --- scheme-runner interface ---
  void reset();
  std::uint64_t num_records() const { return records_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    core::StreamRef<double> particles{0};
    core::TableRef<double> centroids;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      // Centroids are staged once per slice (shared memory in a real
      // kernel); values are dummies during address generation, which is fine
      // because they do not influence any stream address. Locals derived
      // from stream/table values use core::Val so bigkstatic can track them.
      core::Val<Ctx, double> centroid[kClusters][kDims];
      for (std::uint32_t c = 0; c < kClusters; ++c) {
        for (std::uint32_t d = 0; d < kDims; ++d) {
          centroid[c][d] = ctx.load_table(centroids, c * kDims + d);
        }
      }
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t base = r * kElemsPerRecord;
        core::Val<Ctx, double> point[kDims];
        for (std::uint32_t d = 0; d < kDims; ++d) {
          point[d] = ctx.read(particles, base + d);
        }
        core::Val<Ctx, double> best = 1e300;
        std::uint32_t best_cluster = 0;
        for (std::uint32_t c = 0; c < kClusters; ++c) {
          core::Val<Ctx, double> dist = 0.0;
          for (std::uint32_t d = 0; d < kDims; ++d) {
            const auto delta = point[d] - centroid[c][d];
            dist += delta * delta;
          }
          if (dist < best) {
            best = dist;
            best_cluster = c;
          }
        }
        ctx.alu(kClusters * (3.0 * kDims + 2.0));
        ctx.write(particles, base + 4, value_cast<double>(best_cluster));
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, centroids_}; }

  // --- metadata / validation ---
  static AppInfo paper_info() {
    return AppInfo{"K-means", 6.0, "Fixed-length", 50.0, 12.0};
  }
  std::uint64_t result_digest() const;

 private:
  std::uint64_t records_;
  std::vector<double> particles_;
  std::vector<double> initial_centroids_;
  core::TableSet tables_;
  core::TableRef<double> centroids_;
};

}  // namespace bigk::apps
