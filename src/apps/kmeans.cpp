#include "apps/kmeans.hpp"

#include <bit>

namespace bigk::apps {

KmeansApp::KmeansApp(const Params& params) {
  records_ = params.data_bytes / (kElemsPerRecord * sizeof(double));
  particles_.resize(records_ * kElemsPerRecord);
  Rng rng(params.seed);
  for (std::uint64_t r = 0; r < records_; ++r) {
    double* record = &particles_[r * kElemsPerRecord];
    for (std::uint32_t d = 0; d < kDims; ++d) {
      record[d] = rng.unit() * 100.0;
    }
    record[4] = -1.0;  // cid, written by the kernel
    record[5] = rng.unit();
    record[6] = rng.unit();
    record[7] = rng.unit();
  }

  centroids_ = tables_.add<double>(kClusters * kDims);
  Rng centroid_rng(params.seed ^ 0xC1u);
  auto span = tables_.host_span(centroids_);
  for (double& value : span) value = centroid_rng.unit() * 100.0;
  initial_centroids_.assign(span.begin(), span.end());
}

void KmeansApp::reset() {
  for (std::uint64_t r = 0; r < records_; ++r) {
    particles_[r * kElemsPerRecord + 4] = -1.0;
  }
  auto span = tables_.host_span(centroids_);
  std::copy(initial_centroids_.begin(), initial_centroids_.end(),
            span.begin());
}

std::vector<schemes::StreamDecl> KmeansApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(particles_.data());
  decl.binding.num_elements = particles_.size();
  decl.binding.elem_size = sizeof(double);
  decl.binding.mode = core::AccessMode::kReadWrite;
  decl.binding.elems_per_record = kElemsPerRecord;
  decl.binding.reads_per_record = kReadsPerRecord;
  decl.binding.writes_per_record = 1;
  return {decl};
}

std::uint64_t KmeansApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint64_t r = 0; r < records_; ++r) {
    digest = fnv1a(digest, std::bit_cast<std::uint64_t>(
                               particles_[r * kElemsPerRecord + 4]));
  }
  return digest;
}

}  // namespace bigk::apps
