// Word Count: counts occurrences of each word in a large mapped document
// (100% of the mapped data is read, Table I).
//
// The corpus is line-structured: fixed 64-byte lines of space-separated
// words terminated by '\n' (words never span lines), standing in for the
// paper's free-form text. The partition unit (a "record") is one line, so
// every scheme assigns whole lines to threads and word semantics are
// partition-independent; within a line the kernel still reads character by
// character — one 1-byte access per address, the granularity that makes
// pattern recognition so valuable for this app (Table II: 66%).
//
// Counts go to a centralized hash table via atomics, the paper's noted
// source of synchronization overhead that keeps Word Count compute-bound.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class WordCountApp {
 public:
  static constexpr std::uint32_t kLineBytes = 64;
  static constexpr std::uint32_t kBuckets = 1u << 16;

  struct Params {
    std::uint64_t data_bytes = 4ull << 20;
    std::uint64_t seed = 2;
  };

  explicit WordCountApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return lines_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return false; }  // text: contiguous
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    /// Warp-divergence factor: word-boundary branches diverge heavily.
    static constexpr double kDivergence = 3.0;

    core::StreamRef<std::uint8_t> text{0};
    core::TableRef<std::uint32_t> counts;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t line = rec_begin; line < rec_end; line += stride) {
        const std::uint64_t base = line * kLineBytes;
        core::Val<Ctx, std::uint64_t> hash = kFnvBasis;
        bool in_word = false;
        for (std::uint32_t i = 0; i < kLineBytes; ++i) {
          const auto c = ctx.read(text, base + i);
          charge_alu(ctx, 14, kDivergence);  // classify + hash + word rules
          if (c >= 'a' && c <= 'z') {
            hash = (hash ^ c) * 0x100000001B3ull;
            in_word = true;
          } else {
            if (in_word) {
              ctx.atomic_add_table(counts,
                                   (hash >> 32) % kBuckets,
                                   std::uint32_t{1});
              hash = kFnvBasis;
              in_word = false;
            }
          }
        }
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, counts_}; }

  static AppInfo paper_info() {
    return AppInfo{"Word Count", 4.5, "Variable-length", 100.0, 0.0};
  }
  std::uint64_t result_digest() const;
  std::uint64_t total_words() const;

 private:
  std::uint64_t lines_;
  std::vector<std::uint8_t> text_;
  core::TableSet tables_;
  core::TableRef<std::uint32_t> counts_;
};

}  // namespace bigk::apps
