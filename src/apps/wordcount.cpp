#include "apps/wordcount.hpp"

#include <algorithm>

namespace bigk::apps {

WordCountApp::WordCountApp(const Params& params) {
  lines_ = params.data_bytes / kLineBytes;
  text_.resize(lines_ * kLineBytes);
  Rng rng(params.seed);
  // A small Zipf-ish vocabulary: short common words, longer rare ones.
  for (std::uint64_t line = 0; line < lines_; ++line) {
    std::uint8_t* out = &text_[line * kLineBytes];
    std::uint32_t pos = 0;
    while (true) {
      // Word length 2..9, biased short.
      const std::uint32_t len =
          2 + static_cast<std::uint32_t>(rng.below(8) * rng.below(8) / 8);
      if (pos + len + 1 >= kLineBytes - 1) break;
      // A vocabulary of ~4096 stems keyed by a random id.
      std::uint64_t word_id = rng.below(4096);
      for (std::uint32_t i = 0; i < len; ++i) {
        out[pos++] = static_cast<std::uint8_t>('a' + (word_id + i * 7) % 26);
        word_id /= 3;
      }
      out[pos++] = ' ';
    }
    while (pos < kLineBytes - 1) out[pos++] = ' ';
    out[pos] = '\n';
  }

  counts_ = tables_.add<std::uint32_t>(kBuckets);
  reset();
}

void WordCountApp::reset() {
  auto counts = tables_.host_span(counts_);
  std::fill(counts.begin(), counts.end(), 0u);
}

std::vector<schemes::StreamDecl> WordCountApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(text_.data());
  decl.binding.num_elements = text_.size();
  decl.binding.elem_size = 1;
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = kLineBytes;
  decl.binding.reads_per_record = kLineBytes;
  decl.binding.writes_per_record = 0;
  return {decl};
}

std::uint64_t WordCountApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint32_t count : tables_.host_span(counts_)) {
    digest = fnv1a(digest, count);
  }
  return digest;
}

std::uint64_t WordCountApp::total_words() const {
  std::uint64_t total = 0;
  for (std::uint32_t count : tables_.host_span(counts_)) total += count;
  return total;
}

}  // namespace bigk::apps
