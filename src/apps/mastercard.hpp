// MasterCard Affinity: find all merchants frequently visited by customers of
// a target merchant X.
//
// Mapped data: a transaction log. The paper's application makes two passes;
// pass 1 (extracting the customer list of merchant X) is provided here as a
// precomputed device-resident customer table, and the benchmark runs pass 2:
// counting, over all transactions, the merchants visited by those customers.
//
// Two variants, as in the evaluation:
//
//  * MastercardApp — variable-length '|'-delimited text records terminated
//    by '\n' (Table I: 100% read). Threads own byte ranges; a record belongs
//    to the thread whose range contains the newline *preceding* it, and a
//    bounded look-ahead window past the range end (kMaxRecordBytes) lets the
//    owning thread finish its tail record. Every byte is scanned — the
//    transformation cannot reduce the transfer volume, the paper's stated
//    reason this app gains little beyond overlap + coalescing.
//
//  * MastercardIndexedApp — an extra index of record offsets lets the kernel
//    touch only the card and merchant fields (~25% read, Table I). The
//    index-driven addresses are irregular, so pattern recognition does not
//    apply (Table II: NA).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class MastercardApp {
 public:
  static constexpr std::uint32_t kMaxRecordBytes = 64;
  static constexpr std::uint32_t kCustomerBuckets = 1u << 14;
  static constexpr std::uint32_t kMerchantBuckets = 1u << 14;
  static constexpr std::uint64_t kTargetMerchant = 4242;

  struct Params {
    std::uint64_t data_bytes = 6ull << 20;
    std::uint64_t seed = 6;
  };

  explicit MastercardApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return bytes_; }  // unit: one byte
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return false; }  // text: contiguous
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    /// Field/record parsing branches per character.
    static constexpr double kDivergence = 3.0;

    core::StreamRef<std::uint8_t> log{0};
    core::TableRef<std::uint32_t> customers;
    core::TableRef<std::uint32_t> merchant_counts;
    std::uint64_t num_bytes;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t begin, std::uint64_t end,
                    std::uint64_t stride) const {
      assert(stride == 1 && "byte-scanning kernel requires contiguous ranges");
      (void)stride;
      const std::uint64_t window_end =
          std::min(num_bytes, end + kMaxRecordBytes);
      bool capturing = begin == 0;  // virtual '\n' before byte 0
      core::Val<Ctx, std::uint64_t> card = 0;
      core::Val<Ctx, std::uint64_t> merchant = 0;
      std::uint32_t field = 0;
      // Reads are unconditional over the whole window so the access sequence
      // is independent of stream values (the BigKernel restriction); only
      // the *processing* below is conditional.
      for (std::uint64_t i = begin; i < window_end; ++i) {
        const auto c = ctx.read(log, i);
        charge_alu(ctx, 4, kDivergence);
        if (c == '\n') {
          if (capturing) {
            charge_alu(ctx, 8, kDivergence);
            if (ctx.load_table(customers, card % kCustomerBuckets) != 0) {
              ctx.atomic_add_table(merchant_counts,
                                   merchant % kMerchantBuckets,
                                   std::uint32_t{1});
            }
          }
          capturing = i < end;  // the next record's preceding '\n' is i
          card = 0;
          merchant = 0;
          field = 0;
        } else if (capturing) {
          if (c == '|') {
            ++field;
          } else if (field == 0) {
            card = card * 10 + (c - '0');
          } else if (field == 1) {
            merchant = merchant * 10 + (c - '0');
          }  // further fields (amount, payload) are scanned but unused
        }
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, customers_, counts_, bytes_}; }

  static AppInfo paper_info() {
    return AppInfo{"MasterCard Affinity", 6.4, "Variable-length", 100.0, 0.0};
  }
  std::uint64_t result_digest() const;
  std::uint64_t transactions() const { return transactions_; }

 private:
  std::uint64_t bytes_ = 0;
  std::uint64_t transactions_ = 0;
  std::vector<std::uint8_t> log_;
  core::TableSet tables_;
  core::TableRef<std::uint32_t> customers_;
  core::TableRef<std::uint32_t> counts_;
};

class MastercardIndexedApp {
 public:
  static constexpr std::uint32_t kGroupRecords = 8;   // records per group
  static constexpr std::uint32_t kGroupElems = 64;    // 8-byte units
  static constexpr std::uint32_t kCustomerBuckets = 1u << 14;
  static constexpr std::uint32_t kMerchantBuckets = 1u << 14;

  struct Params {
    std::uint64_t data_bytes = 6ull << 20;
    std::uint64_t seed = 7;
  };

  explicit MastercardIndexedApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return groups_; }  // unit: one group
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    static constexpr double kDivergence = 1.5;

    core::StreamRef<std::uint64_t> log{0};
    core::TableRef<std::uint32_t> index;  // record -> element offset
    core::TableRef<std::uint32_t> customers;
    core::TableRef<std::uint32_t> merchant_counts;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t group_begin,
                    std::uint64_t group_end, std::uint64_t stride) const {
      for (std::uint64_t g = group_begin; g < group_end; g += stride) {
        for (std::uint32_t t = 0; t < kGroupRecords; ++t) {
          const std::uint64_t record = g * kGroupRecords + t;
          // The index read *feeds address computation*: the transformation
          // keeps it in the address-generation stage.
          const auto offset = ctx.load_addr_table(index, record);
          const auto card = ctx.read(log, offset);
          const auto merchant = ctx.read(log, offset + 1);
          charge_alu(ctx, 10, kDivergence);
          if (ctx.load_table(customers, card % kCustomerBuckets) != 0) {
            ctx.atomic_add_table(merchant_counts,
                                 merchant % kMerchantBuckets,
                                 std::uint32_t{1});
          }
        }
      }
    }
  };

  Kernel kernel() const {
    return Kernel{{0}, index_, customers_, counts_};
  }

  static AppInfo paper_info() {
    return AppInfo{"MasterCard Affinity (indexed)", 6.4,
                   "Variable-length (indexed)", 25.0, 0.0};
  }
  std::uint64_t result_digest() const;

 private:
  std::uint64_t groups_ = 0;
  std::vector<std::uint64_t> log_;
  core::TableSet tables_;
  core::TableRef<std::uint32_t> index_;
  core::TableRef<std::uint32_t> customers_;
  core::TableRef<std::uint32_t> counts_;
};

}  // namespace bigk::apps
