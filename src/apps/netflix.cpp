#include "apps/netflix.hpp"

#include <algorithm>

namespace bigk::apps {

NetflixApp::NetflixApp(const Params& params) {
  records_ = params.data_bytes / (kElemsPerRecord * sizeof(std::uint64_t));
  ratings_.resize(records_ * kElemsPerRecord);
  Rng rng(params.seed);
  for (std::uint64_t r = 0; r < records_; ++r) {
    std::uint64_t* record = &ratings_[r * kElemsPerRecord];
    record[0] = rng.below(1u << 20);      // user-pair key
    record[1] = 1 + rng.below(5);         // rating a
    record[2] = 1 + rng.below(5);         // rating b
    record[3] = rng.below(17'000);        // movie id
    record[4] = 1'100'000'000 + rng.below(100'000'000);  // timestamp
    for (std::uint32_t i = 5; i < kElemsPerRecord; ++i) {
      record[i] = rng.next();
    }
  }
  correlation_ = tables_.add<std::uint64_t>(kPairBuckets);
  reset();
}

void NetflixApp::reset() {
  auto table = tables_.host_span(correlation_);
  std::fill(table.begin(), table.end(), 0ull);
}

std::vector<schemes::StreamDecl> NetflixApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(ratings_.data());
  decl.binding.num_elements = ratings_.size();
  decl.binding.elem_size = sizeof(std::uint64_t);
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = kElemsPerRecord;
  decl.binding.reads_per_record = kReadsPerRecord;
  decl.binding.writes_per_record = 0;
  return {decl};
}

std::uint64_t NetflixApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint64_t value : tables_.host_span(correlation_)) {
    digest = fnv1a(digest, value);
  }
  return digest;
}

}  // namespace bigk::apps
