// DNA Assembly (Meraculous-style k-mer counting) [Chapman et al. 2011].
//
// Mapped data: fixed 88-byte records of 11 uint64 elements
// [kmer x4, quality, payload x6]; the kernel hashes the 32-base fragment
// prefix (4 elements = 32 B = 36% of the record, Table I) and counts
// occurrences in a device-resident hash table, which is later used to
// extend fragments and drop noisy ones. Records are large, so the original
// layout is inherently non-coalescable — the paper's showcase for the
// layout optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class DnaApp {
 public:
  static constexpr std::uint32_t kElemsPerRecord = 11;
  static constexpr std::uint32_t kReadsPerRecord = 4;
  static constexpr std::uint32_t kBuckets = 1u << 16;

  struct Params {
    std::uint64_t data_bytes = 4ull << 20;
    std::uint64_t seed = 5;
  };

  explicit DnaApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return records_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    core::StreamRef<std::uint64_t> fragments{0};
    core::TableRef<std::uint32_t> kmer_counts;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t base = r * kElemsPerRecord;
        core::Val<Ctx, std::uint64_t> hash = kFnvBasis;
        for (std::uint32_t i = 0; i < kReadsPerRecord; ++i) {
          const auto packed_bases = ctx.read(fragments, base + i);
          hash = fnv1a(hash, packed_bases);
        }
        ctx.alu(4 * 16 + 10);  // base unpacking + canonicalization
        ctx.atomic_add_table(kmer_counts, hash % kBuckets, std::uint32_t{1});
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, kmer_counts_}; }

  static AppInfo paper_info() {
    return AppInfo{"DNA Assembly", 4.5, "Fixed-length", 36.0, 0.0};
  }
  std::uint64_t result_digest() const;

 private:
  std::uint64_t records_;
  std::vector<std::uint64_t> fragments_;
  core::TableSet tables_;
  core::TableRef<std::uint32_t> kmer_counts_;
};

}  // namespace bigk::apps
