#include "apps/mastercard.hpp"

#include <algorithm>
#include <string>

namespace bigk::apps {

namespace {

void append_number(std::vector<std::uint8_t>* out, std::uint64_t value) {
  const std::string digits = std::to_string(value);
  for (char c : digits) out->push_back(static_cast<std::uint8_t>(c));
}

}  // namespace

MastercardApp::MastercardApp(const Params& params) {
  log_.reserve(params.data_bytes + kMaxRecordBytes);
  customers_ = tables_.add<std::uint32_t>(kCustomerBuckets);
  counts_ = tables_.add<std::uint32_t>(kMerchantBuckets);
  auto customers = tables_.host_span(customers_);
  std::fill(customers.begin(), customers.end(), 0u);

  Rng rng(params.seed);
  while (log_.size() + kMaxRecordBytes < params.data_bytes) {
    const std::uint64_t card = 1'000'000'000ull + rng.below(800'000'000ull);
    // A heavy-tailed merchant distribution; the target merchant shows up in
    // ~2% of transactions.
    const std::uint64_t merchant =
        rng.below(50) == 0 ? kTargetMerchant : 1000 + rng.below(8000);
    const std::uint64_t amount = 1 + rng.below(99'999);
    append_number(&log_, card);
    log_.push_back('|');
    append_number(&log_, merchant);
    log_.push_back('|');
    append_number(&log_, amount);
    // Optional free-text memo field, variable length.
    const std::uint64_t memo = rng.below(20);
    if (memo > 12) {
      log_.push_back('|');
      for (std::uint64_t i = 0; i < memo; ++i) {
        log_.push_back(static_cast<std::uint8_t>('0' + rng.below(10)));
      }
    }
    log_.push_back('\n');
    ++transactions_;
    // Pass 1 of the application, precomputed: remember customers of X.
    if (merchant == kTargetMerchant) {
      customers[card % kCustomerBuckets] = 1;
    }
  }
  bytes_ = log_.size();
  reset();
}

void MastercardApp::reset() {
  auto counts = tables_.host_span(counts_);
  std::fill(counts.begin(), counts.end(), 0u);
}

std::vector<schemes::StreamDecl> MastercardApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(log_.data());
  decl.binding.num_elements = log_.size();
  decl.binding.elem_size = 1;
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = 1;  // partition unit: one byte
  decl.binding.reads_per_record = 1;
  decl.binding.writes_per_record = 0;
  schemes::StreamDecl with_overfetch = decl;
  with_overfetch.overfetch_elems = kMaxRecordBytes;
  return {with_overfetch};
}

std::uint64_t MastercardApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint32_t count : tables_.host_span(counts_)) {
    digest = fnv1a(digest, count);
  }
  return digest;
}

MastercardIndexedApp::MastercardIndexedApp(const Params& params) {
  groups_ = params.data_bytes / (kGroupElems * sizeof(std::uint64_t));
  log_.resize(groups_ * kGroupElems);
  const std::uint64_t num_records = groups_ * kGroupRecords;

  index_ = tables_.add<std::uint32_t>(num_records);
  customers_ = tables_.add<std::uint32_t>(kCustomerBuckets);
  counts_ = tables_.add<std::uint32_t>(kMerchantBuckets);
  auto index = tables_.host_span(index_);
  auto customers = tables_.host_span(customers_);
  std::fill(customers.begin(), customers.end(), 0u);

  Rng rng(params.seed);
  for (std::uint64_t g = 0; g < groups_; ++g) {
    // Variable record lengths (4..12 8-byte units) packed to exactly
    // kGroupElems per group, so group boundaries are fixed while record
    // offsets within them are irregular.
    std::uint32_t lengths[kGroupRecords];
    std::uint32_t remaining = kGroupElems;
    for (std::uint32_t t = 0; t < kGroupRecords; ++t) {
      const std::uint32_t left = kGroupRecords - 1 - t;
      const std::uint32_t low =
          remaining > 12 * left ? remaining - 12 * left : 4;
      const std::uint32_t high = std::min(12u, remaining - 4 * left);
      lengths[t] = low + static_cast<std::uint32_t>(rng.below(high - low + 1));
      remaining -= lengths[t];
    }
    std::uint32_t offset = static_cast<std::uint32_t>(g * kGroupElems);
    for (std::uint32_t t = 0; t < kGroupRecords; ++t) {
      const std::uint64_t record = g * kGroupRecords + t;
      const std::uint64_t card = 1'000'000'000ull + rng.below(800'000'000ull);
      const std::uint64_t merchant =
          rng.below(50) == 0 ? MastercardApp::kTargetMerchant
                             : 1000 + rng.below(8000);
      index[record] = offset;
      log_[offset] = card;
      log_[offset + 1] = merchant;
      for (std::uint32_t i = 2; i < lengths[t]; ++i) {
        log_[offset + i] = rng.next();  // amount + payload
      }
      if (merchant == MastercardApp::kTargetMerchant) {
        customers[card % kCustomerBuckets] = 1;
      }
      offset += lengths[t];
    }
  }
  reset();
}

void MastercardIndexedApp::reset() {
  auto counts = tables_.host_span(counts_);
  std::fill(counts.begin(), counts.end(), 0u);
}

std::vector<schemes::StreamDecl> MastercardIndexedApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(log_.data());
  decl.binding.num_elements = log_.size();
  decl.binding.elem_size = sizeof(std::uint64_t);
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = kGroupElems;  // partition unit: one group
  decl.binding.reads_per_record = 2 * kGroupRecords;
  decl.binding.writes_per_record = 0;
  return {decl};
}

std::uint64_t MastercardIndexedApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint32_t count : tables_.host_span(counts_)) {
    digest = fnv1a(digest, count);
  }
  return digest;
}

}  // namespace bigk::apps
