#include "apps/dna.hpp"

#include <algorithm>

namespace bigk::apps {

DnaApp::DnaApp(const Params& params) {
  records_ = params.data_bytes / (kElemsPerRecord * sizeof(std::uint64_t));
  fragments_.resize(records_ * kElemsPerRecord);
  Rng rng(params.seed);
  // Fragments are drawn from a synthetic genome of overlapping reads so that
  // identical k-mers really do repeat (that is what the hash table counts).
  constexpr std::uint64_t kGenomeChunks = 1u << 12;
  for (std::uint64_t r = 0; r < records_; ++r) {
    std::uint64_t* record = &fragments_[r * kElemsPerRecord];
    Rng fragment(params.seed ^ (0x9E37 + rng.below(kGenomeChunks)));
    for (std::uint32_t i = 0; i < kReadsPerRecord; ++i) {
      record[i] = fragment.next();  // 32 packed bases
    }
    record[4] = rng.below(64);  // quality
    for (std::uint32_t i = 5; i < kElemsPerRecord; ++i) {
      record[i] = rng.next();
    }
  }
  kmer_counts_ = tables_.add<std::uint32_t>(kBuckets);
  reset();
}

void DnaApp::reset() {
  auto counts = tables_.host_span(kmer_counts_);
  std::fill(counts.begin(), counts.end(), 0u);
}

std::vector<schemes::StreamDecl> DnaApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(fragments_.data());
  decl.binding.num_elements = fragments_.size();
  decl.binding.elem_size = sizeof(std::uint64_t);
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = kElemsPerRecord;
  decl.binding.reads_per_record = kReadsPerRecord;
  decl.binding.writes_per_record = 0;
  return {decl};
}

std::uint64_t DnaApp::result_digest() const {
  std::uint64_t digest = kFnvBasis;
  for (std::uint32_t count : tables_.host_span(kmer_counts_)) {
    digest = fnv1a(digest, count);
  }
  return digest;
}

}  // namespace bigk::apps
