// Shared application infrastructure: deterministic RNG, Table-I metadata,
// and the scaling rule that maps the paper's multi-gigabyte inputs onto
// simulation-friendly sizes.
//
// Scaling: every capacity (input bytes, GPU memory) is multiplied by the
// same factor, so the out-of-core ratio — the property all of the paper's
// effects depend on — is preserved exactly. Rates (GB/s, GHz) are never
// scaled, so time *ratios* are scale-invariant.
#pragma once

#include <cstdint>
#include <string>

#include "core/stream.hpp"
#include "gpusim/config.hpp"

namespace bigk::apps {

/// Kernel-value cast: resolves to static_cast on executing contexts and to
/// the taint-preserving overload (via ADL) when kernels run under
/// bigkstatic's abstract contexts.
using core::value_cast;

/// Deterministic 64-bit RNG (splitmix64): seedable, fast, and identical on
/// every platform, so generated datasets and results are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  double unit() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a, used for both in-kernel hashing and result digests.
constexpr std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}
constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ull;

/// Charges `ops` arithmetic operations, inflated by `warp_divergence` on
/// SIMD (GPU) contexts. Divergent branches make lock-step warps execute both
/// paths; each kernel declares how branchy its inner loop is (1.0 = uniform
/// control flow, e.g. K-means; ~3 = heavily data-dependent text processing).
/// CPU contexts execute scalar code and pay the plain cost. `ops` is a
/// template so abstract (tainted) values can flow through unchanged.
template <class Ctx, class Ops>
void charge_alu(Ctx& ctx, Ops ops, double warp_divergence) {
  if (Ctx::kSimd) {
    ctx.alu(ops * warp_divergence);
  } else {
    ctx.alu(ops);
  }
}

/// A Table I row: the paper-scale characteristics of an app's mapped data.
struct AppInfo {
  std::string name;
  double paper_data_gb = 0.0;  // "Data Size" column
  const char* record_type = "Fixed-length";
  double read_pct = 0.0;      // "Mapped Data Access Proportion: Read"
  double modified_pct = 0.0;  // "...: Modified"
};

/// Scale factor applied to the paper's testbed and datasets. The same value
/// must be used for the SystemConfig and for app sizing.
struct ScaledSystem {
  double scale = 0.01;

  gpusim::SystemConfig config() const {
    gpusim::SystemConfig system;
    system.capacity_scale = scale;
    system.gpu.global_memory_bytes = static_cast<std::uint64_t>(
        2.0 * 1024 * 1024 * 1024 * scale);  // GTX 680: 2 GB
    return system;
  }

  /// Scaled byte size for a paper-scale dataset of `gigabytes` (1 GB = 2^30).
  std::uint64_t data_bytes(double gigabytes) const {
    return static_cast<std::uint64_t>(gigabytes * 1024 * 1024 * 1024 * scale);
  }
};

}  // namespace bigk::apps
