#include "apps/opinion.hpp"

#include <algorithm>

namespace bigk::apps {

OpinionApp::OpinionApp(const Params& params) {
  records_ = params.data_bytes / (kElemsPerRecord * sizeof(std::uint64_t));
  tweets_.resize(records_ * kElemsPerRecord);
  Rng rng(params.seed);
  for (std::uint64_t r = 0; r < records_; ++r) {
    std::uint64_t* record = &tweets_[r * kElemsPerRecord];
    record[0] = 1'300'000'000 + rng.below(50'000'000);  // timestamp
    for (std::uint32_t i = 1; i < 9; ++i) record[i] = rng.next();  // metadata
    for (std::uint32_t t = 0; t < kTokens; ++t) {
      record[9 + t] = rng.below(1u << 16);  // token id
    }
    record[31] = rng.next();
  }

  positive_ = tables_.add<std::uint32_t>(kDictBuckets);
  negative_ = tables_.add<std::uint32_t>(kDictBuckets);
  adverbs_ = tables_.add<std::uint32_t>(kDictBuckets);
  score_ = tables_.add<std::uint64_t>(1);

  Rng dict_rng(params.seed ^ 0xD1C7);
  auto fill_dict = [&](core::TableRef<std::uint32_t> dict, double density) {
    auto span = tables_.host_span(dict);
    for (std::uint32_t& slot : span) {
      slot = dict_rng.unit() < density ? 1u : 0u;
    }
  };
  fill_dict(positive_, 0.08);
  fill_dict(negative_, 0.08);
  fill_dict(adverbs_, 0.04);
  reset();
}

void OpinionApp::reset() { tables_.host_span(score_)[0] = 0; }

std::vector<schemes::StreamDecl> OpinionApp::stream_decls() {
  schemes::StreamDecl decl;
  decl.binding.host_data = reinterpret_cast<std::byte*>(tweets_.data());
  decl.binding.num_elements = tweets_.size();
  decl.binding.elem_size = sizeof(std::uint64_t);
  decl.binding.mode = core::AccessMode::kReadOnly;
  decl.binding.elems_per_record = kElemsPerRecord;
  decl.binding.reads_per_record = kReadsPerRecord;
  decl.binding.writes_per_record = 0;
  return {decl};
}

std::uint64_t OpinionApp::result_digest() const {
  return fnv1a(kFnvBasis, tables_.host_span(score_)[0]);
}

std::int64_t OpinionApp::sentiment_score() const {
  return static_cast<std::int64_t>(tables_.host_span(score_)[0]);
}

}  // namespace bigk::apps
