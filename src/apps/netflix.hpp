// Netflix: predicts user movie preferences by correlating pairs of user
// ratings [Chen & Schlosser 2008].
//
// Mapped data: fixed 80-byte records of 10 uint64 elements
// [pair_key, rating_a, rating_b, movie, ts, payload x5]; the kernel reads
// the first 3 (24 B = 30% of the record, Table I) and accumulates the
// rating correlation of each user pair into a device-resident table.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.hpp"
#include "core/stream.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

class NetflixApp {
 public:
  static constexpr std::uint32_t kElemsPerRecord = 10;
  static constexpr std::uint32_t kReadsPerRecord = 3;
  static constexpr std::uint32_t kPairBuckets = 1u << 14;

  struct Params {
    std::uint64_t data_bytes = 6ull << 20;
    std::uint64_t seed = 3;
  };

  explicit NetflixApp(const Params& params);

  void reset();
  std::uint64_t num_records() const { return records_; }
  core::TableSet& tables() { return tables_; }
  bool interleaved_records() const { return true; }
  std::vector<schemes::StreamDecl> stream_decls();

  struct Kernel {
    core::StreamRef<std::uint64_t> ratings{0};
    core::TableRef<std::uint64_t> correlation;

    template <class Ctx>
    void operator()(Ctx& ctx, std::uint64_t rec_begin, std::uint64_t rec_end,
                    std::uint64_t stride) const {
      for (std::uint64_t r = rec_begin; r < rec_end; r += stride) {
        const std::uint64_t base = r * kElemsPerRecord;
        const auto pair_key = ctx.read(ratings, base);
        const auto rating_a = ctx.read(ratings, base + 1);
        const auto rating_b = ctx.read(ratings, base + 2);
        // Pearson-style contribution (means handled in a later CPU pass):
        // accumulate a*b and the marginals packed into one counter.
        const auto contribution =
            rating_a * rating_b + (rating_a << 16) + (rating_b << 32);
        ctx.alu(18);
        ctx.atomic_add_table(correlation, pair_key % kPairBuckets,
                             contribution);
      }
    }
  };

  Kernel kernel() const { return Kernel{{0}, correlation_}; }

  static AppInfo paper_info() {
    return AppInfo{"Netflix", 6.0, "Fixed-length", 30.0, 0.0};
  }
  std::uint64_t result_digest() const;

 private:
  std::uint64_t records_;
  std::vector<std::uint64_t> ratings_;
  core::TableSet tables_;
  core::TableRef<std::uint64_t> correlation_;
};

}  // namespace bigk::apps
