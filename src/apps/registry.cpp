#include "apps/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "apps/dna.hpp"
#include "apps/kmeans.hpp"
#include "apps/mastercard.hpp"
#include "apps/netflix.hpp"
#include "apps/opinion.hpp"
#include "apps/wordcount.hpp"
#include "core/device_tables.hpp"
#include "core/engine.hpp"
#include "dur/checksum.hpp"
#include "verify/verifier.hpp"

namespace bigk::apps {

namespace {

/// JobRunner over one concrete app type, mirroring schemes::run_bigkernel's
/// launch sequence but against a caller-provided device of a pool.
template <class App>
class AppJobRunner final : public JobRunner {
 public:
  AppJobRunner(const typename App::Params& params, std::string name)
      : app_(params), name_(std::move(name)) {}

  const std::string& app_name() const noexcept override { return name_; }
  std::uint64_t num_records() const override { return app_.num_records(); }

  std::uint64_t input_bytes() const override {
    std::uint64_t total = 0;
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      total += decl.binding.size_bytes();
    }
    return total;
  }

  sim::Task<> run(cusim::Runtime& runtime, const JobRunConfig& cfg) override {
    // bigkdur: windowed launches resume mid-job — only the first window may
    // reset the app's output state, later windows append to it.
    if (cfg.rec_begin == 0) app_.reset();
    core::Engine engine(runtime, cfg.engine);
    engine.set_tracer(cfg.tracer);
    engine.set_trace_scope(cfg.trace_scope);
    engine.set_sanitizer(cfg.sanitizer);
    engine.set_chunk_cache(cfg.chunk_cache, cfg.dataset_id);
    engine.set_pinned_pool(cfg.pinned_pool);
    engine.set_profiler(cfg.profiler);
    engine.set_static_signature(cfg.static_signature);
    engine.set_integrity(cfg.integrity);
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      engine.map_stream(decl.binding, decl.overfetch_elems);
    }
    const auto kernel = app_.kernel();
    core::DeviceTables tables =
        co_await core::DeviceTables::upload(runtime, app_.tables());
    const std::uint64_t end =
        cfg.rec_end > 0 ? std::min(cfg.rec_end, app_.num_records())
                        : app_.num_records();
    const std::uint64_t offset = std::min(cfg.rec_begin, end);
    auto shifted = [kernel, offset](auto& ctx, std::uint64_t b,
                                    std::uint64_t e, std::uint64_t stride) {
      kernel(ctx, b + offset, e + offset, stride);
    };
    co_await engine.launch(shifted, end - offset, tables);
    if (cfg.exec_done != nullptr) *cfg.exec_done = runtime.sim().now();
    co_await tables.download();
    tables.release();
  }

  sim::Task<> run_cpu(hostsim::HostCpu& cpu,
                      const CpuJobConfig& cfg) override {
    app_.reset();
    auto decls = app_.stream_decls();
    auto bindings = schemes::detail::make_bindings(decls);
    const std::uint64_t num_records = app_.num_records();
    const std::uint32_t threads =
        cfg.threads > 0 ? cfg.threads : cpu.config().hw_threads;
    const std::uint64_t per =
        threads == 0 ? num_records : (num_records + threads - 1) / threads;
    std::vector<sim::Process> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
      const std::uint64_t begin =
          std::min(std::uint64_t{t} * per, num_records);
      const std::uint64_t end = std::min(begin + per, num_records);
      if (begin >= end) break;
      workers.push_back(cpu.sim().spawn(schemes::detail::cpu_partition(
          cpu, bindings, app_.tables(), app_.kernel(), begin, end, threads,
          cfg.batch_records)));
    }
    for (sim::Process& worker : workers) co_await worker.join();
    if (cfg.exec_done != nullptr) *cfg.exec_done = cpu.sim().now();
  }

  std::uint64_t output_digest(std::uint64_t records_done) override {
    // Digest the write-mode output prefix the first `records_done` records
    // produced — the journal's proof that a checkpoint's bytes survived.
    dur::Checksum sum;
    bool any = false;
    for (const schemes::StreamDecl& decl : app_.stream_decls()) {
      const core::StreamBinding& b = decl.binding;
      if (b.mode != core::AccessMode::kReadWrite) continue;
      const std::uint64_t bytes = std::min(
          records_done * b.elems_per_record * b.elem_size, b.size_bytes());
      sum.mix_bytes({b.host_data, bytes});
      any = true;
    }
    return any ? sum.value() : 0;
  }

 private:
  // stream_decls() is non-const on the duck-typed app interface.
  mutable App app_;
  std::string name_;
};

template <class App>
BenchApp make_entry(const ScaledSystem& scaled, std::uint64_t seed,
                    bool pattern_applicable = true) {
  BenchApp entry;
  entry.info = App::paper_info();
  entry.name = entry.info.name;
  entry.pattern_applicable = pattern_applicable;
  const std::uint64_t bytes = scaled.data_bytes(entry.info.paper_data_gb);
  entry.run = [bytes, seed](schemes::Scheme scheme,
                            const gpusim::SystemConfig& config,
                            const schemes::SchemeConfig& sc) {
    typename App::Params params;
    params.data_bytes = bytes;
    params.seed = seed;
    App app(params);
    return schemes::run_scheme(scheme, config, app, sc);
  };
  const std::string name = entry.name;
  entry.make_runner = [bytes, seed, name]() -> std::unique_ptr<JobRunner> {
    typename App::Params params;
    params.data_bytes = bytes;
    params.seed = seed;
    return std::make_unique<AppJobRunner<App>>(params, name);
  };
  entry.verify = [seed, name]() {
    typename App::Params params;
    params.data_bytes = 1u << 16;  // contracts depend on code, not scale
    params.seed = seed;
    App app(params);
    verify::KernelReport report = verify::verify_app(app);
    report.app = name;
    return report;
  };
  return entry;
}

}  // namespace

std::vector<BenchApp> benchmark_apps(const ScaledSystem& scaled) {
  std::vector<BenchApp> suite;
  suite.push_back(make_entry<KmeansApp>(scaled, 11));
  suite.push_back(make_entry<WordCountApp>(scaled, 22));
  suite.push_back(make_entry<NetflixApp>(scaled, 33));
  suite.push_back(make_entry<OpinionApp>(scaled, 44));
  suite.push_back(make_entry<DnaApp>(scaled, 55));
  suite.push_back(make_entry<MastercardApp>(scaled, 66));
  suite.push_back(make_entry<MastercardIndexedApp>(scaled, 77,
                                                   /*pattern_applicable=*/false));
  return suite;
}

std::vector<std::string> app_names(const std::vector<BenchApp>& suite) {
  std::vector<std::string> names;
  names.reserve(suite.size());
  for (const BenchApp& app : suite) names.push_back(app.name);
  return names;
}

const BenchApp& find_app(const std::vector<BenchApp>& suite,
                         std::string_view name) {
  for (const BenchApp& app : suite) {
    if (app.name == name) return app;
  }
  std::ostringstream message;
  message << "unknown app \"" << name << "\"; valid apps:";
  for (const BenchApp& app : suite) message << " \"" << app.name << "\"";
  throw std::invalid_argument(message.str());
}

const verify::KernelReport& static_verdict(const BenchApp& app) {
  if (!app.verdict) {
    if (app.verify) {
      app.verdict =
          std::make_shared<const verify::KernelReport>(app.verify());
    } else {
      verify::KernelReport report;
      report.app = app.name;
      verify::Violation violation;
      violation.check = verify::Check::kStreamingRestriction;
      violation.kind = "unverified";
      violation.message = "no static verifier registered for app";
      report.add(std::move(violation));
      app.verdict =
          std::make_shared<const verify::KernelReport>(std::move(report));
    }
  }
  return *app.verdict;
}

}  // namespace bigk::apps
