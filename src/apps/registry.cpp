#include "apps/registry.hpp"

#include "apps/dna.hpp"
#include "apps/kmeans.hpp"
#include "apps/mastercard.hpp"
#include "apps/netflix.hpp"
#include "apps/opinion.hpp"
#include "apps/wordcount.hpp"

namespace bigk::apps {

namespace {

template <class App>
BenchApp make_entry(const ScaledSystem& scaled, std::uint64_t seed,
                    bool pattern_applicable = true) {
  BenchApp entry;
  entry.info = App::paper_info();
  entry.name = entry.info.name;
  entry.pattern_applicable = pattern_applicable;
  const std::uint64_t bytes = scaled.data_bytes(entry.info.paper_data_gb);
  entry.run = [bytes, seed](schemes::Scheme scheme,
                            const gpusim::SystemConfig& config,
                            const schemes::SchemeConfig& sc) {
    typename App::Params params;
    params.data_bytes = bytes;
    params.seed = seed;
    App app(params);
    return schemes::run_scheme(scheme, config, app, sc);
  };
  return entry;
}

}  // namespace

std::vector<BenchApp> benchmark_apps(const ScaledSystem& scaled) {
  std::vector<BenchApp> suite;
  suite.push_back(make_entry<KmeansApp>(scaled, 11));
  suite.push_back(make_entry<WordCountApp>(scaled, 22));
  suite.push_back(make_entry<NetflixApp>(scaled, 33));
  suite.push_back(make_entry<OpinionApp>(scaled, 44));
  suite.push_back(make_entry<DnaApp>(scaled, 55));
  suite.push_back(make_entry<MastercardApp>(scaled, 66));
  suite.push_back(make_entry<MastercardIndexedApp>(scaled, 77,
                                                   /*pattern_applicable=*/false));
  return suite;
}

}  // namespace bigk::apps
