// Registry of the paper's six benchmark applications (plus the indexed
// MasterCard variant) in evaluation order, type-erased for the benchmark
// harness.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/common.hpp"
#include "gpusim/config.hpp"
#include "schemes/metrics.hpp"
#include "schemes/runners.hpp"

namespace bigk::apps {

struct BenchApp {
  std::string name;
  AppInfo info;
  /// Table II marks pattern recognition "NA" for the indexed variant.
  bool pattern_applicable = true;
  /// Runs a freshly generated instance under `scheme`.
  std::function<schemes::RunMetrics(schemes::Scheme,
                                    const gpusim::SystemConfig&,
                                    const schemes::SchemeConfig&)>
      run;
};

/// Builds the benchmark suite at the given scale (data sizes follow
/// Table I's paper-scale figures times `scaled.scale`).
std::vector<BenchApp> benchmark_apps(const ScaledSystem& scaled);

}  // namespace bigk::apps
