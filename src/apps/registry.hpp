// Registry of the paper's six benchmark applications (plus the indexed
// MasterCard variant) in evaluation order, type-erased for the benchmark
// harness and the serving layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/common.hpp"
#include "cache/chunk_cache.hpp"
#include "cache/pinned_pool.hpp"
#include "check/sanitizer.hpp"
#include "core/options.hpp"
#include "cusim/runtime.hpp"
#include "dur/integrity.hpp"
#include "gpusim/config.hpp"
#include "obs/prof/attribution.hpp"
#include "obs/tracer.hpp"
#include "schemes/metrics.hpp"
#include "schemes/runners.hpp"
#include "sim/simulation.hpp"
#include "verify/contracts.hpp"

namespace bigk::apps {

/// Everything a JobRunner needs besides the target device. The pointers are
/// externally owned and may be null; `sanitizer` (when set) must already be
/// installed on the runtime's GPU by the caller.
struct JobRunConfig {
  core::Options engine;
  obs::Tracer* tracer = nullptr;
  check::Sanitizer* sanitizer = nullptr;
  /// Prefix for the engine's trace process rows (e.g. "dev2 job7 ") so
  /// concurrent engines on different devices write disjoint tracks.
  std::string trace_scope;
  /// bigkcache: chunk cache + pinned assembly-buffer pool of the target
  /// device (both owned by the serving layer; must live on the same device
  /// the job runs on). `dataset_id` identifies the app's generated dataset
  /// for cache keying — the serving layer hashes the app name.
  cache::ChunkCache* chunk_cache = nullptr;
  cache::PinnedPool* pinned_pool = nullptr;
  std::uint64_t dataset_id = 0;
  /// bigkprof: per-device bottleneck profiler the engine feeds its stage
  /// intervals to (owned by the serving layer; may be null).
  obs::prof::StageProfiler* profiler = nullptr;
  /// bigkprof: when set, the runner writes the sim time at which the engine
  /// launch completed (before table download / epilogue) — the serving
  /// layer's execution/write-back boundary for the latency breakdown.
  sim::TimePs* exec_done = nullptr;
  /// bigkstatic: the app's statically derived access-pattern signature
  /// (KernelReport::pattern_signature), mixed into chunk-cache keys so a
  /// kernel change that alters the pattern invalidates cached chunks.
  std::uint64_t static_signature = 0;
  /// bigkdur: record window [rec_begin, rec_end) to execute this call
  /// (0/0 = the whole job). The serving layer launches jobs in checkpoint
  /// windows so a crashed server can resume from the last journaled window;
  /// rec_begin == 0 resets the app's output state, later windows keep it.
  std::uint64_t rec_begin = 0;
  std::uint64_t rec_end = 0;
  /// bigkdur: end-to-end chunk integrity plane the engine verifies custody
  /// transfers against (null = integrity off).
  dur::Integrity* integrity = nullptr;
};

/// Configuration for CPU-side job execution (bigkhetero serve spill-over):
/// the job's kernel runs on hostsim cores through the plain CPU runner path
/// — no staging, no DMA, no engine.
struct CpuJobConfig {
  /// Software threads (0 = all of the host's hardware threads).
  std::uint32_t threads = 0;
  std::uint64_t batch_records = 2048;
  /// When set, the runner writes the sim time at which kernel execution
  /// finished (there is no separate write-back phase on the CPU path).
  sim::TimePs* exec_done = nullptr;
};

/// One runnable instance of a benchmark application, type-erased so the
/// serving layer can launch any registered app on any device of a pool
/// without knowing its concrete type. A runner owns its dataset; run() may
/// be called repeatedly (each call resets output state first) and multiple
/// runners execute concurrently against distinct devices.
class JobRunner {
 public:
  virtual ~JobRunner() = default;

  virtual const std::string& app_name() const noexcept = 0;
  virtual std::uint64_t num_records() const = 0;
  /// Total bytes of the app's mapped input streams (what a cold job must
  /// stage through the shared host memory bus before launch).
  virtual std::uint64_t input_bytes() const = 0;

  /// Executes one BigKernel launch of this app on `runtime` (fresh
  /// core::Engine per call, as in schemes::run_bigkernel): upload tables,
  /// launch, download, release.
  virtual sim::Task<> run(cusim::Runtime& runtime, const JobRunConfig& cfg) = 0;

  /// Executes this app entirely on host cores (bigkhetero spill path),
  /// through the same cpu_partition path schemes::run_cpu uses. Produces
  /// output identical to run() — the kernels are partition-invariant and
  /// execution-side agnostic.
  virtual sim::Task<> run_cpu(hostsim::HostCpu& cpu,
                              const CpuJobConfig& cfg) = 0;

  /// bigkdur: FNV digest of the app's write-mode output prefix covering the
  /// first `records_done` records — the journal checkpoints (records_done,
  /// digest) pairs so a restarted server only resumes from a checkpoint
  /// whose bytes still match. Returns 0 when the app has no write-mode
  /// streams (resume then restarts from record 0).
  virtual std::uint64_t output_digest(std::uint64_t records_done) {
    (void)records_done;
    return 0;
  }
};

struct BenchApp {
  std::string name;
  AppInfo info;
  /// Table II marks pattern recognition "NA" for the indexed variant.
  bool pattern_applicable = true;
  /// Runs a freshly generated instance under `scheme`.
  std::function<schemes::RunMetrics(schemes::Scheme,
                                    const gpusim::SystemConfig&,
                                    const schemes::SchemeConfig&)>
      run;
  /// Builds a fresh, independently seeded JobRunner instance of this app
  /// (dataset generated at construction time).
  std::function<std::unique_ptr<JobRunner>()> make_runner;
  /// bigkstatic: runs the static kernel-contract verifier over a small
  /// instance (the verdict depends on kernel code, not data scale). Use
  /// static_verdict() for the memoized result.
  std::function<verify::KernelReport()> verify;
  /// Memoized verify() result; populated by static_verdict().
  mutable std::shared_ptr<const verify::KernelReport> verdict;
};

/// Builds the benchmark suite at the given scale (data sizes follow
/// Table I's paper-scale figures times `scaled.scale`).
std::vector<BenchApp> benchmark_apps(const ScaledSystem& scaled);

/// Registered app names in evaluation order.
std::vector<std::string> app_names(const std::vector<BenchApp>& suite);

/// Looks `name` up in `suite`; throws std::invalid_argument listing every
/// valid app name when there is no such app.
const BenchApp& find_app(const std::vector<BenchApp>& suite,
                         std::string_view name);

/// Runs the app's static verifier once and memoizes the report on the entry.
/// An app without a registered verifier yields a failed report with an
/// "unverified" violation, so admission gates refuse it with a clear reason.
const verify::KernelReport& static_verdict(const BenchApp& app);

}  // namespace bigk::apps
