#include "load/arrival.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bigk::load {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<std::pair<std::string, std::string>> split_kv(
    std::string_view text, std::string_view what) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(pos, end - pos);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= token.size()) {
      throw std::invalid_argument(std::string(what) + ": expected key=value, got \"" +
                                  std::string(token) + "\"");
    }
    pairs.emplace_back(std::string(token.substr(0, eq)),
                       std::string(token.substr(eq + 1)));
    pos = end + 1;
  }
  return pairs;
}

double parse_positive(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || parsed <= 0.0) {
    throw std::invalid_argument("--arrival " + key +
                                " needs a positive number, got \"" + value +
                                "\"");
  }
  return parsed;
}

}  // namespace

ArrivalSpec ArrivalSpec::parse(std::string_view text) {
  ArrivalSpec spec;
  std::size_t comma = text.find(',');
  const std::string_view kind =
      comma == std::string_view::npos ? text : text.substr(0, comma);
  if (kind == "poisson") {
    spec.kind = ArrivalKind::kPoisson;
  } else if (kind == "mmpp") {
    spec.kind = ArrivalKind::kMmpp;
  } else if (kind == "diurnal") {
    spec.kind = ArrivalKind::kDiurnal;
  } else {
    throw std::invalid_argument(
        "unknown arrival process \"" + std::string(kind) +
        "\"; valid: \"poisson\" \"mmpp\" \"diurnal\"");
  }
  if (comma == std::string_view::npos) return spec;
  for (const auto& [key, value] : split_kv(text.substr(comma + 1), "--arrival")) {
    if (key == "rate") {
      spec.rate_per_s = parse_positive(value, key);
    } else if (key == "burst") {
      spec.burst_rate_per_s = parse_positive(value, key);
    } else if (key == "calm_us") {
      spec.mean_calm = static_cast<sim::DurationPs>(
          parse_positive(value, key) * static_cast<double>(sim::kMicrosecond));
    } else if (key == "burst_us") {
      spec.mean_burst = static_cast<sim::DurationPs>(
          parse_positive(value, key) * static_cast<double>(sim::kMicrosecond));
    } else if (key == "amplitude") {
      spec.amplitude = parse_positive(value, key);
      if (spec.amplitude >= 1.0) {
        throw std::invalid_argument("--arrival amplitude must be in (0, 1)");
      }
    } else if (key == "period_us") {
      spec.period = static_cast<sim::DurationPs>(
          parse_positive(value, key) * static_cast<double>(sim::kMicrosecond));
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_positive(value, key));
    } else {
      throw std::invalid_argument("--arrival: unknown key \"" + key + "\"");
    }
  }
  return spec;
}

std::string ArrivalSpec::to_string() const {
  std::ostringstream out;
  out << arrival_kind_name(kind) << ",rate=" << rate_per_s;
  if (kind == ArrivalKind::kMmpp) {
    out << ",burst=" << (burst_rate_per_s > 0.0 ? burst_rate_per_s
                                                : 8.0 * rate_per_s)
        << ",calm_us=" << static_cast<double>(mean_calm) / 1e6
        << ",burst_us=" << static_cast<double>(mean_burst) / 1e6;
  } else if (kind == ArrivalKind::kDiurnal) {
    out << ",amplitude=" << amplitude
        << ",period_us=" << static_cast<double>(period) / 1e6;
  }
  out << ",seed=" << seed;
  return out.str();
}

ArrivalSpec ArrivalSpec::scaled(double factor) const {
  ArrivalSpec spec = *this;
  spec.rate_per_s *= factor;
  if (spec.burst_rate_per_s > 0.0) spec.burst_rate_per_s *= factor;
  return spec;
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, std::uint64_t seed)
    : spec_(spec), state_(seed) {
  if (spec_.rate_per_s <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  if (spec_.kind == ArrivalKind::kMmpp) {
    if (spec_.burst_rate_per_s <= 0.0) {
      spec_.burst_rate_per_s = 8.0 * spec_.rate_per_s;
    }
    dwell_end_ = exp_dwell(spec_.mean_calm);
  }
}

double ArrivalProcess::uniform() {
  // (0, 1]: keeps -log() finite.
  return 1.0 - static_cast<double>(splitmix64(state_) >> 11) * 0x1.0p-53;
}

sim::DurationPs ArrivalProcess::exp_gap(double rate_per_s) {
  const double gap_s = -std::log(uniform()) / rate_per_s;
  const double gap_ps = gap_s * 1e12;
  if (gap_ps >= 9e18) return static_cast<sim::DurationPs>(9e18);
  const auto gap = static_cast<sim::DurationPs>(gap_ps + 0.5);
  return gap > 0 ? gap : 1;
}

sim::DurationPs ArrivalProcess::exp_dwell(sim::DurationPs mean) {
  const double dwell = -std::log(uniform()) * static_cast<double>(mean);
  if (dwell >= 9e18) return static_cast<sim::DurationPs>(9e18);
  const auto d = static_cast<sim::DurationPs>(dwell + 0.5);
  return d > 0 ? d : 1;
}

sim::TimePs ArrivalProcess::next() {
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      now_ += exp_gap(spec_.rate_per_s);
      return now_;
    case ArrivalKind::kMmpp: {
      // Sample the next arrival in the current state; if it falls past the
      // state's dwell boundary, advance to the boundary, flip the state, and
      // resample from there (both the Poisson stream and the dwell clock are
      // memoryless, so restarting at the boundary is exact).
      for (;;) {
        const double rate =
            in_burst_ ? spec_.burst_rate_per_s : spec_.rate_per_s;
        const sim::TimePs candidate = now_ + exp_gap(rate);
        if (candidate <= dwell_end_) {
          now_ = candidate;
          return now_;
        }
        now_ = dwell_end_;
        in_burst_ = !in_burst_;
        dwell_end_ =
            now_ + exp_dwell(in_burst_ ? spec_.mean_burst : spec_.mean_calm);
      }
    }
    case ArrivalKind::kDiurnal: {
      // Thinning (Lewis-Shedler): draw from a Poisson stream at the peak
      // rate and accept each candidate with probability rate(t) / peak.
      const double peak = spec_.rate_per_s * (1.0 + spec_.amplitude);
      for (;;) {
        now_ += exp_gap(peak);
        const double phase =
            static_cast<double>(now_ % spec_.period) /
            static_cast<double>(spec_.period);
        const double rate =
            spec_.rate_per_s *
            (1.0 + spec_.amplitude * std::sin(2.0 * kPi * phase));
        if (uniform() * peak <= rate) return now_;
      }
    }
  }
  throw std::logic_error("unhandled arrival kind");
}

}  // namespace bigk::load
