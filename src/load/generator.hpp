// bigkload workload generator: turns an arrival process plus per-tenant
// traffic descriptions into a concrete serve::JobSpec sequence (a LoadPlan)
// that drives serve::run_server through its normal admission path.
//
// Open loop (the default): arrivals come from the seeded ArrivalProcess
// regardless of how the server keeps up — the only way to observe behavior
// past saturation. Each arrival is assigned a tenant (by arrival share), a
// client (uniform over the tenant's simulated client population), and an app
// (by the tenant's mix weights), all from one splitmix64 stream, so the
// whole plan is a pure function of (config, app names).
//
// Closed loop (comparison mode): each simulated client owns a fixed job
// chain and submits its next job only after the previous one settled plus
// the tenant's think time — arrival pressure self-throttles to service
// capacity, which is exactly why closed-loop benches cannot see overload.
// The generator stamps only each chain's first submit instant; the server
// paces the rest at run time.
//
// --tenants flag grammar (parse_tenants), ';'-separated tenant entries:
//   "<name>:class=<lc|batch>,weight=<n>,share=<w>,quota=<n>,deadline_us=<n>,
//    think_us=<n>,clients=<n>,apps=<App A|App B*3|...>"
// Every key is optional; `share` values are relative weights over the
// tenants, an app's `*<w>` suffix is its relative weight in the mix, and an
// absent `apps` key means a uniform mix over the whole suite.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "load/arrival.hpp"
#include "serve/job.hpp"
#include "serve/tenant.hpp"

namespace bigk::load {

/// One app in a tenant's workload mix, with a relative draw weight.
struct MixEntry {
  std::string app;
  double weight = 1.0;
};

/// One tenant's traffic description: the serve-side QoS config plus the
/// generation-side knobs (arrival share, app mix, client population).
struct TenantSpec {
  serve::TenantConfig qos;
  /// Relative share of the arrival stream assigned to this tenant.
  double share = 1.0;
  /// App mix; empty = uniform over every registered app.
  std::vector<MixEntry> mix;
  /// Simulated client population (client ids are stable across runs).
  std::uint32_t clients = 64;
};

struct LoadConfig {
  ArrivalSpec arrival;
  /// Generation window: open-loop arrivals are drawn in [0, duration).
  sim::DurationPs duration = 2 * sim::kMillisecond;
  /// Hard cap on generated jobs (guards against huge rate*duration asks).
  std::uint64_t max_jobs = 200'000;
  /// Closed loop: think-time pacing per client instead of open arrivals.
  bool closed_loop = false;
  std::vector<TenantSpec> tenants;
};

struct LoadPlan {
  /// Ready to hand to serve::run_server (ids in submission order, tenant /
  /// client / deadline stamped).
  std::vector<serve::JobSpec> specs;
  /// Tenant configs in spec.tenant index order (for ServerConfig::qos).
  std::vector<serve::TenantConfig> tenants;
  /// Offered load over the generation window.
  double offered_jobs_per_s = 0.0;
  /// Total simulated clients across tenants.
  std::uint64_t clients = 0;
  /// True when max_jobs truncated the plan (log it — a silently capped
  /// sweep point under-reports offered load).
  bool truncated = false;
};

/// Parses the --tenants grammar above; throws std::invalid_argument naming
/// the offending token. Empty input returns an empty vector (the caller
/// falls back to its default tenant set).
std::vector<TenantSpec> parse_tenants(std::string_view text);

/// Generates the plan. `app_names` is the app universe for uniform mixes
/// and for validating explicit mixes; throws std::invalid_argument on an
/// unknown app name, an empty tenant list, or a non-positive share sum.
LoadPlan make_load(const LoadConfig& config,
                   const std::vector<std::string>& app_names);

}  // namespace bigk::load
